// Command admissionsim demonstrates the Section V admission-control
// overlay: applications activate one by one on a mesh, the Resource
// Manager renegotiates injection rates on every mode change, and the
// tool prints the per-mode rate table (Fig. 7) plus measured protocol
// overhead, for the symmetric and the non-symmetric (mixed-criticality)
// policy.
//
// Usage:
//
//	admissionsim [-apps 8] [-total 1.6] [-crit 2] [-critrate 0.4] [-us 200]
//	             [-metrics file.json] [-trace file.json]
//
// -metrics and -trace instrument the non-symmetric (second) policy
// run with the unified telemetry layer: the metrics file carries
// protocol counters and per-flow PMU monitor readings, the trace file
// is a Chrome trace_event timeline with admission mode-change spans,
// rejection instants, and per-flow NoC delivery spans. "-" writes to
// stdout.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/admission"
	"repro/internal/noc"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

func main() {
	apps := flag.Int("apps", 8, "number of applications to activate")
	total := flag.Float64("total", 1.6, "total budgeted injection rate (bytes/ns)")
	critN := flag.Int("crit", 2, "number of critical applications (non-symmetric policy)")
	critRate := flag.Float64("critrate", 0.4, "guaranteed critical rate (bytes/ns)")
	usec := flag.Int("us", 200, "microseconds between activations")
	metricsPath := flag.String("metrics", "", "write telemetry metrics JSON for the non-symmetric run (\"-\" for stdout)")
	tracePath := flag.String("trace", "", "write a Chrome trace_event JSON timeline for the non-symmetric run (\"-\" for stdout)")
	flag.Parse()

	fmt.Println("== symmetric policy (Fig. 7: uniform degradation) ==")
	runPolicy(admission.Symmetric{TotalBytesPerNS: *total}, *apps, 0, *usec, "", "")

	fmt.Println()
	fmt.Println("== non-symmetric policy (critical guarantees preserved) ==")
	runPolicy(admission.NonSymmetric{
		TotalBytesPerNS:    *total,
		CriticalBytesPerNS: *critRate,
		FloorBytesPerNS:    0.01,
	}, *apps, *critN, *usec, *metricsPath, *tracePath)
}

func runPolicy(policy admission.RatePolicy, apps, critN, usec int, metricsPath, tracePath string) {
	eng := sim.NewEngine()
	mesh, err := noc.New(eng, noc.DefaultConfig())
	if err != nil {
		fatal(err)
	}
	sys, err := admission.NewSystem(eng, mesh, noc.Coord{X: 0, Y: 0}, policy)
	if err != nil {
		fatal(err)
	}
	var suite *telemetry.Suite
	if metricsPath != "" || tracePath != "" {
		suite = telemetry.NewSuite(tracePath != "", sim.Millisecond)
		eng.SetObserver(telemetry.NewEngineObserver(suite.Registry, suite.Tracer, 0))
		mesh.SetTelemetry(suite.Registry, suite.Tracer, suite.Monitors)
		sys.SetTelemetry(suite.Registry, suite.Tracer)
	}

	// Print the policy's rate-vs-mode series (the Fig. 7 staircase).
	fmt.Println("mode  rates (bytes/ns)")
	var active []admission.AppRef
	for m := 1; m <= apps; m++ {
		crit := admission.BestEffort
		if m <= critN {
			crit = admission.Critical
		}
		active = append(active, admission.AppRef{Name: appName(m - 1), Crit: crit})
		rates := policy.Rates(active)
		fmt.Printf("%4d  ", m)
		for i := 0; i < m; i++ {
			fmt.Printf("%s=%.3f ", appName(i), rates[appName(i)])
		}
		fmt.Println()
	}

	// Live run: activate the apps in sequence and measure the
	// protocol.
	for i := 0; i < apps; i++ {
		i := i
		node := noc.Coord{X: i % 4, Y: (i / 4) % 4}
		cl, err := sys.Client(node)
		if err != nil {
			fatal(err)
		}
		crit := admission.BestEffort
		if i < critN {
			crit = admission.Critical
		}
		if err := cl.Register(appName(i), crit); err != nil {
			fatal(err)
		}
		eng.At(sim.Duration(i)*sim.Duration(usec)*sim.Microsecond, func() {
			for k := 0; k < 50; k++ {
				_ = cl.Submit(appName(i), &noc.Packet{Dst: noc.Coord{X: 3, Y: 3}, Bytes: 64})
			}
		})
	}
	eng.RunUntil(sim.Duration(apps+2) * sim.Duration(usec) * sim.Microsecond)

	st := sys.Stats()
	fmt.Printf("mode changes: %d, admitted: %d, messages: act=%d ter=%d stop=%d conf=%d\n",
		st.ModeChanges, st.Admitted,
		st.Messages[admission.ActMsg], st.Messages[admission.TerMsg],
		st.Messages[admission.StopMsg], st.Messages[admission.ConfMsg])
	fmt.Printf("mode-change latency: mean %.1f ns, max %.1f ns\n",
		st.MeanModeChangeLatencyNS(), st.MaxModeLat)
	fmt.Printf("final mode: %d\n", sys.RM().Mode())

	if suite != nil {
		suite.Monitors.Snapshot(suite.Registry, eng.Now())
		if err := suite.DumpFiles(metricsPath, tracePath); err != nil {
			fatal(err)
		}
	}
}

func appName(i int) string { return fmt.Sprintf("app%d", i) }

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "admissionsim: %v\n", err)
	os.Exit(1)
}
