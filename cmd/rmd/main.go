// Command rmd is the admission-control daemon: the networked Resource
// Manager fleet of internal/rmserver behind one HTTP listener. It
// serves the decision API (/v1/register, /v1/withdraw, /v1/modechange,
// /v1/batch, /v1/stats) alongside the observability endpoints of
// internal/audit (/metrics in OpenMetrics text, /healthz, /progress,
// /slo, /debug/pprof/*) — one port, one process, the paper's RM as a
// service.
//
// Usage:
//
//	rmd [-listen 127.0.0.1:9092] [-shards 4] [-queue 64]
//	    [-maxbatch 8192] [-publish 1s] [-store DIR]
//	    [-decision-delay 0] [-trace-sample 0] [-trace-ring 8192]
//	    [-trace FILE]
//
// -store appends a KindService session record (decision counts,
// latency quantiles, throttle/breaker totals) to the cross-run obs
// store when the daemon exits, and feeds /slo from the same store's
// history evaluated against obs.ServiceSLOs.
//
// -trace-sample enables request-scoped wall-clock tracing
// (internal/wtrace): each /v1/* request is head-sampled at the given
// probability (inbound W3C traceparent headers join their caller's
// trace), decomposed into parse → queue_wait → decision (per-op
// children) → encode spans, and served live as Chrome trace-event
// JSON on /v1/traces. The default 0 keeps the hot path span-free.
// -trace-ring bounds the in-memory span ring behind /v1/traces, and
// -trace additionally streams every sampled span to FILE as a Chrome
// trace on shutdown — loadable in Perfetto next to the simulator's
// virtual-time traces.
//
// -decision-delay injects an artificial per-decision sleep in the
// shard loops — an overload drill knob that lets load tests saturate
// the bounded queues deterministically on any machine. Leave zero in
// real deployments.
//
// On SIGTERM/SIGINT the daemon drains gracefully: the listener stops
// accepting, in-flight requests complete, every enqueued batch is
// decided, a drain summary is printed, and the process exits 0. No
// accepted work is dropped.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/audit"
	"repro/internal/obs"
	"repro/internal/rmserver"
	"repro/internal/telemetry"
	"repro/internal/wtrace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "rmd:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		listen        = flag.String("listen", "127.0.0.1:9092", "listen address for the API and observability endpoints")
		shards        = flag.Int("shards", 4, "number of RM shard loops")
		queue         = flag.Int("queue", 64, "per-shard pending-batch queue depth")
		maxBatch      = flag.Int("maxbatch", 8192, "max operations per batch request")
		publish       = flag.Duration("publish", time.Second, "metrics/SLO publish interval")
		storeDir      = flag.String("store", "", "obs store directory (session record on exit, /slo history)")
		decisionDelay = flag.Duration("decision-delay", 0, "artificial per-decision delay (overload drills only)")
		traceSample   = flag.Float64("trace-sample", 0, "head-sampling probability for request traces (0 = off)")
		traceRing     = flag.Int("trace-ring", 0, "completed spans retained for /v1/traces (0 = default 8192)")
		traceFile     = flag.String("trace", "", "also write sampled spans as a Chrome trace to this file on exit")
	)
	flag.Parse()

	reg := telemetry.NewRegistry()
	fleet := rmserver.New(rmserver.Config{
		Shards:        *shards,
		QueueDepth:    *queue,
		MaxBatch:      *maxBatch,
		DecisionDelay: *decisionDelay,
	}, reg)

	var chrome *telemetry.Tracer
	if *traceFile != "" {
		chrome = telemetry.NewWallTracer()
	}
	tracer := wtrace.New(wtrace.Config{
		Sample:    *traceSample,
		RingSpans: *traceRing,
		Registry:  reg,
		Chrome:    chrome,
	})

	srv, err := audit.NewServer(*listen)
	if err != nil {
		return err
	}
	srv.Handle("/v1/", rmserver.NewTracedHandler(fleet, tracer))

	start := time.Now()
	fmt.Printf("rmd: serving on http://%s (%d shards, queue %d, max batch %d)\n",
		srv.Addr(), *shards, *queue, *maxBatch)

	// Publisher: render the OpenMetrics exposition, a progress
	// snapshot, and (with -store) the SLO report on a fixed cadence,
	// off the request path.
	stopPub := make(chan struct{})
	pubDone := make(chan struct{})
	go func() {
		defer close(pubDone)
		tick := time.NewTicker(*publish)
		defer tick.Stop()
		for {
			publishOnce(srv, fleet, *storeDir, start)
			select {
			case <-tick.C:
			case <-stopPub:
				return
			}
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	s := <-sig
	fmt.Printf("rmd: %s received, draining\n", s)

	// Drain order matters: stop accepting first (no new work), then
	// finish every queued batch, then stop the publisher and write the
	// session record.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	fleet.Drain()
	close(stopPub)
	<-pubDone

	st := fleet.Snapshot()
	fmt.Printf("rmd: drained cleanly: %d decisions in %d batches, %d throttled, %d rejects, breaker %s (%d opens)\n",
		st.Decisions, st.Batches, st.Throttled, st.Rejects, st.BreakerState, st.BreakerOpens)

	if *traceFile != "" {
		if err := writeChromeTrace(*traceFile, chrome, tracer); err != nil {
			return fmt.Errorf("write trace: %w", err)
		}
	}

	if *storeDir != "" {
		if err := recordSession(*storeDir, reg, st, time.Since(start)); err != nil {
			return fmt.Errorf("session record: %w", err)
		}
	}
	return nil
}

// publishOnce refreshes the /metrics, /progress, and /slo payloads.
func publishOnce(srv *audit.Server, fleet *rmserver.Fleet, storeDir string, start time.Time) {
	srv.PublishMetrics(fleet.Registry().WriteOpenMetrics)
	st := fleet.Snapshot()
	srv.PublishProgress(struct {
		UptimeSec float64        `json:"uptime_sec"`
		Stats     rmserver.Stats `json:"stats"`
	}{time.Since(start).Seconds(), st})
	if storeDir == "" {
		return
	}
	store, err := obs.Open(storeDir)
	if err != nil {
		return
	}
	defer store.Close()
	if status, err := obs.EvaluateStore(store, obs.ServiceSLOs()); err == nil {
		srv.PublishSLO(status)
	}
}

// writeChromeTrace dumps the wall-clock Chrome tracer to a file —
// every span the wtrace tracer forwarded over the daemon's lifetime.
func writeChromeTrace(path string, chrome *telemetry.Tracer, tracer *wtrace.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := chrome.WriteJSON(f)
	cerr := f.Close()
	if werr != nil {
		return werr
	}
	fmt.Printf("rmd: wrote %d sampled spans to %s\n", tracer.SpansRecorded(), path)
	return cerr
}

// recordSession appends the daemon's lifetime record to the obs store.
func recordSession(dir string, reg *telemetry.Registry, st rmserver.Stats, up time.Duration) error {
	store, err := obs.Open(dir)
	if err != nil {
		return err
	}
	defer store.Close()
	var buf []byte
	{
		var b sink
		reg.WriteOpenMetrics(&b)
		buf = b.data
	}
	sec := up.Seconds()
	if sec <= 0 {
		sec = 1
	}
	_, err = store.Append(obs.RunRecord{
		Kind:  obs.KindService,
		Label: "rmd/session",
		Values: map[string]float64{
			"decisions":         float64(st.Decisions),
			"batches":           float64(st.Batches),
			"throttled":         float64(st.Throttled),
			"breaker_opens":     float64(st.BreakerOpens),
			"decisions_per_sec": float64(st.Decisions) / sec,
			"decision.p99_ns":   float64(st.DecisionP99),
			"shards":            float64(st.Shards),
		},
		Metrics: string(buf),
	})
	return err
}

type sink struct{ data []byte }

func (s *sink) Write(p []byte) (int, error) {
	s.data = append(s.data, p...)
	return len(p), nil
}
