// Command socsim runs mixed-criticality contention scenarios on the
// vehicle-integration-platform model: a critical control loop
// co-located with best-effort memory hogs, with the paper's QoS
// mechanisms individually switchable. It prints the critical
// application's read-latency profile per configuration — the X1
// experiment from DESIGN.md as a standalone tool.
//
// Usage:
//
//	socsim [-hogs 6] [-ms 4] [-seed 100] [-dsu] [-memguard] [-shape]
//	       [-mpam] [-all] [-workers N]
//	       [-metrics file.json] [-trace file.json]
//	       [-cpuprofile cpu.prof] [-memprofile mem.prof]
//
// -all runs the full scenario matrix through the internal/sweep
// harness, sharded over -workers parallel workers (default
// GOMAXPROCS); the printed table is byte-identical for any worker
// count. For bigger matrices — more axes, seed lists, JSON/CSV
// aggregates — use cmd/sweep directly.
//
// -metrics dumps the unified telemetry registry (counters, gauges,
// latency histograms) as JSON; -trace records a Chrome trace_event
// timeline (load it in Perfetto or chrome://tracing) with per-bank
// DRAM service spans, per-flow NoC delivery spans, and MemGuard
// stall/depletion events. "-" writes either to stdout. Both are
// deterministic: identical invocations produce byte-identical files.
//
// -cpuprofile and -memprofile record pprof profiles of the simulation
// process (inspect with go tool pprof); see docs/PERFORMANCE.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/sweep"
	"repro/internal/trace"
)

// startProfiles begins CPU profiling and arms the heap-profile dump;
// the returned stop must run before exit (deferred in main).
func startProfiles(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, err
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "socsim: -memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize up-to-date allocation stats
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "socsim: -memprofile: %v\n", err)
			}
		}
	}, nil
}

func main() {
	hogs := flag.Int("hogs", 6, "number of best-effort aggressor apps")
	msec := flag.Int("ms", 4, "simulated milliseconds per scenario")
	seed := flag.Uint64("seed", 100, "seed for the hogs' random address streams")
	useDSU := flag.Bool("dsu", false, "partition the L3 with a DSU CLUSTERPARTCR")
	useMG := flag.Bool("memguard", false, "give each hog a MemGuard budget")
	useShape := flag.Bool("shape", false, "install NI token-bucket shapers on hog nodes")
	useMPAM := flag.Bool("mpam", false, "regulate the memory channel with MPAM min/max bandwidth")
	all := flag.Bool("all", false, "run the full scenario matrix")
	workers := flag.Int("workers", 0, "parallel workers for -all (0 = GOMAXPROCS)")
	metricsPath := flag.String("metrics", "", "write telemetry metrics JSON to this file (\"-\" for stdout)")
	tracePath := flag.String("trace", "", "write a Chrome trace_event JSON timeline to this file (\"-\" for stdout)")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile at exit to this file")
	flag.Parse()

	stopProfiles, err := startProfiles(*cpuProfile, *memProfile)
	if err != nil {
		fatal(err)
	}
	defer stopProfiles()

	if *all && (*metricsPath != "" || *tracePath != "") {
		fatal(fmt.Errorf("-metrics/-trace apply to a single scenario; drop -all"))
	}

	horizon := sim.Duration(*msec) * sim.Millisecond
	if *all {
		specs := sweep.ScenarioMatrix(*hogs, horizon, []uint64{*seed})
		results := sweep.Run(specs, *workers, nil)
		fmt.Println("scenario                         mean(ns)   p95(ns)    max(ns)   DRAM row-hit")
		for _, r := range results {
			if r.Failed() {
				fmt.Printf("%-32s FAILED: %s\n", r.Spec.Label, r.Err)
				continue
			}
			fmt.Printf("%-32s %-10.1f %-10.1f %-9.1f %.2f\n", r.Spec.Label,
				r.Crit.MeanReadLatency.Nanoseconds(), r.Crit.P95ReadLatency.Nanoseconds(),
				r.Crit.MaxReadLatency.Nanoseconds(), r.RowHitRate)
		}
		return
	}

	spec := core.RunSpec{
		Hogs: *hogs, DSU: *useDSU, MemGuard: *useMG, Shape: *useShape, MPAM: *useMPAM,
		HogClass: trace.Infotainment, Duration: horizon, Seed: *seed,
		Telemetry: *metricsPath != "" || *tracePath != "",
		Trace:     *tracePath != "",
	}
	p, crit, err := core.BuildPlatform(spec)
	if err != nil {
		fatal(err)
	}
	p.StartApps()
	p.RunFor(spec.Duration)
	if suite := p.Telemetry(); suite != nil {
		p.SnapshotMetrics()
		if err := suite.DumpFiles(*metricsPath, *tracePath); err != nil {
			fatal(err)
		}
	}
	st := crit.Stats()
	fmt.Printf("critical app read latency over %dms with %d hogs (dsu=%v memguard=%v shape=%v mpam=%v):\n",
		*msec, *hogs, *useDSU, *useMG, *useShape, *useMPAM)
	fmt.Printf("  accesses  %d (hits %d, misses %d)\n", st.Issued, st.L3Hits, st.L3Misses)
	fmt.Printf("  mean      %.1f ns\n", st.MeanReadLatency.Nanoseconds())
	fmt.Printf("  p95       %.1f ns\n", st.P95ReadLatency.Nanoseconds())
	fmt.Printf("  max       %.1f ns\n", st.MaxReadLatency.Nanoseconds())
	fmt.Printf("  DRAM row-hit rate %.2f\n", p.Memory().Stats().RowHitRate())
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "socsim: %v\n", err)
	os.Exit(1)
}
