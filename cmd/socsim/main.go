// Command socsim runs mixed-criticality contention scenarios on the
// vehicle-integration-platform model: a critical control loop
// co-located with best-effort memory hogs, with the paper's QoS
// mechanisms individually switchable. It prints the critical
// application's read-latency profile per configuration — the X1
// experiment from DESIGN.md as a standalone tool.
//
// Usage:
//
//	socsim [-hogs 6] [-ms 4] [-seed 100] [-dsu] [-memguard] [-shape]
//	       [-mpam] [-all] [-workers N] [-parallel N]
//	       [-mesh WxH] [-clusters N] [-channels N] [-apps-per-tile N]
//	       [-metrics file.json] [-trace file.json]
//	       [-cpuprofile cpu.prof] [-memprofile mem.prof]
//
// -all runs the full scenario matrix through the internal/sweep
// harness, sharded over -workers parallel workers (default
// GOMAXPROCS); the printed table is byte-identical for any worker
// count. For bigger matrices — more axes, seed lists, JSON/CSV
// aggregates — use cmd/sweep directly.
//
// -parallel N runs the single-scenario event kernel with N
// conservative-lookahead partitions (lookahead = the mesh FlitTime).
// Output — stdout, metrics, traces — is byte-identical to the
// sequential engine for every N; see docs/PERFORMANCE.md ("Parallel
// kernel") for the protocol and for why -all rejects it (the sweep
// parallelizes across scenarios instead). N is clamped to the mesh
// width (and, on a clustered platform, the cluster count); the clamp
// and the effective partition count are reported on stderr so stdout
// stays byte-identical across partition counts.
//
// -mesh WxH, -clusters, -channels and -apps-per-tile grow the platform
// into the clustered scale-out shape (per-cluster L2/L3 and MemGuard,
// multi-channel DRAM with per-cluster home channels; see
// docs/PERFORMANCE.md "Clustered platforms"). Any one of them selects
// the scaled scenario — unset knobs take the scaled defaults (16x16
// mesh, min(8,width) clusters, one channel per cluster, 1 app per
// tile) and -hogs is ignored: every tile slot beyond the critical
// loop's carries a hog. `socsim -mesh 16x16 -clusters 8 -channels 8
// -apps-per-tile 2 -parallel 8` runs 512 apps across 256 tiles on 8
// kernel partitions.
//
// -metrics dumps the unified telemetry registry (counters, gauges,
// latency histograms) as JSON; -trace records a Chrome trace_event
// timeline (load it in Perfetto or chrome://tracing) with per-bank
// DRAM service spans, per-flow NoC delivery spans, and MemGuard
// stall/depletion events. "-" writes either to stdout. Both are
// deterministic: identical invocations produce byte-identical files.
//
// -cpuprofile and -memprofile record pprof profiles of the simulation
// process (inspect with go tool pprof); see docs/PERFORMANCE.md.
//
// -audit arms the runtime predictability auditor: each app's analytic
// NC delay bound is captured at registration and every completed
// transaction is checked against it online, with violations streamed
// to stderr as they happen and summarized after the run. -listen
// starts the live export endpoint (/metrics in OpenMetrics text,
// /healthz, /progress, /debug/pprof/*) for scraping the run in
// flight; -linger keeps it serving after the run until SIGINT, so
// external scrapers (or the CI smoke job) can probe a finished run.
// -store appends the run's record — headline latencies, audit
// conformance, config fingerprint, and the full OpenMetrics snapshot
// — to the cross-run results store in that directory, where obsq can
// query it and the regression sentinel can judge later runs against
// it. See docs/OBSERVABILITY.md ("Runtime auditing" and "Cross-run
// store, SLOs, and regression sentinel").
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"syscall"

	"repro/internal/audit"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/sweep"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// startProfiles begins CPU profiling and arms the heap-profile dump;
// the returned stop must run before exit (deferred in main).
func startProfiles(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, err
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "socsim: -memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize up-to-date allocation stats
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "socsim: -memprofile: %v\n", err)
			}
		}
	}, nil
}

func main() {
	hogs := flag.Int("hogs", 6, "number of best-effort aggressor apps")
	msec := flag.Int("ms", 4, "simulated milliseconds per scenario")
	seed := flag.Uint64("seed", 100, "seed for the hogs' random address streams")
	useDSU := flag.Bool("dsu", false, "partition the L3 with a DSU CLUSTERPARTCR")
	useMG := flag.Bool("memguard", false, "give each hog a MemGuard budget")
	useShape := flag.Bool("shape", false, "install NI token-bucket shapers on hog nodes")
	useMPAM := flag.Bool("mpam", false, "regulate the memory channel with MPAM min/max bandwidth")
	all := flag.Bool("all", false, "run the full scenario matrix")
	workers := flag.Int("workers", 0, "parallel workers for -all (0 = GOMAXPROCS)")
	parallelN := flag.Int("parallel", 0, "run the event kernel with N conservative-lookahead partitions (output is byte-identical to sequential for every N; 0 = sequential engine)")
	meshFlag := flag.String("mesh", "", "scaled platform mesh as WxH (e.g. 16x16) or W for square; selects the clustered scenario")
	clustersFlag := flag.Int("clusters", 0, "scaled platform cluster count (0 = min(8, mesh width); selects the clustered scenario)")
	channelsFlag := flag.Int("channels", 0, "scaled platform DRAM channel count (0 = one per cluster; selects the clustered scenario)")
	appsPerTile := flag.Int("apps-per-tile", 0, "apps on every mesh tile in the scaled scenario (0 = 1; selects the clustered scenario)")
	metricsPath := flag.String("metrics", "", "write telemetry metrics to this file (\"-\" for stdout)")
	metricsFormat := flag.String("metrics-format", "json", "encoding for -metrics: json or openmetrics")
	tracePath := flag.String("trace", "", "write a Chrome trace_event JSON timeline to this file (\"-\" for stdout)")
	auditOn := flag.Bool("audit", false, "arm the runtime predictability auditor (online NC bound conformance + contention attribution)")
	storeDir := flag.String("store", "", "append this run's record to the cross-run results store in this directory")
	listen := flag.String("listen", "", "serve live OpenMetrics /metrics, /healthz, /progress and pprof on this address (e.g. :9091; off by default)")
	linger := flag.Bool("linger", false, "with -listen, keep serving after the run until SIGINT/SIGTERM")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile at exit to this file")
	flag.Parse()

	format, err := telemetry.ParseMetricsFormat(*metricsFormat)
	if err != nil {
		fatal(err)
	}

	stopProfiles, err := startProfiles(*cpuProfile, *memProfile)
	if err != nil {
		fatal(err)
	}
	defer stopProfiles()

	meshW, meshH, err := parseMesh(*meshFlag)
	if err != nil {
		fatal(err)
	}
	scaled := meshW != 0 || *clustersFlag != 0 || *channelsFlag != 0 || *appsPerTile != 0

	if *all && (*metricsPath != "" || *tracePath != "" || *auditOn || *listen != "" || *storeDir != "") {
		fatal(fmt.Errorf("-metrics/-trace/-audit/-listen/-store apply to a single scenario; drop -all (cmd/sweep has the matrix equivalents)"))
	}
	if *all && scaled {
		fatal(fmt.Errorf("-mesh/-clusters/-channels/-apps-per-tile configure a single scaled scenario; drop -all"))
	}
	if *parallelN < 0 {
		fatal(fmt.Errorf("-parallel must be >= 0, got %d", *parallelN))
	}
	if *all && *parallelN > 0 {
		// The sweep already parallelizes at run granularity (one whole
		// scenario per worker); kernel partitions inside each run would
		// oversubscribe the cores for no wall-clock gain.
		fatal(fmt.Errorf("-parallel applies to a single scenario; -all parallelizes across scenarios via -workers instead"))
	}

	horizon := sim.Duration(*msec) * sim.Millisecond
	if *all {
		specs := sweep.ScenarioMatrix(*hogs, horizon, []uint64{*seed})
		results := sweep.Run(specs, *workers, nil)
		fmt.Println("scenario                         mean(ns)   p95(ns)    max(ns)   DRAM row-hit")
		for _, r := range results {
			if r.Failed() {
				fmt.Printf("%-32s FAILED: %s\n", r.Spec.Label, r.Err)
				continue
			}
			fmt.Printf("%-32s %-10.1f %-10.1f %-9.1f %.2f\n", r.Spec.Label,
				r.Crit.MeanReadLatency.Nanoseconds(), r.Crit.P95ReadLatency.Nanoseconds(),
				r.Crit.MaxReadLatency.Nanoseconds(), r.RowHitRate)
		}
		return
	}

	spec := core.RunSpec{
		Hogs: *hogs, DSU: *useDSU, MemGuard: *useMG, Shape: *useShape, MPAM: *useMPAM,
		HogClass: trace.Infotainment, Duration: horizon, Seed: *seed,
		KernelPartitions: *parallelN,
		MeshWidth:        meshW, MeshHeight: meshH,
		Clusters: *clustersFlag, Channels: *channelsFlag, AppsPerTile: *appsPerTile,
		Telemetry: *metricsPath != "" || *tracePath != "" || *listen != "" || *storeDir != "",
		Trace:     *tracePath != "",
	}
	p, crit, err := core.BuildPlatform(spec)
	if err != nil {
		fatal(err)
	}
	if *parallelN > 0 {
		// The effective count goes to stderr: stdout must stay
		// byte-identical across -parallel values (the determinism
		// contract CI diffs).
		eff := p.Plan().Partitions
		if eff != *parallelN {
			fmt.Fprintf(os.Stderr, "socsim: -parallel %d clamped to %d partitions (mesh is %d columns wide, %d clusters)\n",
				*parallelN, eff, p.MeshConfig().Width, p.ClusterCount())
		}
		fmt.Fprintf(os.Stderr, "socsim: event kernel running %d partitions, lookahead %v\n", eff, p.Plan().Lookahead)
	}

	// The auditor is enabled here rather than via spec.Audit so the
	// violation stream reaches stderr the moment each event fires.
	var aud *audit.Auditor
	if *auditOn {
		const maxPrinted = 20
		printed := 0
		aud, err = p.EnableAudit(core.AuditOptions{OnViolation: func(v audit.Violation) {
			if printed < maxPrinted {
				fmt.Fprintf(os.Stderr, "socsim: %s\n", v)
			} else if printed == maxPrinted {
				fmt.Fprintf(os.Stderr, "socsim: further violations suppressed (summary at end)\n")
			}
			printed++
		}})
		if err != nil {
			fatal(err)
		}
	}

	var srv *audit.Server
	if *listen != "" {
		srv, err = audit.NewServer(*listen)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "socsim: live endpoint on http://%s (/metrics /healthz /progress /debug/pprof)\n", srv.Addr())
	}

	p.StartApps()
	runScenario(p, spec.Duration, srv)

	if suite := p.Telemetry(); suite != nil {
		p.SnapshotMetrics()
		if srv != nil {
			publishLive(p, spec.Duration, srv)
		}
		if err := suite.DumpFilesFormat(*metricsPath, format, *tracePath); err != nil {
			fatal(err)
		}
	}
	st := crit.Stats()
	if scaled {
		// The platform shape replaces the hog count in the header: the
		// scaled scenario derives its population from the mesh. Only
		// facts invariant across -parallel values may appear here.
		mc := p.MeshConfig()
		fmt.Printf("critical app read latency over %dms on a %dx%d mesh (%d clusters, %d channels, %d apps; dsu=%v memguard=%v shape=%v mpam=%v):\n",
			*msec, mc.Width, mc.Height, p.ClusterCount(), p.Channels(), len(p.Apps()),
			*useDSU, *useMG, *useShape, *useMPAM)
	} else {
		fmt.Printf("critical app read latency over %dms with %d hogs (dsu=%v memguard=%v shape=%v mpam=%v):\n",
			*msec, *hogs, *useDSU, *useMG, *useShape, *useMPAM)
	}
	fmt.Printf("  accesses  %d (hits %d, misses %d)\n", st.Issued, st.L3Hits, st.L3Misses)
	fmt.Printf("  mean      %.1f ns\n", st.MeanReadLatency.Nanoseconds())
	fmt.Printf("  p95       %.1f ns\n", st.P95ReadLatency.Nanoseconds())
	fmt.Printf("  max       %.1f ns\n", st.MaxReadLatency.Nanoseconds())
	fmt.Printf("  DRAM row-hit rate %.2f\n", p.RowHitRate())
	if aud != nil {
		printAuditSummary(aud)
	}

	if *storeDir != "" {
		if err := recordRun(*storeDir, spec, *auditOn, p, st); err != nil {
			fatal(err)
		}
	}

	if srv != nil {
		if *linger {
			fmt.Fprintf(os.Stderr, "socsim: run complete; serving until SIGINT\n")
			sigc := make(chan os.Signal, 1)
			signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
			<-sigc
		}
		if err := srv.Close(); err != nil {
			fatal(err)
		}
	}
}

// runScenario advances the platform to the horizon. Without a live
// endpoint it is one RunFor; with one, the run is chunked so fresh
// snapshots are published while traffic flows — the chunk boundaries
// never reorder events, so the simulated outcome is identical either
// way.
func runScenario(p *core.Platform, horizon sim.Duration, srv *audit.Server) {
	if srv == nil {
		p.RunFor(horizon)
		return
	}
	end := p.Eng.Now() + horizon
	chunk := horizon / 64
	if chunk <= 0 {
		chunk = horizon
	}
	for p.Eng.Now() < end {
		next := p.Eng.Now() + chunk
		if next > end {
			next = end
		}
		p.RunUntil(next)
		publishLive(p, horizon, srv)
	}
}

// publishLive renders the current registry into the endpoint's scrape
// buffer and refreshes the JSON progress snapshot.
func publishLive(p *core.Platform, horizon sim.Duration, srv *audit.Server) {
	p.SnapshotMetrics()
	if suite := p.Telemetry(); suite != nil && suite.Registry != nil {
		if err := srv.PublishMetrics(suite.Registry.WriteOpenMetrics); err != nil {
			fmt.Fprintf(os.Stderr, "socsim: publish metrics: %v\n", err)
		}
	}
	prog := struct {
		SimTimeNS  float64 `json:"sim_time_ns"`
		HorizonNS  float64 `json:"horizon_ns"`
		Violations uint64  `json:"violations"`
	}{p.Eng.Now().Nanoseconds(), horizon.Nanoseconds(), 0}
	if aud := p.Auditor(); aud != nil {
		prog.Violations = aud.TotalViolations()
	}
	if err := srv.PublishProgress(prog); err != nil {
		fmt.Fprintf(os.Stderr, "socsim: publish progress: %v\n", err)
	}
}

// recordRun appends the finished run to the cross-run results store,
// reusing the sweep harness's record shape so socsim and sweep runs
// of the same configuration share fingerprints and metric names.
func recordRun(dir string, spec core.RunSpec, auditOn bool, p *core.Platform, st core.AppStats) error {
	store, err := obs.Open(dir)
	if err != nil {
		return fmt.Errorf("-store: %w", err)
	}
	defer store.Close()
	mset := sweep.MechanismSet{DSU: spec.DSU, MemGuard: spec.MemGuard, Shape: spec.Shape, MPAM: spec.MPAM}
	sp := sweep.Spec{
		Label:    fmt.Sprintf("%s/hogs=%d/%s/%gms", mset, spec.Hogs, spec.HogClass, spec.Duration.Nanoseconds()/1e6),
		Kind:     sweep.Contention,
		Platform: spec,
	}
	sp.Platform.Audit = auditOn
	res := sweep.Result{Crit: st, RowHitRate: p.RowHitRate()}
	if aud := p.Auditor(); aud != nil {
		res.Violations = aud.TotalViolations()
		for _, s := range aud.Snapshot() {
			res.Observed += s.Observed
		}
	}
	var metrics []byte
	if suite := p.Telemetry(); suite != nil && suite.Registry != nil {
		var buf bytes.Buffer
		if err := suite.Registry.WriteOpenMetrics(&buf); err != nil {
			return fmt.Errorf("-store: render metrics: %w", err)
		}
		metrics = buf.Bytes()
	}
	rec, err := store.Append(sweep.RecordOf(sp, res, metrics))
	if err != nil {
		return fmt.Errorf("-store: %w", err)
	}
	fmt.Fprintf(os.Stderr, "socsim: recorded run seq=%d label=%s into %s\n", rec.Seq, rec.Label, dir)
	return nil
}

// printAuditSummary reports per-app conformance and where the time
// went, stage by stage.
func printAuditSummary(aud *audit.Auditor) {
	fmt.Printf("runtime audit:\n")
	for _, s := range aud.Snapshot() {
		fmt.Printf("  %-8s observed %d  max %.1f ns", s.App, s.Observed, s.MaxNS)
		if s.Bound.DelayBoundNS > 0 && s.Violations == 0 {
			fmt.Printf("  bound %.1f ns  headroom %.1f ns", s.Bound.DelayBoundNS, s.HeadroomNS)
		}
		if s.Violations > 0 {
			fmt.Printf("  VIOLATIONS %d (bound %.1f ns, worst overrun %.1f ns)",
				s.Violations, s.Bound.DelayBoundNS, -s.HeadroomNS)
		}
		fmt.Println()
		for _, st := range s.Stages {
			if st.TotalPS == 0 {
				continue
			}
			fmt.Printf("    %-16s %5.1f%% of time  (max %.1f ns)\n",
				st.Stage, 100*st.Share, st.MaxPS.Nanoseconds())
		}
	}
}

// parseMesh parses -mesh: "WxH", or a bare "W" for a square mesh.
// Empty means unset (0, 0).
func parseMesh(s string) (w, h int, err error) {
	if s == "" {
		return 0, 0, nil
	}
	if n, e := fmt.Sscanf(s, "%dx%d", &w, &h); e == nil && n == 2 {
		// fallthrough to validation
	} else if n, e := fmt.Sscanf(s, "%d", &w); e == nil && n == 1 {
		h = w
	} else {
		return 0, 0, fmt.Errorf("-mesh %q: want WxH (e.g. 16x16)", s)
	}
	if w < 1 || h < 1 {
		return 0, 0, fmt.Errorf("-mesh %q: dimensions must be positive", s)
	}
	return w, h, nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "socsim: %v\n", err)
	os.Exit(1)
}
