// Command socsim runs mixed-criticality contention scenarios on the
// vehicle-integration-platform model: a critical control loop
// co-located with best-effort memory hogs, with the paper's QoS
// mechanisms individually switchable. It prints the critical
// application's read-latency profile per configuration — the X1
// experiment from DESIGN.md as a standalone tool.
//
// Usage:
//
//	socsim [-hogs 6] [-ms 4] [-dsu] [-memguard] [-shape] [-all]
//	       [-metrics file.json] [-trace file.json]
//
// -metrics dumps the unified telemetry registry (counters, gauges,
// latency histograms) as JSON; -trace records a Chrome trace_event
// timeline (load it in Perfetto or chrome://tracing) with per-bank
// DRAM service spans, per-flow NoC delivery spans, and MemGuard
// stall/depletion events. "-" writes either to stdout. Both are
// deterministic: identical invocations produce byte-identical files.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/dsu"
	"repro/internal/mpam"
	"repro/internal/noc"
	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	hogs := flag.Int("hogs", 6, "number of best-effort aggressor apps")
	msec := flag.Int("ms", 4, "simulated milliseconds per scenario")
	useDSU := flag.Bool("dsu", false, "partition the L3 with a DSU CLUSTERPARTCR")
	useMG := flag.Bool("memguard", false, "give each hog a MemGuard budget")
	useShape := flag.Bool("shape", false, "install NI token-bucket shapers on hog nodes")
	useMPAM := flag.Bool("mpam", false, "regulate the memory channel with MPAM min/max bandwidth")
	all := flag.Bool("all", false, "run the full scenario matrix")
	metricsPath := flag.String("metrics", "", "write telemetry metrics JSON to this file (\"-\" for stdout)")
	tracePath := flag.String("trace", "", "write a Chrome trace_event JSON timeline to this file (\"-\" for stdout)")
	flag.Parse()

	if *all && (*metricsPath != "" || *tracePath != "") {
		fatal(fmt.Errorf("-metrics/-trace apply to a single scenario; drop -all"))
	}

	if *all {
		fmt.Println("scenario                         mean(ns)   p95(ns)    max(ns)   DRAM row-hit")
		for _, sc := range []struct {
			name                  string
			dsu, mg, shaped, mpam bool
		}{
			{"solo (0 hogs)", false, false, false, false},
			{"contended", false, false, false, false},
			{"contended + DSU", true, false, false, false},
			{"contended + MemGuard", false, true, false, false},
			{"contended + shaping", false, false, true, false},
			{"contended + MPAM channel", false, false, false, true},
			{"contended + all mechanisms", true, true, true, true},
		} {
			n := *hogs
			if sc.name == "solo (0 hogs)" {
				n = 0
			}
			st, hit := run(n, *msec, sc.dsu, sc.mg, sc.shaped, sc.mpam, "", "")
			fmt.Printf("%-32s %-10.1f %-10.1f %-9.1f %.2f\n", sc.name,
				st.MeanReadLatency.Nanoseconds(), st.P95ReadLatency.Nanoseconds(),
				st.MaxReadLatency.Nanoseconds(), hit)
		}
		return
	}

	st, hit := run(*hogs, *msec, *useDSU, *useMG, *useShape, *useMPAM, *metricsPath, *tracePath)
	fmt.Printf("critical app read latency over %dms with %d hogs (dsu=%v memguard=%v shape=%v mpam=%v):\n",
		*msec, *hogs, *useDSU, *useMG, *useShape, *useMPAM)
	fmt.Printf("  accesses  %d (hits %d, misses %d)\n", st.Issued, st.L3Hits, st.L3Misses)
	fmt.Printf("  mean      %.1f ns\n", st.MeanReadLatency.Nanoseconds())
	fmt.Printf("  p95       %.1f ns\n", st.P95ReadLatency.Nanoseconds())
	fmt.Printf("  max       %.1f ns\n", st.MaxReadLatency.Nanoseconds())
	fmt.Printf("  DRAM row-hit rate %.2f\n", hit)
}

func run(hogs, msec int, useDSU, useMG, useShape, useMPAM bool, metricsPath, tracePath string) (core.AppStats, float64) {
	p, err := core.New(core.DefaultConfig())
	if err != nil {
		fatal(err)
	}
	if metricsPath != "" || tracePath != "" {
		if _, err := p.EnableTelemetry(tracePath != ""); err != nil {
			fatal(err)
		}
	}
	if useMPAM {
		if err := p.EnableMPAMChannel(mpam.BWConfig{CapacityBytesPerNS: 2.0}); err != nil {
			fatal(err)
		}
		// Critical traffic (PARTID 1) gets a minimum guarantee and top
		// priority; hog PARTIDs are capped.
		if err := p.ConfigureMPAM(1, mpam.PartitionBW{MinBytesPerNS: 0.8, Priority: 1}); err != nil {
			fatal(err)
		}
	}
	critProf, err := trace.NewProfile(trace.ControlLoop, 0, 1)
	if err != nil {
		fatal(err)
	}
	crit, err := p.AddApp(core.AppConfig{
		Name: "crit", Node: noc.Coord{X: 0, Y: 0}, Cluster: 0, Scheme: 1,
		Profile: critProf, Critical: true,
	})
	if err != nil {
		fatal(err)
	}
	for i := 0; i < hogs; i++ {
		name := fmt.Sprintf("hog%d", i)
		prof, err := trace.NewProfile(trace.Infotainment, uint64(1+i)<<30, uint64(100+i))
		if err != nil {
			fatal(err)
		}
		node := noc.Coord{X: 1 + i%3, Y: i / 3 % 4}
		hog, err := p.AddApp(core.AppConfig{
			Name: name, Node: node, Cluster: 0, Scheme: dsu.SchemeID(2 + i%6), Profile: prof,
		})
		if err != nil {
			fatal(err)
		}
		if useMG {
			if err := p.SetMemBudget(name, 16<<10); err != nil {
				fatal(err)
			}
		}
		if useShape {
			if err := p.SetNodeShaper(node, 256, 0.2); err != nil {
				fatal(err)
			}
		}
		if useMPAM {
			if err := p.ConfigureMPAM(mpam.PARTID(hog.Config().Scheme), mpam.PartitionBW{MaxBytesPerNS: 0.15}); err != nil {
				fatal(err)
			}
		}
		hog.Start()
	}
	if useDSU {
		reg, err := dsu.Encode(map[dsu.SchemeID][]dsu.Group{1: {0, 1}})
		if err != nil {
			fatal(err)
		}
		if err := p.ProgramDSU(0, reg); err != nil {
			fatal(err)
		}
	}
	crit.Start()
	p.RunFor(sim.Duration(msec) * sim.Millisecond)
	if suite := p.Telemetry(); suite != nil {
		p.SnapshotMetrics()
		if metricsPath != "" {
			if err := suite.WriteMetricsFile(metricsPath); err != nil {
				fatal(err)
			}
		}
		if tracePath != "" {
			if err := suite.WriteTraceFile(tracePath); err != nil {
				fatal(err)
			}
		}
	}
	return crit.Stats(), p.Memory().Stats().RowHitRate()
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "socsim: %v\n", err)
	os.Exit(1)
}
