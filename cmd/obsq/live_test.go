package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/obs"
)

func TestCmdPruneRetention(t *testing.T) {
	dir := t.TempDir()
	st, err := obs.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if _, err := st.Append(obs.RunRecord{Kind: obs.KindBench, Label: fmt.Sprintf("r%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	st.Close()

	var out, errw bytes.Buffer
	if code := run([]string{"prune", "-store", dir, "-keep", "2"}, &out, &errw); code != 0 {
		t.Fatalf("prune exit %d: %s", code, errw.String())
	}
	if !strings.Contains(out.String(), "pruned 6 record(s)") {
		t.Fatalf("prune output: %q", out.String())
	}

	st2, err := obs.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	recs, err := st2.Query(obs.Filter{})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].Label != "r6" || recs[1].Seq != 8 {
		t.Fatalf("post-prune records: %+v", recs)
	}

	// -keep is mandatory.
	if code := run([]string{"prune", "-store", dir}, &out, &errw); code != 2 {
		t.Fatalf("prune without -keep exit %d", code)
	}
}

func TestCmdWatchStreamsLiveSLOs(t *testing.T) {
	var polls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := polls.Add(1)
		fmt.Fprintf(w, "rmserver_decision_latency_ns{quantile=\"0.99\"} %d\n", 800_000+n)
		fmt.Fprintf(w, "rmserver_shard_decisions_total %d\n", n*200_000)
		fmt.Fprint(w, "rmserver_breaker_state 0\n# EOF\n")
	}))
	defer srv.Close()

	var out, errw bytes.Buffer
	code := run([]string{"watch", "-url", srv.URL, "-interval", "1ms", "-count", "3"}, &out, &errw)
	if code != 0 {
		t.Fatalf("watch exit %d: %s", code, errw.String())
	}
	if polls.Load() != 3 {
		t.Fatalf("server polled %d times, want 3", polls.Load())
	}
	for _, want := range []string{"live-decision-p99", "live-throughput", "live-breaker-closed", "-- poll 3 (3 ok, 0 failed)"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("watch output missing %q:\n%s", want, out.String())
		}
	}

	// JSON mode: one status array per tick, decodable.
	out.Reset()
	code = run([]string{"watch", "-url", srv.URL, "-interval", "1ms", "-count", "2", "-json"}, &out, &errw)
	if code != 0 {
		t.Fatalf("watch -json exit %d: %s", code, errw.String())
	}
	dec := json.NewDecoder(&out)
	ticks := 0
	for dec.More() {
		var sts []obs.LiveStatus
		if err := dec.Decode(&sts); err != nil {
			t.Fatal(err)
		}
		if len(sts) != 3 {
			t.Fatalf("tick carried %d statuses", len(sts))
		}
		ticks++
	}
	if ticks != 2 {
		t.Fatalf("decoded %d ticks, want 2", ticks)
	}

	// A dead endpoint is a warning per tick, not a crash.
	srv.Close()
	out.Reset()
	errw.Reset()
	if code := run([]string{"watch", "-url", srv.URL, "-interval", "1ms", "-count", "1"}, &out, &errw); code != 0 {
		t.Fatalf("watch against dead endpoint exit %d", code)
	}
	if !strings.Contains(errw.String(), "obsq watch:") {
		t.Fatalf("no warning for failed scrape: %q", errw.String())
	}
}

// TestGrafanaArtifactsCommitted pins the committed provisioning JSON
// to the generator: if the live SLOs (or the panel set) change,
// re-run `go run ./cmd/obsq export-grafana` and commit the diff.
func TestGrafanaArtifactsCommitted(t *testing.T) {
	files, err := grafanaArtifacts()
	if err != nil {
		t.Fatal(err)
	}
	for name, want := range files {
		path := filepath.Join("..", "..", "config", "grafana", name)
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("committed artifact missing (run `obsq export-grafana`): %v", err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s is stale: regenerate with `go run ./cmd/obsq export-grafana`", path)
		}
	}
}

func TestGrafanaArtifactsCoverSLOs(t *testing.T) {
	files, err := grafanaArtifacts()
	if err != nil {
		t.Fatal(err)
	}
	dash, alerts := string(files[grafanaDashboardFile]), string(files[grafanaAlertsFile])
	for _, l := range obs.LiveServiceSLOs() {
		if !strings.Contains(dash, l.Name) {
			t.Errorf("dashboard missing panel for %s", l.Name)
		}
		if !strings.Contains(alerts, l.Name+" breach") {
			t.Errorf("alerts missing rule for %s", l.Name)
		}
	}
	// Rate objectives export as PromQL rates.
	if !strings.Contains(dash, "rate(rmserver_shard_decisions_total[1m])") {
		t.Error("throughput panel is not a rate() expression")
	}
	// Both parse as JSON.
	for name, b := range files {
		var v any
		if err := json.Unmarshal(b, &v); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestCmdExportGrafanaWritesDir(t *testing.T) {
	dir := t.TempDir()
	var out, errw bytes.Buffer
	if code := run([]string{"export-grafana", "-dir", dir}, &out, &errw); code != 0 {
		t.Fatalf("export-grafana exit %d: %s", code, errw.String())
	}
	for _, name := range []string{grafanaDashboardFile, grafanaAlertsFile} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Error(err)
		}
		if !strings.Contains(out.String(), name) {
			t.Errorf("output does not mention %s: %q", name, out.String())
		}
	}
}
