package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
)

// exec runs obsq with args and returns (exit code, stdout, stderr).
func exec(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errw bytes.Buffer
	code := run(args, &out, &errw)
	return code, out.String(), errw.String()
}

// benchFile writes a kernel-bench-shaped JSON file and returns its
// path; eventsPerSec parameterizes the injected-regression tests.
func benchFile(t *testing.T, dir string, eventsPerSec float64) string {
	t.Helper()
	doc := map[string]any{
		"benchmark": "kernel_dispatch",
		"events":    200000,
		"new": map[string]any{
			"ns_per_event":     1e9 / eventsPerSec,
			"events_per_sec":   eventsPerSec,
			"allocs_per_event": 0.0,
		},
		"speedup": 2.0,
	}
	data, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "bench.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// benchFileParallel writes a bench file in the current BENCH_kernel.json
// schema — the per-partition-count scaling series plus the big-mesh
// platform series — with the kernel 4-partition and big-mesh
// 8-partition events/sec parameterized for regression-injection tests.
func benchFileParallel(t *testing.T, dir, name string, p4PerSec, bigmeshP8PerSec float64) string {
	t.Helper()
	point := func(parts int, perSec float64) map[string]any {
		return map[string]any{
			"partitions":       parts,
			"ns_per_event":     1e9 / perSec,
			"events_per_sec":   perSec,
			"allocs_per_event": 0.001,
		}
	}
	bigmesh := func(parts int, perSec float64) map[string]any {
		return map[string]any{
			"partitions":     parts,
			"events_per_sec": perSec,
			"events":         190466,
			"gomaxprocs":     8,
		}
	}
	doc := map[string]any{
		"benchmark": "kernel_dispatch",
		"events":    100000,
		"new": map[string]any{
			"ns_per_event":     60.0,
			"events_per_sec":   16.6e6,
			"allocs_per_event": 0.0,
		},
		"speedup": 2.2,
		"parallel": map[string]any{
			"gomaxprocs": 4,
			"series": []any{
				point(1, 15.7e6),
				point(2, 16.4e6),
				point(4, p4PerSec),
				point(8, 23.5e6),
			},
			"bigmesh": []any{
				bigmesh(0, 2.3e6),
				bigmesh(1, 2.4e6),
				bigmesh(4, 5.1e6),
				bigmesh(8, bigmeshP8PerSec),
			},
		},
	}
	data, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestIngestBenchParallelSeries(t *testing.T) {
	path := benchFileParallel(t, t.TempDir(), "bench.json", 19.1e6, 7.5e6)
	name, vals, err := ingestBench(path)
	if err != nil {
		t.Fatal(err)
	}
	if name != "kernel_dispatch" {
		t.Fatalf("benchmark name = %q", name)
	}
	// The series flatten by their partitions discriminator, never by
	// array index, so the metric names survive reordering or extending
	// the series. parallel.bigmesh is the clustered-platform scaling
	// series (p0 = the sequential engine), the one the scale-smoke CI
	// job gates on.
	for metric, want := range map[string]float64{
		"parallel.gomaxprocs":                 4,
		"parallel.series.events_per_sec_p1":   15.7e6,
		"parallel.series.events_per_sec_p4":   19.1e6,
		"parallel.series.events_per_sec_p8":   23.5e6,
		"parallel.series.allocs_per_event_p2": 0.001,
		"parallel.bigmesh.events_per_sec_p0":  2.3e6,
		"parallel.bigmesh.events_per_sec_p8":  7.5e6,
		"parallel.bigmesh.events_p4":          190466,
		"new.events_per_sec":                  16.6e6,
	} {
		if got, ok := vals[metric]; !ok || got != want {
			t.Errorf("vals[%q] = %v (present=%v), want %v", metric, got, ok, want)
		}
	}
	for k := range vals {
		if strings.Contains(k, "series.0") || strings.Contains(k, "partitions") {
			t.Errorf("index- or discriminator-named leaf leaked: %q", k)
		}
	}
}

func TestSentinelParallelScalingRegression(t *testing.T) {
	// The bench-smoke gate's parallel-scaling shape: a drop confined to
	// the 4-partition series point must still trip the sentinel, which
	// requires the flattener to name the point stably and the direction
	// heuristics to read events_per_sec_p4 as higher-better.
	dir := t.TempDir()
	store := filepath.Join(dir, "store")
	good := benchFileParallel(t, dir, "good.json", 19.1e6, 7.5e6)
	for i := 0; i < 2; i++ {
		if code, _, errOut := exec(t, "record", "-store", store, "-bench", good); code != 0 {
			t.Fatalf("record failed: %s", errOut)
		}
	}
	if code, _, errOut := exec(t, "sentinel", "-store", store, "-min-history", "1"); code != 0 {
		t.Fatalf("identical parallel series flagged: %s", errOut)
	}

	bad := benchFileParallel(t, dir, "bad.json", 1.91e6, 7.5e6)
	if code, _, errOut := exec(t, "record", "-store", store, "-bench", bad); code != 0 {
		t.Fatalf("bad record failed: %s", errOut)
	}
	code, out, errOut := exec(t, "sentinel", "-store", store, "-min-history", "1")
	if code != 1 {
		t.Fatalf("p4 scaling collapse exit = %d, stderr = %q\n%s", code, errOut, out)
	}
	if !strings.Contains(out, "parallel.series.events_per_sec_p4") {
		t.Fatalf("finding does not name the regressed series point:\n%s", out)
	}
}

func TestSentinelBigMeshScalingRegression(t *testing.T) {
	// The scale-smoke gate's shape: a collapse confined to the big-mesh
	// 8-partition point must trip the sentinel under -only
	// parallel.bigmesh.events_per_sec_p8, the metric that CI job names.
	dir := t.TempDir()
	store := filepath.Join(dir, "store")
	good := benchFileParallel(t, dir, "good.json", 19.1e6, 7.5e6)
	for i := 0; i < 2; i++ {
		if code, _, errOut := exec(t, "record", "-store", store, "-bench", good); code != 0 {
			t.Fatalf("record failed: %s", errOut)
		}
	}
	if code, _, errOut := exec(t, "sentinel", "-store", store, "-min-history", "1",
		"-only", "parallel.bigmesh.events_per_sec_p8"); code != 0 {
		t.Fatalf("identical big-mesh series flagged: %s", errOut)
	}

	bad := benchFileParallel(t, dir, "bad.json", 19.1e6, 0.75e6)
	if code, _, errOut := exec(t, "record", "-store", store, "-bench", bad); code != 0 {
		t.Fatalf("bad record failed: %s", errOut)
	}
	code, out, errOut := exec(t, "sentinel", "-store", store, "-min-history", "1",
		"-only", "parallel.bigmesh.events_per_sec_p8")
	if code != 1 {
		t.Fatalf("big-mesh p8 collapse exit = %d, stderr = %q\n%s", code, errOut, out)
	}
	if !strings.Contains(out, "parallel.bigmesh.events_per_sec_p8") {
		t.Fatalf("finding does not name the big-mesh series point:\n%s", out)
	}
}

func TestRunUsageAndUnknownCommand(t *testing.T) {
	if code, _, _ := exec(t); code != 2 {
		t.Fatalf("bare obsq exit = %d, want 2", code)
	}
	if code, _, errOut := exec(t, "frobnicate"); code != 2 || !strings.Contains(errOut, "unknown command") {
		t.Fatalf("unknown command exit = %d, stderr = %q", code, errOut)
	}
	if code, out, _ := exec(t, "help"); code != 0 || !strings.Contains(out, "sentinel") {
		t.Fatalf("help exit = %d, out = %q", code, out)
	}
}

func TestRecordQuerySeriesRoundTrip(t *testing.T) {
	dir := t.TempDir()
	store := filepath.Join(dir, "store")
	bench := benchFile(t, dir, 14.7e6)

	code, out, errOut := exec(t, "record", "-store", store, "-bench", bench, "-config", "gate=speedup,bench=kernel")
	if code != 0 {
		t.Fatalf("record failed (%d): %s", code, errOut)
	}
	if !strings.Contains(out, "label=kernel_dispatch") {
		t.Fatalf("record output = %q, want the bench's own name", out)
	}

	// Explicit values merge over the ingested ones.
	if code, _, errOut = exec(t, "record", "-store", store, "-bench", bench,
		"-values", "new.events_per_sec=15e6"); code != 0 {
		t.Fatalf("second record failed: %s", errOut)
	}

	code, out, _ = exec(t, "query", "-store", store)
	if code != 0 || !strings.Contains(out, "kernel_dispatch") || !strings.Contains(out, "ok") {
		t.Fatalf("query table (%d):\n%s", code, out)
	}

	code, out, _ = exec(t, "query", "-store", store, "-json")
	if code != 0 {
		t.Fatal("json query failed")
	}
	var recs []obs.RunRecord
	if err := json.Unmarshal([]byte(out), &recs); err != nil {
		t.Fatalf("query -json is not JSON: %v\n%s", err, out)
	}
	if len(recs) != 2 || recs[0].Values["new.events_per_sec"] != 14.7e6 || recs[0].ConfigFP == "" {
		t.Fatalf("records = %+v", recs)
	}
	if recs[1].Values["new.events_per_sec"] != 15e6 {
		t.Fatalf("-values did not override ingest: %+v", recs[1].Values)
	}

	code, out, _ = exec(t, "series", "-store", store, "-metric", "new.events_per_sec")
	if code != 0 || out != "1.47e+07\n1.5e+07\n" {
		t.Fatalf("series (%d) = %q", code, out)
	}

	code, out, _ = exec(t, "labels", "-store", store)
	if code != 0 || !strings.Contains(out, "bench") {
		t.Fatalf("labels (%d) = %q", code, out)
	}
}

func TestRecordFlagValidation(t *testing.T) {
	store := filepath.Join(t.TempDir(), "store")
	if code, _, _ := exec(t, "record", "-store", store); code != 2 {
		t.Fatalf("label-less record exit = %d, want 2", code)
	}
	if code, _, _ := exec(t, "record", "-store", store, "-label", "x", "-values", "nonsense"); code != 1 {
		t.Fatal("malformed -values accepted")
	}
	if code, _, _ := exec(t, "record", "-store", store, "-label", "x", "-config", "nonsense"); code != 1 {
		t.Fatal("malformed -config accepted")
	}
	if code, _, _ := exec(t, "series", "-store", store); code != 2 {
		t.Fatal("metric-less series accepted")
	}
}

func TestRecordEmbedsMetricsAndFailure(t *testing.T) {
	dir := t.TempDir()
	store := filepath.Join(dir, "store")
	om := filepath.Join(dir, "run.om")
	if err := os.WriteFile(om, []byte("# TYPE x gauge\nx 1\n# EOF\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code, _, errOut := exec(t, "record", "-store", store, "-kind", "contention",
		"-label", "cell", "-seed", "7", "-metrics", om, "-err", "boom"); code != 0 {
		t.Fatalf("record failed: %s", errOut)
	}
	code, out, _ := exec(t, "query", "-store", store, "-failed", "-json", "-full")
	if code != 0 {
		t.Fatal("failed-filter query errored")
	}
	var recs []obs.RunRecord
	if err := json.Unmarshal([]byte(out), &recs); err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Err != "boom" || recs[0].Seed != 7 ||
		!strings.HasSuffix(recs[0].Metrics, "# EOF\n") {
		t.Fatalf("failure record = %+v", recs)
	}
}

func TestSLOCommand(t *testing.T) {
	dir := t.TempDir()
	store := filepath.Join(dir, "store")
	for i := 0; i < 3; i++ {
		if code, _, errOut := exec(t, "record", "-store", store, "-kind", "contention",
			"-label", "cell", "-values", "audit.conformance=1"); code != 0 {
			t.Fatalf("record failed: %s", errOut)
		}
	}
	spec := filepath.Join(dir, "slo.json")
	if err := os.WriteFile(spec, []byte(
		`[{"name":"conf","metric":"audit.conformance","op":">=","goal":1,"target":0.99}]`), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, _ := exec(t, "slo", "-store", store, "-spec", spec, "-strict")
	if code != 0 || !strings.Contains(out, "100.0%") {
		t.Fatalf("met SLO (%d):\n%s", code, out)
	}

	// A failed run burns the budget; -strict turns that into exit 1.
	if code, _, _ := exec(t, "record", "-store", store, "-kind", "contention",
		"-label", "cell", "-err", "boom"); code != 0 {
		t.Fatal("failure record append failed")
	}
	code, _, errOut := exec(t, "slo", "-store", store, "-spec", spec, "-strict")
	if code != 1 || !strings.Contains(errOut, "unmet") {
		t.Fatalf("unmet SLO exit = %d, stderr = %q", code, errOut)
	}
	// Without -strict the evaluation reports but does not gate.
	if code, _, _ = exec(t, "slo", "-store", store, "-spec", spec); code != 0 {
		t.Fatal("non-strict slo gated")
	}
	// JSON output decodes.
	code, out, _ = exec(t, "slo", "-store", store, "-spec", spec, "-json")
	var sts []obs.SLOStatus
	if code != 0 {
		t.Fatal("slo -json errored")
	}
	if err := json.Unmarshal([]byte(out), &sts); err != nil || len(sts) != 1 {
		t.Fatalf("slo -json = %q (%v)", out, err)
	}
}

func TestSentinelCommandAcceptanceShape(t *testing.T) {
	// The CI gate's exact shape: identical bench records pass; a 10x
	// events/sec degradation exits non-zero.
	dir := t.TempDir()
	store := filepath.Join(dir, "store")
	good := benchFile(t, dir, 14.7e6)
	for i := 0; i < 2; i++ {
		if code, _, errOut := exec(t, "record", "-store", store, "-bench", good); code != 0 {
			t.Fatalf("record failed: %s", errOut)
		}
	}
	code, out, errOut := exec(t, "sentinel", "-store", store, "-min-history", "1")
	if code != 0 {
		t.Fatalf("identical runs flagged (%d): %s%s", code, out, errOut)
	}
	if !strings.Contains(out, "ok ") {
		t.Fatalf("sentinel reported no judgements:\n%s", out)
	}

	bad := benchFile(t, filepath.Join(dir), 1.47e6)
	if code, _, errOut := exec(t, "record", "-store", store, "-bench", bad); code != 0 {
		t.Fatalf("bad record failed: %s", errOut)
	}
	code, out, errOut = exec(t, "sentinel", "-store", store, "-min-history", "1")
	if code != 1 || !strings.Contains(errOut, "regression") {
		t.Fatalf("10x degradation exit = %d, stderr = %q\n%s", code, errOut, out)
	}
	if !strings.Contains(out, "REGRESSED") || !strings.Contains(out, "new.events_per_sec") {
		t.Fatalf("sentinel findings:\n%s", out)
	}

	// -only narrows judgement; JSON output decodes.
	if code, _, _ = exec(t, "sentinel", "-store", store, "-min-history", "1",
		"-only", "no_such_metric"); code != 0 {
		t.Fatal("-only filter did not narrow judgement")
	}
	code, out, _ = exec(t, "sentinel", "-store", store, "-min-history", "1", "-json")
	if code != 1 {
		t.Fatal("sentinel -json lost the gate")
	}
	var findings []obs.Finding
	if err := json.Unmarshal([]byte(out), &findings); err != nil || len(findings) == 0 {
		t.Fatalf("sentinel -json = %q (%v)", out, err)
	}
}
