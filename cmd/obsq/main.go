// Command obsq is the query surface of the cross-run observability
// store (internal/obs): it lists stored run records, extracts metric
// series, evaluates SLOs with burn rates over the stored history, and
// runs the regression sentinel against the trajectory — the CLI half
// of the store that cmd/sweep and the bench emitters write.
//
// Usage:
//
//	obsq <command> [-store DIR] [flags]
//
// Commands:
//
//	query     list records (table or -json)
//	series    print one metric's values in append order
//	labels    list distinct (kind, label) groups
//	slo       evaluate SLOs over the store (-strict exits 1 when unmet)
//	sentinel  judge the newest run per group against its trajectory
//	          (exits 1 when a regression is flagged)
//	record    append a record from flags or an ingested bench JSON
//	prune     drop all but the newest -keep records from the store
//	watch     poll a live /metrics endpoint and stream SLO burn rates
//	export-grafana
//	          write provisioned Grafana dashboard + alert rule JSON
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/obs"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

const usage = `usage: obsq <command> [-store DIR] [flags]

commands:
  query     list stored run records
  series    print one metric's values in append order
  labels    list distinct (kind, label) groups
  slo       evaluate SLOs over the stored history
  sentinel  judge the newest run per group against its trajectory
  record    append a record from flags or a bench JSON file
  prune     drop all but the newest -keep records from the store
  watch     poll a live /metrics endpoint and stream SLO burn rates
  export-grafana
            write provisioned Grafana dashboard + alert rule JSON

run "obsq <command> -h" for the command's flags
`

func run(args []string, out, errw io.Writer) int {
	if len(args) == 0 {
		fmt.Fprint(errw, usage)
		return 2
	}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "query":
		return cmdQuery(rest, out, errw)
	case "series":
		return cmdSeries(rest, out, errw)
	case "labels":
		return cmdLabels(rest, out, errw)
	case "slo":
		return cmdSLO(rest, out, errw)
	case "sentinel":
		return cmdSentinel(rest, out, errw)
	case "record":
		return cmdRecord(rest, out, errw)
	case "prune":
		return cmdPrune(rest, out, errw)
	case "watch":
		return cmdWatch(rest, out, errw)
	case "export-grafana":
		return cmdExportGrafana(rest, out, errw)
	case "-h", "-help", "--help", "help":
		fmt.Fprint(out, usage)
		return 0
	}
	fmt.Fprintf(errw, "obsq: unknown command %q\n%s", cmd, usage)
	return 2
}

// fail prints an operational error and returns the exit code.
func fail(errw io.Writer, err error) int {
	fmt.Fprintf(errw, "obsq: %v\n", err)
	return 1
}

// openStore opens the store and surfaces any crash recovery Open had
// to perform (a torn final line from a crashed writer) as a warning —
// the history is intact, but the operator should know a run's record
// was lost or repaired.
func openStore(dir string, errw io.Writer) (*obs.Store, error) {
	st, err := obs.Open(dir)
	if err != nil {
		return nil, err
	}
	if rec := st.Recovery(); rec.Recovered > 0 {
		fmt.Fprintf(errw, "obsq: warning: store recovered from a crashed writer: %s\n", rec.Message)
	}
	return st, nil
}

// filterFlags registers the shared record-filter flags on fs and
// returns a builder that materializes the obs.Filter after parsing.
func filterFlags(fs *flag.FlagSet) func() (obs.Filter, error) {
	kind := fs.String("kind", "", "filter by record kind (contention, admission, bench, ...)")
	label := fs.String("label", "", "filter by configuration label")
	seed := fs.String("seed", "", "filter by seed")
	failed := fs.Bool("failed", false, "only failure records")
	ok := fs.Bool("ok", false, "only successful records")
	last := fs.Int("last", 0, "keep only the newest N matching records")
	since := fs.Int64("since", 0, "only records recorded at or after this unix time")
	until := fs.Int64("until", 0, "only records recorded at or before this unix time")
	return func() (obs.Filter, error) {
		f := obs.Filter{
			Kind: *kind, Label: *label, Failed: *failed, OK: *ok,
			LastN: *last, Since: *since, Until: *until,
		}
		if *seed != "" {
			v, err := strconv.ParseUint(*seed, 10, 64)
			if err != nil {
				return f, fmt.Errorf("bad -seed %q: %v", *seed, err)
			}
			f.Seed = &v
		}
		return f, nil
	}
}

func cmdQuery(args []string, out, errw io.Writer) int {
	fs := flag.NewFlagSet("obsq query", flag.ContinueOnError)
	fs.SetOutput(errw)
	store := fs.String("store", ".obs", "store directory")
	asJSON := fs.Bool("json", false, "emit records as JSON")
	full := fs.Bool("full", false, "include the OpenMetrics payload in -json output")
	mkFilter := filterFlags(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	f, err := mkFilter()
	if err != nil {
		return fail(errw, err)
	}
	st, err := openStore(*store, errw)
	if err != nil {
		return fail(errw, err)
	}
	defer st.Close()
	recs, err := st.Query(f)
	if err != nil {
		return fail(errw, err)
	}
	if *asJSON {
		if !*full {
			for i := range recs {
				recs[i].Metrics = ""
			}
		}
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(recs); err != nil {
			return fail(errw, err)
		}
		return 0
	}
	fmt.Fprintf(out, "%4s %-10s %-40s %6s %-8s %s\n", "seq", "kind", "label", "seed", "status", "values")
	for _, r := range recs {
		status := "ok"
		if r.Failed() {
			status = "FAILED"
		}
		fmt.Fprintf(out, "%4d %-10s %-40s %6d %-8s %s\n",
			r.Seq, r.Kind, r.Label, r.Seed, status, compactValues(r.Values))
	}
	return 0
}

// compactValues renders a values map as sorted "k=v" pairs.
func compactValues(vals map[string]float64) string {
	keys := make([]string, 0, len(vals))
	for k := range vals {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%g", k, vals[k]))
	}
	return strings.Join(parts, " ")
}

func cmdSeries(args []string, out, errw io.Writer) int {
	fs := flag.NewFlagSet("obsq series", flag.ContinueOnError)
	fs.SetOutput(errw)
	store := fs.String("store", ".obs", "store directory")
	metric := fs.String("metric", "", "metric name to extract (required)")
	mkFilter := filterFlags(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *metric == "" {
		fmt.Fprintln(errw, "obsq series: -metric is required")
		return 2
	}
	f, err := mkFilter()
	if err != nil {
		return fail(errw, err)
	}
	st, err := openStore(*store, errw)
	if err != nil {
		return fail(errw, err)
	}
	defer st.Close()
	series, err := st.Series(*metric, f)
	if err != nil {
		return fail(errw, err)
	}
	for _, v := range series {
		fmt.Fprintf(out, "%g\n", v)
	}
	return 0
}

func cmdLabels(args []string, out, errw io.Writer) int {
	fs := flag.NewFlagSet("obsq labels", flag.ContinueOnError)
	fs.SetOutput(errw)
	store := fs.String("store", ".obs", "store directory")
	mkFilter := filterFlags(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	f, err := mkFilter()
	if err != nil {
		return fail(errw, err)
	}
	st, err := openStore(*store, errw)
	if err != nil {
		return fail(errw, err)
	}
	defer st.Close()
	labels, err := st.Labels(f)
	if err != nil {
		return fail(errw, err)
	}
	for _, kl := range labels {
		fmt.Fprintf(out, "%-10s %s\n", kl[0], kl[1])
	}
	return 0
}

func cmdSLO(args []string, out, errw io.Writer) int {
	fs := flag.NewFlagSet("obsq slo", flag.ContinueOnError)
	fs.SetOutput(errw)
	store := fs.String("store", ".obs", "store directory")
	specPath := fs.String("spec", "", "SLO spec JSON file (default: built-in objectives)")
	asJSON := fs.Bool("json", false, "emit statuses as JSON")
	strict := fs.Bool("strict", false, "exit 1 when any SLO is unmet")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	slos := obs.DefaultSLOs()
	if *specPath != "" {
		f, err := os.Open(*specPath)
		if err != nil {
			return fail(errw, err)
		}
		slos, err = obs.LoadSLOs(f)
		f.Close()
		if err != nil {
			return fail(errw, fmt.Errorf("spec %s: %w", *specPath, err))
		}
	}
	st, err := openStore(*store, errw)
	if err != nil {
		return fail(errw, err)
	}
	defer st.Close()
	statuses, err := obs.EvaluateStore(st, slos)
	if err != nil {
		return fail(errw, err)
	}
	if *asJSON {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(statuses); err != nil {
			return fail(errw, err)
		}
	} else {
		fmt.Fprintf(out, "%-24s %5s %5s %11s %9s %s\n", "slo", "runs", "good", "attainment", "burn", "met")
		for _, s := range statuses {
			fmt.Fprintf(out, "%-24s %5d %5d %10.1f%% %9.2f %v\n",
				s.SLO.Name, s.Runs, s.Good, 100*s.Attainment, s.BurnRate, s.Met)
		}
	}
	if *strict {
		for _, s := range statuses {
			if !s.Met {
				fmt.Fprintf(errw, "obsq: SLO %q unmet (attainment %.1f%% < target %.1f%%)\n",
					s.SLO.Name, 100*s.Attainment, 100*s.SLO.Target)
				return 1
			}
		}
	}
	return 0
}

func cmdSentinel(args []string, out, errw io.Writer) int {
	fs := flag.NewFlagSet("obsq sentinel", flag.ContinueOnError)
	fs.SetOutput(errw)
	store := fs.String("store", ".obs", "store directory")
	lastN := fs.Int("baseline", 0, "baseline depth: median of the last N healthy runs (default 5)")
	tolerance := fs.Float64("tolerance", 0, "relative tolerance band (default 0.25)")
	minHistory := fs.Int("min-history", 0, "minimum baseline samples before judging (default 1)")
	only := fs.String("only", "", "comma-separated metric substrings to judge (default: all known)")
	asJSON := fs.Bool("json", false, "emit findings as JSON")
	mkFilter := filterFlags(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	f, err := mkFilter()
	if err != nil {
		return fail(errw, err)
	}
	cfg := obs.SentinelConfig{LastN: *lastN, Tolerance: *tolerance, MinHistory: *minHistory}
	if *only != "" {
		cfg.Only = strings.Split(*only, ",")
	}
	st, err := openStore(*store, errw)
	if err != nil {
		return fail(errw, err)
	}
	defer st.Close()
	findings, err := cfg.CheckStore(st, f)
	if err != nil {
		return fail(errw, err)
	}
	if *asJSON {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			return fail(errw, err)
		}
	} else {
		for _, fd := range findings {
			fmt.Fprintln(out, fd.String())
		}
	}
	if reg := obs.Regressions(findings); len(reg) > 0 {
		fmt.Fprintf(errw, "obsq: %d regression(s) against the stored trajectory\n", len(reg))
		return 1
	}
	return 0
}

func cmdRecord(args []string, out, errw io.Writer) int {
	fs := flag.NewFlagSet("obsq record", flag.ContinueOnError)
	fs.SetOutput(errw)
	store := fs.String("store", ".obs", "store directory")
	kind := fs.String("kind", obs.KindBench, "record kind")
	label := fs.String("label", "", "configuration label (default: the bench JSON's benchmark name)")
	seed := fs.Uint64("seed", 0, "run seed")
	values := fs.String("values", "", "comma-separated name=value headline metrics")
	config := fs.String("config", "", "comma-separated k=v config axes to fingerprint")
	metricsPath := fs.String("metrics", "", "OpenMetrics snapshot file to embed (\"-\" for stdin)")
	benchPath := fs.String("bench", "", "bench emitter JSON to ingest (nested values flatten to dotted names)")
	errText := fs.String("err", "", "failure record text (marks the run failed)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	rec := obs.RunRecord{Kind: *kind, Label: *label, Seed: *seed, Err: *errText, Values: map[string]float64{}}
	if *benchPath != "" {
		name, vals, err := ingestBench(*benchPath)
		if err != nil {
			return fail(errw, err)
		}
		for k, v := range vals {
			rec.Values[k] = v
		}
		if rec.Label == "" {
			rec.Label = name
		}
	}
	if *values != "" {
		for _, pair := range strings.Split(*values, ",") {
			k, vs, ok := strings.Cut(pair, "=")
			if !ok {
				return fail(errw, fmt.Errorf("bad -values entry %q (want name=value)", pair))
			}
			v, err := strconv.ParseFloat(vs, 64)
			if err != nil {
				return fail(errw, fmt.Errorf("bad -values entry %q: %v", pair, err))
			}
			rec.Values[k] = v
		}
	}
	if *config != "" {
		cfg := map[string]string{}
		for _, pair := range strings.Split(*config, ",") {
			k, v, ok := strings.Cut(pair, "=")
			if !ok {
				return fail(errw, fmt.Errorf("bad -config entry %q (want k=v)", pair))
			}
			cfg[k] = v
		}
		rec.ConfigFP = obs.FingerprintConfig(cfg)
	}
	if *metricsPath != "" {
		var data []byte
		var err error
		if *metricsPath == "-" {
			data, err = io.ReadAll(os.Stdin)
		} else {
			data, err = os.ReadFile(*metricsPath)
		}
		if err != nil {
			return fail(errw, err)
		}
		rec.Metrics = string(data)
	}
	if rec.Label == "" {
		fmt.Fprintln(errw, "obsq record: -label is required (or a -bench file naming its benchmark)")
		return 2
	}
	if len(rec.Values) == 0 {
		rec.Values = nil
	}
	st, err := openStore(*store, errw)
	if err != nil {
		return fail(errw, err)
	}
	defer st.Close()
	stamped, err := st.Append(rec)
	if err != nil {
		return fail(errw, err)
	}
	fmt.Fprintf(out, "recorded seq=%d kind=%s label=%s (%d values)\n",
		stamped.Seq, stamped.Kind, stamped.Label, len(stamped.Values))
	return 0
}

// ingestBench reads a bench emitter JSON file (BENCH_kernel.json,
// BENCH_netcalc.json) and flattens its numeric fields into dotted
// metric names ("new.events_per_sec", "admission_churn.speedup"),
// returning the benchmark name and the values.
func ingestBench(path string) (string, map[string]float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return "", nil, err
	}
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		return "", nil, fmt.Errorf("bench %s: %v", path, err)
	}
	name, _ := doc["benchmark"].(string)
	vals := map[string]float64{}
	flattenJSON("", doc, vals)
	if len(vals) == 0 {
		return name, nil, fmt.Errorf("bench %s: no numeric fields", path)
	}
	return name, vals, nil
}

// flattenJSON walks decoded JSON, collecting numeric leaves under
// dotted names. Non-numeric leaves (the benchmark name, flags) are
// identity, not measurement, and are skipped.
func flattenJSON(prefix string, v any, vals map[string]float64) {
	switch x := v.(type) {
	case map[string]any:
		for k, sub := range x {
			key := k
			if prefix != "" {
				key = prefix + "." + k
			}
			flattenJSON(key, sub, vals)
		}
	case []any:
		for i, sub := range x {
			// Per-partition-count series points ({"partitions": 4,
			// "events_per_sec": ...}) flatten by the discriminator
			// rather than the array index, so names stay stable however
			// the series is ordered or extended and the sentinel can
			// track "parallel.series.events_per_sec_p4" across runs.
			if pt, ok := sub.(map[string]any); ok {
				if pv, ok := pt["partitions"].(float64); ok && pv == float64(int(pv)) {
					for k, leaf := range pt {
						if k == "partitions" {
							continue
						}
						flattenJSON(fmt.Sprintf("%s.%s_p%d", prefix, k, int(pv)), leaf, vals)
					}
					continue
				}
			}
			flattenJSON(fmt.Sprintf("%s.%d", prefix, i), sub, vals)
		}
	case float64:
		if prefix != "" {
			vals[prefix] = x
		}
	}
}
