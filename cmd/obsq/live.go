package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"time"

	"repro/internal/obs"
)

// cmdPrune drops all but the newest -keep records from the store —
// the retention lever for long-lived stores that accumulate a record
// per CI run. The rewrite is atomic and holds the store's
// cross-process lock, and surviving records keep their sequence
// numbers (the sidecar counter is untouched), so concurrent appenders
// and newest-run selection are unaffected.
func cmdPrune(args []string, out, errw io.Writer) int {
	fs := flag.NewFlagSet("obsq prune", flag.ContinueOnError)
	fs.SetOutput(errw)
	store := fs.String("store", ".obs", "store directory")
	keep := fs.Int("keep", -1, "number of newest records to retain (required)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *keep < 0 {
		fmt.Fprintln(errw, "obsq prune: -keep N is required (N >= 0)")
		return 2
	}
	st, err := openStore(*store, errw)
	if err != nil {
		return fail(errw, err)
	}
	defer st.Close()
	removed, err := st.Prune(*keep)
	if err != nil {
		return fail(errw, err)
	}
	fmt.Fprintf(out, "pruned %d record(s), kept at most %d\n", removed, *keep)
	return 0
}

// cmdWatch polls a live OpenMetrics endpoint and streams the service
// SLOs' burn rates per tick — the "is it healthy right now" view,
// next to `obsq slo` which answers it for stored history.
func cmdWatch(args []string, out, errw io.Writer) int {
	fs := flag.NewFlagSet("obsq watch", flag.ContinueOnError)
	fs.SetOutput(errw)
	url := fs.String("url", "http://127.0.0.1:9090/metrics", "OpenMetrics endpoint to poll")
	interval := fs.Duration("interval", time.Second, "poll interval")
	count := fs.Int("count", 0, "number of polls (0 = until interrupted)")
	ring := fs.Int("ring", 0, "points retained per series (0 = default)")
	asJSON := fs.Bool("json", false, "emit one JSON status array per tick")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	sc := obs.NewScraper(*url, *ring)
	slos := obs.LiveServiceSLOs()
	for i := 0; *count == 0 || i < *count; i++ {
		if i > 0 {
			time.Sleep(*interval)
		}
		if err := sc.Scrape(); err != nil {
			fmt.Fprintf(errw, "obsq watch: %v\n", err)
			continue
		}
		statuses, err := sc.EvaluateLive(slos)
		if err != nil {
			return fail(errw, err)
		}
		if *asJSON {
			enc := json.NewEncoder(out)
			if err := enc.Encode(statuses); err != nil {
				return fail(errw, err)
			}
			continue
		}
		okN, failN, _ := sc.Stats()
		fmt.Fprintf(out, "-- poll %d (%d ok, %d failed) %s\n",
			okN+failN, okN, failN, time.Now().Format(time.TimeOnly))
		fmt.Fprintf(out, "%-22s %8s %6s %11s %9s %s\n",
			"slo", "current", "points", "attainment", "burn", "met")
		for _, s := range statuses {
			fmt.Fprintf(out, "%-22s %8.3g %6d %10.1f%% %9.2f %v\n",
				s.SLO.Name, s.Current, s.Points, 100*s.Attainment, s.BurnRate, s.Met)
		}
	}
	return 0
}
