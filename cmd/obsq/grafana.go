package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/obs"
)

// Grafana provisioning artifacts for the service plane. The dashboard
// and alert rules are *generated* from obs.LiveServiceSLOs(), so the
// committed JSON under config/grafana/ cannot drift from the
// objectives `obsq watch` evaluates: change the SLOs, re-run
// `obsq export-grafana`, and the diff shows up in review. Generation
// is deterministic (struct field order and sorted map keys), which is
// what lets a test compare the committed files byte-for-byte against
// a fresh export.

const (
	grafanaDashboardFile = "dashboard-rmserver.json"
	grafanaAlertsFile    = "alerts-rmserver.json"
	// grafanaDatasource is the Prometheus datasource UID placeholder
	// provisioning substitutes.
	grafanaDatasource = "${DS_PROMETHEUS}"
)

// promExpr renders the PromQL a live objective corresponds to: the
// sample itself, or its rate for counter objectives.
func promExpr(l obs.LiveSLO) string {
	if l.Rate {
		return "rate(" + l.Sample + "[1m])"
	}
	return l.Sample
}

// grafanaPanel builds one timeseries panel. Maps marshal with sorted
// keys, so output stays deterministic.
func grafanaPanel(id int, title, expr, legend string, x, y int) map[string]any {
	return map[string]any{
		"id":    id,
		"title": title,
		"type":  "timeseries",
		"datasource": map[string]any{
			"type": "prometheus",
			"uid":  grafanaDatasource,
		},
		"gridPos": map[string]any{"h": 8, "w": 12, "x": x, "y": y},
		"targets": []map[string]any{{
			"refId":        "A",
			"expr":         expr,
			"legendFormat": legend,
		}},
	}
}

// grafanaDashboard assembles the service-plane dashboard: one panel
// per live SLO plus the operational families around them (per-shard
// queue wait and depth, HTTP latency, trace volume).
func grafanaDashboard() map[string]any {
	var panels []map[string]any
	id := 0
	add := func(title, expr, legend string) {
		x := (id % 2) * 12
		y := (id / 2) * 8
		id++
		panels = append(panels, grafanaPanel(id, title, expr, legend, x, y))
	}
	for _, l := range obs.LiveServiceSLOs() {
		add(l.Name, promExpr(l), l.Sample)
	}
	add("shard queue wait p99 (ns)",
		`rmserver_shard_queue_wait_ns{quantile="0.99"}`, "shard {{shard}}")
	add("shard queue depth peak",
		"rmserver_shard_queue_depth", "shard {{shard}}")
	add("HTTP p99 latency (ns)",
		`rmserver_http_latency_ns{quantile="0.99"}`, "http p99")
	add("trace spans recorded /s",
		"rate(wtrace_spans_total[1m])", "spans")
	return map[string]any{
		"uid":           "rmserver-service-plane",
		"title":         "RM Service Plane",
		"schemaVersion": 39,
		"editable":      true,
		"refresh":       "5s",
		"time":          map[string]any{"from": "now-15m", "to": "now"},
		"templating": map[string]any{
			"list": []map[string]any{{
				"name":  "DS_PROMETHEUS",
				"type":  "datasource",
				"query": "prometheus",
				"label": "Prometheus",
			}},
		},
		"panels": panels,
	}
}

// grafanaAlertRules assembles the provisioned alert-rule group: one
// rule per live SLO, firing when the objective's expression breaches
// its goal for 2m. The threshold direction follows the objective's Op
// — a "<=" goal alerts above it, a ">=" goal alerts below it.
func grafanaAlertRules() map[string]any {
	var rules []map[string]any
	for i, l := range obs.LiveServiceSLOs() {
		evalType := "gt"
		if l.Op == ">=" {
			evalType = "lt"
		}
		rules = append(rules, map[string]any{
			"uid":       fmt.Sprintf("rmserver-slo-%d", i+1),
			"title":     l.Name + " breach",
			"condition": "C",
			"for":       "2m",
			"labels":    map[string]any{"slo": l.Name, "service": "rmd"},
			"annotations": map[string]any{
				"summary": fmt.Sprintf("%s: %s %s %g violated", l.Name, promExpr(l), l.Op, l.Goal),
			},
			"data": []map[string]any{
				{
					"refId":         "A",
					"datasourceUid": grafanaDatasource,
					"relativeTimeRange": map[string]any{
						"from": 300, "to": 0,
					},
					"model": map[string]any{
						"refId": "A",
						"expr":  promExpr(l),
					},
				},
				{
					"refId":         "C",
					"datasourceUid": "__expr__",
					"model": map[string]any{
						"refId":      "C",
						"type":       "threshold",
						"expression": "A",
						"conditions": []map[string]any{{
							"evaluator": map[string]any{
								"type":   evalType,
								"params": []float64{l.Goal},
							},
						}},
					},
				},
			},
		})
	}
	return map[string]any{
		"apiVersion": 1,
		"groups": []map[string]any{{
			"orgId":    1,
			"name":     "rmserver-slo",
			"folder":   "RM Service Plane",
			"interval": "30s",
			"rules":    rules,
		}},
	}
}

// grafanaArtifacts renders both provisioning files.
func grafanaArtifacts() (map[string][]byte, error) {
	out := make(map[string][]byte, 2)
	for name, doc := range map[string]map[string]any{
		grafanaDashboardFile: grafanaDashboard(),
		grafanaAlertsFile:    grafanaAlertRules(),
	} {
		b, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return nil, err
		}
		out[name] = append(b, '\n')
	}
	return out, nil
}

// cmdExportGrafana writes the provisioning JSON into -dir (the
// committed config/grafana/ by default).
func cmdExportGrafana(args []string, out, errw io.Writer) int {
	fs := flag.NewFlagSet("obsq export-grafana", flag.ContinueOnError)
	fs.SetOutput(errw)
	dir := fs.String("dir", "config/grafana", "output directory")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	files, err := grafanaArtifacts()
	if err != nil {
		return fail(errw, err)
	}
	if err := os.MkdirAll(*dir, 0o755); err != nil {
		return fail(errw, err)
	}
	for _, name := range []string{grafanaDashboardFile, grafanaAlertsFile} {
		path := filepath.Join(*dir, name)
		if err := os.WriteFile(path, files[name], 0o644); err != nil {
			return fail(errw, err)
		}
		fmt.Fprintf(out, "wrote %s\n", path)
	}
	return 0
}
