package main

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/telemetry"
)

// lintStr lints a literal exposition.
func lintStr(src string, strict bool) []string {
	return lint("test", strings.NewReader(src), strict)
}

// wantClean asserts no diagnostics.
func wantClean(t *testing.T, errs []string) {
	t.Helper()
	if len(errs) != 0 {
		t.Fatalf("diagnostics on clean input: %v", errs)
	}
}

// wantError asserts some diagnostic mentions substr.
func wantError(t *testing.T, errs []string, substr string) {
	t.Helper()
	for _, e := range errs {
		if strings.Contains(e, substr) {
			return
		}
	}
	t.Fatalf("diagnostics %v missing %q", errs, substr)
}

const strictExposition = `# HELP req_seconds request latency
# TYPE req_seconds summary
req_seconds_count 10
req_seconds_sum 1.5
# HELP dram_reads total DRAM reads
# TYPE dram_reads counter
dram_reads_total{bank="0",note="a\"b\\c\nd"} 42
# EOF
`

func TestLintAcceptsWellFormedExposition(t *testing.T) {
	wantClean(t, lintStr(strictExposition, false))
	wantClean(t, lintStr(strictExposition, true))
}

func TestLintBaseSyntaxErrors(t *testing.T) {
	for _, c := range []struct{ src, want string }{
		{"x 1\n", "missing # EOF"},
		{"# EOF\nx 1\n", "content after # EOF"},
		{"# TYPE x wibble\nx 1\n# EOF\n", "unknown metric type"},
		{"# TYPE x gauge\n# TYPE x gauge\nx 1\n# EOF\n", "duplicate TYPE"},
		{"# WAT x\n# EOF\n", "unknown comment"},
		{"\n# EOF\n", "blank line"},
		{"x notanumber\n# EOF\n", "unparseable sample value"},
		{"0bad 1\n# EOF\n", "malformed sample line"},
		{"# HELP\n# EOF\n", "unknown comment"},
	} {
		wantError(t, lintStr(c.src, false), c.want)
	}
}

func TestLintDefaultModeToleratesMissingMetadata(t *testing.T) {
	// The repo's own renderer emits TYPE but no HELP; default mode
	// (what the live-endpoint smoke job runs) must keep accepting it.
	wantClean(t, lintStr("# TYPE x gauge\nx 1\n# EOF\n", false))
	// Even a bare sample with no TYPE is syntax-valid.
	wantClean(t, lintStr("x 1\n# EOF\n", false))
	// And sloppy label escaping is not a syntax concern.
	wantClean(t, lintStr("x{l=\"a\\qb\"} 1\n# EOF\n", false))
}

func TestLintStrictRequiresTypeAndHelp(t *testing.T) {
	errs := lintStr("x 1\n# EOF\n", true)
	wantError(t, errs, `sample "x" has no TYPE declaration`)

	errs = lintStr("# TYPE x gauge\nx 1\n# EOF\n", true)
	wantError(t, errs, `family "x" has no HELP declaration`)

	// Each family is flagged once, not once per sample.
	errs = lintStr("# TYPE x gauge\nx 1\nx{l=\"a\"} 2\n# EOF\n", true)
	if len(errs) != 1 {
		t.Fatalf("missing-HELP reported per sample: %v", errs)
	}
}

func TestLintStrictResolvesFamilySuffixes(t *testing.T) {
	// _total/_sum/_count/_bucket samples belong to their base family.
	src := `# HELP c requests
# TYPE c counter
c_total 1
c_created 12345
# HELP h latency
# TYPE h histogram
h_bucket{le="+Inf"} 3
h_count 3
h_sum 0.5
# EOF
`
	wantClean(t, lintStr(src, true))
}

func TestLintStrictLabelEscaping(t *testing.T) {
	head := "# HELP x x\n# TYPE x gauge\n"
	for _, c := range []struct{ sample, want string }{
		{`x{l="a\qb"} 1`, `illegal escape \q`},
		{`x{l="dangling\` + `"} 1`, "no closing quote"},
		{`x{l=unquoted} 1`, "not double-quoted"},
		{`x{0bad="v"} 1`, "illegal label name"},
		{`x{l="v"extra="w"} 1`, "unexpected"},
		{`x{l="v",} 1`, "trailing ','"},
		{`x{noeq} 1`, "missing '='"},
	} {
		wantError(t, lintStr(head+c.sample+"\n# EOF\n", true), c.want)
		// None of these are default-mode errors.
		wantClean(t, lintStr(head+c.sample+"\n# EOF\n", false))
	}
	// Legal escapes pass.
	wantClean(t, lintStr(head+`x{l="a\\b\"c\nd",m="plain"} 1`+"\n# EOF\n", true))
}

func TestLintAcceptsExemplars(t *testing.T) {
	src := `# HELP lat latency
# TYPE lat summary
lat{quantile="0.99"} 900 # {trace_id="4bf92f3577b34da6a3ce929d0e0e4736"} 900 1700000000.123
lat_sum 5400
lat_count 30
# HELP c requests
# TYPE c counter
c_total 5 # {trace_id="00f067aa0ba902b7"} 1
# EOF
`
	wantClean(t, lintStr(src, false))
	wantClean(t, lintStr(src, true))
}

func TestLintStrictExemplarErrors(t *testing.T) {
	head := "# HELP x x\n# TYPE x gauge\n"
	long := strings.Repeat("a", 140)
	for _, c := range []struct{ sample, want string }{
		{`x 1 # {t="v"}`, "want value [timestamp] after labelset"},
		{`x 1 # {t="v"} 1 2 3`, "want value [timestamp] after labelset"},
		{`x 1 # {t="v"} wat`, `unparseable value "wat"`},
		{`x 1 # {t="v"} 1 then`, `unparseable timestamp "then"`},
		{`x 1 # {t="a\qb"} 1`, `illegal escape \q`},
		{`x 1 # {0bad="v"} 1`, "illegal label name"},
		{`x 1 # {t="` + long + `"} 1`, "spec cap 128"},
	} {
		wantError(t, lintStr(head+c.sample+"\n# EOF\n", true), c.want)
		// Exemplar hygiene is a strict-mode concern; default mode only
		// needs the sample proper to parse.
		wantClean(t, lintStr(head+c.sample+"\n# EOF\n", false))
	}
	// A bare ` # ` with no labelset after it is not an exemplar
	// separator, so the line fails as a malformed sample.
	wantError(t, lintStr(head+"x 1 # nope\n# EOF\n", false), "malformed sample line")
	// A ' # ' inside a label value is not a separator either.
	wantClean(t, lintStr(head+`x{note="a # b"} 1`+"\n# EOF\n", true))
}

func TestLintExemplarOnRegistryOutput(t *testing.T) {
	// End-to-end: the repo's own renderer with an exemplar-carrying
	// histogram must pass -strict.
	reg := telemetry.NewRegistry()
	reg.SetHelp("lat_ns", "Latency.")
	h := reg.Histogram("lat_ns")
	for i := 1; i <= 100; i++ {
		h.RecordExemplar(int64(i), "4bf92f3577b34da6a3ce929d0e0e4736", 1700000000123456789)
	}
	var buf bytes.Buffer
	if err := reg.WriteOpenMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `# {trace_id="`) {
		t.Fatalf("exposition has no exemplar:\n%s", buf.String())
	}
	wantClean(t, lint("registry", strings.NewReader(buf.String()), true))
}

func TestLintRegistryOutputStaysDefaultClean(t *testing.T) {
	// End-to-end guard: whatever the repo's own registry renders must
	// keep passing the default lint the CI smoke job applies.
	reg := telemetry.NewRegistry()
	reg.Counter("dram.reads").Add(42)
	reg.Gauge("audit.crit.bound_ns").Set(1210)
	h := reg.Histogram("crit.read_latency_ns")
	for i := 0; i < 100; i++ {
		h.Record(int64(i))
	}
	var buf bytes.Buffer
	if err := reg.WriteOpenMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	wantClean(t, lint("registry", strings.NewReader(buf.String()), false))
}
