// Command omlint is a minimal OpenMetrics text-exposition linter: it
// reads an exposition from stdin (or the files named as arguments)
// and exits non-zero with a diagnostic if the syntax is malformed.
// The CI live-endpoint smoke job pipes `curl /metrics` through it to
// prove the exporter emits parseable OpenMetrics, with no external
// Prometheus tooling in the container.
//
// Checks: every line is a well-formed comment (# TYPE/# HELP/# UNIT),
// the # EOF terminator, or a sample line `name{labels} value [ts]`
// with a legal metric name and a parseable value; TYPE declarations
// precede their samples and are not duplicated; the exposition is
// terminated by exactly one # EOF with nothing after it.
package main

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

var (
	nameRe   = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	sampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})?\s+(\S+)(\s+\S+)?$`)
)

var validTypes = map[string]bool{
	"counter": true, "gauge": true, "histogram": true, "summary": true,
	"untyped": true, "info": true, "stateset": true, "gaugehistogram": true, "unknown": true,
}

// lint validates one exposition; returns the diagnostics found.
func lint(src string, r io.Reader) []string {
	var errs []string
	fail := func(line int, format string, args ...any) {
		errs = append(errs, fmt.Sprintf("%s:%d: %s", src, line, fmt.Sprintf(format, args...)))
	}
	types := make(map[string]string)
	sawEOF := false
	n := 0
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
	for sc.Scan() {
		n++
		line := sc.Text()
		if sawEOF {
			fail(n, "content after # EOF terminator")
			sawEOF = false // report once
		}
		switch {
		case line == "# EOF":
			sawEOF = true
		case strings.HasPrefix(line, "# TYPE "):
			fields := strings.Fields(line)
			if len(fields) != 4 {
				fail(n, "malformed TYPE comment %q", line)
				continue
			}
			name, typ := fields[2], fields[3]
			if !nameRe.MatchString(name) {
				fail(n, "illegal metric family name %q", name)
			}
			if !validTypes[typ] {
				fail(n, "unknown metric type %q", typ)
			}
			if _, dup := types[name]; dup {
				fail(n, "duplicate TYPE for family %q", name)
			}
			types[name] = typ
		case strings.HasPrefix(line, "# HELP "), strings.HasPrefix(line, "# UNIT "):
			// Free-form; accepted.
		case strings.HasPrefix(line, "#"):
			fail(n, "unknown comment %q (want TYPE/HELP/UNIT/EOF)", line)
		case strings.TrimSpace(line) == "":
			fail(n, "blank line not allowed in exposition")
		default:
			m := sampleRe.FindStringSubmatch(line)
			if m == nil {
				fail(n, "malformed sample line %q", line)
				continue
			}
			if v := m[3]; !parseableValue(v) {
				fail(n, "unparseable sample value %q", v)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fail(n, "read: %v", err)
	}
	if !sawEOF && len(errs) == 0 {
		fail(n, "missing # EOF terminator")
	}
	return errs
}

// parseableValue accepts OpenMetrics sample values: floats plus the
// spec's special forms.
func parseableValue(s string) bool {
	switch s {
	case "+Inf", "-Inf", "NaN":
		return true
	}
	_, err := strconv.ParseFloat(s, 64)
	return err == nil
}

func main() {
	var errs []string
	if args := os.Args[1:]; len(args) > 0 {
		for _, path := range args {
			f, err := os.Open(path)
			if err != nil {
				errs = append(errs, err.Error())
				continue
			}
			errs = append(errs, lint(path, f)...)
			f.Close()
		}
	} else {
		errs = lint("stdin", os.Stdin)
	}
	for _, e := range errs {
		fmt.Fprintf(os.Stderr, "omlint: %s\n", e)
	}
	if len(errs) > 0 {
		os.Exit(1)
	}
	fmt.Println("omlint: OK")
}
