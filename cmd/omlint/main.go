// Command omlint is a minimal OpenMetrics text-exposition linter: it
// reads an exposition from stdin (or the files named as arguments)
// and exits non-zero with a diagnostic if the syntax is malformed.
// The CI live-endpoint smoke job pipes `curl /metrics` through it to
// prove the exporter emits parseable OpenMetrics, with no external
// Prometheus tooling in the container.
//
// Checks: every line is a well-formed comment (# TYPE/# HELP/# UNIT),
// the # EOF terminator, or a sample line `name{labels} value [ts]`
// with a legal metric name and a parseable value; TYPE declarations
// precede their samples and are not duplicated; the exposition is
// terminated by exactly one # EOF with nothing after it.
//
// Sample lines may carry an OpenMetrics exemplar clause
// (` # {labels} value [timestamp]`) after the value; the clause is
// split off before the sample is validated.
//
// -strict additionally enforces exposition hygiene suitable for
// third-party scrapers: every sample must belong to a family with a
// TYPE and a HELP declaration (standard suffixes like _total, _sum,
// _count, _bucket resolve to their family), label sets are parsed
// in full — legal label names, double-quoted values, and only the
// spec's escapes (\\, \", \n) inside them — and exemplar clauses are
// validated: a well-formed labelset within the spec's 128-character
// cap, a parseable value, and a parseable timestamp when present.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

var (
	nameRe      = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRe = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
	sampleRe    = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})?\s+(\S+)(\s+\S+)?$`)
)

var validTypes = map[string]bool{
	"counter": true, "gauge": true, "histogram": true, "summary": true,
	"untyped": true, "info": true, "stateset": true, "gaugehistogram": true, "unknown": true,
}

// familySuffixes are the sample-name suffixes the spec derives from a
// family name, tried in order when resolving a sample to its TYPE
// declaration (counter _total/_created, summary/histogram
// _sum/_count/_bucket, gaugehistogram _gsum/_gcount, info _info).
var familySuffixes = []string{
	"_total", "_created", "_bucket", "_count", "_sum", "_gcount", "_gsum", "_info",
}

// lint validates one exposition; returns the diagnostics found.
// strict additionally demands HELP+TYPE metadata for every sampled
// family and fully parses label sets (names, quoting, escapes).
func lint(src string, r io.Reader, strict bool) []string {
	var errs []string
	fail := func(line int, format string, args ...any) {
		errs = append(errs, fmt.Sprintf("%s:%d: %s", src, line, fmt.Sprintf(format, args...)))
	}
	types := make(map[string]string)
	helps := make(map[string]bool)
	reported := make(map[string]bool) // families already flagged for missing metadata
	sawEOF := false
	n := 0
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
	for sc.Scan() {
		n++
		line := sc.Text()
		if sawEOF {
			fail(n, "content after # EOF terminator")
			sawEOF = false // report once
		}
		switch {
		case line == "# EOF":
			sawEOF = true
		case strings.HasPrefix(line, "# TYPE "):
			fields := strings.Fields(line)
			if len(fields) != 4 {
				fail(n, "malformed TYPE comment %q", line)
				continue
			}
			name, typ := fields[2], fields[3]
			if !nameRe.MatchString(name) {
				fail(n, "illegal metric family name %q", name)
			}
			if !validTypes[typ] {
				fail(n, "unknown metric type %q", typ)
			}
			if _, dup := types[name]; dup {
				fail(n, "duplicate TYPE for family %q", name)
			}
			types[name] = typ
		case strings.HasPrefix(line, "# HELP "):
			if fields := strings.Fields(line); len(fields) >= 3 {
				helps[fields[2]] = true
			} else {
				fail(n, "malformed HELP comment %q", line)
			}
		case strings.HasPrefix(line, "# UNIT "):
			// Free-form; accepted.
		case strings.HasPrefix(line, "#"):
			fail(n, "unknown comment %q (want TYPE/HELP/UNIT/EOF)", line)
		case strings.TrimSpace(line) == "":
			fail(n, "blank line not allowed in exposition")
		default:
			sample, exemplar := cutExemplar(line)
			m := sampleRe.FindStringSubmatch(sample)
			if m == nil {
				fail(n, "malformed sample line %q", line)
				continue
			}
			if v := m[3]; !parseableValue(v) {
				fail(n, "unparseable sample value %q", v)
			}
			if !strict {
				continue
			}
			if exemplar != "" {
				if err := lintExemplar(exemplar); err != nil {
					fail(n, "sample %q exemplar: %v", m[1], err)
				}
			}
			if m[2] != "" {
				if err := lintLabels(m[2]); err != nil {
					fail(n, "sample %q: %v", m[1], err)
				}
			}
			family, ok := familyOf(m[1], types)
			if !ok {
				if !reported[m[1]] {
					fail(n, "sample %q has no TYPE declaration", m[1])
					reported[m[1]] = true
				}
				continue
			}
			if !helps[family] && !reported[family] {
				fail(n, "family %q has no HELP declaration", family)
				reported[family] = true
			}
		}
	}
	if err := sc.Err(); err != nil {
		fail(n, "read: %v", err)
	}
	if !sawEOF && len(errs) == 0 {
		fail(n, "missing # EOF terminator")
	}
	return errs
}

// familyOf resolves a sample name to its declared family: the name
// itself, or the name with one standard suffix stripped.
func familyOf(name string, types map[string]string) (string, bool) {
	if _, ok := types[name]; ok {
		return name, true
	}
	for _, suf := range familySuffixes {
		if base := strings.TrimSuffix(name, suf); base != name && base != "" {
			if _, ok := types[base]; ok {
				return base, true
			}
		}
	}
	return "", false
}

// lintLabels validates a brace-delimited label set: legal label
// names, double-quoted values, and only the escapes the spec allows
// inside them (\\, \", \n).
func lintLabels(block string) error {
	s := block[1 : len(block)-1] // sampleRe guarantees the braces
	for s != "" {
		eq := strings.Index(s, "=")
		if eq < 0 {
			return fmt.Errorf("label %q missing '='", s)
		}
		name := s[:eq]
		if !labelNameRe.MatchString(name) {
			return fmt.Errorf("illegal label name %q", name)
		}
		s = s[eq+1:]
		if s == "" || s[0] != '"' {
			return fmt.Errorf("label %q value is not double-quoted", name)
		}
		i, closed := 1, false
		for i < len(s) {
			switch s[i] {
			case '\\':
				if i+1 >= len(s) {
					return fmt.Errorf("label %q value ends in a dangling escape", name)
				}
				switch s[i+1] {
				case '\\', '"', 'n':
					i += 2
				default:
					return fmt.Errorf("label %q value has illegal escape \\%c", name, s[i+1])
				}
			case '"':
				closed = true
				i++
			default:
				i++
			}
			if closed {
				break
			}
		}
		if !closed {
			return fmt.Errorf("label %q value has no closing quote", name)
		}
		s = s[i:]
		if s == "" {
			return nil
		}
		if s[0] != ',' {
			return fmt.Errorf("unexpected %q after label %q", s, name)
		}
		s = s[1:]
		if s == "" {
			return fmt.Errorf("trailing ',' in label set")
		}
	}
	return nil
}

// cutExemplar splits a sample line into the sample proper and its
// exemplar clause (the part after the ` # ` separator, labelset
// included), empty when the line carries none. The separator is only
// searched past the metric's own label block, so a '#' inside a label
// value cannot be mistaken for it.
func cutExemplar(line string) (sample, exemplar string) {
	from := 0
	if sp := strings.IndexByte(line, ' '); sp > 0 {
		if br := strings.IndexByte(line, '{'); br >= 0 && br < sp {
			if end := strings.IndexByte(line, '}'); end > br {
				from = end
			}
		}
	}
	if i := strings.Index(line[from:], " # {"); i >= 0 {
		i += from
		return line[:i], line[i+3:]
	}
	return line, ""
}

// lintExemplar validates an exemplar clause `{labels} value
// [timestamp]`: the labelset parses like any other (and stays within
// the spec's 128-character cap, measured over the block's interior),
// the value is a legal sample value, and the timestamp — when present
// — parses as seconds.
func lintExemplar(ex string) error {
	end := strings.IndexByte(ex, '}')
	if end < 0 {
		return fmt.Errorf("labelset %q not closed", ex)
	}
	block := ex[:end+1]
	if err := lintLabels(block); err != nil {
		return err
	}
	if n := end - 1; n > 128 {
		return fmt.Errorf("labelset is %d chars, spec cap 128", n)
	}
	fields := strings.Fields(ex[end+1:])
	switch len(fields) {
	case 1, 2:
	default:
		return fmt.Errorf("%q: want value [timestamp] after labelset", ex)
	}
	if !parseableValue(fields[0]) {
		return fmt.Errorf("unparseable value %q", fields[0])
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseFloat(fields[1], 64); err != nil {
			return fmt.Errorf("unparseable timestamp %q", fields[1])
		}
	}
	return nil
}

// parseableValue accepts OpenMetrics sample values: floats plus the
// spec's special forms.
func parseableValue(s string) bool {
	switch s {
	case "+Inf", "-Inf", "NaN":
		return true
	}
	_, err := strconv.ParseFloat(s, 64)
	return err == nil
}

func main() {
	strict := flag.Bool("strict", false, "also require HELP+TYPE metadata per sampled family and validate label-value escaping")
	flag.Parse()
	var errs []string
	if args := flag.Args(); len(args) > 0 {
		for _, path := range args {
			f, err := os.Open(path)
			if err != nil {
				errs = append(errs, err.Error())
				continue
			}
			errs = append(errs, lint(path, f, *strict)...)
			f.Close()
		}
	} else {
		errs = lint("stdin", os.Stdin, *strict)
	}
	for _, e := range errs {
		fmt.Fprintf(os.Stderr, "omlint: %s\n", e)
	}
	if len(errs) > 0 {
		os.Exit(1)
	}
	fmt.Println("omlint: OK")
}
