// Command autoconf demonstrates the configuration tooling the paper's
// Section II calls for: it profiles a critical application's memory
// traffic in isolation (empirical arrival curve + fitted token
// bucket), then searches an ordered ladder of QoS configurations on a
// contended scenario until the application's p95 read latency meets a
// target.
//
// Usage:
//
//	autoconf [-hogs 6] [-ms 2] [-target 0] (0 = 2x better than unmanaged)
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/autoconf"
	"repro/internal/core"
	"repro/internal/noc"
	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	hogs := flag.Int("hogs", 6, "number of best-effort aggressors")
	msec := flag.Int("ms", 2, "simulated milliseconds per evaluation")
	target := flag.Float64("target", 0, "p95 target in ns (0 = half the unmanaged p95)")
	flag.Parse()

	build := func() (*core.Platform, error) {
		p, err := core.New(core.DefaultConfig())
		if err != nil {
			return nil, err
		}
		prof, err := trace.NewProfile(trace.ControlLoop, 0, 1)
		if err != nil {
			return nil, err
		}
		if _, err := p.AddApp(core.AppConfig{
			Name: "crit", Node: noc.Coord{X: 0, Y: 0}, Cluster: 0, Scheme: 1,
			Profile: prof, Critical: true,
		}); err != nil {
			return nil, err
		}
		for i := 0; i < *hogs; i++ {
			hp, err := trace.NewProfile(trace.Infotainment, uint64(i+1)<<30, uint64(i)+3)
			if err != nil {
				return nil, err
			}
			if _, err := p.AddApp(core.AppConfig{
				Name: fmt.Sprintf("hog%d", i), Node: noc.Coord{X: 1 + i%3, Y: i / 3 % 4},
				Cluster: 0, Scheme: 2, Profile: hp,
			}); err != nil {
				return nil, err
			}
		}
		return p, nil
	}

	horizon := sim.Duration(*msec) * sim.Millisecond

	fmt.Println("== step 1: profile the critical app in isolation ==")
	prof, err := autoconf.ProfileMemoryTraffic(build, "crit", horizon)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("  accesses %d (miss rate %.3f), memory bytes %d\n",
		prof.Stats.Issued, float64(prof.Stats.L3Misses)/float64(prof.Stats.Issued), prof.Stats.BytesMoved)
	fmt.Printf("  fitted traffic contract: burst %.0f B, rate %.4f B/ns\n", prof.Burst, prof.Rate)
	fmt.Printf("  empirical arrival curve: %v\n", prof.Curve)

	fmt.Printf("\n== step 2: search QoS configurations (%d hogs) ==\n", *hogs)
	s := &autoconf.Search{Build: build, Critical: "crit", Horizon: horizon}
	cands := []autoconf.Candidate{
		{Name: "unmanaged"},
		{Name: "dsu-2-groups", CritGroups: 2},
		{Name: "memguard-16k", OtherBudget: 16 << 10},
		{Name: "dsu+memguard", CritGroups: 2, OtherBudget: 16 << 10},
		{Name: "everything", CritGroups: 3, OtherBudget: 8 << 10, OtherShapeRate: 0.1},
	}
	tgt := *target
	if tgt <= 0 {
		base, err := s.Evaluate(cands[0], 0)
		if err != nil {
			fatal(err)
		}
		tgt = base.Stats.P95ReadLatency.Nanoseconds() / 2
		fmt.Printf("  target: p95 <= %.1f ns (half of unmanaged %.1f ns)\n",
			tgt, base.Stats.P95ReadLatency.Nanoseconds())
	}
	best, all, ok, err := s.Run(cands, tgt)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("  %-16s %-10s %-10s %s\n", "candidate", "p95(ns)", "mean(ns)", "meets")
	for _, r := range all {
		fmt.Printf("  %-16s %-10.1f %-10.1f %v\n", r.Candidate.Name,
			r.Stats.P95ReadLatency.Nanoseconds(), r.Stats.MeanReadLatency.Nanoseconds(), r.MeetsP95)
	}
	if ok {
		fmt.Printf("\nselected configuration: %q\n", best.Candidate.Name)
	} else {
		fmt.Printf("\nno candidate met the target; best was %q at p95 %.1f ns\n",
			best.Candidate.Name, best.Stats.P95ReadLatency.Nanoseconds())
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "autoconf: %v\n", err)
	os.Exit(1)
}
