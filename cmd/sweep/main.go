// Command sweep is the deterministic parallel experiment runner: it
// expands a configuration matrix (QoS mechanisms × hog counts ×
// workload classes × horizons × seeds, plus optional admission-overlay
// runs) into independent run specs, executes them across a bounded
// worker pool — each run on its own fresh platform and simulation
// engine — and emits per-configuration aggregates (latency
// percentiles across seeds, slowdown vs. the isolated baseline,
// admission rejection rates) as a table, JSON, and CSV.
//
// Usage:
//
//	sweep [-workers N] [-mechs none,dsu,memguard,shape,mpam,all]
//	      [-hogs 0,6] [-workloads infotainment] [-ms 4] [-seeds 100]
//	      [-admission-apps 8,12] [-admission-crit 2]
//	      [-json file.json] [-csv file.csv]
//	      [-audit] [-run-metrics-dir dir] [-store dir] [-listen addr]
//	      [-cpuprofile cpu.prof] [-memprofile mem.prof]
//
// "-" writes JSON/CSV to stdout. Output is byte-identical for any
// -workers value: runs are hermetic and aggregation follows the spec
// order, so parallelism never changes the result, only the wall
// clock. A run that panics becomes a failure record in the aggregates
// instead of killing the sweep.
//
// -audit arms the runtime predictability auditor in every contention
// run; per-configuration violation counts land in the table, JSON,
// and CSV. -run-metrics-dir writes each run's end-of-run metrics
// snapshot (OpenMetrics text) into the directory, one file per run,
// so individual sweep cells are debuggable after the fact. -store
// appends every run (including failures) to the cross-run results
// store in that directory — headline values, config fingerprint, and
// the full metrics snapshot, queryable afterwards with obsq — and
// evaluates the built-in SLOs over the stored history when the sweep
// finishes. -listen serves live progress while the sweep executes:
// /progress (JSON done/failed/violation counts), /healthz, /slo (SLO
// statuses once computed), and /debug/pprof for profiling a long
// sweep in flight. All of these are off by default and leave the
// aggregate bytes unchanged.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"repro/internal/audit"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/sweep"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// startProfiles begins CPU profiling and arms the heap-profile dump;
// the returned stop must run before exit (deferred in main).
func startProfiles(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, err
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "sweep: -memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize up-to-date allocation stats
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "sweep: -memprofile: %v\n", err)
			}
		}
	}, nil
}

func main() {
	workers := flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	mechs := flag.String("mechs", "none,all", "comma-separated mechanism sets (none, dsu, memguard, shape, mpam, all, or +-joined combos)")
	hogs := flag.String("hogs", "0,6", "comma-separated aggressor counts (0 adds the isolated baseline)")
	workloads := flag.String("workloads", "infotainment", "comma-separated hog workload classes (control-loop, vision-pipeline, infotainment)")
	ms := flag.String("ms", "4", "comma-separated simulated horizons in milliseconds")
	seeds := flag.String("seeds", "100", "comma-separated seeds; each configuration runs once per seed")
	admApps := flag.String("admission-apps", "", "comma-separated app counts for admission-overlay runs (empty = none)")
	admCrit := flag.Int("admission-crit", 2, "critical apps per admission-overlay run")
	jsonPath := flag.String("json", "", "write aggregate JSON to this file (\"-\" for stdout)")
	csvPath := flag.String("csv", "", "write aggregate CSV to this file (\"-\" for stdout)")
	auditOn := flag.Bool("audit", false, "arm the runtime predictability auditor in every contention run")
	runMetricsDir := flag.String("run-metrics-dir", "", "write each run's metrics snapshot (OpenMetrics text) into this directory")
	storeDir := flag.String("store", "", "append per-run records to the cross-run results store in this directory and evaluate SLOs over it")
	listen := flag.String("listen", "", "serve live /progress, /healthz and pprof on this address while the sweep runs (off by default)")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the sweep to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile at exit to this file")
	flag.Parse()

	stopProfiles, err := startProfiles(*cpuProfile, *memProfile)
	if err != nil {
		fatal(err)
	}
	defer stopProfiles()

	mx, err := buildMatrix(*mechs, *hogs, *workloads, *ms, *seeds, *admApps, *admCrit)
	if err != nil {
		fatal(err)
	}
	specs := mx.Expand()
	if len(specs) == 0 {
		fatal(fmt.Errorf("empty configuration matrix"))
	}
	if err := armSpecs(specs, *auditOn, *runMetricsDir); err != nil {
		fatal(err)
	}

	// The store recorder arms its metrics capture after armSpecs so
	// both per-run files and stored payloads can coexist.
	var store *obs.Store
	var recorder *sweep.Recorder
	if *storeDir != "" {
		var err error
		if store, err = obs.Open(*storeDir); err != nil {
			fatal(fmt.Errorf("-store: %w", err))
		}
		defer store.Close()
		recorder = sweep.NewRecorder(store, specs)
	}

	var srv *audit.Server
	var observe func(sweep.Result)
	if *listen != "" {
		var err error
		if srv, err = audit.NewServer(*listen); err != nil {
			fatal(err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "sweep: live endpoint on http://%s (/progress /healthz /slo /debug/pprof)\n", srv.Addr())
		prog := sweep.NewProgress(len(specs), func(snap sweep.ProgressSnapshot) {
			if err := srv.PublishProgress(snap); err != nil {
				fmt.Fprintf(os.Stderr, "sweep: publish progress: %v\n", err)
			}
		})
		srv.PublishProgress(prog.Snapshot())
		observe = prog.Observe
	}

	fmt.Printf("sweep: %d runs (%d workers)\n", len(specs), effectiveWorkers(*workers, len(specs)))
	results := sweep.RunObserved(specs, *workers, nil, observe)
	summaries := sweep.Summarize(results)

	if recorder != nil {
		if err := recorder.Flush(results); err != nil {
			fatal(err)
		}
		statuses, err := obs.EvaluateStore(store, obs.DefaultSLOs())
		if err != nil {
			fatal(fmt.Errorf("-store: evaluate SLOs: %w", err))
		}
		printSLOs(os.Stderr, statuses)
		if srv != nil {
			if err := srv.PublishSLO(statuses); err != nil {
				fmt.Fprintf(os.Stderr, "sweep: publish slo: %v\n", err)
			}
		}
	}

	printTable(os.Stdout, summaries)
	if *jsonPath != "" {
		if err := telemetry.WriteOutput(*jsonPath, func(w io.Writer) error {
			return sweep.WriteJSON(w, summaries)
		}); err != nil {
			fatal(fmt.Errorf("json %s: %w", *jsonPath, err))
		}
	}
	if *csvPath != "" {
		if err := telemetry.WriteOutput(*csvPath, func(w io.Writer) error {
			return sweep.WriteCSV(w, summaries)
		}); err != nil {
			fatal(fmt.Errorf("csv %s: %w", *csvPath, err))
		}
	}
	for _, s := range summaries {
		if s.Failures > 0 {
			fmt.Fprintf(os.Stderr, "sweep: %d/%d runs failed in %q: %s\n", s.Failures, s.Runs, s.Label, s.Failure)
		}
	}
}

// armSpecs applies the per-run observability options onto the
// expanded specs: the auditor switch, and a unique per-run metrics
// snapshot path under dir (created if needed). Only contention runs
// carry a platform to instrument.
func armSpecs(specs []sweep.Spec, auditOn bool, dir string) error {
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("-run-metrics-dir: %w", err)
		}
	}
	for i := range specs {
		if specs[i].Kind != sweep.Contention {
			continue
		}
		specs[i].Platform.Audit = specs[i].Platform.Audit || auditOn
		if dir != "" {
			name := fmt.Sprintf("run%04d_%s_seed%d.om",
				i, sanitizeFilename(specs[i].Label), specs[i].Platform.Seed)
			specs[i].Platform.MetricsPath = filepath.Join(dir, name)
		}
	}
	return nil
}

// sanitizeFilename maps a spec label onto a safe file-name fragment.
func sanitizeFilename(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.', r == '+', r == '=':
			return r
		}
		return '_'
	}, s)
}

// buildMatrix parses the axis flags.
func buildMatrix(mechs, hogs, workloads, ms, seeds, admApps string, admCrit int) (sweep.Matrix, error) {
	var mx sweep.Matrix
	for _, m := range splitList(mechs) {
		set, err := sweep.ParseMechanismSet(m)
		if err != nil {
			return mx, err
		}
		mx.Mechanisms = append(mx.Mechanisms, set)
	}
	var err error
	if mx.Hogs, err = parseInts(hogs); err != nil {
		return mx, fmt.Errorf("-hogs: %w", err)
	}
	for _, w := range splitList(workloads) {
		cls, err := parseWorkload(w)
		if err != nil {
			return mx, err
		}
		mx.Workloads = append(mx.Workloads, cls)
	}
	msList, err := parseInts(ms)
	if err != nil {
		return mx, fmt.Errorf("-ms: %w", err)
	}
	for _, v := range msList {
		if v <= 0 {
			return mx, fmt.Errorf("-ms: horizon %d must be positive", v)
		}
		mx.Durations = append(mx.Durations, sim.Duration(v)*sim.Millisecond)
	}
	for _, s := range splitList(seeds) {
		v, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			return mx, fmt.Errorf("-seeds: %w", err)
		}
		mx.Seeds = append(mx.Seeds, v)
	}
	if mx.AdmissionApps, err = parseInts(admApps); err != nil {
		return mx, fmt.Errorf("-admission-apps: %w", err)
	}
	mx.AdmissionCrit = admCrit
	return mx, nil
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range splitList(s) {
		v, err := strconv.Atoi(part)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func parseWorkload(s string) (trace.WorkloadClass, error) {
	for _, cls := range []trace.WorkloadClass{trace.ControlLoop, trace.VisionPipeline, trace.Infotainment} {
		if cls.String() == s {
			return cls, nil
		}
	}
	return 0, fmt.Errorf("unknown workload class %q (want control-loop, vision-pipeline, infotainment)", s)
}

func effectiveWorkers(workers, specs int) int {
	if workers <= 0 {
		workers = maxProcs()
	}
	if workers > specs {
		workers = specs
	}
	return workers
}

func maxProcs() int {
	// Mirrors sweep.Run's default without importing runtime twice in
	// messages vs behaviour.
	return sweep.DefaultWorkers()
}

// printSLOs renders the stored-history SLO statuses.
func printSLOs(w io.Writer, statuses []obs.SLOStatus) {
	for _, s := range statuses {
		if s.Runs == 0 {
			continue // objective has no stored runs yet
		}
		fmt.Fprintf(w, "sweep: slo %-24s runs=%d attainment=%.1f%% burn=%.2f met=%v\n",
			s.SLO.Name, s.Runs, 100*s.Attainment, s.BurnRate, s.Met)
	}
}

// printTable renders the aggregate table.
func printTable(w io.Writer, summaries []sweep.ConfigSummary) {
	fmt.Fprintf(w, "%-40s %5s %5s %10s %10s %10s %9s %7s %5s %9s\n",
		"configuration", "runs", "fail", "mean(ns)", "p95(ns)", "max(ns)", "slowdown", "row-hit", "viol", "reject")
	for _, s := range summaries {
		if s.Kind == "admission" {
			fmt.Fprintf(w, "%-40s %5d %5d %10s %10s %10s %9s %7s %5s %8.1f%%\n",
				s.Label, s.Runs, s.Failures, "-", "-", "-", "-", "-", "-", 100*s.RejectionRate)
			continue
		}
		slow := "-"
		if s.SlowdownP95 > 0 {
			slow = fmt.Sprintf("%.2fx", s.SlowdownP95)
		}
		fmt.Fprintf(w, "%-40s %5d %5d %10.1f %10.1f %10.1f %9s %7.2f %5d %9s\n",
			s.Label, s.Runs, s.Failures, s.MeanNS, s.P95NS, s.MaxNS, slow, s.RowHitRate, s.Violations, "-")
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
	os.Exit(1)
}
