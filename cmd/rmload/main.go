// Command rmload drives an rmd instance with a synthetic admission
// workload and judges the outcome. It is the service plane's load
// harness: the soak profile measures the steady-state path (paced
// batches, availability and latency under normal load), the spike
// profile deliberately overruns the service (unpaced batches on many
// connections) to prove backpressure engages — 429s with Retry-After
// and, under sustained overload, the circuit breaker opening.
//
// Usage:
//
//	rmload -addr 127.0.0.1:9092 [-profile soak|spike] [-duration 5s]
//	       [-batch 512] [-conns 2] [-platforms 32] [-interval 5ms]
//	       [-store DIR] [-strict] [-traceparent HDR]
//
// -traceparent attaches a fixed W3C traceparent header to every batch
// request, so a traced rmd (rmd -trace-sample > 0) records the load
// run's sampled requests under the given trace id — the way a real
// upstream caller would propagate context into the admission service.
//
// Batches use the compact text/x-rmops wire format (see
// internal/rmserver): each batch registers batch/2 apps and withdraws
// them again, so platform state stays bounded while every operation
// exercises the full analytic admission path.
//
// -store appends a KindService record labeled "rmload/<profile>" —
// decisions/sec, availability, client and server latency quantiles,
// throttle and breaker counts, plus the server's full OpenMetrics
// snapshot — to the cross-run obs store, where obs.ServiceSLOs and
// the regression sentinel (obsq sentinel) judge the trajectory.
// -strict additionally evaluates the service SLOs over the store
// after recording and exits 1 if any objective is unmet.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/rmserver"
	"repro/internal/telemetry"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "rmload:", err)
		os.Exit(1)
	}
}

type result struct {
	requests  uint64
	ok        uint64
	throttled uint64
	errors    uint64
	admitted  uint64
	rejected  uint64
	shed      uint64 // per-op throttles inside 2xx/429 summaries
}

func run() error {
	var (
		addr      = flag.String("addr", "127.0.0.1:9092", "rmd address")
		profile   = flag.String("profile", "soak", "load profile: soak (paced) or spike (unpaced overload)")
		duration  = flag.Duration("duration", 5*time.Second, "how long to drive load")
		batch     = flag.Int("batch", 512, "operations per batch request (register+withdraw pairs)")
		conns     = flag.Int("conns", 2, "concurrent sender connections")
		platforms = flag.Int("platforms", 32, "distinct platforms in the workload")
		interval  = flag.Duration("interval", 5*time.Millisecond, "pacing between batches per connection (soak only)")
		storeDir  = flag.String("store", "", "obs store directory to append the run record to")
		strict    = flag.Bool("strict", false, "evaluate obs.ServiceSLOs over the store and fail if unmet")
		tracepar  = flag.String("traceparent", "", "W3C traceparent header to attach to every batch request")
	)
	flag.Parse()

	switch *profile {
	case "soak", "spike":
	default:
		return fmt.Errorf("unknown profile %q", *profile)
	}
	pace := *interval
	if *profile == "spike" {
		pace = 0
	}

	base := "http://" + *addr
	client := &http.Client{Timeout: 30 * time.Second}
	if err := waitHealthy(client, base, 5*time.Second); err != nil {
		return err
	}

	lat := telemetry.NewHistogram()
	var (
		mu    sync.Mutex
		total result
	)
	deadline := time.Now().Add(*duration)
	var wg sync.WaitGroup
	for c := 0; c < *conns; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			r := sender(client, base, c, *batch, *platforms, pace, deadline, lat, *tracepar)
			mu.Lock()
			total.requests += r.requests
			total.ok += r.ok
			total.throttled += r.throttled
			total.errors += r.errors
			total.admitted += r.admitted
			total.rejected += r.rejected
			total.shed += r.shed
			mu.Unlock()
		}(c)
	}
	start := time.Now()
	wg.Wait()
	elapsed := time.Since(start)

	stats, err := fetchStats(client, base)
	if err != nil {
		return fmt.Errorf("fetch /v1/stats: %w", err)
	}

	decisions := total.admitted + total.rejected
	availability := 1.0
	if total.requests > 0 {
		availability = float64(total.ok) / float64(total.requests)
	}
	perSec := float64(decisions) / elapsed.Seconds()

	fmt.Printf("rmload: profile=%s %d reqs (%d ok, %d throttled, %d errors) in %.2fs\n",
		*profile, total.requests, total.ok, total.throttled, total.errors, elapsed.Seconds())
	fmt.Printf("rmload: %d decisions (%.0f/sec), %d ops shed, availability %.4f\n",
		decisions, perSec, total.shed, availability)
	fmt.Printf("rmload: client batch p50/p99 %s/%s, server decision p50/p99 %dns/%dns\n",
		time.Duration(lat.Quantile(0.50)), time.Duration(lat.Quantile(0.99)),
		stats.DecisionP50, stats.DecisionP99)
	fmt.Printf("rmload: server: %d decisions, %d throttled, breaker %s (%d opens)\n",
		stats.Decisions, stats.Throttled, stats.BreakerState, stats.BreakerOpens)
	if total.errors > 0 {
		return fmt.Errorf("%d requests failed outright", total.errors)
	}

	if *storeDir != "" {
		if err := record(*storeDir, client, base, *profile, flagsFP(*profile, *batch, *conns, *platforms, pace),
			decisions, perSec, availability, lat, stats, total); err != nil {
			return fmt.Errorf("record run: %w", err)
		}
	}
	if *strict {
		return gate(*storeDir)
	}
	return nil
}

// sender drives one connection until the deadline.
func sender(client *http.Client, base string, id, batch, platforms int, pace time.Duration, deadline time.Time, lat *telemetry.Histogram, traceparent string) result {
	var res result
	var body bytes.Buffer
	seq := 0
	for time.Now().Before(deadline) {
		body.Reset()
		buildBatch(&body, id, seq, batch, platforms)
		seq++

		t0 := time.Now()
		req, err := http.NewRequest(http.MethodPost, base+"/v1/batch", bytes.NewReader(body.Bytes()))
		if err != nil {
			res.errors++
			res.requests++
			continue
		}
		req.Header.Set("Content-Type", rmserver.OpsContentType)
		if traceparent != "" {
			req.Header.Set("traceparent", traceparent)
		}
		resp, err := client.Do(req)
		if err != nil {
			res.errors++
			res.requests++
			continue
		}
		lat.Record(time.Since(t0).Nanoseconds())
		res.requests++
		var sum rmserver.BatchSummary
		derr := decodeJSON(resp.Body, &sum)
		resp.Body.Close()
		switch {
		case resp.StatusCode == http.StatusOK && derr == nil:
			res.ok++
		case resp.StatusCode == http.StatusTooManyRequests:
			res.throttled++
		default:
			res.errors++
		}
		if derr == nil {
			res.admitted += uint64(sum.Admitted)
			res.rejected += uint64(sum.Rejected)
			res.shed += uint64(sum.Throttled)
		}
		if pace > 0 {
			time.Sleep(pace)
		}
	}
	return res
}

// buildBatch writes batch/2 register+withdraw pairs in the compact
// format. App names are unique per (connection, batch) so registers
// never collide across in-flight batches; bursts and deadlines are
// chosen to pass the analytic admission test, so the soak path
// measures the admit path, not the reject path.
func buildBatch(w *bytes.Buffer, id, seq, batch, platforms int) {
	pairs := batch / 2
	if pairs < 1 {
		pairs = 1
	}
	for i := 0; i < pairs; i++ {
		plat := "p" + strconv.Itoa((seq*pairs+i)%platforms)
		app := "c" + strconv.Itoa(id) + "b" + strconv.Itoa(seq) + "n" + strconv.Itoa(i)
		w.WriteString("r ")
		w.WriteString(plat)
		w.WriteByte(' ')
		w.WriteString(app)
		w.WriteString(" b 64 1000000\n") // 64 B burst, 1 ms deadline
		w.WriteString("w ")
		w.WriteString(plat)
		w.WriteByte(' ')
		w.WriteString(app)
		w.WriteByte('\n')
	}
}

func waitHealthy(client *http.Client, base string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		resp, err := client.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("service at %s not healthy after %s", base, timeout)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func fetchStats(client *http.Client, base string) (rmserver.Stats, error) {
	var st rmserver.Stats
	resp, err := client.Get(base + "/v1/stats")
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	return st, decodeJSON(resp.Body, &st)
}

func decodeJSON(r io.Reader, v any) error {
	b, err := io.ReadAll(io.LimitReader(r, 64<<20))
	if err != nil {
		return err
	}
	return json.Unmarshal(b, v)
}

func flagsFP(profile string, batch, conns, platforms int, pace time.Duration) string {
	return obs.FingerprintConfig(map[string]string{
		"profile":   profile,
		"batch":     strconv.Itoa(batch),
		"conns":     strconv.Itoa(conns),
		"platforms": strconv.Itoa(platforms),
		"pace":      pace.String(),
	})
}

// record appends the run's evidence — including the server's live
// OpenMetrics snapshot — to the obs store.
func record(dir string, client *http.Client, base, profile, fp string,
	decisions uint64, perSec, availability float64,
	lat *telemetry.Histogram, stats rmserver.Stats, total result) error {
	var metrics string
	if resp, err := client.Get(base + "/metrics"); err == nil {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
		resp.Body.Close()
		metrics = string(b)
	}
	store, err := obs.Open(dir)
	if err != nil {
		return err
	}
	defer store.Close()
	if rec := store.Recovery(); rec.Recovered > 0 {
		fmt.Fprintf(os.Stderr, "rmload: warning: store recovered from a crashed writer: %s\n", rec.Message)
	}
	_, err = store.Append(obs.RunRecord{
		Kind:     obs.KindService,
		Label:    "rmload/" + profile,
		ConfigFP: fp,
		Values: map[string]float64{
			"decisions":         float64(decisions),
			"decisions_per_sec": perSec,
			"availability":      availability,
			"client.p99_ns":     float64(lat.Quantile(0.99)),
			"decision.p99_ns":   float64(stats.DecisionP99),
			"throttled":         float64(stats.Throttled),
			"breaker_opens":     float64(stats.BreakerOpens),
			"requests":          float64(total.requests),
			"requests_429":      float64(total.throttled),
		},
		Metrics: metrics,
	})
	return err
}

// gate evaluates the service SLOs over the store's history; any unmet
// objective fails the run.
func gate(dir string) error {
	if dir == "" {
		return fmt.Errorf("-strict needs -store")
	}
	store, err := obs.Open(dir)
	if err != nil {
		return err
	}
	defer store.Close()
	statuses, err := obs.EvaluateStore(store, obs.ServiceSLOs())
	if err != nil {
		return err
	}
	bad := 0
	for _, st := range statuses {
		state := "met"
		if !st.Met {
			state = "UNMET"
			bad++
		}
		fmt.Printf("rmload: slo %-22s %s (attainment %.4f over %d runs, burn %.2f)\n",
			st.SLO.Name, state, st.Attainment, st.Runs, st.BurnRate)
	}
	if bad > 0 {
		return fmt.Errorf("%d service SLO(s) unmet", bad)
	}
	return nil
}
