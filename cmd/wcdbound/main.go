// Command wcdbound reproduces the paper's Section IV-A analysis: it
// computes upper and lower worst-case delay bounds for a read miss at
// an FR-FCFS DRAM controller across a sweep of write arrival rates
// (Table II), prints the timing parameter set in use (Table I), and
// can emit the resulting Network Calculus service curve.
//
// Usage:
//
//	wcdbound [-tech ddr3|ddr4|lpddr4] [-n position] [-rates 4,5,6,7]
//	         [-whigh 55] [-nwd 16] [-ncap 16] [-burst 8]
//	         [-timings] [-curve N]
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"repro/internal/dram"
	"repro/internal/dram/wcd"
)

func main() {
	tech := flag.String("tech", "ddr3", "DRAM technology: ddr3, ddr4, lpddr4")
	n := flag.Int("n", 1, "read queue position of the tagged miss")
	rates := flag.String("rates", "4,5,6,7", "comma-separated write rates in Gbps")
	nwd := flag.Int("nwd", 16, "write batch length N_wd")
	ncap := flag.Int("ncap", 16, "row-hit promotion cap N_cap")
	burst := flag.Float64("burst", 8, "write token-bucket burst (requests)")
	showTimings := flag.Bool("timings", false, "print the Table I timing parameters and exit")
	curveN := flag.Int("curve", 0, "emit the service curve up to this queue depth")
	flag.Parse()

	var timing dram.Timing
	switch *tech {
	case "ddr3":
		timing = dram.DDR3_1600()
	case "ddr4":
		timing = dram.DDR4_2400()
	case "lpddr4":
		timing = dram.LPDDR4_3200()
	default:
		fmt.Fprintf(os.Stderr, "wcdbound: unknown technology %q\n", *tech)
		os.Exit(2)
	}

	if *showTimings {
		printTimings(*tech, timing)
		return
	}

	params := wcd.DefaultParams()
	params.Timing = timing
	params.NWd = *nwd
	params.NCap = *ncap
	params.WriteBurst = *burst

	var gbps []float64
	for _, f := range strings.Split(*rates, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "wcdbound: bad rate %q: %v\n", f, err)
			os.Exit(2)
		}
		gbps = append(gbps, v)
	}

	rows, err := wcd.TableII(params, *n, gbps)
	if err != nil {
		fmt.Fprintf(os.Stderr, "wcdbound: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("Upper and lower bounds on the WCD (ns) — %s, N_wd=%d, N_cap=%d, burst=%g, n=%d\n",
		strings.ToUpper(*tech), params.NWd, params.NCap, params.WriteBurst, *n)
	fmt.Printf("%-12s %-14s %-14s\n", "Write rate", "Lower bound", "Upper bound")
	for _, r := range rows {
		fmt.Printf("%-12s %-14s %-14s\n",
			fmt.Sprintf("%g Gbps", r.WriteRateGbps), fmtNS(r.Lower), fmtNS(r.Upper))
	}

	if *curveN > 0 {
		p := params
		if len(gbps) > 0 {
			p = params.WithWriteRateGbps(gbps[0])
		}
		c, err := wcd.ServiceCurve(p, *curveN)
		if err != nil {
			fmt.Fprintf(os.Stderr, "wcdbound: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("\nService curve (t ns -> requests served), write rate %g Gbps:\n", gbps[0])
		for _, pt := range c.Points() {
			fmt.Printf("  (%.3f, %.0f)\n", pt.X, pt.Y)
		}
		fmt.Printf("  final rate: %.6f req/ns\n", c.FinalSlope())
	}
}

func fmtNS(v float64) string {
	if math.IsInf(v, 1) {
		return "unbounded"
	}
	return fmt.Sprintf("%.3f", v)
}

func printTimings(tech string, t dram.Timing) {
	fmt.Printf("DRAM timing parameters (ns) — %s\n", strings.ToUpper(tech))
	rows := []struct {
		name string
		ns   float64
	}{
		{"tCK", t.TCK.Nanoseconds()}, {"tBurst", t.TBurst.Nanoseconds()},
		{"tRCD", t.TRCD.Nanoseconds()}, {"tCL", t.TCL.Nanoseconds()},
		{"tRP", t.TRP.Nanoseconds()}, {"tRAS", t.TRAS.Nanoseconds()},
		{"tRRD", t.TRRD.Nanoseconds()}, {"tXAW", t.TXAW.Nanoseconds()},
		{"tRFC", t.TRFC.Nanoseconds()}, {"tWR", t.TWR.Nanoseconds()},
		{"tWTR", t.TWTR.Nanoseconds()}, {"tRTP", t.TRTP.Nanoseconds()},
		{"tRTW", t.TRTW.Nanoseconds()}, {"tCS", t.TCS.Nanoseconds()},
		{"tREFI", t.TREFI.Nanoseconds()}, {"tXP", t.TXP.Nanoseconds()},
		{"tXS", t.TXS.Nanoseconds()},
	}
	for _, r := range rows {
		fmt.Printf("  %-8s %g\n", r.name, r.ns)
	}
}
