// Package repro's root benchmark harness regenerates every table and
// figure of the paper's evaluation, plus the X-experiments and
// ablations indexed in DESIGN.md. Each benchmark prints its artifact
// (the rows or series the paper reports) once, then measures the
// computation for -bench timing.
//
// Run: go test -bench=. -benchmem
package repro

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/admission"
	"repro/internal/cache"
	"repro/internal/coherence"
	"repro/internal/core"
	"repro/internal/cpa"
	"repro/internal/dram"
	"repro/internal/dram/wcd"
	"repro/internal/dsu"
	"repro/internal/memguard"
	"repro/internal/mpam"
	"repro/internal/netcalc"
	"repro/internal/noc"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/sweep"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

var printGuards sync.Map

// printOnce emits a benchmark's artifact a single time per process.
func printOnce(key string, emit func()) {
	if _, loaded := printGuards.LoadOrStore(key, true); !loaded {
		emit()
	}
}

// BenchmarkTableI regenerates Table I: the DDR3-1600 timing parameters
// the WCD analysis consumes.
func BenchmarkTableI(b *testing.B) {
	printOnce("T1", func() {
		t := dram.DDR3_1600()
		fmt.Println("\n[Table I] DRAM timing parameters (ns), DDR3-1600:")
		rows := [][2]interface{}{
			{"tCK", t.TCK.Nanoseconds()}, {"tBurst", t.TBurst.Nanoseconds()},
			{"tRCD", t.TRCD.Nanoseconds()}, {"tCL", t.TCL.Nanoseconds()},
			{"tRP", t.TRP.Nanoseconds()}, {"tRAS", t.TRAS.Nanoseconds()},
			{"tRRD", t.TRRD.Nanoseconds()}, {"tXAW", t.TXAW.Nanoseconds()},
			{"tRFC", t.TRFC.Nanoseconds()}, {"tWR", t.TWR.Nanoseconds()},
			{"tWTR", t.TWTR.Nanoseconds()}, {"tRTP", t.TRTP.Nanoseconds()},
			{"tRTW", t.TRTW.Nanoseconds()}, {"tCS", t.TCS.Nanoseconds()},
			{"tREFI", t.TREFI.Nanoseconds()}, {"tXP", t.TXP.Nanoseconds()},
			{"tXS", t.TXS.Nanoseconds()},
		}
		for _, r := range rows {
			fmt.Printf("  %-8s %v\n", r[0], r[1])
		}
	})
	for i := 0; i < b.N; i++ {
		tm := dram.DDR3_1600()
		if err := tm.Validate(); err != nil {
			b.Fatal(err)
		}
	}
}

// paperTableII holds the published Table II values for side-by-side
// comparison (ns).
var paperTableII = []struct {
	gbps         float64
	lower, upper float64
}{
	{4, 1971.711, 1977.542},
	{5, 2957.983, 2963.814},
	{6, 3934.259, 3950.086},
	{7, 5886.811, 6908.902},
}

// BenchmarkTableII regenerates Table II: upper and lower WCD bounds
// versus the write arrival rate, next to the paper's published values.
func BenchmarkTableII(b *testing.B) {
	params := wcd.DefaultParams()
	printOnce("T2", func() {
		rows, err := wcd.TableII(params, 1, []float64{4, 5, 6, 7})
		if err != nil {
			b.Fatal(err)
		}
		fmt.Println("\n[Table II] Upper and lower bounds on the WCD (ns):")
		fmt.Printf("  %-11s %-22s %-22s\n", "Write rate", "this repo (lo / up)", "paper (lo / up)")
		for i, r := range rows {
			p := paperTableII[i]
			fmt.Printf("  %-11s %9.3f / %-10.3f %9.3f / %-10.3f\n",
				fmt.Sprintf("%g Gbps", r.WriteRateGbps), r.Lower, r.Upper, p.lower, p.upper)
		}
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := wcd.TableII(params, 1, []float64{4, 5, 6, 7}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig2 regenerates the Fig. 2 worked example: encoding the
// hypervisor/GPOS/RTOS partition assignment into CLUSTERPARTCR.
func BenchmarkFig2(b *testing.B) {
	assign := map[dsu.SchemeID][]dsu.Group{7: {3}, 3: {2}, 2: {1}, 0: {0}}
	printOnce("F2", func() {
		reg, err := dsu.Encode(assign)
		if err != nil {
			b.Fatal(err)
		}
		fmt.Printf("\n[Fig 2] CLUSTERPARTCR encoding (scheme-ID nibbles, one-hot group):\n")
		fmt.Printf("  hypervisor s7 -> group 3, RTOS s3 -> group 2, RTOS s2 -> group 1, GPOS s0 -> group 0\n")
		fmt.Printf("  register = %#08x (paper: 0x80004201)\n", uint32(reg))
		for g := dsu.Group(0); g < dsu.NumGroups; g++ {
			fmt.Printf("  group %d owners: %v\n", g, reg.Owners(g))
		}
	})
	for i := 0; i < b.N; i++ {
		if _, err := dsu.Encode(assign); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3 regenerates Fig. 3: an 8-portion MPAM cache shared
// between two PARTIDs with private and shared portions.
func BenchmarkFig3(b *testing.B) {
	build := func() *mpam.CachePortionControl {
		ctl, err := mpam.NewCachePortionControl(8)
		if err != nil {
			b.Fatal(err)
		}
		if err := ctl.Grant(1, 0, 1, 2, 3); err != nil {
			b.Fatal(err)
		}
		if err := ctl.Grant(2, 3, 4, 5, 6); err != nil {
			b.Fatal(err)
		}
		return ctl
	}
	printOnce("F3", func() {
		ctl := build()
		fmt.Println("\n[Fig 3] MPAM cache-portion bitmaps (8 portions, 2 PARTIDs):")
		for _, id := range []mpam.PARTID{1, 2} {
			fmt.Printf("  PARTID %d: ", id)
			for p := 0; p < 8; p++ {
				if ctl.Allowed(id, p) {
					fmt.Printf("%d ", p)
				} else {
					fmt.Printf(". ")
				}
			}
			fmt.Println()
		}
		fmt.Println("  portion 3 is shared; 0-2 private to PARTID 1; 4-6 private to PARTID 2")
	})
	for i := 0; i < b.N; i++ {
		build()
	}
}

// BenchmarkFig4 exercises the Fig. 4 controller model: FR-FCFS with
// separate read/write queues on a mixed trace; reports simulated
// requests per wall second.
func BenchmarkFig4(b *testing.B) {
	run := func() dram.Stats {
		eng := sim.NewEngine()
		ctrl, err := dram.NewController(eng, dram.DefaultConfig(), nil)
		if err != nil {
			b.Fatal(err)
		}
		rnd := sim.NewRand(1)
		for i := 0; i < 2000; i++ {
			op := dram.Read
			if rnd.Intn(3) == 0 {
				op = dram.Write
			}
			req := &dram.Request{Op: op, Bank: rnd.Intn(8), Row: int64(rnd.Intn(16))}
			eng.At(sim.Duration(i)*sim.NS(30), func() { _ = ctrl.Submit(req) })
		}
		eng.Run()
		return ctrl.Stats()
	}
	printOnce("F4", func() {
		st := run()
		fmt.Printf("\n[Fig 4] FR-FCFS controller on a 2000-request mixed trace:\n")
		fmt.Printf("  row hits %d, closed %d, conflicts %d (hit rate %.2f)\n",
			st.RowHits, st.RowClosed, st.RowConflicts, st.RowHitRate())
		fmt.Printf("  hit promotions %d, mode switches %d, refreshes %d\n",
			st.HitPromotions, st.ModeSwitches, st.Refreshes)
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run()
	}
}

// BenchmarkFig5 regenerates the Fig. 5 watermark behaviour: write-queue
// fill level against the W_high/W_low thresholds and the resulting
// batched drains.
func BenchmarkFig5(b *testing.B) {
	type sample struct {
		at     sim.Time
		writes int
		mode   dram.Mode
	}
	run := func() []sample {
		eng := sim.NewEngine()
		cfg := dram.DefaultConfig()
		cfg.WHigh = 12
		cfg.WLow = 4
		cfg.NWd = 4
		cfg.WriteQueueCap = 64
		ctrl, err := dram.NewController(eng, cfg, nil)
		if err != nil {
			b.Fatal(err)
		}
		// Steady reads keep the controller in read mode; writes pile
		// up to W_high, forcing batched drains.
		for i := 0; i < 200; i++ {
			at := sim.Duration(i) * sim.NS(50)
			eng.At(at, func() {
				_ = ctrl.Submit(&dram.Request{Op: dram.Read, Bank: 0, Row: int64(i % 4)})
			})
		}
		for i := 0; i < 60; i++ {
			at := sim.Duration(i) * sim.NS(120)
			eng.At(at, func() {
				_ = ctrl.Submit(&dram.Request{Op: dram.Write, Bank: 1, Row: int64(i % 2)})
			})
		}
		var samples []sample
		for i := 0; i < 100; i++ {
			at := sim.Duration(i) * sim.NS(100)
			eng.At(at, func() {
				_, w := ctrl.QueueDepths()
				samples = append(samples, sample{eng.Now(), w, ctrl.Mode()})
			})
		}
		eng.Run()
		return samples
	}
	printOnce("F5", func() {
		samples := run()
		fmt.Println("\n[Fig 5] watermark policy: write-queue level and bus mode over time")
		fmt.Println("  (W_high=12, W_low=4, N_wd=4; one row per us)")
		for i, s := range samples {
			if i%10 != 0 {
				continue
			}
			bar := ""
			for k := 0; k < s.writes; k++ {
				bar += "#"
			}
			fmt.Printf("  t=%6s writes=%2d %-5s %s\n", s.at, s.writes, s.mode, bar)
		}
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run()
	}
}

// BenchmarkFig6 regenerates the Fig. 6 architecture end to end: an
// application's first transmission trapped by its client, admitted by
// the RM, and the measured admission round trip.
func BenchmarkFig6(b *testing.B) {
	run := func() (sim.Duration, admission.Stats) {
		eng := sim.NewEngine()
		mesh, err := noc.New(eng, noc.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		sys, err := admission.NewSystem(eng, mesh, noc.Coord{X: 0, Y: 0}, admission.Symmetric{TotalBytesPerNS: 1.6})
		if err != nil {
			b.Fatal(err)
		}
		cl, err := sys.Client(noc.Coord{X: 3, Y: 3})
		if err != nil {
			b.Fatal(err)
		}
		if err := cl.Register("app", admission.BestEffort); err != nil {
			b.Fatal(err)
		}
		_ = cl.Submit("app", &noc.Packet{Dst: noc.Coord{X: 1, Y: 1}, Bytes: 64})
		eng.Run()
		lat, err := cl.AdmissionLatency("app")
		if err != nil {
			b.Fatal(err)
		}
		return lat, sys.Stats()
	}
	printOnce("F6", func() {
		lat, st := run()
		fmt.Println("\n[Fig 6] E2E admission control on a 4x4 mesh (RM at (0,0)):")
		fmt.Printf("  first transmission trapped, admitted after %v\n", lat)
		fmt.Printf("  protocol messages: act=%d stop=%d conf=%d\n",
			st.Messages[admission.ActMsg], st.Messages[admission.StopMsg], st.Messages[admission.ConfMsg])
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run()
	}
}

// BenchmarkFig7 regenerates Fig. 7: adaptive injection rates per
// system mode, symmetric and non-symmetric.
func BenchmarkFig7(b *testing.B) {
	sym := admission.Symmetric{TotalBytesPerNS: 1.6}
	nonsym := admission.NonSymmetric{TotalBytesPerNS: 1.6, CriticalBytesPerNS: 0.4, FloorBytesPerNS: 0.01}
	series := func(policy admission.RatePolicy, crit int) [][2]float64 {
		var out [][2]float64
		var active []admission.AppRef
		for m := 1; m <= 8; m++ {
			c := admission.BestEffort
			if m <= crit {
				c = admission.Critical
			}
			active = append(active, admission.AppRef{Name: fmt.Sprintf("a%d", m), Crit: c})
			rates := policy.Rates(active)
			out = append(out, [2]float64{rates[fmt.Sprintf("a%d", 1)], rates[fmt.Sprintf("a%d", m)]})
		}
		return out
	}
	printOnce("F7", func() {
		fmt.Println("\n[Fig 7] injection rate (B/ns) vs system mode:")
		fmt.Printf("  %-6s %-22s %-28s\n", "mode", "symmetric (any app)", "non-symmetric (crit / newest)")
		s := series(sym, 0)
		n := series(nonsym, 1)
		for m := 1; m <= 8; m++ {
			fmt.Printf("  %-6d %-22.3f %.3f / %.3f\n", m, s[m-1][1], n[m-1][0], n[m-1][1])
		}
	})
	for i := 0; i < b.N; i++ {
		series(sym, 0)
		series(nonsym, 1)
	}
}

// BenchmarkContentionInflation is experiment X1: read-latency
// inflation of a critical control loop under co-runner contention on
// the platform model, and its restoration by DSU + MemGuard (the
// paper's motivating measurement from [2] reports up to 8x).
func BenchmarkContentionInflation(b *testing.B) {
	runCase := func(hogs int, protect bool, horizon sim.Duration) core.AppStats {
		p, err := core.New(core.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		critProf, err := trace.NewProfile(trace.ControlLoop, 0, 1)
		if err != nil {
			b.Fatal(err)
		}
		crit, err := p.AddApp(core.AppConfig{
			Name: "crit", Node: noc.Coord{X: 0, Y: 0}, Cluster: 0, Scheme: 1, Profile: critProf,
		})
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < hogs; i++ {
			name := fmt.Sprintf("hog%d", i)
			prof, err := trace.NewProfile(trace.Infotainment, uint64(i+1)<<30, uint64(i)+5)
			if err != nil {
				b.Fatal(err)
			}
			h, err := p.AddApp(core.AppConfig{
				Name: name, Node: noc.Coord{X: 1 + i%3, Y: i / 3 % 4}, Cluster: 0,
				Scheme: dsu.SchemeID(2 + i%6), Profile: prof,
			})
			if err != nil {
				b.Fatal(err)
			}
			if protect {
				if err := p.SetMemBudget(name, 16<<10); err != nil {
					b.Fatal(err)
				}
			}
			h.Start()
		}
		if protect {
			reg, err := dsu.Encode(map[dsu.SchemeID][]dsu.Group{1: {0, 1}})
			if err != nil {
				b.Fatal(err)
			}
			if err := p.ProgramDSU(0, reg); err != nil {
				b.Fatal(err)
			}
		}
		crit.Start()
		p.RunFor(horizon)
		return crit.Stats()
	}
	printOnce("X1", func() {
		solo := runCase(0, false, 4*sim.Millisecond)
		cont := runCase(6, false, 4*sim.Millisecond)
		prot := runCase(6, true, 4*sim.Millisecond)
		fmt.Println("\n[X1] critical read latency under contention (6 infotainment hogs):")
		fmt.Printf("  %-12s %-10s %-10s %-10s\n", "config", "mean(ns)", "p95(ns)", "max(ns)")
		for _, r := range []struct {
			name string
			st   core.AppStats
		}{{"solo", solo}, {"contended", cont}, {"protected", prot}} {
			fmt.Printf("  %-12s %-10.1f %-10.1f %-10.1f\n", r.name,
				r.st.MeanReadLatency.Nanoseconds(), r.st.P95ReadLatency.Nanoseconds(),
				r.st.MaxReadLatency.Nanoseconds())
		}
		fmt.Printf("  p95 inflation %.1fx, restored to %.1fx by DSU+MemGuard\n",
			cont.P95ReadLatency.Nanoseconds()/solo.P95ReadLatency.Nanoseconds(),
			prot.P95ReadLatency.Nanoseconds()/solo.P95ReadLatency.Nanoseconds())
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runCase(2, false, sim.Millisecond)
	}
}

// BenchmarkCacheColoring is experiment X2: coloring isolates but
// shrinks the effective cache, raising miss rates for working sets
// that no longer fit.
func BenchmarkCacheColoring(b *testing.B) {
	run := func(colors []int, steps int) float64 {
		cl, err := dsu.NewCluster(dsu.Config{Ways: 16, Sets: 512, LineSize: 64})
		if err != nil {
			b.Fatal(err)
		}
		col, err := cache.NewColoring(cl.L3().Config(), 4096)
		if err != nil {
			b.Fatal(err)
		}
		if colors != nil {
			if err := col.Assign(1, colors); err != nil {
				b.Fatal(err)
			}
		}
		pat, err := trace.NewSequential(0, 256<<10, 64)
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < steps; i++ {
			cl.Access(1, col.Translate(1, pat.Next()), false)
		}
		st := cl.L3().Stats(1)
		return float64(st.Misses) / float64(st.Hits+st.Misses)
	}
	printOnce("X2", func() {
		fmt.Println("\n[X2] page coloring capacity cost (256KiB working set, 512KiB L3, 8 colors):")
		for _, c := range []struct {
			name   string
			colors []int
		}{
			{"uncolored (full cache)", nil},
			{"4/8 colors (256KiB eff.)", []int{0, 1, 2, 3}},
			{"2/8 colors (128KiB eff.)", []int{0, 1}},
			{"1/8 colors (64KiB eff.)", []int{0}},
		} {
			fmt.Printf("  %-26s miss rate %.3f\n", c.name, run(c.colors, 200_000))
		}
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run([]int{0, 1}, 50_000)
	}
}

// BenchmarkMemguard is experiment X3: regulation isolates bandwidth
// but overhead grows with the number of regulated entities.
func BenchmarkMemguard(b *testing.B) {
	run := func(entities int) sim.Duration {
		eng := sim.NewEngine()
		reg, err := memguard.New(eng, memguard.Config{Period: sim.Microsecond, InterruptOverhead: sim.NS(500)})
		if err != nil {
			b.Fatal(err)
		}
		per := 2048 / entities
		for i := 0; i < entities; i++ {
			if err := reg.SetBudget(fmt.Sprintf("e%d", i), per); err != nil {
				b.Fatal(err)
			}
		}
		for step := 0; step < 100; step++ {
			at := sim.Duration(step) * sim.NS(200)
			eng.At(at, func() {
				for i := 0; i < entities; i++ {
					_ = reg.Request(fmt.Sprintf("e%d", i), 2*per, nil)
				}
			})
		}
		eng.Run()
		return reg.Overhead()
	}
	printOnce("X3", func() {
		fmt.Println("\n[X3] MemGuard regulation overhead vs granularity (same total traffic):")
		for _, n := range []int{1, 2, 4, 8, 16} {
			fmt.Printf("  %2d entities: overhead %v\n", n, run(n))
		}
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run(4)
	}
}

// BenchmarkAdmissionModes is experiment X5: symmetric vs non-symmetric
// guarantees while apps join — the critical flow's throughput under
// each policy.
func BenchmarkAdmissionModes(b *testing.B) {
	run := func(policy admission.RatePolicy, horizon sim.Duration) (critBytes uint64) {
		eng := sim.NewEngine()
		mesh, err := noc.New(eng, noc.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		sys, err := admission.NewSystem(eng, mesh, noc.Coord{X: 0, Y: 0}, policy)
		if err != nil {
			b.Fatal(err)
		}
		crit, err := sys.Client(noc.Coord{X: 1, Y: 1})
		if err != nil {
			b.Fatal(err)
		}
		if err := crit.Register("crit", admission.Critical); err != nil {
			b.Fatal(err)
		}
		for k := 0; k < 3000; k++ {
			_ = crit.Submit("crit", &noc.Packet{Dst: noc.Coord{X: 2, Y: 1}, Bytes: 64})
		}
		for i := 0; i < 5; i++ {
			i := i
			node := noc.Coord{X: i % 4, Y: 3}
			cl, err := sys.Client(node)
			if err != nil {
				b.Fatal(err)
			}
			name := fmt.Sprintf("be%d", i)
			if err := cl.Register(name, admission.BestEffort); err != nil {
				b.Fatal(err)
			}
			eng.At(sim.Duration(i+1)*5*sim.Microsecond, func() {
				for k := 0; k < 1000; k++ {
					_ = cl.Submit(name, &noc.Packet{Dst: noc.Coord{X: 3, Y: 0}, Bytes: 64})
				}
			})
		}
		eng.RunUntil(horizon)
		return crit.Sent("crit")
	}
	printOnce("X5", func() {
		sym := run(admission.Symmetric{TotalBytesPerNS: 1.6}, 60*sim.Microsecond)
		non := run(admission.NonSymmetric{TotalBytesPerNS: 1.6, CriticalBytesPerNS: 0.8, FloorBytesPerNS: 0.05},
			60*sim.Microsecond)
		fmt.Println("\n[X5] critical throughput over 60us while 5 best-effort apps join:")
		fmt.Printf("  symmetric policy:     %d bytes (degrades with mode)\n", sym)
		fmt.Printf("  non-symmetric policy: %d bytes (guarantee preserved)\n", non)
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run(admission.Symmetric{TotalBytesPerNS: 1.6}, 20*sim.Microsecond)
	}
}

// BenchmarkAblationNCap sweeps the hit-promotion cap: larger N_cap
// raises the WCD bound (ablation 1 in DESIGN.md).
func BenchmarkAblationNCap(b *testing.B) {
	printOnce("A1", func() {
		fmt.Println("\n[ablation] WCD upper bound vs N_cap (5 Gbps writes):")
		for _, ncap := range []int{0, 4, 8, 16, 32, 64} {
			p := wcd.DefaultParams().WithWriteRateGbps(5)
			p.NCap = ncap
			res, err := wcd.Compute(p, 1)
			if err != nil {
				b.Fatal(err)
			}
			fmt.Printf("  N_cap=%-3d upper %.1f ns\n", ncap, res.Upper)
		}
	})
	p := wcd.DefaultParams().WithWriteRateGbps(5)
	for i := 0; i < b.N; i++ {
		if _, err := wcd.Compute(p, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationWatermark sweeps the write batch length N_wd:
// longer batches amortize turnarounds but delay reads longer per
// switch (ablation 2).
func BenchmarkAblationWatermark(b *testing.B) {
	printOnce("A2", func() {
		fmt.Println("\n[ablation] WCD upper bound vs N_wd (5 Gbps writes):")
		for _, nwd := range []int{4, 8, 16, 32, 64} {
			p := wcd.DefaultParams().WithWriteRateGbps(5)
			p.NWd = nwd
			res, err := wcd.Compute(p, 1)
			if err != nil {
				b.Fatal(err)
			}
			fmt.Printf("  N_wd=%-3d upper %.1f ns\n", nwd, res.Upper)
		}
	})
	p := wcd.DefaultParams().WithWriteRateGbps(5)
	for i := 0; i < b.N; i++ {
		if _, err := wcd.Compute(p, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationScheduling compares partitioned and global
// fixed-priority scheduling on the same task set (ablation 3).
func BenchmarkAblationScheduling(b *testing.B) {
	msf := func(v float64) sim.Duration { return sim.US(v * 1000) }
	tasks := []sched.Task{
		{Name: "crit", Period: msf(10), WCET: msf(3), Priority: 1, Core: 0, Crit: sched.ASILD},
		{Name: "mid", Period: msf(8), WCET: msf(3), Priority: 5, Core: 1},
		{Name: "noisy", Period: msf(5), WCET: msf(4), Priority: 9, Core: 1},
	}
	run := func(policy sched.Policy) map[string]sched.TaskStats {
		eng := sim.NewEngine()
		s, err := sched.NewSimulator(eng, sched.Config{Cores: 2, Policy: policy}, tasks)
		if err != nil {
			b.Fatal(err)
		}
		return s.Run(msf(500))
	}
	printOnce("A3", func() {
		part := run(sched.Partitioned)
		glob := run(sched.Global)
		fmt.Println("\n[ablation] partitioned vs global scheduling (crit on its own core when partitioned):")
		fmt.Printf("  partitioned: crit max response %v, misses %d\n",
			part["crit"].MaxResponse, part["crit"].DeadlineMisses)
		fmt.Printf("  global:      crit max response %v, misses %d\n",
			glob["crit"].MaxResponse, glob["crit"].DeadlineMisses)
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run(sched.Partitioned)
	}
}

// BenchmarkAblationColoringVsWays compares software coloring against
// hardware way partitioning at equal capacity (ablation 4): same
// isolation, different flexibility/utilization trade-off.
func BenchmarkAblationColoringVsWays(b *testing.B) {
	victim := func(mode string) (hitRate float64) {
		cl, err := dsu.NewCluster(dsu.Config{Ways: 16, Sets: 512, LineSize: 64})
		if err != nil {
			b.Fatal(err)
		}
		col, err := cache.NewColoring(cl.L3().Config(), 4096)
		if err != nil {
			b.Fatal(err)
		}
		switch mode {
		case "ways":
			reg, err := dsu.Encode(map[dsu.SchemeID][]dsu.Group{1: {0, 1}})
			if err != nil {
				b.Fatal(err)
			}
			cl.Program(reg)
		case "colors":
			if err := col.Assign(1, []int{0, 1, 2, 3}); err != nil {
				b.Fatal(err)
			}
			if err := col.Assign(0, []int{4, 5, 6, 7}); err != nil {
				b.Fatal(err)
			}
		}
		translate := func(owner dsu.SchemeID, a uint64) uint64 {
			if mode == "colors" {
				return col.Translate(cache.Owner(owner), a)
			}
			return a
		}
		vp, err := trace.NewSequential(0, 128<<10, 64)
		if err != nil {
			b.Fatal(err)
		}
		tp, err := trace.NewSequential(1<<30, 4<<20, 64)
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < 2048; i++ {
			cl.Access(1, translate(1, vp.Next()), false)
		}
		for i := 0; i < 500_000; i++ {
			if i%8 == 0 {
				cl.Access(1, translate(1, vp.Next()), false)
			} else {
				cl.Access(0, translate(0, tp.Next()), false)
			}
		}
		st := cl.L3().Stats(1)
		return float64(st.Hits) / float64(st.Hits+st.Misses)
	}
	printOnce("A4", func() {
		fmt.Println("\n[ablation] SW coloring vs HW way partitioning (same 50% capacity):")
		fmt.Printf("  unmanaged: victim hit rate %.3f\n", victim("open"))
		fmt.Printf("  coloring:  victim hit rate %.3f\n", victim("colors"))
		fmt.Printf("  DSU ways:  victim hit rate %.3f\n", victim("ways"))
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		victim("ways")
	}
}

// BenchmarkAblationCPAvsAdmission compares a flat CPA fixed-point
// analysis of two interfering chains against the admission-controlled
// view where shaped sources decouple the resources (ablation 5 /
// Section V's simplification claim).
func BenchmarkAblationCPAvsAdmission(b *testing.B) {
	us := func(v float64) sim.Duration { return sim.US(v) }
	buildFlat := func() (*cpa.System, error) {
		s := cpa.NewSystem()
		if err := s.AddTask(cpa.Task{Name: "a1", Resource: "noc", WCET: us(10), BCET: us(5), Priority: 2,
			Input: cpa.EventModel{P: us(100)}}); err != nil {
			return nil, err
		}
		if err := s.AddTask(cpa.Task{Name: "a2", Resource: "dram", WCET: us(20), BCET: us(10), Priority: 1}); err != nil {
			return nil, err
		}
		if err := s.AddTask(cpa.Task{Name: "b1", Resource: "dram", WCET: us(15), BCET: us(15), Priority: 2,
			Input: cpa.EventModel{P: us(150)}}); err != nil {
			return nil, err
		}
		if err := s.AddTask(cpa.Task{Name: "b2", Resource: "noc", WCET: us(25), BCET: us(25), Priority: 1}); err != nil {
			return nil, err
		}
		if err := s.AddChain("A", "a1", "a2"); err != nil {
			return nil, err
		}
		if err := s.AddChain("B", "b1", "b2"); err != nil {
			return nil, err
		}
		return s, nil
	}
	printOnce("A5", func() {
		s, err := buildFlat()
		if err != nil {
			b.Fatal(err)
		}
		res, err := s.Analyze(0)
		if err != nil {
			b.Fatal(err)
		}
		latA, _ := s.PathLatency("A", res)
		latB, _ := s.PathLatency("B", res)
		fmt.Println("\n[ablation] flat CPA vs admission-simplified analysis:")
		fmt.Printf("  flat CPA:  chain A %v, chain B %v (global fixed point over coupled resources)\n", latA, latB)
		// Admission-controlled: the RM reserves each chain a fixed
		// share of every resource, so a chain's bound is a single
		// Network Calculus composition — no cross-chain fixed point.
		// Chain A: 10us of NoC work + 20us of DRAM work per 100us,
		// each resource reserving a 50% share.
		alphaA := netcalc.TokenBucket(30, 0.3) // us of work, us time
		svc := netcalc.ConvolveAll(netcalc.RateLatency(0.5, 10), netcalc.RateLatency(0.5, 20))
		fmt.Printf("  admission: chain A bound %.1f us from one convolution of reserved shares\n",
			netcalc.DelayBound(alphaA, svc))
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := buildFlat()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.Analyze(0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationCoherence quantifies the coherence interference the
// paper's introduction names among the dynamic memory-system effects:
// the same write stream costs several times more when another cluster
// ping-pongs the line.
func BenchmarkAblationCoherence(b *testing.B) {
	run := func(pingpong bool, writes int) sim.Duration {
		d, err := coherence.New(2, 6, coherence.DefaultCosts())
		if err != nil {
			b.Fatal(err)
		}
		var total sim.Duration
		for i := 0; i < writes; i++ {
			c := 0
			if pingpong {
				c = i % 2
			}
			r, err := d.Access(c, 0x1000, true)
			if err != nil {
				b.Fatal(err)
			}
			total += r.Latency
		}
		return total
	}
	printOnce("A6", func() {
		private := run(false, 1000)
		shared := run(true, 1000)
		fmt.Println("\n[ablation] coherence interference (1000 writes to one line):")
		fmt.Printf("  private line:   %v total (%.1f ns/write)\n", private, private.Nanoseconds()/1000)
		fmt.Printf("  ping-pong line: %v total (%.1f ns/write, %.1fx)\n", shared,
			shared.Nanoseconds()/1000, float64(shared)/float64(private))
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run(true, 200)
	}
}

// BenchmarkAblationAdmission compares a critical flow's latency tail
// with and without the admission-control overlay under bursty
// best-effort load (DESIGN.md ablation 5).
func BenchmarkAblationAdmission(b *testing.B) {
	run := func(managed bool, horizon sim.Duration) (p95 float64) {
		eng := sim.NewEngine()
		mesh, err := noc.New(eng, noc.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		var lats []sim.Duration
		critSend := func(submit func(*noc.Packet) error) {
			for k := 0; k < 400; k++ {
				k := k
				eng.At(sim.Duration(k)*sim.NS(200), func() {
					pkt := &noc.Packet{Dst: noc.Coord{X: 3, Y: 0}, Bytes: 64, Flow: "crit"}
					var submitted sim.Time = eng.Now()
					pkt.OnDelivered = func(at sim.Time) { lats = append(lats, at-submitted) }
					_ = submit(pkt)
				})
			}
		}
		if managed {
			sys, err := admission.NewSystem(eng, mesh, noc.Coord{X: 0, Y: 3},
				admission.NonSymmetric{TotalBytesPerNS: 1.6, CriticalBytesPerNS: 0.8, FloorBytesPerNS: 0.05})
			if err != nil {
				b.Fatal(err)
			}
			critCl, _ := sys.Client(noc.Coord{X: 0, Y: 0})
			if err := critCl.Register("crit", admission.Critical); err != nil {
				b.Fatal(err)
			}
			critSend(func(p *noc.Packet) error { return critCl.Submit("crit", p) })
			for i := 0; i < 5; i++ {
				i := i
				// On the critical flow's row: genuine link contention.
				cl, _ := sys.Client(noc.Coord{X: 1 + i%2, Y: 0})
				name := fmt.Sprintf("be%d", i)
				if err := cl.Register(name, admission.BestEffort); err != nil {
					b.Fatal(err)
				}
				for k := 0; k < 2000; k++ {
					_ = cl.Submit(name, &noc.Packet{Dst: noc.Coord{X: 3, Y: 0}, Bytes: 64})
				}
			}
		} else {
			critNI, _ := mesh.NI(noc.Coord{X: 0, Y: 0})
			critSend(critNI.Send)
			for i := 0; i < 5; i++ {
				ni, _ := mesh.NI(noc.Coord{X: 1 + i%2, Y: 0})
				for k := 0; k < 2000; k++ {
					_ = ni.Send(&noc.Packet{Dst: noc.Coord{X: 3, Y: 0}, Bytes: 64})
				}
			}
		}
		eng.RunUntil(horizon)
		if len(lats) == 0 {
			return 0
		}
		sorted := append([]sim.Duration(nil), lats...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		return sorted[int(0.95*float64(len(sorted)-1))].Nanoseconds()
	}
	printOnce("A7", func() {
		un := run(false, 100*sim.Microsecond)
		ad := run(true, 100*sim.Microsecond)
		fmt.Println("\n[ablation] admission control on/off (critical flow vs 5 bursty senders):")
		fmt.Printf("  unmanaged:          p95 %.1f ns\n", un)
		fmt.Printf("  admission overlay:  p95 %.1f ns (non-symmetric, crit guaranteed)\n", ad)
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run(true, 20*sim.Microsecond)
	}
}

// BenchmarkSweepScaling measures the parallel sweep harness on the
// socsim scenario matrix: the same spec list executed with 1, 2, 4,
// and 8 workers. Every run is hermetic (own platform, own engine) and
// results land in spec-order slots, so the aggregates are
// byte-identical across worker counts — the benchmark exists to show
// the wall clock is the only thing parallelism changes. On a machine
// with >= 8 cores the 8-worker case approaches linear scaling
// (sim-kernel work dominates; there is no shared state to contend
// on). Guarded by -short so CI's test pass stays fast.
func BenchmarkSweepScaling(b *testing.B) {
	if testing.Short() {
		b.Skip("sweep scaling benchmark skipped with -short")
	}
	// 7 scenarios x 2 seeds = 14 independent runs per iteration.
	specs := sweep.ScenarioMatrix(6, sim.Millisecond, []uint64{100, 101})
	printOnce("SW", func() {
		measure := func(workers int) time.Duration {
			start := time.Now()
			res := sweep.Run(specs, workers, nil)
			for _, r := range res {
				if r.Failed() {
					b.Fatalf("sweep run failed: %s", r.Err)
				}
			}
			return time.Since(start)
		}
		t1 := measure(1)
		t8 := measure(8)
		fmt.Printf("\n[bench] sweep wall clock, %d runs (GOMAXPROCS=%d): workers=1 %v, workers=8 %v (%.1fx)\n",
			len(specs), runtime.GOMAXPROCS(0), t1.Round(time.Millisecond), t8.Round(time.Millisecond),
			float64(t1)/float64(t8))
		if runtime.GOMAXPROCS(0) < 8 {
			fmt.Println("        (speedup needs cores; on >=8-way hardware this approaches 8x)")
		}
	})
	for _, workers := range []int{1, 2, 4, 8} {
		workers := workers
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := sweep.Run(specs, workers, nil)
				if len(res) != len(specs) {
					b.Fatalf("got %d results for %d specs", len(res), len(specs))
				}
			}
		})
	}
}

// BenchmarkKernelHotPath measures the event kernel through the full
// platform stack: one critical app plus two hogs driving L3, MemGuard,
// mesh, MPAM-less channel, and DRAM for a fixed virtual horizon. With
// the pooled kernel records and pooled per-access transactions the
// steady-state allocation count per simulated event is ~0 — run with
// -benchmem to see it. The pure kernel microbenchmark (and the
// comparison against the retired container/heap engine) lives in
// internal/sim; this one exists so regressions in the model hot paths
// (dram.Request, NoC packets, per-access closures) show up too.
func BenchmarkKernelHotPath(b *testing.B) {
	run := func(horizon sim.Duration) uint64 {
		p, err := core.New(core.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		critProf, err := trace.NewProfile(trace.ControlLoop, 0, 1)
		if err != nil {
			b.Fatal(err)
		}
		crit, err := p.AddApp(core.AppConfig{
			Name: "crit", Node: noc.Coord{X: 0, Y: 0}, Cluster: 0, Scheme: 1, Profile: critProf,
		})
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < 2; i++ {
			prof, err := trace.NewProfile(trace.Infotainment, uint64(i+1)<<30, uint64(i)+5)
			if err != nil {
				b.Fatal(err)
			}
			h, err := p.AddApp(core.AppConfig{
				Name: fmt.Sprintf("hog%d", i), Node: noc.Coord{X: 1 + i, Y: 0}, Cluster: 0,
				Scheme: dsu.SchemeID(2 + i), Profile: prof,
			})
			if err != nil {
				b.Fatal(err)
			}
			h.Start()
		}
		crit.Start()
		p.RunFor(horizon)
		return p.Eng.Fired()
	}
	printOnce("KH", func() {
		start := time.Now()
		fired := run(2 * sim.Millisecond)
		wall := time.Since(start)
		fmt.Printf("\n[bench] platform hot path: %d events in %v wall (%.0f events/sec)\n",
			fired, wall.Round(time.Millisecond), float64(fired)/wall.Seconds())
	})
	b.ReportAllocs()
	b.ResetTimer()
	var fired uint64
	for i := 0; i < b.N; i++ {
		fired = run(sim.Millisecond)
	}
	b.ReportMetric(float64(fired), "events/op")
}

// BenchmarkReadLatencyPercentile compares the telemetry histogram's
// O(buckets) quantile (what dram.MasterStats now uses) against the
// copy-and-sort it replaced, on the same 64Ki-sample latency stream.
func BenchmarkReadLatencyPercentile(b *testing.B) {
	const samples = 1 << 16
	const p95idx = (samples - 1) * 95 / 100
	rnd := sim.NewRand(11)
	lats := make([]sim.Duration, samples)
	h := telemetry.NewHistogram()
	for i := range lats {
		lats[i] = sim.NS(float64(20 + rnd.Intn(2000)))
		h.Record(int64(lats[i]))
	}
	printOnce("BP", func() {
		sorted := append([]sim.Duration(nil), lats...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		exact := sorted[p95idx]
		fmt.Printf("\n[bench] p95 of %d read latencies: histogram %v vs exact %v "+
			"(relative error bound %.3f)\n",
			samples, sim.Duration(h.Quantile(0.95)), exact, telemetry.MaxQuantileRelativeError)
	})
	b.Run("histogram", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if h.Quantile(0.95) == 0 {
				b.Fatal("empty quantile")
			}
		}
	})
	b.Run("copy+sort", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s := append([]sim.Duration(nil), lats...)
			sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
			if s[p95idx] == 0 {
				b.Fatal("empty quantile")
			}
		}
	})
}
