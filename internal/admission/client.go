package admission

import (
	"fmt"

	"repro/internal/netcalc"
	"repro/internal/noc"
	"repro/internal/sim"
)

// appState is the client's view of one local application.
type appState struct {
	ref AppRef
	// phase transitions: idle -> requesting -> active -> idle.
	requesting bool
	active     bool
	rejected   bool

	shaper  *netcalc.Shaper
	queue   []*noc.Packet
	pumping bool

	activatedAt sim.Time
	admittedAt  sim.Time
	sent        uint64 // bytes injected into the data layer
}

// Client is a node's local supervisor (Section V): it prevents
// non-authorized accesses, traps first transmissions until the RM
// admits the application, enforces the assigned injection rate, blocks
// traffic on stopMsg, and reports termination.
type Client struct {
	sys  *System
	at   noc.Coord
	apps map[string]*appState
	// stopped blocks all data-plane injection between a stopMsg and
	// the following confMsg.
	stopped bool
	mode    int
}

func newClient(s *System, at noc.Coord) *Client {
	return &Client{sys: s, at: at, apps: make(map[string]*appState)}
}

// At returns the client's node.
func (c *Client) At() noc.Coord { return c.at }

// Mode returns the system mode last communicated to this client.
func (c *Client) Mode() int { return c.mode }

// Stopped reports whether the client is between a stopMsg and its
// confMsg.
func (c *Client) Stopped() bool { return c.stopped }

// Register declares an application running on this node. Unregistered
// applications cannot send (non-authorized access prevention).
func (c *Client) Register(name string, crit Criticality) error {
	if name == "" {
		return fmt.Errorf("admission: empty application name")
	}
	if _, dup := c.apps[name]; dup {
		return fmt.Errorf("admission: application %q already registered at %v", name, c.at)
	}
	c.apps[name] = &appState{ref: AppRef{Name: name, Node: c.at, Crit: crit}}
	return nil
}

// AppActive reports whether the application has been admitted.
func (c *Client) AppActive(name string) bool {
	a := c.apps[name]
	return a != nil && a.active
}

// AdmissionLatency returns request-to-admission latency for an active
// application.
func (c *Client) AdmissionLatency(name string) (sim.Duration, error) {
	a := c.apps[name]
	if a == nil || !a.active {
		return 0, fmt.Errorf("admission: %q not active", name)
	}
	return a.admittedAt - a.activatedAt, nil
}

// Sent returns the bytes the application has injected so far.
func (c *Client) Sent(name string) uint64 {
	if a := c.apps[name]; a != nil {
		return a.sent
	}
	return 0
}

// Submit hands one data packet to the supervisor. A first transmission
// from an idle application is trapped: the packet is queued and an
// actMsg goes to the RM; the packet flows once the RM's confMsg
// arrives.
func (c *Client) Submit(app string, pkt *noc.Packet) error {
	a := c.apps[app]
	if a == nil {
		return fmt.Errorf("admission: unauthorized application %q at %v", app, c.at)
	}
	if pkt == nil || pkt.Bytes <= 0 {
		return fmt.Errorf("admission: bad packet")
	}
	pkt.Flow = app
	pkt.Submitted = c.sys.eng.Now()
	a.queue = append(a.queue, pkt)

	if !a.active && !a.requesting {
		// First transmission: trap and request admission.
		a.requesting = true
		a.rejected = false
		a.activatedAt = c.sys.eng.Now()
		ref := a.ref
		c.sys.sendCtrl(c.at, c.sys.rm.node, ActMsg, func() {
			c.sys.rm.handle(ActMsg, ref)
		})
	}
	c.pump(a)
	return nil
}

// Terminate reports the application's termination to the RM; its
// remaining queued packets are dropped (the application is gone).
func (c *Client) Terminate(app string) error {
	a := c.apps[app]
	if a == nil {
		return fmt.Errorf("admission: unauthorized application %q", app)
	}
	if !a.active {
		return fmt.Errorf("admission: %q is not active", app)
	}
	a.active = false
	a.queue = nil
	a.shaper = nil
	ref := a.ref
	c.sys.sendCtrl(c.at, c.sys.rm.node, TerMsg, func() {
		c.sys.rm.handle(TerMsg, ref)
	})
	return nil
}

// onStop blocks all local injection (stopMsg).
func (c *Client) onStop() { c.stopped = true }

// onReject handles an admission rejection: the trapped traffic is
// dropped and the application may retry later with a fresh Submit.
func (c *Client) onReject(app string) {
	a := c.apps[app]
	if a == nil {
		return
	}
	a.requesting = false
	a.queue = nil
	a.rejected = true
}

// AppRejected reports whether the application's last admission attempt
// was rejected by the RM's analytic test.
func (c *Client) AppRejected(name string) bool {
	a := c.apps[name]
	return a != nil && a.rejected
}

// onConf applies the new mode and rates, then unblocks (confMsg).
func (c *Client) onConf(mode int, rates map[string]float64) {
	c.stopped = false
	c.mode = mode
	now := c.sys.eng.Now()
	for name, a := range c.apps {
		rate, ok := rates[name]
		if !ok {
			// Not in the active set (terminated or never admitted).
			if a.requesting {
				continue // still waiting for its own activation cycle
			}
			a.active = false
			a.shaper = nil
			continue
		}
		if !a.active {
			a.active = true
			a.requesting = false
			a.admittedAt = now
		}
		if a.shaper == nil {
			// Burst: one packet's worth at the assigned rate over a
			// 100ns window, at least one flit.
			burst := rate * 100
			if min := float64(c.sys.mesh.Config().FlitBytes); burst < min {
				burst = min
			}
			sh, err := netcalc.NewShaper(burst, rate)
			if err == nil {
				a.shaper = sh
			}
		} else {
			a.shaper.SetRate(now, rate)
		}
		c.pump(a)
	}
}

// pump injects an application's queued packets as its shaper allows.
func (c *Client) pump(a *appState) {
	if a.pumping {
		return
	}
	a.pumping = true
	defer func() { a.pumping = false }()

	for {
		if c.stopped || !a.active || len(a.queue) == 0 || a.shaper == nil {
			return
		}
		head := a.queue[0]
		now := c.sys.eng.Now()
		if !a.shaper.Take(now, float64(head.Bytes)) {
			at := a.shaper.EarliestConforming(now, float64(head.Bytes))
			if at == sim.Forever {
				// The packet exceeds the bucket depth: deepen the
				// bucket to one packet (the shaper still enforces the
				// sustained rate, which is what the RM allocated).
				sh, err := netcalc.NewShaper(float64(head.Bytes), a.shaper.Rate())
				if err != nil {
					return
				}
				a.shaper = sh
				continue
			}
			c.sys.eng.At(at, func() { c.pump(a) })
			return
		}
		a.queue = a.queue[1:]
		ni, err := c.sys.mesh.NI(c.at)
		if err != nil {
			return
		}
		if err := ni.Send(head); err != nil {
			return
		}
		a.sent += uint64(head.Bytes)
	}
}
