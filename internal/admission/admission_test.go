package admission

import (
	"math"
	"testing"

	"repro/internal/noc"
	"repro/internal/sim"
)

type admRig struct {
	eng  *sim.Engine
	mesh *noc.NoC
	sys  *System
}

func newAdm(t *testing.T, policy RatePolicy) *admRig {
	t.Helper()
	eng := sim.NewEngine()
	mesh, err := noc.New(eng, noc.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(eng, mesh, noc.Coord{X: 0, Y: 0}, policy)
	if err != nil {
		t.Fatal(err)
	}
	return &admRig{eng: eng, mesh: mesh, sys: sys}
}

func (r *admRig) client(t *testing.T, at noc.Coord) *Client {
	t.Helper()
	c, err := r.sys.Client(at)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestSystemValidation(t *testing.T) {
	eng := sim.NewEngine()
	mesh, _ := noc.New(eng, noc.DefaultConfig())
	if _, err := NewSystem(eng, mesh, noc.Coord{X: 9, Y: 9}, Symmetric{1}); err == nil {
		t.Error("off-mesh RM accepted")
	}
	if _, err := NewSystem(eng, mesh, noc.Coord{X: 0, Y: 0}, nil); err == nil {
		t.Error("nil policy accepted")
	}
	sys, err := NewSystem(eng, mesh, noc.Coord{X: 0, Y: 0}, Symmetric{1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Client(noc.Coord{X: -1, Y: 0}); err == nil {
		t.Error("off-mesh client accepted")
	}
}

func TestSymmetricPolicy(t *testing.T) {
	p := Symmetric{TotalBytesPerNS: 8}
	apps := []AppRef{{Name: "a"}, {Name: "b"}, {Name: "c"}, {Name: "d"}}
	for mode := 1; mode <= 4; mode++ {
		rates := p.Rates(apps[:mode])
		want := 8 / float64(mode)
		for _, a := range apps[:mode] {
			if got := rates[a.Name]; math.Abs(got-want) > 1e-12 {
				t.Errorf("mode %d: rate[%s] = %v, want %v", mode, a.Name, got, want)
			}
		}
	}
	if len(p.Rates(nil)) != 0 {
		t.Error("empty active set should give no rates")
	}
	if p.Name() != "symmetric" {
		t.Error("policy name")
	}
}

func TestNonSymmetricPolicy(t *testing.T) {
	p := NonSymmetric{TotalBytesPerNS: 8, CriticalBytesPerNS: 3, FloorBytesPerNS: 0.1}
	apps := []AppRef{
		{Name: "crit1", Crit: Critical},
		{Name: "be1"},
		{Name: "be2"},
	}
	rates := p.Rates(apps)
	if rates["crit1"] != 3 {
		t.Errorf("critical rate = %v, want 3", rates["crit1"])
	}
	// Remaining 5 split across 2 best-effort apps.
	if math.Abs(rates["be1"]-2.5) > 1e-12 || math.Abs(rates["be2"]-2.5) > 1e-12 {
		t.Errorf("best-effort rates = %v/%v, want 2.5", rates["be1"], rates["be2"])
	}
	// With many criticals, best effort hits the floor, critical rate
	// is preserved.
	many := []AppRef{
		{Name: "c1", Crit: Critical}, {Name: "c2", Crit: Critical},
		{Name: "c3", Crit: Critical}, {Name: "be"},
	}
	rates = p.Rates(many)
	if rates["c1"] != 3 || rates["c3"] != 3 {
		t.Error("critical guarantee lost under load")
	}
	if rates["be"] != 0.1 {
		t.Errorf("best effort = %v, want floor 0.1", rates["be"])
	}
}

func TestFirstTransmissionTrappedUntilAdmission(t *testing.T) {
	r := newAdm(t, Symmetric{TotalBytesPerNS: 8})
	cl := r.client(t, noc.Coord{X: 3, Y: 3})
	if err := cl.Register("app", BestEffort); err != nil {
		t.Fatal(err)
	}
	pkt := &noc.Packet{Dst: noc.Coord{X: 1, Y: 1}, Bytes: 64}
	var delivered sim.Time
	pkt.OnDelivered = func(at sim.Time) { delivered = at }
	if err := cl.Submit("app", pkt); err != nil {
		t.Fatal(err)
	}
	if cl.AppActive("app") {
		t.Fatal("app active before RM confirmation")
	}
	r.eng.Run()
	if !cl.AppActive("app") {
		t.Fatal("app never admitted")
	}
	if delivered == 0 {
		t.Fatal("trapped packet never delivered after admission")
	}
	lat, err := cl.AdmissionLatency("app")
	if err != nil {
		t.Fatal(err)
	}
	// Round trip across the mesh: strictly positive.
	if lat <= 0 {
		t.Errorf("admission latency = %v", lat)
	}
	if r.sys.RM().Mode() != 1 {
		t.Errorf("mode = %d, want 1", r.sys.RM().Mode())
	}
	st := r.sys.Stats()
	if st.Messages[ActMsg] != 1 || st.Messages[ConfMsg] == 0 {
		t.Errorf("protocol messages = %v", st.Messages)
	}
	if st.Admitted != 1 {
		t.Errorf("admitted = %d", st.Admitted)
	}
}

func TestUnauthorizedAppRejected(t *testing.T) {
	r := newAdm(t, Symmetric{TotalBytesPerNS: 8})
	cl := r.client(t, noc.Coord{X: 1, Y: 1})
	if err := cl.Submit("ghost", &noc.Packet{Dst: noc.Coord{X: 0, Y: 0}, Bytes: 64}); err == nil {
		t.Error("unauthorized app allowed to send")
	}
	if err := cl.Register("", BestEffort); err == nil {
		t.Error("empty name registered")
	}
	if err := cl.Register("a", BestEffort); err != nil {
		t.Fatal(err)
	}
	if err := cl.Register("a", BestEffort); err == nil {
		t.Error("duplicate registration accepted")
	}
	if err := cl.Terminate("a"); err == nil {
		t.Error("terminating inactive app accepted")
	}
	if err := cl.Submit("a", nil); err == nil {
		t.Error("nil packet accepted")
	}
}

func TestModeTracksActivationsAndTerminations(t *testing.T) {
	r := newAdm(t, Symmetric{TotalBytesPerNS: 8})
	nodes := []noc.Coord{{X: 1, Y: 0}, {X: 2, Y: 0}, {X: 3, Y: 0}}
	for i, n := range nodes {
		cl := r.client(t, n)
		name := string(rune('a' + i))
		if err := cl.Register(name, BestEffort); err != nil {
			t.Fatal(err)
		}
		if err := cl.Submit(name, &noc.Packet{Dst: noc.Coord{X: 0, Y: 3}, Bytes: 64}); err != nil {
			t.Fatal(err)
		}
	}
	r.eng.Run()
	if got := r.sys.RM().Mode(); got != 3 {
		t.Fatalf("mode = %d, want 3", got)
	}
	if got := len(r.sys.RM().Active()); got != 3 {
		t.Fatalf("active = %d", got)
	}
	// Terminate one.
	if err := r.client(t, nodes[1]).Terminate("b"); err != nil {
		t.Fatal(err)
	}
	r.eng.Run()
	if got := r.sys.RM().Mode(); got != 2 {
		t.Fatalf("mode after termination = %d, want 2", got)
	}
	st := r.sys.Stats()
	if st.Terminated != 1 || st.ModeChanges != 4 {
		t.Errorf("stats = %+v", st)
	}
	if st.MeanModeChangeLatencyNS() <= 0 || st.MaxModeLat < st.MeanModeChangeLatencyNS() {
		t.Errorf("mode latency accounting: mean %v max %v", st.MeanModeChangeLatencyNS(), st.MaxModeLat)
	}
}

func TestSymmetricRatesDegradeWithMode(t *testing.T) {
	// Fig. 7: as more applications activate, per-application injection
	// rates drop uniformly. Measure actual throughput of app "a" while
	// one, then four, applications are active.
	r := newAdm(t, Symmetric{TotalBytesPerNS: 1.6}) // 1.6 B/ns total
	clA := r.client(t, noc.Coord{X: 1, Y: 1})
	if err := clA.Register("a", BestEffort); err != nil {
		t.Fatal(err)
	}
	// Keep "a" saturated for the whole run (64000B exceeds what both phases can drain).
	for i := 0; i < 1000; i++ {
		if err := clA.Submit("a", &noc.Packet{Dst: noc.Coord{X: 2, Y: 1}, Bytes: 64}); err != nil {
			t.Fatal(err)
		}
	}
	// Phase 1: alone until 20us.
	r.eng.RunUntil(20 * sim.Microsecond)
	aloneBytes := clA.Sent("a")

	// Phase 2: three more apps activate.
	for i, n := range []noc.Coord{{X: 0, Y: 2}, {X: 1, Y: 2}, {X: 2, Y: 2}} {
		cl := r.client(t, n)
		name := "x" + string(rune('0'+i))
		if err := cl.Register(name, BestEffort); err != nil {
			t.Fatal(err)
		}
		for k := 0; k < 400; k++ {
			if err := cl.Submit(name, &noc.Packet{Dst: noc.Coord{X: 3, Y: 2}, Bytes: 64}); err != nil {
				t.Fatal(err)
			}
		}
	}
	r.eng.RunUntil(40 * sim.Microsecond)
	crowdedBytes := clA.Sent("a") - aloneBytes

	// Alone: ~1.6 B/ns = 32000B in 20us. Crowded: ~0.4 B/ns = 8000B.
	if aloneBytes < 25000 {
		t.Errorf("alone throughput = %d bytes, want ~32000", aloneBytes)
	}
	ratio := float64(aloneBytes) / float64(crowdedBytes)
	if ratio < 3 || ratio > 6 {
		t.Errorf("mode-1 vs mode-4 throughput ratio = %.2f, want ~4", ratio)
	}
	if got := clA.Mode(); got != 4 {
		t.Errorf("client mode = %d, want 4", got)
	}
}

func TestNonSymmetricPreservesCriticalThroughput(t *testing.T) {
	// The mixed-criticality property: a critical app's throughput is
	// unaffected by best-effort activations.
	run := func(extraBE int) uint64 {
		r := newAdm(t, NonSymmetric{TotalBytesPerNS: 1.6, CriticalBytesPerNS: 0.8})
		cl := r.client(t, noc.Coord{X: 1, Y: 1})
		if err := cl.Register("crit", Critical); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 600; i++ {
			if err := cl.Submit("crit", &noc.Packet{Dst: noc.Coord{X: 2, Y: 1}, Bytes: 64}); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < extraBE; i++ {
			n := noc.Coord{X: i % 4, Y: 3}
			bcl := r.client(t, n)
			name := "be" + string(rune('0'+i))
			if err := bcl.Register(name, BestEffort); err != nil {
				t.Fatal(err)
			}
			for k := 0; k < 200; k++ {
				if err := bcl.Submit(name, &noc.Packet{Dst: noc.Coord{X: 3, Y: 0}, Bytes: 64}); err != nil {
					t.Fatal(err)
				}
			}
		}
		r.eng.RunUntil(30 * sim.Microsecond)
		return cl.Sent("crit")
	}
	alone := run(0)
	crowded := run(3)
	diff := float64(alone) - float64(crowded)
	if diff < 0 {
		diff = -diff
	}
	if diff/float64(alone) > 0.1 {
		t.Errorf("critical throughput changed by %.1f%% under best-effort load (alone %d, crowded %d)",
			100*diff/float64(alone), alone, crowded)
	}
}

func TestStopBlocksDuringModeChange(t *testing.T) {
	// While a reconfiguration is in flight, stopped clients inject
	// nothing. We observe the stop flag via a probe at the instant the
	// mode change is mid-flight.
	r := newAdm(t, Symmetric{TotalBytesPerNS: 0.5})
	cl1 := r.client(t, noc.Coord{X: 3, Y: 3})
	if err := cl1.Register("one", BestEffort); err != nil {
		t.Fatal(err)
	}
	if err := cl1.Submit("one", &noc.Packet{Dst: noc.Coord{X: 0, Y: 1}, Bytes: 64}); err != nil {
		t.Fatal(err)
	}
	r.eng.Run() // app "one" admitted
	sawStopped := false
	probe := func() {
		if cl1.Stopped() {
			sawStopped = true
		}
	}
	for i := sim.Duration(0); i < 200; i++ {
		r.eng.At(r.eng.Now()+i*sim.NS(1), probe)
	}
	cl2 := r.client(t, noc.Coord{X: 2, Y: 2})
	if err := cl2.Register("two", BestEffort); err != nil {
		t.Fatal(err)
	}
	if err := cl2.Submit("two", &noc.Packet{Dst: noc.Coord{X: 0, Y: 1}, Bytes: 64}); err != nil {
		t.Fatal(err)
	}
	r.eng.Run()
	if !sawStopped {
		t.Error("client was never stopped during the mode change")
	}
	if cl1.Stopped() {
		t.Error("client left stopped after reconfiguration")
	}
}

func TestDuplicateActivationRejected(t *testing.T) {
	r := newAdm(t, Symmetric{TotalBytesPerNS: 1})
	cl := r.client(t, noc.Coord{X: 1, Y: 1})
	if err := cl.Register("a", BestEffort); err != nil {
		t.Fatal(err)
	}
	_ = cl.Submit("a", &noc.Packet{Dst: noc.Coord{X: 0, Y: 1}, Bytes: 64})
	r.eng.Run()
	// Hand-inject a duplicate actMsg (e.g. a retransmission).
	r.sys.RM().handle(ActMsg, AppRef{Name: "a", Node: noc.Coord{X: 1, Y: 1}})
	r.eng.Run()
	if got := r.sys.Stats().Rejected; got != 1 {
		t.Errorf("rejected = %d, want 1", got)
	}
	if r.sys.RM().Mode() != 1 {
		t.Errorf("mode corrupted by duplicate: %d", r.sys.RM().Mode())
	}
}

func TestCriticalityString(t *testing.T) {
	if BestEffort.String() != "best-effort" || Critical.String() != "critical" {
		t.Error("Criticality.String")
	}
	for _, m := range []MsgType{ActMsg, TerMsg, StopMsg, ConfMsg, MsgType(9)} {
		if m.String() == "" {
			t.Error("MsgType.String empty")
		}
	}
}

func TestDeterministicAdmission(t *testing.T) {
	run := func() (uint64, float64) {
		r := newAdm(t, Symmetric{TotalBytesPerNS: 2})
		for i := 0; i < 6; i++ {
			n := noc.Coord{X: i % 4, Y: i / 4}
			cl := r.client(t, n)
			name := "app" + string(rune('0'+i))
			if err := cl.Register(name, BestEffort); err != nil {
				t.Fatal(err)
			}
			at := sim.Duration(i) * sim.Microsecond
			r.eng.At(at, func() {
				for k := 0; k < 50; k++ {
					_ = cl.Submit(name, &noc.Packet{Dst: noc.Coord{X: 3, Y: 3}, Bytes: 32})
				}
			})
		}
		r.eng.RunUntil(50 * sim.Microsecond)
		st := r.sys.Stats()
		return st.Messages[ConfMsg], st.TotalModeLat
	}
	c1, l1 := run()
	c2, l2 := run()
	if c1 != c2 || l1 != l2 {
		t.Fatalf("nondeterministic admission: %d/%v vs %d/%v", c1, l1, c2, l2)
	}
}
