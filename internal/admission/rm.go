package admission

import (
	"fmt"

	"repro/internal/noc"
	"repro/internal/sim"
)

// event is one queued activation/termination at the RM.
type event struct {
	typ MsgType
	app AppRef
}

// eventQueue is a head-indexed FIFO of RM events. Popping advances a
// head index instead of reslicing (`pending = pending[1:]` kept the
// backing array's dead prefix alive, so every push/pop cycle grew and
// reallocated it); the buffer is reset when drained and compacted when
// the dead prefix dominates, so steady-state churn is allocation-flat.
// Same pattern as the NI flit queue fix.
type eventQueue struct {
	buf  []event
	head int
}

func (q *eventQueue) push(ev event) { q.buf = append(q.buf, ev) }

func (q *eventQueue) empty() bool { return q.head == len(q.buf) }

func (q *eventQueue) pop() event {
	ev := q.buf[q.head]
	q.buf[q.head] = event{} // release the AppRef strings
	q.head++
	if q.head == len(q.buf) {
		q.buf = q.buf[:0]
		q.head = 0
	} else if q.head > 32 && q.head*2 >= len(q.buf) {
		n := copy(q.buf, q.buf[q.head:])
		q.buf = q.buf[:n]
		q.head = 0
	}
	return ev
}

// RM is the Resource Manager: the centralized scheduling unit with the
// global view of active senders and occupied resources. It serializes
// activation and termination events ("processed in their arrival
// order") and drives the stop/configure cycle for each mode change.
type RM struct {
	sys  *System
	node noc.Coord

	active  map[string]AppRef
	pending eventQueue

	reconfiguring bool
	reconfStart   sim.Time
	stopsLeft     int
	confsLeft     int
	current       event
}

func newRM(sys *System, node noc.Coord) *RM {
	return &RM{sys: sys, node: node, active: make(map[string]AppRef)}
}

// Node returns the RM's mesh coordinate.
func (rm *RM) Node() noc.Coord { return rm.node }

// Mode returns the current system mode: the number of active
// applications.
func (rm *RM) Mode() int { return len(rm.active) }

// Active returns the active applications, deterministically ordered.
func (rm *RM) Active() []AppRef {
	out := make([]AppRef, 0, len(rm.active))
	for _, a := range rm.active {
		out = append(out, a)
	}
	sortApps(out)
	return out
}

// handle receives an actMsg or terMsg (invoked on control-packet
// delivery at the RM node).
func (rm *RM) handle(typ MsgType, app AppRef) {
	rm.pending.push(event{typ, app})
	rm.next()
}

// next starts the following reconfiguration if idle.
func (rm *RM) next() {
	if rm.reconfiguring || rm.pending.empty() {
		return
	}
	ev := rm.pending.pop()

	switch ev.typ {
	case ActMsg:
		if _, dup := rm.active[ev.app.Name]; dup {
			rm.sys.stats.Rejected++
			if rm.sys.tel != nil {
				rm.sys.traceReject(ev.app.Name, rm.sys.eng.Now())
			}
			rm.next()
			return
		}
		rm.active[ev.app.Name] = ev.app
		// Analytic admission test (Section IV-A run online): evaluate
		// the post-admission rate assignment before committing.
		if rm.sys.check != nil {
			rates := rm.sys.policy.Rates(rm.Active())
			if err := rm.sys.check(rm.Active(), rates, ev.app); err != nil {
				delete(rm.active, ev.app.Name)
				rm.sys.stats.Rejected++
				if rm.sys.tel != nil {
					rm.sys.traceReject(ev.app.Name, rm.sys.eng.Now())
				}
				node := ev.app.Node
				name := ev.app.Name
				rm.sys.sendCtrl(rm.node, node, ConfMsg, func() {
					rm.sys.client(node).onReject(name)
				})
				rm.next()
				return
			}
		}
	case TerMsg:
		if _, ok := rm.active[ev.app.Name]; !ok {
			rm.sys.stats.Rejected++
			if rm.sys.tel != nil {
				rm.sys.traceReject(ev.app.Name, rm.sys.eng.Now())
			}
			rm.next()
			return
		}
		delete(rm.active, ev.app.Name)
	default:
		rm.next()
		return
	}

	rm.reconfiguring = true
	rm.current = ev
	rm.reconfStart = rm.sys.eng.Now()
	rm.sys.stats.ModeChanges++

	// Stop phase: block every node hosting an active application (the
	// terminating node needs no stop; it has nothing left to block,
	// but its client still learns the outcome via a conf).
	targets := rm.targetNodes()
	rm.stopsLeft = len(targets)
	if rm.stopsLeft == 0 {
		rm.configure()
		return
	}
	for _, node := range targets {
		node := node
		rm.sys.sendCtrl(rm.node, node, StopMsg, func() {
			rm.sys.client(node).onStop()
			rm.stopDelivered()
		})
	}
}

// targetNodes returns the nodes hosting active applications plus the
// node of the event's application (which must be unblocked/informed),
// deduplicated and ordered.
func (rm *RM) targetNodes() []noc.Coord {
	seen := make(map[noc.Coord]bool)
	var out []noc.Coord
	add := func(c noc.Coord) {
		if !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	for _, a := range rm.Active() {
		add(a.Node)
	}
	add(rm.current.app.Node)
	return out
}

func (rm *RM) stopDelivered() {
	rm.stopsLeft--
	if rm.stopsLeft == 0 {
		rm.configure()
	}
}

// configure computes the new rates and distributes confMsgs.
func (rm *RM) configure() {
	rates := rm.sys.policy.Rates(rm.Active())
	mode := rm.Mode()
	targets := rm.targetNodes()
	rm.confsLeft = len(targets)
	if rm.confsLeft == 0 {
		rm.finish()
		return
	}
	for _, node := range targets {
		node := node
		rm.sys.sendCtrl(rm.node, node, ConfMsg, func() {
			rm.sys.client(node).onConf(mode, rates)
			rm.confDelivered()
		})
	}
}

func (rm *RM) confDelivered() {
	rm.confsLeft--
	if rm.confsLeft == 0 {
		rm.finish()
	}
}

// finish closes the reconfiguration and accounts its latency.
func (rm *RM) finish() {
	lat := (rm.sys.eng.Now() - rm.reconfStart).Nanoseconds()
	st := &rm.sys.stats
	st.TotalModeLat += lat
	st.TotalModeLatN++
	if lat > st.MaxModeLat {
		st.MaxModeLat = lat
	}
	switch rm.current.typ {
	case ActMsg:
		st.Admitted++
	case TerMsg:
		st.Terminated++
	}
	if rm.sys.tel != nil {
		rm.sys.traceModeChange(rm.current.typ, rm.current.app.Name,
			rm.reconfStart, rm.sys.eng.Now(), rm.Mode())
	}
	rm.reconfiguring = false
	rm.next()
}

// System wires a NoC, one RM, and one client per node.
type System struct {
	eng     *sim.Engine
	mesh    *noc.NoC
	rm      *RM
	policy  RatePolicy
	check   CheckFunc
	clients map[noc.Coord]*Client
	stats   Stats
	tel     *telemetryState
}

// NewSystem builds the admission overlay on an existing mesh. The RM
// is placed at rmNode.
func NewSystem(eng *sim.Engine, mesh *noc.NoC, rmNode noc.Coord, policy RatePolicy) (*System, error) {
	if !mesh.InMesh(rmNode) {
		return nil, fmt.Errorf("admission: RM node %v outside mesh", rmNode)
	}
	if policy == nil {
		return nil, fmt.Errorf("admission: nil rate policy")
	}
	s := &System{
		eng:     eng,
		mesh:    mesh,
		policy:  policy,
		clients: make(map[noc.Coord]*Client),
		stats:   Stats{Messages: make(map[MsgType]uint64)},
	}
	s.rm = newRM(s, rmNode)
	return s, nil
}

// RM returns the resource manager.
func (s *System) RM() *RM { return s.rm }

// Stats returns a snapshot of the protocol statistics.
func (s *System) Stats() Stats {
	cp := s.stats
	cp.Messages = make(map[MsgType]uint64, len(s.stats.Messages))
	for k, v := range s.stats.Messages {
		cp.Messages[k] = v
	}
	return cp
}

// Client returns (creating on demand) the supervisor at a node.
func (s *System) Client(at noc.Coord) (*Client, error) {
	if !s.mesh.InMesh(at) {
		return nil, fmt.Errorf("admission: node %v outside mesh", at)
	}
	return s.client(at), nil
}

func (s *System) client(at noc.Coord) *Client {
	c := s.clients[at]
	if c == nil {
		c = newClient(s, at)
		s.clients[at] = c
	}
	return c
}

// sendCtrl ships one protocol message as a real packet over the mesh.
func (s *System) sendCtrl(from, to noc.Coord, typ MsgType, onDelivered func()) {
	s.stats.Messages[typ]++
	ni, err := s.mesh.NI(from)
	if err != nil {
		panic(fmt.Sprintf("admission: control send from bad node: %v", err))
	}
	pkt := &noc.Packet{
		Dst:   to,
		Bytes: ctrlMsgBytes,
		Flow:  "ctrl:" + typ.String(),
		OnDelivered: func(sim.Time) {
			onDelivered()
		},
	}
	if err := ni.Send(pkt); err != nil {
		panic(fmt.Sprintf("admission: control send failed: %v", err))
	}
}
