package admission

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/noc"
	"repro/internal/sim"
)

// TestQuickChurnInvariants drives random join/leave churn through the
// protocol and checks global invariants afterwards: the RM's mode
// equals its active count, no client is left stopped, admissions plus
// rejections account for every activation attempt, and the engine
// drains (no protocol deadlock).
func TestQuickChurnInvariants(t *testing.T) {
	f := func(seed uint64, n8 uint8) bool {
		eng := sim.NewEngine()
		mesh, err := noc.New(eng, noc.DefaultConfig())
		if err != nil {
			return false
		}
		sys, err := NewSystem(eng, mesh, noc.Coord{X: 0, Y: 0}, Symmetric{TotalBytesPerNS: 1.6})
		if err != nil {
			return false
		}
		rnd := sim.NewRand(seed)
		const nApps = 5
		clients := make([]*Client, nApps)
		for i := 0; i < nApps; i++ {
			cl, err := sys.Client(noc.Coord{X: i % 4, Y: (i / 4) % 4})
			if err != nil {
				return false
			}
			if err := cl.Register(fmt.Sprintf("app%d", i), Criticality(i%2)); err != nil {
				return false
			}
			clients[i] = cl
		}
		// Random interleaving of submits and terminates.
		steps := int(n8%40) + 10
		for s := 0; s < steps; s++ {
			i := rnd.Intn(nApps)
			at := sim.Duration(s) * sim.Microsecond
			eng.At(at, func() {
				name := fmt.Sprintf("app%d", i)
				if clients[i].AppActive(name) && rnd.Intn(2) == 0 {
					_ = clients[i].Terminate(name)
					return
				}
				_ = clients[i].Submit(name, &noc.Packet{
					Dst: noc.Coord{X: 3, Y: 3}, Bytes: 32,
				})
			})
		}
		eng.Run() // must drain: protocol cannot deadlock

		active := 0
		for i := 0; i < nApps; i++ {
			if clients[i].AppActive(fmt.Sprintf("app%d", i)) {
				active++
			}
			if clients[i].Stopped() {
				return false // left blocked after the last reconfiguration
			}
		}
		if sys.RM().Mode() != active {
			return false
		}
		if len(sys.RM().Active()) != active {
			return false
		}
		st := sys.Stats()
		// Every stop eventually paired with a conf (plus one conf per
		// rejection-free activation cycle); at minimum confs >= stops.
		return st.Messages[ConfMsg] >= st.Messages[StopMsg]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestTerminateDuringReconfiguration exercises the pending-event queue:
// a termination arriving while an activation's stop/conf cycle is in
// flight must be processed afterwards, in order.
func TestTerminateDuringReconfiguration(t *testing.T) {
	eng := sim.NewEngine()
	mesh, err := noc.New(eng, noc.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(eng, mesh, noc.Coord{X: 0, Y: 0}, Symmetric{TotalBytesPerNS: 1})
	if err != nil {
		t.Fatal(err)
	}
	ca, _ := sys.Client(noc.Coord{X: 1, Y: 1})
	cb, _ := sys.Client(noc.Coord{X: 2, Y: 2})
	if err := ca.Register("a", BestEffort); err != nil {
		t.Fatal(err)
	}
	if err := cb.Register("b", BestEffort); err != nil {
		t.Fatal(err)
	}
	_ = ca.Submit("a", &noc.Packet{Dst: noc.Coord{X: 3, Y: 3}, Bytes: 32})
	eng.Run()
	// Fire b's activation and a's termination back to back, so the
	// terMsg lands while b's cycle may still be reconfiguring.
	_ = cb.Submit("b", &noc.Packet{Dst: noc.Coord{X: 3, Y: 3}, Bytes: 32})
	_ = ca.Terminate("a")
	eng.Run()
	if got := sys.RM().Mode(); got != 1 {
		t.Fatalf("mode = %d, want 1 (b active, a terminated)", got)
	}
	act := sys.RM().Active()
	if len(act) != 1 || act[0].Name != "b" {
		t.Fatalf("active = %v", act)
	}
}
