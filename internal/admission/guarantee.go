package admission

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/netcalc"
)

// Requirement is an application's declared traffic contract and QoS
// target, used by the analytic admission test.
type Requirement struct {
	// BurstBytes is the token-bucket burst of the application's
	// traffic (its rate is whatever the RM assigns).
	BurstBytes float64
	// DeadlineNS is the maximum tolerable per-transmission delay.
	DeadlineNS float64
}

// CheckFunc decides whether admitting candidate is acceptable given
// the post-admission active set and rate assignment. A non-nil error
// rejects the activation (the RM keeps the previous mode).
type CheckFunc func(active []AppRef, rates map[string]float64, candidate AppRef) error

// DelayBoundCheck builds the paper's Section IV-A suggestion — running
// the inexpensive worst-case bound computation online inside admission
// control. For every active application with a declared Requirement it
// evaluates the Network Calculus delay bound of a (burst, assignedRate)
// token bucket through that application's service curve, and rejects
// the candidate if any bound would exceed its deadline.
//
// baseService returns the end-to-end service curve available to an
// application when granted a sustained rate (bytes/ns) — typically a
// rate-latency curve whose latency folds in the NoC path and the DRAM
// WCD (see internal/dram/wcd.ServiceCurve for the memory side).
// Applications without a Requirement are admitted unconditionally
// (best effort).
//
// The check is incremental: each closure keeps a per-application memo
// of the last (rate, requirement) it evaluated and the resulting
// bound, plus a memoized operator cache for the underlying curve
// arithmetic. Admitting or releasing one application only recomputes
// the bounds of applications whose assigned rate actually changed —
// baseService is not even called for the others — so high-churn online
// admission does not re-derive the whole mode's analysis from scratch.
// A memo hit returns the stored result of the identical computation,
// so decisions are bit-identical to the non-incremental check.
func DelayBoundCheck(reqs map[string]Requirement,
	baseService func(app AppRef, rate float64) netcalc.Curve) CheckFunc {
	type boundMemo struct {
		ref   AppRef
		rate  float64
		req   Requirement
		bound float64
	}
	var (
		mu    sync.Mutex
		memo  = make(map[string]*boundMemo)
		cache = netcalc.NewCache(0)
	)
	return func(active []AppRef, rates map[string]float64, candidate AppRef) error {
		mu.Lock()
		defer mu.Unlock()
		for _, app := range active {
			req, has := reqs[app.Name]
			if !has {
				continue
			}
			rate := rates[app.Name]
			if rate <= 0 {
				return fmt.Errorf("admission: %s would receive no bandwidth", app.Name)
			}
			m, ok := memo[app.Name]
			if !ok || m.ref != app || m.rate != rate || m.req != req {
				alpha := netcalc.TokenBucket(req.BurstBytes, rate)
				beta := baseService(app, rate)
				m = &boundMemo{ref: app, rate: rate, req: req,
					bound: cache.DelayBound(alpha, beta)}
				memo[app.Name] = m
			}
			if d := m.bound; math.IsInf(d, 1) || d > req.DeadlineNS {
				return fmt.Errorf("admission: admitting %s would push %s to %.1f ns (deadline %.1f ns)",
					candidate.Name, app.Name, d, req.DeadlineNS)
			}
		}
		return nil
	}
}

// SetAdmissionCheck installs an analytic admission test consulted by
// the RM before every activation. Pass nil to remove it.
func (s *System) SetAdmissionCheck(check CheckFunc) { s.check = check }
