package admission

import (
	"fmt"
	"math"

	"repro/internal/netcalc"
)

// Requirement is an application's declared traffic contract and QoS
// target, used by the analytic admission test.
type Requirement struct {
	// BurstBytes is the token-bucket burst of the application's
	// traffic (its rate is whatever the RM assigns).
	BurstBytes float64
	// DeadlineNS is the maximum tolerable per-transmission delay.
	DeadlineNS float64
}

// CheckFunc decides whether admitting candidate is acceptable given
// the post-admission active set and rate assignment. A non-nil error
// rejects the activation (the RM keeps the previous mode).
type CheckFunc func(active []AppRef, rates map[string]float64, candidate AppRef) error

// DelayBoundCheck builds the paper's Section IV-A suggestion — running
// the inexpensive worst-case bound computation online inside admission
// control. For every active application with a declared Requirement it
// evaluates the Network Calculus delay bound of a (burst, assignedRate)
// token bucket through that application's service curve, and rejects
// the candidate if any bound would exceed its deadline.
//
// baseService returns the end-to-end service curve available to an
// application when granted a sustained rate (bytes/ns) — typically a
// rate-latency curve whose latency folds in the NoC path and the DRAM
// WCD (see internal/dram/wcd.ServiceCurve for the memory side).
// Applications without a Requirement are admitted unconditionally
// (best effort).
func DelayBoundCheck(reqs map[string]Requirement,
	baseService func(app AppRef, rate float64) netcalc.Curve) CheckFunc {
	return func(active []AppRef, rates map[string]float64, candidate AppRef) error {
		for _, app := range active {
			req, has := reqs[app.Name]
			if !has {
				continue
			}
			rate := rates[app.Name]
			if rate <= 0 {
				return fmt.Errorf("admission: %s would receive no bandwidth", app.Name)
			}
			alpha := netcalc.TokenBucket(req.BurstBytes, rate)
			beta := baseService(app, rate)
			d := netcalc.DelayBound(alpha, beta)
			if math.IsInf(d, 1) || d > req.DeadlineNS {
				return fmt.Errorf("admission: admitting %s would push %s to %.1f ns (deadline %.1f ns)",
					candidate.Name, app.Name, d, req.DeadlineNS)
			}
		}
		return nil
	}
}

// SetAdmissionCheck installs an analytic admission test consulted by
// the RM before every activation. Pass nil to remove it.
func (s *System) SetAdmissionCheck(check CheckFunc) { s.check = check }
