package admission

import (
	"fmt"
	"testing"

	"repro/internal/netcalc"
	"repro/internal/noc"
)

// TestEventQueueFIFO pins FIFO order through the head-indexed queue's
// compaction path: keep the queue non-empty for long enough that the
// dead-prefix compaction triggers and check nothing is lost or
// reordered.
func TestEventQueueFIFO(t *testing.T) {
	var q eventQueue
	next, want := 0, 0
	push := func() {
		q.push(event{app: AppRef{Name: fmt.Sprintf("app%d", next)}})
		next++
	}
	pop := func() {
		ev := q.pop()
		if got := fmt.Sprintf("app%d", want); ev.app.Name != got {
			t.Fatalf("pop = %q, want %q", ev.app.Name, got)
		}
		want++
	}
	// Phase 1: grow a backlog, then drain past the compaction threshold
	// (head > 32 with a live tail).
	for i := 0; i < 100; i++ {
		push()
	}
	for i := 0; i < 60; i++ {
		pop()
	}
	// Phase 2: steady churn with a standing backlog.
	for i := 0; i < 500; i++ {
		push()
		pop()
	}
	// Drain.
	for !q.empty() {
		pop()
	}
	if want != next {
		t.Fatalf("popped %d events, pushed %d", want, next)
	}
}

// TestEventQueueAllocFlat checks the satellite fix: a long
// activation/termination churn cycle through the RM's pending queue
// must not reallocate per event. The old `pending = pending[1:]`
// reslice kept the dead prefix alive so every cycle grew the backing
// array; the head-indexed queue reuses it.
func TestEventQueueAllocFlat(t *testing.T) {
	var q eventQueue
	ev := event{typ: ActMsg, app: AppRef{Name: "app"}}
	// Warm up: let the buffer reach its steady-state capacity.
	for i := 0; i < 64; i++ {
		q.push(ev)
		q.pop()
	}
	avg := testing.AllocsPerRun(1000, func() {
		q.push(ev)
		q.pop()
	})
	if avg != 0 {
		t.Fatalf("push/pop churn allocates %.2f allocs/op, want 0", avg)
	}
}

// TestDelayBoundCheckIncremental verifies the incremental admission
// check: when a decision re-evaluates an active set whose rates did
// not change, the service-curve constructor must not run again, and
// admitting one more application must only recompute the bounds of
// applications whose assigned rate actually moved.
func TestDelayBoundCheckIncremental(t *testing.T) {
	reqs := map[string]Requirement{
		"a": {BurstBytes: 64, DeadlineNS: 1e6},
		"b": {BurstBytes: 64, DeadlineNS: 1e6},
		"c": {BurstBytes: 64, DeadlineNS: 1e6},
	}
	calls := make(map[string]int)
	check := DelayBoundCheck(reqs, func(app AppRef, rate float64) netcalc.Curve {
		calls[app.Name]++
		return netcalc.RateLatency(rate, 100)
	})

	apps := []AppRef{
		{Name: "a", Node: noc.Coord{X: 1, Y: 1}},
		{Name: "b", Node: noc.Coord{X: 2, Y: 2}},
		{Name: "c", Node: noc.Coord{X: 3, Y: 3}},
	}
	rates := map[string]float64{"a": 0.4, "b": 0.4, "c": 0.4}
	if err := check(apps, rates, apps[2]); err != nil {
		t.Fatalf("first decision rejected: %v", err)
	}
	if calls["a"] != 1 || calls["b"] != 1 || calls["c"] != 1 {
		t.Fatalf("first decision calls = %v, want one per app", calls)
	}

	// Same active set, same rates: a fresh decision must be free.
	if err := check(apps, rates, apps[0]); err != nil {
		t.Fatalf("repeat decision rejected: %v", err)
	}
	if calls["a"] != 1 || calls["b"] != 1 || calls["c"] != 1 {
		t.Fatalf("repeat decision recomputed: calls = %v", calls)
	}

	// Only c's rate changes: a and b must not be recomputed.
	rates2 := map[string]float64{"a": 0.4, "b": 0.4, "c": 0.3}
	if err := check(apps, rates2, apps[2]); err != nil {
		t.Fatalf("rate-change decision rejected: %v", err)
	}
	if calls["a"] != 1 || calls["b"] != 1 {
		t.Fatalf("unaffected apps recomputed: calls = %v", calls)
	}
	if calls["c"] != 2 {
		t.Fatalf("changed app not recomputed: calls = %v", calls)
	}

	// A requirement identity change (same name, new node) invalidates.
	apps2 := []AppRef{apps[0], apps[1], {Name: "c", Node: noc.Coord{X: 0, Y: 3}}}
	if err := check(apps2, rates2, apps2[2]); err != nil {
		t.Fatalf("ref-change decision rejected: %v", err)
	}
	if calls["c"] != 3 {
		t.Fatalf("re-registered app not recomputed: calls = %v", calls)
	}
}

// TestDelayBoundCheckMatchesUncached pins bit-identical decisions: the
// incremental check must agree with a from-scratch evaluation of the
// same bound on every step of a churn sequence, including rejections.
func TestDelayBoundCheckMatchesUncached(t *testing.T) {
	reqs := map[string]Requirement{
		"a": {BurstBytes: 256, DeadlineNS: 2200},
		"b": {BurstBytes: 512, DeadlineNS: 2400},
		"c": {BurstBytes: 1024, DeadlineNS: 2600},
	}
	base := func(app AppRef, rate float64) netcalc.Curve {
		return netcalc.RateLatency(rate, 100+float64(app.Node.X)*50)
	}
	inc := DelayBoundCheck(reqs, base)
	ref := func(active []AppRef, rates map[string]float64, candidate AppRef) error {
		for _, app := range active {
			req, has := reqs[app.Name]
			if !has {
				continue
			}
			rate := rates[app.Name]
			alpha := netcalc.TokenBucket(req.BurstBytes, rate)
			d := netcalc.DelayBound(alpha, base(app, rate))
			if d > req.DeadlineNS {
				return fmt.Errorf("reject %s", app.Name)
			}
		}
		return nil
	}
	apps := []AppRef{
		{Name: "a", Node: noc.Coord{X: 1, Y: 1}},
		{Name: "b", Node: noc.Coord{X: 2, Y: 2}},
		{Name: "c", Node: noc.Coord{X: 3, Y: 3}},
	}
	// Sweep the shared rate across the feasibility boundary in both
	// directions; acceptance must flip at exactly the same steps.
	for step := 0; step < 40; step++ {
		r := 0.2 + 0.05*float64(step%20)
		active := apps[:1+step%3]
		rates := map[string]float64{"a": r, "b": r, "c": r}
		gotErr := inc(active, rates, active[len(active)-1]) != nil
		wantErr := ref(active, rates, active[len(active)-1]) != nil
		if gotErr != wantErr {
			t.Fatalf("step %d (rate %.2f, %d apps): incremental reject=%v, reference reject=%v",
				step, r, len(active), gotErr, wantErr)
		}
	}
}
