package admission

import (
	"strconv"

	"repro/internal/sim"
	"repro/internal/telemetry"
)

// telemetryState is the admission overlay's optional instrumentation;
// nil disables it.
type telemetryState struct {
	reg *telemetry.Registry
	tr  *telemetry.Tracer

	cAdmitted   *telemetry.Counter
	cRejected   *telemetry.Counter
	cTerminated *telemetry.Counter
}

// SetTelemetry attaches a metrics registry and/or tracer to the
// admission system. Either may be nil; both nil disables
// instrumentation.
func (s *System) SetTelemetry(reg *telemetry.Registry, tr *telemetry.Tracer) {
	if reg == nil && tr == nil {
		s.tel = nil
		return
	}
	ts := &telemetryState{reg: reg, tr: tr}
	if reg != nil {
		ts.cAdmitted = reg.Counter("admission.admitted")
		ts.cRejected = reg.Counter("admission.rejected")
		ts.cTerminated = reg.Counter("admission.terminated")
	}
	s.tel = ts
}

// traceReject marks a rejected (or duplicate/unknown) request.
func (s *System) traceReject(name string, at sim.Time) {
	ts := s.tel
	if ts == nil {
		return
	}
	ts.cRejected.Inc()
	if ts.tr != nil {
		ts.tr.Instant("admission", "reject "+name, at)
	}
}

// traceModeChange emits the whole stop/configure reconfiguration as
// one span on the admission track, labelled with the triggering event
// and the resulting mode.
func (s *System) traceModeChange(typ MsgType, app string, start, end sim.Time, mode int) {
	ts := s.tel
	if ts == nil {
		return
	}
	if typ == ActMsg {
		ts.cAdmitted.Inc()
	} else {
		ts.cTerminated.Inc()
	}
	if ts.tr != nil {
		ts.tr.Span("admission", typ.String()+" "+app, start, end,
			"mode", strconv.Itoa(mode))
	}
}
