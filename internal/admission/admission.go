// Package admission implements the end-to-end admission control
// architecture of Section V of the paper (Figs. 6 and 7): a control
// layer decoupled from the data layer, built from per-node supervisors
// (clients) and a central Resource Manager (RM).
//
// Clients trap an application's first transmission, hold its traffic
// until the RM admits it, enforce the RM-assigned injection rate with
// a token-bucket shaper, report termination, and block traffic during
// mode changes. The RM has the global view: each activation or
// termination moves the system to a new mode (the number of active
// applications), and the RM re-derives every application's injection
// rate from the configured policy — symmetric (uniform degradation
// with rising mode) or non-symmetric (criticality-aware, preserving
// guarantees for critical applications while squeezing best effort).
//
// All four protocol messages (actMsg, terMsg, stopMsg, confMsg) travel
// as real packets through the internal/noc fabric, so protocol
// overhead and mode-change latency are measured, not assumed.
package admission

import (
	"fmt"
	"sort"

	"repro/internal/noc"
)

// Criticality classifies an application for non-symmetric policies.
type Criticality int

// Criticality levels.
const (
	BestEffort Criticality = iota
	Critical
)

// String implements fmt.Stringer.
func (c Criticality) String() string {
	if c == Critical {
		return "critical"
	}
	return "best-effort"
}

// AppRef identifies a registered application and where it runs.
type AppRef struct {
	Name string
	Node noc.Coord
	Crit Criticality
}

// RatePolicy derives per-application injection rates (bytes/ns) from
// the set of currently active applications. The returned map is keyed
// by application name.
type RatePolicy interface {
	Rates(active []AppRef) map[string]float64
	Name() string
}

// Symmetric shares the budget uniformly: every active application gets
// TotalBytesPerNS / mode, the paper's "symmetric guarantees where
// transmission rates decrease uniformly ... along with the increasing
// number of senders" (Fig. 7).
type Symmetric struct {
	TotalBytesPerNS float64
}

// Name implements RatePolicy.
func (Symmetric) Name() string { return "symmetric" }

// Rates implements RatePolicy.
func (p Symmetric) Rates(active []AppRef) map[string]float64 {
	out := make(map[string]float64, len(active))
	if len(active) == 0 {
		return out
	}
	r := p.TotalBytesPerNS / float64(len(active))
	for _, a := range active {
		out[a.Name] = r
	}
	return out
}

// NonSymmetric preserves critical applications' guaranteed rate and
// divides the remaining budget among best-effort applications — the
// paper's mixed-criticality mode: "maintain the critical application
// guarantees while reducing best effort traffic".
type NonSymmetric struct {
	TotalBytesPerNS    float64
	CriticalBytesPerNS float64
	// FloorBytesPerNS keeps best-effort applications from starving
	// entirely (0 permits full starvation).
	FloorBytesPerNS float64
}

// Name implements RatePolicy.
func (NonSymmetric) Name() string { return "non-symmetric" }

// Rates implements RatePolicy.
func (p NonSymmetric) Rates(active []AppRef) map[string]float64 {
	out := make(map[string]float64, len(active))
	var crit, be int
	for _, a := range active {
		if a.Crit == Critical {
			crit++
		} else {
			be++
		}
	}
	remaining := p.TotalBytesPerNS - float64(crit)*p.CriticalBytesPerNS
	beRate := 0.0
	if be > 0 {
		beRate = remaining / float64(be)
	}
	if beRate < p.FloorBytesPerNS {
		beRate = p.FloorBytesPerNS
	}
	for _, a := range active {
		if a.Crit == Critical {
			out[a.Name] = p.CriticalBytesPerNS
		} else {
			out[a.Name] = beRate
		}
	}
	return out
}

// MsgType enumerates the protocol messages.
type MsgType int

// The four control messages of the protocol (Section V).
const (
	ActMsg  MsgType = iota // client -> RM: application activated
	TerMsg                 // client -> RM: application terminated
	StopMsg                // RM -> client: block accesses for a mode change
	ConfMsg                // RM -> client: new mode and rates; unblock
)

// String implements fmt.Stringer.
func (m MsgType) String() string {
	switch m {
	case ActMsg:
		return "actMsg"
	case TerMsg:
		return "terMsg"
	case StopMsg:
		return "stopMsg"
	case ConfMsg:
		return "confMsg"
	}
	return fmt.Sprintf("msg(%d)", int(m))
}

// ctrlMsgBytes is the size of a control packet on the NoC.
const ctrlMsgBytes = 8

// Stats aggregates protocol and mode-change behaviour.
type Stats struct {
	Messages      map[MsgType]uint64
	ModeChanges   uint64
	Admitted      uint64
	Terminated    uint64
	Rejected      uint64
	TotalModeLatN uint64  // completed reconfigurations measured
	TotalModeLat  float64 // summed ns
	MaxModeLat    float64 // ns
}

// MeanModeChangeLatencyNS reports the average stop-to-conf-complete
// reconfiguration latency.
func (s Stats) MeanModeChangeLatencyNS() float64 {
	if s.TotalModeLatN == 0 {
		return 0
	}
	return s.TotalModeLat / float64(s.TotalModeLatN)
}

// sortApps orders an active set deterministically.
func sortApps(apps []AppRef) {
	sort.Slice(apps, func(i, j int) bool { return apps[i].Name < apps[j].Name })
}
