package admission

import (
	"fmt"
	"testing"

	"repro/internal/netcalc"
	"repro/internal/noc"
	"repro/internal/sim"
)

// testService builds a simple end-to-end service curve: the assigned
// rate after a fixed 100ns platform latency.
func testService(_ AppRef, rate float64) netcalc.Curve {
	return netcalc.RateLatency(rate, 100)
}

func TestDelayBoundCheckAccepts(t *testing.T) {
	reqs := map[string]Requirement{
		"crit": {BurstBytes: 64, DeadlineNS: 1000},
	}
	check := DelayBoundCheck(reqs, testService)
	active := []AppRef{{Name: "crit", Crit: Critical}}
	rates := map[string]float64{"crit": 0.8}
	// d = 100 + 64/0.8 = 180ns < 1000ns.
	if err := check(active, rates, active[0]); err != nil {
		t.Errorf("feasible admission rejected: %v", err)
	}
}

func TestDelayBoundCheckRejectsDeadlineViolation(t *testing.T) {
	reqs := map[string]Requirement{
		"crit": {BurstBytes: 64, DeadlineNS: 150},
	}
	check := DelayBoundCheck(reqs, testService)
	active := []AppRef{{Name: "crit"}}
	// d = 100 + 64/0.1 = 740ns > 150ns.
	if err := check(active, map[string]float64{"crit": 0.1}, AppRef{Name: "newcomer"}); err == nil {
		t.Error("deadline violation admitted")
	}
	// Zero rate is always a violation for a guaranteed app.
	if err := check(active, map[string]float64{}, AppRef{Name: "x"}); err == nil {
		t.Error("zero-rate assignment admitted")
	}
}

func TestDelayBoundCheckIgnoresBestEffort(t *testing.T) {
	check := DelayBoundCheck(map[string]Requirement{}, testService)
	active := []AppRef{{Name: "be1"}, {Name: "be2"}}
	if err := check(active, map[string]float64{}, active[1]); err != nil {
		t.Errorf("best-effort apps without requirements rejected: %v", err)
	}
}

// TestOnlineAdmissionRejection runs the full protocol: a system whose
// symmetric budget supports two guaranteed apps rejects the third,
// which would dilute everyone below the deadline.
func TestOnlineAdmissionRejection(t *testing.T) {
	eng := sim.NewEngine()
	mesh, err := noc.New(eng, noc.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(eng, mesh, noc.Coord{X: 0, Y: 0}, Symmetric{TotalBytesPerNS: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	reqs := make(map[string]Requirement)
	for i := 0; i < 3; i++ {
		// Deadline 300ns, burst 64B: needs rate >= 64/(300-100) =
		// 0.32 B/ns. Symmetric 1.0 total: mode 2 gives 0.5 (ok),
		// mode 3 gives 0.33... ok; let me tighten: deadline 260 ->
		// needs rate >= 0.4: mode 2 ok (0.5), mode 3 fails (0.333).
		reqs[fmt.Sprintf("app%d", i)] = Requirement{BurstBytes: 64, DeadlineNS: 260}
	}
	sys.SetAdmissionCheck(DelayBoundCheck(reqs, testService))

	clients := make([]*Client, 3)
	for i := 0; i < 3; i++ {
		cl, err := sys.Client(noc.Coord{X: 1 + i, Y: 1})
		if err != nil {
			t.Fatal(err)
		}
		if err := cl.Register(fmt.Sprintf("app%d", i), Critical); err != nil {
			t.Fatal(err)
		}
		clients[i] = cl
	}
	for i := 0; i < 3; i++ {
		i := i
		eng.At(sim.Duration(i)*sim.Microsecond, func() {
			_ = clients[i].Submit(fmt.Sprintf("app%d", i),
				&noc.Packet{Dst: noc.Coord{X: 3, Y: 3}, Bytes: 64})
		})
	}
	eng.Run()

	if !clients[0].AppActive("app0") || !clients[1].AppActive("app1") {
		t.Fatal("first two apps should be admitted")
	}
	if clients[2].AppActive("app2") {
		t.Fatal("third app admitted despite violating the analytic bound")
	}
	if !clients[2].AppRejected("app2") {
		t.Error("rejection not recorded at the client")
	}
	if sys.RM().Mode() != 2 {
		t.Errorf("mode = %d, want 2", sys.RM().Mode())
	}
	if got := sys.Stats().Rejected; got != 1 {
		t.Errorf("rejected = %d, want 1", got)
	}
}

// TestRejectedAppCanRetryAfterCapacityFrees is the dynamic half: after
// a guaranteed app terminates, the previously rejected one is admitted
// on retry.
func TestRejectedAppCanRetryAfterCapacityFrees(t *testing.T) {
	eng := sim.NewEngine()
	mesh, err := noc.New(eng, noc.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(eng, mesh, noc.Coord{X: 0, Y: 0}, Symmetric{TotalBytesPerNS: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	reqs := map[string]Requirement{
		"a": {BurstBytes: 64, DeadlineNS: 260},
		"b": {BurstBytes: 64, DeadlineNS: 260},
		"c": {BurstBytes: 64, DeadlineNS: 260},
	}
	sys.SetAdmissionCheck(DelayBoundCheck(reqs, testService))

	mk := func(name string, x int) *Client {
		cl, err := sys.Client(noc.Coord{X: x, Y: 2})
		if err != nil {
			t.Fatal(err)
		}
		if err := cl.Register(name, Critical); err != nil {
			t.Fatal(err)
		}
		return cl
	}
	ca, cb, cc := mk("a", 0), mk("b", 1), mk("c", 2)
	submit := func(cl *Client, name string) {
		_ = cl.Submit(name, &noc.Packet{Dst: noc.Coord{X: 3, Y: 3}, Bytes: 64})
	}
	submit(ca, "a")
	submit(cb, "b")
	eng.Run()
	submit(cc, "c") // mode 3 would violate: rejected
	eng.Run()
	if !cc.AppRejected("c") {
		t.Fatal("c should have been rejected at mode 3")
	}
	if err := ca.Terminate("a"); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	submit(cc, "c") // retry at mode 2: fits now
	eng.Run()
	if !cc.AppActive("c") {
		t.Fatal("c not admitted after capacity freed")
	}
	if cc.AppRejected("c") {
		t.Error("stale rejection flag after successful retry")
	}
}
