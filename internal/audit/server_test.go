package audit

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"

	"repro/internal/sim"
	"repro/internal/telemetry"
)

func get(t *testing.T, url string) (int, string, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, string(body), resp.Header.Get("Content-Type")
}

func TestServerEndpoints(t *testing.T) {
	s, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	base := "http://" + s.Addr()

	// Before any publish: healthz up, metrics a valid empty exposition,
	// progress an empty object.
	if code, body, _ := get(t, base+"/healthz"); code != 200 || body != "ok\n" {
		t.Fatalf("healthz = %d %q", code, body)
	}
	if code, body, ct := get(t, base+"/metrics"); code != 200 || body != "# EOF\n" || ct != telemetry.OpenMetricsContentType {
		t.Fatalf("empty metrics = %d %q %q", code, body, ct)
	}
	if code, body, _ := get(t, base+"/progress"); code != 200 || body != "{}\n" {
		t.Fatalf("empty progress = %d %q", code, body)
	}

	// Publish a real scrape body and a progress snapshot.
	reg := telemetry.NewRegistry()
	reg.Counter("sim.events").Add(42)
	if err := s.PublishMetrics(reg.WriteOpenMetrics); err != nil {
		t.Fatal(err)
	}
	if err := s.PublishProgress(map[string]int{"done": 3, "total": 8}); err != nil {
		t.Fatal(err)
	}

	if _, body, _ := get(t, base+"/metrics"); !strings.Contains(body, "sim_events_total 42") || !strings.HasSuffix(body, "# EOF\n") {
		t.Fatalf("metrics body = %q", body)
	}
	if _, body, ct := get(t, base+"/progress"); !strings.Contains(body, `"done": 3`) || ct != "application/json" {
		t.Fatalf("progress = %q %q", body, ct)
	}

	// pprof index answers.
	if code, _, _ := get(t, base+"/debug/pprof/"); code != 200 {
		t.Fatalf("pprof index = %d", code)
	}
}

// TestConcurrentScrapesDuringObserve is the race test the issue asks
// for: many /metrics scrapes while the "simulation" goroutine keeps
// observing transactions and republishing. Run under -race.
func TestConcurrentScrapesDuringObserve(t *testing.T) {
	s, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	a := New(Config{})
	aa := a.Register("crit", Bound{DelayBoundNS: 50})
	reg := telemetry.NewRegistry()
	url := "http://" + s.Addr() + "/metrics"

	var wg sync.WaitGroup
	stop := make(chan struct{})

	// The simulation thread: observe + publish in a tight loop.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 500; i++ {
			var b Breakdown
			b[StageMemGuard] = sim.NS(float64(i % 90))
			b[StageDRAMService] = sim.NS(15)
			aa.Observe(sim.Time(i), b)
			if i%25 == 0 {
				a.PublishMetrics(reg)
				if err := s.PublishMetrics(reg.WriteOpenMetrics); err != nil {
					t.Error(err)
					return
				}
			}
		}
		close(stop)
	}()

	// Four concurrent scrapers hammering the endpoint until the run ends.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(url)
				if err != nil {
					t.Error(err)
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if !strings.HasSuffix(string(body), "# EOF\n") {
					t.Errorf("truncated scrape: %q", string(body))
					return
				}
			}
		}()
	}
	wg.Wait()

	if a.TotalViolations() == 0 {
		t.Fatal("expected violations from the synthetic load")
	}
}

func TestServerCloseIdempotentScrapeAfterCloseFails(t *testing.T) {
	s, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := s.Addr()
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if _, err := http.Get(fmt.Sprintf("http://%s/healthz", addr)); err == nil {
		t.Fatal("scrape after close should fail")
	}
}
