package audit

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"

	"repro/internal/sim"
	"repro/internal/telemetry"
)

func get(t *testing.T, url string) (int, string, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, string(body), resp.Header.Get("Content-Type")
}

func TestServerEndpoints(t *testing.T) {
	s, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	base := "http://" + s.Addr()

	// Before any publish: healthz up, metrics a valid empty exposition,
	// progress an empty object.
	if code, body, _ := get(t, base+"/healthz"); code != 200 || body != "ok\n" {
		t.Fatalf("healthz = %d %q", code, body)
	}
	if code, body, ct := get(t, base+"/metrics"); code != 200 || body != "# EOF\n" || ct != telemetry.OpenMetricsContentType {
		t.Fatalf("empty metrics = %d %q %q", code, body, ct)
	}
	if code, body, _ := get(t, base+"/progress"); code != 200 || body != "{}\n" {
		t.Fatalf("empty progress = %d %q", code, body)
	}
	if code, body, ct := get(t, base+"/slo"); code != 200 || body != "[]\n" || ct != "application/json" {
		t.Fatalf("empty slo = %d %q %q", code, body, ct)
	}

	// Publish a real scrape body and a progress snapshot.
	reg := telemetry.NewRegistry()
	reg.Counter("sim.events").Add(42)
	if err := s.PublishMetrics(reg.WriteOpenMetrics); err != nil {
		t.Fatal(err)
	}
	if err := s.PublishProgress(map[string]int{"done": 3, "total": 8}); err != nil {
		t.Fatal(err)
	}

	if _, body, _ := get(t, base+"/metrics"); !strings.Contains(body, "sim_events_total 42") || !strings.HasSuffix(body, "# EOF\n") {
		t.Fatalf("metrics body = %q", body)
	}
	if _, body, ct := get(t, base+"/progress"); !strings.Contains(body, `"done": 3`) || ct != "application/json" {
		t.Fatalf("progress = %q %q", body, ct)
	}

	// pprof index answers.
	if code, _, _ := get(t, base+"/debug/pprof/"); code != 200 {
		t.Fatalf("pprof index = %d", code)
	}

	// SLO statuses serve as published.
	if err := s.PublishSLO([]map[string]any{{"name": "bound-conformance", "met": true}}); err != nil {
		t.Fatal(err)
	}
	if _, body, ct := get(t, base+"/slo"); !strings.Contains(body, `"bound-conformance"`) || ct != "application/json" {
		t.Fatalf("slo = %q %q", body, ct)
	}
}

// TestServerProgressAndHealthzContract pins the handlers' HTTP
// contract: status codes, content types, and a decodable JSON shape
// for /progress — the schema socsim and sweep publish and external
// watchers poll.
func TestServerProgressAndHealthzContract(t *testing.T) {
	s, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	base := "http://" + s.Addr()

	code, body, ct := get(t, base+"/healthz")
	if code != http.StatusOK || body != "ok\n" || !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("healthz = %d %q %q", code, body, ct)
	}

	published := struct {
		SimTimeNS  float64 `json:"sim_time_ns"`
		HorizonNS  float64 `json:"horizon_ns"`
		Violations uint64  `json:"violations"`
	}{1.5e6, 4e6, 3}
	if err := s.PublishProgress(published); err != nil {
		t.Fatal(err)
	}
	code, body, ct = get(t, base+"/progress")
	if code != http.StatusOK || ct != "application/json" {
		t.Fatalf("progress = %d %q", code, ct)
	}
	var got struct {
		SimTimeNS  float64 `json:"sim_time_ns"`
		HorizonNS  float64 `json:"horizon_ns"`
		Violations uint64  `json:"violations"`
	}
	if err := json.Unmarshal([]byte(body), &got); err != nil {
		t.Fatalf("progress body is not JSON: %v\n%s", err, body)
	}
	if got != published {
		t.Fatalf("progress round-trip = %+v, want %+v", got, published)
	}

	// Unencodable progress is rejected, and the previous payload stays.
	if err := s.PublishProgress(map[string]any{"bad": func() {}}); err == nil {
		t.Fatal("unencodable progress accepted")
	}
	if _, body2, _ := get(t, base+"/progress"); body2 != body {
		t.Fatalf("failed publish replaced the payload: %q", body2)
	}
}

// TestServerServesFinalSnapshotAfterHalt drives a simulation that
// publishes while running and halts mid-horizon: the endpoint must
// keep serving the final published snapshot — the evidence of where
// the run stopped — not go empty or stale-race with the dead engine.
func TestServerServesFinalSnapshotAfterHalt(t *testing.T) {
	s, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	base := "http://" + s.Addr()

	eng := sim.NewEngine()
	reg := telemetry.NewRegistry()
	ticks := reg.Counter("sim.ticks")
	publish := func() {
		if err := s.PublishMetrics(reg.WriteOpenMetrics); err != nil {
			t.Error(err)
		}
		if err := s.PublishProgress(map[string]float64{"sim_time_ns": eng.Now().Nanoseconds()}); err != nil {
			t.Error(err)
		}
	}
	eng.Every(sim.Microsecond, func() {
		ticks.Inc()
		publish()
	})
	eng.At(10*sim.Microsecond+sim.Nanosecond, func() { eng.Halt() })
	eng.RunUntil(100 * sim.Microsecond)

	if !eng.Halted() {
		t.Fatal("engine did not halt")
	}
	if eng.Now().Nanoseconds() >= 100*1000 {
		t.Fatalf("halt did not cut the horizon: now=%v", eng.Now())
	}
	// The last published snapshot survives the halt, scrape after
	// scrape.
	for i := 0; i < 3; i++ {
		code, body, _ := get(t, base+"/metrics")
		if code != http.StatusOK || !strings.Contains(body, "sim_ticks_total 10") {
			t.Fatalf("post-halt metrics = %d %q", code, body)
		}
	}
	_, body, _ := get(t, base+"/progress")
	var prog map[string]float64
	if err := json.Unmarshal([]byte(body), &prog); err != nil {
		t.Fatalf("post-halt progress: %v", err)
	}
	if prog["sim_time_ns"] != 10_000 {
		t.Fatalf("post-halt progress = %v, want the halt-time snapshot", prog)
	}
	if code, body, _ := get(t, base+"/healthz"); code != http.StatusOK || body != "ok\n" {
		t.Fatalf("healthz after halt = %d %q", code, body)
	}
}

// TestConcurrentScrapesDuringObserve is the race test the issue asks
// for: many /metrics scrapes while the "simulation" goroutine keeps
// observing transactions and republishing. Run under -race.
func TestConcurrentScrapesDuringObserve(t *testing.T) {
	s, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	a := New(Config{})
	aa := a.Register("crit", Bound{DelayBoundNS: 50})
	reg := telemetry.NewRegistry()
	url := "http://" + s.Addr() + "/metrics"

	var wg sync.WaitGroup
	stop := make(chan struct{})

	// The simulation thread: observe + publish in a tight loop.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 500; i++ {
			var b Breakdown
			b[StageMemGuard] = sim.NS(float64(i % 90))
			b[StageDRAMService] = sim.NS(15)
			aa.Observe(sim.Time(i), b)
			if i%25 == 0 {
				a.PublishMetrics(reg)
				if err := s.PublishMetrics(reg.WriteOpenMetrics); err != nil {
					t.Error(err)
					return
				}
			}
		}
		close(stop)
	}()

	// Four concurrent scrapers hammering the endpoint until the run ends.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(url)
				if err != nil {
					t.Error(err)
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if !strings.HasSuffix(string(body), "# EOF\n") {
					t.Errorf("truncated scrape: %q", string(body))
					return
				}
			}
		}()
	}
	wg.Wait()

	if a.TotalViolations() == 0 {
		t.Fatal("expected violations from the synthetic load")
	}
}

func TestServerCloseIdempotentScrapeAfterCloseFails(t *testing.T) {
	s, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := s.Addr()
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if _, err := http.Get(fmt.Sprintf("http://%s/healthz", addr)); err == nil {
		t.Fatal("scrape after close should fail")
	}
}
