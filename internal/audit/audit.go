// Package audit is the runtime predictability auditor: the piece that
// closes the paper's identification → monitoring → control loop
// (Sec. V, Figs 6–7) in software. The analytic worst-case delay
// bounds of Sec. IV-A are only useful if the running system can be
// checked against them while it runs, so the auditor
//
//   - captures, at application registration, each app's analytic
//     Network Calculus delay bound and budgeted bandwidth (bound
//     conformance),
//   - folds every completed transaction into online max / percentile
//     latency state and emits a structured violation event the moment
//     an observation exceeds its bound — not at run end,
//   - attributes each transaction's latency to the pipeline stage
//     where the time was spent (L3 hit service, MemGuard throttle
//     stall, NoC request traversal, memory-channel arbitration, DRAM
//     bank queueing, DRAM service, NoC response traversal), aggregated
//     per app into attribution histograms so a violation report says
//     *where* the time went.
//
// Observations are pushed from the simulation goroutine; snapshots may
// be pulled concurrently from an exporter goroutine (see Server). All
// mutable state is mutex-guarded with locks never held across
// callbacks, and the observe path allocates nothing after
// registration, preserving the repository's hot-path guarantees.
package audit

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/sim"
	"repro/internal/telemetry"
)

// Stage indexes one leg of a transaction's end-to-end latency.
type Stage int

// Attribution stages, in pipeline order.
const (
	// StageL3Hit is the shared-cache hit service time (hits only).
	StageL3Hit Stage = iota
	// StageMemGuard is the regulator's throttle stall before the miss
	// may leave the core.
	StageMemGuard
	// StageNoCRequest is the request's NI-submission-to-ejection time
	// across the mesh (includes injection shaping).
	StageNoCRequest
	// StageChannel is the wait at the memory node: MPAM bandwidth
	// arbitration plus controller-queue backpressure retries.
	StageChannel
	// StageDRAMQueue is the bank-queue wait inside the controller
	// (behind other requests, refreshes, and write drains).
	StageDRAMQueue
	// StageDRAMService is the request's own device occupancy.
	StageDRAMService
	// StageNoCResponse is the read data's return traversal.
	StageNoCResponse
	// NumStages sizes Breakdown.
	NumStages
)

var stageNames = [NumStages]string{
	"l3_hit", "memguard_stall", "noc_request", "channel_wait",
	"dram_queue", "dram_service", "noc_response",
}

// String returns the stage's snake_case name (used in metric keys).
func (s Stage) String() string {
	if s < 0 || s >= NumStages {
		return fmt.Sprintf("stage(%d)", int(s))
	}
	return stageNames[s]
}

// Breakdown decomposes one transaction's latency by stage. The stages
// partition the observation interval exactly: Total() equals the
// observed end-to-end latency to the picosecond.
type Breakdown [NumStages]sim.Duration

// Total sums the stages.
func (b Breakdown) Total() sim.Duration {
	var t sim.Duration
	for _, d := range b {
		t += d
	}
	return t
}

// Bound is the per-application contract captured at registration.
type Bound struct {
	// DelayBoundNS is the analytic NC delay bound on one transaction's
	// end-to-end latency; +Inf (or 0) disables conformance checking
	// for the app while attribution still accumulates.
	DelayBoundNS float64
	// BudgetBytesPerPeriod is the app's MemGuard bandwidth budget
	// (0 = unregulated), recorded so violation reports carry the
	// control settings in force.
	BudgetBytesPerPeriod int
}

// Violation is the structured event emitted when an observation
// exceeds its app's bound.
type Violation struct {
	// Seq is the auditor-wide violation ordinal (1-based).
	Seq uint64 `json:"seq"`
	// At is the sim time the violating transaction completed.
	At sim.Time `json:"at_ps"`
	// App names the violating application.
	App string `json:"app"`
	// ObservedNS and BoundNS are the offending latency and its bound.
	ObservedNS float64 `json:"observed_ns"`
	BoundNS    float64 `json:"bound_ns"`
	// HeadroomNS = BoundNS - ObservedNS (negative in a violation).
	HeadroomNS float64 `json:"headroom_ns"`
	// Breakdown is the per-stage attribution of the observation.
	Breakdown Breakdown `json:"breakdown_ps"`
}

// String renders the violation for logs.
func (v Violation) String() string {
	return fmt.Sprintf("violation #%d t=%v app=%s observed=%.1fns bound=%.1fns headroom=%.1fns worst-stage=%s",
		v.Seq, v.At, v.App, v.ObservedNS, v.BoundNS, v.HeadroomNS, v.worstStage())
}

// worstStage names the stage holding the largest share of the
// violating observation.
func (v Violation) worstStage() Stage {
	worst := Stage(0)
	for s := Stage(1); s < NumStages; s++ {
		if v.Breakdown[s] > v.Breakdown[worst] {
			worst = s
		}
	}
	return worst
}

// Config parameterizes an Auditor.
type Config struct {
	// OnViolation, when non-nil, runs synchronously (on the observing
	// goroutine, outside all auditor locks) for every violation — the
	// "emit the moment it happens" hook CLIs print from.
	OnViolation func(Violation)
	// MaxViolations bounds the retained violation events (the
	// counters keep counting past it); <= 0 defaults to 128.
	MaxViolations int
}

// Auditor audits a set of registered applications.
type Auditor struct {
	cfg Config

	mu         sync.Mutex
	apps       map[string]*AppAuditor
	order      []string
	violations []Violation
	seq        uint64
}

// New builds an empty auditor.
func New(cfg Config) *Auditor {
	if cfg.MaxViolations <= 0 {
		cfg.MaxViolations = 128
	}
	return &Auditor{cfg: cfg, apps: make(map[string]*AppAuditor)}
}

// Register captures an app's contract and returns its per-app handle
// (idempotent per name: re-registering replaces the bound but keeps
// accumulated state). The handle's Observe is the auditor's hot path.
func (a *Auditor) Register(app string, b Bound) *AppAuditor {
	a.mu.Lock()
	defer a.mu.Unlock()
	aa := a.apps[app]
	if aa == nil {
		aa = &AppAuditor{au: a, name: app, hist: telemetry.NewHistogram()}
		for s := range aa.stageHists {
			aa.stageHists[s] = telemetry.NewHistogram()
		}
		a.apps[app] = aa
		a.order = append(a.order, app)
	}
	aa.mu.Lock()
	aa.bound = b
	aa.boundPS = boundPS(b.DelayBoundNS)
	aa.mu.Unlock()
	return aa
}

// boundPS converts a ns bound to the picosecond compare value, with
// non-positive and infinite bounds disabling the check.
func boundPS(ns float64) sim.Duration {
	if ns <= 0 || math.IsInf(ns, 1) || ns >= float64(sim.Forever)/1000 {
		return sim.Forever
	}
	return sim.NS(ns)
}

// App returns a registered app's handle, nil if unknown.
func (a *Auditor) App(name string) *AppAuditor {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.apps[name]
}

// Apps returns the registered app names in registration order.
func (a *Auditor) Apps() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]string(nil), a.order...)
}

// Violations returns a copy of the retained violation events, in
// emission order.
func (a *Auditor) Violations() []Violation {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]Violation(nil), a.violations...)
}

// TotalViolations returns the number of violations emitted (including
// any beyond the retention cap).
func (a *Auditor) TotalViolations() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.seq
}

// record assigns the violation its ordinal and retains it.
func (a *Auditor) record(v *Violation) {
	a.mu.Lock()
	a.seq++
	v.Seq = a.seq
	if len(a.violations) < a.cfg.MaxViolations {
		a.violations = append(a.violations, *v)
	}
	a.mu.Unlock()
}

// StageStat aggregates one attribution stage for one app.
type StageStat struct {
	Stage   Stage        `json:"stage"`
	TotalPS sim.Duration `json:"total_ps"`
	MaxPS   sim.Duration `json:"max_ps"`
	Share   float64      `json:"share"` // of the app's total observed latency
}

// AppSnapshot is a point-in-time copy of one app's audit state, safe
// to read while the simulation keeps observing.
type AppSnapshot struct {
	App        string               `json:"app"`
	Bound      Bound                `json:"bound"`
	Observed   uint64               `json:"observed"`
	Violations uint64               `json:"violations"`
	MaxNS      float64              `json:"max_ns"`
	P95NS      float64              `json:"p95_ns"`
	HeadroomNS float64              `json:"headroom_ns"` // bound - observed max; +Inf when unbounded
	Stages     [NumStages]StageStat `json:"stages"`
}

// AppAuditor accumulates one application's conformance and
// attribution state. Observe is safe to call from the simulation
// goroutine while Snapshot is called from an exporter goroutine.
type AppAuditor struct {
	au   *Auditor
	name string

	mu         sync.Mutex
	bound      Bound
	boundPS    sim.Duration
	observed   uint64
	violations uint64
	maxLat     sim.Duration
	stageSum   [NumStages]sim.Duration
	stageMax   [NumStages]sim.Duration

	hist       *telemetry.Histogram
	stageHists [NumStages]*telemetry.Histogram
}

// Name returns the app's name.
func (aa *AppAuditor) Name() string { return aa.name }

// Bound returns the registered contract.
func (aa *AppAuditor) Bound() Bound {
	aa.mu.Lock()
	defer aa.mu.Unlock()
	return aa.bound
}

// Observe folds one completed transaction into the app's state: online
// max and histogram updates, per-stage attribution, and — when the
// total exceeds the registered bound — an immediate violation event.
// Allocation-free in steady state.
func (aa *AppAuditor) Observe(at sim.Time, b Breakdown) {
	total := b.Total()

	aa.mu.Lock()
	aa.observed++
	if total > aa.maxLat {
		aa.maxLat = total
	}
	for s := Stage(0); s < NumStages; s++ {
		aa.stageSum[s] += b[s]
		if b[s] > aa.stageMax[s] {
			aa.stageMax[s] = b[s]
		}
	}
	violated := total > aa.boundPS
	var v Violation
	if violated {
		aa.violations++
		v = Violation{
			At:         at,
			App:        aa.name,
			ObservedNS: total.Nanoseconds(),
			BoundNS:    aa.bound.DelayBoundNS,
			HeadroomNS: aa.bound.DelayBoundNS - total.Nanoseconds(),
			Breakdown:  b,
		}
	}
	aa.mu.Unlock()

	// Histograms carry their own locks; keep them outside aa.mu.
	aa.hist.Record(int64(total))
	for s := Stage(0); s < NumStages; s++ {
		if b[s] != 0 {
			aa.stageHists[s].Record(int64(b[s]))
		}
	}

	if violated {
		aa.au.record(&v)
		if f := aa.au.cfg.OnViolation; f != nil {
			f(v)
		}
	}
}

// Violations returns the app's violation count.
func (aa *AppAuditor) Violations() uint64 {
	aa.mu.Lock()
	defer aa.mu.Unlock()
	return aa.violations
}

// LatencyHistogram exposes the app's end-to-end latency histogram
// (picoseconds) for registry adoption.
func (aa *AppAuditor) LatencyHistogram() *telemetry.Histogram { return aa.hist }

// StageHistogram exposes one stage's attribution histogram.
func (aa *AppAuditor) StageHistogram(s Stage) *telemetry.Histogram {
	if s < 0 || s >= NumStages {
		return nil
	}
	return aa.stageHists[s]
}

// Snapshot copies the app's current audit state.
func (aa *AppAuditor) Snapshot() AppSnapshot {
	aa.mu.Lock()
	snap := AppSnapshot{
		App:        aa.name,
		Bound:      aa.bound,
		Observed:   aa.observed,
		Violations: aa.violations,
		MaxNS:      aa.maxLat.Nanoseconds(),
	}
	var grand sim.Duration
	for s := Stage(0); s < NumStages; s++ {
		snap.Stages[s] = StageStat{Stage: s, TotalPS: aa.stageSum[s], MaxPS: aa.stageMax[s]}
		grand += aa.stageSum[s]
	}
	if grand > 0 {
		for s := range snap.Stages {
			snap.Stages[s].Share = float64(snap.Stages[s].TotalPS) / float64(grand)
		}
	}
	if aa.boundPS == sim.Forever {
		snap.HeadroomNS = math.Inf(1)
	} else {
		snap.HeadroomNS = aa.bound.DelayBoundNS - snap.MaxNS
	}
	aa.mu.Unlock()
	snap.P95NS = sim.Duration(aa.hist.Quantile(0.95)).Nanoseconds()
	return snap
}

// Snapshot copies every app's state, in registration order.
func (a *Auditor) Snapshot() []AppSnapshot {
	a.mu.Lock()
	apps := make([]*AppAuditor, 0, len(a.order))
	for _, name := range a.order {
		apps = append(apps, a.apps[name])
	}
	a.mu.Unlock()
	out := make([]AppSnapshot, len(apps))
	for i, aa := range apps {
		out[i] = aa.Snapshot()
	}
	return out
}

// PublishMetrics mirrors the auditor's state into a telemetry
// registry under "audit.*" keys: per-app violation counts, bound and
// headroom gauges, and the adopted latency/attribution histograms.
// Idempotent; call at snapshot/export time.
func (a *Auditor) PublishMetrics(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	snaps := a.Snapshot()
	var total uint64
	for _, s := range snaps {
		prefix := "audit." + s.App + "."
		reg.Gauge(prefix + "observed").Set(float64(s.Observed))
		reg.Gauge(prefix + "violations").Set(float64(s.Violations))
		if !math.IsInf(s.HeadroomNS, 1) {
			reg.Gauge(prefix + "bound_ns").Set(s.Bound.DelayBoundNS)
			reg.Gauge(prefix + "headroom_ns").Set(s.HeadroomNS)
		}
		reg.Gauge(prefix + "max_ns").Set(s.MaxNS)
		if s.Bound.BudgetBytesPerPeriod > 0 {
			reg.Gauge(prefix + "budget_bytes_per_period").Set(float64(s.Bound.BudgetBytesPerPeriod))
		}
		aa := a.App(s.App)
		reg.RegisterHistogram(prefix+"latency_ps", aa.LatencyHistogram())
		for st := Stage(0); st < NumStages; st++ {
			if h := aa.StageHistogram(st); h.Count() > 0 {
				reg.RegisterHistogram(prefix+"stage."+st.String()+"_ps", h)
			}
		}
		total += s.Violations
	}
	reg.Gauge("audit.violations_total").Set(float64(total))
}
