package audit

import (
	"math"
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/telemetry"
)

func mkBreakdown(stall, noc, queue, svc sim.Duration) Breakdown {
	var b Breakdown
	b[StageMemGuard] = stall
	b[StageNoCRequest] = noc
	b[StageDRAMQueue] = queue
	b[StageDRAMService] = svc
	return b
}

func TestBreakdownTotalPartitions(t *testing.T) {
	b := mkBreakdown(10, 20, 30, 40)
	if got := b.Total(); got != 100 {
		t.Fatalf("Total = %v, want 100", got)
	}
}

func TestStageString(t *testing.T) {
	if StageDRAMQueue.String() != "dram_queue" {
		t.Errorf("StageDRAMQueue = %q", StageDRAMQueue.String())
	}
	if s := Stage(99).String(); !strings.Contains(s, "99") {
		t.Errorf("out-of-range stage = %q", s)
	}
}

func TestObserveBelowBoundNoViolation(t *testing.T) {
	a := New(Config{})
	aa := a.Register("crit", Bound{DelayBoundNS: 100})
	aa.Observe(1000, mkBreakdown(0, sim.NS(40), 0, sim.NS(50)))
	if n := a.TotalViolations(); n != 0 {
		t.Fatalf("violations = %d, want 0", n)
	}
	snap := aa.Snapshot()
	if snap.Observed != 1 || snap.MaxNS != 90 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if snap.HeadroomNS != 10 {
		t.Fatalf("headroom = %v, want 10", snap.HeadroomNS)
	}
}

func TestObserveAboveBoundEmitsViolation(t *testing.T) {
	var got []Violation
	a := New(Config{OnViolation: func(v Violation) { got = append(got, v) }})
	aa := a.Register("crit", Bound{DelayBoundNS: 100, BudgetBytesPerPeriod: 4096})

	b := mkBreakdown(sim.NS(60), sim.NS(30), sim.NS(20), sim.NS(10))
	aa.Observe(sim.Time(5000), b)

	if len(got) != 1 {
		t.Fatalf("callback fired %d times, want 1", len(got))
	}
	v := got[0]
	if v.Seq != 1 || v.App != "crit" || v.At != 5000 {
		t.Fatalf("violation = %+v", v)
	}
	if v.ObservedNS != 120 || v.BoundNS != 100 || v.HeadroomNS != -20 {
		t.Fatalf("violation numbers = %+v", v)
	}
	// Attribution must sum exactly to the observation.
	if v.Breakdown.Total() != b.Total() {
		t.Fatalf("breakdown total %v != observed %v", v.Breakdown.Total(), b.Total())
	}
	if v.worstStage() != StageMemGuard {
		t.Fatalf("worst stage = %v", v.worstStage())
	}
	if !strings.Contains(v.String(), "memguard_stall") {
		t.Errorf("String() = %q, want worst stage named", v.String())
	}
	if vs := a.Violations(); len(vs) != 1 || vs[0].Seq != 1 {
		t.Fatalf("retained = %+v", vs)
	}
}

func TestUnboundedAppNeverViolates(t *testing.T) {
	a := New(Config{})
	for _, boundNS := range []float64{0, math.Inf(1)} {
		aa := a.Register("hog", Bound{DelayBoundNS: boundNS})
		aa.Observe(1, mkBreakdown(sim.Second, sim.Second, sim.Second, sim.Second))
		if n := aa.Violations(); n != 0 {
			t.Fatalf("bound %v: violations = %d, want 0", boundNS, n)
		}
	}
	snap := a.App("hog").Snapshot()
	if !math.IsInf(snap.HeadroomNS, 1) {
		t.Fatalf("unbounded headroom = %v, want +Inf", snap.HeadroomNS)
	}
}

func TestRetentionCapKeepsCounting(t *testing.T) {
	a := New(Config{MaxViolations: 2})
	aa := a.Register("crit", Bound{DelayBoundNS: 1})
	for i := 0; i < 5; i++ {
		aa.Observe(sim.Time(i), mkBreakdown(sim.NS(10), 0, 0, 0))
	}
	if n := a.TotalViolations(); n != 5 {
		t.Fatalf("total = %d, want 5", n)
	}
	if vs := a.Violations(); len(vs) != 2 || vs[1].Seq != 2 {
		t.Fatalf("retained = %+v", vs)
	}
}

func TestReRegisterReplacesBoundKeepsState(t *testing.T) {
	a := New(Config{})
	aa := a.Register("crit", Bound{DelayBoundNS: 1})
	aa.Observe(0, mkBreakdown(sim.NS(10), 0, 0, 0))
	aa2 := a.Register("crit", Bound{DelayBoundNS: 1000})
	if aa2 != aa {
		t.Fatal("re-register returned a different handle")
	}
	aa.Observe(1, mkBreakdown(sim.NS(10), 0, 0, 0))
	if n := aa.Violations(); n != 1 {
		t.Fatalf("violations = %d, want 1 (second observe under new bound)", n)
	}
	if got := aa.Snapshot().Observed; got != 2 {
		t.Fatalf("observed = %d, want 2", got)
	}
}

func TestSnapshotSharesSumToOne(t *testing.T) {
	a := New(Config{})
	aa := a.Register("crit", Bound{DelayBoundNS: math.Inf(1)})
	aa.Observe(0, mkBreakdown(sim.NS(25), sim.NS(25), sim.NS(25), sim.NS(25)))
	aa.Observe(1, mkBreakdown(sim.NS(100), 0, 0, 0))
	snap := aa.Snapshot()
	var sum float64
	for _, st := range snap.Stages {
		sum += st.Share
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("shares sum to %v, want 1", sum)
	}
	if snap.Stages[StageMemGuard].MaxPS != sim.NS(100) {
		t.Fatalf("memguard max = %v", snap.Stages[StageMemGuard].MaxPS)
	}
}

func TestPublishMetrics(t *testing.T) {
	a := New(Config{})
	aa := a.Register("crit", Bound{DelayBoundNS: 100, BudgetBytesPerPeriod: 4096})
	a.Register("hog0", Bound{})
	aa.Observe(0, mkBreakdown(sim.NS(60), sim.NS(30), sim.NS(20), sim.NS(10)))

	reg := telemetry.NewRegistry()
	a.PublishMetrics(reg)

	var sb strings.Builder
	if err := reg.WriteOpenMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"audit_crit_violations 1",
		"audit_crit_bound_ns 100",
		"audit_crit_headroom_ns -20",
		"audit_crit_budget_bytes_per_period 4096",
		"audit_crit_latency_ps_count 1",
		"audit_crit_stage_memguard_stall_ps",
		"audit_violations_total 1",
		"audit_hog0_observed 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
	if strings.Contains(out, "audit_hog0_bound_ns") {
		t.Error("unbounded app should not export a bound gauge")
	}
}

func TestAppsOrder(t *testing.T) {
	a := New(Config{})
	a.Register("crit", Bound{})
	a.Register("hog1", Bound{})
	a.Register("hog0", Bound{})
	got := a.Apps()
	if len(got) != 3 || got[0] != "crit" || got[1] != "hog1" || got[2] != "hog0" {
		t.Fatalf("Apps = %v, want registration order", got)
	}
}
