package audit

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// Server is the auditor's live export endpoint: an optional net/http
// listener serving an OpenMetrics scrape (/metrics), a liveness probe
// (/healthz), a JSON progress snapshot (/progress), a JSON SLO status
// report (/slo, fed by the cross-run observability plane), and the
// standard pprof handlers (/debug/pprof/*) for profiling a long sweep
// in flight.
//
// The simulation goroutine stays allocation-free and lock-light: it
// renders snapshots at times of its own choosing and publishes the
// finished bytes with PublishMetrics/PublishProgress; HTTP handlers
// only ever copy the latest published buffer under a short mutex.
// Scrapes therefore never touch live simulation state, and a slow or
// hostile scraper cannot stall the simulation.
type Server struct {
	ln  net.Listener
	srv *http.Server
	mux *http.ServeMux

	mu       sync.Mutex
	metrics  []byte
	progress []byte
	slo      []byte

	done chan struct{}
	err  error
}

// NewServer starts a live export endpoint on addr (e.g. ":9091" or
// "127.0.0.1:0"). The returned server is already listening; Addr
// reports the bound address (useful with port 0).
func NewServer(addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("audit: listen %s: %w", addr, err)
	}
	s := &Server{ln: ln, done: make(chan struct{})}

	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/progress", s.handleProgress)
	mux.HandleFunc("/slo", s.handleSLO)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	s.mux = mux
	s.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() {
		err := s.srv.Serve(ln)
		if err != nil && err != http.ErrServerClosed {
			s.mu.Lock()
			s.err = err
			s.mu.Unlock()
		}
		close(s.done)
	}()
	return s, nil
}

// Addr returns the listener's bound address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// PublishMetrics renders a scrape body via render and installs it as
// the payload /metrics serves until the next publish. Rendering runs
// on the caller's goroutine (normally the simulation thread between
// run chunks), never under the handler lock.
func (s *Server) PublishMetrics(render func(io.Writer) error) error {
	var buf bytes.Buffer
	if err := render(&buf); err != nil {
		return err
	}
	s.mu.Lock()
	s.metrics = buf.Bytes()
	s.mu.Unlock()
	return nil
}

// PublishProgress JSON-encodes v and installs it as the /progress
// payload.
func (s *Server) PublishProgress(v any) error {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.progress = append(b, '\n')
	s.mu.Unlock()
	return nil
}

// PublishSLO JSON-encodes v (normally a []obs.SLOStatus) and installs
// it as the /slo payload. The server stays decoupled from the SLO
// engine the same way /progress stays decoupled from the sweep: it
// serves whatever the caller rendered.
func (s *Server) PublishSLO(v any) error {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.slo = append(b, '\n')
	s.mu.Unlock()
	return nil
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	body := s.metrics
	s.mu.Unlock()
	w.Header().Set("Content-Type", telemetry.OpenMetricsContentType)
	if body == nil {
		// Nothing published yet: a valid, empty exposition.
		io.WriteString(w, "# EOF\n")
		return
	}
	w.Write(body)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, "ok\n")
}

func (s *Server) handleProgress(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	body := s.progress
	s.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	if body == nil {
		io.WriteString(w, "{}\n")
		return
	}
	w.Write(body)
}

func (s *Server) handleSLO(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	body := s.slo
	s.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	if body == nil {
		io.WriteString(w, "[]\n")
		return
	}
	w.Write(body)
}

// Handle registers an additional handler on the server's mux, letting
// a service (e.g. the admission-control plane's API) share one
// listener with the observability endpoints. http.ServeMux registration
// is safe while the server is serving.
func (s *Server) Handle(pattern string, h http.Handler) {
	s.mux.Handle(pattern, h)
}

// Shutdown drains the server gracefully: the listener closes, in-flight
// requests run to completion (bounded by ctx), and the serve loop
// exits. Use this instead of Close when in-flight requests must not be
// dropped — the admission service's SIGTERM path.
func (s *Server) Shutdown(ctx context.Context) error {
	err := s.srv.Shutdown(ctx)
	<-s.done
	s.mu.Lock()
	serveErr := s.err
	s.mu.Unlock()
	if err != nil {
		return err
	}
	return serveErr
}

// Close shuts the listener down and waits for the serve loop to exit.
func (s *Server) Close() error {
	err := s.srv.Close()
	<-s.done
	s.mu.Lock()
	serveErr := s.err
	s.mu.Unlock()
	if err != nil {
		return err
	}
	return serveErr
}
