package autoconf

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/noc"
	"repro/internal/sim"
	"repro/internal/trace"
)

// scenario builds the standard contention scenario: one control loop
// plus n infotainment hogs.
func scenario(hogs int) Builder {
	return func() (*core.Platform, error) {
		p, err := core.New(core.DefaultConfig())
		if err != nil {
			return nil, err
		}
		prof, err := trace.NewProfile(trace.ControlLoop, 0, 1)
		if err != nil {
			return nil, err
		}
		if _, err := p.AddApp(core.AppConfig{
			Name: "crit", Node: noc.Coord{X: 0, Y: 0}, Cluster: 0, Scheme: 1, Profile: prof,
		}); err != nil {
			return nil, err
		}
		for i := 0; i < hogs; i++ {
			hp, err := trace.NewProfile(trace.Infotainment, uint64(i+1)<<30, uint64(i)+3)
			if err != nil {
				return nil, err
			}
			if _, err := p.AddApp(core.AppConfig{
				Name: fmt.Sprintf("hog%d", i), Node: noc.Coord{X: 1 + i%3, Y: i / 3},
				Cluster: 0, Scheme: 2, Profile: hp,
			}); err != nil {
				return nil, err
			}
		}
		return p, nil
	}
}

func TestProfileMemoryTraffic(t *testing.T) {
	prof, err := ProfileMemoryTraffic(scenario(0), "crit", 2*sim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if prof.Stats.Issued == 0 {
		t.Fatal("profiled app made no progress")
	}
	// A control loop's working set caches; its miss traffic is modest
	// but non-zero (cold misses + write traffic).
	if prof.Stats.L3Misses == 0 {
		t.Error("no misses recorded")
	}
	if prof.Rate <= 0 || prof.Burst <= 0 {
		t.Errorf("token-bucket fit = (%g, %g)", prof.Burst, prof.Rate)
	}
	if prof.Curve.IsZero() {
		t.Error("empty empirical curve")
	}
	// The curve's long-run rate should roughly match bytes/horizon.
	approx := float64(prof.Stats.BytesMoved) / (2 * sim.Millisecond).Nanoseconds()
	if prof.Curve.FinalSlope() < approx*0.5 {
		t.Errorf("curve final slope %g far below measured rate %g", prof.Curve.FinalSlope(), approx)
	}
}

func TestProfileErrors(t *testing.T) {
	if _, err := ProfileMemoryTraffic(nil, "x", sim.Millisecond); err == nil {
		t.Error("nil builder accepted")
	}
	if _, err := ProfileMemoryTraffic(scenario(0), "ghost", sim.Millisecond); err == nil {
		t.Error("unknown app accepted")
	}
	bad := func() (*core.Platform, error) { return nil, fmt.Errorf("boom") }
	if _, err := ProfileMemoryTraffic(bad, "x", sim.Millisecond); err == nil {
		t.Error("builder error swallowed")
	}
}

func TestSearchFindsWorkingConfig(t *testing.T) {
	s := &Search{Build: scenario(6), Critical: "crit", Horizon: 2 * sim.Millisecond}
	cands := []Candidate{
		{Name: "none"},
		{Name: "dsu-only", CritGroups: 2},
		{Name: "dsu+budget", CritGroups: 2, OtherBudget: 16 << 10},
		{Name: "everything", CritGroups: 3, OtherBudget: 8 << 10, OtherShapeRate: 0.1},
	}
	// First find the unmanaged baseline, then target well below it.
	base, err := s.Evaluate(cands[0], 0)
	if err != nil {
		t.Fatal(err)
	}
	target := base.Stats.P95ReadLatency.Nanoseconds() * 0.5
	best, all, ok, err := s.Run(cands, target)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("no candidate met p95 <= %.1fns; results: %+v", target, all)
	}
	if best.Candidate.Name == "none" {
		t.Error("unmanaged config cannot meet a 2x-better-than-unmanaged target")
	}
	if len(all) == 0 || !all[len(all)-1].MeetsP95 {
		t.Error("Run should stop at the first candidate meeting the target")
	}
	t.Logf("selected %q: p95 %.1fns (target %.1f, unmanaged %.1f)",
		best.Candidate.Name, best.Stats.P95ReadLatency.Nanoseconds(), target,
		base.Stats.P95ReadLatency.Nanoseconds())
}

func TestSearchNoCandidateMeets(t *testing.T) {
	s := &Search{Build: scenario(2), Critical: "crit", Horizon: sim.Millisecond}
	best, all, ok, err := s.Run([]Candidate{{Name: "none"}}, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("impossible target reported as met")
	}
	if len(all) != 1 || best.Candidate.Name != "none" {
		t.Errorf("best-of-failed selection broken: %+v", best)
	}
}

func TestSearchValidation(t *testing.T) {
	s := &Search{}
	if _, err := s.Evaluate(Candidate{}, 1); err == nil {
		t.Error("unconfigured search accepted")
	}
	s2 := &Search{Build: scenario(0), Critical: "crit", Horizon: sim.Millisecond}
	if _, err := s2.Evaluate(Candidate{CritGroups: 9}, 1); err == nil {
		t.Error("out-of-range CritGroups accepted")
	}
	if _, _, _, err := s2.Run(nil, 1); err == nil {
		t.Error("empty candidate list accepted")
	}
	s3 := &Search{Build: scenario(0), Critical: "ghost", Horizon: sim.Millisecond}
	if _, err := s3.Evaluate(Candidate{}, 1); err == nil {
		t.Error("unknown critical app accepted")
	}
}
