// Package autoconf is the "automated profiling as well as
// sophisticated configuration tooling" Section II of the paper says
// industrial practitioners need: finding a working QoS configuration
// for interacting mechanisms (cache partitioning shrinks the cache,
// which raises DRAM traffic, which shifts the bottleneck to bandwidth
// regulation...) is workload-dependent and intractable by hand.
//
// The package offers two tools on top of internal/core platforms:
//
//   - ProfileMemoryTraffic runs one application in isolation and
//     measures its cache-miss traffic as an empirical arrival curve
//     plus a fitted token bucket (internal/netcalc), ready to
//     parameterize a shaper or an admission requirement.
//
//   - Search evaluates an ordered list of candidate QoS configurations
//     (least to most restrictive) on a scenario and returns the first
//     one whose measured critical-app latency meets the target —
//     ex-post configuration synthesis, complementing the ex-ante
//     bounds of internal/netcalc.
package autoconf

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dsu"
	"repro/internal/netcalc"
	"repro/internal/sim"
)

// Builder constructs a fresh platform with all applications registered
// but not started. It is called once per evaluation so runs never
// share state.
type Builder func() (*core.Platform, error)

// Profile is the result of profiling one application in isolation.
type Profile struct {
	// Curve is the empirical arrival curve of the app's memory (miss)
	// traffic, in bytes over ns.
	Curve netcalc.Curve
	// Burst and Rate are fitted token-bucket parameters that would
	// pass the observed trace unmodified.
	Burst, Rate float64
	// Stats are the app's end-of-run counters.
	Stats core.AppStats
}

// ProfileMemoryTraffic builds the scenario, runs only the named app
// for the horizon, and returns its memory-traffic profile.
func ProfileMemoryTraffic(build Builder, app string, horizon sim.Duration) (*Profile, error) {
	if build == nil {
		return nil, fmt.Errorf("autoconf: nil builder")
	}
	p, err := build()
	if err != nil {
		return nil, err
	}
	a, err := p.App(app)
	if err != nil {
		return nil, err
	}
	rec := netcalc.NewArrivalRecorder()
	a.TapMemory(func(at sim.Time, bytes int) {
		_ = rec.Record(at, float64(bytes))
	})
	a.Start()
	p.RunFor(horizon)

	h := horizon.Nanoseconds()
	curve, err := rec.Curve([]float64{h / 1000, h / 100, h / 10, h / 2, h})
	if err != nil {
		return nil, err
	}
	prof := &Profile{Curve: curve, Stats: a.Stats()}
	if rec.Count() > 0 {
		// Rate candidates from the long-run average upward.
		avg := rec.Total() / h
		cands := []float64{avg, 1.25 * avg, 1.5 * avg, 2 * avg, 4 * avg}
		b, r, err := rec.TokenBucketFit(cands)
		if err != nil {
			return nil, err
		}
		prof.Burst, prof.Rate = b, r
	}
	return prof, nil
}

// Candidate is one QoS configuration to evaluate: any combination of
// DSU way partitioning for the critical app, MemGuard budgets and NI
// shaping for the others.
type Candidate struct {
	Name string
	// CritGroups gives the critical app's scheme ID this many private
	// L3 partition groups (0 = no cache partitioning).
	CritGroups int
	// OtherBudget is the MemGuard budget (bytes/period) applied to
	// every non-critical app (0 = none).
	OtherBudget int
	// OtherShapeRate installs NI token-bucket shapers (bytes/ns) on
	// every non-critical app's node (0 = none); the burst is 100ns
	// worth of the rate.
	OtherShapeRate float64
}

// Result is one candidate's measured outcome.
type Result struct {
	Candidate Candidate
	Stats     core.AppStats
	MeetsP95  bool
}

// Search evaluates candidates on a scenario.
type Search struct {
	Build Builder
	// Critical names the app whose latency is the objective; all other
	// registered apps are treated as regulable co-runners.
	Critical string
	// Horizon is the simulated duration per evaluation.
	Horizon sim.Duration
}

// Evaluate applies one candidate and measures the critical app.
func (s *Search) Evaluate(c Candidate, targetP95NS float64) (Result, error) {
	if s.Build == nil || s.Critical == "" || s.Horizon <= 0 {
		return Result{}, fmt.Errorf("autoconf: search needs Build, Critical and Horizon")
	}
	p, err := s.Build()
	if err != nil {
		return Result{}, err
	}
	crit, err := p.App(s.Critical)
	if err != nil {
		return Result{}, err
	}
	if c.CritGroups < 0 || c.CritGroups > dsu.NumGroups {
		return Result{}, fmt.Errorf("autoconf: CritGroups %d outside 0..%d", c.CritGroups, dsu.NumGroups)
	}
	if c.CritGroups > 0 {
		groups := make([]dsu.Group, c.CritGroups)
		for i := range groups {
			groups[i] = dsu.Group(i)
		}
		reg, err := dsu.Encode(map[dsu.SchemeID][]dsu.Group{crit.Config().Scheme: groups})
		if err != nil {
			return Result{}, err
		}
		if err := p.ProgramDSU(crit.Config().Cluster, reg); err != nil {
			return Result{}, err
		}
	}
	for _, name := range p.Apps() {
		if name == s.Critical {
			continue
		}
		other, err := p.App(name)
		if err != nil {
			return Result{}, err
		}
		if c.OtherBudget > 0 {
			if err := p.SetMemBudget(name, c.OtherBudget); err != nil {
				return Result{}, err
			}
		}
		if c.OtherShapeRate > 0 {
			if err := p.SetNodeShaper(other.Config().Node, 100*c.OtherShapeRate, c.OtherShapeRate); err != nil {
				return Result{}, err
			}
		}
		other.Start()
	}
	crit.Start()
	p.RunFor(s.Horizon)
	st := crit.Stats()
	return Result{
		Candidate: c,
		Stats:     st,
		MeetsP95:  st.P95ReadLatency.Nanoseconds() <= targetP95NS,
	}, nil
}

// Run evaluates the candidates in order (callers list them least
// restrictive first) and returns the first that meets the p95 target,
// along with every evaluated result. If none meets the target, ok is
// false and best is the candidate with the lowest p95.
func (s *Search) Run(cands []Candidate, targetP95NS float64) (best Result, all []Result, ok bool, err error) {
	if len(cands) == 0 {
		return Result{}, nil, false, fmt.Errorf("autoconf: no candidates")
	}
	bestIdx := -1
	for _, c := range cands {
		res, err := s.Evaluate(c, targetP95NS)
		if err != nil {
			return Result{}, all, false, err
		}
		all = append(all, res)
		if res.MeetsP95 {
			return res, all, true, nil
		}
		if bestIdx < 0 || res.Stats.P95ReadLatency < all[bestIdx].Stats.P95ReadLatency {
			bestIdx = len(all) - 1
		}
	}
	return all[bestIdx], all, false, nil
}
