// Package coherence models a directory-based MESI cache-coherence
// protocol between clusters. The paper's introduction lists coherency
// and consistency mechanisms among the dynamic effects that make
// access latencies on heterogeneous SoCs unpredictable: a read that
// hits locally in one execution pays a cross-cluster invalidation or a
// dirty-writeback transfer in the next, purely depending on co-runner
// behaviour. This package makes that interference measurable: every
// access reports how it was satisfied, what protocol traffic it
// caused, and what latency the protocol added.
//
// The directory tracks protocol state only (owner/sharers per line);
// capacity effects live in internal/cache. The two compose: a platform
// can consult the directory for the protocol cost and its cluster
// caches for hit/miss behaviour.
package coherence

import (
	"fmt"

	"repro/internal/sim"
)

// State is a MESI line state as seen by one cluster.
type State uint8

// MESI states.
const (
	Invalid State = iota
	Shared
	Exclusive
	Modified
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Modified:
		return "M"
	}
	return "?"
}

// Kind classifies how an access was satisfied.
type Kind uint8

// Access outcome kinds.
const (
	// LocalHit: the line was already held in a sufficient state.
	LocalHit Kind = iota
	// MemoryFetch: no cluster held the line; fetched from memory.
	MemoryFetch
	// CacheTransfer: another cluster supplied the line (clean).
	CacheTransfer
	// DirtyTransfer: the owner wrote back and supplied the line.
	DirtyTransfer
	// UpgradeInvalidate: a write hit a Shared line; sharers were
	// invalidated.
	UpgradeInvalidate
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case LocalHit:
		return "local-hit"
	case MemoryFetch:
		return "memory-fetch"
	case CacheTransfer:
		return "cache-transfer"
	case DirtyTransfer:
		return "dirty-transfer"
	case UpgradeInvalidate:
		return "upgrade-invalidate"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Costs parameterizes the protocol latency model.
type Costs struct {
	LocalHit    sim.Duration // line already held adequately
	Memory      sim.Duration // directory miss: fetch from DRAM
	Transfer    sim.Duration // cluster-to-cluster clean transfer
	Writeback   sim.Duration // extra cost when the owner was Modified
	Invalidate  sim.Duration // per invalidated sharer (acks overlap: max counted once)
	DirectoryRT sim.Duration // directory lookup round trip on any miss
}

// DefaultCosts returns a plausible on-chip cost set.
func DefaultCosts() Costs {
	return Costs{
		LocalHit:    sim.NS(5),
		Memory:      sim.NS(120),
		Transfer:    sim.NS(40),
		Writeback:   sim.NS(30),
		Invalidate:  sim.NS(25),
		DirectoryRT: sim.NS(20),
	}
}

// Validate checks the cost model.
func (c Costs) Validate() error {
	for _, d := range []sim.Duration{c.LocalHit, c.Memory, c.Transfer, c.Writeback, c.Invalidate, c.DirectoryRT} {
		if d < 0 {
			return fmt.Errorf("coherence: negative cost")
		}
	}
	return nil
}

// Result describes one access's protocol outcome.
type Result struct {
	Kind Kind
	// Latency is the protocol-level service time of the access.
	Latency sim.Duration
	// Invalidations is the number of sharer copies destroyed.
	Invalidations int
}

// ClusterStats accumulates per-cluster protocol counters.
type ClusterStats struct {
	Reads, Writes         uint64
	LocalHits             uint64
	MemoryFetches         uint64
	TransfersIn           uint64 // lines supplied BY others to this cluster
	DirtyTransfersIn      uint64
	Upgrades              uint64
	InvalidationsSent     uint64 // copies this cluster's writes destroyed
	InvalidationsReceived uint64 // this cluster's copies destroyed by others
	TotalLatency          sim.Duration
}

// line is the directory's view of one cache line.
type line struct {
	owner   int    // cluster holding E/M, -1 otherwise
	dirty   bool   // owner is in M
	sharers uint64 // bitmask of clusters in S
}

// Directory is the home-node coherence directory.
type Directory struct {
	clusters int
	costs    Costs
	lines    map[uint64]*line
	stats    []ClusterStats
	lineBits uint
}

// New builds a directory for the given cluster count and 2^lineBits
// byte lines (64B lines: lineBits = 6).
func New(clusters int, lineBits uint, costs Costs) (*Directory, error) {
	if clusters < 1 || clusters > 64 {
		return nil, fmt.Errorf("coherence: clusters must be 1..64, got %d", clusters)
	}
	if lineBits > 16 {
		return nil, fmt.Errorf("coherence: line bits %d too large", lineBits)
	}
	if err := costs.Validate(); err != nil {
		return nil, err
	}
	return &Directory{
		clusters: clusters,
		costs:    costs,
		lines:    make(map[uint64]*line),
		stats:    make([]ClusterStats, clusters),
		lineBits: lineBits,
	}, nil
}

// Stats returns a cluster's counters.
func (d *Directory) Stats(cluster int) ClusterStats {
	if cluster < 0 || cluster >= d.clusters {
		return ClusterStats{}
	}
	return d.stats[cluster]
}

// StateOf reports the MESI state of addr's line in the given cluster.
func (d *Directory) StateOf(cluster int, addr uint64) State {
	l := d.lines[addr>>d.lineBits]
	if l == nil {
		return Invalid
	}
	if l.owner == cluster {
		if l.dirty {
			return Modified
		}
		return Exclusive
	}
	if l.sharers&(1<<uint(cluster)) != 0 {
		return Shared
	}
	return Invalid
}

// Access performs a read or write by cluster at addr and returns the
// protocol outcome. It returns an error for an out-of-range cluster.
func (d *Directory) Access(cluster int, addr uint64, write bool) (Result, error) {
	if cluster < 0 || cluster >= d.clusters {
		return Result{}, fmt.Errorf("coherence: cluster %d of %d", cluster, d.clusters)
	}
	key := addr >> d.lineBits
	l := d.lines[key]
	if l == nil {
		l = &line{owner: -1}
		d.lines[key] = l
	}
	st := &d.stats[cluster]
	if write {
		st.Writes++
	} else {
		st.Reads++
	}

	var res Result
	switch {
	case !write:
		res = d.read(cluster, l)
	default:
		res = d.write(cluster, l)
	}
	st.TotalLatency += res.Latency
	return res, nil
}

// read implements GetS.
func (d *Directory) read(c int, l *line) Result {
	bit := uint64(1) << uint(c)
	switch {
	case l.owner == c:
		// E or M: read hits locally.
		d.stats[c].LocalHits++
		return Result{Kind: LocalHit, Latency: d.costs.LocalHit}
	case l.sharers&bit != 0:
		d.stats[c].LocalHits++
		return Result{Kind: LocalHit, Latency: d.costs.LocalHit}
	case l.owner >= 0:
		// Another cluster owns it: downgrade owner to S, transfer.
		res := Result{Kind: CacheTransfer, Latency: d.costs.DirectoryRT + d.costs.Transfer}
		if l.dirty {
			res.Kind = DirtyTransfer
			res.Latency += d.costs.Writeback
			d.stats[c].DirtyTransfersIn++
		} else {
			d.stats[c].TransfersIn++
		}
		l.sharers |= (1 << uint(l.owner)) | bit
		l.owner = -1
		l.dirty = false
		return res
	case l.sharers != 0:
		// Shared by others: supply from a sharer.
		d.stats[c].TransfersIn++
		l.sharers |= bit
		return Result{Kind: CacheTransfer, Latency: d.costs.DirectoryRT + d.costs.Transfer}
	default:
		// Nobody holds it: memory fetch, grant Exclusive.
		d.stats[c].MemoryFetches++
		l.owner = c
		l.dirty = false
		return Result{Kind: MemoryFetch, Latency: d.costs.DirectoryRT + d.costs.Memory}
	}
}

// write implements GetM / upgrade.
func (d *Directory) write(c int, l *line) Result {
	bit := uint64(1) << uint(c)
	switch {
	case l.owner == c:
		// E->M silently, M stays M.
		l.dirty = true
		d.stats[c].LocalHits++
		return Result{Kind: LocalHit, Latency: d.costs.LocalHit}
	case l.owner >= 0:
		// Steal from the owner: invalidate its copy.
		res := Result{Kind: DirtyTransfer, Invalidations: 1,
			Latency: d.costs.DirectoryRT + d.costs.Transfer + d.costs.Invalidate}
		if l.dirty {
			res.Latency += d.costs.Writeback
		} else {
			res.Kind = CacheTransfer
		}
		d.stats[c].InvalidationsSent++
		d.stats[l.owner].InvalidationsReceived++
		if l.dirty {
			d.stats[c].DirtyTransfersIn++
		} else {
			d.stats[c].TransfersIn++
		}
		l.owner = c
		l.dirty = true
		l.sharers = 0
		return res
	case l.sharers != 0:
		// Invalidate every other sharer; upgrade if we were one.
		inv := 0
		for o := 0; o < d.clusters; o++ {
			if o != c && l.sharers&(1<<uint(o)) != 0 {
				inv++
				d.stats[o].InvalidationsReceived++
			}
		}
		d.stats[c].InvalidationsSent += uint64(inv)
		wasSharer := l.sharers&bit != 0
		l.owner = c
		l.dirty = true
		l.sharers = 0
		lat := d.costs.DirectoryRT + d.costs.Invalidate // acks overlap
		kind := UpgradeInvalidate
		if !wasSharer {
			lat += d.costs.Transfer
			kind = CacheTransfer
		} else {
			d.stats[c].Upgrades++
		}
		return Result{Kind: kind, Invalidations: inv, Latency: lat}
	default:
		d.stats[c].MemoryFetches++
		l.owner = c
		l.dirty = true
		return Result{Kind: MemoryFetch, Latency: d.costs.DirectoryRT + d.costs.Memory}
	}
}

// CheckInvariants verifies the single-writer/multiple-reader property
// over every tracked line; it returns the first violation found.
// Property tests call this after random access sequences.
func (d *Directory) CheckInvariants() error {
	for key, l := range d.lines {
		if l.owner >= 0 && l.sharers != 0 {
			return fmt.Errorf("coherence: line %#x has owner %d and sharers %#x", key, l.owner, l.sharers)
		}
		if l.owner < 0 && l.dirty {
			return fmt.Errorf("coherence: line %#x dirty without owner", key)
		}
		if l.owner >= d.clusters {
			return fmt.Errorf("coherence: line %#x owned by bogus cluster %d", key, l.owner)
		}
	}
	return nil
}
