package coherence

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func newDir(t *testing.T, clusters int) *Directory {
	t.Helper()
	d, err := New(clusters, 6, DefaultCosts())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func access(t *testing.T, d *Directory, c int, addr uint64, write bool) Result {
	t.Helper()
	r, err := d.Access(c, addr, write)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 6, DefaultCosts()); err == nil {
		t.Error("zero clusters accepted")
	}
	if _, err := New(65, 6, DefaultCosts()); err == nil {
		t.Error("65 clusters accepted")
	}
	if _, err := New(2, 20, DefaultCosts()); err == nil {
		t.Error("huge line bits accepted")
	}
	bad := DefaultCosts()
	bad.Memory = -1
	if _, err := New(2, 6, bad); err == nil {
		t.Error("negative cost accepted")
	}
	d := newDir(t, 2)
	if _, err := d.Access(5, 0, false); err == nil {
		t.Error("out-of-range cluster accepted")
	}
}

func TestColdReadFetchesFromMemoryExclusive(t *testing.T) {
	d := newDir(t, 2)
	r := access(t, d, 0, 0x1000, false)
	if r.Kind != MemoryFetch {
		t.Errorf("cold read kind = %v", r.Kind)
	}
	if got := d.StateOf(0, 0x1000); got != Exclusive {
		t.Errorf("state after cold read = %v, want E", got)
	}
	// Second read: local hit.
	r = access(t, d, 0, 0x1000, false)
	if r.Kind != LocalHit {
		t.Errorf("re-read kind = %v", r.Kind)
	}
	// Same line, different byte.
	r = access(t, d, 0, 0x103F, false)
	if r.Kind != LocalHit {
		t.Errorf("same-line offset kind = %v", r.Kind)
	}
}

func TestSilentUpgradeEtoM(t *testing.T) {
	d := newDir(t, 2)
	access(t, d, 0, 0x1000, false) // E
	r := access(t, d, 0, 0x1000, true)
	if r.Kind != LocalHit || r.Invalidations != 0 {
		t.Errorf("E->M upgrade = %+v, want silent local hit", r)
	}
	if got := d.StateOf(0, 0x1000); got != Modified {
		t.Errorf("state = %v, want M", got)
	}
}

func TestReadSharingDowngradesOwner(t *testing.T) {
	d := newDir(t, 2)
	access(t, d, 0, 0x1000, true) // cluster 0 in M
	r := access(t, d, 1, 0x1000, false)
	if r.Kind != DirtyTransfer {
		t.Errorf("read of modified remote = %v, want dirty-transfer", r.Kind)
	}
	if d.StateOf(0, 0x1000) != Shared || d.StateOf(1, 0x1000) != Shared {
		t.Errorf("states after downgrade = %v/%v, want S/S",
			d.StateOf(0, 0x1000), d.StateOf(1, 0x1000))
	}
	// Clean owner supplies without writeback cost.
	d2 := newDir(t, 2)
	access(t, d2, 0, 0x2000, false) // E
	r = access(t, d2, 1, 0x2000, false)
	if r.Kind != CacheTransfer {
		t.Errorf("read of exclusive remote = %v, want cache-transfer", r.Kind)
	}
}

func TestWriteInvalidatesSharers(t *testing.T) {
	d := newDir(t, 4)
	// Three clusters share the line.
	access(t, d, 0, 0x1000, false)
	access(t, d, 1, 0x1000, false)
	access(t, d, 2, 0x1000, false)
	// Cluster 1 (a sharer) writes: 2 invalidations, upgrade.
	r := access(t, d, 1, 0x1000, true)
	if r.Kind != UpgradeInvalidate || r.Invalidations != 2 {
		t.Errorf("sharer write = %+v, want upgrade with 2 invalidations", r)
	}
	if d.StateOf(1, 0x1000) != Modified {
		t.Error("writer not in M")
	}
	if d.StateOf(0, 0x1000) != Invalid || d.StateOf(2, 0x1000) != Invalid {
		t.Error("sharers not invalidated")
	}
	st := d.Stats(1)
	if st.InvalidationsSent != 2 || st.Upgrades != 1 {
		t.Errorf("writer stats = %+v", st)
	}
	if d.Stats(0).InvalidationsReceived != 1 {
		t.Errorf("sharer stats = %+v", d.Stats(0))
	}
}

func TestWriteStealsFromOwner(t *testing.T) {
	d := newDir(t, 2)
	access(t, d, 0, 0x1000, true) // M in cluster 0
	r := access(t, d, 1, 0x1000, true)
	if r.Kind != DirtyTransfer || r.Invalidations != 1 {
		t.Errorf("write steal = %+v", r)
	}
	if d.StateOf(0, 0x1000) != Invalid || d.StateOf(1, 0x1000) != Modified {
		t.Error("ownership transfer broken")
	}
}

func TestNonSharerWriteToSharedLine(t *testing.T) {
	d := newDir(t, 3)
	access(t, d, 0, 0x1000, false)
	access(t, d, 1, 0x1000, false) // 0 and 1 share
	r := access(t, d, 2, 0x1000, true)
	if r.Invalidations != 2 || r.Kind != CacheTransfer {
		t.Errorf("non-sharer write = %+v", r)
	}
	if d.StateOf(2, 0x1000) != Modified {
		t.Error("writer not M")
	}
}

func TestPingPongCostsMoreThanPrivate(t *testing.T) {
	// The predictability point: the same write stream costs far more
	// when another cluster keeps touching the line.
	private := newDir(t, 2)
	var privateLat sim.Duration
	for i := 0; i < 100; i++ {
		privateLat += access(t, private, 0, 0x1000, true).Latency
	}
	pingpong := newDir(t, 2)
	var sharedLat sim.Duration
	for i := 0; i < 100; i++ {
		sharedLat += access(t, pingpong, i%2, 0x1000, true).Latency
	}
	if sharedLat < 3*privateLat {
		t.Errorf("ping-pong %v not substantially worse than private %v", sharedLat, privateLat)
	}
}

func TestStatsLatencyAccumulates(t *testing.T) {
	d := newDir(t, 2)
	access(t, d, 0, 0x1000, false)
	access(t, d, 0, 0x1000, false)
	st := d.Stats(0)
	if st.Reads != 2 || st.TotalLatency == 0 {
		t.Errorf("stats = %+v", st)
	}
	if d.Stats(-1) != (ClusterStats{}) || d.Stats(9) != (ClusterStats{}) {
		t.Error("out-of-range stats not zero")
	}
}

func TestStateAndKindStrings(t *testing.T) {
	for _, s := range []State{Invalid, Shared, Exclusive, Modified, State(9)} {
		if s.String() == "" {
			t.Error("empty State string")
		}
	}
	for _, k := range []Kind{LocalHit, MemoryFetch, CacheTransfer, DirtyTransfer, UpgradeInvalidate, Kind(9)} {
		if k.String() == "" {
			t.Error("empty Kind string")
		}
	}
}

func TestQuickSWMRInvariant(t *testing.T) {
	// Property: after any access sequence, every line has either one
	// owner and no sharers, or sharers and no owner (single writer /
	// multiple readers), and dirty implies owned.
	f := func(seed uint64, n uint8) bool {
		d, err := New(4, 6, DefaultCosts())
		if err != nil {
			return false
		}
		rnd := sim.NewRand(seed)
		for i := 0; i < int(n)+20; i++ {
			c := rnd.Intn(4)
			addr := uint64(rnd.Intn(8)) << 6
			if _, err := d.Access(c, addr, rnd.Intn(2) == 0); err != nil {
				return false
			}
		}
		return d.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickReadYourWrites(t *testing.T) {
	// Property: immediately after a cluster writes a line, its next
	// read of that line is a local hit (it is the owner in M).
	f := func(seed uint64, n uint8) bool {
		d, err := New(3, 6, DefaultCosts())
		if err != nil {
			return false
		}
		rnd := sim.NewRand(seed)
		for i := 0; i < int(n)+10; i++ {
			c := rnd.Intn(3)
			addr := uint64(rnd.Intn(6)) << 6
			if _, err := d.Access(c, addr, true); err != nil {
				return false
			}
			r, err := d.Access(c, addr, false)
			if err != nil || r.Kind != LocalHit {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
