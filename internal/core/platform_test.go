package core

import (
	"testing"

	"repro/internal/dsu"
	"repro/internal/noc"
	"repro/internal/sim"
	"repro/internal/trace"
)

func newPlatform(t *testing.T, mod func(*Config)) *Platform {
	t.Helper()
	cfg := DefaultConfig()
	if mod != nil {
		mod(&cfg)
	}
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func addApp(t *testing.T, p *Platform, name string, node noc.Coord, cluster int,
	scheme dsu.SchemeID, class trace.WorkloadClass, base uint64) *App {
	t.Helper()
	prof, err := trace.NewProfile(class, base, 7)
	if err != nil {
		t.Fatal(err)
	}
	a, err := p.AddApp(AppConfig{
		Name: name, Node: node, Cluster: cluster, Scheme: scheme, Profile: prof,
	})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestConfigValidation(t *testing.T) {
	mods := []struct {
		name string
		mod  func(*Config)
	}{
		{"no clusters", func(c *Config) { c.Clusters = nil }},
		{"bad cluster", func(c *Config) { c.Clusters[0].Ways = 7 }},
		{"bad mesh", func(c *Config) { c.Mesh.Width = 0 }},
		{"bad memory", func(c *Config) { c.Memory.Banks = 0 }},
		{"negative hit latency", func(c *Config) { c.L3HitLatency = -1 }},
		{"zero row bytes", func(c *Config) { c.RowBytes = 0 }},
		{"memory node off mesh", func(c *Config) { c.MemoryNode = noc.Coord{X: 9, Y: 9} }},
	}
	for _, m := range mods {
		cfg := DefaultConfig()
		m.mod(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("%s accepted", m.name)
		}
	}
}

func TestAddAppValidation(t *testing.T) {
	p := newPlatform(t, nil)
	prof, _ := trace.NewProfile(trace.ControlLoop, 0, 1)
	good := AppConfig{Name: "a", Node: noc.Coord{X: 0, Y: 0}, Cluster: 0, Scheme: 1, Profile: prof}
	if _, err := p.AddApp(good); err != nil {
		t.Fatal(err)
	}
	bad := []AppConfig{
		{Name: "", Node: good.Node, Profile: prof},
		{Name: "a", Node: good.Node, Profile: prof},             // duplicate
		{Name: "b", Node: good.Node, Cluster: 9, Profile: prof}, // bad cluster
		{Name: "c", Node: good.Node, Scheme: 99, Profile: prof}, // bad scheme
		{Name: "d", Node: noc.Coord{X: 9, Y: 9}, Profile: prof}, // off mesh
		{Name: "e", Node: good.Node},                            // nil profile
	}
	for i, cfg := range bad {
		if _, err := p.AddApp(cfg); err == nil {
			t.Errorf("bad app %d accepted", i)
		}
	}
	if _, err := p.App("a"); err != nil {
		t.Error("lookup failed")
	}
	if _, err := p.App("ghost"); err == nil {
		t.Error("ghost lookup succeeded")
	}
	if got := p.Apps(); len(got) != 1 || got[0] != "a" {
		t.Errorf("Apps = %v", got)
	}
}

func TestSoloAppMakesProgress(t *testing.T) {
	p := newPlatform(t, nil)
	a := addApp(t, p, "ctrl", noc.Coord{X: 0, Y: 0}, 0, 1, trace.ControlLoop, 0)
	a.Start()
	p.RunFor(2 * sim.Millisecond)
	st := a.Stats()
	if st.Issued == 0 || st.Reads == 0 {
		t.Fatalf("no progress: %+v", st)
	}
	// The 32KiB working set fits the 2MiB L3: after the first sweep
	// everything hits.
	if st.L3Hits == 0 {
		t.Error("no L3 hits on a cache-resident working set")
	}
	if st.MeanReadLatency <= 0 || st.MaxReadLatency < st.MeanReadLatency {
		t.Errorf("latency accounting: %+v", st)
	}
	if st.P95ReadLatency > st.MaxReadLatency {
		t.Errorf("p95 %v > max %v", st.P95ReadLatency, st.MaxReadLatency)
	}
}

func TestMissesReachDRAM(t *testing.T) {
	p := newPlatform(t, nil)
	a := addApp(t, p, "vision", noc.Coord{X: 1, Y: 1}, 0, 2, trace.VisionPipeline, 1<<30)
	a.Start()
	p.RunFor(sim.Millisecond)
	st := a.Stats()
	if st.L3Misses == 0 {
		t.Fatal("4MiB stream never missed the 2MiB L3")
	}
	ms := p.Memory().Stats().Master("vision")
	if ms.Reads == 0 {
		t.Fatal("no DRAM reads recorded for the app")
	}
	if st.BytesMoved == 0 {
		t.Error("no memory bytes accounted")
	}
}

// TestContentionInflation is the X1 experiment (the paper's
// motivation, citing [2]'s up-to-8x inflation on a Tegra X1): a
// critical control loop's read latency inflates substantially when
// co-located with memory-hungry best-effort apps, and the QoS
// mechanisms (DSU way partitioning + MemGuard budgets + NI shaping)
// pull it back down.
func TestContentionInflation(t *testing.T) {
	runCase := func(aggressors int, protect bool) (mean, p95 float64) {
		p := newPlatform(t, nil)
		crit := addApp(t, p, "crit", noc.Coord{X: 0, Y: 0}, 0, 1, trace.ControlLoop, 0)
		for i := 0; i < aggressors; i++ {
			name := "hog" + string(rune('0'+i))
			node := noc.Coord{X: 1 + i%3, Y: i / 3}
			a := addApp(t, p, name, node, 0, dsu.SchemeID(2+i%6), trace.Infotainment,
				uint64(1+i)<<30)
			a.Start()
		}
		if protect {
			// DSU: scheme 1 gets half the L3 privately.
			reg, err := dsu.Encode(map[dsu.SchemeID][]dsu.Group{1: {0, 1}})
			if err != nil {
				t.Fatal(err)
			}
			if err := p.ProgramDSU(0, reg); err != nil {
				t.Fatal(err)
			}
			// MemGuard: cap each hog to 16KiB per ms.
			for i := 0; i < aggressors; i++ {
				name := "hog" + string(rune('0'+i))
				if err := p.SetMemBudget(name, 16<<10); err != nil {
					t.Fatal(err)
				}
			}
		}
		crit.Start()
		p.RunFor(4 * sim.Millisecond)
		st := crit.Stats()
		return st.MeanReadLatency.Nanoseconds(), st.P95ReadLatency.Nanoseconds()
	}

	soloMean, _ := runCase(0, false)
	contMean, _ := runCase(6, false)
	protMean, _ := runCase(6, true)

	t.Logf("crit mean read latency: solo %.1fns, contended %.1fns (%.1fx), protected %.1fns (%.1fx)",
		soloMean, contMean, contMean/soloMean, protMean, protMean/soloMean)
	if contMean < 1.5*soloMean {
		t.Errorf("contention inflated latency only %.2fx; expected substantial inflation", contMean/soloMean)
	}
	if protMean > 0.7*contMean {
		t.Errorf("QoS mechanisms did not restore latency: protected %.1f vs contended %.1f", protMean, contMean)
	}
}

func TestDSUPartitioningPreservesCritWorkingSet(t *testing.T) {
	p := newPlatform(t, nil)
	reg, _ := dsu.Encode(map[dsu.SchemeID][]dsu.Group{1: {0, 1}})
	if err := p.ProgramDSU(0, reg); err != nil {
		t.Fatal(err)
	}
	crit := addApp(t, p, "crit", noc.Coord{X: 0, Y: 0}, 0, 1, trace.ControlLoop, 0)
	hog := addApp(t, p, "hog", noc.Coord{X: 2, Y: 0}, 0, 2, trace.Infotainment, 1<<30)
	crit.Start()
	hog.Start()
	p.RunFor(4 * sim.Millisecond)
	cl, _ := p.Cluster(0)
	if got := cl.L3().Stats(1).EvictedByOthers; got != 0 {
		t.Errorf("crit lost %d lines to the hog despite way partitioning", got)
	}
}

func TestColoringIsolatesButShrinks(t *testing.T) {
	// Section II: coloring isolates but costs capacity. A working set
	// larger than the colored slice starts missing, where the
	// uncolored run fits.
	missRate := func(colored bool) float64 {
		p := newPlatform(t, nil)
		prof, err := trace.NewSequential(0, 1<<20, 64) // 1MiB set in a 2MiB L3
		if err != nil {
			t.Fatal(err)
		}
		a, err := p.AddApp(AppConfig{
			Name: "w", Node: noc.Coord{X: 0, Y: 0}, Cluster: 0, Scheme: 1,
			Profile: &trace.Profile{Pattern: prof, ReqBytes: 64, Think: sim.NS(10)},
		})
		if err != nil {
			t.Fatal(err)
		}
		if colored {
			if err := p.EnableColoring(0, 4096); err != nil {
				t.Fatal(err)
			}
			// 2MiB/16 ways = 128KiB per way -> 32 colors; give 4 of
			// 32 (an eighth of the sets: 256KiB effective).
			if err := p.AssignColors("w", []int{0, 1, 2, 3}); err != nil {
				t.Fatal(err)
			}
		}
		a.Start()
		p.RunFor(10 * sim.Millisecond)
		st := a.Stats()
		return float64(st.L3Misses) / float64(st.Issued)
	}
	free := missRate(false)
	colored := missRate(true)
	if colored <= free {
		t.Errorf("coloring did not shrink effective capacity: miss rate %.3f vs %.3f", colored, free)
	}
}

func TestQoSConfigErrors(t *testing.T) {
	p := newPlatform(t, nil)
	if err := p.ProgramDSU(9, 0); err == nil {
		t.Error("bad cluster accepted")
	}
	if err := p.SetMemBudget("ghost", 100); err == nil {
		t.Error("budget for unknown app accepted")
	}
	if err := p.AssignColors("ghost", []int{0}); err == nil {
		t.Error("colors for unknown app accepted")
	}
	prof, _ := trace.NewProfile(trace.ControlLoop, 0, 1)
	if _, err := p.AddApp(AppConfig{Name: "a", Node: noc.Coord{X: 0, Y: 0}, Profile: prof}); err != nil {
		t.Fatal(err)
	}
	if err := p.AssignColors("a", []int{0}); err == nil {
		t.Error("colors without coloring enabled accepted")
	}
	if err := p.SetNodeShaper(noc.Coord{X: 9, Y: 9}, 1, 1); err == nil {
		t.Error("shaper on off-mesh node accepted")
	}
	if err := p.SetNodeShaper(noc.Coord{X: 0, Y: 0}, -1, 1); err == nil {
		t.Error("negative shaper accepted")
	}
	noMG := DefaultConfig()
	noMG.MemGuard = nil
	p2, err := New(noMG)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p2.AddApp(AppConfig{Name: "a", Node: noc.Coord{X: 0, Y: 0}, Profile: prof}); err != nil {
		t.Fatal(err)
	}
	if err := p2.SetMemBudget("a", 100); err == nil {
		t.Error("budget without MemGuard accepted")
	}
}

func TestStopHaltsApp(t *testing.T) {
	p := newPlatform(t, nil)
	a := addApp(t, p, "x", noc.Coord{X: 0, Y: 0}, 0, 1, trace.ControlLoop, 0)
	a.Start()
	a.Start() // idempotent
	p.RunFor(100 * sim.Microsecond)
	a.Stop()
	p.RunFor(10 * sim.Microsecond)
	before := a.Stats().Issued
	p.RunFor(sim.Millisecond)
	if got := a.Stats().Issued; got != before {
		t.Errorf("stopped app kept issuing: %d -> %d", before, got)
	}
}

func TestDeterministicPlatformRuns(t *testing.T) {
	run := func() AppStats {
		p := newPlatform(t, nil)
		crit := addApp(t, p, "crit", noc.Coord{X: 0, Y: 0}, 0, 1, trace.ControlLoop, 0)
		hog := addApp(t, p, "hog", noc.Coord{X: 2, Y: 1}, 0, 2, trace.Infotainment, 1<<30)
		crit.Start()
		hog.Start()
		p.RunFor(2 * sim.Millisecond)
		return crit.Stats()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("nondeterministic platform: %+v vs %+v", a, b)
	}
}
