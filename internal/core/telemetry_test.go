package core

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/noc"
	"repro/internal/sim"
	"repro/internal/trace"
)

// runInstrumented builds a fresh platform with two apps and a MemGuard
// budget, runs it for 2ms with full telemetry, and returns the metrics
// and trace dumps.
func runInstrumented(t *testing.T) (metrics, traceJSON []byte) {
	t.Helper()
	p := newPlatform(t, nil)
	suite, err := p.EnableTelemetry(true)
	if err != nil {
		t.Fatal(err)
	}
	crit := addApp(t, p, "crit", noc.Coord{X: 0, Y: 0}, 0, 1, trace.ControlLoop, 0)
	hog := addApp(t, p, "hog", noc.Coord{X: 1, Y: 0}, 1, 2, trace.VisionPipeline, 1<<30)
	if err := p.SetMemBudget("hog", 16*1024); err != nil {
		t.Fatal(err)
	}
	crit.Start()
	hog.Start()
	p.RunFor(2 * sim.Millisecond)
	crit.Stop()
	hog.Stop()
	p.SnapshotMetrics()

	var mbuf, tbuf bytes.Buffer
	if err := suite.Registry.WriteJSON(&mbuf); err != nil {
		t.Fatal(err)
	}
	if err := suite.Tracer.WriteJSON(&tbuf); err != nil {
		t.Fatal(err)
	}
	return mbuf.Bytes(), tbuf.Bytes()
}

func TestPlatformTelemetryDeterministic(t *testing.T) {
	m1, t1 := runInstrumented(t)
	m2, t2 := runInstrumented(t)
	if !bytes.Equal(m1, m2) {
		t.Error("two identical runs produced different metrics dumps")
	}
	if !bytes.Equal(t1, t2) {
		t.Error("two identical runs produced different trace dumps")
	}
}

func TestPlatformTraceCoversSubsystems(t *testing.T) {
	_, tj := runInstrumented(t)
	var out struct {
		TraceEvents []struct {
			Name string                 `json:"name"`
			Ph   string                 `json:"ph"`
			Args map[string]interface{} `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(tj, &out); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	// Collect track names from thread_name metadata.
	tracks := map[string]bool{}
	for _, ev := range out.TraceEvents {
		if ev.Ph == "M" && ev.Name == "thread_name" {
			if n, ok := ev.Args["name"].(string); ok {
				tracks[n] = true
			}
		}
	}
	for _, want := range []string{"noc", "memguard", "sim"} {
		if !tracks[want] {
			t.Errorf("trace missing track %q (have %v)", want, tracks)
		}
	}
	// DRAM spans live on per-bank tracks.
	foundBank := false
	for n := range tracks {
		if len(n) > 9 && n[:9] == "dram.bank" {
			foundBank = true
		}
	}
	if !foundBank {
		t.Errorf("trace missing dram bank tracks (have %v)", tracks)
	}
}

func TestPlatformMetricsContent(t *testing.T) {
	mj, _ := runInstrumented(t)
	var out struct {
		Counters   map[string]uint64             `json:"counters"`
		Gauges     map[string]float64            `json:"gauges"`
		Histograms map[string]map[string]float64 `json:"histograms"`
	}
	if err := json.Unmarshal(mj, &out); err != nil {
		t.Fatalf("metrics dump is not valid JSON: %v", err)
	}
	if out.Counters["sim.events"] == 0 {
		t.Error("sim.events counter missing or zero")
	}
	if out.Counters["dram.reads"] == 0 {
		t.Error("dram.reads counter missing or zero")
	}
	if out.Counters["noc.delivered"] == 0 {
		t.Error("noc.delivered counter missing or zero")
	}
	if out.Counters["memguard.requests"] == 0 {
		t.Error("memguard.requests counter missing or zero")
	}
	if _, ok := out.Histograms["app.crit.read_latency_ps"]; !ok {
		t.Error("app latency histogram not adopted into registry")
	}
	if _, ok := out.Gauges["monitor.mem:hog.total_bytes"]; !ok {
		t.Error("memguard PMU monitor snapshot missing")
	}
	if _, ok := out.Gauges["monitor.noc:crit.total_bytes"]; !ok {
		t.Error("noc PMU monitor snapshot missing")
	}
}

func TestEnableTelemetryTwiceFails(t *testing.T) {
	p := newPlatform(t, nil)
	if _, err := p.EnableTelemetry(false); err != nil {
		t.Fatal(err)
	}
	if _, err := p.EnableTelemetry(false); err == nil {
		t.Error("second EnableTelemetry accepted")
	}
	if p.Telemetry() == nil {
		t.Error("Telemetry() returned nil after enable")
	}
}
