package core

import (
	"testing"

	"repro/internal/mpam"
	"repro/internal/noc"
	"repro/internal/sim"
	"repro/internal/trace"
)

func TestMPAMChannelConfiguration(t *testing.T) {
	p := newPlatform(t, nil)
	if err := p.ConfigureMPAM(1, mpam.PartitionBW{}); err == nil {
		t.Error("configure before enable accepted")
	}
	if p.MPAMMonitors() != nil {
		t.Error("monitors exist before enable")
	}
	if b, r := p.MPAMServed(1); b != 0 || r != 0 {
		t.Error("served non-zero before enable")
	}
	if err := p.EnableMPAMChannel(mpam.BWConfig{CapacityBytesPerNS: 12.8}); err != nil {
		t.Fatal(err)
	}
	if err := p.EnableMPAMChannel(mpam.BWConfig{CapacityBytesPerNS: 12.8}); err == nil {
		t.Error("double enable accepted")
	}
	if err := p.EnableMPAMChannel(mpam.BWConfig{}); err == nil {
		t.Error("double enable with bad config accepted")
	}
	if err := p.ConfigureMPAM(1, mpam.PartitionBW{MaxBytesPerNS: 1}); err != nil {
		t.Fatal(err)
	}
}

func TestMPAMChannelLabelsAndMonitors(t *testing.T) {
	p := newPlatform(t, nil)
	if err := p.EnableMPAMChannel(mpam.BWConfig{CapacityBytesPerNS: 12.8}); err != nil {
		t.Fatal(err)
	}
	mon, err := p.MPAMMonitors().AddBandwidth(mpam.Filter{PARTID: 5})
	if err != nil {
		t.Fatal(err)
	}
	prof, err := trace.NewProfile(trace.VisionPipeline, 1<<30, 3)
	if err != nil {
		t.Fatal(err)
	}
	a, err := p.AddApp(AppConfig{
		Name: "vision", Node: noc.Coord{X: 1, Y: 1}, Cluster: 0, Scheme: 2,
		PARTID: 5, PMG: 1, Profile: prof,
	})
	if err != nil {
		t.Fatal(err)
	}
	a.Start()
	p.RunFor(sim.Millisecond)
	bytes, reqs := p.MPAMServed(5)
	if bytes == 0 || reqs == 0 {
		t.Fatalf("channel served nothing for PARTID 5: %d/%d", bytes, reqs)
	}
	if mon.Value() == 0 {
		t.Error("bandwidth monitor recorded nothing")
	}
	if mon.Value() != bytes {
		t.Errorf("monitor %d != served %d", mon.Value(), bytes)
	}
}

func TestMPAMDefaultPARTIDFromScheme(t *testing.T) {
	p := newPlatform(t, nil)
	if err := p.EnableMPAMChannel(mpam.BWConfig{CapacityBytesPerNS: 12.8}); err != nil {
		t.Fatal(err)
	}
	prof, _ := trace.NewProfile(trace.VisionPipeline, 1<<30, 3)
	a, err := p.AddApp(AppConfig{
		Name: "v", Node: noc.Coord{X: 1, Y: 1}, Cluster: 0, Scheme: 3, Profile: prof,
	})
	if err != nil {
		t.Fatal(err)
	}
	a.Start()
	p.RunFor(200 * sim.Microsecond)
	if b, _ := p.MPAMServed(3); b == 0 {
		t.Error("default PARTID (= scheme ID) saw no traffic")
	}
}

// TestMPAMMinBandwidthProtectsCritical is the hardware counterpart of
// the MemGuard experiment: a minimum-bandwidth guarantee on the memory
// channel keeps the critical app's DRAM traffic flowing under load.
func TestMPAMMinBandwidthProtectsCritical(t *testing.T) {
	run := func(protect bool) sim.Duration {
		cfg := DefaultConfig()
		cfg.MemGuard = nil // isolate the MPAM effect
		p, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		// Narrow channel so the arbiter is the bottleneck.
		if err := p.EnableMPAMChannel(mpam.BWConfig{CapacityBytesPerNS: 1.0}); err != nil {
			t.Fatal(err)
		}
		// Critical app misses constantly (strided, cache hostile).
		pat, err := trace.NewStrided(0, 64<<20, 1<<14)
		if err != nil {
			t.Fatal(err)
		}
		crit, err := p.AddApp(AppConfig{
			Name: "crit", Node: noc.Coord{X: 0, Y: 0}, Cluster: 0, Scheme: 1, PARTID: 1,
			Profile: &trace.Profile{Pattern: pat, ReqBytes: 64, Think: sim.NS(100)},
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 4; i++ {
			prof, err := trace.NewProfile(trace.VisionPipeline, uint64(i+2)<<30, uint64(i))
			if err != nil {
				t.Fatal(err)
			}
			h, err := p.AddApp(AppConfig{
				Name: "hog" + string(rune('0'+i)), Node: noc.Coord{X: 1 + i%3, Y: 1},
				Cluster: 1, Scheme: 2, PARTID: 9, Profile: prof,
			})
			if err != nil {
				t.Fatal(err)
			}
			h.Start()
		}
		if protect {
			if err := p.ConfigureMPAM(1, mpam.PartitionBW{MinBytesPerNS: 0.6, Priority: 1}); err != nil {
				t.Fatal(err)
			}
			if err := p.ConfigureMPAM(9, mpam.PartitionBW{MaxBytesPerNS: 0.3}); err != nil {
				t.Fatal(err)
			}
		}
		crit.Start()
		p.RunFor(2 * sim.Millisecond)
		return crit.Stats().P95ReadLatency
	}
	unprotected := run(false)
	protected := run(true)
	if protected >= unprotected {
		t.Errorf("MPAM min-bandwidth did not help: p95 %v (protected) vs %v (unprotected)",
			protected, unprotected)
	}
}
