package core

import (
	"encoding/json"
	"flag"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/sim"
)

var bigMeshBenchOut = flag.String("benchout", "", "merge the big-mesh scaling series into this BENCH JSON file")

// measureBigMesh runs the big-mesh scenario once at the given kernel
// partition count and returns the executed-event throughput. Platform
// assembly is excluded from the timed region; the event count comes
// from the engines themselves (every partition's Fired total), so the
// figure is events actually dispatched, not a workload estimate.
func measureBigMesh(t *testing.T, partitions int, dur sim.Duration) (eventsPerSec float64, events uint64) {
	t.Helper()
	spec := BigMeshSpec(partitions)
	spec.Duration = dur
	p, _, err := BuildPlatform(spec)
	if err != nil {
		t.Fatalf("partitions=%d: %v", partitions, err)
	}
	p.StartApps()
	start := time.Now()
	p.RunFor(dur)
	wall := time.Since(start)
	if par := p.Kernel(); par != nil {
		events = par.Fired()
	} else {
		events = p.Eng.Fired()
	}
	if events == 0 {
		t.Fatalf("partitions=%d: no events fired", partitions)
	}
	return float64(events) / wall.Seconds(), events
}

// TestEmitBigMeshBench measures the clustered platform's scaling
// series — the big-mesh scenario (16x16 mesh, 8 clusters, 8 channels,
// 512 apps) run sequentially and at 1/2/4/8 kernel partitions — and
// merges it into the bench JSON when -benchout is given:
//
//	go test ./internal/core/ -run TestEmitBigMeshBench -benchout "$PWD/BENCH_kernel.json"
//
// The file is read-modify-written so the kernel-dispatch numbers
// TestEmitBench (internal/sim) emitted stay in place; the series lands
// under parallel.bigmesh, where obsq flattens it to
// parallel.bigmesh.events_per_sec_pN (p0 = the sequential engine).
//
// The scaling floors arm only where cores exist to scale onto,
// mirroring TestEmitBench: >=1.5x at 4 partitions under GOMAXPROCS>=4,
// and the acceptance target — >=3x events/sec at 8 partitions over
// sequential — under GOMAXPROCS>=8. Emitted numbers are honest either
// way, with gomaxprocs stamped on every point.
func TestEmitBigMeshBench(t *testing.T) {
	if testing.Short() && *bigMeshBenchOut == "" {
		t.Skip("short mode without -benchout")
	}
	const dur = 25 * sim.Microsecond
	gomaxprocs := runtime.GOMAXPROCS(0)

	type point struct {
		Partitions   int     `json:"partitions"`
		EventsPerSec float64 `json:"events_per_sec"`
		Events       uint64  `json:"events"`
		Gomaxprocs   int     `json:"gomaxprocs"`
	}
	var series []point
	perSec := map[int]float64{}
	for _, parts := range []int{0, 1, 2, 4, 8} {
		// Best of two: a single wall-clock sample on a shared runner is
		// noise-bound, and the faster of two is the honest capability.
		best, bestEvents := measureBigMesh(t, parts, dur)
		if again, ev := measureBigMesh(t, parts, dur); again > best {
			best, bestEvents = again, ev
		}
		perSec[parts] = best
		series = append(series, point{Partitions: parts, EventsPerSec: best, Events: bestEvents, Gomaxprocs: gomaxprocs})
		t.Logf("bigmesh p%d: %.0f events/sec (%d events over %v sim)", parts, best, bestEvents, dur)
	}

	if gomaxprocs >= 4 {
		if scale := perSec[4] / perSec[0]; scale < 1.5 {
			t.Errorf("big-mesh scaling %.2fx at 4 partitions (GOMAXPROCS=%d), want >= 1.5x", scale, gomaxprocs)
		}
	}
	if gomaxprocs >= 8 {
		if scale := perSec[8] / perSec[0]; scale < 3.0 {
			t.Errorf("big-mesh scaling %.2fx at 8 partitions (GOMAXPROCS=%d), want >= 3x over sequential", scale, gomaxprocs)
		}
	} else {
		t.Logf("GOMAXPROCS=%d < 8: 3x-at-8-partitions floor not enforced on this host (CI scale-smoke enforces it where cores allow)", gomaxprocs)
	}

	if *bigMeshBenchOut == "" {
		return
	}
	doc := map[string]interface{}{}
	if data, err := os.ReadFile(*bigMeshBenchOut); err == nil {
		if err := json.Unmarshal(data, &doc); err != nil {
			t.Fatalf("-benchout %s exists but is not JSON: %v", *bigMeshBenchOut, err)
		}
	}
	par, _ := doc["parallel"].(map[string]interface{})
	if par == nil {
		par = map[string]interface{}{}
		doc["parallel"] = par
	}
	par["bigmesh"] = series
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*bigMeshBenchOut, data, 0o644); err != nil {
		t.Fatal(err)
	}
}
