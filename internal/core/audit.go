package core

import (
	"fmt"

	"repro/internal/audit"
	"repro/internal/dram/wcd"
	"repro/internal/netcalc"
)

// AuditOptions parameterizes EnableAudit.
type AuditOptions struct {
	// Bounds overrides the analytic delay bound (in ns) per app name.
	// Apps absent from the map get the platform-derived Network
	// Calculus bound; an explicit 0 or +Inf disables conformance
	// checking for that app (attribution still accumulates).
	Bounds map[string]float64
	// OnViolation runs synchronously for every bound violation, on the
	// simulation goroutine, the moment the violating transaction
	// completes.
	OnViolation func(audit.Violation)
	// MaxViolations caps retained violation events (0 = default).
	MaxViolations int
}

// EnableAudit arms the runtime predictability auditor: every already
// registered app (and any registered later) is captured with its
// analytic NC delay bound and MemGuard budget, and from then on each
// completed transaction is decomposed into per-stage contention
// attribution and checked against the bound online. When telemetry is
// enabled the mesh's per-flow latency histograms are switched on so
// scrapes carry NoC-level latency too. Call before traffic starts.
func (p *Platform) EnableAudit(opts AuditOptions) (*audit.Auditor, error) {
	if p.aud != nil {
		return nil, fmt.Errorf("core: audit already enabled")
	}
	p.aud = audit.New(audit.Config{
		OnViolation:   opts.OnViolation,
		MaxViolations: opts.MaxViolations,
	})
	p.audBounds = opts.Bounds
	// Registrations of co-located apps compose the same NoC and DRAM
	// service curves over and over; the memo makes re-registration (and
	// the re-derivation after each app joins) cheap. Cached results are
	// bit-identical to the uncached composition, so bounds don't move.
	p.ncCache = netcalc.NewCache(0)
	for _, name := range p.order {
		p.registerAudit(p.apps[name])
	}
	// Per-flow NoC histograms are single-writer and sample-order
	// dependent, so a clustered platform keeps them off at every
	// partition count — including the sequential engine, where they
	// would otherwise silently reappear and break the byte-identity of
	// metric dumps across partition counts.
	if p.tel != nil && p.tel.Registry != nil && !p.distributed {
		p.mesh.EnableFlowLatencyHistograms()
	}
	return p.aud, nil
}

// Auditor returns the platform's auditor (nil when disabled).
func (p *Platform) Auditor() *audit.Auditor { return p.aud }

// registerAudit captures one app's contract with the auditor.
func (p *Platform) registerAudit(a *App) {
	b := audit.Bound{}
	if explicit, ok := p.audBounds[a.cfg.Name]; ok {
		b.DelayBoundNS = explicit
	} else {
		b.DelayBoundNS = p.analyticDelayBoundNS(a)
	}
	if a.reg != nil {
		if budget, ok := a.reg.Budget(a.cfg.Name); ok {
			b.BudgetBytesPerPeriod = budget
		}
	}
	a.aud = p.aud.Register(a.cfg.Name, b)
}

// channelContenders counts the apps (other than a) whose miss traffic
// shares a's memory channels: under ChannelPartition only the apps
// homed on the same channel contend, otherwise every app does (an
// interleaved stream touches every channel).
func (p *Platform) channelContenders(a *App) int {
	if !p.distributed || p.cfg.ChannelMode != ChannelPartition {
		n := len(p.apps) - 1
		if n < 0 {
			n = 0
		}
		return n
	}
	home := p.HomeChannel(a.cfg.Cluster)
	n := 0
	for _, name := range p.order {
		o := p.apps[name]
		if o != a && p.HomeChannel(o.cfg.Cluster) == home {
			n++
		}
	}
	return n
}

// analyticDelayBoundNS composes the app's Section IV-A end-to-end
// bound from the platform's own models: a closed-loop token-bucket
// arrival contract (one request of ReqBytes per think interval)
// pushed through the NoC request path, the WCD-derived DRAM service
// curve, and the NoC response path, each shared with the app's
// channel contenders. On a multi-channel platform the composition is
// per channel: under ChannelPartition the path runs to the app's home
// channel node against only the apps homed there; under
// ChannelInterleave the stream touches every channel, so the bound is
// the worst per-channel composition against all co-runners. A budgeted
// app additionally absorbs one full MemGuard period (the worst
// throttle stall). +Inf (an infeasible composition) disables
// conformance checking for the app.
func (p *Platform) analyticDelayBoundNS(a *App) float64 {
	prof := a.cfg.Profile
	thinkNS := prof.Think.Nanoseconds()
	if thinkNS < 1 {
		thinkNS = 1
	}
	alpha := netcalc.TokenBucket(float64(prof.ReqBytes), float64(prof.ReqBytes)/thinkNS)

	contenders := p.channelContenders(a)

	dramReq, err := wcd.ServiceCurve(wcd.DefaultParams(), 32)
	if err != nil {
		return 0 // no analytic bound derivable; attribution-only
	}
	dramBytes := netcalc.Scale(dramReq, float64(prof.ReqBytes))

	targets := p.chans
	if p.distributed && p.cfg.ChannelMode == ChannelPartition {
		targets = p.chans[p.HomeChannel(a.cfg.Cluster) : p.HomeChannel(a.cfg.Cluster)+1]
	}
	var bound float64
	for _, ch := range targets {
		nocThere := p.mesh.ServiceCurve(a.cfg.Node, ch.node, contenders)
		nocBack := p.mesh.ServiceCurve(ch.node, a.cfg.Node, contenders)
		b := p.ncCache.DelayBoundThrough(alpha, nocThere, dramBytes, nocBack)
		if b > bound {
			bound = b
		}
	}
	if a.reg != nil {
		if _, budgeted := a.reg.Budget(a.cfg.Name); budgeted {
			bound += a.reg.Period().Nanoseconds()
		}
	}
	return bound
}
