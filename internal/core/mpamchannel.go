package core

import (
	"fmt"

	"repro/internal/mpam"
)

// EnableMPAMChannel inserts an MPAM-regulated bandwidth arbiter in
// front of each DRAM controller — the Section III-B deployment where
// bandwidth controls live "in networks-on-chip or memory controllers".
// Miss traffic arriving at a memory node is labelled with the issuing
// app's PARTID and arbitrated under the configured controls before
// that channel's controller sees it; memory-bandwidth usage monitors
// account the served traffic per PARTID/PMG.
//
// On the legacy single-channel shape this is exactly one arbiter at
// the memory node; a clustered platform gets one arbiter per channel,
// each living on its channel's engine with its own monitor set.
//
// Must be called before apps start issuing traffic.
func (p *Platform) EnableMPAMChannel(cfg mpam.BWConfig) error {
	if p.mpamArb != nil {
		return fmt.Errorf("core: MPAM channel already enabled")
	}
	for _, ch := range p.chans {
		ch.mons = mpam.NewMonitorSet()
		arb, err := mpam.NewArbiter(ch.eng, cfg, ch.mons)
		if err != nil {
			return err
		}
		ch.arb = arb
		if p.tel != nil {
			if p.distributed {
				arb.SetTelemetry(p.tel.Registry, nil, nil)
			} else {
				arb.SetTelemetry(p.tel.Registry, p.tel.Tracer, p.tel.Monitors)
			}
		}
	}
	p.mpamArb = p.chans[0].arb
	p.mpamMons = p.chans[0].mons
	return nil
}

// ConfigureMPAM installs the bandwidth controls for a PARTID on every
// memory channel (max/min bandwidth, proportional stride, priority,
// bandwidth-portion quanta).
func (p *Platform) ConfigureMPAM(id mpam.PARTID, cfg mpam.PartitionBW) error {
	if p.mpamArb == nil {
		return fmt.Errorf("core: MPAM channel not enabled")
	}
	for _, ch := range p.chans {
		if err := ch.arb.Configure(id, cfg); err != nil {
			return err
		}
	}
	return nil
}

// MPAMMonitors exposes the channel's monitor set for installing
// bandwidth monitors (nil when the channel is disabled; channel 0's
// set on a clustered platform — see ChannelMPAMMonitors).
func (p *Platform) MPAMMonitors() *mpam.MonitorSet { return p.mpamMons }

// ChannelMPAMMonitors exposes one channel's monitor set (nil when the
// MPAM channel is disabled or the index is out of range).
func (p *Platform) ChannelMPAMMonitors(i int) *mpam.MonitorSet {
	if i < 0 || i >= len(p.chans) {
		return nil
	}
	return p.chans[i].mons
}

// MPAMServed reports bytes and requests delivered for a PARTID,
// summed over every channel.
func (p *Platform) MPAMServed(id mpam.PARTID) (bytes, requests uint64) {
	if p.mpamArb == nil {
		return 0, 0
	}
	for _, ch := range p.chans {
		b, r := ch.arb.Served(id)
		bytes += b
		requests += r
	}
	return bytes, requests
}

// channelSubmit routes a memory-node transaction through its channel's
// MPAM arbiter when enabled, then to the DRAM controller. The caller
// owns req (typically embedded in a pooled txn, with OnDone
// pre-bound); bypass runs instead of the arbiter path when the channel
// is disabled or rejects the request, so the transaction never
// vanishes. Runs on the channel's engine.
func (p *Platform) channelSubmit(ch *memChannel, req *mpam.BWRequest, bypass func()) {
	if ch.arb == nil {
		bypass()
		return
	}
	if err := ch.arb.Submit(req); err != nil {
		bypass() // malformed requests bypass rather than vanish
	}
}
