package core

import (
	"fmt"

	"repro/internal/mpam"
)

// EnableMPAMChannel inserts an MPAM-regulated bandwidth arbiter in
// front of the DRAM controller — the Section III-B deployment where
// bandwidth controls live "in networks-on-chip or memory controllers".
// Miss traffic arriving at the memory node is labelled with the
// issuing app's PARTID and arbitrated under the configured controls
// before the controller sees it; memory-bandwidth usage monitors
// account the served traffic per PARTID/PMG.
//
// Must be called before apps start issuing traffic.
func (p *Platform) EnableMPAMChannel(cfg mpam.BWConfig) error {
	if p.mpamArb != nil {
		return fmt.Errorf("core: MPAM channel already enabled")
	}
	p.mpamMons = mpam.NewMonitorSet()
	arb, err := mpam.NewArbiter(p.Eng, cfg, p.mpamMons)
	if err != nil {
		return err
	}
	p.mpamArb = arb
	if p.tel != nil {
		arb.SetTelemetry(p.tel.Registry, p.tel.Tracer, p.tel.Monitors)
	}
	return nil
}

// ConfigureMPAM installs the bandwidth controls for a PARTID on the
// memory channel (max/min bandwidth, proportional stride, priority,
// bandwidth-portion quanta).
func (p *Platform) ConfigureMPAM(id mpam.PARTID, cfg mpam.PartitionBW) error {
	if p.mpamArb == nil {
		return fmt.Errorf("core: MPAM channel not enabled")
	}
	return p.mpamArb.Configure(id, cfg)
}

// MPAMMonitors exposes the channel's monitor set for installing
// bandwidth monitors (nil when the channel is disabled).
func (p *Platform) MPAMMonitors() *mpam.MonitorSet { return p.mpamMons }

// MPAMServed reports bytes and requests the channel delivered for a
// PARTID.
func (p *Platform) MPAMServed(id mpam.PARTID) (bytes, requests uint64) {
	if p.mpamArb == nil {
		return 0, 0
	}
	return p.mpamArb.Served(id)
}

// channelSubmit routes a memory-node transaction through the MPAM
// arbiter when enabled, then to the DRAM controller. The caller owns
// req (typically embedded in a pooled txn, with OnDone pre-bound);
// bypass runs instead of the arbiter path when the channel is disabled
// or rejects the request, so the transaction never vanishes.
func (p *Platform) channelSubmit(req *mpam.BWRequest, bypass func()) {
	if p.mpamArb == nil {
		bypass()
		return
	}
	if err := p.mpamArb.Submit(req); err != nil {
		bypass() // malformed requests bypass rather than vanish
	}
}
