package core

import (
	"bytes"
	"fmt"

	"repro/internal/dsu"
	"repro/internal/mpam"
	"repro/internal/noc"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// RunSpec is a plain, serializable description of one contention
// experiment on the default platform: a critical control loop at
// mesh node (0,0) contended by Hogs best-effort aggressors, with each
// of the paper's QoS mechanisms individually armed. It exists so a
// whole platform is constructible from a value — the sweep harness
// expands a configuration matrix into RunSpecs and builds a fresh,
// fully independent Platform (own sim.Engine, own telemetry) per run.
type RunSpec struct {
	// Hogs is the number of best-effort aggressor apps.
	Hogs int
	// DSU partitions the L3 with a CLUSTERPARTCR reserving groups 0-1
	// for the critical app's scheme.
	DSU bool
	// MemGuard gives each hog a bandwidth budget.
	MemGuard bool
	// Shape installs NI token-bucket shapers on hog nodes.
	Shape bool
	// MPAM regulates the memory channel with min/max bandwidth
	// partitions (critical guaranteed, hogs capped).
	MPAM bool
	// HogClass is the hogs' workload class (default Infotainment).
	HogClass trace.WorkloadClass
	// Duration is the simulated horizon.
	Duration sim.Duration
	// Seed offsets the hogs' random address streams; hog i draws from
	// seed Seed+i. Runs differing only in Seed are independent
	// samples of the same configuration.
	Seed uint64
	// KernelPartitions runs the platform on a Parallel event kernel
	// with this many partitions (socsim -parallel). Output is
	// byte-identical for every value; 0 keeps the sequential engine.
	// The sweep harness pins this to 0 — its parallelism is one whole
	// run per OS worker, and kernel partitions inside each run would
	// oversubscribe the cores (documented in docs/PERFORMANCE.md).
	KernelPartitions int
	// Telemetry enables the metrics registry (and monitors); Trace
	// additionally records a Chrome trace_event timeline.
	Telemetry bool
	Trace     bool
	// Audit arms the runtime predictability auditor: per-app analytic
	// delay bounds, online conformance checking, and per-stage
	// contention attribution.
	Audit bool
	// AuditBounds overrides the analytic per-app delay bound (ns);
	// see AuditOptions.Bounds. Only meaningful with Audit.
	AuditBounds map[string]float64
	// MetricsPath, when non-empty, writes the end-of-run metrics
	// snapshot to this file in OpenMetrics text ("-" for stdout) and
	// implies Telemetry — the sweep harness's per-run snapshot hook.
	// The snapshot is written even when the run fails or panics: a
	// failed run's telemetry is exactly the evidence a diagnosis
	// needs, so Run dumps whatever accumulated before unwinding.
	MetricsPath string
	// MetricsSink, when non-nil, receives the end-of-run OpenMetrics
	// snapshot bytes exactly once per Run — including on the failure
	// and panic paths — and implies Telemetry. It is how the sweep
	// harness captures per-run payloads for the cross-run results
	// store without routing them through the filesystem. The sink
	// owns the slice.
	MetricsSink func(openmetrics []byte)
}

// Validate checks the spec.
func (s RunSpec) Validate() error {
	if s.Hogs < 0 {
		return fmt.Errorf("core: RunSpec.Hogs = %d, must be >= 0", s.Hogs)
	}
	if s.Duration <= 0 {
		return fmt.Errorf("core: RunSpec.Duration = %v, must be positive", s.Duration)
	}
	if s.KernelPartitions < 0 {
		return fmt.Errorf("core: RunSpec.KernelPartitions = %d, must be >= 0", s.KernelPartitions)
	}
	return nil
}

// RunResult is the measured outcome of a RunSpec.
type RunResult struct {
	// Crit is the critical app's latency profile.
	Crit AppStats
	// RowHitRate is the DRAM controller's aggregate row-hit rate.
	RowHitRate float64
	// HogStats holds each hog's stats, in registration order.
	HogStats []AppStats
	// CritViolations and TotalViolations count the auditor's bound
	// violations for the critical app and across all apps (zero when
	// the auditor is off).
	CritViolations  uint64
	TotalViolations uint64
	// AuditObserved counts the transactions the auditor checked across
	// all apps (zero when the auditor is off) — the denominator of the
	// run's bound-conformance rate
	// (AuditObserved-TotalViolations)/AuditObserved.
	AuditObserved uint64
}

// BuildPlatform assembles a fresh Platform per the spec: the critical
// control loop plus spec.Hogs aggressors, with every armed mechanism
// configured. Nothing is started — the returned critical app and the
// hogs are registered but idle; StartApps (or RunSpec.Run, which does
// all of it) sets the traffic going.
func BuildPlatform(spec RunSpec) (*Platform, *App, error) {
	if err := spec.Validate(); err != nil {
		return nil, nil, err
	}
	pcfg := DefaultConfig()
	pcfg.Partitions = spec.KernelPartitions
	p, err := New(pcfg)
	if err != nil {
		return nil, nil, err
	}
	if spec.Telemetry || spec.Trace {
		if _, err := p.EnableTelemetry(spec.Trace); err != nil {
			return nil, nil, err
		}
	}
	if spec.MPAM {
		if err := p.EnableMPAMChannel(mpam.BWConfig{CapacityBytesPerNS: 2.0}); err != nil {
			return nil, nil, err
		}
		// Critical traffic (PARTID 1) gets a minimum guarantee and
		// top priority; hog PARTIDs are capped below.
		if err := p.ConfigureMPAM(1, mpam.PartitionBW{MinBytesPerNS: 0.8, Priority: 1}); err != nil {
			return nil, nil, err
		}
	}
	critProf, err := trace.NewProfile(trace.ControlLoop, 0, 1)
	if err != nil {
		return nil, nil, err
	}
	crit, err := p.AddApp(AppConfig{
		Name: "crit", Node: noc.Coord{X: 0, Y: 0}, Cluster: 0, Scheme: 1,
		Profile: critProf, Critical: true,
	})
	if err != nil {
		return nil, nil, err
	}
	for i := 0; i < spec.Hogs; i++ {
		name := fmt.Sprintf("hog%d", i)
		prof, err := trace.NewProfile(spec.HogClass, uint64(1+i)<<30, spec.Seed+uint64(i))
		if err != nil {
			return nil, nil, err
		}
		node := noc.Coord{X: 1 + i%3, Y: i / 3 % 4}
		hog, err := p.AddApp(AppConfig{
			Name: name, Node: node, Cluster: 0, Scheme: dsu.SchemeID(2 + i%6), Profile: prof,
		})
		if err != nil {
			return nil, nil, err
		}
		if spec.MemGuard {
			if err := p.SetMemBudget(name, 16<<10); err != nil {
				return nil, nil, err
			}
		}
		if spec.Shape {
			if err := p.SetNodeShaper(node, 256, 0.2); err != nil {
				return nil, nil, err
			}
		}
		if spec.MPAM {
			if err := p.ConfigureMPAM(mpam.PARTID(hog.Config().Scheme), mpam.PartitionBW{MaxBytesPerNS: 0.15}); err != nil {
				return nil, nil, err
			}
		}
	}
	if spec.DSU {
		reg, err := dsu.Encode(map[dsu.SchemeID][]dsu.Group{1: {0, 1}})
		if err != nil {
			return nil, nil, err
		}
		if err := p.ProgramDSU(0, reg); err != nil {
			return nil, nil, err
		}
	}
	if spec.Audit {
		// After every app and budget is in place, so the captured
		// contracts see the final co-runner set and MemGuard budgets.
		if _, err := p.EnableAudit(AuditOptions{Bounds: spec.AuditBounds}); err != nil {
			return nil, nil, err
		}
	}
	return p, crit, nil
}

// StartApps starts every registered app at the current virtual time,
// in registration order.
func (p *Platform) StartApps() {
	for _, name := range p.order {
		p.apps[name].Start()
	}
}

// testRunFailpoint, when non-nil, runs after the simulation horizon
// inside RunSpec.Run — a test seam for proving that a run which
// panics mid-collection still persists its metrics snapshot.
var testRunFailpoint func(*Platform)

// Run builds the platform, runs every app for spec.Duration, and
// collects the result. Each call is fully independent — fresh engine,
// fresh platform, fresh telemetry — so concurrent Runs of different
// specs never share state, and the same spec always reproduces the
// same result.
func (spec RunSpec) Run() (RunResult, error) {
	if spec.MetricsPath != "" || spec.MetricsSink != nil {
		spec.Telemetry = true
	}
	p, crit, err := BuildPlatform(spec)
	if err != nil {
		return RunResult{}, err
	}
	// The snapshot dump runs exactly once: explicitly on the success
	// path (so its error can be reported), or from the defer when the
	// run errors or panics — a failed run's telemetry is exactly the
	// evidence a diagnosis needs, so whatever accumulated is flushed
	// before unwinding.
	snapshotDone := false
	dumpSnapshot := func() error {
		if snapshotDone || p.Telemetry() == nil {
			return nil
		}
		snapshotDone = true
		p.SnapshotMetrics()
		if spec.MetricsSink != nil {
			var buf bytes.Buffer
			if err := p.Telemetry().Registry.WriteOpenMetrics(&buf); err != nil {
				return fmt.Errorf("core: run metrics snapshot: %w", err)
			}
			spec.MetricsSink(buf.Bytes())
		}
		if spec.MetricsPath != "" {
			if err := telemetry.WriteOutput(spec.MetricsPath, p.Telemetry().Registry.WriteOpenMetrics); err != nil {
				return fmt.Errorf("core: run metrics snapshot: %w", err)
			}
		}
		return nil
	}
	defer dumpSnapshot()
	p.StartApps()
	p.RunFor(spec.Duration)
	if testRunFailpoint != nil {
		testRunFailpoint(p)
	}
	res := RunResult{
		Crit:       crit.Stats(),
		RowHitRate: p.Memory().Stats().RowHitRate(),
	}
	for i := 0; i < spec.Hogs; i++ {
		h, err := p.App(fmt.Sprintf("hog%d", i))
		if err != nil {
			return RunResult{}, err
		}
		res.HogStats = append(res.HogStats, h.Stats())
	}
	if aud := p.Auditor(); aud != nil {
		if h := aud.App(crit.Name()); h != nil {
			res.CritViolations = h.Violations()
		}
		res.TotalViolations = aud.TotalViolations()
		for _, s := range aud.Snapshot() {
			res.AuditObserved += s.Observed
		}
	}
	if err := dumpSnapshot(); err != nil {
		return res, err
	}
	return res, nil
}
