package core

import (
	"bytes"
	"fmt"

	"repro/internal/dsu"
	"repro/internal/mpam"
	"repro/internal/noc"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// RunSpec is a plain, serializable description of one contention
// experiment on the default platform: a critical control loop at
// mesh node (0,0) contended by Hogs best-effort aggressors, with each
// of the paper's QoS mechanisms individually armed. It exists so a
// whole platform is constructible from a value — the sweep harness
// expands a configuration matrix into RunSpecs and builds a fresh,
// fully independent Platform (own sim.Engine, own telemetry) per run.
type RunSpec struct {
	// Hogs is the number of best-effort aggressor apps.
	Hogs int
	// DSU partitions the L3 with a CLUSTERPARTCR reserving groups 0-1
	// for the critical app's scheme.
	DSU bool
	// MemGuard gives each hog a bandwidth budget.
	MemGuard bool
	// Shape installs NI token-bucket shapers on hog nodes.
	Shape bool
	// MPAM regulates the memory channel with min/max bandwidth
	// partitions (critical guaranteed, hogs capped).
	MPAM bool
	// HogClass is the hogs' workload class (default Infotainment).
	HogClass trace.WorkloadClass
	// Duration is the simulated horizon.
	Duration sim.Duration
	// Seed offsets the hogs' random address streams; hog i draws from
	// seed Seed+i. Runs differing only in Seed are independent
	// samples of the same configuration.
	Seed uint64
	// KernelPartitions runs the platform on a Parallel event kernel
	// with this many partitions (socsim -parallel). Output is
	// byte-identical for every value; 0 keeps the sequential engine.
	// The sweep harness pins this to 0 — its parallelism is one whole
	// run per OS worker, and kernel partitions inside each run would
	// oversubscribe the cores (documented in docs/PERFORMANCE.md).
	KernelPartitions int
	// Telemetry enables the metrics registry (and monitors); Trace
	// additionally records a Chrome trace_event timeline.
	Telemetry bool
	Trace     bool
	// Audit arms the runtime predictability auditor: per-app analytic
	// delay bounds, online conformance checking, and per-stage
	// contention attribution.
	Audit bool
	// AuditBounds overrides the analytic per-app delay bound (ns);
	// see AuditOptions.Bounds. Only meaningful with Audit.
	AuditBounds map[string]float64
	// MetricsPath, when non-empty, writes the end-of-run metrics
	// snapshot to this file in OpenMetrics text ("-" for stdout) and
	// implies Telemetry — the sweep harness's per-run snapshot hook.
	// The snapshot is written even when the run fails or panics: a
	// failed run's telemetry is exactly the evidence a diagnosis
	// needs, so Run dumps whatever accumulated before unwinding.
	MetricsPath string
	// MetricsSink, when non-nil, receives the end-of-run OpenMetrics
	// snapshot bytes exactly once per Run — including on the failure
	// and panic paths — and implies Telemetry. It is how the sweep
	// harness captures per-run payloads for the cross-run results
	// store without routing them through the filesystem. The sink
	// owns the slice.
	MetricsSink func(openmetrics []byte)

	// Scale knobs. Setting any of them switches the build from the
	// default 4x4 platform to a clustered platform: a MeshWidth x
	// MeshHeight mesh, Clusters CPU clusters (each with a private L2 in
	// front of its L3), Channels DRAM controllers under channel-aware
	// placement (ChannelPartition — each cluster's misses stay on its
	// home channel), and AppsPerTile apps on every mesh tile (the tile
	// (0,0) slot 0 app is the critical control loop; the rest are
	// hogs). Hogs is ignored in this shape. Zero values default to
	// MeshWidth 16, MeshHeight = MeshWidth, Clusters = min(8, width),
	// Channels = Clusters, AppsPerTile 1.
	MeshWidth   int
	MeshHeight  int
	Clusters    int
	Channels    int
	AppsPerTile int
}

// Scaled reports whether the spec builds the clustered platform shape.
func (s RunSpec) Scaled() bool {
	return s.MeshWidth != 0 || s.MeshHeight != 0 || s.Clusters != 0 || s.Channels != 0 || s.AppsPerTile != 0
}

// platformConfig derives the platform configuration for the spec.
func (s RunSpec) platformConfig() Config {
	cfg := DefaultConfig()
	cfg.Partitions = s.KernelPartitions
	if !s.Scaled() {
		return cfg
	}
	w := s.MeshWidth
	if w == 0 {
		w = 16
	}
	h := s.MeshHeight
	if h == 0 {
		h = w
	}
	clusters := s.Clusters
	if clusters == 0 {
		clusters = min(8, w)
	}
	channels := s.Channels
	if channels == 0 {
		channels = clusters
	}
	cfg.Mesh.Width, cfg.Mesh.Height = w, h
	ccfg := dsu.DefaultConfig()
	ccfg.L2Sets, ccfg.L2Ways = 256, 8 // 128 KiB private L2 per cluster
	cfg.Clusters = make([]dsu.Config, clusters)
	for i := range cfg.Clusters {
		cfg.Clusters[i] = ccfg
	}
	cfg.Channels = channels
	cfg.ChannelMode = ChannelPartition
	cfg.MemoryNode = noc.Coord{X: w - 1, Y: h - 1}
	cfg.L2HitLatency = sim.NS(8)
	return cfg
}

// Validate checks the spec.
func (s RunSpec) Validate() error {
	if s.Hogs < 0 {
		return fmt.Errorf("core: RunSpec.Hogs = %d, must be >= 0", s.Hogs)
	}
	if s.Duration <= 0 {
		return fmt.Errorf("core: RunSpec.Duration = %v, must be positive", s.Duration)
	}
	if s.KernelPartitions < 0 {
		return fmt.Errorf("core: RunSpec.KernelPartitions = %d, must be >= 0", s.KernelPartitions)
	}
	for _, knob := range []struct {
		name string
		v    int
	}{
		{"MeshWidth", s.MeshWidth}, {"MeshHeight", s.MeshHeight},
		{"Clusters", s.Clusters}, {"Channels", s.Channels}, {"AppsPerTile", s.AppsPerTile},
	} {
		if knob.v < 0 {
			return fmt.Errorf("core: RunSpec.%s = %d, must be >= 0", knob.name, knob.v)
		}
	}
	return nil
}

// RunResult is the measured outcome of a RunSpec.
type RunResult struct {
	// Crit is the critical app's latency profile.
	Crit AppStats
	// RowHitRate is the DRAM row-hit rate aggregated over every channel.
	RowHitRate float64
	// HogStats holds each hog's stats, in registration order.
	HogStats []AppStats
	// CritViolations and TotalViolations count the auditor's bound
	// violations for the critical app and across all apps (zero when
	// the auditor is off).
	CritViolations  uint64
	TotalViolations uint64
	// AuditObserved counts the transactions the auditor checked across
	// all apps (zero when the auditor is off) — the denominator of the
	// run's bound-conformance rate
	// (AuditObserved-TotalViolations)/AuditObserved.
	AuditObserved uint64
}

// BuildPlatform assembles a fresh Platform per the spec: the critical
// control loop plus spec.Hogs aggressors, with every armed mechanism
// configured. Nothing is started — the returned critical app and the
// hogs are registered but idle; StartApps (or RunSpec.Run, which does
// all of it) sets the traffic going.
func BuildPlatform(spec RunSpec) (*Platform, *App, error) {
	if err := spec.Validate(); err != nil {
		return nil, nil, err
	}
	p, err := New(spec.platformConfig())
	if err != nil {
		return nil, nil, err
	}
	if spec.Telemetry || spec.Trace {
		if _, err := p.EnableTelemetry(spec.Trace); err != nil {
			return nil, nil, err
		}
	}
	if spec.MPAM {
		if err := p.EnableMPAMChannel(mpam.BWConfig{CapacityBytesPerNS: 2.0}); err != nil {
			return nil, nil, err
		}
		// Critical traffic (PARTID 1) gets a minimum guarantee and
		// top priority; hog PARTIDs are capped below.
		if err := p.ConfigureMPAM(1, mpam.PartitionBW{MinBytesPerNS: 0.8, Priority: 1}); err != nil {
			return nil, nil, err
		}
	}
	critProf, err := trace.NewProfile(trace.ControlLoop, 0, 1)
	if err != nil {
		return nil, nil, err
	}
	crit, err := p.AddApp(AppConfig{
		Name: "crit", Node: noc.Coord{X: 0, Y: 0}, Cluster: 0, Scheme: 1,
		Profile: critProf, Critical: true,
	})
	if err != nil {
		return nil, nil, err
	}
	if spec.Scaled() {
		// Every tile carries AppsPerTile apps; the crit loop holds tile
		// (0,0)'s first slot, everything else is a hog homed on its
		// column's cluster.
		apt := spec.AppsPerTile
		if apt == 0 {
			apt = 1
		}
		i := 0
		for y := 0; y < p.cfg.Mesh.Height; y++ {
			for x := 0; x < p.cfg.Mesh.Width; x++ {
				for k := 0; k < apt; k++ {
					if x == 0 && y == 0 && k == 0 {
						continue // crit's slot
					}
					node := noc.Coord{X: x, Y: y}
					if err := buildHog(p, spec, i, node, p.ClusterOfColumn(x)); err != nil {
						return nil, nil, err
					}
					i++
				}
			}
		}
	} else {
		for i := 0; i < spec.Hogs; i++ {
			node := noc.Coord{X: 1 + i%3, Y: i / 3 % 4}
			if err := buildHog(p, spec, i, node, 0); err != nil {
				return nil, nil, err
			}
		}
	}
	if spec.DSU {
		reg, err := dsu.Encode(map[dsu.SchemeID][]dsu.Group{1: {0, 1}})
		if err != nil {
			return nil, nil, err
		}
		clusters := 1
		if spec.Scaled() {
			clusters = len(p.clusters) // protect the crit scheme on every L3
		}
		for c := 0; c < clusters; c++ {
			if err := p.ProgramDSU(c, reg); err != nil {
				return nil, nil, err
			}
		}
	}
	if spec.Audit {
		// After every app and budget is in place, so the captured
		// contracts see the final co-runner set and MemGuard budgets.
		if _, err := p.EnableAudit(AuditOptions{Bounds: spec.AuditBounds}); err != nil {
			return nil, nil, err
		}
	}
	return p, crit, nil
}

// BigMeshSpec returns the canonical big-mesh scale-out scenario: a
// 16x16 mesh, 8 clusters (each with a private L2), 8 DRAM channels
// under channel-aware placement, and 2 apps on every tile — 512 hogs
// plus the critical loop — with the DSU, MemGuard, and MPAM mechanisms
// armed. partitions selects the kernel cut (0 = sequential engine);
// output is byte-identical for every value because each cluster's
// entire memory path (L2/L3, regulator, MPAM arbiter, home DRAM
// channel) lives inside its own column slab, so no traffic ever
// crosses a partition cut. Callers override Duration/Seed as needed.
func BigMeshSpec(partitions int) RunSpec {
	return RunSpec{
		MeshWidth:        16,
		MeshHeight:       16,
		Clusters:         8,
		Channels:         8,
		AppsPerTile:      2,
		DSU:              true,
		MemGuard:         true,
		MPAM:             true,
		Duration:         50 * sim.Microsecond,
		Seed:             1,
		KernelPartitions: partitions,
	}
}

// buildHog adds aggressor i at node (on the given cluster) and arms
// the spec's per-hog mechanisms: MemGuard budget, NI shaper, MPAM cap.
func buildHog(p *Platform, spec RunSpec, i int, node noc.Coord, cluster int) error {
	name := fmt.Sprintf("hog%d", i)
	prof, err := trace.NewProfile(spec.HogClass, uint64(1+i)<<30, spec.Seed+uint64(i))
	if err != nil {
		return err
	}
	hog, err := p.AddApp(AppConfig{
		Name: name, Node: node, Cluster: cluster, Scheme: dsu.SchemeID(2 + i%6), Profile: prof,
	})
	if err != nil {
		return err
	}
	if spec.MemGuard {
		if err := p.SetMemBudget(name, 16<<10); err != nil {
			return err
		}
	}
	if spec.Shape {
		if err := p.SetNodeShaper(node, 256, 0.2); err != nil {
			return err
		}
	}
	if spec.MPAM {
		// The arbiter's token bucket holds MaxBytesPerNS * 100ns of
		// credit, so a cap must admit at least one whole request or the
		// partition can never conform. On the clustered platform hogs
		// are homed on channels with no uncapped co-runner, so the cap
		// has to be self-feasible: 0.8 B/ns = an 80-byte burst against
		// 64-byte requests. The legacy scenario keeps its historical
		// 0.15 cap (its single arbiter is shared with crit).
		capBps := 0.15
		if spec.Scaled() {
			capBps = 0.8
		}
		if err := p.ConfigureMPAM(mpam.PARTID(hog.Config().Scheme), mpam.PartitionBW{MaxBytesPerNS: capBps}); err != nil {
			return err
		}
	}
	return nil
}

// StartApps starts every registered app at the current virtual time,
// in registration order.
func (p *Platform) StartApps() {
	for _, name := range p.order {
		p.apps[name].Start()
	}
}

// testRunFailpoint, when non-nil, runs after the simulation horizon
// inside RunSpec.Run — a test seam for proving that a run which
// panics mid-collection still persists its metrics snapshot.
var testRunFailpoint func(*Platform)

// Run builds the platform, runs every app for spec.Duration, and
// collects the result. Each call is fully independent — fresh engine,
// fresh platform, fresh telemetry — so concurrent Runs of different
// specs never share state, and the same spec always reproduces the
// same result.
func (spec RunSpec) Run() (RunResult, error) {
	if spec.MetricsPath != "" || spec.MetricsSink != nil {
		spec.Telemetry = true
	}
	p, crit, err := BuildPlatform(spec)
	if err != nil {
		return RunResult{}, err
	}
	// The snapshot dump runs exactly once: explicitly on the success
	// path (so its error can be reported), or from the defer when the
	// run errors or panics — a failed run's telemetry is exactly the
	// evidence a diagnosis needs, so whatever accumulated is flushed
	// before unwinding.
	snapshotDone := false
	dumpSnapshot := func() error {
		if snapshotDone || p.Telemetry() == nil {
			return nil
		}
		snapshotDone = true
		p.SnapshotMetrics()
		if spec.MetricsSink != nil {
			var buf bytes.Buffer
			if err := p.Telemetry().Registry.WriteOpenMetrics(&buf); err != nil {
				return fmt.Errorf("core: run metrics snapshot: %w", err)
			}
			spec.MetricsSink(buf.Bytes())
		}
		if spec.MetricsPath != "" {
			if err := telemetry.WriteOutput(spec.MetricsPath, p.Telemetry().Registry.WriteOpenMetrics); err != nil {
				return fmt.Errorf("core: run metrics snapshot: %w", err)
			}
		}
		return nil
	}
	defer dumpSnapshot()
	p.StartApps()
	p.RunFor(spec.Duration)
	if testRunFailpoint != nil {
		testRunFailpoint(p)
	}
	res := RunResult{
		Crit:       crit.Stats(),
		RowHitRate: p.RowHitRate(),
	}
	for _, name := range p.order {
		if name == crit.Name() {
			continue
		}
		res.HogStats = append(res.HogStats, p.apps[name].Stats())
	}
	if aud := p.Auditor(); aud != nil {
		if h := aud.App(crit.Name()); h != nil {
			res.CritViolations = h.Violations()
		}
		res.TotalViolations = aud.TotalViolations()
		for _, s := range aud.Snapshot() {
			res.AuditObserved += s.Observed
		}
	}
	if err := dumpSnapshot(); err != nil {
		return res, err
	}
	return res, nil
}
