package core

import (
	"math"
	"testing"

	"repro/internal/audit"
	"repro/internal/sim"
	"repro/internal/trace"
)

// TestAuditHogPushesCritPastBound is the issue's acceptance scenario,
// self-calibrated: the critical app's bound is set to its measured
// solo worst case, so the isolated baseline fires no violation while
// the contended run must blow past it — and every violation's
// attribution stages must sum exactly to its observed latency.
func TestAuditHogPushesCritPastBound(t *testing.T) {
	solo := RunSpec{Hogs: 0, Duration: 2 * sim.Millisecond, HogClass: trace.Infotainment}
	soloRes, err := solo.Run()
	if err != nil {
		t.Fatal(err)
	}
	boundNS := soloRes.Crit.MaxReadLatency.Nanoseconds()
	if boundNS <= 0 {
		t.Fatalf("solo max latency = %v", boundNS)
	}
	bounds := map[string]float64{"crit": boundNS, "hog0": 0, "hog1": 0, "hog2": 0}

	// Isolated baseline under the same bound: no violations.
	solo.Audit = true
	solo.AuditBounds = bounds
	soloAudited, err := solo.Run()
	if err != nil {
		t.Fatal(err)
	}
	if soloAudited.TotalViolations != 0 {
		t.Fatalf("solo run violated its own max: %d violations", soloAudited.TotalViolations)
	}

	// Contended, no mechanism armed: the hogs push crit past the
	// bound. Built directly so OnViolation can be hooked.
	dur := 2 * sim.Millisecond
	p2, crit2, err := BuildPlatform(RunSpec{
		Hogs: 3, Duration: dur, HogClass: trace.Infotainment,
	})
	if err != nil {
		t.Fatal(err)
	}
	var violations []audit.Violation
	if _, err := p2.EnableAudit(AuditOptions{
		Bounds:      bounds,
		OnViolation: func(v audit.Violation) { violations = append(violations, v) },
	}); err != nil {
		t.Fatal(err)
	}
	p2.StartApps()
	p2.RunFor(dur)

	if len(violations) == 0 {
		t.Fatal("contended run produced no bound violations")
	}
	var worst float64
	for _, v := range violations {
		if v.App != "crit" {
			t.Fatalf("violation from %s; only crit is bounded", v.App)
		}
		// Attribution must partition the observation exactly: the
		// stage sum in integer picoseconds equals the observed latency.
		if got := v.Breakdown.Total().Nanoseconds(); got != v.ObservedNS {
			t.Fatalf("stages sum to %vns, observed %vns", got, v.ObservedNS)
		}
		if v.HeadroomNS >= 0 {
			t.Fatalf("violation with non-negative headroom: %+v", v)
		}
		if v.ObservedNS > worst {
			worst = v.ObservedNS
		}
	}
	// The worst violating observation is the app's own measured max —
	// the stamps the breakdown is cut at agree with the independent
	// end-to-end measurement in App.finish.
	if critMax := crit2.Stats().MaxReadLatency.Nanoseconds(); worst != critMax {
		t.Fatalf("worst violation %vns != crit max latency %vns", worst, critMax)
	}
	if n := p2.Auditor().TotalViolations(); n != uint64(len(violations)) {
		t.Fatalf("auditor counted %d, callback saw %d", n, len(violations))
	}
}

// TestAuditAnalyticBoundFinite checks the platform derives a usable
// NC bound for the closed-loop critical app without overrides.
func TestAuditAnalyticBoundFinite(t *testing.T) {
	p, _, err := BuildPlatform(RunSpec{Hogs: 2, Duration: sim.Millisecond, Audit: true})
	if err != nil {
		t.Fatal(err)
	}
	b := p.Auditor().App("crit").Bound()
	if b.DelayBoundNS <= 0 || math.IsInf(b.DelayBoundNS, 1) {
		t.Fatalf("crit analytic bound = %v, want finite positive", b.DelayBoundNS)
	}
}

// TestAuditBudgetCapture checks the MemGuard budget rides along in
// the captured contract.
func TestAuditBudgetCapture(t *testing.T) {
	p, _, err := BuildPlatform(RunSpec{Hogs: 1, Duration: sim.Millisecond, MemGuard: true, Audit: true})
	if err != nil {
		t.Fatal(err)
	}
	if b := p.Auditor().App("hog0").Bound(); b.BudgetBytesPerPeriod != 16<<10 {
		t.Fatalf("hog0 budget = %d, want %d", b.BudgetBytesPerPeriod, 16<<10)
	}
	if b := p.Auditor().App("crit").Bound(); b.BudgetBytesPerPeriod != 0 {
		t.Fatalf("crit budget = %d, want 0 (unregulated)", b.BudgetBytesPerPeriod)
	}
}

// TestAuditHitAttribution checks L3 hits decompose entirely into the
// hit stage.
func TestAuditHitAttribution(t *testing.T) {
	p, crit, err := BuildPlatform(RunSpec{Hogs: 0, Duration: sim.Millisecond, Audit: true})
	if err != nil {
		t.Fatal(err)
	}
	p.StartApps()
	p.RunFor(sim.Millisecond)
	st := crit.Stats()
	if st.L3Hits == 0 {
		t.Skip("profile produced no hits")
	}
	snap := p.Auditor().App("crit").Snapshot()
	hs := snap.Stages[audit.StageL3Hit]
	if hs.TotalPS == 0 {
		t.Fatal("no L3-hit attribution recorded")
	}
	if hs.MaxPS != sim.NS(20) { // DefaultConfig L3HitLatency
		t.Fatalf("hit stage max = %v, want 20ns", hs.MaxPS)
	}
	if snap.Observed == 0 {
		t.Fatal("auditor observed no transactions")
	}
}

// TestAuditRunSpecViolationCounts checks RunSpec.Run surfaces the
// auditor's counters.
func TestAuditRunSpecViolationCounts(t *testing.T) {
	spec := RunSpec{
		Hogs: 2, Duration: sim.Millisecond, HogClass: trace.Infotainment,
		Audit:       true,
		AuditBounds: map[string]float64{"crit": 1, "hog0": 0, "hog1": 0}, // 1ns: everything violates
	}
	res, err := spec.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.CritViolations == 0 || res.TotalViolations != res.CritViolations {
		t.Fatalf("violations = %d/%d, want crit-only nonzero", res.CritViolations, res.TotalViolations)
	}
}
