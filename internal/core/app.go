package core

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/dram"
	"repro/internal/dsu"
	"repro/internal/mpam"
	"repro/internal/noc"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// requestHeaderBytes is the size of a read-request packet on the mesh
// (command + address); the response carries the data.
const requestHeaderBytes = 16

// AppConfig describes one application on the platform.
type AppConfig struct {
	Name string
	// Node is where the app's core sits on the mesh; Cluster selects
	// the shared L3 it allocates into.
	Node    noc.Coord
	Cluster int
	// Scheme is the app's DSU scheme ID (its identification label for
	// cache partitioning; also used as its MPAM-style owner).
	Scheme dsu.SchemeID
	// PARTID labels the app's memory traffic for the MPAM channel;
	// zero defaults to the scheme ID value.
	PARTID mpam.PARTID
	// PMG sub-labels the app within its PARTID for monitoring.
	PMG mpam.PMG
	// Profile drives the access stream.
	Profile *trace.Profile
	// Critical marks the app for reporting.
	Critical bool
}

// AppStats summarizes an app's observed behaviour.
type AppStats struct {
	Issued, L3Hits, L3Misses uint64
	Reads, Writes            uint64
	// Read round-trip latency (issue to data return), in virtual time.
	MeanReadLatency sim.Duration
	MaxReadLatency  sim.Duration
	P95ReadLatency  sim.Duration
	BytesMoved      uint64
}

// App is a closed-loop traffic generator bound to a platform.
type App struct {
	p   *Platform
	cfg AppConfig

	running bool
	count   uint64

	issued, hits, misses uint64
	reads, writes        uint64
	bytes                uint64
	totalLat, maxLat     sim.Duration
	latHist              *telemetry.Histogram

	memTap func(at sim.Time, bytes int)
}

// Config returns the app's configuration.
func (a *App) Config() AppConfig { return a.cfg }

// TapMemory installs a callback invoked for every memory-bound
// transaction the app issues (its cache-miss traffic), with the issue
// time and transfer size — the hook the profiling tooling uses to
// measure empirical arrival curves. Pass nil to remove.
func (a *App) TapMemory(f func(at sim.Time, bytes int)) { a.memTap = f }

// ReadLatencyHistogram exposes the app's read-latency histogram (nil
// until the first read completes) so telemetry registries can adopt
// it without re-recording samples.
func (a *App) ReadLatencyHistogram() *telemetry.Histogram { return a.latHist }

// AddApp registers an application.
func (p *Platform) AddApp(cfg AppConfig) (*App, error) {
	if cfg.Name == "" {
		return nil, fmt.Errorf("core: app needs a name")
	}
	if _, dup := p.apps[cfg.Name]; dup {
		return nil, fmt.Errorf("core: duplicate app %q", cfg.Name)
	}
	if cfg.Cluster < 0 || cfg.Cluster >= len(p.clusters) {
		return nil, fmt.Errorf("core: app %s on cluster %d of %d", cfg.Name, cfg.Cluster, len(p.clusters))
	}
	if !cfg.Scheme.Valid() {
		return nil, fmt.Errorf("core: app %s scheme ID %d invalid", cfg.Name, cfg.Scheme)
	}
	if !p.mesh.InMesh(cfg.Node) {
		return nil, fmt.Errorf("core: app %s node %v outside mesh", cfg.Name, cfg.Node)
	}
	if cfg.Profile == nil || cfg.Profile.Pattern == nil || cfg.Profile.ReqBytes <= 0 {
		return nil, fmt.Errorf("core: app %s needs a valid profile", cfg.Name)
	}
	if cfg.PARTID == 0 {
		cfg.PARTID = mpam.PARTID(cfg.Scheme)
	}
	a := &App{p: p, cfg: cfg}
	p.apps[cfg.Name] = a
	p.order = append(p.order, cfg.Name)
	return a, nil
}

// App returns a registered application.
func (p *Platform) App(name string) (*App, error) {
	a, ok := p.apps[name]
	if !ok {
		return nil, fmt.Errorf("core: unknown app %q", name)
	}
	return a, nil
}

// Apps returns the registered app names in registration order.
func (p *Platform) Apps() []string { return append([]string(nil), p.order...) }

// Name returns the app's name.
func (a *App) Name() string { return a.cfg.Name }

// Start begins the app's closed loop at the current virtual time.
func (a *App) Start() {
	if a.running {
		return
	}
	a.running = true
	a.p.Eng.At(a.p.Eng.Now(), a.step)
}

// Stop halts the loop after the in-flight access completes.
func (a *App) Stop() { a.running = false }

// Stats returns a snapshot of the app's counters.
func (a *App) Stats() AppStats {
	st := AppStats{
		Issued: a.issued, L3Hits: a.hits, L3Misses: a.misses,
		Reads: a.reads, Writes: a.writes,
		MaxReadLatency: a.maxLat, BytesMoved: a.bytes,
	}
	if a.reads > 0 {
		st.MeanReadLatency = a.totalLat / sim.Duration(a.reads)
	}
	st.P95ReadLatency = sim.Duration(a.latHist.Quantile(0.95))
	return st
}

// step issues one access and schedules the next.
func (a *App) step() {
	if !a.running {
		return
	}
	a.count++
	a.issued++
	addr := a.cfg.Profile.Next()
	write := a.cfg.Profile.WriteEvery > 0 && a.count%uint64(a.cfg.Profile.WriteEvery) == 0
	start := a.p.Eng.Now()

	// Software page coloring, when enabled, remaps the address before
	// it reaches the cache.
	if col := a.p.coloring[a.cfg.Cluster]; col != nil {
		addr = col.Translate(cache.Owner(a.cfg.Scheme), addr)
	}

	cl := a.p.clusters[a.cfg.Cluster]
	res := cl.Access(a.cfg.Scheme, addr, write)
	if res.Hit {
		a.hits++
		a.p.Eng.After(a.p.cfg.L3HitLatency, func() {
			a.finish(start, write, false)
		})
		return
	}
	a.misses++

	issue := func() { a.issueMemory(addr, write, start) }
	if a.p.reg != nil {
		// MemGuard meters misses (the traffic that actually reaches
		// memory), per application.
		if err := a.p.reg.Request(a.cfg.Name, a.cfg.Profile.ReqBytes, issue); err == nil {
			return
		}
	}
	issue()
}

// issueMemory sends the miss across the mesh to the memory controller.
func (a *App) issueMemory(addr uint64, write bool, start sim.Time) {
	bank, row := a.p.bankRow(addr)
	ni, err := a.p.mesh.NI(a.cfg.Node)
	if err != nil {
		return
	}
	reqBytes := requestHeaderBytes
	if write {
		reqBytes = a.cfg.Profile.ReqBytes // write carries its data
	}
	if a.memTap != nil {
		a.memTap(a.p.Eng.Now(), a.cfg.Profile.ReqBytes)
	}
	pkt := &noc.Packet{
		Dst:   a.p.cfg.MemoryNode,
		Bytes: reqBytes,
		Flow:  a.cfg.Name,
		OnDelivered: func(sim.Time) {
			a.atMemory(bank, row, write, start)
		},
	}
	if err := ni.Send(pkt); err != nil {
		// Malformed packets cannot happen here; treat as dropped.
		return
	}
	if write {
		// Posted write: the core does not wait for the data to land.
		a.finish(start, true, true)
	}
}

// atMemory runs when the request packet reaches the controller node:
// through the MPAM channel arbiter (when enabled), then the DRAM
// controller.
func (a *App) atMemory(bank int, row int64, write bool, start sim.Time) {
	label := mpam.Label{PARTID: a.cfg.PARTID, PMG: a.cfg.PMG}
	a.p.channelSubmit(label, a.cfg.Profile.ReqBytes, write, func() {
		a.atController(bank, row, write, start)
	})
}

// atController submits the transaction to the DRAM controller.
func (a *App) atController(bank int, row int64, write bool, start sim.Time) {
	op := dram.Read
	if write {
		op = dram.Write
	}
	req := &dram.Request{
		Master: a.cfg.Name,
		Op:     op,
		Bank:   bank,
		Row:    row,
		Size:   a.cfg.Profile.ReqBytes,
	}
	if write {
		a.p.submitDRAM(req, nil) // posted; already accounted
		return
	}
	a.p.submitDRAM(req, func() {
		// Data response travels back to the app's node.
		memNI, err := a.p.mesh.NI(a.p.cfg.MemoryNode)
		if err != nil {
			return
		}
		resp := &noc.Packet{
			Dst:   a.cfg.Node,
			Bytes: a.cfg.Profile.ReqBytes,
			Flow:  a.cfg.Name + ":resp",
			OnDelivered: func(sim.Time) {
				a.finish(start, false, true)
			},
		}
		_ = memNI.Send(resp)
	})
}

// finish records one access and schedules the next step after the
// profile's think time.
func (a *App) finish(start sim.Time, write, toMemory bool) {
	now := a.p.Eng.Now()
	if write {
		a.writes++
	} else {
		a.reads++
		lat := now - start
		a.totalLat += lat
		if lat > a.maxLat {
			a.maxLat = lat
		}
		if a.latHist == nil {
			a.latHist = telemetry.NewHistogram()
		}
		a.latHist.Record(int64(lat))
	}
	if toMemory {
		a.bytes += uint64(a.cfg.Profile.ReqBytes)
	}
	if !a.running {
		return
	}
	delay := a.cfg.Profile.Think
	if delay <= 0 {
		delay = 1
	}
	a.p.Eng.After(delay, a.step)
}
