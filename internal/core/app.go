package core

import (
	"fmt"

	"repro/internal/audit"
	"repro/internal/cache"
	"repro/internal/dram"
	"repro/internal/dsu"
	"repro/internal/memguard"
	"repro/internal/mpam"
	"repro/internal/noc"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// requestHeaderBytes is the size of a read-request packet on the mesh
// (command + address); the response carries the data.
const requestHeaderBytes = 16

// AppConfig describes one application on the platform.
type AppConfig struct {
	Name string
	// Node is where the app's core sits on the mesh; Cluster selects
	// the shared L3 it allocates into. On a clustered platform the node
	// must sit inside the cluster's column slab.
	Node    noc.Coord
	Cluster int
	// Scheme is the app's DSU scheme ID (its identification label for
	// cache partitioning; also used as its MPAM-style owner).
	Scheme dsu.SchemeID
	// PARTID labels the app's memory traffic for the MPAM channel;
	// zero defaults to the scheme ID value.
	PARTID mpam.PARTID
	// PMG sub-labels the app within its PARTID for monitoring.
	PMG mpam.PMG
	// Profile drives the access stream.
	Profile *trace.Profile
	// Critical marks the app for reporting.
	Critical bool
}

// AppStats summarizes an app's observed behaviour.
type AppStats struct {
	Issued, L3Hits, L3Misses uint64
	Reads, Writes            uint64
	// Read round-trip latency (issue to data return), in virtual time.
	MeanReadLatency sim.Duration
	MaxReadLatency  sim.Duration
	P95ReadLatency  sim.Duration
	BytesMoved      uint64
}

// App is a closed-loop traffic generator bound to a platform.
type App struct {
	p   *Platform
	cfg AppConfig

	// eng is the engine owning the app's mesh node — the platform
	// engine on the legacy shape, the node's slab engine under a
	// partitioned clustered fabric. Everything the app schedules on its
	// own behalf goes here.
	eng *sim.Engine
	// reg is the app's cluster's MemGuard regulator (nil when
	// regulation is disabled).
	reg *memguard.Regulator

	running bool
	count   uint64

	issued, hits, misses uint64
	reads, writes        uint64
	bytes                uint64
	totalLat, maxLat     sim.Duration
	latHist              *telemetry.Histogram

	memTap func(at sim.Time, bytes int)

	// aud is the app's runtime-auditor handle (nil unless the platform
	// has EnableAudit); completed transactions report their per-stage
	// latency decomposition through it.
	aud *audit.AppAuditor

	// Hot-path caches: the app's NI (fixed after AddApp), the response
	// flow label, the step callback bound once, and the free list of
	// recycled transactions — in steady state an access allocates
	// nothing.
	ni       *noc.NI
	respFlow string
	stepFn   sim.Event
	txnFree  []*txn
}

// txn carries one access through the platform: caches → (MemGuard) →
// mesh → (MPAM channel) → DRAM → response. The request, both packets,
// and the MPAM channel request are embedded by value, and every
// continuation along the chain is bound once when the txn is first
// built, so the per-access hot path performs zero heap allocations
// after the pool warms up. A txn is recycled when its last leg
// completes (hit latency served, read response delivered, or posted
// write retired by the controller).
//
// On a clustered platform the chain changes engines twice: the request
// packet's delivery hands the txn to the channel node's engine (where
// arbitration, DRAM service, and the response send run), and the
// response delivery hands it back to the app's engine. Posted-write
// retirement crosses back via the controller's CompleteOn machinery so
// the pool is only ever touched from the app's engine.
type txn struct {
	a     *App
	ch    *memChannel
	bank  int
	row   int64
	write bool
	start sim.Time
	// issueAt and memAt stamp the regulator grant and the request
	// packet's arrival at the memory node; with the DRAM request's own
	// Arrival/Service/Completion stamps they let the auditor partition
	// the round trip into stages exactly (integer picoseconds).
	issueAt sim.Time
	memAt   sim.Time

	req     dram.Request
	reqPkt  noc.Packet
	respPkt noc.Packet
	bwReq   mpam.BWRequest

	hitFn       sim.Event
	issueFn     func()
	onReqDeliv  func(sim.Time)
	onBWDone    func(sim.Time)
	ctrlFn      func()
	onDRAMDone  func()
	onRespDeliv func(sim.Time)
	releaseFn   func()
}

// acquireTxn takes a transaction from the free list, building (and
// binding the continuations of) a fresh one only when the pool is
// empty.
func (a *App) acquireTxn() *txn {
	if n := len(a.txnFree); n > 0 {
		t := a.txnFree[n-1]
		a.txnFree = a.txnFree[:n-1]
		return t
	}
	t := &txn{a: a}
	t.hitFn = t.hit
	t.issueFn = t.issue
	t.onReqDeliv = func(sim.Time) { t.atMemory() }
	t.onBWDone = func(sim.Time) { t.atController() }
	t.ctrlFn = t.atController
	t.onDRAMDone = t.sendResponse
	t.onRespDeliv = func(sim.Time) { t.finishRead() }
	t.releaseFn = func() { t.a.releaseTxn(t) }
	return t
}

// releaseTxn recycles a finished transaction.
func (a *App) releaseTxn(t *txn) { a.txnFree = append(a.txnFree, t) }

// Config returns the app's configuration.
func (a *App) Config() AppConfig { return a.cfg }

// TapMemory installs a callback invoked for every memory-bound
// transaction the app issues (its cache-miss traffic), with the issue
// time and transfer size — the hook the profiling tooling uses to
// measure empirical arrival curves. Pass nil to remove.
func (a *App) TapMemory(f func(at sim.Time, bytes int)) { a.memTap = f }

// ReadLatencyHistogram exposes the app's read-latency histogram (nil
// until the first read completes) so telemetry registries can adopt
// it without re-recording samples.
func (a *App) ReadLatencyHistogram() *telemetry.Histogram { return a.latHist }

// AddApp registers an application.
func (p *Platform) AddApp(cfg AppConfig) (*App, error) {
	if cfg.Name == "" {
		return nil, fmt.Errorf("core: app needs a name")
	}
	if _, dup := p.apps[cfg.Name]; dup {
		return nil, fmt.Errorf("core: duplicate app %q", cfg.Name)
	}
	if cfg.Cluster < 0 || cfg.Cluster >= len(p.clusters) {
		return nil, fmt.Errorf("core: app %s on cluster %d of %d", cfg.Name, cfg.Cluster, len(p.clusters))
	}
	if !cfg.Scheme.Valid() {
		return nil, fmt.Errorf("core: app %s scheme ID %d invalid", cfg.Name, cfg.Scheme)
	}
	if !p.mesh.InMesh(cfg.Node) {
		return nil, fmt.Errorf("core: app %s node %v outside mesh", cfg.Name, cfg.Node)
	}
	if p.distributed {
		if own := p.ClusterOfColumn(cfg.Node.X); own != cfg.Cluster {
			return nil, fmt.Errorf("core: app %s at %v sits in cluster %d's slab, not cluster %d",
				cfg.Name, cfg.Node, own, cfg.Cluster)
		}
	}
	if cfg.Profile == nil || cfg.Profile.Pattern == nil || cfg.Profile.ReqBytes <= 0 {
		return nil, fmt.Errorf("core: app %s needs a valid profile", cfg.Name)
	}
	if cfg.PARTID == 0 {
		cfg.PARTID = mpam.PARTID(cfg.Scheme)
	}
	a := &App{p: p, cfg: cfg}
	a.stepFn = a.step
	a.respFlow = cfg.Name + ":resp"
	a.ni, _ = p.mesh.NI(cfg.Node)
	a.eng = p.mesh.EngineAt(cfg.Node)
	a.reg = p.ClusterRegulator(cfg.Cluster)
	p.apps[cfg.Name] = a
	p.order = append(p.order, cfg.Name)
	if p.aud != nil {
		p.registerAudit(a)
	}
	return a, nil
}

// App returns a registered application.
func (p *Platform) App(name string) (*App, error) {
	a, ok := p.apps[name]
	if !ok {
		return nil, fmt.Errorf("core: unknown app %q", name)
	}
	return a, nil
}

// Apps returns the registered app names in registration order.
func (p *Platform) Apps() []string { return append([]string(nil), p.order...) }

// Name returns the app's name.
func (a *App) Name() string { return a.cfg.Name }

// Start begins the app's closed loop at the current virtual time.
func (a *App) Start() {
	if a.running {
		return
	}
	a.running = true
	a.eng.At(a.eng.Now(), a.stepFn)
}

// Stop halts the loop after the in-flight access completes.
func (a *App) Stop() { a.running = false }

// Stats returns a snapshot of the app's counters.
func (a *App) Stats() AppStats {
	st := AppStats{
		Issued: a.issued, L3Hits: a.hits, L3Misses: a.misses,
		Reads: a.reads, Writes: a.writes,
		MaxReadLatency: a.maxLat, BytesMoved: a.bytes,
	}
	if a.reads > 0 {
		st.MeanReadLatency = a.totalLat / sim.Duration(a.reads)
	}
	st.P95ReadLatency = sim.Duration(a.latHist.Quantile(0.95))
	return st
}

// step issues one access and schedules the next.
func (a *App) step() {
	if !a.running {
		return
	}
	a.count++
	a.issued++
	addr := a.cfg.Profile.Next()
	write := a.cfg.Profile.WriteEvery > 0 && a.count%uint64(a.cfg.Profile.WriteEvery) == 0
	start := a.eng.Now()

	// Software page coloring, when enabled, remaps the address before
	// it reaches the cache.
	if col := a.p.coloring[a.cfg.Cluster]; col != nil {
		addr = col.Translate(cache.Owner(a.cfg.Scheme), addr)
	}

	cl := a.p.clusters[a.cfg.Cluster]
	res := cl.AccessHier(a.cfg.Scheme, addr, write)
	t := a.acquireTxn()
	t.write = write
	t.start = start
	if res.Hit() {
		a.hits++
		lat := a.p.cfg.L3HitLatency
		if res.Level == 2 {
			lat = a.p.cfg.L2HitLatency
		}
		a.eng.After(lat, t.hitFn)
		return
	}
	a.misses++
	t.ch, t.bank, t.row = a.p.route(addr, a.cfg.Cluster)

	if a.reg != nil {
		// MemGuard meters misses (the traffic that actually reaches
		// memory), per application.
		if err := a.reg.Request(a.cfg.Name, a.cfg.Profile.ReqBytes, t.issueFn); err == nil {
			return
		}
	}
	t.issue()
}

// hit completes a cache-hit access after the hit latency.
func (t *txn) hit() {
	a := t.a
	if a.aud != nil {
		var b audit.Breakdown
		b[audit.StageL3Hit] = a.eng.Now() - t.start
		a.aud.Observe(a.eng.Now(), b)
	}
	a.finish(t.start, t.write, false)
	a.releaseTxn(t)
}

// issue sends the miss across the mesh to its memory channel.
func (t *txn) issue() {
	a := t.a
	t.issueAt = a.eng.Now()
	if a.ni == nil {
		a.releaseTxn(t)
		return
	}
	reqBytes := requestHeaderBytes
	if t.write {
		reqBytes = a.cfg.Profile.ReqBytes // write carries its data
	}
	if a.memTap != nil {
		a.memTap(a.eng.Now(), a.cfg.Profile.ReqBytes)
	}
	t.reqPkt = noc.Packet{
		Dst:         t.ch.node,
		Bytes:       reqBytes,
		Flow:        a.cfg.Name,
		OnDelivered: t.onReqDeliv,
	}
	if err := a.ni.Send(&t.reqPkt); err != nil {
		// Malformed packets cannot happen here; treat as dropped.
		a.releaseTxn(t)
		return
	}
	if t.write {
		// Posted write: the core does not wait for the data to land.
		a.finish(t.start, true, true)
	}
}

// atMemory runs when the request packet reaches the channel node (on
// that node's engine): through the channel's MPAM arbiter (when
// enabled), then the DRAM controller.
func (t *txn) atMemory() {
	a := t.a
	t.memAt = t.ch.eng.Now()
	t.bwReq = mpam.BWRequest{
		Label:  mpam.Label{PARTID: a.cfg.PARTID, PMG: a.cfg.PMG},
		Bytes:  a.cfg.Profile.ReqBytes,
		Write:  t.write,
		OnDone: t.onBWDone,
	}
	a.p.channelSubmit(t.ch, &t.bwReq, t.ctrlFn)
}

// atController submits the transaction to its channel's DRAM
// controller.
func (t *txn) atController() {
	a := t.a
	op := dram.Read
	if t.write {
		op = dram.Write
	}
	t.req = dram.Request{
		Master: a.cfg.Name,
		Op:     op,
		Bank:   t.bank,
		Row:    t.row,
		Size:   a.cfg.Profile.ReqBytes,
	}
	if t.write {
		// Posted; already accounted — completion just recycles the txn,
		// on the app's engine (a cross-partition hop when the channel
		// sits on another slab; synchronous and byte-identical to a nil
		// CompleteOn when it does not).
		t.req.CompleteOn = a.eng
		t.req.OnComplete = t.releaseFn
		a.p.submitDRAM(t.ch, &t.req)
		return
	}
	t.req.OnComplete = t.onDRAMDone
	a.p.submitDRAM(t.ch, &t.req)
}

// sendResponse runs at read completion (on the channel's engine): the
// data travels back to the app's node.
func (t *txn) sendResponse() {
	a := t.a
	if t.ch.ni == nil {
		a.releaseTxn(t)
		return
	}
	t.respPkt = noc.Packet{
		Dst:         a.cfg.Node,
		Bytes:       a.cfg.Profile.ReqBytes,
		Flow:        a.respFlow,
		OnDelivered: t.onRespDeliv,
	}
	if t.ch.ni.Send(&t.respPkt) != nil {
		a.releaseTxn(t)
	}
}

// finishRead completes the round trip when the response lands (back on
// the app's engine).
func (t *txn) finishRead() {
	a := t.a
	if a.aud != nil {
		a.aud.Observe(a.eng.Now(), t.breakdown(a.eng.Now()))
	}
	a.finish(t.start, false, true)
	a.releaseTxn(t)
}

// breakdown partitions a completed read's round trip [start, now]
// into the auditor's attribution stages. The stages are exact integer
// picosecond spans cut at the transaction's own stamps, so they always
// sum to the observed end-to-end latency:
//
//	regulator stall | NoC request | channel arbitration (MPAM wait
//	plus full-queue backpressure retries) | DRAM bank queue | DRAM
//	service | NoC response
func (t *txn) breakdown(now sim.Time) audit.Breakdown {
	var b audit.Breakdown
	b[audit.StageMemGuard] = t.issueAt - t.start
	b[audit.StageNoCRequest] = t.memAt - t.issueAt
	b[audit.StageChannel] = t.req.Arrival - t.memAt
	b[audit.StageDRAMQueue] = t.req.Completion - t.req.Arrival - t.req.Service
	b[audit.StageDRAMService] = t.req.Service
	b[audit.StageNoCResponse] = now - t.req.Completion
	return b
}

// finish records one access and schedules the next step after the
// profile's think time.
func (a *App) finish(start sim.Time, write, toMemory bool) {
	now := a.eng.Now()
	if write {
		a.writes++
	} else {
		a.reads++
		lat := now - start
		a.totalLat += lat
		if lat > a.maxLat {
			a.maxLat = lat
		}
		if a.latHist == nil {
			a.latHist = telemetry.NewHistogram()
		}
		a.latHist.Record(int64(lat))
	}
	if toMemory {
		a.bytes += uint64(a.cfg.Profile.ReqBytes)
	}
	if !a.running {
		return
	}
	delay := a.cfg.Profile.Think
	if delay <= 0 {
		delay = 1
	}
	a.eng.After(delay, a.stepFn)
}
