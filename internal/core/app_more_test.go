package core

import (
	"testing"

	"repro/internal/dram"
	"repro/internal/noc"
	"repro/internal/sim"
	"repro/internal/trace"
)

func TestPostedWritesDoNotBlockTheLoop(t *testing.T) {
	// A write-heavy app with a cache-hostile pattern: writes are
	// posted, so the loop advances at think-time pace rather than
	// round-trip pace.
	p := newPlatform(t, nil)
	pat, err := trace.NewStrided(0, 32<<20, 1<<14)
	if err != nil {
		t.Fatal(err)
	}
	a, err := p.AddApp(AppConfig{
		Name: "writer", Node: noc.Coord{X: 0, Y: 0}, Cluster: 0, Scheme: 1,
		Profile: &trace.Profile{Pattern: pat, ReqBytes: 64, Think: sim.NS(50), WriteEvery: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	a.Start()
	p.RunFor(100 * sim.Microsecond)
	st := a.Stats()
	if st.Writes == 0 || st.Reads != 0 {
		t.Fatalf("stats = %+v, want all writes", st)
	}
	// ~100us / ~50ns think = ~2000 issues if posted; far fewer if the
	// loop waited for DRAM round trips.
	if st.Issued < 1000 {
		t.Errorf("posted writes appear blocking: only %d issued", st.Issued)
	}
	// The writes did reach the DRAM controller.
	ms := p.Memory().Stats().Master("writer")
	if ms.Writes == 0 {
		t.Error("no DRAM writes recorded")
	}
}

func TestBankRowMapping(t *testing.T) {
	p := newPlatform(t, nil)
	// RowBytes 2048, 8 banks: address 0 -> bank 0 row 0; 2048 -> bank
	// 1 row 0; 8*2048 -> bank 0 row 1.
	cases := []struct {
		addr uint64
		bank int
		row  int64
	}{
		{0, 0, 0},
		{2048, 1, 0},
		{2048 * 7, 7, 0},
		{2048 * 8, 0, 1},
		{2048*8 + 64, 0, 1},
		{2048 * 17, 1, 2},
	}
	for _, c := range cases {
		b, r := p.bankRow(c.addr)
		if b != c.bank || r != c.row {
			t.Errorf("bankRow(%#x) = (%d,%d), want (%d,%d)", c.addr, b, r, c.bank, c.row)
		}
	}
}

func TestSubmitDRAMBackpressureRetries(t *testing.T) {
	// Saturate the controller's read queue directly, then make an app
	// issue: its request must eventually complete via the retry path.
	cfg := DefaultConfig()
	cfg.Memory.ReadQueueCap = 2
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Fill the queue from the side.
	for i := 0; i < 8; i++ {
		req := &dram.Request{Op: dram.Read, Bank: 0, Row: int64(i)}
		p.submitDRAM(p.chans[0], req)
	}
	pat, err := trace.NewStrided(0, 32<<20, 1<<14)
	if err != nil {
		t.Fatal(err)
	}
	a, err := p.AddApp(AppConfig{
		Name: "rdr", Node: noc.Coord{X: 0, Y: 0}, Cluster: 0, Scheme: 1,
		Profile: &trace.Profile{Pattern: pat, ReqBytes: 64, Think: sim.Microsecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	a.Start()
	p.RunFor(200 * sim.Microsecond)
	if a.Stats().Reads == 0 {
		t.Error("app starved permanently by controller backpressure")
	}
}

func TestMemTapObservesMissTraffic(t *testing.T) {
	p := newPlatform(t, nil)
	pat, err := trace.NewStrided(0, 32<<20, 1<<14)
	if err != nil {
		t.Fatal(err)
	}
	a, err := p.AddApp(AppConfig{
		Name: "x", Node: noc.Coord{X: 0, Y: 0}, Cluster: 0, Scheme: 1,
		Profile: &trace.Profile{Pattern: pat, ReqBytes: 64, Think: sim.NS(100)},
	})
	if err != nil {
		t.Fatal(err)
	}
	var taps int
	var lastAt sim.Time
	a.TapMemory(func(at sim.Time, bytes int) {
		taps++
		if at < lastAt {
			t.Error("tap times not monotone")
		}
		lastAt = at
		if bytes != 64 {
			t.Errorf("tap bytes = %d", bytes)
		}
	})
	a.Start()
	p.RunFor(50 * sim.Microsecond)
	if taps == 0 {
		t.Fatal("tap never fired")
	}
	if uint64(taps) != a.Stats().L3Misses {
		t.Errorf("taps %d != misses %d", taps, a.Stats().L3Misses)
	}
	a.TapMemory(nil) // removable
	if a.Config().Name != "x" {
		t.Error("Config accessor broken")
	}
}

func TestSecondClusterIndependent(t *testing.T) {
	// Apps on different clusters do not share L3 state.
	p := newPlatform(t, nil)
	prof0, _ := trace.NewProfile(trace.ControlLoop, 0, 1)
	prof1, _ := trace.NewProfile(trace.ControlLoop, 0, 2) // same addresses!
	a0, err := p.AddApp(AppConfig{Name: "c0", Node: noc.Coord{X: 0, Y: 0}, Cluster: 0, Scheme: 1, Profile: prof0})
	if err != nil {
		t.Fatal(err)
	}
	a1, err := p.AddApp(AppConfig{Name: "c1", Node: noc.Coord{X: 0, Y: 1}, Cluster: 1, Scheme: 1, Profile: prof1})
	if err != nil {
		t.Fatal(err)
	}
	a0.Start()
	a1.Start()
	p.RunFor(sim.Millisecond)
	cl0, _ := p.Cluster(0)
	cl1, _ := p.Cluster(1)
	if cl0.L3().Occupancy(1) == 0 || cl1.L3().Occupancy(1) == 0 {
		t.Error("clusters did not each cache their app's lines")
	}
	// Each app's footprint is its own: both warmed the same 32KiB.
	if got0, got1 := cl0.L3().Occupancy(1), cl1.L3().Occupancy(1); got0 != got1 {
		t.Errorf("cluster occupancies differ: %d vs %d", got0, got1)
	}
}
