package core

import (
	"crypto/sha256"
	"fmt"
	"testing"

	"repro/internal/noc"
	"repro/internal/sim"
)

// The big-mesh scenario is the clustered platform's acceptance
// workload: 16x16 mesh, 8 clusters, 8 DRAM channels, 512 apps. These
// tests pin its two load-bearing properties — the structure really is
// distributed (per-cluster resources on their own slabs), and the run
// is byte-identical at every partition count.

func bigMeshIdentitySpec(partitions int) RunSpec {
	spec := BigMeshSpec(partitions)
	spec.Duration = 10 * sim.Microsecond // identity needs coverage, not length
	spec.Telemetry = true
	spec.Audit = true
	return spec
}

// fingerprintRun executes the spec and hashes everything observable:
// the metrics snapshot plus the full result struct.
func fingerprintRun(t *testing.T, spec RunSpec) (string, RunResult) {
	t.Helper()
	var metrics []byte
	spec.MetricsSink = func(b []byte) { metrics = b }
	res, err := spec.Run()
	if err != nil {
		t.Fatalf("partitions=%d: %v", spec.KernelPartitions, err)
	}
	if len(metrics) == 0 {
		t.Fatalf("partitions=%d: no metrics snapshot", spec.KernelPartitions)
	}
	h := sha256.New()
	h.Write(metrics)
	fmt.Fprintf(h, "%+v", res)
	return fmt.Sprintf("%x", h.Sum(nil)), res
}

// TestBigMeshByteIdentity: the scenario's metrics dump and results are
// byte-identical on the sequential engine and at kernel partition
// counts 1/2/4/8. This holds by construction — channel-aware placement
// keeps every cluster's memory path inside its own slab, so there is
// no cross-partition traffic whose same-instant arbitration could
// diverge — and this test is the check that construction argument
// stays true as the platform evolves.
func TestBigMeshByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("big-mesh identity sweep is seconds-long")
	}
	want, res := fingerprintRun(t, bigMeshIdentitySpec(0))
	if res.Crit.Issued == 0 {
		t.Fatal("critical app issued nothing; scenario is vacuous")
	}
	if len(res.HogStats) < 500 {
		t.Fatalf("only %d hogs; acceptance floor is 500+ apps", len(res.HogStats))
	}
	var active int
	for _, h := range res.HogStats {
		if h.Issued > 0 {
			active++
		}
	}
	if active < 500 {
		t.Fatalf("only %d hogs issued traffic", active)
	}
	for _, parts := range []int{1, 2, 4, 8} {
		got, _ := fingerprintRun(t, bigMeshIdentitySpec(parts))
		if got != want {
			t.Errorf("partitions=%d fingerprint %s != sequential %s", parts, got, want)
		}
	}
}

// TestBigMeshStructure pins the distributed shape: one controller per
// channel on its own slab engine, per-cluster regulators, home
// channels resolving inside the owning cluster's columns, and the
// partition plan keeping clusters atomic for every partition count.
func TestBigMeshStructure(t *testing.T) {
	spec := BigMeshSpec(8)
	p, _, err := BuildPlatform(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Distributed() {
		t.Fatal("big-mesh platform not distributed")
	}
	if p.Channels() != 8 {
		t.Fatalf("channels = %d, want 8", p.Channels())
	}
	if got := len(p.Apps()); got < 500 {
		t.Fatalf("apps = %d, want >= 500", got)
	}
	plan := p.Plan()
	if plan.Partitions != 8 {
		t.Fatalf("plan partitions = %d, want 8", plan.Partitions)
	}
	for k := 0; k < 8; k++ {
		if p.ClusterRegulator(k) == nil {
			t.Fatalf("cluster %d has no regulator", k)
		}
		if k > 0 && p.ClusterRegulator(k) == p.ClusterRegulator(k-1) {
			t.Fatalf("clusters %d and %d share a regulator", k-1, k)
		}
		// Home channel node inside the cluster's slab: every miss stays
		// on the cluster's own columns, hence its own partition.
		home := p.HomeChannel(k)
		node, err := p.ChannelNode(home)
		if err != nil {
			t.Fatal(err)
		}
		if got := p.ClusterOfColumn(node.X); got != k {
			t.Errorf("cluster %d home channel %d sits at %v in cluster %d's slab", k, home, node, got)
		}
	}
	// Cluster atomicity: for every partition count, both columns of a
	// cluster land in the same partition.
	for _, n := range []int{2, 3, 4, 5, 8} {
		pl := PlanPartitionsClustered(p.cfg.Mesh, p.cfg.MemoryNode, 8, n)
		for k := 0; k < 8; k++ {
			left := pl.Assign(noc.Coord{X: 2 * k, Y: 0})
			right := pl.Assign(noc.Coord{X: 2*k + 1, Y: 15})
			if left != right {
				t.Errorf("n=%d: cluster %d straddles partitions %d/%d", n, k, left, right)
			}
		}
	}
	// Per-channel controllers are distinct and hold distinct engines
	// across slabs.
	c0, _ := p.ChannelController(0)
	c7, _ := p.ChannelController(7)
	if c0 == c7 {
		t.Fatal("channels share a controller")
	}
	if p.chans[0].eng == p.chans[7].eng {
		t.Error("channels on different slabs share an engine under an 8-way cut")
	}
}

// TestBigMeshChannelsBalanceTraffic: after a run, every channel's
// controller has served requests — the scale-out actually spreads
// load, rather than funnelling 500 apps into one controller.
func TestBigMeshChannelsBalanceTraffic(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the big-mesh scenario")
	}
	spec := BigMeshSpec(0)
	spec.Duration = 5 * sim.Microsecond
	p, _, err := BuildPlatform(spec)
	if err != nil {
		t.Fatal(err)
	}
	p.StartApps()
	p.RunFor(spec.Duration)
	for i := 0; i < p.Channels(); i++ {
		ctrl, _ := p.ChannelController(i)
		st := ctrl.Stats()
		if st.RowHits+st.RowClosed+st.RowConflicts == 0 {
			t.Errorf("channel %d served no traffic", i)
		}
	}
}
