package core

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/noc"
	"repro/internal/sim"
	"repro/internal/trace"
)

// The platform-level determinism contract of the parallel kernel:
// RunSpec.KernelPartitions must never change the simulated outcome.
// Every partition count produces the same RunResult and the same
// metrics snapshot, byte for byte — the property the socsim goldens
// (and the CI diff of `socsim -parallel N` against sequential) pin.

// runWithPartitions executes one fixed contention scenario and returns
// the result plus the captured OpenMetrics snapshot.
func runWithPartitions(t *testing.T, parts int) (RunResult, []byte) {
	t.Helper()
	var snap []byte
	spec := RunSpec{
		Hogs: 3, HogClass: trace.Infotainment,
		DSU: true, MemGuard: true, MPAM: true,
		Duration: 100 * sim.Microsecond, Seed: 11,
		KernelPartitions: parts,
		MetricsSink:      func(b []byte) { snap = b },
	}
	res, err := spec.Run()
	if err != nil {
		t.Fatalf("run with %d kernel partitions: %v", parts, err)
	}
	return res, snap
}

// TestRunKernelPartitionsByteIdentity: results and metrics snapshots
// are byte-identical across kernel partition counts 0 (sequential
// engine) and 1/2/4/8 (Parallel kernel).
func TestRunKernelPartitionsByteIdentity(t *testing.T) {
	want, wantSnap := runWithPartitions(t, 0)
	if want.Crit.Issued == 0 || len(wantSnap) == 0 {
		t.Fatal("degenerate sequential reference run")
	}
	for _, parts := range []int{1, 2, 4, 8} {
		got, snap := runWithPartitions(t, parts)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("KernelPartitions=%d RunResult diverged from sequential:\ngot:  %+v\nwant: %+v", parts, got, want)
		}
		if !bytes.Equal(snap, wantSnap) {
			t.Errorf("KernelPartitions=%d metrics snapshot diverged from sequential (%d vs %d bytes)", parts, len(snap), len(wantSnap))
		}
	}
}

// TestPlatformKernelWiring pins how Config.Partitions assembles the
// kernel: the platform engine is the cut's home partition (the slab
// holding the memory node), the lookahead is the mesh FlitTime, and
// the barrier loop actually turns rounds.
func TestPlatformKernelWiring(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Partitions = 4
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	par := p.Kernel()
	if par == nil {
		t.Fatal("Partitions=4 built no kernel")
	}
	if got := par.Partitions(); got != 4 {
		t.Fatalf("kernel has %d partitions, want 4", got)
	}
	if got, want := par.Lookahead(), cfg.Mesh.FlitTime; got != want {
		t.Errorf("lookahead %v, want FlitTime %v", got, want)
	}
	plan := p.Plan()
	// Memory node (3,3) on a 4-wide mesh cut into 4 column slabs lives
	// in the rightmost slab.
	if plan.Home != 3 {
		t.Errorf("home partition %d, want 3 (memory node's column slab)", plan.Home)
	}
	if p.Eng != par.Partition(plan.Home) {
		t.Error("platform engine is not the home partition")
	}
	if got := plan.Assign(noc.Coord{X: 0, Y: 2}); got != 0 {
		t.Errorf("column 0 assigned to partition %d, want 0", got)
	}

	fired := false
	p.Eng.At(100, func() { fired = true })
	p.RunFor(sim.Microsecond)
	if !fired {
		t.Error("home-partition event did not fire through the kernel run loop")
	}
	if par.Rounds() == 0 {
		t.Error("kernel turned no rounds")
	}
	for i := 0; i < 4; i++ {
		if now := par.Partition(i).Now(); now != sim.Time(sim.Microsecond) {
			t.Errorf("partition %d clock %v after RunFor, want %v", i, now, sim.Microsecond)
		}
	}
}

// TestPlanPartitionsClamps: more partitions than mesh columns clamp to
// one slab per column (no empty slabs), and a plain sequential config
// keeps Partitions 0 semantics.
func TestPlanPartitionsClamps(t *testing.T) {
	mesh := noc.DefaultConfig() // 4 wide
	pl := PlanPartitions(mesh, noc.Coord{X: 3, Y: 3}, 16)
	if pl.Partitions != mesh.Width {
		t.Errorf("planned %d partitions on a %d-wide mesh, want clamp to width", pl.Partitions, mesh.Width)
	}
	if pl.Lookahead != mesh.FlitTime {
		t.Errorf("lookahead %v, want FlitTime %v", pl.Lookahead, mesh.FlitTime)
	}
	cfg := DefaultConfig()
	cfg.Partitions = -1
	if err := cfg.Validate(); err == nil {
		t.Error("negative Partitions accepted")
	}
	if (RunSpec{Duration: sim.Millisecond, KernelPartitions: -2}).Validate() == nil {
		t.Error("negative KernelPartitions accepted")
	}
}
