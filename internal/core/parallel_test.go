package core

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/noc"
	"repro/internal/sim"
	"repro/internal/trace"
)

// The platform-level determinism contract of the parallel kernel:
// RunSpec.KernelPartitions must never change the simulated outcome.
// Every partition count produces the same RunResult and the same
// metrics snapshot, byte for byte — the property the socsim goldens
// (and the CI diff of `socsim -parallel N` against sequential) pin.

// runWithPartitions executes one fixed contention scenario and returns
// the result plus the captured OpenMetrics snapshot.
func runWithPartitions(t *testing.T, parts int) (RunResult, []byte) {
	t.Helper()
	var snap []byte
	spec := RunSpec{
		Hogs: 3, HogClass: trace.Infotainment,
		DSU: true, MemGuard: true, MPAM: true,
		Duration: 100 * sim.Microsecond, Seed: 11,
		KernelPartitions: parts,
		MetricsSink:      func(b []byte) { snap = b },
	}
	res, err := spec.Run()
	if err != nil {
		t.Fatalf("run with %d kernel partitions: %v", parts, err)
	}
	return res, snap
}

// TestRunKernelPartitionsByteIdentity: results and metrics snapshots
// are byte-identical across kernel partition counts 0 (sequential
// engine) and 1/2/4/8 (Parallel kernel).
func TestRunKernelPartitionsByteIdentity(t *testing.T) {
	want, wantSnap := runWithPartitions(t, 0)
	if want.Crit.Issued == 0 || len(wantSnap) == 0 {
		t.Fatal("degenerate sequential reference run")
	}
	for _, parts := range []int{1, 2, 4, 8} {
		got, snap := runWithPartitions(t, parts)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("KernelPartitions=%d RunResult diverged from sequential:\ngot:  %+v\nwant: %+v", parts, got, want)
		}
		if !bytes.Equal(snap, wantSnap) {
			t.Errorf("KernelPartitions=%d metrics snapshot diverged from sequential (%d vs %d bytes)", parts, len(snap), len(wantSnap))
		}
	}
}

// TestPlatformKernelWiring pins how Config.Partitions assembles the
// kernel: the platform engine is the cut's home partition (the slab
// holding the memory node), the lookahead is the mesh FlitTime, and
// the barrier loop actually turns rounds.
func TestPlatformKernelWiring(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Partitions = 4
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	par := p.Kernel()
	if par == nil {
		t.Fatal("Partitions=4 built no kernel")
	}
	if got := par.Partitions(); got != 4 {
		t.Fatalf("kernel has %d partitions, want 4", got)
	}
	if got, want := par.Lookahead(), cfg.Mesh.FlitTime; got != want {
		t.Errorf("lookahead %v, want FlitTime %v", got, want)
	}
	plan := p.Plan()
	// Memory node (3,3) on a 4-wide mesh cut into 4 column slabs lives
	// in the rightmost slab.
	if plan.Home != 3 {
		t.Errorf("home partition %d, want 3 (memory node's column slab)", plan.Home)
	}
	if p.Eng != par.Partition(plan.Home) {
		t.Error("platform engine is not the home partition")
	}
	if got := plan.Assign(noc.Coord{X: 0, Y: 2}); got != 0 {
		t.Errorf("column 0 assigned to partition %d, want 0", got)
	}

	fired := false
	p.Eng.At(100, func() { fired = true })
	p.RunFor(sim.Microsecond)
	if !fired {
		t.Error("home-partition event did not fire through the kernel run loop")
	}
	if par.Rounds() == 0 {
		t.Error("kernel turned no rounds")
	}
	for i := 0; i < 4; i++ {
		if now := par.Partition(i).Now(); now != sim.Time(sim.Microsecond) {
			t.Errorf("partition %d clock %v after RunFor, want %v", i, now, sim.Microsecond)
		}
	}
}

// TestPlanPartitionsClamps: more partitions than mesh columns clamp to
// one slab per column (no empty slabs), and a plain sequential config
// keeps Partitions 0 semantics.
func TestPlanPartitionsClamps(t *testing.T) {
	mesh := noc.DefaultConfig() // 4 wide
	pl := PlanPartitions(mesh, noc.Coord{X: 3, Y: 3}, 16)
	if pl.Partitions != mesh.Width {
		t.Errorf("planned %d partitions on a %d-wide mesh, want clamp to width", pl.Partitions, mesh.Width)
	}
	if pl.Lookahead != mesh.FlitTime {
		t.Errorf("lookahead %v, want FlitTime %v", pl.Lookahead, mesh.FlitTime)
	}
	cfg := DefaultConfig()
	cfg.Partitions = -1
	if err := cfg.Validate(); err == nil {
		t.Error("negative Partitions accepted")
	}
	if (RunSpec{Duration: sim.Millisecond, KernelPartitions: -2}).Validate() == nil {
		t.Error("negative KernelPartitions accepted")
	}
}

// nonSquareMesh builds a WxH mesh config for plan tests; only Width
// matters to the column cut, Height exercises Y-independence.
func nonSquareMesh(w, h int) noc.Config {
	cfg := noc.DefaultConfig()
	cfg.Width, cfg.Height = w, h
	return cfg
}

// TestPlanPartitionsNonSquare: the column cut on wide-and-short and
// narrow-and-tall meshes is balanced (slab widths differ by at most
// one column), surjective (no empty slabs), monotone in X, and
// entirely independent of Y.
func TestPlanPartitionsNonSquare(t *testing.T) {
	for _, tc := range []struct{ w, h, n int }{
		{8, 2, 4},  // wide, even split
		{2, 8, 2},  // tall, two 1-column slabs
		{7, 3, 3},  // width not divisible by n
		{5, 1, 4},  // single-row mesh
		{3, 9, 5},  // n > width: clamps to one slab per column
		{16, 4, 8}, // big-mesh aspect
	} {
		mesh := nonSquareMesh(tc.w, tc.h)
		pl := PlanPartitions(mesh, noc.Coord{X: tc.w - 1, Y: tc.h - 1}, tc.n)
		wantParts := tc.n
		if wantParts > tc.w {
			wantParts = tc.w
		}
		if pl.Partitions != wantParts {
			t.Errorf("%dx%d n=%d: planned %d partitions, want %d", tc.w, tc.h, tc.n, pl.Partitions, wantParts)
		}
		cols := make([]int, pl.Partitions) // columns per slab
		prev := 0
		for x := 0; x < tc.w; x++ {
			p := pl.Assign(noc.Coord{X: x, Y: 0})
			if p < 0 || p >= pl.Partitions {
				t.Fatalf("%dx%d n=%d: column %d assigned out-of-range partition %d", tc.w, tc.h, tc.n, x, p)
			}
			if p < prev {
				t.Errorf("%dx%d n=%d: assignment not monotone at column %d (%d after %d)", tc.w, tc.h, tc.n, x, p, prev)
			}
			prev = p
			cols[p]++
			for y := 1; y < tc.h; y++ {
				if q := pl.Assign(noc.Coord{X: x, Y: y}); q != p {
					t.Errorf("%dx%d n=%d: (%d,%d) in partition %d but (%d,0) in %d — cut depends on Y", tc.w, tc.h, tc.n, x, y, q, x, p)
				}
			}
		}
		minC, maxC := tc.w, 0
		for p, c := range cols {
			if c == 0 {
				t.Errorf("%dx%d n=%d: partition %d owns no columns", tc.w, tc.h, tc.n, p)
			}
			if c < minC {
				minC = c
			}
			if c > maxC {
				maxC = c
			}
		}
		if maxC-minC > 1 {
			t.Errorf("%dx%d n=%d: unbalanced slabs, column counts %v", tc.w, tc.h, tc.n, cols)
		}
	}
}

// TestPlanPartitionsEdgeMemoryColumns: the home partition tracks the
// memory node wherever its column sits — leftmost column, rightmost
// column, and interior — on square and non-square meshes alike.
func TestPlanPartitionsEdgeMemoryColumns(t *testing.T) {
	for _, tc := range []struct {
		w, h, n  int
		memX     int
		wantHome int
	}{
		{8, 2, 4, 0, 0},    // west edge -> first slab
		{8, 2, 4, 7, 3},    // east edge -> last slab
		{8, 2, 4, 3, 1},    // interior
		{7, 3, 3, 6, 2},    // east edge, uneven slabs ({0,1,2},{3,4},{5,6})
		{7, 3, 3, 0, 0},    // west edge, uneven slabs
		{5, 1, 5, 4, 4},    // one column per slab
		{16, 16, 8, 15, 7}, // big-mesh corner
	} {
		mesh := nonSquareMesh(tc.w, tc.h)
		for _, memY := range []int{0, tc.h - 1} { // corner rows both ways
			pl := PlanPartitions(mesh, noc.Coord{X: tc.memX, Y: memY}, tc.n)
			if pl.Home != tc.wantHome {
				t.Errorf("%dx%d n=%d mem=(%d,%d): home %d, want %d",
					tc.w, tc.h, tc.n, tc.memX, memY, pl.Home, tc.wantHome)
			}
			if got := pl.Assign(noc.Coord{X: tc.memX, Y: memY}); got != pl.Home {
				t.Errorf("%dx%d n=%d: memory node assigned %d but Home says %d", tc.w, tc.h, tc.n, got, pl.Home)
			}
		}
	}
}

// TestPlanPartitionsClusteredClampsAndAtomicity: the clustered planner
// clamps n to min(width, clusters), keeps every cluster inside one
// partition for every n, spreads clusters over all partitions with no
// empty slab, and degenerates to the plain column cut when clusters
// is zero.
func TestPlanPartitionsClusteredClampsAndAtomicity(t *testing.T) {
	mesh := nonSquareMesh(12, 3)
	mem := noc.Coord{X: 11, Y: 2}

	if pl := PlanPartitionsClustered(mesh, mem, 0, 4); pl.Partitions != 4 || pl.clusters != 0 {
		t.Errorf("clusters=0 did not fall back to plain cut: %+v", pl)
	}
	if pl := PlanPartitionsClustered(mesh, mem, 6, 9); pl.Partitions != 6 {
		t.Errorf("n=9 with 6 clusters planned %d partitions, want clamp to 6", pl.Partitions)
	}
	if pl := PlanPartitionsClustered(nonSquareMesh(2, 8), noc.Coord{X: 1, Y: 7}, 4, 4); pl.Partitions != 2 {
		t.Errorf("n=4 on a 2-wide mesh planned %d partitions, want clamp to width", pl.Partitions)
	}

	clusterOf := func(x, clusters, width int) int {
		k := x * clusters / width
		if k >= clusters {
			k = clusters - 1
		}
		return k
	}
	for _, n := range []int{1, 2, 3, 4, 5, 6} {
		pl := PlanPartitionsClustered(mesh, mem, 6, n)
		if pl.Partitions > 6 || pl.Partitions > mesh.Width {
			t.Fatalf("n=%d: planned %d partitions", n, pl.Partitions)
		}
		owner := make(map[int]int)   // cluster -> partition
		filled := make(map[int]bool) // partitions with at least one cluster
		for x := 0; x < mesh.Width; x++ {
			k := clusterOf(x, 6, mesh.Width)
			p := pl.Assign(noc.Coord{X: x, Y: 1})
			if prev, ok := owner[k]; ok && prev != p {
				t.Errorf("n=%d: cluster %d straddles partitions %d and %d", n, k, prev, p)
			}
			owner[k] = p
			filled[p] = true
		}
		if len(filled) != pl.Partitions {
			t.Errorf("n=%d: only %d of %d partitions own a cluster", n, len(filled), pl.Partitions)
		}
		if pl.Home != pl.Assign(mem) {
			t.Errorf("n=%d: home %d != memory node's partition %d", n, pl.Home, pl.Assign(mem))
		}
	}
}
