// Package core models a centralized automotive vehicle integration
// platform (VIP): the heterogeneous SoC of the paper's introduction,
// assembled from the repository's substrates. CPU clusters share a
// DynamIQ-style L3 (internal/dsu), clusters reach a shared DRAM
// controller (internal/dram) across a wormhole NoC (internal/noc), and
// the predictability mechanisms of Sections II and III hang off the
// same fabric: software cache coloring and MemGuard-style bandwidth
// regulation, hardware way-partitioning, and token-bucket injection
// shaping at the network interfaces.
//
// Applications are closed-loop traffic generators with automotive
// profiles (internal/trace); their end-to-end memory latency is the
// metric every experiment reports. The X1 experiment — read latency
// inflating by a large factor under co-runner contention, restored by
// QoS configuration — is Platform's reason to exist.
package core

import (
	"fmt"

	"repro/internal/audit"
	"repro/internal/cache"
	"repro/internal/dram"
	"repro/internal/dsu"
	"repro/internal/memguard"
	"repro/internal/mpam"
	"repro/internal/netcalc"
	"repro/internal/noc"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// Config assembles a platform.
type Config struct {
	// Clusters describes each CPU cluster's shared L3.
	Clusters []dsu.Config
	// Mesh is the interconnect; Memory the DRAM controller behind it.
	Mesh   noc.Config
	Memory dram.Config
	// MemoryNode is the mesh coordinate of the memory controller.
	MemoryNode noc.Coord
	// MemGuard, when non-nil, enables software bandwidth regulation.
	MemGuard *memguard.Config
	// L3HitLatency is the service time of an L3 hit.
	L3HitLatency sim.Duration
	// RowBytes sets the DRAM address interleaving granularity.
	RowBytes int
	// Partitions runs the platform on a conservative-lookahead Parallel
	// kernel with this many event partitions (lookahead = the mesh
	// FlitTime, the minimum inter-partition link latency). 0 or 1 keeps
	// the plain sequential engine; any N produces byte-identical
	// output — see PlanPartitions for what the cut assigns where and
	// docs/PERFORMANCE.md for why the platform's synchronously coupled
	// components share one home partition today.
	Partitions int
}

// DefaultConfig returns a two-cluster platform on a 4x4 mesh with the
// paper's DDR3-1600 controller at node (3,3).
func DefaultConfig() Config {
	mg := memguard.DefaultConfig()
	return Config{
		Clusters:     []dsu.Config{dsu.DefaultConfig(), dsu.DefaultConfig()},
		Mesh:         noc.DefaultConfig(),
		Memory:       dram.DefaultConfig(),
		MemoryNode:   noc.Coord{X: 3, Y: 3},
		MemGuard:     &mg,
		L3HitLatency: sim.NS(20),
		RowBytes:     2048,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if len(c.Clusters) == 0 {
		return fmt.Errorf("core: platform needs at least one cluster")
	}
	for i, cl := range c.Clusters {
		if err := cl.Validate(); err != nil {
			return fmt.Errorf("core: cluster %d: %w", i, err)
		}
	}
	if err := c.Mesh.Validate(); err != nil {
		return err
	}
	if err := c.Memory.Validate(); err != nil {
		return err
	}
	if c.L3HitLatency < 0 {
		return fmt.Errorf("core: negative L3 hit latency")
	}
	if c.RowBytes <= 0 {
		return fmt.Errorf("core: RowBytes must be positive")
	}
	if c.MemGuard != nil {
		if err := c.MemGuard.Validate(); err != nil {
			return err
		}
	}
	if c.Partitions < 0 {
		return fmt.Errorf("core: Partitions must be non-negative, got %d", c.Partitions)
	}
	return nil
}

// PartitionPlan is the topology cut BuildPlatform derives for a
// Parallel kernel: vertical column slabs of the mesh, so every cut
// link is an East/West hop and the kernel lookahead is exactly one
// FlitTime. Home is the slab holding the memory controller — the
// partition where the platform's synchronously coupled components
// (clusters' shared L3, MemGuard, the MPAM channel, the DRAM
// controller, and the apps that touch them with zero latency) must all
// live for output to stay byte-identical with the sequential engine.
type PartitionPlan struct {
	Partitions int
	Lookahead  sim.Duration
	Home       int
	width      int
}

// PlanPartitions cuts a mesh into n column slabs.
func PlanPartitions(mesh noc.Config, memNode noc.Coord, n int) PartitionPlan {
	if n < 1 {
		n = 1
	}
	if n > mesh.Width {
		n = mesh.Width // no empty slabs: at most one partition per column
	}
	pl := PartitionPlan{Partitions: n, Lookahead: mesh.FlitTime, width: mesh.Width}
	pl.Home = pl.Assign(memNode)
	return pl
}

// Assign returns the partition owning the node at c under the column
// cut.
func (pl PartitionPlan) Assign(c noc.Coord) int {
	if pl.width == 0 || pl.Partitions <= 1 {
		return 0
	}
	p := c.X * pl.Partitions / pl.width
	if p >= pl.Partitions {
		p = pl.Partitions - 1
	}
	return p
}

// Platform is an assembled VIP SoC model.
type Platform struct {
	// Eng is the engine the platform's components schedule on: the
	// plain sequential engine, or — under Config.Partitions — the home
	// partition of the Parallel kernel (see PartitionPlan).
	Eng *sim.Engine

	// par drives the run loop when the platform sits on a Parallel
	// kernel; plan records the topology cut that chose the home
	// partition.
	par  *sim.Parallel
	plan PartitionPlan

	cfg      Config
	clusters []*dsu.Cluster
	coloring []*cache.Coloring // per cluster, nil until enabled
	mesh     *noc.NoC
	mem      *dram.Controller
	reg      *memguard.Regulator

	apps  map[string]*App
	order []string

	mpamArb  *mpam.Arbiter
	mpamMons *mpam.MonitorSet

	nextReqID uint64

	tel *telemetry.Suite

	aud       *audit.Auditor
	audBounds map[string]float64
	// ncCache memoizes the auditor's Network Calculus compositions;
	// per-platform (never shared across runs) so published hit/miss
	// counters stay deterministic for a given scenario and seed.
	ncCache *netcalc.Cache
}

// New assembles a platform on a fresh engine.
func New(cfg Config) (*Platform, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	p := &Platform{
		cfg:  cfg,
		apps: make(map[string]*App),
	}
	if cfg.Partitions >= 1 {
		// Conservative-lookahead kernel cut on the mesh: the link time
		// is the lookahead. Every component is co-located on the cut's
		// home partition — the zero-latency couplings (shared L3,
		// MemGuard, credit returns, MPAM) make any other placement
		// diverge from the sequential goldens — so non-home partitions
		// idle and each round's single-active window runs inline; the
		// full barrier protocol still executes, and output stays
		// byte-identical for every partition count.
		p.plan = PlanPartitions(cfg.Mesh, cfg.MemoryNode, cfg.Partitions)
		lookahead := p.plan.Lookahead
		if p.plan.Partitions == 1 {
			lookahead = 0
		}
		p.par = sim.NewParallel(p.plan.Partitions, lookahead)
		p.Eng = p.par.Partition(p.plan.Home)
	} else {
		p.Eng = sim.NewEngine()
	}
	for _, cc := range cfg.Clusters {
		cl, err := dsu.NewCluster(cc)
		if err != nil {
			return nil, err
		}
		p.clusters = append(p.clusters, cl)
	}
	p.coloring = make([]*cache.Coloring, len(p.clusters))
	mesh, err := noc.New(p.Eng, cfg.Mesh)
	if err != nil {
		return nil, err
	}
	p.mesh = mesh
	if !mesh.InMesh(cfg.MemoryNode) {
		return nil, fmt.Errorf("core: memory node %v outside mesh", cfg.MemoryNode)
	}
	mem, err := dram.NewController(p.Eng, cfg.Memory, nil)
	if err != nil {
		return nil, err
	}
	p.mem = mem
	if cfg.MemGuard != nil {
		reg, err := memguard.New(p.Eng, *cfg.MemGuard)
		if err != nil {
			return nil, err
		}
		p.reg = reg
	}
	return p, nil
}

// Mesh exposes the interconnect (e.g. for admission-control overlays).
func (p *Platform) Mesh() *noc.NoC { return p.mesh }

// Cluster returns cluster i's DSU model.
func (p *Platform) Cluster(i int) (*dsu.Cluster, error) {
	if i < 0 || i >= len(p.clusters) {
		return nil, fmt.Errorf("core: cluster %d of %d", i, len(p.clusters))
	}
	return p.clusters[i], nil
}

// Memory exposes the DRAM controller.
func (p *Platform) Memory() *dram.Controller { return p.mem }

// Regulator exposes the MemGuard regulator (nil when disabled).
func (p *Platform) Regulator() *memguard.Regulator { return p.reg }

// ProgramDSU writes a cluster's L3 partition control register.
func (p *Platform) ProgramDSU(cluster int, reg dsu.ClusterPartCR) error {
	cl, err := p.Cluster(cluster)
	if err != nil {
		return err
	}
	cl.Program(reg)
	return nil
}

// EnableColoring switches a cluster to software page coloring with the
// given page size (the Section II baseline to hardware partitioning).
func (p *Platform) EnableColoring(cluster int, pageSize int) error {
	cl, err := p.Cluster(cluster)
	if err != nil {
		return err
	}
	col, err := cache.NewColoring(cl.L3().Config(), pageSize)
	if err != nil {
		return err
	}
	p.coloring[cluster] = col
	return nil
}

// AssignColors constrains an app's pages to the given colors.
func (p *Platform) AssignColors(app string, colors []int) error {
	a, ok := p.apps[app]
	if !ok {
		return fmt.Errorf("core: unknown app %q", app)
	}
	col := p.coloring[a.cfg.Cluster]
	if col == nil {
		return fmt.Errorf("core: coloring not enabled on cluster %d", a.cfg.Cluster)
	}
	return col.Assign(cache.Owner(a.cfg.Scheme), colors)
}

// SetMemBudget gives an app a MemGuard budget (bytes per regulation
// period).
func (p *Platform) SetMemBudget(app string, bytesPerPeriod int) error {
	if p.reg == nil {
		return fmt.Errorf("core: MemGuard disabled on this platform")
	}
	if _, ok := p.apps[app]; !ok {
		return fmt.Errorf("core: unknown app %q", app)
	}
	return p.reg.SetBudget(app, bytesPerPeriod)
}

// SetNodeShaper installs a token-bucket injection shaper on a node's
// network interface (burst bytes, rate bytes/ns).
func (p *Platform) SetNodeShaper(node noc.Coord, burst, rate float64) error {
	ni, err := p.mesh.NI(node)
	if err != nil {
		return err
	}
	sh, err := netcalc.NewShaper(burst, rate)
	if err != nil {
		return err
	}
	ni.SetShaper(sh)
	return nil
}

// RunFor advances the platform by d of virtual time.
func (p *Platform) RunFor(d sim.Duration) {
	p.RunUntil(p.Eng.Now() + d)
}

// RunUntil advances the platform to absolute virtual time t — through
// the Parallel kernel's barrier loop when one is configured, else the
// sequential engine.
func (p *Platform) RunUntil(t sim.Time) {
	if p.par != nil {
		p.par.RunUntil(t)
		return
	}
	p.Eng.RunUntil(t)
}

// Kernel returns the Parallel kernel driving the platform, nil on the
// plain sequential engine.
func (p *Platform) Kernel() *sim.Parallel { return p.par }

// Plan returns the partition plan (zero value without a kernel).
func (p *Platform) Plan() PartitionPlan { return p.plan }

// bankRow maps a physical address onto the DRAM geometry.
func (p *Platform) bankRow(addr uint64) (bank int, row int64) {
	rb := uint64(p.cfg.RowBytes)
	banks := uint64(p.cfg.Memory.Banks)
	bank = int((addr / rb) % banks)
	row = int64(addr / (rb * banks))
	return bank, row
}

// submitDRAM queues a request (its completion continuation, if any,
// rides in req.OnComplete); on a full queue it retries after a backoff
// (modelling interconnect backpressure).
func (p *Platform) submitDRAM(req *dram.Request) {
	p.nextReqID++
	req.ID = p.nextReqID
	if err := p.mem.Submit(req); err != nil {
		p.Eng.After(100*sim.Nanosecond, func() { p.submitDRAM(req) })
	}
}
