// Package core models a centralized automotive vehicle integration
// platform (VIP): the heterogeneous SoC of the paper's introduction,
// assembled from the repository's substrates. CPU clusters share a
// DynamIQ-style L3 (internal/dsu), clusters reach DRAM (internal/dram)
// across a wormhole NoC (internal/noc), and the predictability
// mechanisms of Sections II and III hang off the same fabric: software
// cache coloring and MemGuard-style bandwidth regulation, hardware
// way-partitioning, and token-bucket injection shaping at the network
// interfaces.
//
// Two platform shapes share this code. The legacy single-channel shape
// (Channels <= 1) co-locates every component on one engine — one DRAM
// controller, one MemGuard regulator, one MPAM channel — exactly the
// paper's X1 experiment setup. The clustered shape (Channels > 1)
// distributes the memory system: one DRAM controller per channel on
// its own mesh node, per-cluster MemGuard regulators and MPAM
// arbiters, per-cluster L2/L3s, and apps bound to their node's engine.
// Under a Parallel kernel each cluster's column slab becomes (part of)
// a partition, so clusters genuinely execute concurrently; requests
// that do cross a cut ride the NoC and the CrossAfter/CompleteOn
// machinery at link latency.
//
// Applications are closed-loop traffic generators with automotive
// profiles (internal/trace); their end-to-end memory latency is the
// metric every experiment reports.
package core

import (
	"fmt"

	"repro/internal/audit"
	"repro/internal/cache"
	"repro/internal/dram"
	"repro/internal/dsu"
	"repro/internal/memguard"
	"repro/internal/mpam"
	"repro/internal/netcalc"
	"repro/internal/noc"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// ChannelMode selects how physical addresses map onto a multi-channel
// memory system.
type ChannelMode int

const (
	// ChannelInterleave round-robins row-sized lines across channels
	// (dram.Interleave): maximum bandwidth spread, every app touches
	// every channel.
	ChannelInterleave ChannelMode = iota
	// ChannelPartition binds each cluster's traffic to its home
	// channel — software channel-aware memory partitioning (Kim et
	// al.): each cluster's misses stay on one controller, which keeps
	// per-cluster memory paths independent (analyzable per channel,
	// and, under a Parallel kernel, free of cross-partition traffic).
	ChannelPartition
)

// String implements fmt.Stringer.
func (m ChannelMode) String() string {
	if m == ChannelPartition {
		return "partition"
	}
	return "interleave"
}

// Config assembles a platform.
type Config struct {
	// Clusters describes each CPU cluster's caches. In a clustered
	// platform (Channels > 1) cluster k owns the mesh columns
	// [k*W/C, (k+1)*W/C): apps on those columns must belong to it.
	Clusters []dsu.Config
	// Mesh is the interconnect; Memory parameterizes each DRAM
	// controller.
	Mesh   noc.Config
	Memory dram.Config
	// MemoryNode is the mesh coordinate of the DRAM controller in the
	// single-channel shape (and the partition-plan home node in both).
	MemoryNode noc.Coord
	// MemGuard, when non-nil, enables software bandwidth regulation:
	// one shared regulator in the single-channel shape, one per
	// cluster in the clustered shape.
	MemGuard *memguard.Config
	// L3HitLatency is the service time of an L3 hit; L2HitLatency of a
	// cluster-private L2 hit (only meaningful when cluster configs
	// enable an L2).
	L3HitLatency sim.Duration
	L2HitLatency sim.Duration
	// RowBytes sets the DRAM address interleaving granularity.
	RowBytes int

	// Channels is the number of DRAM channels. 0 or 1 is the legacy
	// single-controller platform at MemoryNode; > 1 builds one
	// controller per channel, placed per ChannelNodes.
	Channels int
	// ChannelMode selects the address-to-channel function (multi-
	// channel only).
	ChannelMode ChannelMode
	// ChannelNodes optionally pins each channel's mesh node; empty
	// derives a default placement that spreads channels across column
	// slabs on the bottom row.
	ChannelNodes []noc.Coord

	// Partitions runs the platform on a conservative-lookahead Parallel
	// kernel with this many event partitions (lookahead = the mesh
	// FlitTime, the minimum inter-partition link latency). 0 or 1 keeps
	// the plain sequential engine. On the single-channel shape every
	// component co-locates on the home partition (output byte-identical
	// for every N, non-home partitions idle); on the clustered shape
	// the cut is cluster-atomic and clusters run concurrently.
	Partitions int
}

// DefaultConfig returns a two-cluster platform on a 4x4 mesh with the
// paper's DDR3-1600 controller at node (3,3).
func DefaultConfig() Config {
	mg := memguard.DefaultConfig()
	return Config{
		Clusters:     []dsu.Config{dsu.DefaultConfig(), dsu.DefaultConfig()},
		Mesh:         noc.DefaultConfig(),
		Memory:       dram.DefaultConfig(),
		MemoryNode:   noc.Coord{X: 3, Y: 3},
		MemGuard:     &mg,
		L3HitLatency: sim.NS(20),
		RowBytes:     2048,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if len(c.Clusters) == 0 {
		return fmt.Errorf("core: platform needs at least one cluster")
	}
	for i, cl := range c.Clusters {
		if err := cl.Validate(); err != nil {
			return fmt.Errorf("core: cluster %d: %w", i, err)
		}
	}
	if err := c.Mesh.Validate(); err != nil {
		return err
	}
	if err := c.Memory.Validate(); err != nil {
		return err
	}
	if c.L3HitLatency < 0 {
		return fmt.Errorf("core: negative L3 hit latency")
	}
	if c.L2HitLatency < 0 {
		return fmt.Errorf("core: negative L2 hit latency")
	}
	if c.RowBytes <= 0 {
		return fmt.Errorf("core: RowBytes must be positive")
	}
	if c.MemGuard != nil {
		if err := c.MemGuard.Validate(); err != nil {
			return err
		}
	}
	if c.Partitions < 0 {
		return fmt.Errorf("core: Partitions must be non-negative, got %d", c.Partitions)
	}
	if c.Channels > 1 {
		if c.Channels > c.Mesh.Width {
			return fmt.Errorf("core: %d channels need at least that many mesh columns, got %d", c.Channels, c.Mesh.Width)
		}
		if len(c.Clusters) > c.Mesh.Width {
			return fmt.Errorf("core: %d clusters need at least that many mesh columns, got %d", len(c.Clusters), c.Mesh.Width)
		}
		if len(c.ChannelNodes) != 0 && len(c.ChannelNodes) != c.Channels {
			return fmt.Errorf("core: %d channel nodes for %d channels", len(c.ChannelNodes), c.Channels)
		}
	}
	return nil
}

// channelNodes returns the per-channel mesh placement: the configured
// nodes, or the default spread — channel i at the column midpoint of
// its slab share, on the bottom row (mirroring the legacy memory node
// convention).
func (c Config) channelNodes() []noc.Coord {
	if c.Channels <= 1 {
		return []noc.Coord{c.MemoryNode}
	}
	if len(c.ChannelNodes) == c.Channels {
		return append([]noc.Coord(nil), c.ChannelNodes...)
	}
	nodes := make([]noc.Coord, c.Channels)
	for i := range nodes {
		nodes[i] = noc.Coord{X: (2*i + 1) * c.Mesh.Width / (2 * c.Channels), Y: c.Mesh.Height - 1}
	}
	return nodes
}

// PartitionPlan is the topology cut BuildPlatform derives for a
// Parallel kernel: vertical column slabs of the mesh, so every cut
// link is an East/West hop and the kernel lookahead is exactly one
// FlitTime. Home is the slab holding the memory node. On a clustered
// platform the cut is additionally cluster-atomic — a cluster's
// columns always land in one partition, for every partition count —
// so the zero-latency couplings inside a cluster (its L2/L3, its
// MemGuard regulator, its apps) never straddle a cut.
type PartitionPlan struct {
	Partitions int
	Lookahead  sim.Duration
	Home       int
	width      int
	// clusters > 0 makes Assign cluster-atomic (column -> cluster ->
	// partition); 0 is the plain column cut.
	clusters int
}

// PlanPartitions cuts a mesh into n column slabs.
func PlanPartitions(mesh noc.Config, memNode noc.Coord, n int) PartitionPlan {
	if n < 1 {
		n = 1
	}
	if n > mesh.Width {
		n = mesh.Width // no empty slabs: at most one partition per column
	}
	pl := PartitionPlan{Partitions: n, Lookahead: mesh.FlitTime, width: mesh.Width}
	pl.Home = pl.Assign(memNode)
	return pl
}

// PlanPartitionsClustered cuts a mesh into n cluster-atomic slabs: n
// is clamped to the cluster count (and the mesh width), and every
// cluster's columns map into exactly one partition for every n — the
// property that keeps a clustered platform's intra-cluster couplings
// off the cut regardless of how many partitions run.
func PlanPartitionsClustered(mesh noc.Config, memNode noc.Coord, clusters, n int) PartitionPlan {
	if clusters < 1 {
		return PlanPartitions(mesh, memNode, n)
	}
	if n < 1 {
		n = 1
	}
	if n > mesh.Width {
		n = mesh.Width
	}
	if n > clusters {
		n = clusters
	}
	pl := PartitionPlan{Partitions: n, Lookahead: mesh.FlitTime, width: mesh.Width, clusters: clusters}
	pl.Home = pl.Assign(memNode)
	return pl
}

// Assign returns the partition owning the node at c under the column
// cut.
func (pl PartitionPlan) Assign(c noc.Coord) int {
	if pl.width == 0 || pl.Partitions <= 1 {
		return 0
	}
	if pl.clusters > 0 {
		k := c.X * pl.clusters / pl.width
		if k >= pl.clusters {
			k = pl.clusters - 1
		}
		return k * pl.Partitions / pl.clusters
	}
	p := c.X * pl.Partitions / pl.width
	if p >= pl.Partitions {
		p = pl.Partitions - 1
	}
	return p
}

// memChannel is one memory channel's assembly: the controller, its
// mesh node and NI, the engine owning that node, and — when the MPAM
// channel is enabled — the channel's bandwidth arbiter. The legacy
// single-channel platform is exactly one of these at MemoryNode.
type memChannel struct {
	idx  int
	node noc.Coord
	eng  *sim.Engine
	ctrl *dram.Controller
	ni   *noc.NI

	arb  *mpam.Arbiter
	mons *mpam.MonitorSet

	// nextReqID assigns per-channel DRAM request IDs; per channel so
	// concurrent partitions never share the counter word.
	nextReqID uint64
}

// Platform is an assembled VIP SoC model.
type Platform struct {
	// Eng is the engine the platform's shared components schedule on:
	// the plain sequential engine, or — under Config.Partitions — the
	// home partition of the Parallel kernel (see PartitionPlan). On a
	// clustered platform per-cluster components run on their own
	// slab's engine instead.
	Eng *sim.Engine

	// par drives the run loop when the platform sits on a Parallel
	// kernel; plan records the topology cut that chose the home
	// partition.
	par  *sim.Parallel
	plan PartitionPlan

	cfg      Config
	clusters []*dsu.Cluster
	coloring []*cache.Coloring // per cluster, nil until enabled
	mesh     *noc.NoC

	// distributed marks the clustered (multi-channel) shape.
	distributed bool
	chans       []*memChannel
	ivl         dram.Interleave

	// mem aliases the single controller on the legacy shape (nil when
	// clustered — use Channels/ChannelController).
	mem *dram.Controller
	// reg is the shared regulator on the legacy shape; regs[k] is
	// cluster k's regulator on both shapes (all aliases of reg when
	// legacy).
	reg  *memguard.Regulator
	regs []*memguard.Regulator

	apps  map[string]*App
	order []string

	mpamArb  *mpam.Arbiter
	mpamMons *mpam.MonitorSet

	tel *telemetry.Suite

	aud       *audit.Auditor
	audBounds map[string]float64
	// ncCache memoizes the auditor's Network Calculus compositions;
	// per-platform (never shared across runs) so published hit/miss
	// counters stay deterministic for a given scenario and seed.
	ncCache *netcalc.Cache
}

// New assembles a platform on a fresh engine.
func New(cfg Config) (*Platform, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	p := &Platform{
		cfg:         cfg,
		apps:        make(map[string]*App),
		distributed: cfg.Channels > 1,
	}
	if cfg.Partitions >= 1 {
		// Conservative-lookahead kernel cut on the mesh: the link time
		// is the lookahead. Legacy shape: every component co-locates on
		// the cut's home partition — the zero-latency couplings (shared
		// L3, MemGuard, credit returns, MPAM) make any other placement
		// diverge from the sequential goldens — so non-home partitions
		// idle and output stays byte-identical for every partition
		// count. Clustered shape: the cut is cluster-atomic and each
		// slab's components run on their own partition.
		if p.distributed {
			p.plan = PlanPartitionsClustered(cfg.Mesh, cfg.MemoryNode, len(cfg.Clusters), cfg.Partitions)
		} else {
			p.plan = PlanPartitions(cfg.Mesh, cfg.MemoryNode, cfg.Partitions)
		}
		lookahead := p.plan.Lookahead
		if p.plan.Partitions == 1 {
			lookahead = 0
		}
		p.par = sim.NewParallel(p.plan.Partitions, lookahead)
		p.Eng = p.par.Partition(p.plan.Home)
	} else {
		p.Eng = sim.NewEngine()
	}
	for _, cc := range cfg.Clusters {
		cl, err := dsu.NewCluster(cc)
		if err != nil {
			return nil, err
		}
		p.clusters = append(p.clusters, cl)
	}
	p.coloring = make([]*cache.Coloring, len(p.clusters))

	var mesh *noc.NoC
	var err error
	if p.distributed && p.par != nil && p.plan.Partitions > 1 {
		mesh, err = noc.NewPartitioned(p.par, cfg.Mesh, func(c noc.Coord) int { return p.plan.Assign(c) })
	} else {
		mesh, err = noc.New(p.Eng, cfg.Mesh)
	}
	if err != nil {
		return nil, err
	}
	p.mesh = mesh
	if !mesh.InMesh(cfg.MemoryNode) {
		return nil, fmt.Errorf("core: memory node %v outside mesh", cfg.MemoryNode)
	}

	nodes := cfg.channelNodes()
	seen := make(map[noc.Coord]bool, len(nodes))
	for i, node := range nodes {
		if !mesh.InMesh(node) {
			return nil, fmt.Errorf("core: channel %d node %v outside mesh", i, node)
		}
		if seen[node] {
			return nil, fmt.Errorf("core: channel %d node %v duplicates another channel", i, node)
		}
		seen[node] = true
		mcfg := cfg.Memory
		if p.distributed {
			// Completions hopping back over a partition cut (posted
			// writes to a remote cluster) carry one link time and a
			// per-channel merge key, so cross-channel retirement order
			// is topology-defined.
			mcfg.CrossCompleteLatency = cfg.Mesh.FlitTime
			mcfg.CrossKey = crossKeyDRAMBase | uint64(i)
		}
		ch := &memChannel{idx: i, node: node, eng: mesh.EngineAt(node)}
		ctrl, err := dram.NewController(ch.eng, mcfg, nil)
		if err != nil {
			return nil, err
		}
		ch.ctrl = ctrl
		ch.ni, _ = mesh.NI(node)
		p.chans = append(p.chans, ch)
	}
	if !p.distributed {
		p.mem = p.chans[0].ctrl
	}
	p.ivl = dram.Interleave{Channels: len(p.chans), RowBytes: int64(cfg.RowBytes), Banks: cfg.Memory.Banks}

	p.regs = make([]*memguard.Regulator, len(p.clusters))
	if cfg.MemGuard != nil {
		if p.distributed {
			for k := range p.clusters {
				reg, err := memguard.New(p.clusterEngine(k), *cfg.MemGuard)
				if err != nil {
					return nil, err
				}
				p.regs[k] = reg
			}
		} else {
			reg, err := memguard.New(p.Eng, *cfg.MemGuard)
			if err != nil {
				return nil, err
			}
			p.reg = reg
			for k := range p.regs {
				p.regs[k] = reg
			}
		}
	}
	return p, nil
}

// crossKeyDRAMBase namespaces DRAM cross-partition completion keys
// away from the NoC's link (srcIdx<<3|port) and credit (1<<40|...)
// key spaces.
const crossKeyDRAMBase = uint64(1) << 41

// Distributed reports whether the platform is the clustered
// multi-channel shape.
func (p *Platform) Distributed() bool { return p.distributed }

// Channels reports the memory channel count.
func (p *Platform) Channels() int { return len(p.chans) }

// ChannelController returns channel i's DRAM controller.
func (p *Platform) ChannelController(i int) (*dram.Controller, error) {
	if i < 0 || i >= len(p.chans) {
		return nil, fmt.Errorf("core: channel %d of %d", i, len(p.chans))
	}
	return p.chans[i].ctrl, nil
}

// ChannelNode returns channel i's mesh coordinate.
func (p *Platform) ChannelNode(i int) (noc.Coord, error) {
	if i < 0 || i >= len(p.chans) {
		return noc.Coord{}, fmt.Errorf("core: channel %d of %d", i, len(p.chans))
	}
	return p.chans[i].node, nil
}

// ClusterOfColumn returns the cluster owning mesh column x (clustered
// shape; 0 when the platform has one cluster-slab mapping to speak
// of).
func (p *Platform) ClusterOfColumn(x int) int {
	c := len(p.clusters)
	w := p.cfg.Mesh.Width
	if c == 0 || w == 0 {
		return 0
	}
	k := x * c / w
	if k >= c {
		k = c - 1
	}
	return k
}

// clusterEngine returns the engine owning cluster k's slab (the
// shared engine on a non-partitioned fabric).
func (p *Platform) clusterEngine(k int) *sim.Engine {
	c := len(p.clusters)
	x := (k*p.cfg.Mesh.Width + c - 1) / c // first column of cluster k
	if x >= p.cfg.Mesh.Width {
		x = p.cfg.Mesh.Width - 1
	}
	return p.mesh.EngineAt(noc.Coord{X: x, Y: 0})
}

// HomeChannel returns the channel serving cluster k's traffic under
// ChannelPartition.
func (p *Platform) HomeChannel(k int) int {
	c := len(p.clusters)
	if c == 0 || len(p.chans) <= 1 {
		return 0
	}
	ch := k * len(p.chans) / c
	if ch >= len(p.chans) {
		ch = len(p.chans) - 1
	}
	return ch
}

// Mesh exposes the interconnect (e.g. for admission-control overlays).
func (p *Platform) Mesh() *noc.NoC { return p.mesh }

// MeshConfig returns the mesh topology the platform was built with.
func (p *Platform) MeshConfig() noc.Config { return p.cfg.Mesh }

// ClusterCount returns the number of compute clusters.
func (p *Platform) ClusterCount() int { return len(p.clusters) }

// Cluster returns cluster i's DSU model.
func (p *Platform) Cluster(i int) (*dsu.Cluster, error) {
	if i < 0 || i >= len(p.clusters) {
		return nil, fmt.Errorf("core: cluster %d of %d", i, len(p.clusters))
	}
	return p.clusters[i], nil
}

// Memory exposes the DRAM controller on the legacy single-channel
// shape (nil when clustered — use ChannelController).
func (p *Platform) Memory() *dram.Controller { return p.mem }

// RowHitRate returns the aggregate row-hit rate across every channel
// (identical to Memory().Stats().RowHitRate() on the legacy shape).
func (p *Platform) RowHitRate() float64 {
	var hits, total uint64
	for _, ch := range p.chans {
		st := ch.ctrl.Stats()
		hits += st.RowHits
		total += st.RowHits + st.RowClosed + st.RowConflicts
	}
	if total == 0 {
		return 0
	}
	return float64(hits) / float64(total)
}

// Regulator exposes the MemGuard regulator on the legacy shape (nil
// when disabled or clustered — clustered platforms regulate per
// cluster, see ClusterRegulator).
func (p *Platform) Regulator() *memguard.Regulator { return p.reg }

// ClusterRegulator returns cluster k's MemGuard regulator (the shared
// one on the legacy shape; nil when regulation is disabled).
func (p *Platform) ClusterRegulator(k int) *memguard.Regulator {
	if k < 0 || k >= len(p.regs) {
		return nil
	}
	return p.regs[k]
}

// ProgramDSU writes a cluster's L3 partition control register.
func (p *Platform) ProgramDSU(cluster int, reg dsu.ClusterPartCR) error {
	cl, err := p.Cluster(cluster)
	if err != nil {
		return err
	}
	cl.Program(reg)
	return nil
}

// EnableColoring switches a cluster to software page coloring with the
// given page size (the Section II baseline to hardware partitioning).
func (p *Platform) EnableColoring(cluster int, pageSize int) error {
	cl, err := p.Cluster(cluster)
	if err != nil {
		return err
	}
	col, err := cache.NewColoring(cl.L3().Config(), pageSize)
	if err != nil {
		return err
	}
	p.coloring[cluster] = col
	return nil
}

// AssignColors constrains an app's pages to the given colors.
func (p *Platform) AssignColors(app string, colors []int) error {
	a, ok := p.apps[app]
	if !ok {
		return fmt.Errorf("core: unknown app %q", app)
	}
	col := p.coloring[a.cfg.Cluster]
	if col == nil {
		return fmt.Errorf("core: coloring not enabled on cluster %d", a.cfg.Cluster)
	}
	return col.Assign(cache.Owner(a.cfg.Scheme), colors)
}

// SetMemBudget gives an app a MemGuard budget (bytes per regulation
// period) on its cluster's regulator.
func (p *Platform) SetMemBudget(app string, bytesPerPeriod int) error {
	a, ok := p.apps[app]
	if !ok {
		return fmt.Errorf("core: unknown app %q", app)
	}
	if a.reg == nil {
		return fmt.Errorf("core: MemGuard disabled on this platform")
	}
	return a.reg.SetBudget(app, bytesPerPeriod)
}

// SetNodeShaper installs a token-bucket injection shaper on a node's
// network interface (burst bytes, rate bytes/ns).
func (p *Platform) SetNodeShaper(node noc.Coord, burst, rate float64) error {
	ni, err := p.mesh.NI(node)
	if err != nil {
		return err
	}
	sh, err := netcalc.NewShaper(burst, rate)
	if err != nil {
		return err
	}
	ni.SetShaper(sh)
	return nil
}

// RunFor advances the platform by d of virtual time.
func (p *Platform) RunFor(d sim.Duration) {
	p.RunUntil(p.Eng.Now() + d)
}

// RunUntil advances the platform to absolute virtual time t — through
// the Parallel kernel's barrier loop when one is configured, else the
// sequential engine.
func (p *Platform) RunUntil(t sim.Time) {
	if p.par != nil {
		p.par.RunUntil(t)
		return
	}
	p.Eng.RunUntil(t)
}

// Kernel returns the Parallel kernel driving the platform, nil on the
// plain sequential engine.
func (p *Platform) Kernel() *sim.Parallel { return p.par }

// Plan returns the partition plan (zero value without a kernel).
func (p *Platform) Plan() PartitionPlan { return p.plan }

// bankRow maps a physical address onto a single channel's DRAM
// geometry (the legacy map, also the per-channel map under
// ChannelPartition).
func (p *Platform) bankRow(addr uint64) (bank int, row int64) {
	rb := uint64(p.cfg.RowBytes)
	banks := uint64(p.cfg.Memory.Banks)
	bank = int((addr / rb) % banks)
	row = int64(addr / (rb * banks))
	return bank, row
}

// route maps a miss address to its memory channel and the channel-
// local (bank, row). Single channel: the legacy map. Multi-channel
// ChannelInterleave: the dram.Interleave function on the physical
// address. ChannelPartition: the issuing cluster's home channel with
// the legacy per-channel map (channel-aware placement).
func (p *Platform) route(addr uint64, cluster int) (ch *memChannel, bank int, row int64) {
	if !p.distributed {
		b, r := p.bankRow(addr)
		return p.chans[0], b, r
	}
	if p.cfg.ChannelMode == ChannelPartition {
		b, r := p.bankRow(addr)
		return p.chans[p.HomeChannel(cluster)], b, r
	}
	c, b, r := p.ivl.Route(int64(addr))
	return p.chans[c], b, r
}

// submitDRAM queues a request on one channel (its completion
// continuation, if any, rides in req.OnComplete); on a full queue it
// retries after a backoff (modelling interconnect backpressure).
func (p *Platform) submitDRAM(ch *memChannel, req *dram.Request) {
	ch.nextReqID++
	req.ID = ch.nextReqID
	if err := ch.ctrl.Submit(req); err != nil {
		ch.eng.After(100*sim.Nanosecond, func() { p.submitDRAM(ch, req) })
	}
}
