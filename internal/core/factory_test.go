package core

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/trace"
)

func TestRunSpecValidate(t *testing.T) {
	if err := (RunSpec{Hogs: -1, Duration: sim.Millisecond}).Validate(); err == nil {
		t.Error("negative hogs accepted")
	}
	if err := (RunSpec{Hogs: 2}).Validate(); err == nil {
		t.Error("zero duration accepted")
	}
	if _, _, err := BuildPlatform(RunSpec{Hogs: 1}); err == nil {
		t.Error("BuildPlatform accepted invalid spec")
	}
}

func TestBuildPlatformAssemblesSpec(t *testing.T) {
	spec := RunSpec{
		Hogs: 3, DSU: true, MemGuard: true, Shape: true, MPAM: true,
		HogClass: trace.Infotainment, Duration: 100 * sim.Microsecond, Seed: 7,
	}
	p, crit, err := BuildPlatform(spec)
	if err != nil {
		t.Fatal(err)
	}
	if crit == nil || crit.Name() != "crit" {
		t.Fatalf("critical app = %v", crit)
	}
	apps := p.Apps()
	if len(apps) != 4 {
		t.Fatalf("apps = %v, want crit + 3 hogs", apps)
	}
	if p.Regulator() == nil {
		t.Fatal("MemGuard regulator missing")
	}
	// Nothing runs until started.
	p.RunFor(10 * sim.Microsecond)
	if st := crit.Stats(); st.Issued != 0 {
		t.Fatalf("idle platform issued %d accesses", st.Issued)
	}
	p.StartApps()
	p.RunFor(90 * sim.Microsecond)
	if st := crit.Stats(); st.Issued == 0 {
		t.Fatal("started platform issued no accesses")
	}
}

func TestRunSpecRunDeterministic(t *testing.T) {
	spec := RunSpec{
		Hogs: 2, MemGuard: true, HogClass: trace.Infotainment,
		Duration: 200 * sim.Microsecond, Seed: 42,
	}
	a, err := spec.Run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := spec.Run()
	if err != nil {
		t.Fatal(err)
	}
	if a.Crit != b.Crit {
		t.Fatalf("same spec diverged: %+v vs %+v", a.Crit, b.Crit)
	}
	if a.RowHitRate != b.RowHitRate {
		t.Fatalf("row-hit rate diverged: %v vs %v", a.RowHitRate, b.RowHitRate)
	}
	if len(a.HogStats) != 2 {
		t.Fatalf("HogStats = %d entries, want 2", len(a.HogStats))
	}
	if a.Crit.Issued == 0 || a.HogStats[0].Issued == 0 {
		t.Fatal("run produced no traffic")
	}
}

func TestRunSpecSeedChangesHogStream(t *testing.T) {
	base := RunSpec{Hogs: 2, HogClass: trace.Infotainment, Duration: 100 * sim.Microsecond, Seed: 1}
	other := base
	other.Seed = 999
	a, err := base.Run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := other.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Different seeds should perturb the hogs' random address streams
	// (and hence at least some measured counter).
	if a.Crit == b.Crit && a.RowHitRate == b.RowHitRate && a.HogStats[0] == b.HogStats[0] {
		t.Fatal("seed had no observable effect")
	}
}
