package core

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/trace"
)

func TestRunSpecValidate(t *testing.T) {
	if err := (RunSpec{Hogs: -1, Duration: sim.Millisecond}).Validate(); err == nil {
		t.Error("negative hogs accepted")
	}
	if err := (RunSpec{Hogs: 2}).Validate(); err == nil {
		t.Error("zero duration accepted")
	}
	if _, _, err := BuildPlatform(RunSpec{Hogs: 1}); err == nil {
		t.Error("BuildPlatform accepted invalid spec")
	}
}

func TestBuildPlatformAssemblesSpec(t *testing.T) {
	spec := RunSpec{
		Hogs: 3, DSU: true, MemGuard: true, Shape: true, MPAM: true,
		HogClass: trace.Infotainment, Duration: 100 * sim.Microsecond, Seed: 7,
	}
	p, crit, err := BuildPlatform(spec)
	if err != nil {
		t.Fatal(err)
	}
	if crit == nil || crit.Name() != "crit" {
		t.Fatalf("critical app = %v", crit)
	}
	apps := p.Apps()
	if len(apps) != 4 {
		t.Fatalf("apps = %v, want crit + 3 hogs", apps)
	}
	if p.Regulator() == nil {
		t.Fatal("MemGuard regulator missing")
	}
	// Nothing runs until started.
	p.RunFor(10 * sim.Microsecond)
	if st := crit.Stats(); st.Issued != 0 {
		t.Fatalf("idle platform issued %d accesses", st.Issued)
	}
	p.StartApps()
	p.RunFor(90 * sim.Microsecond)
	if st := crit.Stats(); st.Issued == 0 {
		t.Fatal("started platform issued no accesses")
	}
}

func TestRunSpecRunDeterministic(t *testing.T) {
	spec := RunSpec{
		Hogs: 2, MemGuard: true, HogClass: trace.Infotainment,
		Duration: 200 * sim.Microsecond, Seed: 42,
	}
	a, err := spec.Run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := spec.Run()
	if err != nil {
		t.Fatal(err)
	}
	if a.Crit != b.Crit {
		t.Fatalf("same spec diverged: %+v vs %+v", a.Crit, b.Crit)
	}
	if a.RowHitRate != b.RowHitRate {
		t.Fatalf("row-hit rate diverged: %v vs %v", a.RowHitRate, b.RowHitRate)
	}
	if len(a.HogStats) != 2 {
		t.Fatalf("HogStats = %d entries, want 2", len(a.HogStats))
	}
	if a.Crit.Issued == 0 || a.HogStats[0].Issued == 0 {
		t.Fatal("run produced no traffic")
	}
}

func TestRunSpecSeedChangesHogStream(t *testing.T) {
	base := RunSpec{Hogs: 2, HogClass: trace.Infotainment, Duration: 100 * sim.Microsecond, Seed: 1}
	other := base
	other.Seed = 999
	a, err := base.Run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := other.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Different seeds should perturb the hogs' random address streams
	// (and hence at least some measured counter).
	if a.Crit == b.Crit && a.RowHitRate == b.RowHitRate && a.HogStats[0] == b.HogStats[0] {
		t.Fatal("seed had no observable effect")
	}
}

func TestRunSpecMetricsSinkAndAuditObserved(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.om")
	var sunk [][]byte
	spec := RunSpec{
		Hogs: 1, HogClass: trace.Infotainment,
		Duration: 100 * sim.Microsecond, Seed: 5,
		Audit: true, MetricsPath: path,
		MetricsSink: func(b []byte) { sunk = append(sunk, b) },
	}
	res, err := spec.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(sunk) != 1 {
		t.Fatalf("sink fired %d times, want exactly once", len(sunk))
	}
	if !strings.HasSuffix(string(sunk[0]), "# EOF\n") {
		t.Fatalf("sink payload is not OpenMetrics:\n%s", sunk[0])
	}
	file, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(file, sunk[0]) {
		t.Fatal("MetricsPath file and MetricsSink payload diverge")
	}
	if res.AuditObserved == 0 {
		t.Fatal("audited run observed no transactions")
	}
	if res.AuditObserved < res.TotalViolations {
		t.Fatalf("observed %d < violations %d", res.AuditObserved, res.TotalViolations)
	}
}

func TestRunSpecPanicStillDumpsSnapshot(t *testing.T) {
	// Satellite contract: a run that panics mid-collection must still
	// persist whatever telemetry accumulated before unwinding.
	path := filepath.Join(t.TempDir(), "run.om")
	sunk := 0
	testRunFailpoint = func(*Platform) { panic("collection boom") }
	defer func() { testRunFailpoint = nil }()
	spec := RunSpec{
		Hogs: 1, HogClass: trace.Infotainment, Duration: 50 * sim.Microsecond,
		MetricsPath: path,
		MetricsSink: func([]byte) { sunk++ },
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("failpoint did not propagate its panic")
			}
		}()
		spec.Run()
	}()
	if sunk != 1 {
		t.Fatalf("sink fired %d times on the panic path, want once", sunk)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("panic path left no snapshot: %v", err)
	}
	if !strings.HasSuffix(string(data), "# EOF\n") {
		t.Fatalf("panic-path snapshot is not terminated OpenMetrics:\n%s", data)
	}
}
