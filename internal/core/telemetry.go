package core

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/telemetry"
)

// EnableTelemetry builds a telemetry suite and threads it through
// every assembled subsystem: the simulation kernel (event counters and
// dispatch-rate samples), the DRAM controllers (per-bank service
// spans, refresh, mode switches), the mesh (per-flow delivery spans
// and PMU-style monitors), MemGuard (stall spans, depletion events,
// per-entity monitors), the per-cluster caches, and — if already
// enabled — the MPAM channel arbiters. withTrace additionally records
// a Chrome trace_event timeline; metrics and monitors are always on.
//
// On a clustered platform the single-writer instruments (the event
// tracer, the engine observer, the PMU monitor windows, per-flow
// histograms) stay off — partitions would race on them and their
// sample order is schedule-dependent — and the wiring keeps only the
// atomic counters and snapshot-time gauges, under per-channel
// ("dram.chN.") and per-cluster ("l3.clusterN.") names. Those commute,
// so metric dumps stay byte-identical across partition counts.
//
// Call once, before traffic starts. Returns the suite for dumping.
func (p *Platform) EnableTelemetry(withTrace bool) (*telemetry.Suite, error) {
	if p.tel != nil {
		return nil, fmt.Errorf("core: telemetry already enabled")
	}
	if withTrace && p.distributed {
		return nil, fmt.Errorf("core: event tracing is single-writer; unsupported on a clustered platform")
	}
	window := sim.Millisecond
	if p.cfg.MemGuard != nil {
		window = p.cfg.MemGuard.Period
	}
	s := telemetry.NewSuite(withTrace, window)
	p.tel = s

	if p.distributed {
		for i, ch := range p.chans {
			ch.ctrl.SetTelemetryPrefixed(s.Registry, nil, fmt.Sprintf("dram.ch%d", i))
		}
		p.mesh.SetTelemetry(s.Registry, nil, nil)
		for _, reg := range p.regs {
			if reg != nil {
				// Fixed counter names merge across clusters; the atomic
				// increments commute, so the totals are deterministic.
				reg.SetTelemetry(s.Registry, nil, nil)
			}
		}
		for i, cl := range p.clusters {
			cl.L3().SetTelemetry(s.Registry, fmt.Sprintf("l3.cluster%d", i))
			if l2 := cl.L2(); l2 != nil {
				l2.SetTelemetry(s.Registry, fmt.Sprintf("l2.cluster%d", i))
			}
		}
		for _, ch := range p.chans {
			if ch.arb != nil {
				ch.arb.SetTelemetry(s.Registry, nil, nil)
			}
		}
		return s, nil
	}

	p.Eng.SetObserver(telemetry.NewEngineObserver(s.Registry, s.Tracer, 0))
	p.mem.SetTelemetry(s.Registry, s.Tracer)
	p.mesh.SetTelemetry(s.Registry, s.Tracer, s.Monitors)
	if p.reg != nil {
		p.reg.SetTelemetry(s.Registry, s.Tracer, s.Monitors)
	}
	for i, cl := range p.clusters {
		cl.L3().SetTelemetry(s.Registry, fmt.Sprintf("l3.cluster%d", i))
		if l2 := cl.L2(); l2 != nil {
			l2.SetTelemetry(s.Registry, fmt.Sprintf("l2.cluster%d", i))
		}
	}
	if p.mpamArb != nil {
		p.mpamArb.SetTelemetry(s.Registry, s.Tracer, s.Monitors)
	}
	return s, nil
}

// Telemetry returns the platform's suite (nil when disabled).
func (p *Platform) Telemetry() *telemetry.Suite { return p.tel }

// SnapshotMetrics folds snapshot-style state into the registry: live
// latency histograms (adopted, not copied), per-app counters, DRAM
// aggregate ratios (per channel and platform-wide), MemGuard
// regulation outcomes, and the PMU monitors' window readings. Call it
// at dump time — outside Run/RunUntil, so a partitioned fabric is at a
// barrier; it is idempotent.
func (p *Platform) SnapshotMetrics() {
	s := p.tel
	if s == nil || s.Registry == nil {
		return
	}
	reg := s.Registry
	now := p.Eng.Now()

	// Live events only: Pending() also counts lazily-reclaimed canceled
	// records, which would make the gauge drift with kernel internals.
	// Summed over partitions when the platform runs on a kernel (equal
	// to the home engine's count on the legacy shape, where every other
	// partition is empty).
	pending := 0
	if p.par != nil {
		for i := 0; i < p.plan.Partitions; i++ {
			pending += p.par.Partition(i).PendingLive()
		}
	} else {
		pending = p.Eng.PendingLive()
	}
	reg.Gauge("sim.events_pending").Set(float64(pending))

	for _, name := range p.order {
		a := p.apps[name]
		st := a.Stats()
		prefix := "app." + name + "."
		reg.Gauge(prefix + "issued").Set(float64(st.Issued))
		reg.Gauge(prefix + "l3_hits").Set(float64(st.L3Hits))
		reg.Gauge(prefix + "l3_misses").Set(float64(st.L3Misses))
		reg.Gauge(prefix + "bytes_moved").Set(float64(st.BytesMoved))
		if h := a.ReadLatencyHistogram(); h != nil {
			reg.RegisterHistogram(prefix+"read_latency_ps", h)
		}
		if a.reg != nil {
			mst := a.reg.Stats(name)
			if mst.Requests > 0 {
				reg.Gauge(prefix + "memguard_throttled_ns").Set(mst.ThrottledTime.Nanoseconds())
				reg.Gauge(prefix + "memguard_throttle_events").Set(float64(mst.ThrottleEvents))
			}
		}
	}

	if p.distributed {
		for i, ch := range p.chans {
			prefix := fmt.Sprintf("dram.ch%d", i)
			reg.Gauge(prefix + ".row_hit_rate").Set(ch.ctrl.Stats().RowHitRate())
			ch.ctrl.RegisterLatencyHistogramsPrefixed(reg, prefix)
		}
		reg.Gauge("dram.row_hit_rate").Set(p.RowHitRate())
	} else {
		dst := p.mem.Stats()
		reg.Gauge("dram.row_hit_rate").Set(dst.RowHitRate())
		p.mem.RegisterLatencyHistograms(reg)
	}

	p.mesh.SyncCounters()
	reg.Gauge("noc.delivered_total").Set(float64(p.mesh.Delivered()))
	reg.Gauge("noc.flit_hops_total").Set(float64(p.mesh.FlitHops()))

	if p.distributed {
		var total sim.Duration
		seen := false
		for k, r := range p.regs {
			if r == nil {
				continue
			}
			seen = true
			total += r.Overhead()
			reg.Gauge(fmt.Sprintf("memguard.cluster%d.overhead_ns", k)).Set(r.Overhead().Nanoseconds())
		}
		if seen {
			reg.Gauge("memguard.overhead_ns").Set(total.Nanoseconds())
		}
		for i, ch := range p.chans {
			if ch.arb != nil {
				reg.Gauge(fmt.Sprintf("mpam.ch%d.utilization", i)).Set(ch.arb.Utilization())
			}
		}
	} else {
		if p.reg != nil {
			reg.Gauge("memguard.overhead_ns").Set(p.reg.Overhead().Nanoseconds())
		}
		if p.mpamArb != nil {
			reg.Gauge("mpam.utilization").Set(p.mpamArb.Utilization())
		}
	}
	if p.aud != nil {
		p.aud.PublishMetrics(reg)
	}
	if p.ncCache != nil {
		// Mirror the analytic-plane cache counters (monotone per run;
		// the cache is per-platform so values are deterministic for a
		// given scenario and seed).
		st := p.ncCache.Stats()
		reg.Counter("netcalc.cache_hits").Store(st.Hits)
		reg.Counter("netcalc.cache_misses").Store(st.Misses)
		reg.Counter("netcalc.interned_curves").Store(st.InternedCurves)
	}
	s.Monitors.Snapshot(reg, now)
}
