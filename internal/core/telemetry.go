package core

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/telemetry"
)

// EnableTelemetry builds a telemetry suite and threads it through
// every assembled subsystem: the simulation kernel (event counters and
// dispatch-rate samples), the DRAM controller (per-bank service spans,
// refresh, mode switches), the mesh (per-flow delivery spans and
// PMU-style monitors), MemGuard (stall spans, depletion events,
// per-entity monitors), the per-cluster L3s, and — if already enabled
// — the MPAM channel arbiter. withTrace additionally records a
// Chrome trace_event timeline; metrics and monitors are always on.
//
// Call once, before traffic starts. Returns the suite for dumping.
func (p *Platform) EnableTelemetry(withTrace bool) (*telemetry.Suite, error) {
	if p.tel != nil {
		return nil, fmt.Errorf("core: telemetry already enabled")
	}
	window := sim.Millisecond
	if p.cfg.MemGuard != nil {
		window = p.cfg.MemGuard.Period
	}
	s := telemetry.NewSuite(withTrace, window)
	p.tel = s

	p.Eng.SetObserver(telemetry.NewEngineObserver(s.Registry, s.Tracer, 0))
	p.mem.SetTelemetry(s.Registry, s.Tracer)
	p.mesh.SetTelemetry(s.Registry, s.Tracer, s.Monitors)
	if p.reg != nil {
		p.reg.SetTelemetry(s.Registry, s.Tracer, s.Monitors)
	}
	for i, cl := range p.clusters {
		cl.L3().SetTelemetry(s.Registry, fmt.Sprintf("l3.cluster%d", i))
	}
	if p.mpamArb != nil {
		p.mpamArb.SetTelemetry(s.Registry, s.Tracer, s.Monitors)
	}
	return s, nil
}

// Telemetry returns the platform's suite (nil when disabled).
func (p *Platform) Telemetry() *telemetry.Suite { return p.tel }

// SnapshotMetrics folds snapshot-style state into the registry: live
// latency histograms (adopted, not copied), per-app counters, DRAM
// aggregate ratios, MemGuard regulation outcomes, and the PMU
// monitors' window readings. Call it at dump time; it is idempotent.
func (p *Platform) SnapshotMetrics() {
	s := p.tel
	if s == nil || s.Registry == nil {
		return
	}
	reg := s.Registry
	now := p.Eng.Now()

	// Live events only: Pending() also counts lazily-reclaimed canceled
	// records, which would make the gauge drift with kernel internals.
	reg.Gauge("sim.events_pending").Set(float64(p.Eng.PendingLive()))

	for _, name := range p.order {
		a := p.apps[name]
		st := a.Stats()
		prefix := "app." + name + "."
		reg.Gauge(prefix + "issued").Set(float64(st.Issued))
		reg.Gauge(prefix + "l3_hits").Set(float64(st.L3Hits))
		reg.Gauge(prefix + "l3_misses").Set(float64(st.L3Misses))
		reg.Gauge(prefix + "bytes_moved").Set(float64(st.BytesMoved))
		if h := a.ReadLatencyHistogram(); h != nil {
			reg.RegisterHistogram(prefix+"read_latency_ps", h)
		}
		if p.reg != nil {
			mst := p.reg.Stats(name)
			if mst.Requests > 0 {
				reg.Gauge(prefix + "memguard_throttled_ns").Set(mst.ThrottledTime.Nanoseconds())
				reg.Gauge(prefix + "memguard_throttle_events").Set(float64(mst.ThrottleEvents))
			}
		}
	}

	dst := p.mem.Stats()
	reg.Gauge("dram.row_hit_rate").Set(dst.RowHitRate())
	p.mem.RegisterLatencyHistograms(reg)

	reg.Gauge("noc.delivered_total").Set(float64(p.mesh.Delivered()))
	reg.Gauge("noc.flit_hops_total").Set(float64(p.mesh.FlitHops()))

	if p.reg != nil {
		reg.Gauge("memguard.overhead_ns").Set(p.reg.Overhead().Nanoseconds())
	}
	if p.mpamArb != nil {
		reg.Gauge("mpam.utilization").Set(p.mpamArb.Utilization())
	}
	if p.aud != nil {
		p.aud.PublishMetrics(reg)
	}
	if p.ncCache != nil {
		// Mirror the analytic-plane cache counters (monotone per run;
		// the cache is per-platform so values are deterministic for a
		// given scenario and seed).
		st := p.ncCache.Stats()
		reg.Counter("netcalc.cache_hits").Store(st.Hits)
		reg.Counter("netcalc.cache_misses").Store(st.Misses)
		reg.Counter("netcalc.interned_curves").Store(st.InternedCurves)
	}
	s.Monitors.Snapshot(reg, now)
}
