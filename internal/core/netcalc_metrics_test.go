package core

import (
	"bufio"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/sim"
)

// lintOpenMetrics replicates cmd/omlint's exposition checks (the
// command is package main, so the test carries its own validator):
// every line is a TYPE/HELP/UNIT comment, a sample with a legal name
// and parseable value, or the single trailing # EOF; TYPE declarations
// are unique.
func lintOpenMetrics(t *testing.T, exposition string) {
	t.Helper()
	nameRe := regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	sampleRe := regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})?\s+(\S+)(\s+\S+)?$`)
	validTypes := map[string]bool{
		"counter": true, "gauge": true, "histogram": true, "summary": true,
		"untyped": true, "info": true, "stateset": true, "gaugehistogram": true, "unknown": true,
	}
	types := make(map[string]bool)
	sawEOF := false
	n := 0
	sc := bufio.NewScanner(strings.NewReader(exposition))
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
	for sc.Scan() {
		n++
		line := sc.Text()
		if sawEOF {
			t.Fatalf("line %d: content after # EOF", n)
		}
		switch {
		case line == "# EOF":
			sawEOF = true
		case strings.HasPrefix(line, "# TYPE "):
			fields := strings.Fields(line)
			if len(fields) != 4 {
				t.Fatalf("line %d: malformed TYPE comment %q", n, line)
			}
			name, typ := fields[2], fields[3]
			if !nameRe.MatchString(name) {
				t.Fatalf("line %d: illegal family name %q", n, name)
			}
			if !validTypes[typ] {
				t.Fatalf("line %d: unknown type %q", n, typ)
			}
			if types[name] {
				t.Fatalf("line %d: duplicate TYPE for %q", n, name)
			}
			types[name] = true
		case strings.HasPrefix(line, "# HELP "), strings.HasPrefix(line, "# UNIT "):
		case strings.HasPrefix(line, "#"):
			t.Fatalf("line %d: unknown comment %q", n, line)
		case strings.TrimSpace(line) == "":
			t.Fatalf("line %d: blank line in exposition", n)
		default:
			m := sampleRe.FindStringSubmatch(line)
			if m == nil {
				t.Fatalf("line %d: malformed sample %q", n, line)
			}
			switch v := m[3]; v {
			case "+Inf", "-Inf", "NaN":
			default:
				if _, err := strconv.ParseFloat(v, 64); err != nil {
					t.Fatalf("line %d: unparseable value %q", n, v)
				}
			}
		}
	}
	if !sawEOF {
		t.Fatal("missing # EOF terminator")
	}
}

// sampleValue extracts one sample's value from an exposition.
func sampleValue(t *testing.T, exposition, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(exposition, "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.ParseFloat(strings.Fields(rest)[0], 64)
			if err != nil {
				t.Fatalf("sample %s: bad value %q", name, rest)
			}
			return v
		}
	}
	t.Fatalf("sample %s not found in exposition", name)
	return 0
}

// TestNetcalcCacheMetricsExposed checks the observability satellite:
// with auditing live, the /metrics exposition carries the analytic
// cache counters, the snapshot stays omlint-clean, and the published
// values mirror the platform cache's own stats.
func TestNetcalcCacheMetricsExposed(t *testing.T) {
	// 4 hogs: hog1 (2,0) and hog3 (1,1) sit equidistant from the memory
	// node, so their NoC service curves are structurally identical and
	// the second registration's composition must hit the cache.
	p, _, err := BuildPlatform(RunSpec{
		Hogs: 4, Duration: sim.Millisecond, Audit: true, Telemetry: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	p.StartApps()
	p.RunFor(sim.Millisecond)
	p.SnapshotMetrics()

	var sb strings.Builder
	if err := p.Telemetry().Registry.WriteOpenMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	om := sb.String()
	lintOpenMetrics(t, om)

	st := p.ncCache.Stats()
	if st.Misses == 0 {
		t.Fatal("audited registration composed no curves through the cache")
	}
	if st.Hits == 0 {
		t.Fatal("co-located apps share curve compositions; expected cache hits")
	}
	if got := sampleValue(t, om, "netcalc_cache_hits_total"); got != float64(st.Hits) {
		t.Fatalf("netcalc_cache_hits_total = %v, cache says %d", got, st.Hits)
	}
	if got := sampleValue(t, om, "netcalc_cache_misses_total"); got != float64(st.Misses) {
		t.Fatalf("netcalc_cache_misses_total = %v, cache says %d", got, st.Misses)
	}
	if got := sampleValue(t, om, "netcalc_interned_curves_total"); got != float64(st.InternedCurves) || got == 0 {
		t.Fatalf("netcalc_interned_curves_total = %v, cache says %d", got, st.InternedCurves)
	}
}

// TestNetcalcCacheMetricsAbsentWithoutAudit pins the gating: a
// telemetry-only run must not publish analytic-cache counters (there
// is no cache to observe), keeping non-audited snapshots unchanged.
func TestNetcalcCacheMetricsAbsentWithoutAudit(t *testing.T) {
	p, _, err := BuildPlatform(RunSpec{
		Hogs: 1, Duration: sim.Millisecond, Telemetry: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	p.StartApps()
	p.RunFor(sim.Millisecond)
	p.SnapshotMetrics()
	var sb strings.Builder
	if err := p.Telemetry().Registry.WriteOpenMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "netcalc_") {
		t.Fatal("netcalc cache counters published without auditing")
	}
}
