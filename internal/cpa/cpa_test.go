package cpa

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func ms(v float64) sim.Duration { return sim.US(1000 * v) }

func TestEventModelValidation(t *testing.T) {
	if (EventModel{P: 0}).Validate() == nil {
		t.Error("zero period accepted")
	}
	if (EventModel{P: 1, J: -1}).Validate() == nil {
		t.Error("negative jitter accepted")
	}
	if (EventModel{P: ms(10), J: ms(2), D: ms(1)}).Validate() != nil {
		t.Error("valid model rejected")
	}
}

func TestEtaPlusPeriodic(t *testing.T) {
	m := EventModel{P: ms(10)}
	cases := []struct {
		dt   sim.Duration
		want int64
	}{
		{0, 0}, {1, 1}, {ms(10), 1}, {ms(10) + 1, 2}, {ms(25), 3}, {ms(100), 10},
	}
	for _, c := range cases {
		if got := m.EtaPlus(c.dt); got != c.want {
			t.Errorf("EtaPlus(%v) = %d, want %d", c.dt, got, c.want)
		}
	}
}

func TestEtaPlusJitterAndDistance(t *testing.T) {
	// With jitter 15ms on a 10ms period, a tiny window can hold
	// ceil((eps+15)/10) = 2 events — unless D limits it.
	m := EventModel{P: ms(10), J: ms(15)}
	if got := m.EtaPlus(1); got != 2 {
		t.Errorf("jittered EtaPlus(eps) = %d, want 2", got)
	}
	md := EventModel{P: ms(10), J: ms(15), D: ms(5)}
	if got := md.EtaPlus(1); got != 1 {
		t.Errorf("distance-limited EtaPlus(eps) = %d, want 1", got)
	}
	if got := md.EtaPlus(ms(11)); got != 3 {
		// min(ceil(26/10)=3, ceil(11/5)=3)
		t.Errorf("EtaPlus(11ms) = %d, want 3", got)
	}
}

func TestDeltaMinus(t *testing.T) {
	m := EventModel{P: ms(10), J: ms(4)}
	if got := m.DeltaMinus(1); got != 0 {
		t.Errorf("DeltaMinus(1) = %v", got)
	}
	if got := m.DeltaMinus(2); got != ms(6) {
		t.Errorf("DeltaMinus(2) = %v, want 6ms", got)
	}
	// Huge jitter: clamped at 0, or D if present.
	hj := EventModel{P: ms(10), J: ms(50), D: ms(2)}
	if got := hj.DeltaMinus(2); got != ms(2) {
		t.Errorf("DeltaMinus with D = %v, want 2ms", got)
	}
}

func TestQuickEtaDeltaPseudoInverse(t *testing.T) {
	// Property: eta+(delta-(n)) <= n and delta-(eta+(dt)) <= dt for
	// consistent PJD models.
	f := func(p8, j8, d8 uint8, n8 uint8) bool {
		m := EventModel{
			P: sim.Duration(p8%50+1) * sim.Microsecond,
			J: sim.Duration(j8%30) * sim.Microsecond,
		}
		d := sim.Duration(d8%10) * sim.Microsecond
		if d < m.P { // D beyond P would be inconsistent
			m.D = d
		}
		n := int64(n8%20) + 1
		if m.EtaPlus(m.DeltaMinus(n)) > n {
			return false
		}
		dt := sim.Duration(n8) * sim.Microsecond
		return m.DeltaMinus(m.EtaPlus(dt)) <= dt
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestTaskValidation(t *testing.T) {
	s := NewSystem()
	if s.AddTask(Task{Name: "", Resource: "r", WCET: 1}) == nil {
		t.Error("unnamed task accepted")
	}
	if s.AddTask(Task{Name: "a", Resource: "", WCET: 1}) == nil {
		t.Error("resource-less task accepted")
	}
	if s.AddTask(Task{Name: "a", Resource: "r", WCET: 0}) == nil {
		t.Error("zero WCET accepted")
	}
	if s.AddTask(Task{Name: "a", Resource: "r", WCET: 5, BCET: 7}) == nil {
		t.Error("BCET > WCET accepted")
	}
	ok := Task{Name: "a", Resource: "r", WCET: ms(1), Input: EventModel{P: ms(10)}}
	if err := s.AddTask(ok); err != nil {
		t.Fatal(err)
	}
	if s.AddTask(ok) == nil {
		t.Error("duplicate task accepted")
	}
	if s.AddChain("", "a") == nil {
		t.Error("unnamed chain accepted")
	}
	if s.AddChain("c", "ghost") == nil {
		t.Error("chain with unknown task accepted")
	}
	if err := s.AddChain("c", "a"); err != nil {
		t.Fatal(err)
	}
	if s.AddChain("c", "a") == nil {
		t.Error("duplicate chain accepted")
	}
}

func TestSingleTaskResponse(t *testing.T) {
	s := NewSystem()
	if err := s.AddTask(Task{
		Name: "a", Resource: "cpu", WCET: ms(2), Priority: 1,
		Input: EventModel{P: ms(10)},
	}); err != nil {
		t.Fatal(err)
	}
	res, err := s.Analyze(0)
	if err != nil {
		t.Fatal(err)
	}
	if got := res["a"].WCRT; got != ms(2) {
		t.Errorf("WCRT = %v, want 2ms", got)
	}
	// Output jitter = WCRT - BCET = 0 when BCET defaults to WCET.
	if got := res["a"].Output.J; got != 0 {
		t.Errorf("output jitter = %v, want 0", got)
	}
}

func TestSPPInterferenceMatchesClassicRTA(t *testing.T) {
	// Same textbook set as the sched package: R3 = 10ms.
	s := NewSystem()
	add := func(name string, p, c float64, prio int) {
		t.Helper()
		if err := s.AddTask(Task{
			Name: name, Resource: "cpu", WCET: ms(c), Priority: prio,
			Input: EventModel{P: ms(p)},
		}); err != nil {
			t.Fatal(err)
		}
	}
	add("t1", 4, 1, 3)
	add("t2", 6, 2, 2)
	add("t3", 12, 3, 1)
	res, err := s.Analyze(0)
	if err != nil {
		t.Fatal(err)
	}
	if res["t1"].WCRT != ms(1) || res["t2"].WCRT != ms(3) || res["t3"].WCRT != ms(10) {
		t.Errorf("WCRTs = %v/%v/%v, want 1/3/10ms",
			res["t1"].WCRT, res["t2"].WCRT, res["t3"].WCRT)
	}
}

func TestOverloadDiverges(t *testing.T) {
	s := NewSystem()
	_ = s.AddTask(Task{Name: "a", Resource: "cpu", WCET: ms(8), Priority: 2, Input: EventModel{P: ms(10)}})
	_ = s.AddTask(Task{Name: "b", Resource: "cpu", WCET: ms(5), Priority: 1, Input: EventModel{P: ms(10)}})
	if _, err := s.Analyze(0); err == nil {
		t.Error("overloaded resource analyzed successfully")
	}
}

func TestChainJitterPropagation(t *testing.T) {
	// Chain: sensor task on cpu0 -> processing on cpu1. The
	// processing task inherits jitter equal to the sensor's response
	// variation.
	s := NewSystem()
	_ = s.AddTask(Task{
		Name: "sense", Resource: "cpu0", WCET: ms(2), BCET: ms(1), Priority: 1,
		Input: EventModel{P: ms(10)},
	})
	_ = s.AddTask(Task{
		Name: "proc", Resource: "cpu1", WCET: ms(3), Priority: 1,
	})
	if err := s.AddChain("e2e", "sense", "proc"); err != nil {
		t.Fatal(err)
	}
	res, err := s.Analyze(0)
	if err != nil {
		t.Fatal(err)
	}
	// sense alone: WCRT 2ms, output jitter 2-1 = 1ms.
	if got := res["sense"].Output.J; got != ms(1) {
		t.Errorf("sense output jitter = %v, want 1ms", got)
	}
	// proc inherits P=10ms and J=1ms.
	lat, err := s.PathLatency("e2e", res)
	if err != nil {
		t.Fatal(err)
	}
	if lat != ms(5) {
		t.Errorf("path latency = %v, want 5ms", lat)
	}
}

func TestChainWithInterferenceConverges(t *testing.T) {
	// Two chains crossing two resources with cross interference: the
	// global fixed point must converge and bound each path.
	s := NewSystem()
	_ = s.AddTask(Task{Name: "a1", Resource: "r1", WCET: ms(1), BCET: ms(0.5), Priority: 2, Input: EventModel{P: ms(8)}})
	_ = s.AddTask(Task{Name: "a2", Resource: "r2", WCET: ms(2), BCET: ms(1), Priority: 1})
	_ = s.AddTask(Task{Name: "b1", Resource: "r2", WCET: ms(1), BCET: ms(1), Priority: 2, Input: EventModel{P: ms(12)}})
	_ = s.AddTask(Task{Name: "b2", Resource: "r1", WCET: ms(2), BCET: ms(2), Priority: 1})
	_ = s.AddChain("A", "a1", "a2")
	_ = s.AddChain("B", "b1", "b2")
	res, err := s.Analyze(0)
	if err != nil {
		t.Fatal(err)
	}
	latA, _ := s.PathLatency("A", res)
	latB, _ := s.PathLatency("B", res)
	if latA <= 0 || latB <= 0 {
		t.Fatal("non-positive path latencies")
	}
	// Sanity: each path's latency at least the sum of its WCETs.
	if latA < ms(3) || latB < ms(3) {
		t.Errorf("latencies below execution demand: %v/%v", latA, latB)
	}
	// And bounded by something sensible (converged, not runaway).
	if latA > ms(50) || latB > ms(50) {
		t.Errorf("latencies diverged: %v/%v", latA, latB)
	}
}

func TestPathLatencyErrors(t *testing.T) {
	s := NewSystem()
	_ = s.AddTask(Task{Name: "a", Resource: "r", WCET: ms(1), Priority: 1, Input: EventModel{P: ms(10)}})
	_ = s.AddChain("c", "a")
	if _, err := s.PathLatency("ghost", nil); err == nil {
		t.Error("unknown chain accepted")
	}
	if _, err := s.PathLatency("c", map[string]Result{}); err == nil {
		t.Error("missing results accepted")
	}
}

func TestTieBreakIsConservative(t *testing.T) {
	// Equal priorities on one resource: both see each other as
	// interference.
	s := NewSystem()
	_ = s.AddTask(Task{Name: "x", Resource: "r", WCET: ms(2), Priority: 1, Input: EventModel{P: ms(10)}})
	_ = s.AddTask(Task{Name: "y", Resource: "r", WCET: ms(3), Priority: 1, Input: EventModel{P: ms(10)}})
	res, err := s.Analyze(0)
	if err != nil {
		t.Fatal(err)
	}
	if res["x"].WCRT < ms(5) || res["y"].WCRT < ms(5) {
		t.Errorf("tie-break not conservative: %v/%v", res["x"].WCRT, res["y"].WCRT)
	}
}

func TestNonPreemptiveBlockingTerm(t *testing.T) {
	// A high-priority request on a non-preemptive resource (a DRAM
	// command in flight) waits for the largest lower-priority service.
	build := func(np bool) sim.Duration {
		s := NewSystem()
		if err := s.AddTask(Task{
			Name: "hi", Resource: "dram", WCET: ms(1), Priority: 9,
			NonPreemptive: np, Input: EventModel{P: ms(20)},
		}); err != nil {
			t.Fatal(err)
		}
		if err := s.AddTask(Task{
			Name: "lo", Resource: "dram", WCET: ms(4), Priority: 1,
			Input: EventModel{P: ms(20)},
		}); err != nil {
			t.Fatal(err)
		}
		res, err := s.Analyze(0)
		if err != nil {
			t.Fatal(err)
		}
		return res["hi"].WCRT
	}
	preemptive := build(false)
	nonPreemptive := build(true)
	if preemptive != ms(1) {
		t.Errorf("preemptive hi WCRT = %v, want 1ms", preemptive)
	}
	if nonPreemptive != ms(5) {
		t.Errorf("non-preemptive hi WCRT = %v, want 1+4 = 5ms", nonPreemptive)
	}
}

func TestNonPreemptiveNoLowerPriorityNoBlocking(t *testing.T) {
	s := NewSystem()
	if err := s.AddTask(Task{
		Name: "only", Resource: "r", WCET: ms(2), Priority: 1,
		NonPreemptive: true, Input: EventModel{P: ms(10)},
	}); err != nil {
		t.Fatal(err)
	}
	res, err := s.Analyze(0)
	if err != nil {
		t.Fatal(err)
	}
	if res["only"].WCRT != ms(2) {
		t.Errorf("WCRT = %v, want 2ms (no one to block on)", res["only"].WCRT)
	}
}
