// Package cpa implements a compact Compositional Performance Analysis
// (CPA, [18] in the paper): periodic-with-jitter-and-minimum-distance
// (PJD) event models, busy-window response-time analysis per resource
// under static-priority preemptive scheduling, jitter propagation
// along task chains, and end-to-end path latency bounds obtained by
// iterating the per-resource analyses to a global fixed point.
//
// Section V of the paper argues that admission control simplifies
// exactly this kind of analysis: with a central RM shaping every
// source, per-resource arrival models stop depending on each other and
// the fixed-point iteration collapses. The benchmarks compare both
// styles.
package cpa

import (
	"fmt"
	"sort"

	"repro/internal/sim"
)

// EventModel is a PJD arrival model: events arrive with period P,
// jitter J, and a minimum inter-arrival distance D (0 = none).
type EventModel struct {
	P sim.Duration
	J sim.Duration
	D sim.Duration
}

// Validate checks the model.
func (m EventModel) Validate() error {
	if m.P <= 0 {
		return fmt.Errorf("cpa: event model needs positive period, got %v", m.P)
	}
	if m.J < 0 || m.D < 0 {
		return fmt.Errorf("cpa: negative jitter or distance")
	}
	return nil
}

// EtaPlus returns the maximum number of events in any half-open window
// of length dt.
func (m EventModel) EtaPlus(dt sim.Duration) int64 {
	if dt <= 0 {
		return 0
	}
	n := ceilDiv(dt+m.J, m.P)
	if m.D > 0 {
		if byD := ceilDiv(dt, m.D); byD < n {
			n = byD
		}
	}
	return n
}

// DeltaMinus returns the minimum distance between the first and the
// n-th event (n >= 1).
func (m EventModel) DeltaMinus(n int64) sim.Duration {
	if n <= 1 {
		return 0
	}
	d := (n-1)*int64(m.P) - int64(m.J)
	if d < 0 {
		d = 0
	}
	if m.D > 0 {
		if byD := (n - 1) * int64(m.D); byD > d {
			d = byD
		}
	}
	return sim.Duration(d)
}

func ceilDiv(a, b sim.Duration) int64 {
	if a <= 0 {
		return 0
	}
	return int64((a + b - 1) / b)
}

// Task is one task (or communication) mapped to a resource.
type Task struct {
	Name     string
	Resource string
	WCET     sim.Duration
	BCET     sim.Duration // 0 = assume WCET (no jitter amplification)
	Priority int          // higher = more important
	// NonPreemptive marks the resource service as non-preemptable for
	// this task's resource class (a DRAM command, a wormhole packet):
	// lower-priority work already in service blocks for up to its
	// WCET. The blocking term is the classical max over lower
	// priorities on the same resource.
	NonPreemptive bool
	// Input is the external activation model for chain heads;
	// non-head tasks inherit their predecessor's output model.
	Input EventModel
}

// Validate checks the task.
func (t Task) Validate() error {
	if t.Name == "" || t.Resource == "" {
		return fmt.Errorf("cpa: task needs name and resource")
	}
	if t.WCET <= 0 {
		return fmt.Errorf("cpa: task %s needs positive WCET", t.Name)
	}
	if t.BCET < 0 || t.BCET > t.WCET {
		return fmt.Errorf("cpa: task %s BCET outside [0, WCET]", t.Name)
	}
	return nil
}

// Result is the analysis outcome for one task.
type Result struct {
	WCRT sim.Duration // worst-case response time
	BCRT sim.Duration // best-case response time (BCET)
	// Output is the event model of the task's completions, feeding any
	// successor in its chain.
	Output EventModel
}

// System is a set of tasks on shared resources plus task chains.
type System struct {
	tasks  map[string]*Task
	order  []string
	chains map[string][]string // chain name -> task names in order
}

// NewSystem returns an empty system.
func NewSystem() *System {
	return &System{tasks: make(map[string]*Task), chains: make(map[string][]string)}
}

// AddTask registers a task.
func (s *System) AddTask(t Task) error {
	if err := t.Validate(); err != nil {
		return err
	}
	if _, dup := s.tasks[t.Name]; dup {
		return fmt.Errorf("cpa: duplicate task %q", t.Name)
	}
	if t.BCET == 0 {
		t.BCET = t.WCET
	}
	s.tasks[t.Name] = &t
	s.order = append(s.order, t.Name)
	return nil
}

// AddChain declares an end-to-end effect chain: the first task's Input
// model activates the chain; each completion activates the next task.
func (s *System) AddChain(name string, taskNames ...string) error {
	if name == "" || len(taskNames) == 0 {
		return fmt.Errorf("cpa: chain needs a name and at least one task")
	}
	if _, dup := s.chains[name]; dup {
		return fmt.Errorf("cpa: duplicate chain %q", name)
	}
	for _, tn := range taskNames {
		if _, ok := s.tasks[tn]; !ok {
			return fmt.Errorf("cpa: chain %s references unknown task %q", name, tn)
		}
	}
	s.chains[name] = append([]string(nil), taskNames...)
	return nil
}

// Analyze runs the global CPA fixed point: per-resource busy-window
// analyses with jitter propagation along chains, iterated until event
// models converge (or maxIter, an error: the system has no fixed
// point below divergence, i.e. it is overloaded).
func (s *System) Analyze(maxIter int) (map[string]Result, error) {
	if maxIter <= 0 {
		maxIter = 100
	}
	// Working event models, initialized from inputs; chain successors
	// start with their predecessor's input (jitter grows from there).
	models := make(map[string]EventModel, len(s.tasks))
	for name, t := range s.tasks {
		m := t.Input
		if m.P == 0 {
			// Successor tasks may omit Input; give them a placeholder
			// from the chain head below.
			m = EventModel{P: sim.Second}
		}
		models[name] = m
	}
	for _, chain := range s.chains {
		head := s.tasks[chain[0]]
		if err := head.Input.Validate(); err != nil {
			return nil, fmt.Errorf("cpa: chain head %s: %w", head.Name, err)
		}
		for _, tn := range chain {
			m := models[tn]
			m.P = head.Input.P // same long-run rate along the chain
			models[tn] = m
		}
	}

	results := make(map[string]Result, len(s.tasks))
	for iter := 0; iter < maxIter; iter++ {
		changed := false
		for _, name := range s.order {
			t := s.tasks[name]
			r, err := s.analyzeTask(t, models)
			if err != nil {
				return nil, err
			}
			results[name] = r
		}
		// Propagate along chains: successor input = predecessor output.
		for _, chain := range s.chains {
			for i := 1; i < len(chain); i++ {
				prev := results[chain[i-1]]
				cur := models[chain[i]]
				if prev.Output != cur {
					models[chain[i]] = prev.Output
					changed = true
				}
			}
		}
		if !changed {
			return results, nil
		}
	}
	return nil, fmt.Errorf("cpa: no convergence after %d iterations (overload or circular dependency)", maxIter)
}

// analyzeTask is the busy-window analysis for one task under SPP on
// its resource.
func (s *System) analyzeTask(t *Task, models map[string]EventModel) (Result, error) {
	m := models[t.Name]
	if err := m.Validate(); err != nil {
		return Result{}, fmt.Errorf("cpa: task %s: %w", t.Name, err)
	}
	var hp []*Task
	var blocking sim.Duration
	for _, name := range s.order {
		o := s.tasks[name]
		if o.Name == t.Name || o.Resource != t.Resource {
			continue
		}
		if o.Priority >= t.Priority {
			// Ties resolved against us (conservative).
			hp = append(hp, o)
		} else if t.NonPreemptive && o.WCET > blocking {
			// Non-preemptive service: one lower-priority request may
			// already occupy the resource.
			blocking = o.WCET
		}
	}
	sort.Slice(hp, func(i, j int) bool { return hp[i].Name < hp[j].Name })

	interference := func(w sim.Duration) sim.Duration {
		var sum sim.Duration
		for _, h := range hp {
			sum += sim.Duration(models[h.Name].EtaPlus(w)) * h.WCET
		}
		return sum
	}

	// Level-i busy window (including any non-preemptive blocking).
	busy := blocking + t.WCET
	for k := 0; k < 10000; k++ {
		next := blocking + sim.Duration(m.EtaPlus(busy))*t.WCET + interference(busy)
		if next == busy {
			break
		}
		busy = next
		if busy > 1000*m.P {
			return Result{}, fmt.Errorf("cpa: task %s busy window diverges (resource %s overloaded)",
				t.Name, t.Resource)
		}
	}
	// Response per activation within the window.
	q := m.EtaPlus(busy)
	var wcrt sim.Duration
	for n := int64(1); n <= q; n++ {
		w := blocking + sim.Duration(n)*t.WCET
		for k := 0; k < 10000; k++ {
			next := blocking + sim.Duration(n)*t.WCET + interference(w)
			if next == w {
				break
			}
			w = next
		}
		if r := w - m.DeltaMinus(n); r > wcrt {
			wcrt = r
		}
	}

	out := EventModel{
		P: m.P,
		J: m.J + (wcrt - t.BCET),
		D: t.BCET,
	}
	if out.J < 0 {
		out.J = 0
	}
	return Result{WCRT: wcrt, BCRT: t.BCET, Output: out}, nil
}

// PathLatency bounds the end-to-end latency of a chain: the sum of its
// tasks' worst-case response times (the standard compositional bound).
func (s *System) PathLatency(chain string, results map[string]Result) (sim.Duration, error) {
	names, ok := s.chains[chain]
	if !ok {
		return 0, fmt.Errorf("cpa: unknown chain %q", chain)
	}
	var sum sim.Duration
	for _, tn := range names {
		r, ok := results[tn]
		if !ok {
			return 0, fmt.Errorf("cpa: no result for task %q", tn)
		}
		sum += r.WCRT
	}
	return sum, nil
}
