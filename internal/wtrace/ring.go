package wtrace

import (
	"io"
	"strconv"
	"sync"
)

// ring is the bounded completed-span buffer behind /v1/traces. Writers
// (shard loops, the HTTP handler) push under a short critical section;
// a scrape snapshots the contents and renders outside the lock, so a
// slow reader never stalls the request path.
type ring struct {
	mu    sync.Mutex
	buf   []Span
	next  int    // next write position
	n     uint64 // total spans ever pushed
	wrapd bool   // buf has wrapped at least once
}

func newRing(size int) *ring {
	return &ring{buf: make([]Span, size)}
}

// push appends a span, overwriting the oldest when full. Reports
// whether an unscraped span was overwritten.
func (r *ring) push(s Span) (overwrote bool) {
	r.mu.Lock()
	overwrote = r.wrapd || r.n >= uint64(len(r.buf))
	r.buf[r.next] = s
	r.next++
	r.n++
	if r.next == len(r.buf) {
		r.next = 0
		r.wrapd = true
	}
	r.mu.Unlock()
	return overwrote
}

func (r *ring) total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// snapshot copies the live spans oldest-first and returns them with
// the total-ever-pushed count.
func (r *ring) snapshot() ([]Span, uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.wrapd {
		out := make([]Span, r.next)
		copy(out, r.buf[:r.next])
		return out, r.n
	}
	out := make([]Span, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out, r.n
}

// writeTraceEvents renders the ring as a Chrome trace_event JSON
// object. Beyond the standard "traceEvents"/"displayTimeUnit" keys —
// which make the payload load directly in Perfetto / chrome://tracing
// — it carries "spans" (in the payload), "spans_total" (ever
// recorded), and "dropped" (overwritten before scrape) so CI can
// assert span conservation with jq. Viewers ignore unknown top-level
// keys.
//
// Timestamps are microseconds relative to epochNS (trace_event "ts");
// span/trace identity and attributes ride in "args".
func (r *ring) writeTraceEvents(w io.Writer, epochNS int64) error {
	spans, n := r.snapshot()
	dropped := uint64(0)
	if n > uint64(len(spans)) {
		dropped = n - uint64(len(spans))
	}

	b := make([]byte, 0, 256+192*len(spans))
	b = append(b, `{"traceEvents":[`...)
	// Process metadata + one named thread lane per hash bucket: spans
	// of a trace share a lane, concurrent traces spread across lanes.
	b = append(b, `{"name":"process_name","ph":"M","pid":1,"args":{"name":"rmd (wall clock)"}}`...)
	for lane := 0; lane < lanes; lane++ {
		b = append(b, `,{"name":"thread_name","ph":"M","pid":1,"tid":`...)
		b = strconv.AppendInt(b, int64(lane+1), 10)
		b = append(b, `,"args":{"name":"wtrace.lane`...)
		b = strconv.AppendInt(b, int64(lane), 10)
		b = append(b, `"}}`...)
	}
	for _, s := range spans {
		b = append(b, `,{"name":`...)
		b = strconv.AppendQuote(b, s.Name)
		b = append(b, `,"ph":"X","pid":1,"tid":`...)
		b = strconv.AppendInt(b, int64(laneOf(s.TraceID)+1), 10)
		b = append(b, `,"ts":`...)
		b = appendMicros(b, s.StartNS-epochNS)
		b = append(b, `,"dur":`...)
		b = appendMicros(b, s.DurNS())
		b = append(b, `,"args":{"trace_id":"`...)
		b = append(b, s.TraceID.String()...)
		b = append(b, `","span_id":"`...)
		b = append(b, s.SpanID.String()...)
		b = append(b, '"')
		if !s.Parent.IsZero() {
			b = append(b, `,"parent_id":"`...)
			b = append(b, s.Parent.String()...)
			b = append(b, '"')
		}
		for i := 0; i+1 < len(s.Attrs); i += 2 {
			b = append(b, ',')
			b = strconv.AppendQuote(b, s.Attrs[i])
			b = append(b, ':')
			b = strconv.AppendQuote(b, s.Attrs[i+1])
		}
		b = append(b, `}}`...)
	}
	b = append(b, `],"displayTimeUnit":"ns","spans":`...)
	b = strconv.AppendInt(b, int64(len(spans)), 10)
	b = append(b, `,"spans_total":`...)
	b = strconv.AppendUint(b, n, 10)
	b = append(b, `,"dropped":`...)
	b = strconv.AppendUint(b, dropped, 10)
	b = append(b, `}`...)
	b = append(b, '\n')
	_, err := w.Write(b)
	return err
}

// appendMicros renders ns as microseconds with 3 decimals (trace_event
// "ts"/"dur" are µs; the fraction keeps ns precision).
func appendMicros(b []byte, ns int64) []byte {
	neg := ns < 0
	if neg {
		ns = -ns
		b = append(b, '-')
	}
	b = strconv.AppendInt(b, ns/1000, 10)
	b = append(b, '.')
	frac := ns % 1000
	b = append(b, byte('0'+frac/100), byte('0'+frac/10%10), byte('0'+frac%10))
	return b
}
