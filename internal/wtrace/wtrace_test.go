package wtrace

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// fixedClock returns a deterministic advancing clock for tests.
func fixedClock(startNS int64, stepNS int64) func() time.Time {
	var mu sync.Mutex
	now := startNS
	return func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		t := now
		now += stepNS
		return time.Unix(0, t)
	}
}

func TestTraceparentRoundTrip(t *testing.T) {
	tid := TraceID{0x4b, 0xf9, 0x2f, 0x35, 0x77, 0xb3, 0x4d, 0xa6, 0xa3, 0xce, 0x92, 0x9d, 0x0e, 0x0e, 0x47, 0x36}
	sid := SpanID{0x00, 0xf0, 0x67, 0xaa, 0x0b, 0xa9, 0x02, 0xb7}
	h := Traceparent(tid, sid, FlagSampled)
	want := "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	if h != want {
		t.Fatalf("Traceparent = %q, want %q", h, want)
	}
	gotTID, gotSID, flags, err := ParseTraceparent(h)
	if err != nil {
		t.Fatalf("ParseTraceparent(%q): %v", h, err)
	}
	if gotTID != tid || gotSID != sid || flags != FlagSampled {
		t.Fatalf("round trip mismatch: %v %v %02x", gotTID, gotSID, flags)
	}
}

func TestTraceparentInvalid(t *testing.T) {
	cases := []string{
		"",
		"00",
		"00-abc-def-01",
		"01-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", // unknown version
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01", // zero trace id
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01", // zero span id
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-zz", // bad flags hex
		"00-XYZ92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", // bad trace hex
	}
	for _, h := range cases {
		if _, _, _, err := ParseTraceparent(h); err == nil {
			t.Errorf("ParseTraceparent(%q): want error, got nil", h)
		}
	}
}

func TestSamplingBounds(t *testing.T) {
	// Sample 0 (and nil tracer): StartRequest returns nil.
	var nilT *Tracer
	if rt := nilT.StartRequest(""); rt != nil {
		t.Fatal("nil tracer sampled a request")
	}
	off := New(Config{Sample: 0, Seed: 1, Now: fixedClock(1e9, 1)})
	for i := 0; i < 1000; i++ {
		if rt := off.StartRequest(""); rt != nil {
			t.Fatal("sample=0 tracer sampled a request")
		}
	}
	on := New(Config{Sample: 1, Seed: 1, Now: fixedClock(1e9, 1)})
	for i := 0; i < 1000; i++ {
		if rt := on.StartRequest(""); rt == nil {
			t.Fatal("sample=1 tracer skipped a request")
		}
	}
}

func TestSamplingFraction(t *testing.T) {
	tr := New(Config{Sample: 0.25, Seed: 42, Now: fixedClock(1e9, 1)})
	const n = 20000
	hits := 0
	for i := 0; i < n; i++ {
		if tr.Sampled() {
			hits++
		}
	}
	frac := float64(hits) / n
	if frac < 0.22 || frac > 0.28 {
		t.Fatalf("sample=0.25 hit fraction = %.4f, want ~0.25", frac)
	}
}

func TestStartRequestJoinsInboundTrace(t *testing.T) {
	tr := New(Config{Sample: 1, Seed: 7, Now: fixedClock(1e9, 1)})
	inbound := "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	rt := tr.StartRequest(inbound)
	if rt == nil {
		t.Fatal("sampled request returned nil")
	}
	if rt.TraceID() != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Fatalf("TraceID = %q, want inbound id", rt.TraceID())
	}
	rt.Finish(rt.StartNS() + 1000)
	spans := tr.Snapshot()
	if len(spans) != 1 {
		t.Fatalf("got %d spans, want 1", len(spans))
	}
	if spans[0].Parent.String() != "00f067aa0ba902b7" {
		t.Fatalf("root parent = %s, want inbound span id", spans[0].Parent)
	}
	// Response header carries our trace id and root span id.
	resp := rt.Responseparent()
	if !strings.HasPrefix(resp, "00-4bf92f3577b34da6a3ce929d0e0e4736-") || !strings.HasSuffix(resp, "-01") {
		t.Fatalf("Responseparent = %q", resp)
	}
	// Malformed inbound header: new trace, no parent.
	rt2 := tr.StartRequest("garbage")
	if rt2 == nil || rt2.TraceID() == rt.TraceID() {
		t.Fatal("malformed traceparent should root a fresh trace")
	}
	rt2.Finish(rt2.StartNS())
	all := tr.Snapshot()
	if got := all[len(all)-1].Parent; !got.IsZero() {
		t.Fatalf("fresh root should have zero parent, got %s", got)
	}
}

func TestNilReqTraceNoOps(t *testing.T) {
	var rt *ReqTrace
	if rt.TraceID() != "" || !rt.Root().IsZero() || rt.StartNS() != 0 || rt.NowNS() != 0 || rt.Responseparent() != "" {
		t.Fatal("nil ReqTrace accessors should be zero")
	}
	if id := rt.Span(SpanID{}, "x", 0, 1); !id.IsZero() {
		t.Fatal("nil ReqTrace.Span should return zero id")
	}
	rt.Finish(0) // must not panic
}

func TestSpanCountersAndChromeExport(t *testing.T) {
	reg := telemetry.NewRegistry()
	chrome := telemetry.NewWallTracerAt(1e9)
	tr := New(Config{Sample: 1, Seed: 3, Registry: reg, Chrome: chrome, Now: fixedClock(1e9, 10)})
	rt := tr.StartRequest("")
	start := rt.StartNS()
	child := rt.Span(rt.Root(), "parse", start, start+500, "bytes", "128")
	rt.Span(child, "decode", start+100, start+200)
	rt.Finish(start+1000, "status", "200")
	if got := reg.Counter("wtrace_requests").Value(); got != 1 {
		t.Fatalf("wtrace_requests = %d, want 1", got)
	}
	if got := reg.Counter("wtrace_spans").Value(); got != 3 {
		t.Fatalf("wtrace_spans = %d, want 3", got)
	}
	if chrome.Events() != 3 {
		t.Fatalf("chrome events = %d, want 3", chrome.Events())
	}
	var sb strings.Builder
	if err := chrome.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("chrome export is not valid trace_event JSON: %v", err)
	}
	if !strings.Contains(sb.String(), `"trace_id"`) {
		t.Fatal("chrome export missing trace_id args")
	}
}

func TestWriteTraceEventsValidJSONAndConservation(t *testing.T) {
	tr := New(Config{Sample: 1, Seed: 9, Now: fixedClock(5e9, 7), RingSpans: 64})
	const reqs = 10
	for i := 0; i < reqs; i++ {
		rt := tr.StartRequest("")
		s := rt.StartNS()
		rt.Span(rt.Root(), "parse", s, s+100)
		rt.Span(rt.Root(), "decision", s+100, s+400, "shard", "0")
		rt.Finish(s+500, "status", "200")
	}
	var sb strings.Builder
	if err := tr.WriteTraceEvents(&sb); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		Spans       int              `json:"spans"`
		SpansTotal  int              `json:"spans_total"`
		Dropped     int              `json:"dropped"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("/v1/traces payload is not valid JSON: %v", err)
	}
	if doc.Spans != 3*reqs || doc.SpansTotal != 3*reqs || doc.Dropped != 0 {
		t.Fatalf("conservation: spans=%d total=%d dropped=%d, want %d/%d/0",
			doc.Spans, doc.SpansTotal, doc.Dropped, 3*reqs, 3*reqs)
	}
	// Every non-metadata event is a complete-phase span with ids.
	var xs int
	for _, ev := range doc.TraceEvents {
		if ev["ph"] == "X" {
			xs++
			args := ev["args"].(map[string]any)
			if args["trace_id"] == "" || args["span_id"] == "" {
				t.Fatalf("span event missing ids: %v", ev)
			}
		}
	}
	if xs != 3*reqs {
		t.Fatalf("got %d X events, want %d", xs, 3*reqs)
	}
}

func TestRingWraparoundCountsDropped(t *testing.T) {
	tr := New(Config{Sample: 1, Seed: 11, Now: fixedClock(1e9, 3), RingSpans: 8})
	for i := 0; i < 20; i++ {
		rt := tr.StartRequest("")
		rt.Finish(rt.StartNS() + 10)
	}
	var sb strings.Builder
	if err := tr.WriteTraceEvents(&sb); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Spans      int `json:"spans"`
		SpansTotal int `json:"spans_total"`
		Dropped    int `json:"dropped"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Spans != 8 || doc.SpansTotal != 20 || doc.Dropped != 12 {
		t.Fatalf("spans=%d total=%d dropped=%d, want 8/20/12", doc.Spans, doc.SpansTotal, doc.Dropped)
	}
	// Oldest-first: snapshot must be the 8 most recent, in order.
	spans := tr.Snapshot()
	for i := 1; i < len(spans); i++ {
		if spans[i].StartNS < spans[i-1].StartNS {
			t.Fatalf("snapshot out of order at %d", i)
		}
	}
}

// TestConcurrentWritesDuringScrape hammers the ring from writer
// goroutines while scrapes run concurrently — the satellite -race
// coverage for live /v1/traces scrapes.
func TestConcurrentWritesDuringScrape(t *testing.T) {
	tr := New(Config{Sample: 1, Seed: 13, RingSpans: 256})
	const writers, perWriter = 4, 2000
	var writerWG, scraperWG sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func() {
			defer writerWG.Done()
			for i := 0; i < perWriter; i++ {
				rt := tr.StartRequest("")
				s := rt.StartNS()
				rt.Span(rt.Root(), "decision", s, s+100, "shard", "1")
				rt.Finish(s+200, "status", "200")
			}
		}()
	}
	for sc := 0; sc < 2; sc++ {
		scraperWG.Add(1)
		go func() {
			defer scraperWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				var sb strings.Builder
				if err := tr.WriteTraceEvents(&sb); err != nil {
					t.Error(err)
					return
				}
				if !json.Valid([]byte(sb.String())) {
					t.Error("scrape produced invalid JSON under concurrency")
					return
				}
			}
		}()
	}
	writerWG.Wait()
	close(stop)
	scraperWG.Wait()
	if got := tr.SpansRecorded(); got != writers*perWriter*2 {
		t.Fatalf("SpansRecorded = %d, want %d", got, writers*perWriter*2)
	}
}
