// Package wtrace is the wall-clock request-tracing layer of the
// service plane: where internal/telemetry's Tracer records *simulated*
// time deterministically, wtrace records what the real clock did to a
// real request — HTTP parse, shard-queue wait, shard-loop decision,
// response encode — as spans of a W3C-trace-context trace.
//
// The design constraints mirror the paper's observability argument:
// every latency contribution on the request path must be attributable
// (per-span, per-stage), and the act of observing must not perturb the
// path being observed. Concretely:
//
//   - head-based probabilistic sampling: the sample/no-sample decision
//     is made once, when the request arrives, before any span exists.
//     An unsampled request pays one pointer test and one threshold
//     compare — no allocation, no lock, no clock read.
//   - completed spans only: code records a span after the fact with
//     explicit start/end timestamps, so the hot path never holds an
//     open-span handle across a channel hop.
//   - bounded memory: spans land in a fixed-size ring; a scrape
//     (/v1/traces) snapshots the ring without stalling writers.
//
// Trace identity follows the W3C Trace Context `traceparent` header
// (version 00): an inbound header joins the caller's trace (ids are
// reused, the inbound span becomes the root's parent); otherwise a new
// trace id is generated. The sampling decision is always local —
// governed by the configured probability, not the inbound flag — so a
// service with sampling off does no tracing work regardless of what
// clients send.
package wtrace

import (
	"encoding/hex"
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
)

// TraceID is the 16-byte W3C trace id (32 lowercase hex digits on the
// wire).
type TraceID [16]byte

// IsZero reports whether the id is the invalid all-zero id.
func (id TraceID) IsZero() bool { return id == TraceID{} }

// String renders the id as 32 lowercase hex digits.
func (id TraceID) String() string { return hex.EncodeToString(id[:]) }

// SpanID is the 8-byte W3C parent/span id (16 lowercase hex digits on
// the wire).
type SpanID [8]byte

// IsZero reports whether the id is the invalid all-zero id.
func (id SpanID) IsZero() bool { return id == SpanID{} }

// String renders the id as 16 lowercase hex digits.
func (id SpanID) String() string { return hex.EncodeToString(id[:]) }

// FlagSampled is the traceparent trace-flags bit signalling that the
// caller sampled the trace.
const FlagSampled byte = 0x01

// ParseTraceparent decodes a version-00 W3C traceparent header
// ("00-<32 hex>-<16 hex>-<2 hex>"). Unknown versions and malformed
// headers are errors; all-zero trace or span ids are invalid per spec.
func ParseTraceparent(h string) (TraceID, SpanID, byte, error) {
	var tid TraceID
	var sid SpanID
	parts := strings.Split(h, "-")
	if len(parts) != 4 {
		return tid, sid, 0, fmt.Errorf("wtrace: traceparent %q: want 4 dash-separated fields", h)
	}
	if parts[0] != "00" {
		return tid, sid, 0, fmt.Errorf("wtrace: traceparent version %q unsupported", parts[0])
	}
	if len(parts[1]) != 32 || len(parts[2]) != 16 || len(parts[3]) != 2 {
		return tid, sid, 0, fmt.Errorf("wtrace: traceparent %q: bad field lengths", h)
	}
	if _, err := hex.Decode(tid[:], []byte(parts[1])); err != nil {
		return tid, sid, 0, fmt.Errorf("wtrace: traceparent trace-id: %v", err)
	}
	if _, err := hex.Decode(sid[:], []byte(parts[2])); err != nil {
		return tid, sid, 0, fmt.Errorf("wtrace: traceparent parent-id: %v", err)
	}
	var fb [1]byte
	if _, err := hex.Decode(fb[:], []byte(parts[3])); err != nil {
		return tid, sid, 0, fmt.Errorf("wtrace: traceparent flags: %v", err)
	}
	if tid.IsZero() {
		return tid, sid, 0, fmt.Errorf("wtrace: traceparent %q: all-zero trace-id", h)
	}
	if sid.IsZero() {
		return tid, sid, 0, fmt.Errorf("wtrace: traceparent %q: all-zero parent-id", h)
	}
	return tid, sid, fb[0], nil
}

// Traceparent renders a version-00 traceparent header.
func Traceparent(tid TraceID, sid SpanID, flags byte) string {
	return fmt.Sprintf("00-%s-%s-%02x", tid, sid, flags)
}

// Span is one completed interval of a traced request. Timestamps are
// wall-clock Unix nanoseconds; Attrs are alternating key/value pairs.
type Span struct {
	TraceID TraceID
	SpanID  SpanID
	Parent  SpanID // zero for a locally rooted request span
	Name    string
	StartNS int64
	EndNS   int64
	Attrs   []string
}

// DurNS returns the span duration, clamped non-negative.
func (s Span) DurNS() int64 {
	if s.EndNS < s.StartNS {
		return 0
	}
	return s.EndNS - s.StartNS
}

// Config parameterizes a Tracer.
type Config struct {
	// Sample is the head-sampling probability in [0, 1]. 0 disables
	// tracing entirely (StartRequest returns nil without reading the
	// clock); 1 samples every request.
	Sample float64
	// RingSpans bounds the in-memory completed-span ring served by
	// /v1/traces (default 8192). The ring overwrites oldest-first; the
	// overwrite count is exported as wtrace_spans_dropped.
	RingSpans int
	// Registry receives the tracer's own counters (wtrace_requests,
	// wtrace_spans, wtrace_spans_dropped). Nil disables them.
	Registry *telemetry.Registry
	// Chrome, when non-nil, receives every recorded span as a
	// wall-clock trace_event on a per-trace lane track — the file-dump
	// export (rmd -trace). It must have been built by
	// telemetry.NewWallTracer.
	Chrome *telemetry.Tracer
	// Now overrides the wall clock (tests); defaults to time.Now.
	Now func() time.Time
	// Seed seeds the id generator; 0 derives a seed from the clock.
	Seed uint64
}

// Tracer is the request-tracing engine: it makes sampling decisions,
// mints trace/span ids, and collects completed spans into the bounded
// ring. All methods are nil-safe and safe for concurrent use.
type Tracer struct {
	sample    float64
	threshold uint64 // sample iff draw < threshold (sample < 1)
	epochNS   int64  // trace_event timestamps are relative to this
	now       func() time.Time
	ring      *ring
	chrome    *telemetry.Tracer
	seed      uint64
	seq       atomic.Uint64

	requests *telemetry.Counter
	spans    *telemetry.Counter
	dropped  *telemetry.Counter
}

// New builds a tracer. A nil *Tracer (or Sample <= 0) is a valid
// "tracing off" configuration: StartRequest returns nil and every
// downstream call is a no-op.
func New(cfg Config) *Tracer {
	if cfg.RingSpans <= 0 {
		cfg.RingSpans = 8192
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.Seed == 0 {
		cfg.Seed = uint64(cfg.Now().UnixNano()) | 1
	}
	t := &Tracer{
		sample:  cfg.Sample,
		epochNS: cfg.Now().UnixNano(),
		now:     cfg.Now,
		ring:    newRing(cfg.RingSpans),
		chrome:  cfg.Chrome,
		seed:    cfg.Seed,

		requests: cfg.Registry.Counter("wtrace_requests"),
		spans:    cfg.Registry.Counter("wtrace_spans"),
		dropped:  cfg.Registry.Counter("wtrace_spans_dropped"),
	}
	if cfg.Sample < 1 {
		t.threshold = uint64(cfg.Sample * float64(1<<63) * 2)
	}
	for name, help := range map[string]string{
		"wtrace_requests":      "Requests head-sampled into the wall-clock trace ring.",
		"wtrace_spans":         "Wall-clock spans recorded by the request tracer.",
		"wtrace_spans_dropped": "Spans overwritten in the bounded trace ring before being scraped.",
	} {
		cfg.Registry.SetHelp(name, help)
	}
	return t
}

// splitmix64 is the id/sampling PRNG: one multiply-xor chain per draw,
// no locks, full-period over the counter.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func (t *Tracer) draw() uint64 { return splitmix64(t.seed ^ t.seq.Add(1)) }

func (t *Tracer) newTraceID() TraceID {
	var id TraceID
	a, b := t.draw(), t.draw()
	for i := 0; i < 8; i++ {
		id[i] = byte(a >> (8 * i))
		id[8+i] = byte(b >> (8 * i))
	}
	if id.IsZero() {
		id[0] = 1
	}
	return id
}

func (t *Tracer) newSpanID() SpanID {
	var id SpanID
	a := t.draw()
	for i := 0; i < 8; i++ {
		id[i] = byte(a >> (8 * i))
	}
	if id.IsZero() {
		id[0] = 1
	}
	return id
}

// Sampled reports whether the tracer would sample right now (one PRNG
// draw). Exposed for tests; StartRequest is the real entry point.
func (t *Tracer) Sampled() bool {
	if t == nil || t.sample <= 0 {
		return false
	}
	if t.sample >= 1 {
		return true
	}
	return t.draw() < t.threshold
}

// NowNS reads the tracer's wall clock as Unix nanoseconds.
func (t *Tracer) NowNS() int64 {
	if t == nil {
		return 0
	}
	return t.now().UnixNano()
}

// StartRequest makes the head sampling decision for one inbound
// request. It returns nil — the "not traced" context, on which every
// method is a free no-op — for unsampled requests; a non-nil *ReqTrace
// joins the inbound traceparent's trace when the header parses, or
// roots a new trace otherwise.
func (t *Tracer) StartRequest(traceparent string) *ReqTrace {
	if !t.Sampled() {
		return nil
	}
	r := &ReqTrace{t: t, startNS: t.now().UnixNano()}
	if traceparent != "" {
		if tid, sid, _, err := ParseTraceparent(traceparent); err == nil {
			r.traceID, r.parent = tid, sid
		}
	}
	if r.traceID.IsZero() {
		r.traceID = t.newTraceID()
	}
	r.root = t.newSpanID()
	t.requests.Inc()
	return r
}

// record pushes one completed span into the ring and the Chrome
// export.
func (t *Tracer) record(s Span) {
	t.spans.Inc()
	if t.ring.push(s) {
		t.dropped.Inc()
	}
	if t.chrome != nil {
		lane := laneName(s.TraceID)
		kv := make([]string, 0, 6+len(s.Attrs))
		kv = append(kv, "trace_id", s.TraceID.String(), "span_id", s.SpanID.String())
		if !s.Parent.IsZero() {
			kv = append(kv, "parent_id", s.Parent.String())
		}
		kv = append(kv, s.Attrs...)
		t.chrome.WallSpan(lane, s.Name, s.StartNS, s.EndNS, kv...)
	}
}

// lanes is the number of display tracks concurrent traces are hashed
// onto: spans of one trace always share a lane (trace-id hash), so a
// trace reads as one nested timeline in Perfetto, while concurrent
// traces mostly land on different lanes instead of overlapping.
const lanes = 8

func laneOf(tid TraceID) int { return int(tid[15]) % lanes }

func laneName(tid TraceID) string { return fmt.Sprintf("wtrace.lane%d", laneOf(tid)) }

// WriteTraceEvents serializes the ring's current contents as Chrome
// trace_event JSON (see ring.go) — the /v1/traces payload.
func (t *Tracer) WriteTraceEvents(w interface{ Write([]byte) (int, error) }) error {
	if t == nil {
		_, err := w.Write([]byte(`{"traceEvents":[],"displayTimeUnit":"ns","spans":0,"spans_total":0,"dropped":0}` + "\n"))
		return err
	}
	return t.ring.writeTraceEvents(w, t.epochNS)
}

// SpansRecorded returns the total number of spans ever recorded (the
// ring may hold fewer).
func (t *Tracer) SpansRecorded() uint64 {
	if t == nil {
		return 0
	}
	return t.ring.total()
}

// Snapshot copies the ring's current spans, oldest first.
func (t *Tracer) Snapshot() []Span {
	if t == nil {
		return nil
	}
	spans, _ := t.ring.snapshot()
	return spans
}

// ReqTrace is one sampled request's trace context: the trace id, the
// root span id, and the request start time. A nil *ReqTrace is the
// unsampled context; every method no-ops on it.
type ReqTrace struct {
	t       *Tracer
	traceID TraceID
	root    SpanID
	parent  SpanID
	startNS int64
}

// TraceID returns the trace id as hex ("" when not traced).
func (r *ReqTrace) TraceID() string {
	if r == nil {
		return ""
	}
	return r.traceID.String()
}

// Root returns the root span's id (zero when not traced). Child spans
// recorded during request handling parent on it.
func (r *ReqTrace) Root() SpanID {
	if r == nil {
		return SpanID{}
	}
	return r.root
}

// StartNS returns the request's start timestamp (Unix ns).
func (r *ReqTrace) StartNS() int64 {
	if r == nil {
		return 0
	}
	return r.startNS
}

// NowNS reads the tracer's clock (0 when not traced, so callers can
// guard timing work behind the nil check implicitly).
func (r *ReqTrace) NowNS() int64 {
	if r == nil {
		return 0
	}
	return r.t.now().UnixNano()
}

// Responseparent renders the traceparent header the service returns:
// this request's trace id, the root span as parent, sampled flag set.
func (r *ReqTrace) Responseparent() string {
	if r == nil {
		return ""
	}
	return Traceparent(r.traceID, r.root, FlagSampled)
}

// Span records one completed child span. parent is normally Root() (or
// a previously recorded span's id for deeper nesting). Returns the new
// span's id for further nesting.
func (r *ReqTrace) Span(parent SpanID, name string, startNS, endNS int64, attrs ...string) SpanID {
	if r == nil {
		return SpanID{}
	}
	id := r.t.newSpanID()
	r.RecordSpan(id, parent, name, startNS, endNS, attrs...)
	return id
}

// NewSpanID mints a span id without recording anything — for spans
// whose children are recorded before the parent closes (a batch span
// covering per-op children): allocate the id up front, parent the
// children on it, then RecordSpan the parent once its end is known.
func (r *ReqTrace) NewSpanID() SpanID {
	if r == nil {
		return SpanID{}
	}
	return r.t.newSpanID()
}

// RecordSpan records a completed span under a caller-allocated id
// (see NewSpanID).
func (r *ReqTrace) RecordSpan(id, parent SpanID, name string, startNS, endNS int64, attrs ...string) {
	if r == nil {
		return
	}
	r.t.record(Span{
		TraceID: r.traceID,
		SpanID:  id,
		Parent:  parent,
		Name:    name,
		StartNS: startNS,
		EndNS:   endNS,
		Attrs:   attrs,
	})
}

// Finish records the root "request" span, closing the trace. endNS is
// the response-complete timestamp; attrs annotate the outcome
// (endpoint, status, queue-wait, breaker rejection, ...).
func (r *ReqTrace) Finish(endNS int64, attrs ...string) {
	if r == nil {
		return
	}
	r.t.record(Span{
		TraceID: r.traceID,
		SpanID:  r.root,
		Parent:  r.parent,
		Name:    "request",
		StartNS: r.startNS,
		EndNS:   endNS,
		Attrs:   attrs,
	})
}
