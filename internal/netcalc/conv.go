package netcalc

import (
	"fmt"
	"math"
)

// Convolve returns the min-plus convolution
//
//	(f (*) g)(t) = inf_{0<=u<=t} [ f(u) + g(t-u) ]
//
// which is the composition operator for service curves: a flow crossing
// two servers with service curves f and g receives the end-to-end
// service curve f (*) g. The implementation is exact for arbitrary
// piecewise-linear wide-sense-increasing curves: each pair of segments
// is convolved (segments concatenate in ascending slope order) and the
// result is the lower envelope of all partial convolutions.
func Convolve(f, g Curve) Curve {
	// (f (*) g)(t) >= f(0)+g(0); factor the offsets out so that the
	// segment machinery can assume both operands start at 0.
	f0, g0 := f.Eval(0), g.Eval(0)
	fs, gs := segmentsOf(f), segmentsOf(g)

	var partials []partial
	for _, a := range fs {
		for _, b := range gs {
			partials = append(partials, convSegments(a, b))
		}
	}
	env := lowerEnvelope(partials)
	// Re-apply the offsets.
	pts := env.Points()
	for i := range pts {
		pts[i].Y += f0 + g0
	}
	return MustCurve(pts, env.finalSlope)
}

// ConvolveAll composes a chain of service curves.
func ConvolveAll(curves ...Curve) Curve {
	if len(curves) == 0 {
		return Zero()
	}
	out := curves[0]
	for _, c := range curves[1:] {
		out = Convolve(out, c)
	}
	return out
}

// Deconvolve returns the min-plus deconvolution
//
//	(f (/) g)(t) = sup_{u>=0} [ f(t+u) - g(u) ]
//
// used to bound the arrival curve of a flow at the output of a server:
// if f is the input arrival curve and g the service curve, f (/) g
// constrains the output. It returns an error if the result is unbounded,
// i.e. f grows strictly faster than g at infinity.
func Deconvolve(f, g Curve) (Curve, error) {
	if f.finalSlope > g.finalSlope+eps {
		return Curve{}, fmt.Errorf("netcalc: deconvolution unbounded: arrival final slope %g exceeds service final slope %g",
			f.finalSlope, g.finalSlope)
	}
	// For fixed t, u -> f(t+u) - g(u) is piecewise linear; its supremum
	// is attained at u = 0 or where the slope changes sign, which can
	// only happen at breakpoints of g or at breakpoints of f shifted by
	// t. As a function of t the result is piecewise linear with
	// breakpoints among {xf_i - xg_j} and {xf_i}; evaluating exactly at
	// those candidates reconstructs the curve.
	fp, gp := f.normPoints(), g.normPoints()
	var ts []float64
	for _, pf := range fp {
		ts = append(ts, pf.X)
		for _, pg := range gp {
			if d := pf.X - pg.X; d >= 0 {
				ts = append(ts, d)
			}
		}
	}
	ts = sortedUnique(ts)

	evalAt := func(t float64) float64 {
		best := math.Inf(-1)
		consider := func(u float64) {
			if u < 0 {
				return
			}
			if v := f.Eval(t+u) - g.Eval(u); v > best {
				best = v
			}
		}
		consider(0)
		for _, pg := range gp {
			consider(pg.X)
		}
		for _, pf := range fp {
			consider(pf.X - t)
		}
		// If f outruns g on the final pieces the sup is at u -> inf;
		// slopes were checked above so the limit is finite only when
		// slopes are equal, in which case the limsup equals the value
		// at the last breakpoint direction. Sample one far point to
		// cover the equal-slope case.
		uFar := lastX(fp) + lastX(gp) + t + 1
		consider(uFar)
		if best < 0 {
			best = 0
		}
		return best
	}
	return buildFrom(ts, evalAt, f.finalSlope), nil
}

func lastX(pts []Point) float64 { return pts[len(pts)-1].X }

// segment is one affine piece of a curve. length is +Inf for the final
// piece.
type segment struct {
	x0, y0 float64
	slope  float64
	length float64
}

// segmentsOf decomposes a curve (minus its value at zero) into segments.
func segmentsOf(c Curve) []segment {
	pts := c.normPoints()
	y0 := pts[0].Y
	var segs []segment
	for i := 0; i < len(pts); i++ {
		p := pts[i]
		if i+1 < len(pts) {
			q := pts[i+1]
			segs = append(segs, segment{p.X, p.Y - y0, slope(p, q), q.X - p.X})
		} else {
			segs = append(segs, segment{p.X, p.Y - y0, c.finalSlope, math.Inf(1)})
		}
	}
	return segs
}

// partial is a piecewise-linear function defined on [start, end)
// (+Inf outside), used as an intermediate in convolution envelopes.
type partial struct {
	start  float64
	pieces []piece // contiguous from start
}

type piece struct {
	y0     float64 // value at the piece's start
	slope  float64
	length float64 // +Inf allowed only on the last piece
}

func (p partial) end() float64 {
	e := p.start
	for _, pc := range p.pieces {
		e += pc.length
	}
	return e
}

// eval evaluates the partial at x; outside its domain it returns +Inf.
func (p partial) eval(x float64) float64 {
	if x < p.start-eps {
		return math.Inf(1)
	}
	off := x - p.start
	for _, pc := range p.pieces {
		if off <= pc.length || math.IsInf(pc.length, 1) {
			return pc.y0 + pc.slope*math.Min(off, pc.length)
		}
		off -= pc.length
	}
	return math.Inf(1)
}

// slopeAt returns the slope of the partial's piece containing x
// (right-continuous), or 0 outside the domain.
func (p partial) slopeAt(x float64) float64 {
	if x < p.start-eps {
		return 0
	}
	off := x - p.start
	for _, pc := range p.pieces {
		if off < pc.length {
			return pc.slope
		}
		off -= pc.length
	}
	return 0
}

// breakXs returns the absolute Xs of the partial's piece boundaries.
func (p partial) breakXs() []float64 {
	xs := []float64{p.start}
	x := p.start
	for _, pc := range p.pieces {
		if math.IsInf(pc.length, 1) {
			break
		}
		x += pc.length
		xs = append(xs, x)
	}
	return xs
}

// convSegments convolves two single segments: the result starts at the
// sum of their start coordinates and concatenates the two segments in
// ascending slope order (serving the cheaper rate first minimizes the
// min-plus sum).
func convSegments(a, b segment) partial {
	lo, hi := a, b
	if b.slope < a.slope {
		lo, hi = b, a
	}
	pcs := make([]piece, 0, 2)
	y := a.y0 + b.y0
	pcs = append(pcs, piece{y, lo.slope, lo.length})
	if !math.IsInf(lo.length, 1) {
		y += lo.slope * lo.length
		pcs = append(pcs, piece{y, hi.slope, hi.length})
	}
	return partial{start: a.x0 + b.x0, pieces: pcs}
}

// lowerEnvelope computes the pointwise minimum of the partials as a
// Curve. Candidate breakpoints are all piece boundaries plus all
// pairwise intersections of pieces; between consecutive candidates the
// envelope is a single affine piece.
func lowerEnvelope(partials []partial) Curve {
	if len(partials) == 0 {
		return Zero()
	}
	var xs []float64
	for _, p := range partials {
		xs = append(xs, p.breakXs()...)
		if e := p.end(); !math.IsInf(e, 1) {
			xs = append(xs, e)
		}
	}
	// Pairwise intersections.
	base := sortedUnique(xs)
	for i := 0; i < len(partials); i++ {
		for j := i + 1; j < len(partials); j++ {
			xs = append(xs, partialCrossings(partials[i], partials[j], base)...)
		}
	}
	xs = sortedUnique(xs)

	evalMin := func(x float64) float64 {
		best := math.Inf(1)
		for _, p := range partials {
			if v := p.eval(x); v < best {
				best = v
			}
		}
		return best
	}
	// Determine the final slope: beyond the last candidate exactly one
	// affine behaviour is minimal (all crossings are candidates), so
	// probe the argmin just after the last candidate.
	lastX := xs[len(xs)-1]
	probe := lastX + 1
	bestVal, bestSlope := math.Inf(1), 0.0
	for _, p := range partials {
		v := p.eval(probe)
		if math.IsInf(v, 1) {
			continue
		}
		s := p.slopeAt(probe)
		if v < bestVal-eps || (almostEqual(v, bestVal) && s < bestSlope) {
			bestVal, bestSlope = v, s
		}
	}
	return buildFrom(xs, evalMin, bestSlope)
}

// partialCrossings finds intersections of two partials' affine pieces
// inside the intervals delimited by the base candidate Xs.
func partialCrossings(a, b partial, base []float64) []float64 {
	var out []float64
	for i := 0; i < len(base); i++ {
		x0 := base[i]
		x1 := math.Inf(1)
		if i+1 < len(base) {
			x1 = base[i+1]
		}
		va, vb := a.eval(x0), b.eval(x0)
		if math.IsInf(va, 1) || math.IsInf(vb, 1) {
			continue
		}
		sa, sb := a.slopeAt(x0), b.slopeAt(x0)
		if sa == sb {
			continue
		}
		cross := x0 + (vb-va)/(sa-sb)
		if cross > x0+eps && cross < x1-eps {
			out = append(out, cross)
		}
	}
	return out
}
