package netcalc

import (
	"fmt"
	"math"
	"sync"
)

// convScratch holds the intermediate buffers of one Convolve call.
// Convolution of an n-segment curve with an m-segment curve builds
// n*m partial functions plus candidate/crossing coordinate lists;
// allocating those per call made Convolve the analytic plane's
// dominant allocation source. The buffers are recycled through a
// sync.Pool — only the result curve's breakpoints escape.
type convScratch struct {
	fsegs, gsegs []segment
	partials     []partial
	xs, base     []float64
}

var convScratchPool = sync.Pool{New: func() interface{} { return new(convScratch) }}

// Convolve returns the min-plus convolution
//
//	(f (*) g)(t) = inf_{0<=u<=t} [ f(u) + g(t-u) ]
//
// which is the composition operator for service curves: a flow crossing
// two servers with service curves f and g receives the end-to-end
// service curve f (*) g. The implementation is exact for arbitrary
// piecewise-linear wide-sense-increasing curves: each pair of segments
// is convolved (segments concatenate in ascending slope order) and the
// result is the lower envelope of all partial convolutions.
func Convolve(f, g Curve) Curve {
	sc := convScratchPool.Get().(*convScratch)
	// (f (*) g)(t) >= f(0)+g(0); factor the offsets out so that the
	// segment machinery can assume both operands start at 0.
	f0, g0 := f.Eval(0), g.Eval(0)
	sc.fsegs = appendSegments(sc.fsegs[:0], f)
	sc.gsegs = appendSegments(sc.gsegs[:0], g)

	sc.partials = sc.partials[:0]
	for _, a := range sc.fsegs {
		for _, b := range sc.gsegs {
			sc.partials = append(sc.partials, convSegments(a, b))
		}
	}
	env := lowerEnvelope(sc)
	// Re-apply the offsets.
	pts := env.Points()
	for i := range pts {
		pts[i].Y += f0 + g0
	}
	out := MustCurve(pts, env.finalSlope)
	convScratchPool.Put(sc)
	return out
}

// ConvolveAll composes a chain of service curves, cheapest operands
// first (see Cache.ConvolveAll for the ordering rationale and the
// bit-identity guarantee versus the left fold).
func ConvolveAll(curves ...Curve) Curve {
	return (*Cache)(nil).ConvolveAll(curves...)
}

// Deconvolve returns the min-plus deconvolution
//
//	(f (/) g)(t) = sup_{u>=0} [ f(t+u) - g(u) ]
//
// used to bound the arrival curve of a flow at the output of a server:
// if f is the input arrival curve and g the service curve, f (/) g
// constrains the output. It returns an error if the result is unbounded,
// i.e. f grows strictly faster than g at infinity.
func Deconvolve(f, g Curve) (Curve, error) {
	if f.finalSlope > g.finalSlope+eps {
		return Curve{}, fmt.Errorf("netcalc: deconvolution unbounded: arrival final slope %g exceeds service final slope %g",
			f.finalSlope, g.finalSlope)
	}
	// For fixed t, u -> f(t+u) - g(u) is piecewise linear; its supremum
	// is attained at u = 0 or where the slope changes sign, which can
	// only happen at breakpoints of g or at breakpoints of f shifted by
	// t. As a function of t the result is piecewise linear with
	// breakpoints among {xf_i - xg_j} and {xf_i}; evaluating exactly at
	// those candidates reconstructs the curve.
	fp, gp := f.normPoints(), g.normPoints()
	var ts []float64
	for _, pf := range fp {
		ts = append(ts, pf.X)
		for _, pg := range gp {
			if d := pf.X - pg.X; d >= 0 {
				ts = append(ts, d)
			}
		}
	}
	ts = sortedUnique(ts)

	evalAt := func(t float64) float64 {
		best := math.Inf(-1)
		consider := func(u float64) {
			if u < 0 {
				return
			}
			if v := f.Eval(t+u) - g.Eval(u); v > best {
				best = v
			}
		}
		consider(0)
		for _, pg := range gp {
			consider(pg.X)
		}
		for _, pf := range fp {
			consider(pf.X - t)
		}
		// If f outruns g on the final pieces the sup is at u -> inf;
		// slopes were checked above so the limit is finite only when
		// slopes are equal, in which case the limsup equals the value
		// at the last breakpoint direction. Sample one far point to
		// cover the equal-slope case.
		uFar := lastX(fp) + lastX(gp) + t + 1
		consider(uFar)
		if best < 0 {
			best = 0
		}
		return best
	}
	return buildFrom(ts, evalAt, f.finalSlope), nil
}

func lastX(pts []Point) float64 { return pts[len(pts)-1].X }

// segment is one affine piece of a curve. length is +Inf for the final
// piece.
type segment struct {
	x0, y0 float64
	slope  float64
	length float64
}

// appendSegments decomposes a curve (minus its value at zero) into
// segments, appending to segs (usually a recycled scratch buffer).
func appendSegments(segs []segment, c Curve) []segment {
	pts := c.normPoints()
	y0 := pts[0].Y
	for i := 0; i < len(pts); i++ {
		p := pts[i]
		if i+1 < len(pts) {
			q := pts[i+1]
			segs = append(segs, segment{p.X, p.Y - y0, slope(p, q), q.X - p.X})
		} else {
			segs = append(segs, segment{p.X, p.Y - y0, c.finalSlope, math.Inf(1)})
		}
	}
	return segs
}

// partial is a piecewise-linear function defined on [start, end)
// (+Inf outside), used as an intermediate in convolution envelopes.
// A partial produced by convSegments has at most two pieces, so they
// live in a fixed-size array: building one allocates nothing.
type partial struct {
	start float64
	n     int
	pcs   [2]piece // pcs[:n] contiguous from start
}

type piece struct {
	y0     float64 // value at the piece's start
	slope  float64
	length float64 // +Inf allowed only on the last piece
}

func (p *partial) end() float64 {
	e := p.start
	for _, pc := range p.pcs[:p.n] {
		e += pc.length
	}
	return e
}

// eval evaluates the partial at x; outside its domain it returns +Inf.
func (p *partial) eval(x float64) float64 {
	if x < p.start-eps {
		return math.Inf(1)
	}
	off := x - p.start
	for _, pc := range p.pcs[:p.n] {
		if off <= pc.length || math.IsInf(pc.length, 1) {
			return pc.y0 + pc.slope*math.Min(off, pc.length)
		}
		off -= pc.length
	}
	return math.Inf(1)
}

// slopeAt returns the slope of the partial's piece containing x
// (right-continuous), or 0 outside the domain.
func (p *partial) slopeAt(x float64) float64 {
	if x < p.start-eps {
		return 0
	}
	off := x - p.start
	for _, pc := range p.pcs[:p.n] {
		if off < pc.length {
			return pc.slope
		}
		off -= pc.length
	}
	return 0
}

// appendBreakXs appends the absolute Xs of the partial's piece
// boundaries to xs.
func (p *partial) appendBreakXs(xs []float64) []float64 {
	xs = append(xs, p.start)
	x := p.start
	for _, pc := range p.pcs[:p.n] {
		if math.IsInf(pc.length, 1) {
			break
		}
		x += pc.length
		xs = append(xs, x)
	}
	return xs
}

// convSegments convolves two single segments: the result starts at the
// sum of their start coordinates and concatenates the two segments in
// ascending slope order (serving the cheaper rate first minimizes the
// min-plus sum).
func convSegments(a, b segment) partial {
	lo, hi := a, b
	if b.slope < a.slope {
		lo, hi = b, a
	}
	p := partial{start: a.x0 + b.x0}
	y := a.y0 + b.y0
	p.pcs[0] = piece{y, lo.slope, lo.length}
	p.n = 1
	if !math.IsInf(lo.length, 1) {
		y += lo.slope * lo.length
		p.pcs[1] = piece{y, hi.slope, hi.length}
		p.n = 2
	}
	return p
}

// lowerEnvelope computes the pointwise minimum of sc.partials as a
// Curve. Candidate breakpoints are all piece boundaries plus all
// pairwise intersections of pieces; between consecutive candidates the
// envelope is a single affine piece. Coordinate lists live in the
// scratch buffers.
func lowerEnvelope(sc *convScratch) Curve {
	partials := sc.partials
	if len(partials) == 0 {
		return Zero()
	}
	sc.base = sc.base[:0]
	for i := range partials {
		p := &partials[i]
		sc.base = p.appendBreakXs(sc.base)
		if e := p.end(); !math.IsInf(e, 1) {
			sc.base = append(sc.base, e)
		}
	}
	sc.base = sortedUnique(sc.base)
	// Pairwise intersections, on top of the piece-boundary candidates.
	sc.xs = append(sc.xs[:0], sc.base...)
	for i := 0; i < len(partials); i++ {
		for j := i + 1; j < len(partials); j++ {
			sc.xs = appendPartialCrossings(sc.xs, &partials[i], &partials[j], sc.base)
		}
	}
	sc.xs = sortedUnique(sc.xs)
	xs := sc.xs

	evalMin := func(x float64) float64 {
		best := math.Inf(1)
		for i := range partials {
			if v := partials[i].eval(x); v < best {
				best = v
			}
		}
		return best
	}
	// Determine the final slope: beyond the last candidate exactly one
	// affine behaviour is minimal (all crossings are candidates), so
	// probe the argmin just after the last candidate.
	lastX := xs[len(xs)-1]
	probe := lastX + 1
	bestVal, bestSlope := math.Inf(1), 0.0
	for i := range partials {
		p := &partials[i]
		v := p.eval(probe)
		if math.IsInf(v, 1) {
			continue
		}
		s := p.slopeAt(probe)
		if v < bestVal-eps || (almostEqual(v, bestVal) && s < bestSlope) {
			bestVal, bestSlope = v, s
		}
	}
	return buildFrom(xs, evalMin, bestSlope)
}

// appendPartialCrossings appends to out the intersections of two
// partials' affine pieces inside the intervals delimited by the base
// candidate Xs.
func appendPartialCrossings(out []float64, a, b *partial, base []float64) []float64 {
	for i := 0; i < len(base); i++ {
		x0 := base[i]
		x1 := math.Inf(1)
		if i+1 < len(base) {
			x1 = base[i+1]
		}
		va, vb := a.eval(x0), b.eval(x0)
		if math.IsInf(va, 1) || math.IsInf(vb, 1) {
			continue
		}
		sa, sb := a.slopeAt(x0), b.slopeAt(x0)
		if sa == sb {
			continue
		}
		cross := x0 + (vb-va)/(sa-sb)
		if cross > x0+eps && cross < x1-eps {
			out = append(out, cross)
		}
	}
	return out
}
