package netcalc

import (
	"fmt"
	"math"

	"repro/internal/sim"
)

// ArrivalRecorder measures an empirical arrival curve from an observed
// event stream — the "automated profiling" Section II of the paper
// calls for before any QoS configuration can be derived. Record each
// arrival (with its size); Curve then returns a conservative
// piecewise-linear upper envelope of traffic over every window length,
// suitable as the alpha in DelayBound/BacklogBound or as token-bucket
// parameters for a shaper.
type ArrivalRecorder struct {
	times []sim.Time
	sizes []float64
	total float64
}

// NewArrivalRecorder returns an empty recorder.
func NewArrivalRecorder() *ArrivalRecorder { return &ArrivalRecorder{} }

// Record notes one arrival of the given size at time t. Times must be
// non-decreasing (they come from a simulation run).
func (r *ArrivalRecorder) Record(t sim.Time, size float64) error {
	if size < 0 {
		return fmt.Errorf("netcalc: negative arrival size %g", size)
	}
	if n := len(r.times); n > 0 && t < r.times[n-1] {
		return fmt.Errorf("netcalc: arrival at %v before previous %v", t, r.times[n-1])
	}
	r.times = append(r.times, t)
	r.sizes = append(r.sizes, size)
	r.total += size
	return nil
}

// Count returns the number of recorded arrivals.
func (r *ArrivalRecorder) Count() int { return len(r.times) }

// Total returns the sum of recorded sizes.
func (r *ArrivalRecorder) Total() float64 { return r.total }

// MaxOverWindow returns the maximum traffic observed in any window of
// the given length (ns), sliding over the recorded trace.
func (r *ArrivalRecorder) MaxOverWindow(windowNS float64) float64 {
	if len(r.times) == 0 || windowNS < 0 {
		return 0
	}
	w := sim.NS(windowNS)
	best := 0.0
	sum := 0.0
	lo := 0
	for hi := range r.times {
		sum += r.sizes[hi]
		for r.times[hi]-r.times[lo] > w {
			sum -= r.sizes[lo]
			lo++
		}
		if sum > best {
			best = sum
		}
	}
	return best
}

// Curve returns an empirical arrival curve from the sampled window
// lengths (ns, sorted internally). Between samples the envelope is the
// left-shifted staircase — the point at window w_i carries the value
// MaxOverWindow(w_{i+1}) — so the curve upper-bounds the observed
// traffic over EVERY window up to the largest sample, not just at the
// sampled points. Past the largest sample it extends at
// max(long-run rate, MaxOverWindow(w_max)/w_max), which is an estimate:
// callers should include sample windows up to their analysis horizon.
func (r *ArrivalRecorder) Curve(windowsNS []float64) (Curve, error) {
	if len(r.times) == 0 {
		return Zero(), nil
	}
	ws := sortedUnique(append([]float64(nil), windowsNS...)) // includes 0
	maxes := make([]float64, len(ws))
	for i, w := range ws {
		maxes[i] = r.MaxOverWindow(w)
	}
	// Monotone repair (larger windows can only hold more).
	for i := 1; i < len(maxes); i++ {
		if maxes[i] < maxes[i-1] {
			maxes[i] = maxes[i-1]
		}
	}
	// Left-shifted staircase: value at ws[i] is the max over the NEXT
	// sampled window, so the linear pieces dominate the true envelope
	// on every intermediate window.
	pts := make([]Point, len(ws))
	for i := range ws {
		j := i + 1
		if j >= len(maxes) {
			j = len(maxes) - 1
		}
		pts[i] = Point{ws[i], maxes[j]}
	}
	span := (r.times[len(r.times)-1] - r.times[0]).Nanoseconds()
	rate := 0.0
	if span > 0 {
		rate = r.total / span
	}
	last := ws[len(ws)-1]
	if last > 0 {
		if m := maxes[len(maxes)-1] / last; m > rate {
			rate = m
		}
	}
	return NewCurve(dedupeXs(pts), rate)
}

// TokenBucketFit returns the tightest token bucket (burst, rate) that
// upper-bounds the recorded trace for the given sustained rate
// candidates; it picks the candidate minimizing burst + rate*horizon
// over the observation horizon (a standard single-knee fit). The
// returned parameters configure a Shaper that would have passed the
// entire trace unmodified.
func (r *ArrivalRecorder) TokenBucketFit(rateCandidates []float64) (burst, rate float64, err error) {
	if len(r.times) == 0 {
		return 0, 0, fmt.Errorf("netcalc: no arrivals recorded")
	}
	if len(rateCandidates) == 0 {
		return 0, 0, fmt.Errorf("netcalc: no rate candidates")
	}
	horizon := (r.times[len(r.times)-1] - r.times[0]).Nanoseconds()
	bestCost := -1.0
	for _, rc := range rateCandidates {
		if rc < 0 {
			return 0, 0, fmt.Errorf("netcalc: negative rate candidate %g", rc)
		}
		// Required burst: the maximum over all windows [t_i, t_j] of
		// traffic minus rc*(t_j - t_i). Computed in one pass as
		// max_j (cum_j - rc*t_j) - min_{i<=j} (cumBefore_i - rc*t_i):
		// a quiet start must not hide a later dense burst.
		need := 0.0
		cum := 0.0
		minSlack := math.Inf(1)
		for i := range r.times {
			tNS := r.times[i].Nanoseconds()
			if s := cum - rc*tNS; s < minSlack {
				minSlack = s
			}
			cum += r.sizes[i]
			if b := cum - rc*tNS - minSlack; b > need {
				need = b
			}
		}
		cost := need + rc*horizon
		// Prefer the smaller burst on (near-)ties: periodic traffic
		// makes burst+rate*horizon exactly degenerate across rates.
		better := bestCost < 0 || cost < bestCost*(1-1e-12)-1e-12 ||
			(math.Abs(cost-bestCost) <= 1e-9*(1+bestCost) && need < burst)
		if better {
			bestCost, burst, rate = cost, need, rc
		}
	}
	return burst, rate, nil
}
