package netcalc

import (
	"math"
	"sync"
)

// Canonical curve form and interning.
//
// Every Curve built through NewCurve (and hence every operator result,
// all of which funnel through MustCurve/buildFrom) is already in
// canonical form: breakpoints strictly increasing in X, coincident
// points deduped, and collinear interior points merged by simplify.
// Canonical form makes structural identity meaningful — two curves
// describe the same function iff their normalized breakpoints and
// final slope are equal — so the analytic plane can compare curves by
// identity instead of by geometry.
//
// The interner assigns each distinct canonical structure a small
// integer id. Equal curves intern to the same *internedCurve, making
// them pointer-comparable; the operator cache keys its memo table on
// those ids, so a cache key is three machine words regardless of how
// many breakpoints the operands carry.

// identical reports bit-exact structural equality: same breakpoints,
// same final slope, compared by float bit pattern. It is stricter
// than Equal (which admits an epsilon): interning and cache keys use
// identical so a memoized result can never differ from the uncached
// computation by even one ulp.
func (c Curve) identical(d Curve) bool {
	cp, dp := c.normPoints(), d.normPoints()
	if len(cp) != len(dp) ||
		math.Float64bits(c.finalSlope) != math.Float64bits(d.finalSlope) {
		return false
	}
	for i := range cp {
		if math.Float64bits(cp[i].X) != math.Float64bits(dp[i].X) ||
			math.Float64bits(cp[i].Y) != math.Float64bits(dp[i].Y) {
			return false
		}
	}
	return true
}

// fingerprint hashes the curve's canonical structure (FNV-1a over the
// float bit patterns). identical curves have identical fingerprints;
// the interner resolves the (vanishingly rare) collisions by exact
// structural comparison, so a collision costs a bucket scan, never a
// wrong answer.
func (c Curve) fingerprint() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= (v >> (8 * i)) & 0xff
			h *= prime64
		}
	}
	for _, p := range c.normPoints() {
		mix(math.Float64bits(p.X))
		mix(math.Float64bits(p.Y))
	}
	mix(math.Float64bits(c.finalSlope))
	return h
}

// internedCurve is one canonical curve in an interner's table. The
// pointer itself is the identity: interning equal curves returns the
// same entry.
type internedCurve struct {
	id uint64
	c  Curve
}

// interner deduplicates canonical curves. Safe for concurrent use.
type interner struct {
	mu      sync.Mutex
	hash    func(Curve) uint64
	buckets map[uint64][]*internedCurve
	nextID  uint64 // also the cumulative intern count
	live    int
	maxLive int
}

// internerFlushThreshold bounds the live table. Curve churn beyond the
// threshold (e.g. a long-running service interning a new rate
// assignment per mode change) flushes the table; ids keep increasing,
// so cache entries keyed on flushed ids simply stop matching and age
// out of the LRU — stale ids can never alias a new curve.
const internerFlushThreshold = 1 << 16

func newInterner() *interner {
	return newInternerWithHash(Curve.fingerprint)
}

// newInternerWithHash injects the hash function; tests use a constant
// hash to force every intern through the collision path.
func newInternerWithHash(hash func(Curve) uint64) *interner {
	return &interner{
		hash:    hash,
		buckets: make(map[uint64][]*internedCurve),
		maxLive: internerFlushThreshold,
	}
}

// intern returns the canonical entry for c, creating one if this
// structure has not been seen (or was flushed).
func (in *interner) intern(c Curve) *internedCurve {
	fp := in.hash(c)
	in.mu.Lock()
	defer in.mu.Unlock()
	for _, e := range in.buckets[fp] {
		if e.c.identical(c) {
			return e
		}
	}
	if in.live >= in.maxLive {
		in.buckets = make(map[uint64][]*internedCurve)
		in.live = 0
	}
	in.nextID++
	e := &internedCurve{id: in.nextID, c: c}
	in.buckets[fp] = append(in.buckets[fp], e)
	in.live++
	return e
}

// interned returns the cumulative number of distinct curves interned
// (monotone across flushes) and the current live table size.
func (in *interner) interned() (total uint64, live int) {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.nextID, in.live
}
