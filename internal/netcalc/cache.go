package netcalc

import (
	"sort"
	"sync"
)

// Memoized min-plus operator cache.
//
// The analytic plane recomputes the same curve arithmetic over and
// over: every online admission decision re-evaluates the bounds of
// every active application, every mode change re-derives rate
// assignments that mostly repeat earlier modes, and every audited
// registration composes the same per-resource service curves. A Cache
// memoizes the four operators on interned operand identities, so a
// repeated composition costs two hash lookups instead of an O(n*m)
// segment convolution.
//
// Correctness contract: a cache hit returns the stored result of the
// exact computation a miss would perform — operands are matched by
// bit-exact structural identity (see canon.go), so cached and uncached
// paths are bit-identical, never merely epsilon-close. Curves are
// immutable after construction, so sharing a stored result is safe.
//
// All methods are safe for concurrent use (sweep workers may share a
// cache) and are nil-safe: every method on a nil *Cache falls through
// to the uncached operator, so call sites can thread an optional cache
// without branching.

// opCode discriminates the memoized operators in a cache key.
type opCode uint8

const (
	opConvolve opCode = iota
	opDeconvolve
	opResidual
	opDelayBound
)

// opKey is a cache key: the operator plus both operands' interned
// identities. Keys are directional — DelayBound and Deconvolve are not
// commutative, and Convolve is not normalized either so that a hit is
// always the stored result of the identical call.
type opKey struct {
	op   opCode
	a, b uint64
}

// cacheEntry is one memoized result on the LRU list.
type cacheEntry struct {
	key    opKey
	curve  Curve   // Convolve, Deconvolve, Residual
	scalar float64 // DelayBound
	err    error   // Deconvolve unboundedness

	prev, next *cacheEntry
}

// CacheStats is a point-in-time snapshot of a cache's counters. Hits,
// Misses, Evictions, and InternedCurves are monotone (InternedCurves
// counts curves ever interned, so it keeps counter semantics across
// interner flushes); Entries and LiveInterned are instantaneous.
type CacheStats struct {
	Hits, Misses, Evictions uint64
	InternedCurves          uint64
	Entries, LiveInterned   int
}

// DefaultCacheCapacity is the LRU entry bound used when NewCache is
// given a non-positive capacity.
const DefaultCacheCapacity = 4096

// Cache is an LRU-memoized view of the netcalc operators.
type Cache struct {
	in *interner

	mu         sync.Mutex
	entries    map[opKey]*cacheEntry
	head, tail *cacheEntry // head = most recently used
	cap        int

	hits, misses, evictions uint64
}

// NewCache returns an empty cache bounded to capacity entries
// (DefaultCacheCapacity if capacity <= 0).
func NewCache(capacity int) *Cache {
	return newCacheWithInterner(capacity, newInterner())
}

func newCacheWithInterner(capacity int, in *interner) *Cache {
	if capacity <= 0 {
		capacity = DefaultCacheCapacity
	}
	return &Cache{
		in:      in,
		entries: make(map[opKey]*cacheEntry, capacity),
		cap:     capacity,
	}
}

// Stats snapshots the cache counters.
func (c *Cache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	total, live := c.in.interned()
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:           c.hits,
		Misses:         c.misses,
		Evictions:      c.evictions,
		InternedCurves: total,
		Entries:        len(c.entries),
		LiveInterned:   live,
	}
}

// lookup returns the entry for k, promoting it to most-recently-used.
func (c *Cache) lookup(k opKey) (*cacheEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[k]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.moveToFront(e)
	return e, true
}

// insert stores e under its key, evicting the least-recently-used
// entry when full. If another goroutine raced the same miss, the
// first stored entry wins (both computed bit-identical results).
func (c *Cache) insert(e *cacheEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, exists := c.entries[e.key]; exists {
		return
	}
	if len(c.entries) >= c.cap {
		lru := c.tail
		c.unlink(lru)
		delete(c.entries, lru.key)
		c.evictions++
	}
	c.entries[e.key] = e
	c.pushFront(e)
}

func (c *Cache) moveToFront(e *cacheEntry) {
	if c.head == e {
		return
	}
	c.unlink(e)
	c.pushFront(e)
}

func (c *Cache) pushFront(e *cacheEntry) {
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *Cache) unlink(e *cacheEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// Convolve is the memoized min-plus convolution f (*) g.
func (c *Cache) Convolve(f, g Curve) Curve {
	if c == nil {
		return Convolve(f, g)
	}
	fi, gi := c.in.intern(f), c.in.intern(g)
	k := opKey{opConvolve, fi.id, gi.id}
	if e, ok := c.lookup(k); ok {
		return e.curve
	}
	out := Convolve(fi.c, gi.c)
	c.insert(&cacheEntry{key: k, curve: out})
	return out
}

// Deconvolve is the memoized min-plus deconvolution f (/) g; the
// unboundedness error is memoized alongside the curve.
func (c *Cache) Deconvolve(f, g Curve) (Curve, error) {
	if c == nil {
		return Deconvolve(f, g)
	}
	fi, gi := c.in.intern(f), c.in.intern(g)
	k := opKey{opDeconvolve, fi.id, gi.id}
	if e, ok := c.lookup(k); ok {
		return e.curve, e.err
	}
	out, err := Deconvolve(fi.c, gi.c)
	c.insert(&cacheEntry{key: k, curve: out, err: err})
	return out, err
}

// Residual is the memoized leftover service curve under blind
// multiplexing.
func (c *Cache) Residual(beta, alphaCross Curve) Curve {
	if c == nil {
		return Residual(beta, alphaCross)
	}
	bi, ai := c.in.intern(beta), c.in.intern(alphaCross)
	k := opKey{opResidual, bi.id, ai.id}
	if e, ok := c.lookup(k); ok {
		return e.curve
	}
	out := Residual(bi.c, ai.c)
	c.insert(&cacheEntry{key: k, curve: out})
	return out
}

// DelayBound is the memoized horizontal deviation h(alpha, beta).
func (c *Cache) DelayBound(alpha, beta Curve) float64 {
	if c == nil {
		return DelayBound(alpha, beta)
	}
	ai, bi := c.in.intern(alpha), c.in.intern(beta)
	k := opKey{opDelayBound, ai.id, bi.id}
	if e, ok := c.lookup(k); ok {
		return e.scalar
	}
	out := DelayBound(ai.c, bi.c)
	c.insert(&cacheEntry{key: k, scalar: out})
	return out
}

// ConvolveAll composes a chain of service curves through the cache,
// convolving cheapest (fewest breakpoints) operands first: the
// intermediate envelopes stay small, and identical sub-chains hit the
// memo. The order is deterministic (stable on equal breakpoint
// counts) and — convolution being associative and commutative —
// produces the same curve as the left fold; conv_order tests pin that
// the output is bit-identical on the repository's curve shapes.
func (c *Cache) ConvolveAll(curves ...Curve) Curve {
	if len(curves) == 0 {
		return Zero()
	}
	order := convOrder(curves)
	out := curves[order[0]]
	for _, i := range order[1:] {
		out = c.Convolve(out, curves[i])
	}
	return out
}

// DelayBoundThrough composes a tandem of per-resource service curves
// through the cache and returns the delay bound of a flow with
// arrival curve alpha across the whole path. Semantics match the
// package-level DelayBoundThrough.
func (c *Cache) DelayBoundThrough(alpha Curve, betas ...Curve) float64 {
	if len(betas) == 0 {
		return 0
	}
	return c.DelayBound(alpha, c.ConvolveAll(betas...))
}

// convOrder returns the operand order for ConvolveAll: indices sorted
// by ascending breakpoint count, stable by position, so the cheapest
// curves convolve first and equal-size operands keep their caller
// order.
func convOrder(curves []Curve) []int {
	idx := make([]int, len(curves))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return len(curves[idx[a]].normPoints()) < len(curves[idx[b]].normPoints())
	})
	return idx
}
