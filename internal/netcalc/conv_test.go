package netcalc

import (
	"math"
	"testing"
	"testing/quick"
)

// belowWithSlack checks an exact infimum against its one-sided grid
// approximation: the exact value can never exceed the grid value, and
// must be within the grid's resolution slack below it.
func belowWithSlack(exact, grid, slack float64) bool {
	return exact <= grid+1e-9 && grid-exact <= slack
}

// bruteConv numerically approximates (f (*) g)(t) on a grid.
func bruteConv(f, g Curve, t float64, steps int) float64 {
	best := math.Inf(1)
	for i := 0; i <= steps; i++ {
		u := t * float64(i) / float64(steps)
		if v := f.Eval(u) + g.Eval(t-u); v < best {
			best = v
		}
	}
	return best
}

// bruteDeconv numerically approximates (f (/) g)(t).
func bruteDeconv(f, g Curve, t, horizon float64, steps int) float64 {
	best := math.Inf(-1)
	for i := 0; i <= steps; i++ {
		u := horizon * float64(i) / float64(steps)
		if v := f.Eval(t+u) - g.Eval(u); v > best {
			best = v
		}
	}
	return best
}

func TestConvolveRateLatencies(t *testing.T) {
	// Classic composition: two rate-latency servers concatenate into
	// RateLatency(min rate, sum of latencies).
	a := RateLatency(4, 3)
	b := RateLatency(2, 5)
	got := Convolve(a, b)
	want := RateLatency(2, 8)
	if !got.Equal(want) {
		t.Errorf("conv = %v, want %v", got, want)
	}
}

func TestConvolveTokenBuckets(t *testing.T) {
	// Concave curves through the origin-offset convention:
	// conv of two token buckets is the pointwise min shifted by the
	// smaller burst... verified against brute force.
	a := TokenBucket(10, 1)
	b := TokenBucket(4, 3)
	got := Convolve(a, b)
	for _, tt := range []float64{0, 0.5, 1, 2, 5, 10, 50} {
		want := bruteConv(a, b, tt, 4000)
		if g := got.Eval(tt); !belowWithSlack(g, want, 0.05) {
			t.Errorf("conv(%v) = %v, brute %v", tt, g, want)
		}
	}
}

func TestConvolveWithZero(t *testing.T) {
	// (f (*) 0)(t) = inf_u f(u) + 0 = f(0); with the right-continuous
	// token-bucket convention the result is the constant burst.
	a := TokenBucket(10, 1)
	got := Convolve(a, Zero())
	if !got.Equal(Constant(10)) {
		t.Errorf("conv with zero = %v, want Constant(10)", got)
	}
	if !Convolve(Zero(), Zero()).IsZero() {
		t.Error("conv of zeros should be zero")
	}
}

func TestConvolveIdentityDelta(t *testing.T) {
	// A huge-rate zero-latency server is a near-identity for conv.
	a := RateLatency(2, 5)
	id := RateLatency(1e12, 0)
	got := Convolve(a, id)
	for _, tt := range []float64{0, 5, 6, 10, 100} {
		if g, w := got.Eval(tt), a.Eval(tt); math.Abs(g-w) > 1e-3 {
			t.Errorf("conv-with-identity(%v) = %v, want %v", tt, g, w)
		}
	}
}

func TestConvolveGeneralPiecewise(t *testing.T) {
	// Non-convex, non-concave staircase-ish curves: validate the
	// envelope algorithm against brute force.
	f := MustCurve([]Point{{0, 0}, {2, 0}, {3, 5}, {6, 5}}, 2)
	g := MustCurve([]Point{{0, 1}, {1, 1}, {2, 6}}, 0.5)
	got := Convolve(f, g)
	for tt := 0.0; tt <= 20; tt += 0.25 {
		want := bruteConv(f, g, tt, 8000)
		if gv := got.Eval(tt); !belowWithSlack(gv, want, 0.02) {
			t.Fatalf("conv(%v) = %v, brute %v (curve %v)", tt, gv, want, got)
		}
	}
}

func TestConvolveCommutative(t *testing.T) {
	f := MustCurve([]Point{{0, 0}, {2, 0}, {3, 5}}, 1)
	g := TokenBucket(3, 0.5)
	ab, ba := Convolve(f, g), Convolve(g, f)
	for tt := 0.0; tt <= 15; tt += 0.5 {
		if math.Abs(ab.Eval(tt)-ba.Eval(tt)) > 1e-9 {
			t.Fatalf("conv not commutative at %v: %v vs %v", tt, ab.Eval(tt), ba.Eval(tt))
		}
	}
}

func TestConvolveAllChain(t *testing.T) {
	e2e := ConvolveAll(RateLatency(10, 1), RateLatency(5, 2), RateLatency(8, 0.5))
	want := RateLatency(5, 3.5)
	if !e2e.Equal(want) {
		t.Errorf("chain = %v, want %v", e2e, want)
	}
	if !ConvolveAll().IsZero() {
		t.Error("empty chain should be zero")
	}
}

func TestDeconvolveTokenBucketThroughRateLatency(t *testing.T) {
	// Standard result: (b,r) through RateLatency(R,T) with r <= R gives
	// output arrival curve (b + r*T, r).
	alpha := TokenBucket(8, 2)
	beta := RateLatency(5, 3)
	got, err := Deconvolve(alpha, beta)
	if err != nil {
		t.Fatal(err)
	}
	want := TokenBucket(8+2*3, 2)
	if !got.Equal(want) {
		t.Errorf("deconv = %v, want %v", got, want)
	}
}

func TestDeconvolveUnbounded(t *testing.T) {
	_, err := Deconvolve(TokenBucket(1, 5), RateLatency(2, 0))
	if err == nil {
		t.Fatal("expected unbounded deconvolution error")
	}
	out := OutputArrival(TokenBucket(1, 5), RateLatency(2, 0))
	if !math.IsInf(out.Eval(0), 1) {
		t.Error("OutputArrival of unbounded case should have infinite burst")
	}
}

func TestDeconvolveGeneral(t *testing.T) {
	f := MustCurve([]Point{{0, 2}, {3, 4}}, 0.5)
	g := MustCurve([]Point{{0, 0}, {1, 0}, {4, 6}}, 3)
	got, err := Deconvolve(f, g)
	if err != nil {
		t.Fatal(err)
	}
	horizon := 100.0
	for tt := 0.0; tt <= 12; tt += 0.2 {
		want := bruteDeconv(f, g, tt, horizon, 20000)
		if want < 0 {
			want = 0
		}
		// The grid sup under-approximates: exact >= grid, within slack.
		gv := got.Eval(tt)
		if gv < want-1e-9 || gv-want > 0.05 {
			t.Fatalf("deconv(%v) = %v, brute %v (curve %v)", tt, gv, want, got)
		}
	}
}

func TestQuickConvolveMatchesBrute(t *testing.T) {
	// Property: for random token-bucket/rate-latency pairs the exact
	// convolution matches a brute-force grid search.
	f := func(b1, r1, lat, rate uint8) bool {
		alpha := TokenBucket(float64(b1%50), float64(r1%10)+0.5)
		beta := RateLatency(float64(rate%10)+1, float64(lat%20))
		got := Convolve(alpha, beta)
		for _, tt := range []float64{0, 1, 3.7, 10, 42} {
			want := bruteConv(alpha, beta, tt, 2000)
			// Grid slack: max slope ~11, step tt/2000.
			if !belowWithSlack(got.Eval(tt), want, 11*tt/2000+1e-6) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestQuickConvolveMonotone(t *testing.T) {
	f := func(pts [4]uint8, slope1, slope2 uint8) bool {
		a := MustCurve([]Point{{0, float64(pts[0] % 20)}, {1 + float64(pts[1]%9), float64(pts[0]%20) + float64(pts[2]%30)}}, float64(slope1%7))
		b := TokenBucket(float64(pts[3]%15), float64(slope2%5))
		c := Convolve(a, b)
		prev := -1.0
		for tt := 0.0; tt <= 30; tt += 0.5 {
			v := c.Eval(tt)
			if v < prev-1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
