package netcalc

import (
	"math"
	"sort"
)

// Add returns the pointwise sum f + g.
func Add(f, g Curve) Curve {
	xs := mergedBreakXs(f, g, nil)
	return buildFrom(xs, func(x float64) float64 {
		return f.Eval(x) + g.Eval(x)
	}, f.finalSlope+g.finalSlope)
}

// Min returns the pointwise minimum of f and g.
func Min(f, g Curve) Curve {
	xs := mergedBreakXs(f, g, crossings(f, g))
	final := math.Min(f.finalSlope, g.finalSlope)
	return buildFrom(xs, func(x float64) float64 {
		return math.Min(f.Eval(x), g.Eval(x))
	}, final)
}

// Max returns the pointwise maximum of f and g.
func Max(f, g Curve) Curve {
	xs := mergedBreakXs(f, g, crossings(f, g))
	final := math.Max(f.finalSlope, g.finalSlope)
	return buildFrom(xs, func(x float64) float64 {
		return math.Max(f.Eval(x), g.Eval(x))
	}, final)
}

// Scale returns the curve t -> k * f(t). k must be >= 0.
func Scale(f Curve, k float64) Curve {
	if k < 0 {
		panic("netcalc: Scale with negative factor")
	}
	pts := f.Points()
	for i := range pts {
		pts[i].Y *= k
	}
	return MustCurve(pts, f.finalSlope*k)
}

// ShiftRight returns the curve t -> f(max(0, t-d)): the service curve of
// f preceded by a pure delay element of d. d must be >= 0.
func ShiftRight(f Curve, d float64) Curve {
	if d < 0 {
		panic("netcalc: ShiftRight with negative delay")
	}
	if d == 0 {
		return f
	}
	src := f.normPoints()
	pts := make([]Point, 0, len(src)+1)
	pts = append(pts, Point{0, src[0].Y})
	for _, p := range src {
		pts = append(pts, Point{p.X + d, p.Y})
	}
	return MustCurve(pts, f.finalSlope)
}

// Residual returns the residual (leftover) service curve for a flow
// competing under blind (arbitrary) multiplexing: the non-decreasing
// closure of max(0, beta - alphaCross). This is the standard leftover
// service theorem used to analyse per-flow guarantees behind a shared
// resource (Section IV of the paper).
func Residual(beta, alphaCross Curve) Curve {
	xs := mergedBreakXs(beta, alphaCross, crossings(beta, alphaCross))
	finalSlope := beta.finalSlope - alphaCross.finalSlope
	if finalSlope < 0 {
		finalSlope = 0
	}
	// Raw clipped difference, which may be non-monotone; the closure
	// below restores monotonicity by taking the running supremum.
	pts := make([]Point, 0, len(xs))
	for _, x := range xs {
		pts = append(pts, Point{x, math.Max(0, beta.Eval(x)-alphaCross.Eval(x))})
	}
	return nonDecreasingClosure(pts, finalSlope, beta, alphaCross)
}

// nonDecreasingClosure computes sup_{s<=t} raw(s) over the sampled
// region, then extends to infinity. When the true difference
// beta - alphaCross eventually grows (finalSlope > 0), the closure must
// re-join the raw difference once it exceeds the running maximum.
func nonDecreasingClosure(pts []Point, finalSlope float64, beta, alphaCross Curve) Curve {
	out := make([]Point, 0, len(pts)+2)
	maxY := 0.0
	for i, p := range pts {
		var segEndY float64
		var segEndX float64
		if i+1 < len(pts) {
			segEndX, segEndY = pts[i+1].X, pts[i+1].Y
		} else {
			segEndX, segEndY = p.X, p.Y
		}
		switch {
		case p.Y >= maxY:
			out = append(out, p)
			maxY = p.Y
		default:
			// Below the running max: stay flat, and if the segment
			// climbs back above maxY before its end, insert the
			// re-crossing point.
			out = append(out, Point{p.X, maxY})
			if segEndY > maxY && segEndX > p.X {
				s := (segEndY - p.Y) / (segEndX - p.X)
				cross := p.X + (maxY-p.Y)/s
				if cross > p.X && cross < segEndX {
					out = append(out, Point{cross, maxY})
				}
			}
		}
		if segEndY > maxY {
			maxY = segEndY
		}
	}
	// Extension to infinity: beyond the last breakpoint both beta and
	// alphaCross are affine. If the difference grows, it re-crosses the
	// running max at a computable point; otherwise the closure is flat.
	last := pts[len(pts)-1]
	trueDiff := beta.Eval(last.X) - alphaCross.Eval(last.X)
	if finalSlope > 0 {
		if trueDiff >= maxY {
			return rebuild(out, finalSlope)
		}
		cross := last.X + (maxY-trueDiff)/finalSlope
		out = append(out, Point{cross, maxY})
		return rebuild(out, finalSlope)
	}
	return rebuild(out, 0)
}

// rebuild assembles points (possibly with duplicate Xs from closure
// bookkeeping) into a valid curve.
func rebuild(pts []Point, finalSlope float64) Curve {
	out := make([]Point, 0, len(pts))
	for _, p := range pts {
		if len(out) > 0 && p.X <= out[len(out)-1].X+eps {
			if p.Y > out[len(out)-1].Y {
				out[len(out)-1].Y = p.Y
			}
			continue
		}
		out = append(out, p)
	}
	return MustCurve(out, finalSlope)
}

// mergedBreakXs returns the sorted union of both curves' breakpoint Xs
// plus any extra candidate Xs.
func mergedBreakXs(f, g Curve, extra []float64) []float64 {
	var xs []float64
	for _, p := range f.normPoints() {
		xs = append(xs, p.X)
	}
	for _, p := range g.normPoints() {
		xs = append(xs, p.X)
	}
	xs = append(xs, extra...)
	return sortedUnique(xs)
}

func sortedUnique(xs []float64) []float64 {
	sort.Float64s(xs)
	out := xs[:0]
	for _, x := range xs {
		if x < 0 || math.IsInf(x, 0) || math.IsNaN(x) {
			continue
		}
		if len(out) > 0 && almostEqual(out[len(out)-1], x) {
			continue
		}
		out = append(out, x)
	}
	if len(out) == 0 || out[0] != 0 {
		out = append([]float64{0}, out...)
	}
	return out
}

// crossings returns the Xs where f and g intersect, including on their
// final (infinite) pieces; needed so Min/Max breakpoints are exact.
func crossings(f, g Curve) []float64 {
	xs := mergedBreakXs(f, g, nil)
	var out []float64
	for i := 0; i < len(xs); i++ {
		x0 := xs[i]
		var x1 float64
		if i+1 < len(xs) {
			x1 = xs[i+1]
		} else {
			x1 = math.Inf(1)
		}
		// On (x0, x1) both curves are affine.
		d0 := f.Eval(x0) - g.Eval(x0)
		sd := f.SlopeAt(x0) - g.SlopeAt(x0)
		if sd == 0 {
			continue
		}
		cross := x0 - d0/sd
		if cross > x0+eps && cross < x1-eps {
			out = append(out, cross)
		}
	}
	return out
}

// buildFrom reconstructs a curve from its exact values at the candidate
// Xs (which must include every breakpoint of the result) plus the final
// slope after the last candidate.
func buildFrom(xs []float64, eval func(float64) float64, finalSlope float64) Curve {
	pts := make([]Point, 0, len(xs))
	for _, x := range xs {
		y := eval(x)
		if y < 0 && y > -1e-6 {
			y = 0 // clamp tiny negative rounding
		}
		pts = append(pts, Point{x, y})
	}
	// Monotonicity repair for rounding-level dips only.
	for i := 1; i < len(pts); i++ {
		if pts[i].Y < pts[i-1].Y {
			pts[i].Y = pts[i-1].Y
		}
	}
	if finalSlope < 0 {
		finalSlope = 0
	}
	return MustCurve(pts, finalSlope)
}
