package netcalc

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestDelayBoundTokenBucketRateLatency(t *testing.T) {
	// Classic closed form: h = T + b/R for (b,r) through (R,T), r <= R.
	alpha := TokenBucket(8, 2)
	beta := RateLatency(4, 5)
	want := 5 + 8.0/4
	if got := DelayBound(alpha, beta); !almostEqual(got, want) {
		t.Errorf("DelayBound = %v, want %v", got, want)
	}
}

func TestDelayBoundUnstable(t *testing.T) {
	if got := DelayBound(TokenBucket(1, 10), RateLatency(2, 0)); !math.IsInf(got, 1) {
		t.Errorf("unstable system DelayBound = %v, want +Inf", got)
	}
}

func TestBacklogBoundTokenBucketRateLatency(t *testing.T) {
	// Classic closed form: v = b + r*T.
	alpha := TokenBucket(8, 2)
	beta := RateLatency(4, 5)
	want := 8 + 2*5.0
	if got := BacklogBound(alpha, beta); !almostEqual(got, want) {
		t.Errorf("BacklogBound = %v, want %v", got, want)
	}
	if got := BacklogBound(TokenBucket(1, 10), RateLatency(2, 0)); !math.IsInf(got, 1) {
		t.Errorf("unstable backlog = %v, want +Inf", got)
	}
}

func TestDelayBoundZeroArrival(t *testing.T) {
	if got := DelayBound(Zero(), RateLatency(1, 7)); got != 0 {
		t.Errorf("zero arrival delay = %v, want 0", got)
	}
}

func TestResidualService(t *testing.T) {
	// Leftover of RateLatency(4, 2) after a (2,1) cross flow:
	// beta(t)-alpha(t) = 4(t-2) - (2+t); positive from t where
	// 4t-8-2-t>0 -> t > 10/3; slope 3.
	beta := RateLatency(4, 2)
	cross := TokenBucket(2, 1)
	res := Residual(beta, cross)
	if got := res.Eval(10.0 / 3); math.Abs(got) > 1e-9 {
		t.Errorf("residual at crossing = %v, want 0", got)
	}
	if got := res.Eval(10.0/3 + 3); !almostEqual(got, 9) {
		t.Errorf("residual slope wrong: f(x0+3) = %v, want 9", got)
	}
	if res.Eval(1) != 0 {
		t.Error("residual should be 0 before crossing")
	}
}

func TestResidualDominatedFlow(t *testing.T) {
	// Cross traffic faster than the server: residual is identically 0.
	res := Residual(RateLatency(2, 1), TokenBucket(5, 3))
	if !res.IsZero() {
		t.Errorf("dominated residual = %v, want zero", res)
	}
}

func TestResidualNonDecreasing(t *testing.T) {
	res := Residual(RateLatency(4, 2), MustCurve([]Point{{0, 1}, {5, 30}}, 1))
	prev := -1.0
	for x := 0.0; x <= 40; x += 0.25 {
		v := res.Eval(x)
		if v < prev-1e-9 {
			t.Fatalf("residual decreasing at %v: %v < %v (%v)", x, v, prev, res)
		}
		prev = v
	}
}

func TestTDMAService(t *testing.T) {
	// Slot 2 out of cycle 10 at rate 5: latency 8, then 10 units per
	// slot.
	c := TDMAService(5, 2, 10, 3)
	if got := c.Eval(8); got != 0 {
		t.Errorf("TDMA before first slot = %v, want 0", got)
	}
	if got := c.Eval(10); !almostEqual(got, 10) {
		t.Errorf("TDMA after first slot = %v, want 10", got)
	}
	if got := c.Eval(18); !almostEqual(got, 10) {
		t.Errorf("TDMA during gap = %v, want 10", got)
	}
	if got := c.Eval(20); !almostEqual(got, 20) {
		t.Errorf("TDMA after second slot = %v, want 20", got)
	}
	// Long-run continuation never exceeds the true staircase average.
	if got := c.FinalSlope(); !almostEqual(got, 1) {
		t.Errorf("TDMA final slope = %v, want 1", got)
	}
	if !TDMAService(5, 0, 10, 3).IsZero() {
		t.Error("degenerate TDMA should be zero")
	}
	// Full allocation: slot == cycle behaves like a plain rate.
	full := TDMAService(5, 10, 10, 2)
	if got := full.Eval(4); !almostEqual(got, 20) {
		t.Errorf("full TDMA Eval(4) = %v, want 20", got)
	}
}

func TestCBSService(t *testing.T) {
	c := CBSService(4, 2, 10)
	// Bandwidth 4*2/10 = 0.8, latency 2*(10-2) = 16.
	if got := c.Eval(16); got != 0 {
		t.Errorf("CBS at latency = %v, want 0", got)
	}
	if got := c.Eval(26); !almostEqual(got, 8) {
		t.Errorf("CBS Eval(26) = %v, want 8", got)
	}
	if !CBSService(4, 0, 10).IsZero() {
		t.Error("degenerate CBS should be zero")
	}
}

func TestOpsAddMinMax(t *testing.T) {
	a := TokenBucket(4, 1)
	b := RateLatency(2, 3)
	sum := Add(a, b)
	if got := sum.Eval(5); !almostEqual(got, (4+5)+(2*2)) {
		t.Errorf("Add Eval(5) = %v", got)
	}
	mn := Min(a, b)
	mx := Max(a, b)
	for x := 0.0; x <= 20; x += 0.5 {
		if got, want := mn.Eval(x), math.Min(a.Eval(x), b.Eval(x)); math.Abs(got-want) > 1e-9 {
			t.Fatalf("Min(%v) = %v, want %v", x, got, want)
		}
		if got, want := mx.Eval(x), math.Max(a.Eval(x), b.Eval(x)); math.Abs(got-want) > 1e-9 {
			t.Fatalf("Max(%v) = %v, want %v", x, got, want)
		}
	}
}

func TestOpsScaleShift(t *testing.T) {
	a := TokenBucket(4, 1)
	if got := Scale(a, 2.5).Eval(2); !almostEqual(got, 15) {
		t.Errorf("Scale Eval = %v, want 15", got)
	}
	sh := ShiftRight(RateLatency(2, 3), 4)
	if !sh.Equal(RateLatency(2, 7)) {
		t.Errorf("ShiftRight = %v, want RateLatency(2,7)", sh)
	}
	if got := ShiftRight(a, 0); !got.Equal(a) {
		t.Error("ShiftRight by 0 changed curve")
	}
}

func TestQuickDelayBoundIsSufficient(t *testing.T) {
	// Property: the computed delay bound d satisfies
	// alpha(t) <= beta(t+d) for all t (it is a genuine bound).
	f := func(b, r, rate, lat uint8) bool {
		alpha := TokenBucket(float64(b%40), float64(r%5))
		beta := RateLatency(float64(rate%6)+float64(r%5)+0.5, float64(lat%15))
		d := DelayBound(alpha, beta)
		if math.IsInf(d, 1) {
			return true
		}
		for x := 0.0; x <= 200; x += 1.0 {
			if alpha.Eval(x) > beta.Eval(x+d)+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestShaperBasics(t *testing.T) {
	s, err := NewShaper(8, 0.5) // 8 units burst, 0.5 units/ns
	if err != nil {
		t.Fatal(err)
	}
	now := sim.Time(0)
	if !s.Take(now, 8) {
		t.Fatal("full bucket should admit burst-sized request")
	}
	if s.Take(now, 1) {
		t.Fatal("empty bucket admitted request")
	}
	// After 10ns, 5 tokens accrued.
	now = sim.NS(10)
	if !s.Conforms(now, 5) {
		t.Error("expected 5 tokens after 10ns at 0.5/ns")
	}
	if s.Conforms(now, 5.1) {
		t.Error("over-conformance")
	}
}

func TestShaperEarliestConforming(t *testing.T) {
	s, _ := NewShaper(4, 1) // 1 unit per ns
	now := sim.Time(0)
	s.Take(now, 4)
	if got := s.EarliestConforming(now, 2); got != sim.NS(2) {
		t.Errorf("EarliestConforming = %v, want 2ns", got)
	}
	if got := s.EarliestConforming(now, 5); got != sim.Forever {
		t.Errorf("oversized request = %v, want Forever", got)
	}
	z, _ := NewShaper(1, 0)
	z.Take(0, 1)
	if got := z.EarliestConforming(0, 1); got != sim.Forever {
		t.Errorf("zero-rate refill = %v, want Forever", got)
	}
}

func TestShaperSetRate(t *testing.T) {
	s, _ := NewShaper(10, 1)
	s.Take(0, 10)
	s.SetRate(sim.NS(4), 2) // 4 tokens accrued at old rate first
	if !s.Conforms(sim.NS(4), 4) {
		t.Error("tokens at old rate not accrued before rate change")
	}
	if got := s.EarliestConforming(sim.NS(4), 8); got != sim.NS(6) {
		t.Errorf("refill at new rate: got %v, want 6ns", got)
	}
	if s.Rate() != 2 {
		t.Errorf("Rate = %v", s.Rate())
	}
}

func TestShaperCapsAtBurst(t *testing.T) {
	s, _ := NewShaper(3, 100)
	if s.Conforms(sim.NS(1000), 3.5) {
		t.Error("bucket exceeded capacity")
	}
	if !s.Conforms(sim.NS(1000), 3) {
		t.Error("bucket should be full")
	}
}

func TestShaperEnforcesCurveProperty(t *testing.T) {
	// Property: total admitted traffic over any run never exceeds the
	// shaping curve b + r*t.
	f := func(seed uint64, burst8, rate8 uint8) bool {
		burst := float64(burst8%20) + 1
		rate := float64(rate8%4)*0.25 + 0.25
		s, _ := NewShaper(burst, rate)
		rnd := sim.NewRand(seed)
		now := sim.Time(0)
		admitted := 0.0
		for i := 0; i < 200; i++ {
			now += rnd.Duration(sim.NS(10))
			size := 1 + float64(rnd.Intn(3))
			if s.Take(now, size) {
				admitted += size
			}
			if admitted > burst+rate*now.Nanoseconds()+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestNewShaperRejectsNegative(t *testing.T) {
	if _, err := NewShaper(-1, 1); err == nil {
		t.Error("negative burst accepted")
	}
	if _, err := NewShaper(1, -1); err == nil {
		t.Error("negative rate accepted")
	}
}
