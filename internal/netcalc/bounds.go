package netcalc

import (
	"math"
)

// DelayBound returns the horizontal deviation h(alpha, beta): the
// worst-case delay of a flow with arrival curve alpha served with
// service curve beta (FIFO per flow). It returns +Inf when the arrival
// rate exceeds the long-run service rate.
func DelayBound(alpha, beta Curve) float64 {
	if alpha.finalSlope > beta.finalSlope+eps {
		return math.Inf(1)
	}
	// h = sup_t [ beta^{-1}(alpha(t)) - t ]. The supremum of this
	// piecewise-linear expression is attained either at a breakpoint of
	// alpha or at a t where alpha(t) crosses a breakpoint level of beta.
	var ts []float64
	for _, p := range alpha.normPoints() {
		ts = append(ts, p.X)
	}
	for _, p := range beta.normPoints() {
		if t := alpha.Inverse(p.Y); !math.IsInf(t, 1) {
			ts = append(ts, t)
		}
	}
	ts = sortedUnique(ts)
	worst := 0.0
	for _, t := range ts {
		y := alpha.Eval(t)
		// The sup over t may only be approached from the right of a
		// candidate when beta has a flat segment at level y; the strict
		// inverse captures that limit.
		d := beta.Inverse(y) - t
		if dr := beta.InverseStrict(y) - t; alpha.SlopeAt(t) > 0 && dr > d {
			d = dr
		}
		if math.IsInf(d, 1) {
			return math.Inf(1)
		}
		if d > worst {
			worst = d
		}
	}
	return worst
}

// DelayBoundThrough composes a tandem of per-resource service curves
// by (min,plus) convolution and returns the delay bound of a flow with
// arrival curve alpha through the whole path — the Section IV-A
// end-to-end composition (NoC ⊗ DRAM ⊗ NoC) as one call, used by the
// runtime auditor to capture each application's analytic bound at
// registration. With no service curves the bound is zero; an
// infeasible tandem yields +Inf.
func DelayBoundThrough(alpha Curve, betas ...Curve) float64 {
	return (*Cache)(nil).DelayBoundThrough(alpha, betas...)
}

// BacklogBound returns the vertical deviation v(alpha, beta): the
// worst-case backlog (buffer requirement) of a flow with arrival curve
// alpha served with service curve beta. It returns +Inf when the
// arrival rate exceeds the long-run service rate.
func BacklogBound(alpha, beta Curve) float64 {
	if alpha.finalSlope > beta.finalSlope+eps {
		return math.Inf(1)
	}
	xs := mergedBreakXs(alpha, beta, nil)
	worst := 0.0
	for _, x := range xs {
		if d := alpha.Eval(x) - beta.Eval(x); d > worst {
			worst = d
		}
	}
	return worst
}

// OutputArrival bounds the arrival curve of a flow at the output of a
// server: alpha (/) beta. It is a convenience wrapper over Deconvolve
// that propagates unboundedness as +Inf burst.
func OutputArrival(alpha, beta Curve) Curve {
	out, err := Deconvolve(alpha, beta)
	if err != nil {
		return Affine(math.Inf(1), alpha.finalSlope)
	}
	return out
}

// TDMAService returns a lower service curve for a TDMA arbiter that
// grants the flow a slot of length slot every cycle of length cycle on
// a resource with the given rate. The exact staircase lower bound is
// emitted for `periods` cycles and then continued conservatively with
// the long-run average rate (which never overestimates service).
// Section II of the paper contrasts this with reservation-based
// scheduling: TDMA gives hard isolation at the price of a large
// service latency (cycle - slot).
func TDMAService(rate, slot, cycle float64, periods int) Curve {
	if slot <= 0 || cycle <= 0 || slot > cycle || rate <= 0 {
		return Zero()
	}
	if periods < 1 {
		periods = 1
	}
	// Worst case: the flow's slot has just ended, so it waits
	// cycle-slot before service resumes.
	gap := cycle - slot
	pts := []Point{{0, 0}}
	y := 0.0
	for k := 0; k < periods; k++ {
		start := gap + float64(k)*cycle
		end := start + slot
		pts = append(pts, Point{start, y})
		y += rate * slot
		pts = append(pts, Point{end, y})
	}
	// Conservative continuation at the long-run average rate, anchored
	// at the last full-service point.
	avg := rate * slot / cycle
	c, err := NewCurve(dedupeXs(pts), avg)
	if err != nil {
		return Zero()
	}
	return c
}

// dedupeXs merges points with coincident Xs (slot == cycle makes the
// gap zero) keeping the larger Y.
func dedupeXs(pts []Point) []Point {
	out := pts[:0]
	for _, p := range pts {
		if len(out) > 0 && almostEqual(out[len(out)-1].X, p.X) {
			if p.Y > out[len(out)-1].Y {
				out[len(out)-1].Y = p.Y
			}
			continue
		}
		out = append(out, p)
	}
	return out
}

// CBSService returns the service curve of a Constant Bandwidth Server
// with budget Q every period P on a resource of the given rate: the
// classic rate-latency curve with rate Q/P*rate and latency 2*(P-Q)
// (worst case: budget exhausted at the start of a period). This models
// the reservation-based scheduling the paper advocates in Section II.
func CBSService(rate, budget, period float64) Curve {
	if budget <= 0 || period <= 0 || budget > period {
		return Zero()
	}
	bw := rate * budget / period
	latency := 2 * (period - budget)
	return RateLatency(bw, latency)
}
