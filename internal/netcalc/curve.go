// Package netcalc implements deterministic Network Calculus (Le Boudec &
// Thiran, LNCS 2050) on piecewise-linear curves: arrival curves, service
// curves, min-plus convolution and deconvolution, and the delay and
// backlog bounds used throughout the paper's Section IV.
//
// A Curve is a wide-sense-increasing piecewise-linear function
// f: [0, +inf) -> [0, +inf), represented by its breakpoints plus a final
// slope that extends the last piece to infinity. Token buckets are
// represented right-continuously: TokenBucket(b, r) has f(0) = b, which
// is the standard convention for arrival-curve arithmetic and leaves all
// delay/backlog bounds unchanged.
//
// Units are the caller's choice; within this repository time is
// nanoseconds and amount is requests or bytes, per use site.
package netcalc

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// eps is the tolerance for breakpoint and slope comparisons. Curve
// coordinates in this repository span roughly [0, 1e9], so comparisons
// use a relative-plus-absolute guard built on this base.
const eps = 1e-9

func almostEqual(a, b float64) bool {
	diff := math.Abs(a - b)
	return diff <= eps || diff <= eps*(math.Abs(a)+math.Abs(b))
}

// Point is a curve breakpoint.
type Point struct {
	X float64 // time
	Y float64 // cumulative amount
}

// Curve is a wide-sense-increasing piecewise-linear function on [0, inf).
// The zero value is the constant-zero curve.
type Curve struct {
	// pts are the breakpoints in strictly increasing X order with
	// pts[0].X == 0. Between consecutive points the function is affine;
	// after the last point it continues with slope finalSlope.
	pts        []Point
	finalSlope float64
}

// NewCurve builds a curve from breakpoints and a final slope.
// It returns an error unless the points start at X=0, are strictly
// increasing in X, non-decreasing in Y, and the final slope is >= 0.
func NewCurve(pts []Point, finalSlope float64) (Curve, error) {
	if len(pts) == 0 {
		return Curve{}, fmt.Errorf("netcalc: curve needs at least one point")
	}
	if pts[0].X != 0 {
		return Curve{}, fmt.Errorf("netcalc: first breakpoint must be at X=0, got %v", pts[0].X)
	}
	if finalSlope < 0 {
		return Curve{}, fmt.Errorf("netcalc: negative final slope %v", finalSlope)
	}
	for i, p := range pts {
		if p.X < 0 || p.Y < 0 {
			return Curve{}, fmt.Errorf("netcalc: negative coordinate at point %d: %+v", i, p)
		}
		if i > 0 {
			if p.X <= pts[i-1].X {
				return Curve{}, fmt.Errorf("netcalc: breakpoints not strictly increasing at %d", i)
			}
			if p.Y < pts[i-1].Y-eps {
				return Curve{}, fmt.Errorf("netcalc: curve decreasing at point %d", i)
			}
		}
	}
	c := Curve{pts: append([]Point(nil), pts...), finalSlope: finalSlope}
	c.simplify()
	return c, nil
}

// MustCurve is NewCurve that panics on invalid input; for literals in
// tests and table-driven construction.
func MustCurve(pts []Point, finalSlope float64) Curve {
	c, err := NewCurve(pts, finalSlope)
	if err != nil {
		panic(err)
	}
	return c
}

// Zero returns the constant-zero curve.
func Zero() Curve { return MustCurve([]Point{{0, 0}}, 0) }

// Constant returns the constant curve f(t) = v.
func Constant(v float64) Curve { return MustCurve([]Point{{0, v}}, 0) }

// TokenBucket returns the arrival curve of a token-bucket shaper with
// burst b and sustained rate r: f(t) = b + r*t (right-continuous at 0).
func TokenBucket(b, r float64) Curve {
	return MustCurve([]Point{{0, b}}, r)
}

// RateLatency returns the service curve of a rate-latency server:
// f(t) = R * max(0, t-T).
func RateLatency(rate, latency float64) Curve {
	if latency == 0 {
		return MustCurve([]Point{{0, 0}}, rate)
	}
	return MustCurve([]Point{{0, 0}, {latency, 0}}, rate)
}

// Affine returns f(t) = offset + slope*t.
func Affine(offset, slope float64) Curve {
	return MustCurve([]Point{{0, offset}}, slope)
}

// FromSamples builds a curve from arbitrary (X, Y) samples of a
// wide-sense-increasing function, sorting them and prepending (0, y0)
// if needed; after the last sample the curve continues with finalSlope.
func FromSamples(samples []Point, finalSlope float64) (Curve, error) {
	s := append([]Point(nil), samples...)
	sort.Slice(s, func(i, j int) bool { return s[i].X < s[j].X })
	// Drop duplicate Xs, keeping the max Y (conservative for service
	// curves built from measured points).
	out := s[:0]
	for _, p := range s {
		if len(out) > 0 && almostEqual(out[len(out)-1].X, p.X) {
			if p.Y > out[len(out)-1].Y {
				out[len(out)-1].Y = p.Y
			}
			continue
		}
		out = append(out, p)
	}
	if len(out) == 0 || out[0].X > 0 {
		y0 := 0.0
		out = append([]Point{{0, y0}}, out...)
	}
	return NewCurve(out, finalSlope)
}

// simplify removes breakpoints that are collinear with their neighbours.
func (c *Curve) simplify() {
	if len(c.pts) < 2 {
		return
	}
	out := c.pts[:1]
	for i := 1; i < len(c.pts); i++ {
		p := c.pts[i]
		var nextSlope float64
		if i+1 < len(c.pts) {
			nextSlope = slope(p, c.pts[i+1])
		} else {
			nextSlope = c.finalSlope
		}
		prevSlope := slope(out[len(out)-1], p)
		if almostEqual(prevSlope, nextSlope) {
			continue // p is collinear; drop it
		}
		out = append(out, p)
	}
	c.pts = out
}

func slope(a, b Point) float64 { return (b.Y - a.Y) / (b.X - a.X) }

// Eval returns f(t). Negative t evaluates to f(0).
func (c Curve) Eval(t float64) float64 {
	if len(c.pts) == 0 {
		return 0
	}
	if t <= c.pts[0].X {
		return c.pts[0].Y
	}
	// Find the last breakpoint with X <= t.
	i := sort.Search(len(c.pts), func(i int) bool { return c.pts[i].X > t }) - 1
	p := c.pts[i]
	var s float64
	if i+1 < len(c.pts) {
		s = slope(p, c.pts[i+1])
	} else {
		s = c.finalSlope
	}
	return p.Y + s*(t-p.X)
}

// SlopeAt returns the right-derivative of the curve at t.
func (c Curve) SlopeAt(t float64) float64 {
	if len(c.pts) == 0 {
		return 0
	}
	if t < c.pts[0].X {
		t = c.pts[0].X
	}
	i := sort.Search(len(c.pts), func(i int) bool { return c.pts[i].X > t }) - 1
	if i < 0 {
		i = 0
	}
	if i+1 < len(c.pts) {
		return slope(c.pts[i], c.pts[i+1])
	}
	return c.finalSlope
}

// Inverse returns the smallest t such that f(t) >= y, or +Inf if the
// curve never reaches y.
func (c Curve) Inverse(y float64) float64 {
	if len(c.pts) == 0 {
		if y <= 0 {
			return 0
		}
		return math.Inf(1)
	}
	if y <= c.pts[0].Y {
		return 0
	}
	for i := 1; i < len(c.pts); i++ {
		if c.pts[i].Y >= y {
			prev := c.pts[i-1]
			s := slope(prev, c.pts[i])
			if s == 0 {
				return c.pts[i].X
			}
			return prev.X + (y-prev.Y)/s
		}
	}
	last := c.pts[len(c.pts)-1]
	if c.finalSlope == 0 {
		return math.Inf(1)
	}
	return last.X + (y-last.Y)/c.finalSlope
}

// InverseStrict returns the smallest t such that f(t) > y, or +Inf if
// the curve never exceeds y. It differs from Inverse on flat segments:
// Inverse returns their start, InverseStrict their end. DelayBound
// needs it to capture suprema approached just past a flat service
// segment.
func (c Curve) InverseStrict(y float64) float64 {
	pts := c.normPoints()
	for i := 0; i < len(pts); i++ {
		if pts[i].Y > y+eps {
			if i == 0 {
				return 0
			}
			prev := pts[i-1]
			s := slope(prev, pts[i])
			return prev.X + (y-prev.Y)/s
		}
	}
	last := pts[len(pts)-1]
	if c.finalSlope == 0 {
		return math.Inf(1)
	}
	if y < last.Y {
		y = last.Y
	}
	return last.X + (y-last.Y)/c.finalSlope
}

// Points returns a copy of the curve's breakpoints.
func (c Curve) Points() []Point {
	if len(c.pts) == 0 {
		return []Point{{0, 0}}
	}
	return append([]Point(nil), c.pts...)
}

// FinalSlope returns the slope of the curve after its last breakpoint.
func (c Curve) FinalSlope() float64 { return c.finalSlope }

// IsZero reports whether the curve is identically zero.
func (c Curve) IsZero() bool {
	if c.finalSlope != 0 {
		return false
	}
	for _, p := range c.pts {
		if p.Y != 0 {
			return false
		}
	}
	return true
}

// Equal reports whether two curves are equal within tolerance.
func (c Curve) Equal(d Curve) bool {
	cp, dp := c.normPoints(), d.normPoints()
	if len(cp) != len(dp) || !almostEqual(c.finalSlope, d.finalSlope) {
		return false
	}
	for i := range cp {
		if !almostEqual(cp[i].X, dp[i].X) || !almostEqual(cp[i].Y, dp[i].Y) {
			return false
		}
	}
	return true
}

func (c Curve) normPoints() []Point {
	if len(c.pts) == 0 {
		return []Point{{0, 0}}
	}
	return c.pts
}

// String renders the curve's breakpoints and final slope.
func (c Curve) String() string {
	var b strings.Builder
	b.WriteString("Curve{")
	for i, p := range c.normPoints() {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "(%g,%g)", p.X, p.Y)
	}
	fmt.Fprintf(&b, "; slope %g}", c.finalSlope)
	return b.String()
}
