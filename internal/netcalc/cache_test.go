package netcalc

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

func bitEqualCurves(a, b Curve) bool { return a.identical(b) }

func bitEqualFloat(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

// checkOpsAgree runs all four operators through the cache and the
// uncached package functions and requires bit-identical results —
// the memoization correctness contract.
func checkOpsAgree(t *testing.T, c *Cache, f, g Curve) {
	t.Helper()
	if got, want := c.Convolve(f, g), Convolve(f, g); !bitEqualCurves(got, want) {
		t.Fatalf("Convolve diverges\n  f=%v\n  g=%v\n  got %v\n want %v", f, g, got, want)
	}
	if got, want := c.Residual(f, g), Residual(f, g); !bitEqualCurves(got, want) {
		t.Fatalf("Residual diverges\n  f=%v\n  g=%v\n  got %v\n want %v", f, g, got, want)
	}
	if got, want := c.DelayBound(f, g), DelayBound(f, g); !bitEqualFloat(got, want) {
		t.Fatalf("DelayBound diverges: got %v want %v", got, want)
	}
	gotC, gotErr := c.Deconvolve(f, g)
	wantC, wantErr := Deconvolve(f, g)
	if (gotErr == nil) != (wantErr == nil) {
		t.Fatalf("Deconvolve error diverges: got %v want %v", gotErr, wantErr)
	}
	if gotErr == nil && !bitEqualCurves(gotC, wantC) {
		t.Fatalf("Deconvolve diverges\n  got %v\n want %v", gotC, wantC)
	}
}

// TestCacheMatchesUncachedRandom is the central property test:
// randomized fixed-seed curve pairs through cached and uncached
// operators agree bit-exactly, on both cold and warm (hit) paths.
func TestCacheMatchesUncachedRandom(t *testing.T) {
	rnd := rand.New(rand.NewSource(1))
	c := NewCache(0)
	curves := make([]Curve, 40)
	for i := range curves {
		curves[i] = randomCurve(rnd)
	}
	for i := 0; i < 1500; i++ {
		f := curves[rnd.Intn(len(curves))]
		g := curves[rnd.Intn(len(curves))]
		checkOpsAgree(t, c, f, g)
	}
	st := c.Stats()
	if st.Hits == 0 {
		t.Error("drawing pairs from a small pool produced no cache hits")
	}
	if st.InternedCurves == 0 || st.Entries == 0 {
		t.Errorf("stats look dead: %+v", st)
	}
}

// TestCacheEviction forces LRU churn through a tiny cache and checks
// results stay correct when entries are recomputed after eviction.
func TestCacheEviction(t *testing.T) {
	rnd := rand.New(rand.NewSource(3))
	c := NewCache(4)
	curves := make([]Curve, 12)
	for i := range curves {
		curves[i] = randomCurve(rnd)
	}
	for round := 0; round < 3; round++ {
		for i := range curves {
			for j := range curves {
				checkOpsAgree(t, c, curves[i], curves[j])
			}
		}
	}
	st := c.Stats()
	if st.Evictions == 0 {
		t.Fatal("capacity-4 cache under 12x12 op churn never evicted")
	}
	if st.Entries > 4 {
		t.Fatalf("entries = %d exceeds capacity 4", st.Entries)
	}
}

// TestCacheCollidingInterner runs the property check with a constant
// interner hash, so every operand lookup exercises the collision
// bucket scan.
func TestCacheCollidingInterner(t *testing.T) {
	rnd := rand.New(rand.NewSource(5))
	c := newCacheWithInterner(64, newInternerWithHash(func(Curve) uint64 { return 0 }))
	for i := 0; i < 400; i++ {
		checkOpsAgree(t, c, randomCurve(rnd), randomCurve(rnd))
	}
}

// TestCacheDeconvolveErrorMemoized pins that unboundedness is memoized
// like any other result: a hit must reproduce the error, not mask it.
func TestCacheDeconvolveErrorMemoized(t *testing.T) {
	c := NewCache(0)
	fast := TokenBucket(100, 2.0) // arrival outruns service
	slow := RateLatency(1.0, 10)
	for i := 0; i < 3; i++ {
		if _, err := c.Deconvolve(fast, slow); err == nil {
			t.Fatalf("iteration %d: unbounded deconvolution returned nil error", i)
		}
	}
	if st := c.Stats(); st.Hits < 2 {
		t.Fatalf("error result not served from cache: %+v", st)
	}
}

// TestCacheDirectionalKeys guards against commutative key folding:
// DelayBound(f, g) and DelayBound(g, f) are different questions and
// must not share an entry.
func TestCacheDirectionalKeys(t *testing.T) {
	c := NewCache(0)
	alpha := TokenBucket(64, 0.25)
	beta := RateLatency(0.5, 100)
	d1 := c.DelayBound(alpha, beta)
	d2 := c.DelayBound(beta, alpha)
	if bitEqualFloat(d1, d2) {
		t.Skip("asymmetric pair happened to produce equal bounds; pick different curves")
	}
	if got := c.DelayBound(alpha, beta); !bitEqualFloat(got, d1) {
		t.Fatalf("directional key collision: %v vs %v", got, d1)
	}
}

// TestCacheNilReceiver checks the nil-safe contract every call site
// relies on: all methods on a nil *Cache behave like the uncached
// package functions.
func TestCacheNilReceiver(t *testing.T) {
	var c *Cache
	f := TokenBucket(32, 0.25)
	g := RateLatency(0.5, 50)
	checkOpsAgree(t, c, f, g)
	if got, want := c.ConvolveAll(g, g, f), ConvolveAll(g, g, f); !bitEqualCurves(got, want) {
		t.Fatal("nil-cache ConvolveAll diverges")
	}
	if got, want := c.DelayBoundThrough(f, g, g), DelayBoundThrough(f, g, g); !bitEqualFloat(got, want) {
		t.Fatal("nil-cache DelayBoundThrough diverges")
	}
	if st := c.Stats(); st != (CacheStats{}) {
		t.Fatalf("nil cache stats = %+v, want zero value", st)
	}
}

// TestCacheConcurrent hammers one cache from many goroutines (the
// sweep-worker sharing scenario); run under -race this checks the
// locking discipline, and every result is still bit-identical to the
// uncached computation.
func TestCacheConcurrent(t *testing.T) {
	c := NewCache(32) // small: concurrent evictions too
	base := make([]Curve, 16)
	seedRnd := rand.New(rand.NewSource(9))
	for i := range base {
		base[i] = randomCurve(seedRnd)
	}
	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rnd := rand.New(rand.NewSource(int64(100 + w)))
			for i := 0; i < 300; i++ {
				f := base[rnd.Intn(len(base))]
				g := base[rnd.Intn(len(base))]
				if got, want := c.Convolve(f, g), Convolve(f, g); !bitEqualCurves(got, want) {
					errs <- "Convolve diverged under concurrency"
					return
				}
				if got, want := c.DelayBound(f, g), DelayBound(f, g); !bitEqualFloat(got, want) {
					errs <- "DelayBound diverged under concurrency"
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}
