package netcalc

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestArrivalRecorderBasics(t *testing.T) {
	r := NewArrivalRecorder()
	if err := r.Record(sim.NS(10), 64); err != nil {
		t.Fatal(err)
	}
	if err := r.Record(sim.NS(5), 64); err == nil {
		t.Error("out-of-order arrival accepted")
	}
	if err := r.Record(sim.NS(20), -1); err == nil {
		t.Error("negative size accepted")
	}
	if r.Count() != 1 || r.Total() != 64 {
		t.Errorf("count/total = %d/%g", r.Count(), r.Total())
	}
}

func TestMaxOverWindow(t *testing.T) {
	r := NewArrivalRecorder()
	// Bursty: 3 arrivals at t=0..2ns, then one at 100ns.
	for i := 0; i < 3; i++ {
		_ = r.Record(sim.NS(float64(i)), 10)
	}
	_ = r.Record(sim.NS(100), 10)
	if got := r.MaxOverWindow(0); got != 10 {
		t.Errorf("window 0: %g, want 10 (single instant)", got)
	}
	if got := r.MaxOverWindow(2); got != 30 {
		t.Errorf("window 2ns: %g, want 30", got)
	}
	if got := r.MaxOverWindow(1000); got != 40 {
		t.Errorf("window 1000ns: %g, want 40", got)
	}
	empty := NewArrivalRecorder()
	if empty.MaxOverWindow(10) != 0 {
		t.Error("empty recorder window > 0")
	}
}

func TestMaxOverWindowCoincidentArrivals(t *testing.T) {
	r := NewArrivalRecorder()
	_ = r.Record(0, 5)
	_ = r.Record(0, 7)
	if got := r.MaxOverWindow(0); got != 12 {
		t.Errorf("coincident arrivals window 0 = %g, want 12", got)
	}
}

func TestEmpiricalCurveBoundsTrace(t *testing.T) {
	// The empirical curve must upper-bound the trace's traffic over
	// every window.
	rnd := sim.NewRand(5)
	r := NewArrivalRecorder()
	now := sim.Time(0)
	for i := 0; i < 500; i++ {
		now += rnd.Duration(sim.NS(50))
		if err := r.Record(now, float64(16+rnd.Intn(64))); err != nil {
			t.Fatal(err)
		}
	}
	curve, err := r.Curve([]float64{1, 10, 100, 1000, 10000})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []float64{0, 0.5, 1, 5, 10, 50, 100, 500, 1000, 5000, 20000} {
		got := curve.Eval(w)
		want := r.MaxOverWindow(w)
		if got < want-1e-6 {
			t.Errorf("curve(%g) = %g below observed max %g", w, got, want)
		}
	}
}

func TestEmpiricalCurveEmpty(t *testing.T) {
	c, err := NewArrivalRecorder().Curve([]float64{10})
	if err != nil {
		t.Fatal(err)
	}
	if !c.IsZero() {
		t.Error("empty trace curve not zero")
	}
}

func TestTokenBucketFit(t *testing.T) {
	// A perfectly periodic source: one 64B arrival every 100ns. The
	// fitted bucket at rate 0.64 needs burst ~64.
	r := NewArrivalRecorder()
	for i := 0; i < 100; i++ {
		_ = r.Record(sim.Duration(i)*sim.NS(100), 64)
	}
	burst, rate, err := r.TokenBucketFit([]float64{0.32, 0.64, 1.28})
	if err != nil {
		t.Fatal(err)
	}
	if rate != 0.64 {
		t.Errorf("fit rate = %g, want 0.64", rate)
	}
	if burst < 64 || burst > 128 {
		t.Errorf("fit burst = %g, want ~64", burst)
	}
	// A shaper with the fitted parameters passes the whole trace.
	sh, err := NewShaper(burst, rate)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if !sh.Take(sim.Duration(i)*sim.NS(100), 64) {
			t.Fatalf("fitted shaper rejected arrival %d", i)
		}
	}
}

func TestTokenBucketFitErrors(t *testing.T) {
	r := NewArrivalRecorder()
	if _, _, err := r.TokenBucketFit([]float64{1}); err == nil {
		t.Error("empty trace fit accepted")
	}
	_ = r.Record(0, 1)
	if _, _, err := r.TokenBucketFit(nil); err == nil {
		t.Error("no candidates accepted")
	}
	if _, _, err := r.TokenBucketFit([]float64{-1}); err == nil {
		t.Error("negative candidate accepted")
	}
}

func TestQuickFittedBucketPassesTrace(t *testing.T) {
	// Property: for any random trace, a shaper with the fitted (burst,
	// rate) admits every recorded arrival at its recorded time.
	f := func(seed uint64, n8 uint8) bool {
		rnd := sim.NewRand(seed)
		r := NewArrivalRecorder()
		now := sim.Time(0)
		var times []sim.Time
		var sizes []float64
		for i := 0; i < int(n8%50)+2; i++ {
			now += rnd.Duration(sim.NS(200))
			size := float64(1 + rnd.Intn(100))
			if r.Record(now, size) != nil {
				return false
			}
			times = append(times, now)
			sizes = append(sizes, size)
		}
		burst, rate, err := r.TokenBucketFit([]float64{0.01, 0.1, 1, 10})
		if err != nil {
			return false
		}
		sh, err := NewShaper(burst+1e-6, rate)
		if err != nil {
			return false
		}
		for i := range times {
			if !sh.Take(times[i], sizes[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestQuickEmpiricalCurveMonotone(t *testing.T) {
	f := func(seed uint64) bool {
		rnd := sim.NewRand(seed)
		r := NewArrivalRecorder()
		now := sim.Time(0)
		for i := 0; i < 60; i++ {
			now += rnd.Duration(sim.NS(100))
			_ = r.Record(now, float64(rnd.Intn(50)))
		}
		c, err := r.Curve([]float64{5, 50, 500})
		if err != nil {
			return false
		}
		prev := -1.0
		for w := 0.0; w < 2000; w += 25 {
			v := c.Eval(w)
			if v < prev-1e-9 || math.IsNaN(v) {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
