package netcalc

import (
	"fmt"

	"repro/internal/sim"
)

// Shaper is a runtime token-bucket traffic shaper operating in virtual
// time. It enforces the arrival curve TokenBucket(Burst, Rate): over any
// window tau the shaper admits at most Burst + Rate*tau units.
//
// The paper (Section IV-A) relies on exactly this element: "a token
// bucket shaper ... can be practically implemented in hardware (all it
// takes is a buffer and a timer)". Network interfaces in internal/noc
// and the admission-control clients in internal/admission embed it.
type Shaper struct {
	burst float64 // bucket capacity in units
	rate  float64 // units per nanosecond of virtual time

	tokens float64
	last   sim.Time
}

// NewShaper returns a shaper with the given bucket capacity (units) and
// sustained rate (units per nanosecond). The bucket starts full.
func NewShaper(burst, rate float64) (*Shaper, error) {
	if burst < 0 || rate < 0 {
		return nil, fmt.Errorf("netcalc: shaper burst/rate must be non-negative, got %g/%g", burst, rate)
	}
	return &Shaper{burst: burst, rate: rate, tokens: burst}, nil
}

// Burst returns the configured bucket capacity.
func (s *Shaper) Burst() float64 { return s.burst }

// Rate returns the configured sustained rate in units per nanosecond.
func (s *Shaper) Rate() float64 { return s.rate }

// SetRate changes the sustained rate at virtual time now, first
// accruing tokens at the old rate. The admission-control Resource
// Manager reconfigures client shapers through this on mode changes.
func (s *Shaper) SetRate(now sim.Time, rate float64) {
	if rate < 0 {
		rate = 0
	}
	s.refill(now)
	s.rate = rate
}

// refill accrues tokens up to the bucket capacity.
func (s *Shaper) refill(now sim.Time) {
	if now < s.last {
		return // stale caller; tokens already accrued past this point
	}
	dt := (now - s.last).Nanoseconds()
	s.tokens += dt * s.rate
	if s.tokens > s.burst {
		s.tokens = s.burst
	}
	s.last = now
}

// Conforms reports whether a request of the given size can be admitted
// at time now without violating the shaping curve.
func (s *Shaper) Conforms(now sim.Time, size float64) bool {
	s.refill(now)
	return s.tokens >= size-1e-9
}

// Take admits a request of the given size at time now, removing its
// tokens. It reports false (and removes nothing) if the request does
// not conform.
func (s *Shaper) Take(now sim.Time, size float64) bool {
	if !s.Conforms(now, size) {
		return false
	}
	s.tokens -= size
	return true
}

// EarliestConforming returns the earliest virtual time >= now at which
// a request of the given size would conform. If size exceeds the bucket
// capacity and the rate is zero, it returns sim.Forever.
func (s *Shaper) EarliestConforming(now sim.Time, size float64) sim.Time {
	s.refill(now)
	if s.tokens >= size-1e-9 {
		return now
	}
	if s.rate <= 0 || size > s.burst+1e-9 {
		// The bucket caps at its capacity, so an oversized request
		// never conforms no matter how long it waits.
		return sim.Forever
	}
	need := size - s.tokens
	waitNS := need / s.rate
	// Round up to a whole picosecond (and wait at least one): rounding
	// down would return a time at which the request still does not
	// conform, and a caller that re-arms an event at that time would
	// spin forever at the same virtual instant.
	wait := sim.Duration(waitNS * 1000)
	if float64(wait) < waitNS*1000 || wait < 1 {
		wait++
	}
	t := now + wait
	if t < now { // overflow guard
		return sim.Forever
	}
	return t
}

// Curve returns the arrival curve this shaper enforces.
func (s *Shaper) Curve() Curve { return TokenBucket(s.burst, s.rate) }
