package netcalc_test

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"testing"

	"repro/internal/admission"
	"repro/internal/netcalc"
	"repro/internal/noc"
)

// This file benchmarks the analytic-plane fast path (canonical-curve
// interning + memoized operator cache + incremental admission bounds)
// against the uncached arithmetic, and emits BENCH_netcalc.json for
// the CI smoke gate. The uncached baselines below are the same
// computations the pre-cache code performed, kept as closures so the
// speedup claim is measured in-tree, not guessed against git history.
// See docs/PERFORMANCE.md.

// ---- operator workload ----

// benchCurvePairs returns a fixed pool of representative operand
// pairs: token-bucket arrivals against multi-segment staircase
// services (the shape the audit path composes). A small pool makes the
// cached benchmark measure the steady-state hit path.
func benchCurvePairs() [][2]netcalc.Curve {
	var pairs [][2]netcalc.Curve
	for i := 0; i < 8; i++ {
		alpha := netcalc.TokenBucket(float64(int(64)<<(i%4)), 0.1+0.05*float64(i))
		beta := netcalc.Convolve(
			netcalc.TDMAService(1.0+0.1*float64(i), 20, 100, 8),
			netcalc.RateLatency(0.5+0.1*float64(i), 120),
		)
		pairs = append(pairs, [2]netcalc.Curve{alpha, beta})
	}
	return pairs
}

func BenchmarkConvolve(b *testing.B) {
	pairs := benchCurvePairs()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pairs[i%len(pairs)]
		netcalc.Convolve(p[0], p[1])
	}
}

func BenchmarkConvolveCached(b *testing.B) {
	pairs := benchCurvePairs()
	cache := netcalc.NewCache(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pairs[i%len(pairs)]
		cache.Convolve(p[0], p[1])
	}
}

// ---- admission churn workload ----

const benchChurnApps = 24

// churnWorld builds the admission scenario: benchChurnApps contracted
// applications with per-app rates that do not depend on the active set
// (a fixed-allocation policy), each served by a staircase-composed
// end-to-end curve. Deadlines are loose so every decision walks the
// full active set.
func churnWorld() (reqs map[string]admission.Requirement,
	apps []admission.AppRef, rates map[string]float64,
	base func(admission.AppRef, float64) netcalc.Curve) {
	reqs = make(map[string]admission.Requirement, benchChurnApps)
	rates = make(map[string]float64, benchChurnApps)
	for i := 0; i < benchChurnApps; i++ {
		name := fmt.Sprintf("app%d", i)
		reqs[name] = admission.Requirement{
			BurstBytes: float64(int(128) << (i % 3)),
			DeadlineNS: 1e9,
		}
		rates[name] = 0.05 + 0.01*float64(i%8)
		apps = append(apps, admission.AppRef{
			Name: name, Node: noc.Coord{X: i % 4, Y: (i / 4) % 4},
		})
	}
	base = func(app admission.AppRef, rate float64) netcalc.Curve {
		return netcalc.Convolve(
			netcalc.TDMAService(rate*8, 20, 100, 8),
			netcalc.RateLatency(rate, 100+50*float64(app.Node.X)),
		)
	}
	return reqs, apps, rates, base
}

// uncachedCheck is the pre-fast-path DelayBoundCheck: every decision
// recomputes every active application's bound from scratch.
func uncachedCheck(reqs map[string]admission.Requirement,
	base func(admission.AppRef, float64) netcalc.Curve) admission.CheckFunc {
	return func(active []admission.AppRef, rates map[string]float64, candidate admission.AppRef) error {
		for _, app := range active {
			req, has := reqs[app.Name]
			if !has {
				continue
			}
			rate := rates[app.Name]
			if rate <= 0 {
				return fmt.Errorf("admission: %s would receive no bandwidth", app.Name)
			}
			alpha := netcalc.TokenBucket(req.BurstBytes, rate)
			d := netcalc.DelayBound(alpha, base(app, rate))
			if math.IsInf(d, 1) || d > req.DeadlineNS {
				return fmt.Errorf("admission: %s exceeds deadline", app.Name)
			}
		}
		return nil
	}
}

// churnDecisions drives b.N admission decisions: each one toggles the
// membership of a rotating application (admit on odd visits, release
// on even) and re-validates the post-decision active set — the RM's
// per-activation call pattern under steady app churn.
func churnDecisions(b *testing.B, check admission.CheckFunc,
	apps []admission.AppRef, rates map[string]float64) {
	active := append([]admission.AppRef(nil), apps...)
	out := make([]admission.AppRef, 0, len(apps))
	for i := 0; i < b.N; i++ {
		victim := i % len(apps)
		if i/len(apps)%2 == 0 {
			// Release round: drop the victim.
			out = out[:0]
			for j, a := range active {
				if j != victim%len(active) {
					out = append(out, a)
				}
			}
			active, out = out, active
		} else {
			// Admit round: bring it back.
			active = append(active, apps[victim])
		}
		if err := check(active, rates, apps[victim]); err != nil {
			b.Fatalf("decision %d rejected: %v", i, err)
		}
	}
}

func BenchmarkAdmissionChurn(b *testing.B) {
	reqs, apps, rates, base := churnWorld()
	check := admission.DelayBoundCheck(reqs, base)
	b.ReportAllocs()
	b.ResetTimer()
	churnDecisions(b, check, apps, rates)
}

func BenchmarkAdmissionChurnUncached(b *testing.B) {
	reqs, apps, rates, base := churnWorld()
	check := uncachedCheck(reqs, base)
	b.ReportAllocs()
	b.ResetTimer()
	churnDecisions(b, check, apps, rates)
}

// ---- machine-readable emission for the CI smoke job ----

var benchOut = flag.String("benchout", "", "write netcalc benchmark results as JSON to this file")

// TestEmitNetcalcBench measures the fast path against the uncached
// baselines and writes BENCH_netcalc.json when -benchout is given:
//
//	go test ./internal/netcalc/ -run TestEmitNetcalcBench -benchout BENCH_netcalc.json
//
// It asserts the headline acceptance criterion (>=3x admission-churn
// decisions/sec, gated at 2x so shared-runner noise cannot flake CI)
// plus a cached-convolve floor, so CI fails on an analytic-plane perf
// regression even without inspecting numbers.
func TestEmitNetcalcBench(t *testing.T) {
	if testing.Short() && *benchOut == "" {
		t.Skip("short mode without -benchout")
	}
	churnNew := testing.Benchmark(BenchmarkAdmissionChurn)
	churnOld := testing.Benchmark(BenchmarkAdmissionChurnUncached)
	convNew := testing.Benchmark(BenchmarkConvolveCached)
	convOld := testing.Benchmark(BenchmarkConvolve)

	decPerSecNew := 1e9 / float64(churnNew.NsPerOp())
	decPerSecOld := 1e9 / float64(churnOld.NsPerOp())
	churnSpeedup := decPerSecNew / decPerSecOld
	convPerSecNew := 1e9 / float64(convNew.NsPerOp())
	convPerSecOld := 1e9 / float64(convOld.NsPerOp())
	convSpeedup := convPerSecNew / convPerSecOld

	t.Logf("churn cached:    %d ns/decision, %.0f decisions/sec, %d allocs/decision",
		churnNew.NsPerOp(), decPerSecNew, churnNew.AllocsPerOp())
	t.Logf("churn uncached:  %d ns/decision, %.0f decisions/sec, %d allocs/decision",
		churnOld.NsPerOp(), decPerSecOld, churnOld.AllocsPerOp())
	t.Logf("churn speedup: %.2fx", churnSpeedup)
	t.Logf("convolve cached:   %d ns/op, %.0f ops/sec, %d allocs/op",
		convNew.NsPerOp(), convPerSecNew, convNew.AllocsPerOp())
	t.Logf("convolve uncached: %d ns/op, %.0f ops/sec, %d allocs/op",
		convOld.NsPerOp(), convPerSecOld, convOld.AllocsPerOp())
	t.Logf("convolve speedup: %.2fx", convSpeedup)

	// Target is >=3x (see BENCH_netcalc.json); the automated gates keep
	// a margin below the committed numbers so shared-runner scheduling
	// noise does not flake CI, while still catching real regressions.
	if churnSpeedup < 2.0 {
		t.Errorf("admission churn speedup %.2fx, want >= 3x over the uncached baseline (gate: 2x)", churnSpeedup)
	}
	if convSpeedup < 2.0 {
		t.Errorf("cached convolve speedup %.2fx, want >= 2x over uncached (gate: 2x)", convSpeedup)
	}

	if *benchOut == "" {
		return
	}
	out := map[string]interface{}{
		"benchmark":  "netcalc_fast_path",
		"churn_apps": benchChurnApps,
		"admission_churn": map[string]interface{}{
			"cached": map[string]float64{
				"ns_per_decision":     float64(churnNew.NsPerOp()),
				"decisions_per_sec":   decPerSecNew,
				"allocs_per_decision": float64(churnNew.AllocsPerOp()),
			},
			"uncached": map[string]float64{
				"ns_per_decision":     float64(churnOld.NsPerOp()),
				"decisions_per_sec":   decPerSecOld,
				"allocs_per_decision": float64(churnOld.AllocsPerOp()),
			},
			"speedup": churnSpeedup,
		},
		"convolve": map[string]interface{}{
			"cached": map[string]float64{
				"ns_per_op":     float64(convNew.NsPerOp()),
				"ops_per_sec":   convPerSecNew,
				"allocs_per_op": float64(convNew.AllocsPerOp()),
			},
			"uncached": map[string]float64{
				"ns_per_op":     float64(convOld.NsPerOp()),
				"ops_per_sec":   convPerSecOld,
				"allocs_per_op": float64(convOld.AllocsPerOp()),
			},
			"speedup": convSpeedup,
		},
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*benchOut, data, 0o644); err != nil {
		t.Fatal(err)
	}
}
