package netcalc

import (
	"math/rand"
	"testing"
)

// randomCurve draws a canonical piecewise-linear curve. Coordinates are
// drawn on a coarse grid so independently generated curves collide with
// useful probability and re-generated equal curves are bit-equal.
func randomCurve(rnd *rand.Rand) Curve {
	n := 1 + rnd.Intn(6)
	pts := make([]Point, 0, n)
	x, y := 0.0, float64(rnd.Intn(4))
	for i := 0; i < n; i++ {
		pts = append(pts, Point{x, y})
		x += 0.25 * float64(1+rnd.Intn(16))
		y += 0.25 * float64(rnd.Intn(16))
	}
	finalSlope := 0.25 * float64(rnd.Intn(8))
	c, err := NewCurve(pts, finalSlope)
	if err != nil {
		panic(err)
	}
	return c
}

// TestIdenticalProperties pins the identity relation the interner and
// cache keys rest on: reflexive, symmetric, bit-strict (an ulp of
// difference separates curves that Equal would merge), and implied by
// construction from equal inputs.
func TestIdenticalProperties(t *testing.T) {
	rnd := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		a, b := randomCurve(rnd), randomCurve(rnd)
		if !a.identical(a) || !b.identical(b) {
			t.Fatal("identical not reflexive")
		}
		if a.identical(b) != b.identical(a) {
			t.Fatal("identical not symmetric")
		}
		if a.identical(b) && a.fingerprint() != b.fingerprint() {
			t.Fatal("identical curves with different fingerprints")
		}
		// Rebuilding from the same points must yield an identical curve.
		c := MustCurve(a.Points(), a.FinalSlope())
		if !a.identical(c) {
			t.Fatalf("rebuild not identical: %v vs %v", a, c)
		}
	}
	// One-ulp perturbation must break identity even though Equal holds.
	base := RateLatency(0.5, 100)
	pts := base.Points()
	pts[len(pts)-1].Y += pts[len(pts)-1].Y * 1e-16
	bumped := MustCurve(pts, base.FinalSlope())
	if base.identical(bumped) && base.Points()[len(pts)-1] != bumped.Points()[len(pts)-1] {
		t.Fatal("identical ignored a bit-level difference")
	}
	if !base.Equal(bumped) {
		t.Fatal("epsilon Equal should still hold for an ulp perturbation")
	}
}

// TestInternPointerEquality checks the core interning guarantee: equal
// structures intern to the same entry (pointer-comparable identity),
// distinct structures to distinct ids.
func TestInternPointerEquality(t *testing.T) {
	in := newInterner()
	rnd := rand.New(rand.NewSource(11))
	byID := make(map[uint64]Curve)
	for i := 0; i < 2000; i++ {
		c := randomCurve(rnd)
		e := in.intern(c)
		e2 := in.intern(MustCurve(c.Points(), c.FinalSlope()))
		if e != e2 {
			t.Fatalf("equal curves interned to distinct entries: %v", c)
		}
		if prev, seen := byID[e.id]; seen && !prev.identical(c) {
			t.Fatalf("id %d reused for a different structure", e.id)
		}
		byID[e.id] = c
	}
	total, live := in.interned()
	if total == 0 || live == 0 || int(total) != live {
		t.Fatalf("interned() = (%d, %d); want equal non-zero counts before any flush", total, live)
	}
}

// TestInternCollisions forces every intern through the collision path
// with a constant hash: correctness must not depend on fingerprint
// quality, only speed does.
func TestInternCollisions(t *testing.T) {
	in := newInternerWithHash(func(Curve) uint64 { return 42 })
	rnd := rand.New(rand.NewSource(13))
	seen := make(map[uint64]Curve)
	for i := 0; i < 300; i++ {
		c := randomCurve(rnd)
		e := in.intern(c)
		if prev, ok := seen[e.id]; ok {
			if !prev.identical(c) {
				t.Fatalf("collision bucket returned wrong curve: %v vs %v", prev, c)
			}
		} else {
			seen[e.id] = c
		}
		if again := in.intern(c); again != e {
			t.Fatal("re-intern under constant hash lost identity")
		}
	}
}

// TestInternFlush checks the churn guard: crossing the live threshold
// flushes the table but keeps ids monotone, so an entry interned after
// the flush never aliases a pre-flush id.
func TestInternFlush(t *testing.T) {
	in := newInterner()
	in.maxLive = 8
	var maxID uint64
	for i := 0; i < 50; i++ {
		c := TokenBucket(float64(i+1), 1)
		e := in.intern(c)
		if e.id <= maxID {
			t.Fatalf("id regressed across flush: %d after %d", e.id, maxID)
		}
		maxID = e.id
	}
	total, live := in.interned()
	if total != 50 {
		t.Fatalf("cumulative count = %d, want 50", total)
	}
	if live > in.maxLive {
		t.Fatalf("live = %d exceeds threshold %d", live, in.maxLive)
	}
}
