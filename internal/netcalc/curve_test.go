package netcalc

import (
	"math"
	"strings"
	"testing"
)

func TestNewCurveValidation(t *testing.T) {
	cases := []struct {
		name  string
		pts   []Point
		slope float64
		ok    bool
	}{
		{"empty", nil, 0, false},
		{"not at zero", []Point{{1, 0}}, 0, false},
		{"negative slope", []Point{{0, 0}}, -1, false},
		{"decreasing Y", []Point{{0, 5}, {1, 3}}, 0, false},
		{"duplicate X", []Point{{0, 0}, {0, 1}}, 0, false},
		{"negative coord", []Point{{0, -1}}, 0, false},
		{"valid token bucket", []Point{{0, 8}}, 0.5, true},
		{"valid rate latency", []Point{{0, 0}, {10, 0}}, 2, true},
	}
	for _, c := range cases {
		_, err := NewCurve(c.pts, c.slope)
		if (err == nil) != c.ok {
			t.Errorf("%s: err=%v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestMustCurvePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustCurve on invalid input did not panic")
		}
	}()
	MustCurve(nil, 0)
}

func TestEvalTokenBucket(t *testing.T) {
	tb := TokenBucket(8, 0.5)
	for _, c := range []struct{ t, want float64 }{
		{0, 8}, {1, 8.5}, {10, 13}, {100, 58},
	} {
		if got := tb.Eval(c.t); !almostEqual(got, c.want) {
			t.Errorf("tb(%v) = %v, want %v", c.t, got, c.want)
		}
	}
}

func TestEvalRateLatency(t *testing.T) {
	rl := RateLatency(2, 10)
	for _, c := range []struct{ t, want float64 }{
		{0, 0}, {5, 0}, {10, 0}, {11, 2}, {20, 20},
	} {
		if got := rl.Eval(c.t); !almostEqual(got, c.want) {
			t.Errorf("rl(%v) = %v, want %v", c.t, got, c.want)
		}
	}
	// Zero latency collapses to a pure rate.
	rl0 := RateLatency(3, 0)
	if got := rl0.Eval(7); !almostEqual(got, 21) {
		t.Errorf("rl0(7) = %v, want 21", got)
	}
}

func TestEvalNegativeTime(t *testing.T) {
	tb := TokenBucket(5, 1)
	if got := tb.Eval(-3); got != 5 {
		t.Errorf("Eval(-3) = %v, want f(0)=5", got)
	}
}

func TestSlopeAt(t *testing.T) {
	rl := RateLatency(2, 10)
	if s := rl.SlopeAt(5); s != 0 {
		t.Errorf("slope before latency = %v, want 0", s)
	}
	if s := rl.SlopeAt(15); s != 2 {
		t.Errorf("slope after latency = %v, want 2", s)
	}
	// Right-continuity at a breakpoint.
	if s := rl.SlopeAt(10); s != 2 {
		t.Errorf("slope at breakpoint = %v, want right slope 2", s)
	}
}

func TestInverse(t *testing.T) {
	rl := RateLatency(2, 10)
	if got := rl.Inverse(0); got != 0 {
		t.Errorf("Inverse(0) = %v, want 0", got)
	}
	if got := rl.Inverse(4); !almostEqual(got, 12) {
		t.Errorf("Inverse(4) = %v, want 12", got)
	}
	flat := Constant(5)
	if got := flat.Inverse(6); !math.IsInf(got, 1) {
		t.Errorf("Inverse beyond reach = %v, want +Inf", got)
	}
	if got := flat.Inverse(5); got != 0 {
		t.Errorf("Inverse(5) of constant 5 = %v, want 0", got)
	}
	// Inverse across a flat segment jumps to its end.
	c := MustCurve([]Point{{0, 0}, {1, 3}, {5, 3}}, 1)
	if got := c.Inverse(3.5); !almostEqual(got, 5.5) {
		t.Errorf("Inverse(3.5) = %v, want 5.5", got)
	}
}

func TestSimplifyCollinear(t *testing.T) {
	c := MustCurve([]Point{{0, 0}, {1, 2}, {2, 4}, {3, 6}}, 2)
	if n := len(c.Points()); n != 1 {
		t.Errorf("collinear curve kept %d points, want 1", n)
	}
	if got := c.Eval(3); !almostEqual(got, 6) {
		t.Errorf("simplified curve Eval(3) = %v", got)
	}
}

func TestFromSamples(t *testing.T) {
	c, err := FromSamples([]Point{{5, 10}, {2, 4}, {5, 12}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Eval(0); got != 0 {
		t.Errorf("Eval(0) = %v, want prepended 0", got)
	}
	if got := c.Eval(5); !almostEqual(got, 12) {
		t.Errorf("Eval(5) = %v, want max of duplicate samples 12", got)
	}
	if got := c.Eval(7); !almostEqual(got, 14) {
		t.Errorf("Eval(7) = %v, want 14", got)
	}
}

func TestEqualAndString(t *testing.T) {
	a := TokenBucket(8, 0.5)
	b := TokenBucket(8, 0.5)
	c := TokenBucket(8, 0.6)
	if !a.Equal(b) {
		t.Error("identical curves not Equal")
	}
	if a.Equal(c) {
		t.Error("different curves Equal")
	}
	if s := a.String(); !strings.Contains(s, "(0,8)") {
		t.Errorf("String = %q", s)
	}
}

func TestZeroValueCurve(t *testing.T) {
	var c Curve
	if !c.IsZero() {
		t.Error("zero value not IsZero")
	}
	if c.Eval(100) != 0 {
		t.Error("zero value Eval != 0")
	}
	if c.SlopeAt(5) != 0 {
		t.Error("zero value slope != 0")
	}
	if got := c.Inverse(1); !math.IsInf(got, 1) {
		t.Error("zero value Inverse(1) should be +Inf")
	}
	if got := c.Inverse(0); got != 0 {
		t.Error("zero value Inverse(0) should be 0")
	}
}

func TestAffineAndConstant(t *testing.T) {
	a := Affine(3, 2)
	if got := a.Eval(4); !almostEqual(got, 11) {
		t.Errorf("Affine Eval = %v", got)
	}
	c := Constant(7)
	if got := c.Eval(1e9); got != 7 {
		t.Errorf("Constant Eval = %v", got)
	}
}
