// Bit-identity pinning for the ConvolveAll operand reorder. Lives in an
// external test package so it can compose the real DRAM worst-case
// service curve (internal/dram/wcd imports netcalc, so an internal test
// would cycle).
package netcalc_test

import (
	"math"
	"testing"

	"repro/internal/dram/wcd"
	"repro/internal/netcalc"
)

// bitIdentical compares two curves by float bit pattern — stricter than
// Curve.Equal, which admits an epsilon.
func bitIdentical(a, b netcalc.Curve) bool {
	ap, bp := a.Points(), b.Points()
	if len(ap) != len(bp) ||
		math.Float64bits(a.FinalSlope()) != math.Float64bits(b.FinalSlope()) {
		return false
	}
	for i := range ap {
		if math.Float64bits(ap[i].X) != math.Float64bits(bp[i].X) ||
			math.Float64bits(ap[i].Y) != math.Float64bits(bp[i].Y) {
			return false
		}
	}
	return true
}

// leftFold is the pre-reorder ConvolveAll semantics: pairwise min-plus
// convolution in caller order.
func leftFold(curves ...netcalc.Curve) netcalc.Curve {
	out := curves[0]
	for _, c := range curves[1:] {
		out = netcalc.Convolve(out, c)
	}
	return out
}

// tandems returns representative service-curve chains from across the
// repository: the audit path's NoC/DRAM/NoC composition (rate-latency
// around the multi-segment WCD staircase), TDMA staircases, CBS
// reservations, and mixed-size chains that force the cheapest-first
// order to differ from caller order.
func tandems(t *testing.T) map[string][]netcalc.Curve {
	t.Helper()
	dramCurve, err := wcd.ServiceCurve(wcd.DefaultParams(), 16)
	if err != nil {
		t.Fatalf("wcd.ServiceCurve: %v", err)
	}
	return map[string][]netcalc.Curve{
		"audit-noc-dram-noc": {
			netcalc.RateLatency(0.4, 120),
			dramCurve,
			netcalc.RateLatency(0.4, 120),
		},
		"dram-first": {
			dramCurve,
			netcalc.RateLatency(1.6, 30),
			netcalc.TDMAService(1.6, 20, 100, 6),
		},
		"tdma-pair": {
			netcalc.TDMAService(1.0, 25, 100, 8),
			netcalc.RateLatency(0.8, 50),
			netcalc.CBSService(1.2, 30, 90),
		},
		"equal-sizes": {
			netcalc.RateLatency(0.5, 10),
			netcalc.RateLatency(0.7, 20),
			netcalc.RateLatency(0.9, 5),
		},
		"single": {
			dramCurve,
		},
	}
}

// TestConvolveAllMatchesLeftFold proves the reorder satellite's safety
// claim: convolving cheapest-breakpoint-count operands first yields a
// bit-identical curve to the historical left fold on every
// representative tandem (min-plus convolution is associative and
// commutative, and these compositions land on the same floats).
func TestConvolveAllMatchesLeftFold(t *testing.T) {
	for name, chain := range tandems(t) {
		got := netcalc.ConvolveAll(chain...)
		want := leftFold(chain...)
		if !bitIdentical(got, want) {
			t.Errorf("%s: ConvolveAll diverges from left fold\n got %v\nwant %v",
				name, got, want)
		}
	}
}

// TestConvolveAllDeepChainEquivalent documents the boundary of the
// bit-identity guarantee: on a deep chain of mixed staircases the
// reordered fold can land an interior coordinate an ulp away from the
// left fold (float addition is not associative), but the curves remain
// equal as functions under the package epsilon. No repository
// composition is this deep; the chains in tandems stay bit-identical.
func TestConvolveAllDeepChainEquivalent(t *testing.T) {
	chain := []netcalc.Curve{
		netcalc.TDMAService(1.0, 25, 100, 8),
		netcalc.RateLatency(0.8, 50),
		netcalc.TDMAService(2.0, 10, 80, 4),
		netcalc.CBSService(1.2, 30, 90),
	}
	got := netcalc.ConvolveAll(chain...)
	want := leftFold(chain...)
	if !got.Equal(want) {
		t.Fatalf("deep chain diverges beyond epsilon\n got %v\nwant %v", got, want)
	}
}

// TestDelayBoundThroughMatchesFold pins the same property one level up:
// the tandem delay bound through the reordered composition must equal
// the bound through the left fold bit-for-bit.
func TestDelayBoundThroughMatchesFold(t *testing.T) {
	for name, chain := range tandems(t) {
		alpha := netcalc.TokenBucket(256, 0.2)
		got := netcalc.DelayBoundThrough(alpha, chain...)
		want := netcalc.DelayBound(alpha, leftFold(chain...))
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Errorf("%s: DelayBoundThrough = %v, left fold bound = %v", name, got, want)
		}
	}
}

// TestConvolveAllCachedMatchesUncached runs the same chains through a
// shared cache twice; hits must return the bit-identical curve the cold
// path produced.
func TestConvolveAllCachedMatchesUncached(t *testing.T) {
	cache := netcalc.NewCache(0)
	for name, chain := range tandems(t) {
		cold := cache.ConvolveAll(chain...)
		warm := cache.ConvolveAll(chain...)
		plain := netcalc.ConvolveAll(chain...)
		if !bitIdentical(cold, warm) || !bitIdentical(cold, plain) {
			t.Errorf("%s: cached ConvolveAll not bit-identical to uncached", name)
		}
	}
	if st := cache.Stats(); st.Hits == 0 {
		t.Error("second pass produced no cache hits")
	}
}
