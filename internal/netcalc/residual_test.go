package netcalc

import (
	"math"
	"testing"
	"testing/quick"
)

// bruteResidual computes the non-decreasing closure of
// max(0, beta - alpha) numerically.
func bruteResidual(beta, alpha Curve, t float64, steps int) float64 {
	best := 0.0
	for i := 0; i <= steps; i++ {
		s := t * float64(i) / float64(steps)
		if v := beta.Eval(s) - alpha.Eval(s); v > best {
			best = v
		}
	}
	return best
}

func TestQuickResidualMatchesBrute(t *testing.T) {
	f := func(rate8, lat8, b8, r8 uint8) bool {
		beta := RateLatency(float64(rate8%8)+1, float64(lat8%20))
		alpha := TokenBucket(float64(b8%30), float64(r8%6))
		res := Residual(beta, alpha)
		for _, tt := range []float64{0, 1, 5, 17.3, 40, 100} {
			want := bruteResidual(beta, alpha, tt, 4000)
			got := res.Eval(tt)
			// Exact vs grid: the grid under-approximates the sup by
			// at most maxslope*step.
			slack := 9 * tt / 4000
			if got < want-1e-9 || got-want > slack+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestResidualChainComposition(t *testing.T) {
	// Two servers in tandem, each with cross traffic: the end-to-end
	// residual (conv of per-node residuals) yields a finite delay
	// bound for the tagged flow — the Section IV composition story.
	beta1 := RateLatency(8, 10)
	beta2 := RateLatency(6, 5)
	cross1 := TokenBucket(16, 2)
	cross2 := TokenBucket(8, 1)
	res1 := Residual(beta1, cross1)
	res2 := Residual(beta2, cross2)
	e2e := Convolve(res1, res2)
	tagged := TokenBucket(4, 0.5)
	d := DelayBound(tagged, e2e)
	if math.IsInf(d, 1) || d <= 0 {
		t.Fatalf("tandem residual delay bound = %v", d)
	}
	// Sanity: at least the sum of latencies.
	if d < 15 {
		t.Errorf("bound %v below pure latency 15", d)
	}
	// And monotone in cross-traffic: heavier interference, larger
	// bound.
	heavier := Convolve(Residual(beta1, TokenBucket(32, 4)), res2)
	d2 := DelayBound(tagged, heavier)
	if d2 < d {
		t.Errorf("heavier cross traffic reduced the bound: %v < %v", d2, d)
	}
}

func TestTDMACurveNeverExceedsLinearShare(t *testing.T) {
	// The TDMA curve must never promise more than slot/cycle of the
	// link over long windows (it is a lower service bound).
	c := TDMAService(8, 2, 10, 6)
	for x := 0.0; x <= 200; x += 2.5 {
		if got, lim := c.Eval(x), 8*0.2*x+1e-9; got > lim+16 {
			// +16 = one slot's worth of quantization headroom.
			t.Fatalf("TDMA curve %v at %v exceeds linear share %v", got, x, lim)
		}
	}
}
