// Package trace provides deterministic, seeded workload generators for
// the platform experiments: memory access patterns (sequential,
// strided, random) and automotive-flavoured presets matching the
// application classes the paper's introduction motivates — vision
// pipelines, control loops, and best-effort "app-like" software.
package trace

import (
	"fmt"

	"repro/internal/sim"
)

// Pattern generates a deterministic address stream.
type Pattern interface {
	// Next returns the next address to access.
	Next() uint64
	// Reset restarts the stream from the beginning.
	Reset()
}

// Sequential walks an address range in line-sized steps, wrapping at
// the end — a streaming/DMA-style access pattern with high row-buffer
// and cache locality.
type Sequential struct {
	Base   uint64
	Size   uint64
	Stride uint64
	off    uint64
}

// NewSequential builds a sequential pattern over [base, base+size).
func NewSequential(base, size, stride uint64) (*Sequential, error) {
	if size == 0 || stride == 0 || stride > size {
		return nil, fmt.Errorf("trace: sequential needs 0 < stride <= size")
	}
	return &Sequential{Base: base, Size: size, Stride: stride}, nil
}

// Next implements Pattern.
func (s *Sequential) Next() uint64 {
	a := s.Base + s.off
	s.off += s.Stride
	if s.off >= s.Size {
		s.off = 0
	}
	return a
}

// Reset implements Pattern.
func (s *Sequential) Reset() { s.off = 0 }

// Strided jumps by a large stride each access — the cache-hostile,
// row-hostile pattern that maximizes conflict misses.
type Strided struct {
	Base   uint64
	Size   uint64
	Stride uint64
	off    uint64
}

// NewStrided builds a strided pattern (stride typically >= page size).
func NewStrided(base, size, stride uint64) (*Strided, error) {
	if size == 0 || stride == 0 {
		return nil, fmt.Errorf("trace: strided needs positive size and stride")
	}
	return &Strided{Base: base, Size: size, Stride: stride}, nil
}

// Next implements Pattern.
func (s *Strided) Next() uint64 {
	a := s.Base + s.off
	s.off = (s.off + s.Stride) % s.Size
	return a
}

// Reset implements Pattern.
func (s *Strided) Reset() { s.off = 0 }

// Random draws uniformly from an aligned range, seeded.
type Random struct {
	Base  uint64
	Size  uint64
	Align uint64
	seed  uint64
	rnd   *sim.Rand
}

// NewRandom builds a random pattern over [base, base+size), aligned.
func NewRandom(base, size, align uint64, seed uint64) (*Random, error) {
	if size == 0 || align == 0 || align > size {
		return nil, fmt.Errorf("trace: random needs 0 < align <= size")
	}
	return &Random{Base: base, Size: size, Align: align, seed: seed, rnd: sim.NewRand(seed)}, nil
}

// Next implements Pattern.
func (r *Random) Next() uint64 {
	slots := r.Size / r.Align
	return r.Base + (r.rnd.Uint64()%slots)*r.Align
}

// Reset implements Pattern.
func (r *Random) Reset() { r.rnd = sim.NewRand(r.seed) }

// WorkloadClass names the automotive application classes from the
// paper's introduction.
type WorkloadClass int

// Workload classes.
const (
	// ControlLoop is a small, periodic, latency-critical workload
	// (e.g. an ASIL-D vehicle-motion controller).
	ControlLoop WorkloadClass = iota
	// VisionPipeline streams large frames (automated-driving
	// perception): high bandwidth, sequential.
	VisionPipeline
	// Infotainment is bursty, cache-hungry best-effort software.
	Infotainment
)

// String implements fmt.Stringer.
func (w WorkloadClass) String() string {
	switch w {
	case ControlLoop:
		return "control-loop"
	case VisionPipeline:
		return "vision-pipeline"
	case Infotainment:
		return "infotainment"
	}
	return fmt.Sprintf("class(%d)", int(w))
}

// Profile bundles a pattern with its request shape and cadence.
type Profile struct {
	Class WorkloadClass
	Pattern
	// ReqBytes per access; Think is the compute gap between an
	// access's completion and the next issue; WriteEvery makes each
	// k-th access a write (0 = reads only).
	ReqBytes   int
	Think      sim.Duration
	WriteEvery int
}

// NewProfile builds the canonical profile for a class, seeded for the
// random components. Base separates address spaces per application.
func NewProfile(class WorkloadClass, base uint64, seed uint64) (*Profile, error) {
	switch class {
	case ControlLoop:
		// 32 KiB working set, line-sized accesses, 1us control step.
		p, err := NewSequential(base, 32<<10, 64)
		if err != nil {
			return nil, err
		}
		return &Profile{Class: class, Pattern: p, ReqBytes: 64, Think: sim.Microsecond, WriteEvery: 4}, nil
	case VisionPipeline:
		// 4 MiB frames streamed in 256B beats, back to back.
		p, err := NewSequential(base, 4<<20, 256)
		if err != nil {
			return nil, err
		}
		return &Profile{Class: class, Pattern: p, ReqBytes: 256, Think: sim.NS(50)}, nil
	case Infotainment:
		// 8 MiB random working set, cache hostile, modest think time.
		p, err := NewRandom(base, 8<<20, 64, seed)
		if err != nil {
			return nil, err
		}
		return &Profile{Class: class, Pattern: p, ReqBytes: 64, Think: sim.NS(200), WriteEvery: 3}, nil
	}
	return nil, fmt.Errorf("trace: unknown workload class %d", class)
}
