package trace

import (
	"testing"
	"testing/quick"
)

func TestSequentialWrapsAndResets(t *testing.T) {
	s, err := NewSequential(1000, 256, 64)
	if err != nil {
		t.Fatal(err)
	}
	want := []uint64{1000, 1064, 1128, 1192, 1000}
	for i, w := range want {
		if got := s.Next(); got != w {
			t.Errorf("step %d: %d, want %d", i, got, w)
		}
	}
	s.Reset()
	if got := s.Next(); got != 1000 {
		t.Errorf("after Reset: %d", got)
	}
	if _, err := NewSequential(0, 0, 64); err == nil {
		t.Error("zero size accepted")
	}
	if _, err := NewSequential(0, 64, 128); err == nil {
		t.Error("stride > size accepted")
	}
}

func TestStrided(t *testing.T) {
	s, err := NewStrided(0, 1<<20, 4096)
	if err != nil {
		t.Fatal(err)
	}
	a, b := s.Next(), s.Next()
	if b-a != 4096 {
		t.Errorf("stride = %d", b-a)
	}
	if _, err := NewStrided(0, 0, 64); err == nil {
		t.Error("zero size accepted")
	}
}

func TestRandomDeterministicAligned(t *testing.T) {
	r1, err := NewRandom(0, 1<<20, 64, 42)
	if err != nil {
		t.Fatal(err)
	}
	r2, _ := NewRandom(0, 1<<20, 64, 42)
	for i := 0; i < 1000; i++ {
		a, b := r1.Next(), r2.Next()
		if a != b {
			t.Fatal("same seed diverged")
		}
		if a%64 != 0 || a >= 1<<20 {
			t.Fatalf("unaligned or out-of-range address %d", a)
		}
	}
	r1.Reset()
	r3, _ := NewRandom(0, 1<<20, 64, 42)
	if r1.Next() != r3.Next() {
		t.Error("Reset did not restart the stream")
	}
	if _, err := NewRandom(0, 64, 128, 1); err == nil {
		t.Error("align > size accepted")
	}
}

func TestProfiles(t *testing.T) {
	for _, class := range []WorkloadClass{ControlLoop, VisionPipeline, Infotainment} {
		p, err := NewProfile(class, 1<<30, 7)
		if err != nil {
			t.Fatalf("%v: %v", class, err)
		}
		if p.ReqBytes <= 0 || p.Pattern == nil {
			t.Errorf("%v: malformed profile %+v", class, p)
		}
		if a := p.Next(); a < 1<<30 {
			t.Errorf("%v: address %d below base", class, a)
		}
		if class.String() == "" {
			t.Errorf("empty class name")
		}
	}
	if _, err := NewProfile(WorkloadClass(99), 0, 0); err == nil {
		t.Error("unknown class accepted")
	}
}

func TestQuickPatternsStayInRange(t *testing.T) {
	f := func(seed uint64, kind uint8, steps uint8) bool {
		base, size := uint64(1<<20), uint64(1<<16)
		var p Pattern
		var err error
		switch kind % 3 {
		case 0:
			p, err = NewSequential(base, size, 64)
		case 1:
			p, err = NewStrided(base, size, 4096)
		default:
			p, err = NewRandom(base, size, 64, seed)
		}
		if err != nil {
			return false
		}
		for i := 0; i < int(steps)+10; i++ {
			a := p.Next()
			if a < base || a >= base+size {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
