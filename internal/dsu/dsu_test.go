package dsu

import (
	"testing"
	"testing/quick"
)

func TestPaperExampleEncoding(t *testing.T) {
	// Section III-A worked example: hypervisor scheme ID 7 gets group
	// 3, the RTOS VM's scheme IDs 3 and 2 get groups 2 and 1, the GPOS
	// VM's scheme ID 0 gets group 0. Register value: 0x80004201.
	reg, err := Encode(map[SchemeID][]Group{
		7: {3},
		3: {2},
		2: {1},
		0: {0},
	})
	if err != nil {
		t.Fatal(err)
	}
	if reg != 0x80004201 {
		t.Errorf("register = %#08x, want 0x80004201", uint32(reg))
	}
}

func TestRegisterBitLayout(t *testing.T) {
	// One 4-bit field per scheme ID, one-hot in the group index.
	if Bit(7, 3) != 31 {
		t.Errorf("Bit(7,3) = %d, want 31", Bit(7, 3))
	}
	if Bit(0, 0) != 0 {
		t.Errorf("Bit(0,0) = %d, want 0", Bit(0, 0))
	}
	if Bit(2, 1) != 9 {
		t.Errorf("Bit(2,1) = %d, want 9", Bit(2, 1))
	}
	if Bit(3, 2) != 14 {
		t.Errorf("Bit(3,2) = %d, want 14", Bit(3, 2))
	}
}

func TestSetClearIsPrivate(t *testing.T) {
	var r ClusterPartCR
	r = r.Set(5, 2)
	if !r.IsPrivate(5, 2) {
		t.Error("Set/IsPrivate roundtrip failed")
	}
	if r.IsPrivate(5, 1) || r.IsPrivate(4, 2) {
		t.Error("unrelated bits set")
	}
	r = r.Clear(5, 2)
	if r != 0 {
		t.Errorf("Clear left %#x", uint32(r))
	}
}

func TestOwnersAndUnassigned(t *testing.T) {
	reg, _ := Encode(map[SchemeID][]Group{7: {3}, 0: {0}})
	if got := reg.Owners(3); len(got) != 1 || got[0] != 7 {
		t.Errorf("Owners(3) = %v", got)
	}
	un := reg.Unassigned()
	if len(un) != 2 || un[0] != 1 || un[1] != 2 {
		t.Errorf("Unassigned = %v, want [1 2]", un)
	}
	// Sharing expressed via Set directly.
	shared := reg.Set(1, 1).Set(2, 1)
	if got := shared.Owners(1); len(got) != 2 {
		t.Errorf("shared group owners = %v", got)
	}
}

func TestEncodeValidation(t *testing.T) {
	if _, err := Encode(map[SchemeID][]Group{9: {0}}); err == nil {
		t.Error("scheme ID 9 accepted")
	}
	if _, err := Encode(map[SchemeID][]Group{1: {4}}); err == nil {
		t.Error("group 4 accepted")
	}
	if _, err := Encode(map[SchemeID][]Group{1: {2}, 3: {2}}); err == nil {
		t.Error("doubly-claimed group accepted")
	}
}

func TestOverrideDelegation(t *testing.T) {
	// RTOS delegation: mask 0b110, value 0b010 -> guest reaches scheme
	// IDs 2 (0b010) and 3 (0b011) only.
	rtos := Override{Mask: 0b110, Value: 0b010}
	reach := rtos.Reachable()
	if len(reach) != 2 || reach[0] != 2 || reach[1] != 3 {
		t.Errorf("RTOS reachable = %v, want [2 3]", reach)
	}
	// GPOS pinned: mask 0b111, value 0 -> always scheme ID 0.
	gpos := Override{Mask: 0b111, Value: 0}
	for g := SchemeID(0); g < 8; g++ {
		if got := gpos.Apply(g); got != 0 {
			t.Errorf("GPOS Apply(%d) = %d, want 0", g, got)
		}
	}
	// No delegation restrictions: identity.
	open := Override{}
	if got := open.Apply(5); got != 5 {
		t.Errorf("open override Apply(5) = %d", got)
	}
}

func TestQuickOverrideStaysInMask(t *testing.T) {
	// Property: the effective ID agrees with Value on masked bits and
	// with the guest ID on open bits.
	f := func(mask, value, guest uint8) bool {
		o := Override{Mask: mask & 7, Value: value & 7}
		eff := uint8(o.Apply(SchemeID(guest & 7)))
		if eff&o.Mask != o.Value&o.Mask {
			return false
		}
		return eff&^o.Mask == (guest&7)&^o.Mask
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClusterConfigValidation(t *testing.T) {
	bad := []Config{
		{Ways: 8, Sets: 256, LineSize: 64},
		{Ways: 16, Sets: 0, LineSize: 64},
		{Ways: 16, Sets: 100, LineSize: 64},
		{Ways: 12, Sets: 256, LineSize: 3},
	}
	for i, cfg := range bad {
		if cfg.Validate() == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if DefaultConfig().Validate() != nil {
		t.Error("default config rejected")
	}
}

func TestClusterGroupMasks(t *testing.T) {
	cl, err := NewCluster(Config{Ways: 16, Sets: 64, LineSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	if got := cl.groupMask(0); got != 0x000F {
		t.Errorf("group 0 mask = %#x", got)
	}
	if got := cl.groupMask(3); got != 0xF000 {
		t.Errorf("group 3 mask = %#x", got)
	}
	cl12, err := NewCluster(Config{Ways: 12, Sets: 64, LineSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	if got := cl12.groupMask(1); got != 0b111000 {
		t.Errorf("12-way group 1 mask = %#b", got)
	}
}

func TestClusterUnprogrammedIsOpen(t *testing.T) {
	cl, err := NewCluster(Config{Ways: 16, Sets: 64, LineSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	for s := SchemeID(0); s < 8; s++ {
		if got := cl.AllowedWays(s); got != 0xFFFF {
			t.Errorf("scheme %d allowed ways = %#x, want all", s, got)
		}
	}
}

func TestClusterProgramPartitions(t *testing.T) {
	cl, err := NewCluster(Config{Ways: 16, Sets: 64, LineSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	reg, _ := Encode(map[SchemeID][]Group{7: {3}, 0: {0}})
	cl.Program(reg)
	// Scheme 7: its group 3 plus open groups 1-2.
	if got := cl.AllowedWays(7); got != 0xFFF0 {
		t.Errorf("scheme 7 ways = %#x, want 0xFFF0", got)
	}
	// Scheme 0: group 0 plus open groups 1-2.
	if got := cl.AllowedWays(0); got != 0x0FFF {
		t.Errorf("scheme 0 ways = %#x, want 0x0FFF", got)
	}
	// Scheme 1 owns nothing: open groups only.
	if got := cl.AllowedWays(1); got != 0x0FF0 {
		t.Errorf("scheme 1 ways = %#x, want 0x0FF0", got)
	}
}

func TestClusterIsolationEndToEnd(t *testing.T) {
	// Partition the paper's example and verify the GPOS cannot thrash
	// the hypervisor's lines.
	cl, err := NewCluster(Config{Ways: 16, Sets: 16, LineSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	reg, _ := Encode(map[SchemeID][]Group{7: {3}, 3: {2}, 2: {1}, 0: {0}})
	cl.Program(reg)

	// Hypervisor (scheme 7) warms 4 lines in set 0 (its 4 private
	// ways are 12-15; open groups removed by full assignment).
	lineStride := uint64(16 * 64) // next line in the same set
	for i := uint64(0); i < 4; i++ {
		cl.Access(7, i*lineStride, false)
	}
	// GPOS (scheme 0) thrashes heavily.
	for i := uint64(100); i < 200; i++ {
		cl.Access(0, i*lineStride, false)
	}
	// Hypervisor lines must all still hit.
	for i := uint64(0); i < 4; i++ {
		if r := cl.Access(7, i*lineStride, false); !r.Hit {
			t.Fatalf("hypervisor line %d evicted by GPOS thrash", i)
		}
	}
	if got := cl.L3().Stats(0).EvictionsOfOthers; got != 0 {
		t.Errorf("GPOS evicted %d foreign lines despite partitioning", got)
	}
}

func TestClusterRegisterReadback(t *testing.T) {
	cl, _ := NewCluster(DefaultConfig())
	reg := ClusterPartCR(0x80004201)
	cl.Program(reg)
	if cl.Register() != reg {
		t.Errorf("Register readback = %#x", uint32(cl.Register()))
	}
}
