// Package dsu models the Arm DynamIQ Shared Unit's L3 cache
// partitioning mechanism described in Section III-A of the paper:
// 3-bit scheme IDs as the identification mechanism, hypervisor
// mask/override delegation, and the CLUSTERPARTCR register that maps
// the L3's 4 partition groups (of 3 or 4 ways each, for a 12- or
// 16-way cache) to scheme IDs (Fig. 2).
//
// Register layout: CLUSTERPARTCR dedicates one 4-bit field to each of
// the 8 scheme IDs; bit (4*schemeID + group) set means the partition
// group is private to that scheme ID. A group with no bit set in any
// field is unassigned and open to allocation by every scheme. The
// paper's worked example encodes as 0x80004201: group 3 private to
// scheme ID 7 (the hypervisor), group 2 to scheme ID 3 and group 1 to
// scheme ID 2 (the RTOS VM's two IDs), and group 0 to scheme ID 0 (the
// GPOS VM).
package dsu

import (
	"fmt"

	"repro/internal/cache"
)

// NumSchemeIDs is the number of scheme ID groups (3-bit identifiers).
const NumSchemeIDs = 8

// NumGroups is the number of L3 partition groups.
const NumGroups = 4

// SchemeID is a 3-bit traffic-flow identifier set by privileged
// software (OS or hypervisor).
type SchemeID uint8

// Valid reports whether the scheme ID fits in 3 bits.
func (s SchemeID) Valid() bool { return s < NumSchemeIDs }

// Group is an L3 partition group index (0..3).
type Group uint8

// Valid reports whether the group index is in range.
func (g Group) Valid() bool { return g < NumGroups }

// Override implements the hypervisor's scheme-ID delegation: bits
// selected by Mask are replaced with the corresponding Value bits, so a
// guest OS controls only the bits left open. The paper's example
// delegates scheme IDs 2 and 3 to the RTOS with mask 0b110 and value
// 0b010, and pins the GPOS to scheme ID 0 with mask 0b111.
type Override struct {
	Mask  uint8 // bit set = hypervisor-controlled
	Value uint8 // replacement bits where Mask is set
}

// Apply computes the effective scheme ID for a guest-requested ID.
func (o Override) Apply(guest SchemeID) SchemeID {
	return SchemeID((uint8(guest)&^o.Mask)|(o.Value&o.Mask)) & (NumSchemeIDs - 1)
}

// Reachable returns the set of effective scheme IDs a guest can reach
// under the override, in ascending order.
func (o Override) Reachable() []SchemeID {
	seen := make(map[SchemeID]bool)
	var out []SchemeID
	for g := SchemeID(0); g < NumSchemeIDs; g++ {
		eff := o.Apply(g)
		if !seen[eff] {
			seen[eff] = true
			out = append(out, eff)
		}
	}
	return out
}

// ClusterPartCR is the 32-bit L3 Cluster Partition Control Register.
type ClusterPartCR uint32

// Bit returns the register bit index for a (scheme, group) pair.
func Bit(s SchemeID, g Group) uint { return uint(s)*4 + uint(g) }

// Set returns the register with the group marked private to scheme s.
func (r ClusterPartCR) Set(s SchemeID, g Group) ClusterPartCR {
	return r | 1<<Bit(s, g)
}

// Clear returns the register with the (scheme, group) bit cleared.
func (r ClusterPartCR) Clear(s SchemeID, g Group) ClusterPartCR {
	return r &^ (1 << Bit(s, g))
}

// IsPrivate reports whether group g is private to scheme s.
func (r ClusterPartCR) IsPrivate(s SchemeID, g Group) bool {
	return r&(1<<Bit(s, g)) != 0
}

// Owners returns the scheme IDs that have claimed group g.
func (r ClusterPartCR) Owners(g Group) []SchemeID {
	var out []SchemeID
	for s := SchemeID(0); s < NumSchemeIDs; s++ {
		if r.IsPrivate(s, g) {
			out = append(out, s)
		}
	}
	return out
}

// Unassigned returns the groups no scheme has claimed; these are open
// for allocation by any scheme ID.
func (r ClusterPartCR) Unassigned() []Group {
	var out []Group
	for g := Group(0); g < NumGroups; g++ {
		if len(r.Owners(g)) == 0 {
			out = append(out, g)
		}
	}
	return out
}

// Encode builds a register from a scheme->groups assignment. It
// rejects invalid IDs and groups claimed by more than one scheme
// (which the hardware permits but which defeats isolation; use Set
// directly to express sharing deliberately).
func Encode(assign map[SchemeID][]Group) (ClusterPartCR, error) {
	var r ClusterPartCR
	owner := make(map[Group]SchemeID)
	for s, groups := range assign {
		if !s.Valid() {
			return 0, fmt.Errorf("dsu: scheme ID %d out of range", s)
		}
		for _, g := range groups {
			if !g.Valid() {
				return 0, fmt.Errorf("dsu: partition group %d out of range", g)
			}
			if prev, taken := owner[g]; taken && prev != s {
				return 0, fmt.Errorf("dsu: group %d claimed by scheme IDs %d and %d", g, prev, s)
			}
			owner[g] = s
			r = r.Set(s, g)
		}
	}
	return r, nil
}

// Config describes a DynamIQ cluster's shared L3 and optional private
// L2.
type Config struct {
	// Ways must be 12 or 16: the L3 is split into 4 groups of Ways/4.
	Ways     int
	Sets     int
	LineSize int

	// L2Sets/L2Ways describe a cluster-private L2 in front of the L3
	// (shared LineSize). Zero means no L2 — the legacy single-level
	// cluster, whose L3 access stream is unchanged. The L2 is unmanaged
	// (open allocation): way partitioning is an L3/DSU mechanism.
	L2Sets int
	L2Ways int
}

// DefaultConfig returns a 16-way 2 MiB L3 (2048 sets x 16 ways x 64 B).
func DefaultConfig() Config {
	return Config{Ways: 16, Sets: 2048, LineSize: 64}
}

// Validate checks the cluster geometry.
func (c Config) Validate() error {
	if c.Ways != 12 && c.Ways != 16 {
		return fmt.Errorf("dsu: L3 must be 12- or 16-way set-associative, got %d", c.Ways)
	}
	if c.Sets <= 0 || c.Sets&(c.Sets-1) != 0 {
		return fmt.Errorf("dsu: Sets must be a positive power of two, got %d", c.Sets)
	}
	if c.LineSize <= 0 || c.LineSize&(c.LineSize-1) != 0 {
		return fmt.Errorf("dsu: LineSize must be a positive power of two, got %d", c.LineSize)
	}
	if (c.L2Sets == 0) != (c.L2Ways == 0) {
		return fmt.Errorf("dsu: L2Sets and L2Ways must both be zero or both be set, got %d/%d", c.L2Sets, c.L2Ways)
	}
	if c.L2Sets != 0 {
		if c.L2Sets < 0 || c.L2Sets&(c.L2Sets-1) != 0 {
			return fmt.Errorf("dsu: L2Sets must be a positive power of two, got %d", c.L2Sets)
		}
		if c.L2Ways <= 0 || c.L2Ways > 64 {
			return fmt.Errorf("dsu: L2Ways must be in 1..64, got %d", c.L2Ways)
		}
	}
	return nil
}

// Cluster is a DynamIQ cluster's shared L3 with hardware way
// partitioning driven by a ClusterPartCR value, plus an optional
// cluster-private L2 in front of it.
type Cluster struct {
	cfg    Config
	reg    ClusterPartCR
	l3     *cache.Cache
	hier   *cache.Hierarchy
	policy *cache.WayPartition
}

// NewCluster builds the cluster and its cache hierarchy.
func NewCluster(cfg Config) (*Cluster, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cl := &Cluster{cfg: cfg, policy: cache.NewWayPartition(nil)}
	l3, err := cache.New(cache.Config{
		Sets: cfg.Sets, Ways: cfg.Ways, LineSize: cfg.LineSize, Policy: cl.policy,
	})
	if err != nil {
		return nil, err
	}
	cl.l3 = l3
	var l2 *cache.Cache
	if cfg.L2Sets != 0 {
		l2, err = cache.New(cache.Config{
			Sets: cfg.L2Sets, Ways: cfg.L2Ways, LineSize: cfg.LineSize,
		})
		if err != nil {
			return nil, err
		}
	}
	cl.hier = cache.NewHierarchy(l2, l3)
	cl.Program(0)
	return cl, nil
}

// L3 exposes the underlying shared cache model.
func (c *Cluster) L3() *cache.Cache { return c.l3 }

// L2 exposes the private level, nil when the cluster has none.
func (c *Cluster) L2() *cache.Cache { return c.hier.L2() }

// Register returns the current CLUSTERPARTCR value.
func (c *Cluster) Register() ClusterPartCR { return c.reg }

// groupMask returns the way bitmask covered by a partition group.
func (c *Cluster) groupMask(g Group) uint64 {
	waysPerGroup := c.cfg.Ways / NumGroups
	base := uint(g) * uint(waysPerGroup)
	var m uint64
	for w := 0; w < waysPerGroup; w++ {
		m |= 1 << (base + uint(w))
	}
	return m
}

// Program writes the partition control register and recomputes each
// scheme ID's allowed ways: its private groups plus every unassigned
// group.
func (c *Cluster) Program(reg ClusterPartCR) {
	c.reg = reg
	var openMask uint64
	for _, g := range reg.Unassigned() {
		openMask |= c.groupMask(g)
	}
	masks := make(map[cache.Owner]uint64, NumSchemeIDs)
	for s := SchemeID(0); s < NumSchemeIDs; s++ {
		m := openMask
		for g := Group(0); g < NumGroups; g++ {
			if reg.IsPrivate(s, g) {
				m |= c.groupMask(g)
			}
		}
		masks[cache.Owner(s)] = m
	}
	c.policy.Masks = masks
	c.policy.Default = openMask
}

// Access performs one L3 access attributed to the given scheme ID,
// bypassing any L2 (the legacy single-level path).
func (c *Cluster) Access(s SchemeID, addr uint64, write bool) cache.Result {
	return c.l3.Access(cache.Owner(s), addr, write)
}

// AccessHier performs one access through the cluster's cache
// hierarchy. Without an L2 this is exactly Access (the L3 sees an
// identical stream); with one, L2 hits never reach the L3.
func (c *Cluster) AccessHier(s SchemeID, addr uint64, write bool) cache.HierResult {
	return c.hier.Access(cache.Owner(s), addr, write)
}

// AllowedWays reports the way mask scheme s may allocate into.
func (c *Cluster) AllowedWays(s SchemeID) uint64 {
	return c.policy.AllowedWays(cache.Owner(s), 0)
}
