package spatial

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestRegionValidation(t *testing.T) {
	bad := []Region{
		{Base: 0, Size: 0, Perm: Read},
		{Base: 0, Size: 3000, Perm: Read},      // not power of two
		{Base: 0x100, Size: 0x200, Perm: Read}, // misaligned
		{Base: 0x1000, Size: 0x1000},           // no perms
	}
	for i, r := range bad {
		if r.Validate() == nil {
			t.Errorf("bad region %d accepted", i)
		}
	}
	good := Region{Base: 0x2000, Size: 0x1000, Perm: Read | Write}
	if good.Validate() != nil {
		t.Error("good region rejected")
	}
	if !good.Contains(0x2FFF) || good.Contains(0x3000) {
		t.Error("Contains boundary broken")
	}
}

func TestPermString(t *testing.T) {
	if (Read | Write).String() != "rw-" {
		t.Errorf("rw perm = %q", (Read | Write).String())
	}
	if (Read | Execute).String() != "r-x" {
		t.Errorf("rx perm = %q", (Read | Execute).String())
	}
	if Perm(0).String() != "---" {
		t.Error("empty perm")
	}
}

func TestAddPartitionValidation(t *testing.T) {
	m := New()
	if m.AddPartition("", []Region{{Base: 0, Size: 0x1000, Perm: Read}}) == nil {
		t.Error("unnamed partition accepted")
	}
	if m.AddPartition("a", nil) == nil {
		t.Error("empty partition accepted")
	}
	ok := []Region{{Base: 0x10000, Size: 0x1000, Perm: Read | Write}}
	if err := m.AddPartition("a", ok); err != nil {
		t.Fatal(err)
	}
	if m.AddPartition("a", ok) == nil {
		t.Error("duplicate partition accepted")
	}
	// Overlap within a partition.
	if m.AddPartition("b", []Region{
		{Base: 0x20000, Size: 0x2000, Perm: Read},
		{Base: 0x21000, Size: 0x1000, Perm: Read},
	}) == nil {
		t.Error("self-overlapping partition accepted")
	}
	if got := m.Partitions(); len(got) != 1 || got[0] != "a" {
		t.Errorf("Partitions = %v", got)
	}
}

func TestWriteExclusivityEnforced(t *testing.T) {
	m := New()
	if err := m.AddPartition("asil", []Region{{Base: 0x10000, Size: 0x1000, Perm: Read | Write}}); err != nil {
		t.Fatal(err)
	}
	// Another writer on the same range: rejected.
	if m.AddPartition("qm", []Region{{Base: 0x10000, Size: 0x1000, Perm: Read | Write}}) == nil {
		t.Error("double-writer overlap accepted")
	}
	// Even a reader overlapping a writable region: rejected (the
	// writer could corrupt what the reader depends on — and the MPU
	// granularity cannot tell them apart).
	if m.AddPartition("qm", []Region{{Base: 0x10000, Size: 0x1000, Perm: Read}}) == nil {
		t.Error("reader overlapping writer accepted")
	}
	// Read-only sharing of a read-only range: allowed.
	if err := m.AddPartition("shared1", []Region{{Base: 0x40000, Size: 0x1000, Perm: Read}}); err != nil {
		t.Fatal(err)
	}
	if err := m.AddPartition("shared2", []Region{{Base: 0x40000, Size: 0x1000, Perm: Read}}); err != nil {
		t.Errorf("read-only sharing rejected: %v", err)
	}
	if err := m.WriteExclusive(); err != nil {
		t.Errorf("invariant check failed on valid config: %v", err)
	}
}

func TestCheckAccessAndFaults(t *testing.T) {
	m := New()
	regions := []Region{
		{Base: 0x10000, Size: 0x1000, Perm: Read | Write},
		{Base: 0x20000, Size: 0x1000, Perm: Read | Execute},
	}
	if err := m.AddPartition("vm", regions); err != nil {
		t.Fatal(err)
	}
	if err := m.Check("vm", 0x10080, Read|Write); err != nil {
		t.Errorf("legal write denied: %v", err)
	}
	if err := m.Check("vm", 0x20010, Execute); err != nil {
		t.Errorf("legal exec denied: %v", err)
	}
	// Write to the execute-only region: fault.
	err := m.Check("vm", 0x20010, Write)
	if err == nil {
		t.Fatal("illegal write allowed")
	}
	var f *Fault
	if !errors.As(err, &f) {
		t.Fatalf("error is not a Fault: %v", err)
	}
	if f.Partition != "vm" || f.Addr != 0x20010 || f.Want != Write {
		t.Errorf("fault = %+v", f)
	}
	if f.Error() == "" {
		t.Error("empty fault message")
	}
	// Outside every region: fault.
	if m.Check("vm", 0x90000, Read) == nil {
		t.Error("out-of-region access allowed")
	}
	if m.Check("ghost", 0, Read) == nil {
		t.Error("unknown partition check succeeded")
	}
	st := m.Stats("vm")
	if st.Allowed != 2 || st.Faults != 2 {
		t.Errorf("stats = %+v", st)
	}
	if m.Stats("ghost") != (Stats{}) {
		t.Error("ghost stats non-zero")
	}
}

func TestCheckBinarySearchBoundaries(t *testing.T) {
	m := New()
	var regions []Region
	for i := 0; i < 8; i++ {
		regions = append(regions, Region{Base: uint64(i) * 0x10000, Size: 0x1000, Perm: Read})
	}
	if err := m.AddPartition("p", regions); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		base := uint64(i) * 0x10000
		if err := m.Check("p", base, Read); err != nil {
			t.Errorf("first byte of region %d denied", i)
		}
		if err := m.Check("p", base+0xFFF, Read); err != nil {
			t.Errorf("last byte of region %d denied", i)
		}
		if m.Check("p", base+0x1000, Read) == nil {
			t.Errorf("byte past region %d allowed", i)
		}
	}
}

func TestQuickNoCrossPartitionWrites(t *testing.T) {
	// Property: however partitions are (successfully) configured, no
	// address is writable by two of them — checked both by the
	// explicit invariant and by probing.
	f := func(bases [4]uint16, sizes [4]uint8, perms [4]uint8) bool {
		m := New()
		names := []string{"p0", "p1", "p2", "p3"}
		for i := 0; i < 4; i++ {
			size := uint64(1) << (8 + sizes[i]%6) // 256B..8KiB
			base := (uint64(bases[i]) << 8) &^ (size - 1)
			perm := Perm(perms[i]%7) + 1
			_ = m.AddPartition(names[i], []Region{{Base: base, Size: size, Perm: perm}})
		}
		if m.WriteExclusive() != nil {
			return false
		}
		// Probe: count writers per sampled address.
		for addr := uint64(0); addr < 1<<24; addr += 4096 {
			writers := 0
			for _, n := range m.Partitions() {
				if m.Check(n, addr, Write) == nil {
					writers++
				}
			}
			if writers > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
