// Package spatial models hypervisor-enforced spatial isolation via an
// MPU-style region model — the half of freedom-from-interference the
// paper calls solved ("spatial separation can be controlled e.g. with
// a hypervisor and Memory Management Units (MMU/MPU)"), implemented
// here so the platform model covers both space and time.
//
// Each partition (a VM or an ASIL software partition) owns a set of
// physical regions with read/write/execute permissions. The checker
// guarantees by construction that no two partitions can both write the
// same byte: configuration attempts that would break write exclusivity
// are rejected, so ISO 26262 freedom from interference in space holds
// statically, and every denied access at run time is accounted as a
// fault.
package spatial

import (
	"fmt"
	"sort"
)

// Perm is a permission bitmask.
type Perm uint8

// Permission bits.
const (
	Read Perm = 1 << iota
	Write
	Execute
)

// String implements fmt.Stringer.
func (p Perm) String() string {
	b := []byte("---")
	if p&Read != 0 {
		b[0] = 'r'
	}
	if p&Write != 0 {
		b[1] = 'w'
	}
	if p&Execute != 0 {
		b[2] = 'x'
	}
	return string(b)
}

// Region is one contiguous physical range with permissions. Real MPUs
// require power-of-two alignment; we enforce the same so configs are
// realizable.
type Region struct {
	Base uint64
	Size uint64
	Perm Perm
}

// End returns the first address past the region.
func (r Region) End() uint64 { return r.Base + r.Size }

// Contains reports whether addr falls inside the region.
func (r Region) Contains(addr uint64) bool { return addr >= r.Base && addr < r.End() }

// overlaps reports whether two regions share any byte.
func (r Region) overlaps(o Region) bool { return r.Base < o.End() && o.Base < r.End() }

// Validate checks MPU realizability: power-of-two size, base aligned
// to size, non-empty, no wraparound.
func (r Region) Validate() error {
	if r.Size == 0 || r.Size&(r.Size-1) != 0 {
		return fmt.Errorf("spatial: region size %#x not a power of two", r.Size)
	}
	if r.Base%r.Size != 0 {
		return fmt.Errorf("spatial: region base %#x not aligned to size %#x", r.Base, r.Size)
	}
	if r.Base+r.Size < r.Base {
		return fmt.Errorf("spatial: region wraps the address space")
	}
	if r.Perm == 0 {
		return fmt.Errorf("spatial: region with no permissions")
	}
	return nil
}

// Fault describes a denied access.
type Fault struct {
	Partition string
	Addr      uint64
	Want      Perm
}

// Error implements error.
func (f Fault) Error() string {
	return fmt.Sprintf("spatial: partition %q: %s access to %#x denied", f.Partition, f.Want, f.Addr)
}

// Stats counts a partition's access outcomes.
type Stats struct {
	Allowed uint64
	Faults  uint64
}

// MPU is the hypervisor's stage-2 protection state.
type MPU struct {
	partitions map[string][]Region
	order      []string
	stats      map[string]*Stats
}

// New returns an empty MPU.
func New() *MPU {
	return &MPU{partitions: make(map[string][]Region), stats: make(map[string]*Stats)}
}

// AddPartition installs a partition's regions. It rejects invalid
// regions, overlap within the partition, and any cross-partition
// overlap where either side is writable (write exclusivity).
// Read-only sharing between partitions is permitted.
func (m *MPU) AddPartition(name string, regions []Region) error {
	if name == "" {
		return fmt.Errorf("spatial: partition needs a name")
	}
	if _, dup := m.partitions[name]; dup {
		return fmt.Errorf("spatial: duplicate partition %q", name)
	}
	if len(regions) == 0 {
		return fmt.Errorf("spatial: partition %q needs at least one region", name)
	}
	for i, r := range regions {
		if err := r.Validate(); err != nil {
			return fmt.Errorf("partition %q region %d: %w", name, i, err)
		}
		for _, q := range regions[:i] {
			if r.overlaps(q) {
				return fmt.Errorf("spatial: partition %q has overlapping regions %#x and %#x",
					name, q.Base, r.Base)
			}
		}
	}
	for _, other := range m.order {
		for _, q := range m.partitions[other] {
			for _, r := range regions {
				if r.overlaps(q) && (r.Perm&Write != 0 || q.Perm&Write != 0) {
					return fmt.Errorf("spatial: write-overlap between %q (%#x %s) and %q (%#x %s)",
						name, r.Base, r.Perm, other, q.Base, q.Perm)
				}
			}
		}
	}
	m.partitions[name] = append([]Region(nil), regions...)
	sort.Slice(m.partitions[name], func(i, j int) bool {
		return m.partitions[name][i].Base < m.partitions[name][j].Base
	})
	m.order = append(m.order, name)
	m.stats[name] = &Stats{}
	return nil
}

// Partitions returns the partition names in creation order.
func (m *MPU) Partitions() []string { return append([]string(nil), m.order...) }

// Stats returns a partition's counters.
func (m *MPU) Stats(name string) Stats {
	if s := m.stats[name]; s != nil {
		return *s
	}
	return Stats{}
}

// Check validates one access; a denial is returned as a *Fault error
// and counted.
func (m *MPU) Check(partition string, addr uint64, want Perm) error {
	regions, ok := m.partitions[partition]
	if !ok {
		return fmt.Errorf("spatial: unknown partition %q", partition)
	}
	st := m.stats[partition]
	// Regions are sorted by base; binary search the candidate.
	i := sort.Search(len(regions), func(i int) bool { return regions[i].End() > addr })
	if i < len(regions) && regions[i].Contains(addr) && regions[i].Perm&want == want {
		st.Allowed++
		return nil
	}
	st.Faults++
	return &Fault{Partition: partition, Addr: addr, Want: want}
}

// WriteExclusive verifies the global invariant explicitly (used by
// property tests): no byte is writable by two partitions.
func (m *MPU) WriteExclusive() error {
	for i, a := range m.order {
		for _, b := range m.order[i+1:] {
			for _, ra := range m.partitions[a] {
				if ra.Perm&Write == 0 {
					continue
				}
				for _, rb := range m.partitions[b] {
					if rb.Perm&Write == 0 && ra.overlaps(rb) {
						return fmt.Errorf("spatial: %q writes into %q's readable region", a, b)
					}
					if rb.Perm&Write != 0 && ra.overlaps(rb) {
						return fmt.Errorf("spatial: %q and %q both write %#x", a, b, ra.Base)
					}
				}
			}
		}
	}
	return nil
}
