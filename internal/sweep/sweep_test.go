package sweep

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/trace"
)

func TestMechanismSetRoundTrip(t *testing.T) {
	cases := []struct {
		in   string
		want MechanismSet
	}{
		{"none", MechanismSet{}},
		{"all", AllMechanisms()},
		{"dsu", MechanismSet{DSU: true}},
		{"dsu+memguard", MechanismSet{DSU: true, MemGuard: true}},
		{"mg+shape+mpam", MechanismSet{MemGuard: true, Shape: true, MPAM: true}},
	}
	for _, c := range cases {
		got, err := ParseMechanismSet(c.in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.in, err)
		}
		if got != c.want {
			t.Errorf("Parse(%q) = %+v, want %+v", c.in, got, c.want)
		}
		back, err := ParseMechanismSet(got.String())
		if err != nil || back != got {
			t.Errorf("round trip of %q via %q failed", c.in, got)
		}
	}
	if _, err := ParseMechanismSet("dsu+warp"); err == nil {
		t.Error("unknown mechanism accepted")
	}
}

func TestMatrixExpandOrderAndBaseline(t *testing.T) {
	mx := Matrix{
		Mechanisms: []MechanismSet{{}, {DSU: true}},
		Hogs:       []int{0, 2},
		Seeds:      []uint64{1, 2},
		Durations:  []sim.Duration{sim.Millisecond},
	}
	specs := mx.Expand()
	// Baseline once (2 seeds), then 2 mechs × 1 nonzero hog count × 2
	// seeds.
	if len(specs) != 6 {
		t.Fatalf("expanded %d specs, want 6", len(specs))
	}
	if specs[0].Platform.Hogs != 0 || specs[0].Platform.DSU {
		t.Fatalf("first spec %+v is not the isolated baseline", specs[0].Platform)
	}
	if specs[0].Label != specs[1].Label || specs[0].Platform.Seed == specs[1].Platform.Seed {
		t.Fatal("seed runs must share a label and differ in seed")
	}
	// Expansion is deterministic. (reflect.DeepEqual: RunSpec carries a
	// bounds map, so Spec is no longer ==-comparable.)
	again := mx.Expand()
	for i := range specs {
		if !reflect.DeepEqual(specs[i], again[i]) {
			t.Fatalf("expansion not deterministic at %d: %+v vs %+v", i, specs[i], again[i])
		}
	}
	// Admission axis appends to the end.
	mx.AdmissionApps = []int{8}
	specs = mx.Expand()
	if last := specs[len(specs)-1]; last.Kind != Admission || last.Admission.Apps != 8 {
		t.Fatalf("last spec = %+v, want admission run", last)
	}
}

func TestScenarioMatrixMatchesSocsim(t *testing.T) {
	specs := ScenarioMatrix(6, 4*sim.Millisecond, nil)
	if len(specs) != 7 {
		t.Fatalf("got %d scenarios, want 7", len(specs))
	}
	if specs[0].Label != "solo (0 hogs)" || specs[0].Platform.Hogs != 0 {
		t.Fatalf("first scenario = %+v", specs[0])
	}
	all := specs[6].Platform
	if !(all.DSU && all.MemGuard && all.Shape && all.MPAM) || all.Hogs != 6 {
		t.Fatalf("last scenario not all-mechanisms: %+v", all)
	}
}

// fakeExec returns synthetic results derived only from the spec, fast
// enough to sweep widely in tests.
func fakeExec(s Spec) (Result, error) {
	switch s.Kind {
	case Admission:
		return Result{Admitted: uint64(s.Admission.Apps - 1), Rejected: 1, ModeChanges: uint64(s.Admission.Apps)}, nil
	default:
		base := sim.Duration(100+10*s.Platform.Hogs) * sim.Nanosecond
		seed := sim.Duration(s.Platform.Seed) * sim.Nanosecond / 10
		return Result{
			Crit: core.AppStats{
				MeanReadLatency: base + seed,
				P95ReadLatency:  2*base + seed,
				MaxReadLatency:  4*base + seed,
			},
			RowHitRate: 0.5,
		}, nil
	}
}

func TestRunWorkerCountInvariant(t *testing.T) {
	mx := Matrix{
		Mechanisms:    []MechanismSet{{}, {DSU: true}, AllMechanisms()},
		Hogs:          []int{0, 2, 4},
		Seeds:         []uint64{1, 2, 3},
		Durations:     []sim.Duration{sim.Millisecond},
		AdmissionApps: []int{4, 8},
	}
	specs := mx.Expand()
	emit := func(workers int) (string, string) {
		res := Run(specs, workers, fakeExec)
		sums := Summarize(res)
		var j, c bytes.Buffer
		if err := WriteJSON(&j, sums); err != nil {
			t.Fatal(err)
		}
		if err := WriteCSV(&c, sums); err != nil {
			t.Fatal(err)
		}
		return j.String(), c.String()
	}
	j1, c1 := emit(1)
	j8, c8 := emit(8)
	if j1 != j8 {
		t.Fatalf("JSON differs between -workers=1 and -workers=8:\n%s\nvs\n%s", j1, j8)
	}
	if c1 != c8 {
		t.Fatalf("CSV differs between -workers=1 and -workers=8:\n%s\nvs\n%s", c1, c8)
	}
}

func TestRunRealExecutorWorkerCountInvariant(t *testing.T) {
	// Short real-platform runs through the actual executor: the full
	// stack must stay byte-identical across worker counts.
	mx := Matrix{
		Mechanisms: []MechanismSet{{}, {MemGuard: true}},
		Hogs:       []int{0, 2},
		Seeds:      []uint64{100, 101},
		Durations:  []sim.Duration{50 * sim.Microsecond},
	}
	specs := mx.Expand()
	emit := func(workers int) string {
		sums := Summarize(Run(specs, workers, nil))
		var j bytes.Buffer
		if err := WriteJSON(&j, sums); err != nil {
			t.Fatal(err)
		}
		return j.String()
	}
	j1 := emit(1)
	j8 := emit(8)
	if j1 != j8 {
		t.Fatalf("real-executor JSON differs between worker counts:\n%s\nvs\n%s", j1, j8)
	}
	if !strings.Contains(j1, `"runs": 2`) {
		t.Fatalf("expected 2 runs per config in:\n%s", j1)
	}
}

func TestRunPanicIsolation(t *testing.T) {
	specs := ScenarioMatrix(2, sim.Millisecond, nil)
	exec := func(s Spec) (Result, error) {
		if s.Label == "contended + DSU" {
			panic("injected fault")
		}
		if s.Label == "contended + shaping" {
			return Result{}, fmt.Errorf("injected error")
		}
		return fakeExec(s)
	}
	res := Run(specs, 4, exec)
	if len(res) != len(specs) {
		t.Fatalf("got %d results for %d specs", len(res), len(specs))
	}
	var panicked, errored, ok int
	for _, r := range res {
		switch {
		case r.Err == "panic: injected fault":
			panicked++
		case r.Err == "injected error":
			errored++
		case !r.Failed():
			ok++
		default:
			t.Fatalf("unexpected failure record %q", r.Err)
		}
	}
	if panicked != 1 || errored != 1 || ok != len(specs)-2 {
		t.Fatalf("panicked=%d errored=%d ok=%d", panicked, errored, ok)
	}
	sums := Summarize(res)
	for _, s := range sums {
		if s.Label == "contended + DSU" {
			if s.Failures != 1 || s.Failure != "panic: injected fault" {
				t.Fatalf("summary did not carry the failure record: %+v", s)
			}
		}
	}
}

func TestSummarizeSlowdownAndSeeds(t *testing.T) {
	mx := Matrix{
		Mechanisms: []MechanismSet{{}},
		Hogs:       []int{0, 4},
		Seeds:      []uint64{10, 20},
		Durations:  []sim.Duration{sim.Millisecond},
		Workloads:  []trace.WorkloadClass{trace.Infotainment},
	}
	res := Run(mx.Expand(), 2, fakeExec)
	sums := Summarize(res)
	if len(sums) != 2 {
		t.Fatalf("got %d summaries, want 2", len(sums))
	}
	base, contended := sums[0], sums[1]
	if base.Hogs != 0 || contended.Hogs != 4 {
		t.Fatalf("unexpected group order: %+v", sums)
	}
	if base.Runs != 2 || contended.Runs != 2 {
		t.Fatalf("runs per group = %d/%d, want 2/2", base.Runs, contended.Runs)
	}
	// fakeExec: p95 = 2*(100+10*hogs) + seed/10 ns; seeds 10,20 →
	// mean seed term 1.5.
	wantBase := 200 + 1.5
	wantCont := 280 + 1.5
	if base.P95NS != wantBase || contended.P95NS != wantCont {
		t.Fatalf("p95 = %v/%v, want %v/%v", base.P95NS, contended.P95NS, wantBase, wantCont)
	}
	wantSlow := wantCont / wantBase
	if contended.SlowdownP95 != wantSlow {
		t.Fatalf("slowdown = %v, want %v", contended.SlowdownP95, wantSlow)
	}
	if base.SlowdownP95 != 1 {
		t.Fatalf("baseline slowdown = %v, want 1", base.SlowdownP95)
	}
}

func TestAdmissionRunReportsRejections(t *testing.T) {
	// Enough best-effort apps against the delay-bound contract must
	// produce rejections once the per-app rate can no longer meet the
	// deadline.
	as := DefaultAdmissionSpec()
	as.Apps = 12
	as.CritApps = 2
	r, err := runAdmission(as)
	if err != nil {
		t.Fatal(err)
	}
	if r.Admitted == 0 {
		t.Fatal("no activations admitted")
	}
	if r.Rejected == 0 {
		t.Fatal("delay-bound check rejected nothing across 10 best-effort activations")
	}
	if r.Admitted+r.Rejected > uint64(as.Apps) {
		t.Fatalf("admitted %d + rejected %d > %d apps", r.Admitted, r.Rejected, as.Apps)
	}
	// Deterministic: same spec, same protocol outcome.
	r2, err := runAdmission(as)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Admitted != r.Admitted || r2.Rejected != r.Rejected || r2.ModeChanges != r.ModeChanges {
		t.Fatalf("admission run not deterministic: %+v vs %+v", r, r2)
	}
}
