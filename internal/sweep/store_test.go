package sweep

import (
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/sim"
)

// openStore opens an obs store in a temp dir with a deterministic
// clock.
func openStore(t *testing.T) *obs.Store {
	t.Helper()
	var tick int64
	s, err := obs.Open(t.TempDir(), obs.WithClock(func() int64 { tick++; return tick }))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// tinyMatrix is the smallest audited contention sweep: one cell, one
// seed, short horizon.
func tinyMatrix() Matrix {
	return Matrix{Hogs: []int{2}, Durations: []sim.Duration{200 * sim.Microsecond}, Seeds: []uint64{7}}
}

// runTinySweep expands tinyMatrix with the auditor armed, records it
// into the store, and returns the results.
func runTinySweep(t *testing.T, st *obs.Store) []Result {
	t.Helper()
	specs := tinyMatrix().Expand()
	for i := range specs {
		specs[i].Platform.Audit = true
	}
	rec := NewRecorder(st, specs)
	results := Run(specs, 2, nil)
	if err := rec.Flush(results); err != nil {
		t.Fatal(err)
	}
	return results
}

func TestRecorderIdenticalSweepsStoreByteIdenticalPayloads(t *testing.T) {
	// The acceptance shape: two identical-seed sweeps recorded into
	// the store must produce byte-identical stored metric payloads —
	// only the store's own stamps may differ.
	st := openStore(t)
	runTinySweep(t, st)
	runTinySweep(t, st)
	recs, err := st.Query(obs.Filter{})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("store holds %d records, want 2", len(recs))
	}
	a, b := recs[0], recs[1]
	if a.Metrics == "" || !strings.HasSuffix(a.Metrics, "# EOF\n") {
		t.Fatalf("captured payload is not OpenMetrics:\n%.200s", a.Metrics)
	}
	if a.MetricsFP != b.MetricsFP || a.Metrics != b.Metrics {
		t.Fatal("identical-seed sweeps stored different metric payloads")
	}
	if a.ConfigFP == "" || a.ConfigFP != b.ConfigFP || a.Seed != b.Seed {
		t.Fatalf("re-run identity broken: %+v vs %+v", a, b)
	}
	if a.Seq == b.Seq {
		t.Fatal("store stamps must distinguish the two appends")
	}
	if v, ok := a.Value("audit.conformance"); !ok || v != 1 {
		t.Fatalf("audited quiet run conformance = %v (ok=%v), want 1", v, ok)
	}
	if _, ok := a.Value("crit.p95_ns"); !ok {
		t.Fatalf("headline values missing: %+v", a.Values)
	}

	// The SLO engine over those runs reports 100% bound-conformance.
	sts, err := obs.EvaluateStore(st, obs.DefaultSLOs())
	if err != nil {
		t.Fatal(err)
	}
	var found bool
	for _, s := range sts {
		if s.SLO.Name != "bound-conformance" {
			continue
		}
		found = true
		if s.Runs != 2 || s.Attainment != 1 || s.BurnRate != 0 || !s.Met {
			t.Fatalf("conformance SLO = %+v", s)
		}
	}
	if !found {
		t.Fatal("bound-conformance SLO missing from defaults")
	}

	// And the sentinel finds nothing to flag.
	fs, err := obs.SentinelConfig{MinHistory: 1}.CheckStore(st, obs.Filter{})
	if err != nil {
		t.Fatal(err)
	}
	if reg := obs.Regressions(fs); len(reg) != 0 {
		t.Fatalf("identical runs flagged: %+v", reg)
	}
}

func TestRecorderSentinelFlagsInjectedRegression(t *testing.T) {
	st := openStore(t)
	runTinySweep(t, st)
	base, err := st.Query(obs.Filter{})
	if err != nil {
		t.Fatal(err)
	}
	// Inject a synthetic degraded re-run: p95 up 10x.
	bad := base[0]
	bad.Values = map[string]float64{"crit.p95_ns": bad.Values["crit.p95_ns"] * 10}
	bad.Metrics, bad.MetricsFP = "", ""
	if _, err := st.Append(bad); err != nil {
		t.Fatal(err)
	}
	fs, err := obs.SentinelConfig{MinHistory: 1}.CheckStore(st, obs.Filter{})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.Regressions(fs)
	if len(reg) != 1 || reg[0].Metric != "crit.p95_ns" {
		t.Fatalf("regressions = %+v, want the injected p95 rise", reg)
	}
}

func TestRecorderKeepsFailedRunEvidence(t *testing.T) {
	// Satellite contract at the sweep layer: a failed run's record
	// still carries whatever snapshot the sink captured before the
	// panic unwound, plus the structured failure — and no headline
	// values that would feed half-measured numbers to the SLO engine.
	st := openStore(t)
	specs := tinyMatrix().Expand()
	rec := NewRecorder(st, specs)
	boom := func(s Spec) (Result, error) {
		// The real core.Run fires the sink from its deferred dump even
		// while panicking (tested in internal/core); the fake models
		// that ordering.
		s.Platform.MetricsSink([]byte("# TYPE partial gauge\npartial 1\n# EOF\n"))
		panic("mid-collection boom")
	}
	if err := rec.Flush(Run(specs, 1, boom)); err != nil {
		t.Fatal(err)
	}
	recs, err := st.Query(obs.Filter{Failed: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("failed records = %d, want 1", len(recs))
	}
	r := recs[0]
	if !strings.Contains(r.Err, "mid-collection boom") {
		t.Fatalf("failure record = %q", r.Err)
	}
	if !strings.HasSuffix(r.Metrics, "# EOF\n") || r.MetricsFP == "" {
		t.Fatalf("failed run lost its snapshot: %+v", r)
	}
	if len(r.Values) != 0 {
		t.Fatalf("failed run carries headline values: %+v", r.Values)
	}
}

func TestConfigFingerprintIgnoresSeedAndObservers(t *testing.T) {
	specs := tinyMatrix().Expand()
	s := specs[0]
	other := s
	other.Platform.Seed = 999
	other.Platform.MetricsPath = "/tmp/out.om"
	other.Platform.MetricsSink = func([]byte) {}
	if obs.FingerprintConfig(ConfigOf(s)) != obs.FingerprintConfig(ConfigOf(other)) {
		t.Fatal("fingerprint shifted on seed/observer change")
	}
	changed := s
	changed.Platform.Hogs++
	if obs.FingerprintConfig(ConfigOf(s)) == obs.FingerprintConfig(ConfigOf(changed)) {
		t.Fatal("fingerprint ignored a configuration change")
	}

	adm := Spec{Kind: Admission, Label: "admission/apps=8", Admission: DefaultAdmissionSpec()}
	admChanged := adm
	admChanged.Admission.Apps++
	if obs.FingerprintConfig(ConfigOf(adm)) == obs.FingerprintConfig(ConfigOf(admChanged)) {
		t.Fatal("admission fingerprint ignored a configuration change")
	}
}

func TestRecordOfAdmissionValues(t *testing.T) {
	s := Spec{Kind: Admission, Label: "admission/apps=8", Admission: DefaultAdmissionSpec()}
	r := RecordOf(s, Result{Admitted: 6, Rejected: 2, ModeChanges: 1}, nil)
	if r.Kind != obs.KindAdmission || r.Label != s.Label {
		t.Fatalf("record = %+v", r)
	}
	if r.Values["admitted"] != 6 || r.Values["rejected"] != 2 || r.Values["rejection_rate"] != 0.25 {
		t.Fatalf("values = %+v", r.Values)
	}
}
