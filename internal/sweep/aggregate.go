package sweep

import (
	"strings"
)

// ConfigSummary aggregates every run of one configuration (one Label)
// across its seeds.
type ConfigSummary struct {
	Label      string `json:"label"`
	Kind       string `json:"kind"`
	Mechanisms string `json:"mechanisms,omitempty"`
	Hogs       int    `json:"hogs,omitempty"`
	Workload   string `json:"workload,omitempty"`
	DurationNS int64  `json:"duration_ns,omitempty"`

	Runs     int    `json:"runs"`
	Failures int    `json:"failures"`
	Failure  string `json:"failure,omitempty"`

	// Contention aggregates, over successful runs: mean of per-run
	// means, mean of per-run p95s, max of per-run maxima (all ns),
	// mean row-hit rate, and the p95 slowdown against the isolated
	// baseline (same workload and horizon, no hogs, no mechanisms);
	// 0 when the matrix carries no baseline.
	MeanNS      float64 `json:"mean_ns,omitempty"`
	P95NS       float64 `json:"p95_ns,omitempty"`
	MaxNS       float64 `json:"max_ns,omitempty"`
	RowHitRate  float64 `json:"row_hit_rate,omitempty"`
	SlowdownP95 float64 `json:"slowdown_p95,omitempty"`

	// Violations sums the audit bound violations over the
	// configuration's runs (omitted when the auditor was off).
	Violations uint64 `json:"violations,omitempty"`

	// Admission aggregates: total admitted/rejected activations, the
	// rejection rate rejected/(admitted+rejected), and mean mode
	// changes per run.
	Admitted      uint64  `json:"admitted,omitempty"`
	Rejected      uint64  `json:"rejected,omitempty"`
	RejectionRate float64 `json:"rejection_rate,omitempty"`
	ModeChanges   float64 `json:"mode_changes,omitempty"`
}

// Summarize groups results by Label — in first-appearance order, so
// the output order is the spec order and therefore independent of the
// worker count — and folds each group's seeds into one summary.
func Summarize(results []Result) []ConfigSummary {
	order := make([]string, 0, len(results))
	groups := make(map[string][]Result)
	for _, r := range results {
		if _, seen := groups[r.Spec.Label]; !seen {
			order = append(order, r.Spec.Label)
		}
		groups[r.Spec.Label] = append(groups[r.Spec.Label], r)
	}

	summaries := make([]ConfigSummary, 0, len(order))
	for _, label := range order {
		summaries = append(summaries, summarizeGroup(label, groups[label]))
	}

	// Second pass: slowdown against the isolated baseline of the same
	// workload and horizon.
	for i := range summaries {
		s := &summaries[i]
		if s.Kind != Contention.String() || s.P95NS == 0 {
			continue
		}
		for j := range summaries {
			b := &summaries[j]
			if b.Kind == Contention.String() && b.Hogs == 0 && b.Mechanisms == "none" &&
				b.Workload == s.Workload && b.DurationNS == s.DurationNS && b.P95NS > 0 {
				s.SlowdownP95 = s.P95NS / b.P95NS
				break
			}
		}
	}
	return summaries
}

// summarizeGroup folds one configuration's runs.
func summarizeGroup(label string, runs []Result) ConfigSummary {
	first := runs[0].Spec
	s := ConfigSummary{
		Label: label,
		Kind:  first.Kind.String(),
	}
	if first.Kind == Contention {
		s.Mechanisms = mechanismsOf(first.Platform).String()
		s.Hogs = first.Platform.Hogs
		s.Workload = first.Platform.HogClass.String()
		s.DurationNS = int64(first.Platform.Duration.Nanoseconds())
	}

	var fails []string
	ok := 0
	for _, r := range runs {
		s.Runs++
		if r.Failed() {
			s.Failures++
			fails = append(fails, r.Err)
			continue
		}
		ok++
		switch r.Spec.Kind {
		case Contention:
			s.MeanNS += r.Crit.MeanReadLatency.Nanoseconds()
			s.P95NS += r.Crit.P95ReadLatency.Nanoseconds()
			if m := r.Crit.MaxReadLatency.Nanoseconds(); m > s.MaxNS {
				s.MaxNS = m
			}
			s.RowHitRate += r.RowHitRate
			s.Violations += r.Violations
		case Admission:
			s.Admitted += r.Admitted
			s.Rejected += r.Rejected
			s.ModeChanges += float64(r.ModeChanges)
		}
	}
	s.Failure = strings.Join(fails, "; ")
	if ok > 0 {
		n := float64(ok)
		s.MeanNS /= n
		s.P95NS /= n
		s.RowHitRate /= n
		s.ModeChanges /= n
	}
	if total := s.Admitted + s.Rejected; total > 0 {
		s.RejectionRate = float64(s.Rejected) / float64(total)
	}
	return s
}
