package sweep

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/core"
)

// Result is the outcome of one run spec. Exactly one of the
// measurement fields or Err is meaningful: a failed run (error or
// recovered panic) carries only its failure record.
type Result struct {
	Spec Spec

	// Contention measurements.
	Crit       core.AppStats
	RowHitRate float64

	// Admission measurements.
	Admitted    uint64
	Rejected    uint64
	ModeChanges uint64

	// Violations counts the run's audit bound violations across all
	// apps (zero unless the spec armed the auditor); Observed counts
	// the transactions the auditor checked — together they give the
	// run's bound-conformance rate (Observed-Violations)/Observed.
	Violations uint64
	Observed   uint64

	// Err is the structured failure record: empty on success, the
	// error text or "panic: ..." otherwise.
	Err string
}

// Failed reports whether the run produced a failure record.
func (r Result) Failed() bool { return r.Err != "" }

// Executor runs one spec and fills its measurements. Execute is the
// real thing; tests substitute fakes (including panicking ones).
type Executor func(Spec) (Result, error)

// Execute runs a spec on a fresh platform (or admission overlay).
func Execute(s Spec) (Result, error) {
	switch s.Kind {
	case Contention:
		// The sweep's parallelism is one whole run per worker; kernel
		// partitions inside each run would oversubscribe the cores
		// (workers defaults to GOMAXPROCS), so the event kernel stays
		// sequential here. Output is byte-identical either way — the
		// normalization is purely a scheduling decision (see
		// docs/PERFORMANCE.md, "Parallel kernel").
		s.Platform.KernelPartitions = 0
		rr, err := s.Platform.Run()
		if err != nil {
			return Result{}, err
		}
		return Result{
			Crit: rr.Crit, RowHitRate: rr.RowHitRate,
			Violations: rr.TotalViolations, Observed: rr.AuditObserved,
		}, nil
	case Admission:
		return runAdmission(s.Admission)
	}
	return Result{}, fmt.Errorf("sweep: unknown spec kind %v", s.Kind)
}

// DefaultWorkers is the worker count Run uses when given workers <= 0.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// Run executes every spec, sharding across a bounded worker pool.
// workers <= 0 defaults to GOMAXPROCS. The returned slice is indexed
// like specs, whatever the worker count or scheduling order — each
// run is hermetic and lands in its own slot, so downstream
// aggregation is byte-identical for 1 worker and N.
//
// A panic inside one run is recovered into that run's failure record;
// the remaining specs still execute.
func Run(specs []Spec, workers int, exec Executor) []Result {
	return RunObserved(specs, workers, exec, nil)
}

// RunObserved is Run with a completion observer: observe (when
// non-nil) fires once per finished run, concurrently from the worker
// goroutines and in completion order — not spec order. It must be
// safe for concurrent use; Progress.Observe is the intended callback.
// The returned results are indexed by spec position exactly as with
// Run, so live observation never perturbs the deterministic output.
func RunObserved(specs []Spec, workers int, exec Executor, observe func(Result)) []Result {
	if exec == nil {
		exec = Execute
	}
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > len(specs) {
		workers = len(specs)
	}
	results := make([]Result, len(specs))
	if len(specs) == 0 {
		return results
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				r := runOne(specs[i], exec)
				results[i] = r
				if observe != nil {
					observe(r)
				}
			}
		}()
	}
	for i := range specs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return results
}

// runOne executes a single spec with panic isolation.
func runOne(s Spec, exec Executor) (r Result) {
	defer func() {
		if p := recover(); p != nil {
			// Record the panic value, not the stack: goroutine IDs
			// and addresses would break byte-identical aggregates.
			r = Result{Spec: s, Err: fmt.Sprintf("panic: %v", p)}
		}
	}()
	res, err := exec(s)
	res.Spec = s
	if err != nil {
		res.Err = err.Error()
	}
	return res
}
