package sweep

import (
	"fmt"

	"repro/internal/admission"
	"repro/internal/netcalc"
	"repro/internal/noc"
	"repro/internal/sim"
)

// AdmissionSpec describes one admission-overlay run: Apps
// applications activate one by one on a fresh mesh (CritApps of them
// critical, activated first) under the non-symmetric policy, each
// submitting PacketsPerApp packets on activation. Best-effort apps
// declare a traffic contract (BurstBytes, DeadlineNS) that the RM
// checks online with the paper's Section IV-A delay-bound test, so
// once the shrinking per-app rate can no longer meet the deadline,
// further activations are rejected — the rejection rate the sweep
// aggregates.
type AdmissionSpec struct {
	Apps               int
	CritApps           int
	TotalBytesPerNS    float64
	CriticalBytesPerNS float64
	FloorBytesPerNS    float64
	ActivationGap      sim.Duration
	PacketsPerApp      int
	// Traffic contract for best-effort apps (criticals ride their
	// guaranteed share and are admitted unconditionally).
	BurstBytes       float64
	DeadlineNS       float64
	ServiceLatencyNS float64
}

// DefaultAdmissionSpec mirrors admissionsim's policy defaults plus a
// contract that starts rejecting around the sixth best-effort app.
func DefaultAdmissionSpec() AdmissionSpec {
	return AdmissionSpec{
		Apps:               8,
		TotalBytesPerNS:    1.6,
		CriticalBytesPerNS: 0.4,
		FloorBytesPerNS:    0.01,
		ActivationGap:      200 * sim.Microsecond,
		PacketsPerApp:      50,
		BurstBytes:         512,
		DeadlineNS:         2500,
		ServiceLatencyNS:   100,
	}
}

// runAdmission executes an admission-overlay run on its own engine.
func runAdmission(as AdmissionSpec) (Result, error) {
	if as.Apps < 0 || as.CritApps < 0 || as.CritApps > as.Apps {
		return Result{}, fmt.Errorf("sweep: admission spec wants 0 <= crit (%d) <= apps (%d)", as.CritApps, as.Apps)
	}
	if as.ActivationGap <= 0 {
		as.ActivationGap = 200 * sim.Microsecond
	}
	eng := sim.NewEngine()
	mesh, err := noc.New(eng, noc.DefaultConfig())
	if err != nil {
		return Result{}, err
	}
	sys, err := admission.NewSystem(eng, mesh, noc.Coord{X: 0, Y: 0}, admission.NonSymmetric{
		TotalBytesPerNS:    as.TotalBytesPerNS,
		CriticalBytesPerNS: as.CriticalBytesPerNS,
		FloorBytesPerNS:    as.FloorBytesPerNS,
	})
	if err != nil {
		return Result{}, err
	}
	if as.BurstBytes > 0 && as.DeadlineNS > 0 {
		reqs := make(map[string]admission.Requirement, as.Apps)
		for i := as.CritApps; i < as.Apps; i++ {
			reqs[appName(i)] = admission.Requirement{BurstBytes: as.BurstBytes, DeadlineNS: as.DeadlineNS}
		}
		sys.SetAdmissionCheck(admission.DelayBoundCheck(reqs,
			func(_ admission.AppRef, rate float64) netcalc.Curve {
				return netcalc.RateLatency(rate, as.ServiceLatencyNS)
			}))
	}
	for i := 0; i < as.Apps; i++ {
		node := noc.Coord{X: i % 4, Y: (i / 4) % 4}
		cl, err := sys.Client(node)
		if err != nil {
			return Result{}, err
		}
		crit := admission.BestEffort
		if i < as.CritApps {
			crit = admission.Critical
		}
		name := appName(i)
		if err := cl.Register(name, crit); err != nil {
			return Result{}, err
		}
		at := sim.Duration(i) * as.ActivationGap
		eng.At(at, func() {
			for k := 0; k < as.PacketsPerApp; k++ {
				_ = cl.Submit(name, &noc.Packet{Dst: noc.Coord{X: 3, Y: 3}, Bytes: 64})
			}
		})
	}
	eng.RunUntil(sim.Duration(as.Apps+2) * as.ActivationGap)
	st := sys.Stats()
	return Result{
		Admitted:    st.Admitted,
		Rejected:    st.Rejected,
		ModeChanges: st.ModeChanges,
	}, nil
}

func appName(i int) string { return fmt.Sprintf("app%d", i) }
