// Package sweep is a deterministic parallel experiment runner for the
// platform model: the harness that turns the paper's Section V
// admission-control story into sensitivity curves. It expands a
// configuration matrix (QoS mechanisms on/off × hog count × workload
// class × simulated horizon × seed list) into independent run specs,
// shards them across a bounded worker pool — each spec in its own
// fresh core.Platform with its own sim.Engine — and aggregates the
// results (per-configuration latency percentiles across seeds,
// slowdown versus the isolated baseline, admission rejection rates)
// into JSON and CSV emitters.
//
// Determinism survives parallelism by construction: every run is
// hermetic (no shared state between platforms), results land in a
// slot indexed by the spec's position in the expanded list, and
// aggregation folds them in that order — so the emitted bytes are
// identical for -workers=1 and -workers=8. A run that panics is
// recovered into a structured failure record instead of killing the
// sweep.
package sweep

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Kind selects the experiment family a spec runs.
type Kind int

// Experiment kinds.
const (
	// Contention runs the critical-loop-vs-hogs platform experiment
	// (socsim's scenario).
	Contention Kind = iota
	// Admission runs the Section V admission-control overlay
	// (admissionsim's live run) and reports protocol outcomes.
	Admission
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Contention:
		return "contention"
	case Admission:
		return "admission"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// MechanismSet selects which of the paper's QoS mechanisms are armed.
type MechanismSet struct {
	DSU, MemGuard, Shape, MPAM bool
}

// AllMechanisms arms everything.
func AllMechanisms() MechanismSet {
	return MechanismSet{DSU: true, MemGuard: true, Shape: true, MPAM: true}
}

// String renders the set as "none" or a "+"-joined list, e.g.
// "dsu+memguard".
func (m MechanismSet) String() string {
	var parts []string
	if m.DSU {
		parts = append(parts, "dsu")
	}
	if m.MemGuard {
		parts = append(parts, "memguard")
	}
	if m.Shape {
		parts = append(parts, "shape")
	}
	if m.MPAM {
		parts = append(parts, "mpam")
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, "+")
}

// ParseMechanismSet parses String's format; "all" arms everything.
func ParseMechanismSet(s string) (MechanismSet, error) {
	var m MechanismSet
	switch s {
	case "", "none":
		return m, nil
	case "all":
		return AllMechanisms(), nil
	}
	for _, part := range strings.Split(s, "+") {
		switch part {
		case "dsu":
			m.DSU = true
		case "memguard", "mg":
			m.MemGuard = true
		case "shape", "shaping":
			m.Shape = true
		case "mpam":
			m.MPAM = true
		default:
			return m, fmt.Errorf("sweep: unknown mechanism %q (want dsu, memguard, shape, mpam, none, all)", part)
		}
	}
	return m, nil
}

// apply copies the set onto a platform run spec.
func (m MechanismSet) apply(rs *core.RunSpec) {
	rs.DSU, rs.MemGuard, rs.Shape, rs.MPAM = m.DSU, m.MemGuard, m.Shape, m.MPAM
}

// of extracts the set from a platform run spec.
func mechanismsOf(rs core.RunSpec) MechanismSet {
	return MechanismSet{DSU: rs.DSU, MemGuard: rs.MemGuard, Shape: rs.Shape, MPAM: rs.MPAM}
}

// Spec is one independent experiment run. Runs differing only in
// their seed share a Label and aggregate together.
type Spec struct {
	// Label identifies the configuration in aggregates and emitters.
	Label string
	Kind  Kind
	// Platform describes a Contention run.
	Platform core.RunSpec
	// Admission describes an Admission run.
	Admission AdmissionSpec
}

// Matrix is the configuration space a sweep explores. Empty axes get
// a single default value, so the zero Matrix expands to one spec.
type Matrix struct {
	// Mechanisms lists the QoS combinations to evaluate (default:
	// none).
	Mechanisms []MechanismSet
	// Hogs lists aggressor counts (default: 6). A 0 entry produces
	// the isolated baseline, emitted once per workload × duration
	// with mechanisms off — the denominator for slowdown.
	Hogs []int
	// Workloads lists hog workload classes (default: Infotainment).
	Workloads []trace.WorkloadClass
	// Durations lists simulated horizons (default: 4ms).
	Durations []sim.Duration
	// Seeds lists the per-configuration seeds (default: 100). Each
	// configuration runs once per seed.
	Seeds []uint64
	// AdmissionApps adds admission-overlay runs with the given app
	// counts (no runs when empty); AdmissionCrit of them are
	// critical.
	AdmissionApps []int
	AdmissionCrit int
}

func defaults[T any](xs []T, def T) []T {
	if len(xs) == 0 {
		return []T{def}
	}
	return xs
}

// Expand enumerates the matrix into run specs in a fixed, documented
// order: workload → duration → (isolated baseline, if 0 ∈ Hogs) →
// mechanism set → hog count → seed, then the admission runs. The
// order is part of the format: aggregation and emission preserve it.
func (mx Matrix) Expand() []Spec {
	mechs := defaults(mx.Mechanisms, MechanismSet{})
	hogs := defaults(mx.Hogs, 6)
	workloads := defaults(mx.Workloads, trace.Infotainment)
	durations := defaults(mx.Durations, 4*sim.Millisecond)
	seeds := defaults(mx.Seeds, 100)

	var specs []Spec
	addPlatform := func(label string, w trace.WorkloadClass, d sim.Duration, m MechanismSet, n int) {
		for _, seed := range seeds {
			rs := core.RunSpec{Hogs: n, HogClass: w, Duration: d, Seed: seed}
			m.apply(&rs)
			specs = append(specs, Spec{Label: label, Kind: Contention, Platform: rs})
		}
	}
	for _, w := range workloads {
		for _, d := range durations {
			hasBaseline := false
			for _, n := range hogs {
				if n == 0 {
					hasBaseline = true
				}
			}
			if hasBaseline {
				addPlatform(platformLabel(MechanismSet{}, 0, w, d), w, d, MechanismSet{}, 0)
			}
			for _, m := range mechs {
				for _, n := range hogs {
					if n == 0 {
						continue // baseline emitted once above
					}
					addPlatform(platformLabel(m, n, w, d), w, d, m, n)
				}
			}
		}
	}
	for _, apps := range mx.AdmissionApps {
		as := DefaultAdmissionSpec()
		as.Apps = apps
		as.CritApps = mx.AdmissionCrit
		specs = append(specs, Spec{
			Label:     fmt.Sprintf("admission/apps=%d/crit=%d", apps, mx.AdmissionCrit),
			Kind:      Admission,
			Admission: as,
		})
	}
	return specs
}

// platformLabel names a contention configuration.
func platformLabel(m MechanismSet, hogs int, w trace.WorkloadClass, d sim.Duration) string {
	return fmt.Sprintf("%s/hogs=%d/%s/%s", m, hogs, w, fmtDur(d))
}

// fmtDur renders a horizon compactly (4ms, 200us, 50ns) for labels.
func fmtDur(d sim.Duration) string {
	ns := d.Nanoseconds()
	switch {
	case ns >= 1e6 && ns == float64(int64(ns/1e6))*1e6:
		return fmt.Sprintf("%gms", ns/1e6)
	case ns >= 1e3 && ns == float64(int64(ns/1e3))*1e3:
		return fmt.Sprintf("%gus", ns/1e3)
	default:
		return fmt.Sprintf("%gns", ns)
	}
}

// ScenarioMatrix is socsim's -all scenario list as sweep specs: the
// isolated baseline, unprotected contention, each mechanism alone,
// and all mechanisms together — hogs aggressors of class
// Infotainment over horizon d, one run per seed per scenario.
func ScenarioMatrix(hogs int, d sim.Duration, seeds []uint64) []Spec {
	seeds = defaults(seeds, 100)
	var specs []Spec
	for _, sc := range []struct {
		name  string
		mechs MechanismSet
		hogs  int
	}{
		{"solo (0 hogs)", MechanismSet{}, 0},
		{"contended", MechanismSet{}, hogs},
		{"contended + DSU", MechanismSet{DSU: true}, hogs},
		{"contended + MemGuard", MechanismSet{MemGuard: true}, hogs},
		{"contended + shaping", MechanismSet{Shape: true}, hogs},
		{"contended + MPAM channel", MechanismSet{MPAM: true}, hogs},
		{"contended + all mechanisms", AllMechanisms(), hogs},
	} {
		for _, seed := range seeds {
			rs := core.RunSpec{Hogs: sc.hogs, HogClass: trace.Infotainment, Duration: d, Seed: seed}
			sc.mechs.apply(&rs)
			specs = append(specs, Spec{Label: sc.name, Kind: Contention, Platform: rs})
		}
	}
	return specs
}
