package sweep

import (
	"fmt"
	"strconv"

	"repro/internal/obs"
)

// Recorder persists a sweep's per-run evidence into an obs.Store: the
// headline values the SLO engine and the regression sentinel operate
// on, plus each run's full OpenMetrics snapshot. It is the bridge
// between the in-process sweep and the cross-run observability plane.
//
// Usage: NewRecorder before RunObserved (it arms metrics capture on
// the specs in place), Flush after (it appends one record per spec,
// in spec order, so store contents are deterministic whatever the
// worker count).
type Recorder struct {
	store    *obs.Store
	specs    []Spec
	payloads [][]byte
}

// NewRecorder arms per-run metrics capture across the specs, in
// place: every contention spec's platform gets a MetricsSink writing
// into the recorder's slot for that spec. Slots are indexed like the
// specs — each is written by exactly one hermetic run, so concurrent
// workers never contend — and core.Run fires the sink from its
// deferred snapshot dump, so a run that fails or panics still leaves
// its telemetry in the record (the sweep-level satellite of the same
// contract).
func NewRecorder(st *obs.Store, specs []Spec) *Recorder {
	r := &Recorder{store: st, specs: specs, payloads: make([][]byte, len(specs))}
	for i := range specs {
		if specs[i].Kind != Contention {
			continue
		}
		slot := &r.payloads[i]
		specs[i].Platform.MetricsSink = func(b []byte) { *slot = b }
	}
	return r
}

// Flush appends one record per spec, in spec order. Results must be
// indexed like the specs (Run/RunObserved's contract).
func (r *Recorder) Flush(results []Result) error {
	if len(results) != len(r.specs) {
		return fmt.Errorf("sweep: %d results for %d specs", len(results), len(r.specs))
	}
	for i, res := range results {
		if _, err := r.store.Append(RecordOf(r.specs[i], res, r.payloads[i])); err != nil {
			return fmt.Errorf("sweep: record run %d (%s): %w", i, r.specs[i].Label, err)
		}
	}
	return nil
}

// RecordOf builds the persistent record of one run: kind and label
// from the spec, a configuration fingerprint over the axes that
// define "the same experiment" (not the seed — that is its own
// field), the headline values, and the captured OpenMetrics snapshot.
// A failed run keeps its snapshot but carries no headline values; its
// Err field is the failure record.
func RecordOf(s Spec, res Result, metrics []byte) obs.RunRecord {
	rec := obs.RunRecord{
		Label:    s.Label,
		ConfigFP: obs.FingerprintConfig(ConfigOf(s)),
		Metrics:  string(metrics),
		Err:      res.Err,
	}
	switch s.Kind {
	case Contention:
		rec.Kind = obs.KindContention
		rec.Seed = s.Platform.Seed
	case Admission:
		rec.Kind = obs.KindAdmission
	default:
		rec.Kind = s.Kind.String()
	}
	if res.Failed() {
		return rec
	}
	vals := map[string]float64{}
	switch s.Kind {
	case Contention:
		vals["crit.mean_ns"] = res.Crit.MeanReadLatency.Nanoseconds()
		vals["crit.p95_ns"] = res.Crit.P95ReadLatency.Nanoseconds()
		vals["crit.max_ns"] = res.Crit.MaxReadLatency.Nanoseconds()
		vals["row_hit_rate"] = res.RowHitRate
		if s.Platform.Audit {
			vals["audit.violations"] = float64(res.Violations)
			vals["audit.observed"] = float64(res.Observed)
			if res.Observed > 0 {
				vals["audit.conformance"] = float64(res.Observed-res.Violations) / float64(res.Observed)
			}
		}
	case Admission:
		vals["admitted"] = float64(res.Admitted)
		vals["rejected"] = float64(res.Rejected)
		vals["mode_changes"] = float64(res.ModeChanges)
		if total := res.Admitted + res.Rejected; total > 0 {
			vals["rejection_rate"] = float64(res.Rejected) / float64(total)
		}
	}
	rec.Values = vals
	return rec
}

// ConfigOf flattens a spec's configuration axes into the explicit map
// the store fingerprints. It deliberately enumerates fields rather
// than marshaling the spec: RunSpec carries function-valued observer
// hooks (MetricsSink) that neither serialize nor belong in an
// experiment's identity, and the fingerprint must not shift when an
// observer is armed.
func ConfigOf(s Spec) map[string]string {
	switch s.Kind {
	case Contention:
		p := s.Platform
		return map[string]string{
			"kind":        "contention",
			"mechs":       mechanismsOf(p).String(),
			"hogs":        strconv.Itoa(p.Hogs),
			"workload":    p.HogClass.String(),
			"duration_ns": strconv.FormatFloat(p.Duration.Nanoseconds(), 'g', -1, 64),
			"audit":       strconv.FormatBool(p.Audit),
		}
	case Admission:
		a := s.Admission
		return map[string]string{
			"kind":            "admission",
			"apps":            strconv.Itoa(a.Apps),
			"crit_apps":       strconv.Itoa(a.CritApps),
			"total_bpn":       strconv.FormatFloat(a.TotalBytesPerNS, 'g', -1, 64),
			"crit_bpn":        strconv.FormatFloat(a.CriticalBytesPerNS, 'g', -1, 64),
			"floor_bpn":       strconv.FormatFloat(a.FloorBytesPerNS, 'g', -1, 64),
			"packets_per_app": strconv.Itoa(a.PacketsPerApp),
			"deadline_ns":     strconv.FormatFloat(a.DeadlineNS, 'g', -1, 64),
		}
	}
	return map[string]string{"kind": s.Kind.String()}
}
