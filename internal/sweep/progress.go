package sweep

import "sync"

// ProgressSnapshot is a point-in-time view of a sweep's completion,
// JSON-shaped for the live /progress endpoint.
type ProgressSnapshot struct {
	Total      int    `json:"total"`
	Done       int    `json:"done"`
	Failed     int    `json:"failed"`
	Violations uint64 `json:"violations"`
	// LastLabel is the configuration of the most recently finished run
	// (completion order, which varies with scheduling — informational
	// only, never part of deterministic output).
	LastLabel string `json:"last_label,omitempty"`
}

// Progress tracks per-run sweep completion. Its Observe method is the
// intended RunObserved callback: safe for concurrent use, with
// onUpdate invoked outside the lock after every finished run.
type Progress struct {
	mu         sync.Mutex
	total      int
	done       int
	failed     int
	violations uint64
	lastLabel  string

	onUpdate func(ProgressSnapshot)
}

// NewProgress builds a tracker for total runs; onUpdate (optional)
// fires with a fresh snapshot after each Observe.
func NewProgress(total int, onUpdate func(ProgressSnapshot)) *Progress {
	return &Progress{total: total, onUpdate: onUpdate}
}

// Observe folds one finished run into the tracker.
func (p *Progress) Observe(r Result) {
	p.mu.Lock()
	p.done++
	if r.Failed() {
		p.failed++
	}
	p.violations += r.Violations
	p.lastLabel = r.Spec.Label
	snap := p.snapshotLocked()
	cb := p.onUpdate
	p.mu.Unlock()
	if cb != nil {
		cb(snap)
	}
}

// Snapshot returns the current completion state.
func (p *Progress) Snapshot() ProgressSnapshot {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.snapshotLocked()
}

func (p *Progress) snapshotLocked() ProgressSnapshot {
	return ProgressSnapshot{
		Total:      p.total,
		Done:       p.done,
		Failed:     p.failed,
		Violations: p.violations,
		LastLabel:  p.lastLabel,
	}
}
