package sweep

import (
	"fmt"
	"testing"
)

func TestRunObservedProgress(t *testing.T) {
	specs := make([]Spec, 9)
	for i := range specs {
		specs[i] = Spec{Label: fmt.Sprintf("cfg%d", i%3), Kind: Contention}
	}
	exec := func(s Spec) (Result, error) {
		if s.Label == "cfg2" {
			return Result{}, fmt.Errorf("boom")
		}
		return Result{Violations: 2}, nil
	}

	var updates int
	prog := NewProgress(len(specs), func(ProgressSnapshot) { updates++ })
	// Single worker so the update counter needs no synchronization.
	results := RunObserved(specs, 1, exec, prog.Observe)

	snap := prog.Snapshot()
	if snap.Total != 9 || snap.Done != 9 || snap.Failed != 3 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if snap.Violations != 12 { // 6 successful runs × 2
		t.Fatalf("violations = %d, want 12", snap.Violations)
	}
	if updates != 9 {
		t.Fatalf("onUpdate fired %d times, want 9", updates)
	}
	if snap.LastLabel == "" {
		t.Fatal("LastLabel empty")
	}
	for i, r := range results {
		if r.Spec.Label != specs[i].Label {
			t.Fatalf("result %d out of slot", i)
		}
	}
}

// TestRunObservedConcurrent exercises Progress under the worker pool
// for the race detector.
func TestRunObservedConcurrent(t *testing.T) {
	specs := make([]Spec, 32)
	for i := range specs {
		specs[i] = Spec{Label: fmt.Sprintf("cfg%d", i), Kind: Contention}
	}
	exec := func(Spec) (Result, error) { return Result{Violations: 1}, nil }
	prog := NewProgress(len(specs), nil)
	RunObserved(specs, 8, exec, prog.Observe)
	if snap := prog.Snapshot(); snap.Done != 32 || snap.Violations != 32 {
		t.Fatalf("snapshot = %+v", snap)
	}
}
