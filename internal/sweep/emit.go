package sweep

import (
	"encoding/csv"
	"encoding/json"
	"io"
	"strconv"
)

// WriteJSON emits the summaries as indented JSON. Field order is the
// struct's, group order is the spec order: the bytes are a pure
// function of the results, never of the worker count.
func WriteJSON(w io.Writer, summaries []ConfigSummary) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(summaries)
}

// csvHeader is the fixed CSV column set.
var csvHeader = []string{
	"label", "kind", "mechanisms", "hogs", "workload", "duration_ns",
	"runs", "failures",
	"mean_ns", "p95_ns", "max_ns", "row_hit_rate", "slowdown_p95",
	"violations",
	"admitted", "rejected", "rejection_rate", "mode_changes",
	"failure",
}

// WriteCSV emits the summaries as CSV with a fixed header.
func WriteCSV(w io.Writer, summaries []ConfigSummary) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for _, s := range summaries {
		rec := []string{
			s.Label, s.Kind, s.Mechanisms,
			strconv.Itoa(s.Hogs), s.Workload, strconv.FormatInt(s.DurationNS, 10),
			strconv.Itoa(s.Runs), strconv.Itoa(s.Failures),
			f(s.MeanNS), f(s.P95NS), f(s.MaxNS), f(s.RowHitRate), f(s.SlowdownP95),
			strconv.FormatUint(s.Violations, 10),
			strconv.FormatUint(s.Admitted, 10), strconv.FormatUint(s.Rejected, 10),
			f(s.RejectionRate), f(s.ModeChanges),
			s.Failure,
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
