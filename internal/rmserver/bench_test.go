package rmserver

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"testing"

	"repro/internal/telemetry"
	"repro/internal/wtrace"
)

// The throughput acceptance criterion for the service plane is one
// million admission decisions per second aggregate on the batched
// path. These benchmarks measure it in-process (Fleet.Do with full
// batches, the same path /v1/batch drives after parsing) and via the
// compact wire parser, and TestEmitRMServerBench emits
// BENCH_rmserver.json for the CI gate. The automated floor is set at
// 250k decisions/sec — 4x under target — so a shared single-core CI
// runner cannot flake the job while a real order-of-magnitude
// regression still fails it; the measured number is what the obs
// store tracks.

const benchBatchOps = 8192

// benchOps builds one full batch of register+withdraw pairs over 64
// platforms — the workload cmd/rmload drives, minus HTTP.
func benchOps() []Op {
	ops := make([]Op, 0, benchBatchOps)
	for i := 0; len(ops) < benchBatchOps; i++ {
		plat := fmt.Sprintf("p%d", i%64)
		app := fmt.Sprintf("a%d", i)
		ops = append(ops,
			Op{Kind: OpRegister, Platform: plat, App: app, BurstBytes: 64, DeadlineNS: 1e6},
			Op{Kind: OpWithdraw, Platform: plat, App: app},
		)
	}
	return ops
}

func BenchmarkFleetDoBatched(b *testing.B) {
	f := New(Config{Shards: 4, QueueDepth: 64}, telemetry.NewRegistry())
	defer f.Drain()
	ops := benchOps()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += len(ops) {
		f.Do(ops)
	}
}

// BenchmarkFleetDoTracedOff is the identical workload with a tracer
// attached but head sampling at 0 — the default service deployment.
// The ratio against BenchmarkFleetDoBatched is the tracing-off
// overhead, gated < 3% via the `trace_off.speedup` metric the sentinel
// tracks in BENCH_rmserver.json.
func BenchmarkFleetDoTracedOff(b *testing.B) {
	reg := telemetry.NewRegistry()
	f := New(Config{Shards: 4, QueueDepth: 64}, reg)
	defer f.Drain()
	tr := wtrace.New(wtrace.Config{Sample: 0, Registry: reg, Seed: 1})
	ops := benchOps()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += len(ops) {
		f.DoTraced(ops, tr.StartRequest(""))
	}
}

func BenchmarkParseOpsText(b *testing.B) {
	var buf []byte
	for i := 0; i < benchBatchOps/2; i++ {
		buf = append(buf, fmt.Sprintf("r p%d a%d b 64 1000000\nw p%d a%d\n", i%64, i, i%64, i)...)
	}
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := parseOpsText(newByteReader(buf), benchBatchOps); err != nil {
			b.Fatal(err)
		}
	}
}

type byteReader struct {
	b   []byte
	off int
}

func newByteReader(b []byte) *byteReader { return &byteReader{b: b} }

func (r *byteReader) Read(p []byte) (int, error) {
	if r.off >= len(r.b) {
		return 0, io.EOF
	}
	n := copy(p, r.b[r.off:])
	r.off += n
	return n, nil
}

var benchOut = flag.String("benchout", "", "write rmserver benchmark results as JSON to this file")

// TestEmitRMServerBench measures the batched decision path and writes
// BENCH_rmserver.json when -benchout is given:
//
//	go test ./internal/rmserver/ -run TestEmitRMServerBench -benchout BENCH_rmserver.json
//
// It gates the decisions/sec floor so CI fails on a service-plane
// throughput regression without inspecting numbers.
func TestEmitRMServerBench(t *testing.T) {
	if testing.Short() && *benchOut == "" {
		t.Skip("short mode without -benchout")
	}
	// Best-of-3 on the two sides of the overhead ratio: scheduler or
	// neighbor interference only ever slows a measurement, so the
	// fastest of three is the robust estimator, and the speedup ratio
	// stops jittering with whichever single run got preempted.
	best := func(f func(*testing.B)) testing.BenchmarkResult {
		r := testing.Benchmark(f)
		for i := 0; i < 2; i++ {
			if n := testing.Benchmark(f); n.NsPerOp() < r.NsPerOp() {
				r = n
			}
		}
		return r
	}
	do := best(BenchmarkFleetDoBatched)
	parse := testing.Benchmark(BenchmarkParseOpsText)
	tracedOff := best(BenchmarkFleetDoTracedOff)

	decPerSec := 1e9 / float64(do.NsPerOp())
	// One parse op decodes a whole batch.
	parsedOpsPerSec := 1e9 / float64(parse.NsPerOp()) * benchBatchOps
	tracedOffPerSec := 1e9 / float64(tracedOff.NsPerOp())
	// Same-process ratio: decisions/sec with a sample-0 tracer attached
	// over decisions/sec without one. A cross-machine absolute floor
	// cannot gate a 3% budget, but this ratio can — both measurements
	// share the process, the core, and the thermal state. A ratio above
	// parity is measurement noise (a disabled tracer cannot speed up
	// decisions), so it is capped at 1.0: the committed baseline then
	// anchors at parity and the sentinel's 3% band is exactly the
	// overhead budget, instead of wobbling around whichever side of 1.0
	// the baseline machine happened to land on.
	traceOffSpeedup := min(tracedOffPerSec/decPerSec, 1.0)

	t.Logf("fleet.Do batched: %d ns/decision, %.0f decisions/sec, %d allocs/decision",
		do.NsPerOp(), decPerSec, do.AllocsPerOp())
	t.Logf("compact parse:    %.0f ops/sec decoded (%d ns per %d-op batch)",
		parsedOpsPerSec, parse.NsPerOp(), benchBatchOps)
	t.Logf("trace off:        %.0f decisions/sec with sample-0 tracer (speedup %.4f)",
		tracedOffPerSec, traceOffSpeedup)

	// The sample-0 tracer must cost < 3% of batched throughput. 5% here
	// absorbs same-process measurement noise; the sentinel gates the
	// committed trajectory at 3%.
	if traceOffSpeedup < 0.95 {
		t.Errorf("sample-0 tracing costs %.1f%% of batched throughput, budget 3%%",
			(1-traceOffSpeedup)*100)
	}

	// Target: >= 1e6 decisions/sec on the batched path (see the
	// committed BENCH_rmserver.json for measured numbers). CI floor
	// sits 4x under target to absorb shared-runner noise.
	if decPerSec < 250_000 {
		t.Errorf("batched path at %.0f decisions/sec, want >= 1e6 (CI floor 2.5e5)", decPerSec)
	}
	if parsedOpsPerSec < 250_000 {
		t.Errorf("compact parse at %.0f ops/sec, floor 2.5e5", parsedOpsPerSec)
	}

	if *benchOut == "" {
		return
	}
	out := map[string]interface{}{
		"benchmark": "rmserver_service_plane",
		"batch_ops": benchBatchOps,
		"fleet_do_batched": map[string]float64{
			"ns_per_decision":     float64(do.NsPerOp()),
			"decisions_per_sec":   decPerSec,
			"allocs_per_decision": float64(do.AllocsPerOp()),
		},
		"compact_parse": map[string]float64{
			"ns_per_batch":     float64(parse.NsPerOp()),
			"ops_per_sec":      parsedOpsPerSec,
			"mb_per_sec":       float64(parse.Bytes) / float64(parse.NsPerOp()) * 1e3,
			"allocs_per_batch": float64(parse.AllocsPerOp()),
		},
		"trace_off": map[string]float64{
			"decisions_per_sec": tracedOffPerSec,
			"speedup":           traceOffSpeedup,
		},
		"target_decisions_per_sec":   1e6,
		"ci_floor_decisions_per_sec": 250_000.0,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*benchOut, data, 0o644); err != nil {
		t.Fatal(err)
	}
}
