package rmserver

import (
	"fmt"
	"sort"
)

// vnodesPerShard is the number of virtual nodes each shard contributes
// to the hash ring. More vnodes smooth the key distribution; 64 keeps
// the ring small (shards × 64 points) while holding per-shard load
// within a few percent of uniform.
const vnodesPerShard = 64

// ring is a consistent-hash ring mapping platform IDs onto shards.
// Consistent hashing (rather than id % n) keeps almost all platforms
// on their shard when the fleet is resized — only the keys between a
// removed vnode and its predecessor move — so a future rebalance
// invalidates the minimum amount of per-shard platform state.
type ring struct {
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash  uint64
	shard int
}

// newRing builds the ring for n shards. Vnode positions are FNV-1a
// hashes of "shard/<i>/vnode/<v>" — deterministic, so every process
// building a ring for the same n routes identically.
func newRing(n int) *ring {
	r := &ring{points: make([]ringPoint, 0, n*vnodesPerShard)}
	for i := 0; i < n; i++ {
		for v := 0; v < vnodesPerShard; v++ {
			r.points = append(r.points, ringPoint{
				hash:  hash64(fmt.Sprintf("shard/%d/vnode/%d", i, v)),
				shard: i,
			})
		}
	}
	sort.Slice(r.points, func(a, b int) bool { return r.points[a].hash < r.points[b].hash })
	return r
}

// shardOf maps a platform ID to its shard: the first vnode clockwise
// from the key's hash.
func (r *ring) shardOf(platform string) int {
	h := hash64(platform)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].shard
}

// hash64 is FNV-1a over the string, inlined so the per-op routing
// path does not allocate a byte-slice copy, followed by a 64-bit
// finalizer (MurmurHash3's fmix64). Raw FNV clusters badly on the
// near-identical strings a ring hashes — sequential vnode labels,
// "platform-<n>" IDs — and a clustered ring routes shards wildly
// unevenly; the finalizer's avalanche restores a near-uniform spread.
func hash64(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}
