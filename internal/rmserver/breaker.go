package rmserver

import (
	"sync"
	"time"
)

// BreakerConfig tunes the overload circuit breaker.
type BreakerConfig struct {
	// Window is the sliding observation window (default 1s).
	Window time.Duration
	// MinRequests is the minimum traffic inside the window before the
	// throttle ratio is trusted (default 32): a single throttled probe
	// at dawn must not trip the breaker.
	MinRequests int
	// TripRatio opens the breaker when throttled/total inside the
	// window reaches it (default 0.5).
	TripRatio float64
	// Cooldown is how long an open breaker rejects outright before
	// admitting half-open probes (default 2s).
	Cooldown time.Duration
	// HalfOpenProbes is how many consecutive un-throttled probes close
	// the breaker again (default 8); one throttled probe re-opens it.
	HalfOpenProbes int

	// now is a test hook for virtual time; defaults to time.Now.
	now func() time.Time
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Window <= 0 {
		c.Window = time.Second
	}
	if c.MinRequests <= 0 {
		c.MinRequests = 32
	}
	if c.TripRatio <= 0 {
		c.TripRatio = 0.5
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 2 * time.Second
	}
	if c.HalfOpenProbes <= 0 {
		c.HalfOpenProbes = 8
	}
	if c.now == nil {
		c.now = time.Now
	}
	return c
}

// breakerState enumerates the classic three-state machine.
type breakerState uint8

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerClosed:
		return "closed"
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// breaker is the service's overload circuit breaker. It watches the
// *throttle* rate — the fraction of requests shed by full shard
// queues — rather than errors: in an admission-control plane the
// failure mode under overload is queue saturation, and the cheapest
// place to shed is the front door, before any parsing or enqueueing.
//
// Closed: all requests pass; throttle outcomes feed a sliding window.
// When the windowed throttle ratio reaches TripRatio (with at least
// MinRequests observed) the breaker opens. Open: every request is
// rejected immediately for Cooldown, then the breaker half-opens.
// Half-open: requests pass as probes; HalfOpenProbes consecutive
// un-throttled outcomes close it, one throttled outcome re-opens it.
type breaker struct {
	cfg BreakerConfig

	mu        sync.Mutex
	state     breakerState
	openedAt  time.Time
	probeOKs  int
	opens     uint64 // cumulative open transitions
	buckets   [breakerBuckets]breakerBucket
	bucketDur time.Duration
}

// The sliding window is approximated by a ring of sub-buckets, rotated
// by wall time — O(1) memory, no per-request timestamp queue.
const breakerBuckets = 8

type breakerBucket struct {
	epoch     int64 // bucket index since the zero time; stale entries are reset lazily
	total     int
	throttled int
}

func newBreaker(cfg BreakerConfig) *breaker {
	cfg = cfg.withDefaults()
	return &breaker{cfg: cfg, bucketDur: cfg.Window / breakerBuckets}
}

// Allow reports whether a request may proceed. An open breaker past
// its cooldown transitions to half-open and admits the caller as a
// probe.
func (b *breaker) Allow() bool {
	now := b.cfg.now()
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed, breakerHalfOpen:
		return true
	default: // open
		if now.Sub(b.openedAt) >= b.cfg.Cooldown {
			b.state = breakerHalfOpen
			b.probeOKs = 0
			return true
		}
		return false
	}
}

// Record feeds one admitted request's outcome back into the breaker.
func (b *breaker) Record(throttled bool) {
	now := b.cfg.now()
	b.mu.Lock()
	defer b.mu.Unlock()

	switch b.state {
	case breakerHalfOpen:
		if throttled {
			b.openLocked(now)
			return
		}
		b.probeOKs++
		if b.probeOKs >= b.cfg.HalfOpenProbes {
			b.state = breakerClosed
			for i := range b.buckets {
				b.buckets[i] = breakerBucket{}
			}
		}
		return
	case breakerOpen:
		return
	}

	// Closed: rotate the window and accumulate.
	epoch := now.UnixNano() / int64(b.bucketDur)
	bk := &b.buckets[epoch%breakerBuckets]
	if bk.epoch != epoch {
		*bk = breakerBucket{epoch: epoch}
	}
	bk.total++
	if throttled {
		bk.throttled++
	}

	total, thr := 0, 0
	for i := range b.buckets {
		if epoch-b.buckets[i].epoch < breakerBuckets {
			total += b.buckets[i].total
			thr += b.buckets[i].throttled
		}
	}
	if total >= b.cfg.MinRequests && float64(thr) >= b.cfg.TripRatio*float64(total) {
		b.openLocked(now)
	}
}

func (b *breaker) openLocked(now time.Time) {
	b.state = breakerOpen
	b.openedAt = now
	b.opens++
	for i := range b.buckets {
		b.buckets[i] = breakerBucket{}
	}
}

// State returns the current state and the cumulative open count.
func (b *breaker) State() (breakerState, uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state, b.opens
}
