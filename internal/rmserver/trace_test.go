package rmserver

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/telemetry"
	"repro/internal/wtrace"
)

// testTracedService builds a fleet with head sampling at 1.0 so every
// request produces a complete trace.
func testTracedService(t *testing.T, cfg Config) (*Fleet, *wtrace.Tracer, *httptest.Server) {
	t.Helper()
	reg := telemetry.NewRegistry()
	f := New(cfg, reg)
	tr := wtrace.New(wtrace.Config{Sample: 1, Seed: 1234, RingSpans: 1 << 14, Registry: reg})
	srv := httptest.NewServer(NewTracedHandler(f, tr))
	t.Cleanup(func() {
		srv.Close()
		f.Drain()
	})
	return f, tr, srv
}

func spanCounts(spans []wtrace.Span) map[string]int {
	m := make(map[string]int)
	for _, s := range spans {
		name := s.Name
		if strings.HasPrefix(name, "op.") {
			name = "op"
		}
		m[name]++
	}
	return m
}

// TestTraceSpanConservation pins the span arithmetic per request path:
// accepted singles, batches, parse errors, and breaker rejections each
// emit exactly their expected span set, and the shard-level spans
// reconcile with the fleet's own counters.
func TestTraceSpanConservation(t *testing.T) {
	f, tr, srv := testTracedService(t, Config{
		Shards: 1,
		Breaker: BreakerConfig{
			Window:         time.Hour,
			MinRequests:    1,
			TripRatio:      0.01,
			Cooldown:       time.Hour,
			HalfOpenProbes: 1,
		},
	})

	// 5 accepted single ops: request + parse + queue_wait + decision +
	// op + encode = 6 spans each.
	for i := 0; i < 5; i++ {
		resp, body := postJSON(t, srv.URL+"/v1/register",
			fmt.Sprintf(`{"platform":"p%d","app":"a","burst_bytes":1,"deadline_ns":1e6}`, i))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("register %d: %d %s", i, resp.StatusCode, body)
		}
		if resp.Header.Get("traceparent") == "" {
			t.Fatal("sampled response missing traceparent header")
		}
	}
	// 1 parse error: request + parse only.
	if resp, _ := postJSON(t, srv.URL+"/v1/register", `garbage`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("parse error returned %d", resp.StatusCode)
	}
	// 1 batch of 3 ops on one shard: request + parse + queue_wait +
	// decision + 3 ops + encode = 8 spans.
	resp, body := postJSON(t, srv.URL+"/v1/batch", `{"ops":[
		{"kind":"register","platform":"p0","app":"b","burst_bytes":1,"deadline_ns":1e6},
		{"kind":"register","platform":"p1","app":"b","burst_bytes":1,"deadline_ns":1e6},
		{"kind":"withdraw","platform":"p0","app":"b"}]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: %d %s", resp.StatusCode, body)
	}
	// 1 stats scrape: root span only.
	if _, err := http.Get(srv.URL + "/v1/stats"); err != nil {
		t.Fatal(err)
	}
	// Trip the breaker, then one request rejected at the front door:
	// root span only, with the rejection as span attributes.
	f.breaker.Record(true)
	f.breaker.Record(true)
	resp, _ = postJSON(t, srv.URL+"/v1/register", `{"platform":"p0","app":"z"}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("breaker-open register returned %d, want 429", resp.StatusCode)
	}

	spans := tr.Snapshot()
	got := spanCounts(spans)
	want := map[string]int{
		"request":    9,     // 5 singles + error + batch + stats + breaker-open
		"parse":      7,     // 5 singles + error + batch
		"queue_wait": 6,     // 5 singles + batch (1 group)
		"decision":   6,     //
		"op":         5 + 3, // singles + batch ops
		"encode":     5 + 1, // singles + batch
	}
	for name, n := range want {
		if got[name] != n {
			t.Errorf("%s spans = %d, want %d (all: %v)", name, got[name], n, got)
		}
	}

	// Cross-check against the fleet's own counters: every accepted
	// batch is one decision span, every executed op one op span, every
	// sampled request one root span.
	st := f.Snapshot()
	if got["decision"] != int(st.Batches) {
		t.Errorf("decision spans %d != batches %d", got["decision"], st.Batches)
	}
	if got["op"] != int(st.Decisions) {
		t.Errorf("op spans %d != decisions %d", got["op"], st.Decisions)
	}
	reqs := f.Registry().Counter("wtrace_requests").Value()
	if got["request"] != int(reqs) {
		t.Errorf("request spans %d != wtrace_requests %d", got["request"], reqs)
	}

	// The breaker rejection is attributed on its root span.
	var breakerSpan *wtrace.Span
	for i := range spans {
		for j := 0; j+1 < len(spans[i].Attrs); j += 2 {
			if spans[i].Attrs[j] == "outcome" && spans[i].Attrs[j+1] == "breaker_open" {
				breakerSpan = &spans[i]
			}
		}
	}
	if breakerSpan == nil || breakerSpan.Name != "request" {
		t.Fatalf("no root span carries outcome=breaker_open (got %+v)", breakerSpan)
	}
}

// TestTraceShedOutcome drives a full shard queue and checks shed
// portions still record a queue_wait span with outcome=shed, keeping
// the conservation arithmetic intact on the 429 path.
func TestTraceShedOutcome(t *testing.T) {
	_, tr, srv := testTracedService(t, Config{
		Shards:        1,
		QueueDepth:    1,
		DecisionDelay: 2 * time.Millisecond,
		Breaker: BreakerConfig{
			Window:         time.Hour,
			MinRequests:    1 << 30, // never trips: isolate queue shedding
			TripRatio:      1,
			Cooldown:       time.Minute,
			HalfOpenProbes: 1,
		},
	})

	var wg sync.WaitGroup
	deadline := time.Now().Add(time.Second)
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for time.Now().Before(deadline) {
				var sb strings.Builder
				for i := 0; i < 8; i++ {
					fmt.Fprintf(&sb, "r p0 c%dapp%d b 1 0\n", c, i)
				}
				resp, err := http.Post(srv.URL+"/v1/batch", OpsContentType, strings.NewReader(sb.String()))
				if err == nil {
					resp.Body.Close()
				}
			}
		}(c)
	}
	wg.Wait()

	shed, served := 0, 0
	for _, s := range tr.Snapshot() {
		if s.Name != "queue_wait" {
			continue
		}
		isShed := false
		for j := 0; j+1 < len(s.Attrs); j += 2 {
			if s.Attrs[j] == "outcome" && s.Attrs[j+1] == "shed" {
				isShed = true
			}
		}
		if isShed {
			shed++
		} else {
			served++
		}
	}
	if shed == 0 {
		t.Error("overload produced no queue_wait spans with outcome=shed")
	}
	if served == 0 {
		t.Error("overload produced no served queue_wait spans")
	}
}

// TestTraceExemplarResolvesToTrace is the acceptance path: the p99
// exemplar on /metrics names a trace id that resolves to a complete
// multi-span trace at /v1/traces whose root duration bounds both the
// sum of its direct children and the observed request latency.
func TestTraceExemplarResolvesToTrace(t *testing.T) {
	f, _, srv := testTracedService(t, Config{Shards: 2})
	for i := 0; i < 20; i++ {
		resp, body := postJSON(t, srv.URL+"/v1/register",
			fmt.Sprintf(`{"platform":"q%d","app":"a","burst_bytes":1,"deadline_ns":1e6}`, i))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("register %d: %d %s", i, resp.StatusCode, body)
		}
	}

	var om strings.Builder
	if err := f.Registry().WriteOpenMetrics(&om); err != nil {
		t.Fatal(err)
	}
	// Find the exemplar on the http-latency p99 line.
	var traceID string
	var exemplarVal int64
	for _, line := range strings.Split(om.String(), "\n") {
		if !strings.HasPrefix(line, `rmserver_http_latency_ns{quantile="0.99"}`) {
			continue
		}
		i := strings.Index(line, `# {trace_id="`)
		if i < 0 {
			t.Fatalf("p99 line has no exemplar: %q", line)
		}
		rest := line[i+len(`# {trace_id="`):]
		j := strings.IndexByte(rest, '"')
		traceID = rest[:j]
		fields := strings.Fields(rest[j+2:])
		fmt.Sscan(fields[0], &exemplarVal)
	}
	if traceID == "" {
		t.Fatal("no exemplar found on rmserver_http_latency_ns p99")
	}

	// Resolve it against the live trace endpoint.
	resp, err := http.Get(srv.URL + "/v1/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			Args struct {
				TraceID  string `json:"trace_id"`
				SpanID   string `json:"span_id"`
				ParentID string `json:"parent_id"`
			} `json:"args"`
		} `json:"traceEvents"`
		Dropped int `json:"dropped"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("/v1/traces is not valid JSON: %v", err)
	}
	if doc.Dropped != 0 {
		t.Fatalf("trace ring dropped %d spans with a 16k ring", doc.Dropped)
	}

	var rootDurUS, childSumUS float64
	var rootSpanID string
	spansInTrace := 0
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" || ev.Args.TraceID != traceID {
			continue
		}
		spansInTrace++
		if ev.Name == "request" {
			rootDurUS = ev.Dur
			rootSpanID = ev.Args.SpanID
		}
	}
	if spansInTrace != 6 {
		t.Fatalf("exemplar trace %s has %d spans, want 6", traceID, spansInTrace)
	}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" && ev.Args.TraceID == traceID && ev.Args.ParentID == rootSpanID {
			childSumUS += ev.Dur
		}
	}
	if rootDurUS <= 0 {
		t.Fatal("exemplar trace has no request root span")
	}
	// Direct children partition the request path sequentially, so
	// their durations must fit inside the root.
	if childSumUS > rootDurUS*1.001 {
		t.Errorf("children sum %.3fus exceeds root %.3fus", childSumUS, rootDurUS)
	}
	// And the root covers the measured request latency (the exemplar
	// value) — the sum-to-within-bounds acceptance check.
	if rootUS := float64(exemplarVal) / 1000; rootDurUS < rootUS*0.5 {
		t.Errorf("root %.3fus does not cover exemplar latency %.3fus", rootDurUS, rootUS)
	}
}

// TestTraceInboundTraceparentJoins checks W3C context propagation over
// HTTP: the response echoes the inbound trace id and the recorded root
// span parents on the inbound span id.
func TestTraceInboundTraceparentJoins(t *testing.T) {
	_, tr, srv := testTracedService(t, Config{Shards: 1})
	req, _ := http.NewRequest("POST", srv.URL+"/v1/register",
		strings.NewReader(`{"platform":"p","app":"a","burst_bytes":1,"deadline_ns":1e6}`))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("traceparent", "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	tp := resp.Header.Get("traceparent")
	if !strings.HasPrefix(tp, "00-4bf92f3577b34da6a3ce929d0e0e4736-") {
		t.Fatalf("response traceparent %q did not join inbound trace", tp)
	}
	joined := false
	for _, s := range tr.Snapshot() {
		if s.Name == "request" && s.TraceID.String() == "4bf92f3577b34da6a3ce929d0e0e4736" &&
			s.Parent.String() == "00f067aa0ba902b7" {
			joined = true
		}
	}
	if !joined {
		t.Fatal("no root span joined the inbound trace context")
	}
}

// TestTracePerShardMetrics pins the labeled per-shard families and the
// /v1/stats per-shard detail (the satellite task).
func TestTracePerShardMetrics(t *testing.T) {
	f, _, srv := testTracedService(t, Config{Shards: 2})
	for i := 0; i < 16; i++ {
		postJSON(t, srv.URL+"/v1/register",
			fmt.Sprintf(`{"platform":"s%d","app":"a","burst_bytes":1,"deadline_ns":1e6}`, i))
	}

	var om strings.Builder
	if err := f.Registry().WriteOpenMetrics(&om); err != nil {
		t.Fatal(err)
	}
	out := om.String()
	for _, want := range []string{
		`rmserver_shard_queue_wait_ns{shard="0",quantile="0.99"} `,
		`rmserver_shard_queue_wait_ns{shard="1",quantile="0.5"} `,
		`rmserver_shard_queue_wait_ns_count{shard="0"} `,
		`rmserver_shard_queue_depth{shard="0"} `,
		`rmserver_shard_queue_depth{shard="1"} `,
		`rmserver_shard_decisions_total{shard="0"} `,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	if got := strings.Count(out, "# TYPE rmserver_shard_queue_wait_ns summary"); got != 1 {
		t.Errorf("queue-wait TYPE emitted %d times, want 1", got)
	}

	st := f.Snapshot()
	if len(st.PerShard) != 2 {
		t.Fatalf("PerShard has %d entries, want 2", len(st.PerShard))
	}
	var perShardTotal uint64
	for _, s := range st.PerShard {
		perShardTotal += s.Decisions
	}
	if perShardTotal != st.Decisions {
		t.Errorf("per-shard decisions %d != fleet decisions %d", perShardTotal, st.Decisions)
	}
}

// TestTraceScrapeUnderLoad hits /v1/traces continuously while traced
// requests flow — the satellite -race coverage for live scrapes
// through the full HTTP stack.
func TestTraceScrapeUnderLoad(t *testing.T) {
	_, _, srv := testTracedService(t, Config{Shards: 2})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				postJSON(t, srv.URL+"/v1/register",
					fmt.Sprintf(`{"platform":"l%d_%d","app":"a","burst_bytes":1,"deadline_ns":1e6}`, c, i))
			}
		}(c)
	}
	var scrapeWG sync.WaitGroup
	scrapeWG.Add(1)
	go func() {
		defer scrapeWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			resp, err := http.Get(srv.URL + "/v1/traces")
			if err != nil {
				continue
			}
			var doc map[string]any
			if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
				t.Errorf("live scrape returned invalid JSON: %v", err)
			}
			resp.Body.Close()
		}
	}()
	wg.Wait()
	close(stop)
	scrapeWG.Wait()
}
