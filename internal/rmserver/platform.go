package rmserver

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/admission"
	"repro/internal/netcalc"
)

// maxBoundMemo bounds a platform's (burst, rate) → delay-bound memo.
// Real workloads revisit a small set of rates (modes oscillate), so
// the memo stays tiny; the cap only guards against adversarial churn
// over unbounded distinct rates.
const maxBoundMemo = 8192

// appEntry is one active application on a platform.
type appEntry struct {
	name  string
	crit  admission.Criticality
	burst float64
	// deadline <= 0 marks a best-effort app with no analytic
	// requirement — admitted unconditionally, like the simulated RM's
	// apps without a Requirement.
	deadline float64
}

// boundKey memoizes delay bounds per (burst, rate): with the service
// latency fixed per platform, the Network-Calculus bound of a
// token-bucket arrival through the rate-latency server depends on
// nothing else. All apps sharing a requirement and a rate therefore
// share one memo entry — the service-plane analogue of
// admission.DelayBoundCheck's per-app memo, collapsed further.
type boundKey struct {
	burst float64
	rate  float64
}

// platform is one admitted-set state machine, owned by exactly one
// shard goroutine (never locked — the shard loop serializes access,
// preserving the RM's "processed in arrival order" semantics).
type platform struct {
	name   string
	spec   PlatformSpec
	apps   []appEntry // sorted by name
	crits  int        // count of Critical entries
	bounds map[boundKey]float64
	cache  *netcalc.Cache // the owning shard's operator cache
}

func newPlatform(name string, spec PlatformSpec, cache *netcalc.Cache) *platform {
	return &platform{
		name:   name,
		spec:   spec,
		bounds: make(map[boundKey]float64),
		cache:  cache,
	}
}

// find returns the index of app in the sorted active set and whether
// it is present.
func (p *platform) find(app string) (int, bool) {
	i := sort.Search(len(p.apps), func(i int) bool { return p.apps[i].name >= app })
	return i, i < len(p.apps) && p.apps[i].name == app
}

// rates computes the policy's per-class rates for a mode of n apps
// with c critical among them. Returned as (critical, bestEffort) —
// under the symmetric policy both classes share one uniform rate.
// This is admission.Symmetric/NonSymmetric.Rates specialized to two
// classes, with no per-call map allocation: the decision path runs
// millions of times per second.
func (p *platform) rates(n, c int) (critRate, beRate float64) {
	if n == 0 {
		return 0, 0
	}
	switch p.spec.Policy {
	case "non-symmetric":
		critRate = p.spec.CriticalBytesPerNS
		be := n - c
		if be > 0 {
			beRate = (p.spec.TotalBytesPerNS - float64(c)*critRate) / float64(be)
			if beRate < p.spec.FloorBytesPerNS {
				beRate = p.spec.FloorBytesPerNS
			}
		}
		return critRate, beRate
	default: // symmetric
		r := p.spec.TotalBytesPerNS / float64(n)
		return r, r
	}
}

// bound returns the memoized Network-Calculus delay bound of a
// (burst, rate) token bucket through the platform's rate-latency
// service at that rate.
func (p *platform) bound(burst, rate float64) float64 {
	k := boundKey{burst, rate}
	if b, ok := p.bounds[k]; ok {
		return b
	}
	b := p.cache.DelayBound(
		netcalc.TokenBucket(burst, rate),
		netcalc.RateLatency(rate, p.spec.ServiceLatencyNS),
	)
	if len(p.bounds) >= maxBoundMemo {
		clear(p.bounds)
	}
	p.bounds[k] = b
	return b
}

// checkAll validates every app's deadline under a mode of n apps with
// c critical. Returns "" when all bounds hold, else the rejection
// reason naming the first violated app — the same failure the
// simulated RM's DelayBoundCheck reports.
func (p *platform) checkAll(n, c int) string {
	critRate, beRate := p.rates(n, c)
	for i := range p.apps {
		a := &p.apps[i]
		if a.deadline <= 0 {
			continue
		}
		rate := beRate
		if a.crit == admission.Critical {
			rate = critRate
		}
		if rate <= 0 {
			return fmt.Sprintf("%s would receive no bandwidth", a.name)
		}
		if d := p.bound(a.burst, rate); math.IsInf(d, 1) || d > a.deadline {
			return fmt.Sprintf("%s delay bound %.1f ns exceeds deadline %.1f ns", a.name, d, a.deadline)
		}
	}
	return ""
}

// register admits or rejects one application: tentatively join the
// active set, run the analytic admission test over the post-admission
// rate assignment, and roll back on violation. Mirrors the simulated
// RM's activation path (rm.next's ActMsg case).
func (p *platform) register(op *Op) Decision {
	if p.spec.MaxApps > 0 && len(p.apps) >= p.spec.MaxApps {
		return Decision{Mode: len(p.apps), Reason: "platform full"}
	}
	i, dup := p.find(op.App)
	if dup {
		return Decision{Mode: len(p.apps), Reason: "duplicate registration"}
	}
	p.apps = append(p.apps, appEntry{})
	copy(p.apps[i+1:], p.apps[i:])
	p.apps[i] = appEntry{name: op.App, crit: op.Crit, burst: op.BurstBytes, deadline: op.DeadlineNS}
	if op.Crit == admission.Critical {
		p.crits++
	}
	if reason := p.checkAll(len(p.apps), p.crits); reason != "" {
		// Reject: restore the previous mode.
		if op.Crit == admission.Critical {
			p.crits--
		}
		copy(p.apps[i:], p.apps[i+1:])
		p.apps = p.apps[:len(p.apps)-1]
		return Decision{Mode: len(p.apps), Reason: reason}
	}
	critRate, beRate := p.rates(len(p.apps), p.crits)
	rate := beRate
	if op.Crit == admission.Critical {
		rate = critRate
	}
	return Decision{OK: true, Mode: len(p.apps), RateBytesPerNS: rate}
}

// withdraw removes an application (the terMsg path). Unknown apps are
// rejected, matching the simulated RM's accounting.
func (p *platform) withdraw(op *Op) Decision {
	i, ok := p.find(op.App)
	if !ok {
		return Decision{Mode: len(p.apps), Reason: "not registered"}
	}
	if p.apps[i].crit == admission.Critical {
		p.crits--
	}
	copy(p.apps[i:], p.apps[i+1:])
	p.apps = p.apps[:len(p.apps)-1]
	return Decision{OK: true, Mode: len(p.apps)}
}

// modeChange swaps the platform's policy envelope, revalidating every
// active application's bound under the new spec before committing; a
// violation rolls the spec back, leaving the previous mode intact —
// an online reconfiguration must not break admitted guarantees.
func (p *platform) modeChange(spec PlatformSpec) Decision {
	if err := spec.Validate(); err != nil {
		return Decision{Mode: len(p.apps), Reason: err.Error()}
	}
	if spec.MaxApps > 0 && len(p.apps) > spec.MaxApps {
		return Decision{Mode: len(p.apps),
			Reason: fmt.Sprintf("%d active apps exceed new cap %d", len(p.apps), spec.MaxApps)}
	}
	old := p.spec
	p.spec = spec
	// The memo is keyed (burst, rate) with the service latency
	// implicit; a new latency invalidates it wholesale.
	if spec.ServiceLatencyNS != old.ServiceLatencyNS {
		clear(p.bounds)
	}
	if reason := p.checkAll(len(p.apps), p.crits); reason != "" {
		p.spec = old
		if spec.ServiceLatencyNS != old.ServiceLatencyNS {
			clear(p.bounds)
		}
		return Decision{Mode: len(p.apps), Reason: "mode change would violate " + reason}
	}
	return Decision{OK: true, Mode: len(p.apps)}
}
