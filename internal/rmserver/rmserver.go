// Package rmserver is the admission-control service plane: a
// network-facing front for a fleet of Resource Manager instances, the
// online half of the paper's Section V architecture. Where
// internal/admission runs the RM protocol inside the simulated NoC,
// rmserver runs the same analytic admission decision (Network-Calculus
// delay bounds, Section IV-A, via internal/netcalc) as a service:
// register/withdraw/mode-change requests arrive over HTTP, platforms
// are partitioned onto shards by consistent hashing, and each shard is
// one single-goroutine RM loop — so every platform's decision sequence
// is processed in arrival order, deterministically, exactly like the
// simulated RM serializes activations and terminations.
//
// The plane is built for overload, not just load:
//
//   - per-shard bounded queues: a full shard sheds the work with an
//     explicit throttle (HTTP 429 + Retry-After), never by queueing
//     without bound;
//   - a circuit breaker watching the throttle rate: sustained overload
//     flips the service to reject-by-default at the front door
//     (immediate 429s without parsing or enqueueing), with a
//     half-open probe phase to recover;
//   - batching: a batch request crosses the shard boundary once per
//     shard, so per-decision overhead amortizes — the path that
//     reaches millions of decisions per second;
//   - graceful drain: Drain() completes every enqueued decision before
//     the loops exit, so SIGTERM drops no accepted work.
//
// Observability reuses the existing planes: per-endpoint latency
// histograms and decision counters live in a telemetry.Registry
// (scraped as OpenMetrics via audit.Server), and load harnesses
// persist session records into the internal/obs store where the SLO
// engine (obs.ServiceSLOs) and regression sentinel judge them.
package rmserver

import (
	"fmt"
	"time"

	"repro/internal/admission"
)

// OpKind enumerates the service's decision operations.
type OpKind uint8

// The three operations of the service API. Register and Withdraw are
// the paper's actMsg/terMsg; ModeChange reconfigures a platform's
// policy envelope online (budget, criticality guarantees, service
// latency), revalidating every active application before committing.
const (
	OpRegister OpKind = iota
	OpWithdraw
	OpModeChange
)

// String implements fmt.Stringer.
func (k OpKind) String() string {
	switch k {
	case OpRegister:
		return "register"
	case OpWithdraw:
		return "withdraw"
	case OpModeChange:
		return "modechange"
	}
	return fmt.Sprintf("op(%d)", int(k))
}

// Op is one decision request. Platform routes it to a shard; the rest
// is the operation payload.
type Op struct {
	Kind     OpKind
	Platform string
	App      string
	Crit     admission.Criticality
	// BurstBytes/DeadlineNS declare the app's traffic contract and QoS
	// target (register only). DeadlineNS == 0 registers a best-effort
	// app with no analytic requirement.
	BurstBytes float64
	DeadlineNS float64
	// Spec is the mode-change payload (OpModeChange only).
	Spec *PlatformSpec
}

// Decision is one operation's outcome.
type Decision struct {
	// OK reports the operation succeeded: admitted (register), removed
	// (withdraw), committed (mode change).
	OK bool `json:"ok"`
	// Mode is the platform's mode after the operation — its number of
	// active applications, the paper's mode definition.
	Mode int `json:"mode"`
	// RateBytesPerNS is the injection rate assigned to the app by the
	// platform's policy (register only).
	RateBytesPerNS float64 `json:"rate_bytes_per_ns,omitempty"`
	// Reason explains a rejection.
	Reason string `json:"reason,omitempty"`
	// Throttled marks an operation shed by backpressure before any
	// shard saw it; OK is false and the client should retry later.
	Throttled bool `json:"throttled,omitempty"`
}

// PlatformSpec is a platform's policy envelope: how the total budget
// is shared (the paper's symmetric/non-symmetric guarantee modes) and
// the fixed latency of the platform's service path (NoC traversal +
// DRAM worst-case delay), which the analytic bound folds in.
type PlatformSpec struct {
	// Policy is "symmetric" or "non-symmetric".
	Policy string `json:"policy"`
	// TotalBytesPerNS is the platform's injection budget.
	TotalBytesPerNS float64 `json:"total_bytes_per_ns"`
	// CriticalBytesPerNS is the guaranteed per-app rate for critical
	// apps (non-symmetric policy).
	CriticalBytesPerNS float64 `json:"critical_bytes_per_ns,omitempty"`
	// FloorBytesPerNS keeps best-effort apps from starving entirely
	// (non-symmetric policy).
	FloorBytesPerNS float64 `json:"floor_bytes_per_ns,omitempty"`
	// ServiceLatencyNS is the fixed latency of the platform's service
	// curve (rate-latency server at the assigned rate).
	ServiceLatencyNS float64 `json:"service_latency_ns"`
	// MaxApps caps the platform's mode (0 = uncapped).
	MaxApps int `json:"max_apps,omitempty"`
}

// Validate checks the spec.
func (p PlatformSpec) Validate() error {
	switch p.Policy {
	case "symmetric", "non-symmetric":
	default:
		return fmt.Errorf("rmserver: unknown policy %q", p.Policy)
	}
	if p.TotalBytesPerNS <= 0 {
		return fmt.Errorf("rmserver: platform budget must be positive")
	}
	if p.ServiceLatencyNS < 0 {
		return fmt.Errorf("rmserver: negative service latency")
	}
	if p.Policy == "non-symmetric" && p.CriticalBytesPerNS <= 0 {
		return fmt.Errorf("rmserver: non-symmetric policy needs a critical rate")
	}
	return nil
}

// Config parameterizes a Fleet.
type Config struct {
	// Shards is the number of RM loops (default 4).
	Shards int
	// QueueDepth bounds each shard's pending batch queue (default 64).
	QueueDepth int
	// MaxBatch caps the operations accepted in one batch request
	// (default 8192).
	MaxBatch int
	// DefaultPlatform configures platforms created implicitly by their
	// first register (zero value: symmetric, budget 1 B/ns, 500 ns
	// service latency).
	DefaultPlatform PlatformSpec
	// Breaker tunes the overload circuit breaker.
	Breaker BreakerConfig

	// DecisionDelay adds an artificial sleep to every decision inside
	// the shard loop. It exists for overload drills: tests and load
	// harnesses use it to make shard queues fill deterministically on
	// arbitrarily fast machines. Zero (the default) in production.
	DecisionDelay time.Duration
}

// withDefaults fills unset knobs.
func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 8192
	}
	if c.DefaultPlatform == (PlatformSpec{}) {
		c.DefaultPlatform = PlatformSpec{
			Policy:           "symmetric",
			TotalBytesPerNS:  1.0,
			ServiceLatencyNS: 500,
		}
	}
	return c
}
