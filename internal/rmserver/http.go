package rmserver

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/admission"
	"repro/internal/wtrace"
)

// OpsContentType is the compact batch wire format: one operation per
// line, space-separated fields,
//
//	r <platform> <app> <b|c> <burst_bytes> <deadline_ns>
//	w <platform> <app>
//
// It exists because the 1M-decisions/sec path cannot afford a JSON
// token stream per operation: parsing a compact line is a handful of
// byte scans and two float parses, an order of magnitude cheaper.
const OpsContentType = "text/x-rmops"

// RetryAfterSeconds is the Retry-After hint attached to every 429.
const RetryAfterSeconds = 1

// Handler serves the admission-control API for a fleet:
//
//	POST /v1/register    one register op (JSON)
//	POST /v1/withdraw    one withdraw op (JSON)
//	POST /v1/modechange  one mode-change op (JSON)
//	POST /v1/batch       many ops (JSON array or text/x-rmops)
//	GET  /v1/stats       fleet counters + decision latency quantiles
//
// Overload surfaces as HTTP 429 with Retry-After: either the breaker
// is open (rejected before the body is read) or the target shard's
// queue was full (per-op Throttled decisions; the whole response is
// 429 when every op was shed).
//
// Every request passes the wall-clock tracer's head sampler: sampled
// requests carry a W3C traceparent (the inbound header's trace is
// joined when present, a fresh trace is rooted otherwise), record
// parse → queue_wait → decision (per-op children) → encode spans, and
// return their traceparent in the response. GET /v1/traces serves the
// tracer's bounded span ring as Chrome trace_event JSON.
type Handler struct {
	fleet  *Fleet
	tracer *wtrace.Tracer
	mux    *http.ServeMux
}

// NewHandler wraps a fleet in its HTTP API, with tracing disabled.
func NewHandler(f *Fleet) *Handler { return NewTracedHandler(f, nil) }

// NewTracedHandler wraps a fleet in its HTTP API with request tracing.
// tr may be nil or configured with Sample 0 — both leave the request
// path untraced at the cost of one nil/threshold check.
func NewTracedHandler(f *Fleet, tr *wtrace.Tracer) *Handler {
	h := &Handler{fleet: f, tracer: tr, mux: http.NewServeMux()}
	h.mux.HandleFunc("POST /v1/register", h.single(OpRegister))
	h.mux.HandleFunc("POST /v1/withdraw", h.single(OpWithdraw))
	h.mux.HandleFunc("POST /v1/modechange", h.single(OpModeChange))
	h.mux.HandleFunc("POST /v1/batch", h.batch)
	h.mux.HandleFunc("GET /v1/stats", h.stats)
	h.mux.HandleFunc("GET /v1/traces", h.traces)
	return h
}

// reqTraceKey carries the sampled request's trace context to endpoint
// handlers; absent (nil) for unsampled requests.
type reqTraceKey struct{}

func reqTraceFrom(ctx context.Context) *wtrace.ReqTrace {
	rt, _ := ctx.Value(reqTraceKey{}).(*wtrace.ReqTrace)
	return rt
}

// statusWriter captures the response status for the root span. It is
// allocated only on traced requests.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (sw *statusWriter) WriteHeader(code int) {
	sw.code = code
	sw.ResponseWriter.WriteHeader(code)
}

// ServeHTTP implements http.Handler: head sampling decision, breaker
// check, then the per-endpoint instrumentation. The untraced path is
// byte-for-byte the pre-tracing behavior plus one sampler check.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	rt := h.tracer.StartRequest(r.Header.Get("traceparent"))
	if strings.HasPrefix(r.URL.Path, "/v1/") && r.Method == http.MethodPost && !h.fleet.Allowed() {
		if rt != nil {
			w.Header().Set("traceparent", rt.Responseparent())
		}
		throttle(w, "breaker open")
		// Breaker rejections close the trace with a single root span:
		// nothing was parsed, queued, or decided.
		rt.Finish(rt.NowNS(), "endpoint", r.URL.Path, "status", "429", "outcome", "breaker_open")
		return
	}
	reg := h.fleet.Registry()
	start := time.Now()
	if rt == nil {
		h.mux.ServeHTTP(w, r)
		reg.Counter("rmserver_http_requests").Inc()
		reg.Histogram("rmserver_http_latency_ns").Record(time.Since(start).Nanoseconds())
		return
	}
	w.Header().Set("traceparent", rt.Responseparent())
	sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
	h.mux.ServeHTTP(sw, r.WithContext(context.WithValue(r.Context(), reqTraceKey{}, rt)))
	lat := time.Since(start).Nanoseconds()
	reg.Counter("rmserver_http_requests").Inc()
	reg.Histogram("rmserver_http_latency_ns").RecordExemplar(lat, rt.TraceID(), start.UnixNano()+lat)
	rt.Finish(rt.NowNS(), "endpoint", r.URL.Path, "status", strconv.Itoa(sw.code))
}

// traces serves the live span ring as Chrome trace_event JSON. The
// payload loads directly in Perfetto and carries span-conservation
// totals ("spans", "spans_total", "dropped") as extra top-level keys.
func (h *Handler) traces(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = h.tracer.WriteTraceEvents(w)
}

func throttle(w http.ResponseWriter, reason string) {
	w.Header().Set("Retry-After", strconv.Itoa(RetryAfterSeconds))
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusTooManyRequests)
	json.NewEncoder(w).Encode(Decision{Throttled: true, Reason: reason})
}

// wireOp is the JSON request shape for single ops and JSON batches.
type wireOp struct {
	Kind       string        `json:"kind,omitempty"` // batch only: register|withdraw|modechange
	Platform   string        `json:"platform"`
	App        string        `json:"app,omitempty"`
	Critical   bool          `json:"critical,omitempty"`
	BurstBytes float64       `json:"burst_bytes,omitempty"`
	DeadlineNS float64       `json:"deadline_ns,omitempty"`
	Spec       *PlatformSpec `json:"spec,omitempty"`
}

func (wo *wireOp) toOp(kind OpKind) (Op, error) {
	if wo.Platform == "" {
		return Op{}, fmt.Errorf("missing platform")
	}
	crit := admission.BestEffort
	if wo.Critical {
		crit = admission.Critical
	}
	op := Op{
		Kind:       kind,
		Platform:   wo.Platform,
		App:        wo.App,
		Crit:       crit,
		BurstBytes: wo.BurstBytes,
		DeadlineNS: wo.DeadlineNS,
		Spec:       wo.Spec,
	}
	switch kind {
	case OpRegister, OpWithdraw:
		if op.App == "" {
			return Op{}, fmt.Errorf("missing app")
		}
	case OpModeChange:
		if op.Spec == nil {
			return Op{}, fmt.Errorf("missing spec")
		}
	}
	return op, nil
}

func kindOf(s string) (OpKind, error) {
	switch s {
	case "register":
		return OpRegister, nil
	case "withdraw":
		return OpWithdraw, nil
	case "modechange":
		return OpModeChange, nil
	}
	return 0, fmt.Errorf("unknown kind %q", s)
}

func (h *Handler) single(kind OpKind) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		rt := reqTraceFrom(r.Context())
		parseStart := rt.NowNS()
		var wo wireOp
		if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&wo); err != nil {
			rt.Span(rt.Root(), "parse", parseStart, rt.NowNS(), "outcome", "error")
			httpError(w, http.StatusBadRequest, "bad request body: "+err.Error())
			return
		}
		op, err := wo.toOp(kind)
		if err != nil {
			rt.Span(rt.Root(), "parse", parseStart, rt.NowNS(), "outcome", "error")
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
		rt.Span(rt.Root(), "parse", parseStart, rt.NowNS(), "ops", "1")
		d := h.fleet.DoTraced([]Op{op}, rt)[0]
		if d.Throttled {
			throttle(w, d.Reason)
			return
		}
		encodeStart := rt.NowNS()
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(d)
		rt.Span(rt.Root(), "encode", encodeStart, rt.NowNS())
	}
}

// BatchSummary is the response to a batch request: per-outcome counts
// plus the decisions themselves (omitted for the compact format, whose
// callers are throughput harnesses that only want the tallies).
type BatchSummary struct {
	Ops       int        `json:"ops"`
	Admitted  int        `json:"admitted"`
	Rejected  int        `json:"rejected"`
	Throttled int        `json:"throttled"`
	Decisions []Decision `json:"decisions,omitempty"`
}

func summarize(ds []Decision) BatchSummary {
	s := BatchSummary{Ops: len(ds)}
	for i := range ds {
		switch {
		case ds[i].Throttled:
			s.Throttled++
		case ds[i].OK:
			s.Admitted++
		default:
			s.Rejected++
		}
	}
	return s
}

func (h *Handler) batch(w http.ResponseWriter, r *http.Request) {
	rt := reqTraceFrom(r.Context())
	parseStart := rt.NowNS()
	ct := r.Header.Get("Content-Type")
	var (
		ops     []Op
		err     error
		compact bool
	)
	if strings.HasPrefix(ct, OpsContentType) {
		compact = true
		ops, err = parseOpsText(r.Body, h.fleet.cfg.MaxBatch)
	} else {
		ops, err = parseOpsJSON(r.Body, h.fleet.cfg.MaxBatch)
	}
	if err != nil {
		rt.Span(rt.Root(), "parse", parseStart, rt.NowNS(), "outcome", "error")
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	rt.Span(rt.Root(), "parse", parseStart, rt.NowNS(), "ops", strconv.Itoa(len(ops)))
	ds := h.fleet.DoTraced(ops, rt)
	sum := summarize(ds)
	if !compact {
		sum.Decisions = ds
	}
	encodeStart := rt.NowNS()
	w.Header().Set("Content-Type", "application/json")
	if sum.Throttled == sum.Ops && sum.Ops > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(RetryAfterSeconds))
		w.WriteHeader(http.StatusTooManyRequests)
	}
	json.NewEncoder(w).Encode(sum)
	rt.Span(rt.Root(), "encode", encodeStart, rt.NowNS())
}

func parseOpsJSON(body io.Reader, maxBatch int) ([]Op, error) {
	var req struct {
		Ops []wireOp `json:"ops"`
	}
	if err := json.NewDecoder(io.LimitReader(body, 64<<20)).Decode(&req); err != nil {
		return nil, fmt.Errorf("bad request body: %w", err)
	}
	if len(req.Ops) > maxBatch {
		return nil, fmt.Errorf("batch of %d exceeds max %d", len(req.Ops), maxBatch)
	}
	ops := make([]Op, 0, len(req.Ops))
	for i := range req.Ops {
		kind, err := kindOf(req.Ops[i].Kind)
		if err != nil {
			return nil, fmt.Errorf("op %d: %w", i, err)
		}
		op, err := req.Ops[i].toOp(kind)
		if err != nil {
			return nil, fmt.Errorf("op %d: %w", i, err)
		}
		ops = append(ops, op)
	}
	return ops, nil
}

// parseOpsText decodes the compact format. Fields are split in place
// with byte scans; only burst and deadline pay a strconv parse.
func parseOpsText(body io.Reader, maxBatch int) ([]Op, error) {
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 64<<10), 64<<10)
	var ops []Op
	line := 0
	for sc.Scan() {
		line++
		s := sc.Text()
		if s == "" || s[0] == '#' {
			continue
		}
		if len(ops) >= maxBatch {
			return nil, fmt.Errorf("batch exceeds max %d ops", maxBatch)
		}
		op, err := parseOpLine(s)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
		ops = append(ops, op)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("reading batch: %w", err)
	}
	return ops, nil
}

func parseOpLine(s string) (Op, error) {
	next := func() string {
		for len(s) > 0 && s[0] == ' ' {
			s = s[1:]
		}
		i := strings.IndexByte(s, ' ')
		if i < 0 {
			f := s
			s = ""
			return f
		}
		f := s[:i]
		s = s[i+1:]
		return f
	}
	switch verb := next(); verb {
	case "r":
		op := Op{Kind: OpRegister, Platform: next(), App: next()}
		switch c := next(); c {
		case "c":
			op.Crit = admission.Critical
		case "b":
			op.Crit = admission.BestEffort
		default:
			return Op{}, fmt.Errorf("bad criticality %q", c)
		}
		var err error
		if op.BurstBytes, err = strconv.ParseFloat(next(), 64); err != nil {
			return Op{}, fmt.Errorf("bad burst: %w", err)
		}
		if op.DeadlineNS, err = strconv.ParseFloat(next(), 64); err != nil {
			return Op{}, fmt.Errorf("bad deadline: %w", err)
		}
		if op.Platform == "" || op.App == "" {
			return Op{}, fmt.Errorf("missing platform or app")
		}
		return op, nil
	case "w":
		op := Op{Kind: OpWithdraw, Platform: next(), App: next()}
		if op.Platform == "" || op.App == "" {
			return Op{}, fmt.Errorf("missing platform or app")
		}
		return op, nil
	default:
		return Op{}, fmt.Errorf("unknown verb %q", verb)
	}
}

func (h *Handler) stats(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(h.fleet.Snapshot())
}

func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}
