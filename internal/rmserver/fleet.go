package rmserver

import (
	"sync"

	"repro/internal/telemetry"
)

// Fleet is the sharded RM service: the ring routes platforms onto
// shards, Do scatter-gathers batches across them, and the breaker
// guards the front door.
type Fleet struct {
	cfg     Config
	ring    *ring
	shards  []*shard
	breaker *breaker
	reg     *telemetry.Registry

	throttled    *telemetry.Counter
	breakerOpens *telemetry.Counter
	breakerState *telemetry.Gauge

	drainOnce sync.Once
	// pool recycles batchReq completion channels across Do calls.
	pool sync.Pool
}

// New builds and starts a fleet. The shard goroutines run until Drain.
func New(cfg Config, reg *telemetry.Registry) *Fleet {
	cfg = cfg.withDefaults()
	f := &Fleet{
		cfg:     cfg,
		ring:    newRing(cfg.Shards),
		shards:  make([]*shard, cfg.Shards),
		breaker: newBreaker(cfg.Breaker),
		reg:     reg,

		throttled:    reg.Counter("rmserver_throttled"),
		breakerOpens: reg.Counter("rmserver_breaker_opens"),
		breakerState: reg.Gauge("rmserver_breaker_state"),
	}
	f.pool.New = func() any { return make(chan *batchReq, cfg.Shards) }
	for i := range f.shards {
		f.shards[i] = newShard(i, cfg, reg)
	}
	reg.Gauge("rmserver_shards").Set(float64(cfg.Shards))
	setFleetHelp(reg)
	return f
}

// setFleetHelp attaches HELP metadata to every fleet metric family so
// the service's OpenMetrics exposition passes `omlint -strict`.
func setFleetHelp(reg *telemetry.Registry) {
	for name, help := range map[string]string{
		"rmserver_shard_decisions":     "Admission decisions executed by shard loops.",
		"rmserver_shard_batches":       "Batches drained from shard queues.",
		"rmserver_shard_rejects":       "Decisions that rejected the requested operation.",
		"rmserver_shard_queue_depth":   "High-water mark of pending batches across shard queues.",
		"rmserver_decision_latency_ns": "Per-decision latency on the batched path (amortized), nanoseconds.",
		"rmserver_throttled":           "Operations shed by backpressure (full shard queue or open breaker).",
		"rmserver_breaker_opens":       "Circuit-breaker transitions to the open state.",
		"rmserver_breaker_state":       "Circuit-breaker state: 0 closed, 1 open, 2 half-open.",
		"rmserver_shards":              "Number of shard loops in the fleet.",
		"rmserver_http_requests":       "HTTP requests accepted by the service API.",
		"rmserver_http_latency_ns":     "HTTP request handling latency, nanoseconds.",
	} {
		reg.SetHelp(name, help)
	}
}

// Allowed reports whether the breaker admits new work right now. The
// HTTP layer calls this before reading a request body, so an open
// breaker sheds load at the cheapest possible point.
func (f *Fleet) Allowed() bool {
	ok := f.breaker.Allow()
	if !ok {
		f.throttled.Inc()
		f.breaker.Record(true)
	}
	f.publishBreaker()
	return ok
}

// Do executes a batch of operations, routing each to its platform's
// shard and gathering the per-op decisions in input order. A full
// shard queue throttles that shard's portion — those ops return
// Decision{Throttled: true} while other shards' portions still
// complete. The outcome (any throttling) feeds the breaker.
func (f *Fleet) Do(ops []Op) []Decision {
	out := make([]Decision, len(ops))
	if len(ops) == 0 {
		return out
	}

	// Scatter: group op indices by shard. Batches are usually
	// shard-skewed (a client talks about few platforms), so the
	// common case allocates one group.
	groups := make(map[int][]int, 4)
	for i := range ops {
		sh := f.ring.shardOf(ops[i].Platform)
		groups[sh] = append(groups[sh], i)
	}

	done := f.pool.Get().(chan *batchReq)
	type pending struct {
		req  *batchReq
		idxs []int
	}
	sent := make([]pending, 0, len(groups))
	throttledOps := 0
	for sh, idxs := range groups {
		req := &batchReq{
			ops:  make([]Op, len(idxs)),
			out:  make([]Decision, len(idxs)),
			done: done,
		}
		for j, i := range idxs {
			req.ops[j] = ops[i]
		}
		if f.shards[sh].tryEnqueue(req) {
			sent = append(sent, pending{req, idxs})
			continue
		}
		// Shed this shard's portion.
		throttledOps += len(idxs)
		for _, i := range idxs {
			out[i] = Decision{Throttled: true, Reason: "shard queue full"}
		}
	}
	if throttledOps > 0 {
		f.throttled.Add(uint64(throttledOps))
	}

	// Gather in completion order; map results back via the index list.
	for range sent {
		req := <-done
		for _, p := range sent {
			if p.req == req {
				for j, i := range p.idxs {
					out[i] = req.out[j]
				}
				break
			}
		}
	}
	f.pool.Put(done)

	f.breaker.Record(throttledOps > 0)
	f.publishBreaker()
	return out
}

func (f *Fleet) publishBreaker() {
	st, opens := f.breaker.State()
	f.breakerState.Set(float64(st))
	f.breakerOpens.Store(opens)
}

// Stats is a point-in-time snapshot of the fleet's counters, served
// by the HTTP API's /v1/stats for load harnesses.
type Stats struct {
	Shards       int     `json:"shards"`
	Decisions    uint64  `json:"decisions"`
	Batches      uint64  `json:"batches"`
	Rejects      uint64  `json:"rejects"`
	Throttled    uint64  `json:"throttled"`
	BreakerOpens uint64  `json:"breaker_opens"`
	BreakerState string  `json:"breaker_state"`
	DecisionP50  int64   `json:"decision_p50_ns"`
	DecisionP99  int64   `json:"decision_p99_ns"`
	DecisionMean float64 `json:"decision_mean_ns"`
}

// Snapshot reads the current stats.
func (f *Fleet) Snapshot() Stats {
	st, opens := f.breaker.State()
	h := f.reg.Histogram("rmserver_decision_latency_ns")
	return Stats{
		Shards:       f.cfg.Shards,
		Decisions:    f.reg.Counter("rmserver_shard_decisions").Value(),
		Batches:      f.reg.Counter("rmserver_shard_batches").Value(),
		Rejects:      f.reg.Counter("rmserver_shard_rejects").Value(),
		Throttled:    f.throttled.Value(),
		BreakerOpens: opens,
		BreakerState: st.String(),
		DecisionP50:  h.Quantile(0.50),
		DecisionP99:  h.Quantile(0.99),
		DecisionMean: h.Mean(),
	}
}

// Registry exposes the fleet's telemetry registry (for OpenMetrics
// publication).
func (f *Fleet) Registry() *telemetry.Registry { return f.reg }

// Drain completes all enqueued work and stops the shard loops. Safe to
// call more than once. After Drain, Do must not be called.
func (f *Fleet) Drain() {
	f.drainOnce.Do(func() {
		for _, s := range f.shards {
			s.drain()
		}
	})
}
