package rmserver

import (
	"sync"
	"time"

	"repro/internal/telemetry"
	"repro/internal/wtrace"
)

// Fleet is the sharded RM service: the ring routes platforms onto
// shards, Do scatter-gathers batches across them, and the breaker
// guards the front door.
type Fleet struct {
	cfg     Config
	ring    *ring
	shards  []*shard
	breaker *breaker
	reg     *telemetry.Registry

	throttled    *telemetry.Counter
	breakerOpens *telemetry.Counter
	breakerState *telemetry.Gauge

	drainOnce sync.Once
	// pool recycles batchReq completion channels across Do calls.
	pool sync.Pool
}

// New builds and starts a fleet. The shard goroutines run until Drain.
func New(cfg Config, reg *telemetry.Registry) *Fleet {
	cfg = cfg.withDefaults()
	f := &Fleet{
		cfg:     cfg,
		ring:    newRing(cfg.Shards),
		shards:  make([]*shard, cfg.Shards),
		breaker: newBreaker(cfg.Breaker),
		reg:     reg,

		throttled:    reg.Counter("rmserver_throttled"),
		breakerOpens: reg.Counter("rmserver_breaker_opens"),
		breakerState: reg.Gauge("rmserver_breaker_state"),
	}
	f.pool.New = func() any { return make(chan *batchReq, cfg.Shards) }
	for i := range f.shards {
		f.shards[i] = newShard(i, cfg, reg)
	}
	reg.Gauge("rmserver_shards").Set(float64(cfg.Shards))
	setFleetHelp(reg)
	return f
}

// setFleetHelp attaches HELP metadata to every fleet metric family so
// the service's OpenMetrics exposition passes `omlint -strict`.
func setFleetHelp(reg *telemetry.Registry) {
	for name, help := range map[string]string{
		"rmserver_shard_decisions":     "Admission decisions executed by shard loops.",
		"rmserver_shard_batches":       "Batches drained from shard queues.",
		"rmserver_shard_rejects":       "Decisions that rejected the requested operation.",
		"rmserver_shard_queue_depth":   "High-water mark of pending batches across shard queues.",
		"rmserver_shard_queue_wait_ns": "Time a batch spent waiting in its shard queue, nanoseconds.",
		"rmserver_decision_latency_ns": "Per-decision latency on the batched path (amortized), nanoseconds.",
		"rmserver_throttled":           "Operations shed by backpressure (full shard queue or open breaker).",
		"rmserver_breaker_opens":       "Circuit-breaker transitions to the open state.",
		"rmserver_breaker_state":       "Circuit-breaker state: 0 closed, 1 open, 2 half-open.",
		"rmserver_shards":              "Number of shard loops in the fleet.",
		"rmserver_http_requests":       "HTTP requests accepted by the service API.",
		"rmserver_http_latency_ns":     "HTTP request handling latency, nanoseconds.",
	} {
		reg.SetHelp(name, help)
	}
}

// Allowed reports whether the breaker admits new work right now. The
// HTTP layer calls this before reading a request body, so an open
// breaker sheds load at the cheapest possible point.
func (f *Fleet) Allowed() bool {
	ok := f.breaker.Allow()
	if !ok {
		f.throttled.Inc()
		f.breaker.Record(true)
	}
	f.publishBreaker()
	return ok
}

// Do executes a batch of operations, routing each to its platform's
// shard and gathering the per-op decisions in input order. A full
// shard queue throttles that shard's portion — those ops return
// Decision{Throttled: true} while other shards' portions still
// complete. The outcome (any throttling) feeds the breaker.
func (f *Fleet) Do(ops []Op) []Decision { return f.DoTraced(ops, nil) }

// DoTraced is Do carrying a sampled request's trace context into the
// shard loops: each per-shard batch records queue_wait and decision
// spans (per-op children inside) parented on the request's root span,
// and a shed shard portion records a queue_wait span with
// outcome=shed. rt may be nil (untraced), which costs only nil checks.
func (f *Fleet) DoTraced(ops []Op, rt *wtrace.ReqTrace) []Decision {
	out := make([]Decision, len(ops))
	if len(ops) == 0 {
		return out
	}

	// Scatter: group op indices by shard. Batches are usually
	// shard-skewed (a client talks about few platforms), so the
	// common case allocates one group.
	groups := make(map[int][]int, 4)
	for i := range ops {
		sh := f.ring.shardOf(ops[i].Platform)
		groups[sh] = append(groups[sh], i)
	}

	// One enqueue stamp for the whole scatter: it feeds every shard's
	// queue-wait histogram, so it is read once per Do, not per group.
	enqueuedNS := time.Now().UnixNano()
	done := f.pool.Get().(chan *batchReq)
	type pending struct {
		req  *batchReq
		idxs []int
	}
	sent := make([]pending, 0, len(groups))
	throttledOps := 0
	for sh, idxs := range groups {
		req := &batchReq{
			ops:        make([]Op, len(idxs)),
			out:        make([]Decision, len(idxs)),
			done:       done,
			enqueuedNS: enqueuedNS,
			rt:         rt,
			parent:     rt.Root(),
		}
		for j, i := range idxs {
			req.ops[j] = ops[i]
		}
		if f.shards[sh].tryEnqueue(req) {
			sent = append(sent, pending{req, idxs})
			continue
		}
		// Shed this shard's portion.
		throttledOps += len(idxs)
		for _, i := range idxs {
			out[i] = Decision{Throttled: true, Reason: "shard queue full"}
		}
		if rt != nil {
			rt.Span(rt.Root(), "queue_wait", enqueuedNS, rt.NowNS(),
				"shard", f.shards[sh].idStr, "outcome", "shed")
		}
	}
	if throttledOps > 0 {
		f.throttled.Add(uint64(throttledOps))
	}

	// Gather in completion order; map results back via the index list.
	for range sent {
		req := <-done
		for _, p := range sent {
			if p.req == req {
				for j, i := range p.idxs {
					out[i] = req.out[j]
				}
				break
			}
		}
	}
	f.pool.Put(done)

	f.breaker.Record(throttledOps > 0)
	f.publishBreaker()
	return out
}

func (f *Fleet) publishBreaker() {
	st, opens := f.breaker.State()
	f.breakerState.Set(float64(st))
	f.breakerOpens.Store(opens)
}

// Stats is a point-in-time snapshot of the fleet's counters, served
// by the HTTP API's /v1/stats for load harnesses.
type Stats struct {
	Shards       int          `json:"shards"`
	Decisions    uint64       `json:"decisions"`
	Batches      uint64       `json:"batches"`
	Rejects      uint64       `json:"rejects"`
	Throttled    uint64       `json:"throttled"`
	BreakerOpens uint64       `json:"breaker_opens"`
	BreakerState string       `json:"breaker_state"`
	DecisionP50  int64        `json:"decision_p50_ns"`
	DecisionP99  int64        `json:"decision_p99_ns"`
	DecisionMean float64      `json:"decision_mean_ns"`
	PerShard     []ShardStats `json:"per_shard,omitempty"`
}

// ShardStats is the per-shard detail of Stats, mirroring the labeled
// `rmserver_shard_*{shard="N"}` families on /metrics.
type ShardStats struct {
	Shard          int     `json:"shard"`
	Decisions      uint64  `json:"decisions"`
	QueueDepthPeak float64 `json:"queue_depth_peak"`
	QueueWaitP50NS int64   `json:"queue_wait_p50_ns"`
	QueueWaitP99NS int64   `json:"queue_wait_p99_ns"`
}

// Snapshot reads the current stats.
func (f *Fleet) Snapshot() Stats {
	st, opens := f.breaker.State()
	h := f.reg.Histogram("rmserver_decision_latency_ns")
	stats := Stats{
		Shards:       f.cfg.Shards,
		Decisions:    f.reg.Counter("rmserver_shard_decisions").Value(),
		Batches:      f.reg.Counter("rmserver_shard_batches").Value(),
		Rejects:      f.reg.Counter("rmserver_shard_rejects").Value(),
		Throttled:    f.throttled.Value(),
		BreakerOpens: opens,
		BreakerState: st.String(),
		DecisionP50:  h.Quantile(0.50),
		DecisionP99:  h.Quantile(0.99),
		DecisionMean: h.Mean(),
	}
	stats.PerShard = make([]ShardStats, len(f.shards))
	for i, s := range f.shards {
		stats.PerShard[i] = ShardStats{
			Shard:          s.id,
			Decisions:      s.myDecisions.Value(),
			QueueDepthPeak: s.myDepth.Value(),
			QueueWaitP50NS: s.myWait.Quantile(0.50),
			QueueWaitP99NS: s.myWait.Quantile(0.99),
		}
	}
	return stats
}

// Registry exposes the fleet's telemetry registry (for OpenMetrics
// publication).
func (f *Fleet) Registry() *telemetry.Registry { return f.reg }

// Drain completes all enqueued work and stops the shard loops. Safe to
// call more than once. After Drain, Do must not be called.
func (f *Fleet) Drain() {
	f.drainOnce.Do(func() {
		for _, s := range f.shards {
			s.drain()
		}
	})
}
