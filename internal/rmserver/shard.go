package rmserver

import (
	"strconv"
	"time"

	"repro/internal/netcalc"
	"repro/internal/telemetry"
	"repro/internal/wtrace"
)

// batchReq is one batch's worth of operations destined for a single
// shard. The fleet scatter-gathers: a client batch is split by the
// ring into at most one batchReq per shard, so the channel (and its
// synchronization cost) is crossed once per shard per batch, not once
// per operation — the amortization that carries the throughput target.
type batchReq struct {
	ops  []Op
	out  []Decision // len(ops), filled by the shard
	done chan<- *batchReq

	// enqueuedNS stamps when the batch entered the shard queue (Unix
	// ns), feeding the per-shard queue-wait histogram on every batch
	// and the queue_wait span on traced ones.
	enqueuedNS int64
	// rt/parent carry the sampled request's trace context into the
	// shard loop; rt is nil (free no-ops) for unsampled requests.
	rt     *wtrace.ReqTrace
	parent wtrace.SpanID
}

// shard is one RM loop: a bounded queue of batches drained by a
// single goroutine that owns every platform routed to it. Single
// ownership is the determinism guarantee — a platform's decisions are
// made in exactly the order its batches entered the queue, with no
// interleaving, mirroring how the simulated RM serializes actMsg and
// terMsg events.
type shard struct {
	id    int
	idStr string // label value, rendered once
	cfg   Config
	queue chan *batchReq
	stop  chan struct{}
	done  chan struct{}

	platforms map[string]*platform
	cache     *netcalc.Cache

	decisions  *telemetry.Counter
	batches    *telemetry.Counter
	rejects    *telemetry.Counter
	queueDepth *telemetry.Gauge
	latency    *telemetry.Histogram // per-op decision latency, ns

	// Per-shard labeled instruments (`...{shard="N"}`): the aggregate
	// families above answer "is the fleet keeping up", these answer
	// "which shard is the hot one" — consistent hashing skews, and a
	// single overloaded shard hides inside a healthy aggregate.
	myDecisions *telemetry.Counter
	myDepth     *telemetry.Gauge
	myWait      *telemetry.Histogram // batch queue wait, ns
}

func newShard(id int, cfg Config, reg *telemetry.Registry) *shard {
	label := `{shard="` + strconv.Itoa(id) + `"}`
	s := &shard{
		id:        id,
		idStr:     strconv.Itoa(id),
		cfg:       cfg,
		queue:     make(chan *batchReq, cfg.QueueDepth),
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
		platforms: make(map[string]*platform),
		cache:     netcalc.NewCache(0),

		decisions:  reg.Counter("rmserver_shard_decisions"),
		batches:    reg.Counter("rmserver_shard_batches"),
		rejects:    reg.Counter("rmserver_shard_rejects"),
		queueDepth: reg.Gauge("rmserver_shard_queue_depth"),
		latency:    reg.Histogram("rmserver_decision_latency_ns"),

		myDecisions: reg.Counter("rmserver_shard_decisions" + label),
		myDepth:     reg.Gauge("rmserver_shard_queue_depth" + label),
		myWait:      reg.Histogram("rmserver_shard_queue_wait_ns" + label),
	}
	go s.loop()
	return s
}

// tryEnqueue offers a batch to the shard without blocking. A full
// queue returns false — the caller sheds the work as a throttle. The
// queue is never blocked on: backpressure must surface to the client
// as 429, not as unbounded server-side latency.
func (s *shard) tryEnqueue(b *batchReq) bool {
	select {
	case s.queue <- b:
		depth := float64(len(s.queue))
		s.queueDepth.SetMax(depth)
		s.myDepth.SetMax(depth)
		return true
	default:
		return false
	}
}

// loop drains the queue until stop is closed AND the queue is empty:
// close(stop) is the drain signal, and every batch enqueued before it
// still completes — the no-dropped-in-flight guarantee behind graceful
// shutdown.
func (s *shard) loop() {
	defer close(s.done)
	for {
		select {
		case b := <-s.queue:
			s.process(b)
		case <-s.stop:
			for {
				select {
				case b := <-s.queue:
					s.process(b)
				default:
					return
				}
			}
		}
	}
}

func (s *shard) process(b *batchReq) {
	start := time.Now()
	startNS := start.UnixNano()
	if b.enqueuedNS > 0 {
		s.myWait.Record(startNS - b.enqueuedNS)
	}
	// Traced batches get a queue_wait span plus a decision span whose
	// id is allocated up front so per-op child spans can parent on it
	// before it closes.
	var decSpan wtrace.SpanID
	if b.rt != nil {
		b.rt.Span(b.parent, "queue_wait", b.enqueuedNS, startNS, "shard", s.idStr)
		decSpan = b.rt.NewSpanID()
	}
	for i := range b.ops {
		opStart := b.rt.NowNS() // 0 when untraced
		b.out[i] = s.decide(&b.ops[i])
		if s.cfg.DecisionDelay > 0 {
			time.Sleep(s.cfg.DecisionDelay)
		}
		if b.rt != nil {
			outcome := "rejected"
			if b.out[i].OK {
				outcome = "admitted"
			}
			b.rt.Span(decSpan, "op."+b.ops[i].Kind.String(), opStart, b.rt.NowNS(),
				"platform", b.ops[i].Platform, "outcome", outcome)
		}
	}
	s.batches.Inc()
	n := len(b.ops)
	s.decisions.Add(uint64(n))
	s.myDecisions.Add(uint64(n))
	if n > 0 {
		// One observation per batch at the amortized per-op cost: this
		// is the decision latency a client experiences on the batched
		// path, and a single Record keeps the histogram off the
		// per-operation hot path. Traced batches donate the trace id as
		// the histogram's exemplar, linking the p99 on /metrics to a
		// complete trace on /v1/traces.
		perOp := time.Since(start).Nanoseconds() / int64(n)
		if b.rt != nil {
			endNS := b.rt.NowNS()
			s.latency.RecordExemplar(perOp, b.rt.TraceID(), endNS)
			b.rt.RecordSpan(decSpan, b.parent, "decision", startNS, endNS,
				"shard", s.idStr, "ops", strconv.Itoa(n))
		} else {
			s.latency.Record(perOp)
		}
	}
	b.done <- b
}

// decide executes one operation against its platform. Platforms are
// created implicitly on first register with the fleet's default spec;
// withdraw/modechange against an unknown platform is a rejection, not
// a creation.
func (s *shard) decide(op *Op) Decision {
	p := s.platforms[op.Platform]
	switch op.Kind {
	case OpRegister:
		if p == nil {
			p = newPlatform(op.Platform, s.cfg.DefaultPlatform, s.cache)
			s.platforms[op.Platform] = p
		}
		d := p.register(op)
		if !d.OK {
			s.rejects.Inc()
		}
		return d
	case OpWithdraw:
		if p == nil {
			s.rejects.Inc()
			return Decision{Reason: "unknown platform"}
		}
		return p.withdraw(op)
	case OpModeChange:
		if op.Spec == nil {
			s.rejects.Inc()
			return Decision{Mode: modeOf(p), Reason: "modechange without spec"}
		}
		if p == nil {
			p = newPlatform(op.Platform, s.cfg.DefaultPlatform, s.cache)
			s.platforms[op.Platform] = p
		}
		d := p.modeChange(*op.Spec)
		if !d.OK {
			s.rejects.Inc()
		}
		return d
	}
	s.rejects.Inc()
	return Decision{Mode: modeOf(p), Reason: "unknown operation"}
}

func modeOf(p *platform) int {
	if p == nil {
		return 0
	}
	return len(p.apps)
}

// drain signals the loop to finish queued work and waits for it.
func (s *shard) drain() {
	close(s.stop)
	<-s.done
}
