package rmserver

import (
	"time"

	"repro/internal/netcalc"
	"repro/internal/telemetry"
)

// batchReq is one batch's worth of operations destined for a single
// shard. The fleet scatter-gathers: a client batch is split by the
// ring into at most one batchReq per shard, so the channel (and its
// synchronization cost) is crossed once per shard per batch, not once
// per operation — the amortization that carries the throughput target.
type batchReq struct {
	ops  []Op
	out  []Decision // len(ops), filled by the shard
	done chan<- *batchReq
}

// shard is one RM loop: a bounded queue of batches drained by a
// single goroutine that owns every platform routed to it. Single
// ownership is the determinism guarantee — a platform's decisions are
// made in exactly the order its batches entered the queue, with no
// interleaving, mirroring how the simulated RM serializes actMsg and
// terMsg events.
type shard struct {
	id    int
	cfg   Config
	queue chan *batchReq
	stop  chan struct{}
	done  chan struct{}

	platforms map[string]*platform
	cache     *netcalc.Cache

	decisions  *telemetry.Counter
	batches    *telemetry.Counter
	rejects    *telemetry.Counter
	queueDepth *telemetry.Gauge
	latency    *telemetry.Histogram // per-op decision latency, ns
}

func newShard(id int, cfg Config, reg *telemetry.Registry) *shard {
	s := &shard{
		id:        id,
		cfg:       cfg,
		queue:     make(chan *batchReq, cfg.QueueDepth),
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
		platforms: make(map[string]*platform),
		cache:     netcalc.NewCache(0),

		decisions:  reg.Counter("rmserver_shard_decisions"),
		batches:    reg.Counter("rmserver_shard_batches"),
		rejects:    reg.Counter("rmserver_shard_rejects"),
		queueDepth: reg.Gauge("rmserver_shard_queue_depth"),
		latency:    reg.Histogram("rmserver_decision_latency_ns"),
	}
	go s.loop()
	return s
}

// tryEnqueue offers a batch to the shard without blocking. A full
// queue returns false — the caller sheds the work as a throttle. The
// queue is never blocked on: backpressure must surface to the client
// as 429, not as unbounded server-side latency.
func (s *shard) tryEnqueue(b *batchReq) bool {
	select {
	case s.queue <- b:
		s.queueDepth.SetMax(float64(len(s.queue)))
		return true
	default:
		return false
	}
}

// loop drains the queue until stop is closed AND the queue is empty:
// close(stop) is the drain signal, and every batch enqueued before it
// still completes — the no-dropped-in-flight guarantee behind graceful
// shutdown.
func (s *shard) loop() {
	defer close(s.done)
	for {
		select {
		case b := <-s.queue:
			s.process(b)
		case <-s.stop:
			for {
				select {
				case b := <-s.queue:
					s.process(b)
				default:
					return
				}
			}
		}
	}
}

func (s *shard) process(b *batchReq) {
	start := time.Now()
	for i := range b.ops {
		b.out[i] = s.decide(&b.ops[i])
		if s.cfg.DecisionDelay > 0 {
			time.Sleep(s.cfg.DecisionDelay)
		}
	}
	s.batches.Inc()
	s.decisions.Add(uint64(len(b.ops)))
	if n := len(b.ops); n > 0 {
		// One observation per batch at the amortized per-op cost: this
		// is the decision latency a client experiences on the batched
		// path, and a single Record keeps the histogram off the
		// per-operation hot path.
		s.latency.Record(time.Since(start).Nanoseconds() / int64(n))
	}
	b.done <- b
}

// decide executes one operation against its platform. Platforms are
// created implicitly on first register with the fleet's default spec;
// withdraw/modechange against an unknown platform is a rejection, not
// a creation.
func (s *shard) decide(op *Op) Decision {
	p := s.platforms[op.Platform]
	switch op.Kind {
	case OpRegister:
		if p == nil {
			p = newPlatform(op.Platform, s.cfg.DefaultPlatform, s.cache)
			s.platforms[op.Platform] = p
		}
		d := p.register(op)
		if !d.OK {
			s.rejects.Inc()
		}
		return d
	case OpWithdraw:
		if p == nil {
			s.rejects.Inc()
			return Decision{Reason: "unknown platform"}
		}
		return p.withdraw(op)
	case OpModeChange:
		if op.Spec == nil {
			s.rejects.Inc()
			return Decision{Mode: modeOf(p), Reason: "modechange without spec"}
		}
		if p == nil {
			p = newPlatform(op.Platform, s.cfg.DefaultPlatform, s.cache)
			s.platforms[op.Platform] = p
		}
		d := p.modeChange(*op.Spec)
		if !d.OK {
			s.rejects.Inc()
		}
		return d
	}
	s.rejects.Inc()
	return Decision{Mode: modeOf(p), Reason: "unknown operation"}
}

func modeOf(p *platform) int {
	if p == nil {
		return 0
	}
	return len(p.apps)
}

// drain signals the loop to finish queued work and waits for it.
func (s *shard) drain() {
	close(s.stop)
	<-s.done
}
