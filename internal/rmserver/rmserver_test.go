package rmserver

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/admission"
	"repro/internal/netcalc"
	"repro/internal/telemetry"
)

// ---- ring ----

func TestRingDeterministicRouting(t *testing.T) {
	a, b := newRing(8), newRing(8)
	for i := 0; i < 1000; i++ {
		name := fmt.Sprintf("platform-%d", i)
		if got, want := a.shardOf(name), b.shardOf(name); got != want {
			t.Fatalf("ring routing diverges for %q: %d vs %d", name, got, want)
		}
	}
}

func TestRingDistribution(t *testing.T) {
	const shards, keys = 8, 10000
	r := newRing(shards)
	counts := make([]int, shards)
	for i := 0; i < keys; i++ {
		counts[r.shardOf(fmt.Sprintf("platform-%d", i))]++
	}
	// With 64 vnodes/shard the spread is within a small factor of
	// uniform; assert every shard carries a meaningful share.
	min := keys / shards / 4
	for sh, c := range counts {
		if c < min {
			t.Errorf("shard %d got %d of %d keys, want >= %d (counts %v)", sh, c, keys, min, counts)
		}
	}
}

// ---- breaker ----

func testBreaker(t *testing.T) (*breaker, *time.Time) {
	t.Helper()
	now := time.Unix(1000, 0)
	b := newBreaker(BreakerConfig{
		Window:         time.Second,
		MinRequests:    4,
		TripRatio:      0.5,
		Cooldown:       2 * time.Second,
		HalfOpenProbes: 2,
		now:            func() time.Time { return now },
	})
	return b, &now
}

func TestBreakerTripsOnThrottleRatio(t *testing.T) {
	b, _ := testBreaker(t)
	for i := 0; i < 3; i++ {
		b.Record(true)
		if st, _ := b.State(); st != breakerClosed {
			t.Fatalf("breaker opened below MinRequests (after %d)", i+1)
		}
	}
	b.Record(true) // 4th: MinRequests met, ratio 1.0 >= 0.5
	if st, opens := b.State(); st != breakerOpen || opens != 1 {
		t.Fatalf("state = %v opens = %d, want open/1", st, opens)
	}
	if b.Allow() {
		t.Fatal("open breaker admitted a request inside cooldown")
	}
}

func TestBreakerHalfOpenRecovery(t *testing.T) {
	b, now := testBreaker(t)
	for i := 0; i < 4; i++ {
		b.Record(true)
	}
	*now = now.Add(3 * time.Second) // past cooldown
	if !b.Allow() {
		t.Fatal("breaker did not half-open after cooldown")
	}
	if st, _ := b.State(); st != breakerHalfOpen {
		t.Fatalf("state = %v, want half-open", st)
	}
	b.Record(false)
	b.Record(false) // HalfOpenProbes = 2 → closed
	if st, _ := b.State(); st != breakerClosed {
		t.Fatalf("state after clean probes = %v, want closed", st)
	}
}

func TestBreakerHalfOpenReopensOnThrottle(t *testing.T) {
	b, now := testBreaker(t)
	for i := 0; i < 4; i++ {
		b.Record(true)
	}
	*now = now.Add(3 * time.Second)
	if !b.Allow() {
		t.Fatal("breaker did not half-open")
	}
	b.Record(true)
	if st, opens := b.State(); st != breakerOpen || opens != 2 {
		t.Fatalf("state = %v opens = %d, want open/2 after throttled probe", st, opens)
	}
}

func TestBreakerWindowForgetsOldThrottles(t *testing.T) {
	b, now := testBreaker(t)
	b.Record(true)
	b.Record(true)
	*now = now.Add(5 * time.Second) // whole window rotated away
	for i := 0; i < 8; i++ {
		b.Record(false)
	}
	b.Record(true) // 1/9 in-window, below ratio
	if st, _ := b.State(); st != breakerClosed {
		t.Fatalf("stale throttles tripped the breaker: %v", st)
	}
}

// ---- platform decision core ----

func testPlatform(spec PlatformSpec) *platform {
	return newPlatform("p", spec, netcalc.NewCache(0))
}

func regOp(app string, crit bool, burst, deadline float64) *Op {
	op := &Op{Kind: OpRegister, Platform: "p", App: app, BurstBytes: burst, DeadlineNS: deadline}
	if crit {
		op.Crit = admission.Critical
	}
	return op
}

// Symmetric policy, budget 1 B/ns, latency 100 ns: with n apps each
// gets rate 1/n, so an app with burst 100 has bound 100 + 100n. A
// 350 ns deadline therefore admits two apps and rejects the third —
// exactly the paper's mode-dependent guarantee collapsing as the mode
// grows.
func TestPlatformSymmetricAdmission(t *testing.T) {
	p := testPlatform(PlatformSpec{Policy: "symmetric", TotalBytesPerNS: 1, ServiceLatencyNS: 100})
	for i := 0; i < 2; i++ {
		d := p.register(regOp(fmt.Sprintf("a%d", i), false, 100, 350))
		if !d.OK {
			t.Fatalf("app %d rejected: %s", i, d.Reason)
		}
		if want := 1.0 / float64(i+1); d.RateBytesPerNS != want {
			t.Fatalf("app %d rate = %v, want %v", i, d.RateBytesPerNS, want)
		}
	}
	d := p.register(regOp("a2", false, 100, 350))
	if d.OK {
		t.Fatal("third app admitted; bound 400 ns should exceed the 350 ns deadline")
	}
	if d.Mode != 2 {
		t.Fatalf("rejection left mode %d, want 2 (rollback)", d.Mode)
	}
	// The rejection must not have disturbed the admitted set.
	if d := p.withdraw(&Op{Kind: OpWithdraw, Platform: "p", App: "a0"}); !d.OK || d.Mode != 1 {
		t.Fatalf("withdraw after rejected admit: ok=%v mode=%d", d.OK, d.Mode)
	}
}

func TestPlatformDuplicateAndUnknown(t *testing.T) {
	p := testPlatform(PlatformSpec{Policy: "symmetric", TotalBytesPerNS: 1, ServiceLatencyNS: 0})
	if d := p.register(regOp("a", false, 1, 1e6)); !d.OK {
		t.Fatalf("admit: %s", d.Reason)
	}
	if d := p.register(regOp("a", false, 1, 1e6)); d.OK || !strings.Contains(d.Reason, "duplicate") {
		t.Fatalf("duplicate register: ok=%v reason=%q", d.OK, d.Reason)
	}
	if d := p.withdraw(&Op{App: "ghost"}); d.OK || !strings.Contains(d.Reason, "not registered") {
		t.Fatalf("ghost withdraw: ok=%v reason=%q", d.OK, d.Reason)
	}
}

func TestPlatformNonSymmetricRates(t *testing.T) {
	p := testPlatform(PlatformSpec{
		Policy: "non-symmetric", TotalBytesPerNS: 1,
		CriticalBytesPerNS: 0.4, FloorBytesPerNS: 0.05, ServiceLatencyNS: 0,
	})
	if d := p.register(regOp("crit", true, 1, 1e9)); !d.OK || d.RateBytesPerNS != 0.4 {
		t.Fatalf("critical app: ok=%v rate=%v, want 0.4", d.OK, d.RateBytesPerNS)
	}
	// One BE app: (1 - 0.4) / 1 = 0.6.
	if d := p.register(regOp("be", false, 1, 1e9)); !d.OK || d.RateBytesPerNS != 0.6 {
		t.Fatalf("best-effort app: ok=%v rate=%v, want 0.6", d.OK, d.RateBytesPerNS)
	}
}

func TestPlatformBestEffortNoDeadlineAlwaysAdmits(t *testing.T) {
	p := testPlatform(PlatformSpec{Policy: "symmetric", TotalBytesPerNS: 1, ServiceLatencyNS: 100})
	for i := 0; i < 50; i++ {
		if d := p.register(regOp(fmt.Sprintf("a%d", i), false, 1e9, 0)); !d.OK {
			t.Fatalf("deadline-free app %d rejected: %s", i, d.Reason)
		}
	}
}

func TestPlatformModeChangeRollback(t *testing.T) {
	p := testPlatform(PlatformSpec{Policy: "symmetric", TotalBytesPerNS: 1, ServiceLatencyNS: 100})
	if d := p.register(regOp("a", false, 100, 350)); !d.OK {
		t.Fatalf("admit: %s", d.Reason)
	}
	// Shrinking the budget to 0.1 makes a's bound 100 + 100/0.1 =
	// 1100 ns > 350 ns: the mode change must be refused and rolled back.
	d := p.modeChange(PlatformSpec{Policy: "symmetric", TotalBytesPerNS: 0.1, ServiceLatencyNS: 100})
	if d.OK {
		t.Fatal("mode change committed despite violating an admitted app")
	}
	if p.spec.TotalBytesPerNS != 1 {
		t.Fatalf("spec not rolled back: budget %v", p.spec.TotalBytesPerNS)
	}
	// A compatible change commits.
	if d := p.modeChange(PlatformSpec{Policy: "symmetric", TotalBytesPerNS: 2, ServiceLatencyNS: 100}); !d.OK {
		t.Fatalf("compatible mode change refused: %s", d.Reason)
	}
}

// ---- compact wire format ----

func TestParseOpLine(t *testing.T) {
	op, err := parseOpLine("r plat app c 64 1000")
	if err != nil {
		t.Fatal(err)
	}
	if op.Kind != OpRegister || op.Platform != "plat" || op.App != "app" ||
		op.Crit != admission.Critical || op.BurstBytes != 64 || op.DeadlineNS != 1000 {
		t.Fatalf("parsed %+v", op)
	}
	if op, err := parseOpLine("w plat app"); err != nil || op.Kind != OpWithdraw {
		t.Fatalf("withdraw parse: %+v, %v", op, err)
	}
	for _, bad := range []string{
		"x plat app",        // unknown verb
		"r plat app z 1 1",  // bad criticality
		"r plat app b xx 1", // bad burst
		"r plat app b 1 xx", // bad deadline
		"r  ",               // missing fields
		"w plat",            // missing app
	} {
		if _, err := parseOpLine(bad); err == nil {
			t.Errorf("parseOpLine(%q) accepted", bad)
		}
	}
}

// ---- fleet ----

func TestFleetScatterGatherOrder(t *testing.T) {
	reg := telemetry.NewRegistry()
	f := New(Config{Shards: 4, QueueDepth: 8}, reg)
	defer f.Drain()

	// One register + withdraw pair per platform, interleaved across
	// platforms so the batch spans several shards; decisions must come
	// back in input order with the register preceding its withdraw.
	var ops []Op
	for i := 0; i < 32; i++ {
		plat := fmt.Sprintf("p%d", i)
		ops = append(ops,
			Op{Kind: OpRegister, Platform: plat, App: "a", BurstBytes: 1, DeadlineNS: 1e6},
			Op{Kind: OpWithdraw, Platform: plat, App: "a"},
		)
	}
	ds := f.Do(ops)
	if len(ds) != len(ops) {
		t.Fatalf("got %d decisions for %d ops", len(ds), len(ops))
	}
	for i := 0; i < len(ds); i += 2 {
		if !ds[i].OK || ds[i].Mode != 1 {
			t.Fatalf("op %d (register): %+v", i, ds[i])
		}
		if !ds[i+1].OK || ds[i+1].Mode != 0 {
			t.Fatalf("op %d (withdraw): %+v", i+1, ds[i+1])
		}
	}
	if got := f.Snapshot().Decisions; got != uint64(len(ops)) {
		t.Fatalf("snapshot decisions = %d, want %d", got, len(ops))
	}
}

func TestFleetDrainCompletesAllWork(t *testing.T) {
	reg := telemetry.NewRegistry()
	f := New(Config{Shards: 2, QueueDepth: 64}, reg)

	const workers, perWorker = 8, 50
	var wg sync.WaitGroup
	var mu sync.Mutex
	completed := 0
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				ds := f.Do([]Op{{Kind: OpRegister,
					Platform: fmt.Sprintf("p%d", w), App: fmt.Sprintf("a%d", i),
					BurstBytes: 1, DeadlineNS: 0}})
				if len(ds) == 1 && !ds[0].Throttled {
					mu.Lock()
					completed++
					mu.Unlock()
				}
			}
		}(w)
	}
	wg.Wait()
	f.Drain()
	f.Drain() // idempotent

	if got := f.Snapshot().Decisions; got != uint64(completed) {
		t.Fatalf("drained fleet decided %d ops, but %d Do calls completed", got, completed)
	}
	if completed == 0 {
		t.Fatal("no work completed")
	}
}

func TestConfigValidateSpec(t *testing.T) {
	for _, bad := range []PlatformSpec{
		{Policy: "nope", TotalBytesPerNS: 1},
		{Policy: "symmetric", TotalBytesPerNS: 0},
		{Policy: "symmetric", TotalBytesPerNS: 1, ServiceLatencyNS: -1},
		{Policy: "non-symmetric", TotalBytesPerNS: 1},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted", bad)
		}
	}
	ok := PlatformSpec{Policy: "non-symmetric", TotalBytesPerNS: 1, CriticalBytesPerNS: 0.2}
	if err := ok.Validate(); err != nil {
		t.Errorf("Validate(%+v): %v", ok, err)
	}
}
