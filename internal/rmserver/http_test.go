package rmserver

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/telemetry"
)

func testService(t *testing.T, cfg Config) (*Fleet, *httptest.Server) {
	t.Helper()
	f := New(cfg, telemetry.NewRegistry())
	srv := httptest.NewServer(NewHandler(f))
	t.Cleanup(func() {
		srv.Close()
		f.Drain()
	})
	return f, srv
}

func postJSON(t *testing.T, url string, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf [1 << 16]byte
	n, _ := resp.Body.Read(buf[:])
	return resp, buf[:n]
}

func TestHTTPRegisterWithdrawRoundTrip(t *testing.T) {
	_, srv := testService(t, Config{Shards: 2})

	resp, body := postJSON(t, srv.URL+"/v1/register",
		`{"platform":"ecu0","app":"vision","burst_bytes":64,"deadline_ns":1e6}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("register: %d %s", resp.StatusCode, body)
	}
	var d Decision
	if err := json.Unmarshal(body, &d); err != nil {
		t.Fatal(err)
	}
	if !d.OK || d.Mode != 1 || d.RateBytesPerNS <= 0 {
		t.Fatalf("register decision %+v", d)
	}

	resp, body = postJSON(t, srv.URL+"/v1/withdraw", `{"platform":"ecu0","app":"vision"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("withdraw: %d %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &d); err != nil {
		t.Fatal(err)
	}
	if !d.OK || d.Mode != 0 {
		t.Fatalf("withdraw decision %+v", d)
	}
}

func TestHTTPModeChange(t *testing.T) {
	_, srv := testService(t, Config{Shards: 1})
	resp, body := postJSON(t, srv.URL+"/v1/modechange",
		`{"platform":"ecu0","spec":{"policy":"non-symmetric","total_bytes_per_ns":2,"critical_bytes_per_ns":0.5,"service_latency_ns":200}}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("modechange: %d %s", resp.StatusCode, body)
	}
	var d Decision
	if err := json.Unmarshal(body, &d); err != nil {
		t.Fatal(err)
	}
	if !d.OK {
		t.Fatalf("modechange decision %+v", d)
	}
	// A critical register on the reconfigured platform gets the
	// guaranteed rate.
	resp, body = postJSON(t, srv.URL+"/v1/register",
		`{"platform":"ecu0","app":"brake","critical":true,"burst_bytes":32,"deadline_ns":1e6}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("register: %d %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &d); err != nil {
		t.Fatal(err)
	}
	if !d.OK || d.RateBytesPerNS != 0.5 {
		t.Fatalf("critical register on non-symmetric platform: %+v", d)
	}
}

func TestHTTPBatchCompactAndJSON(t *testing.T) {
	_, srv := testService(t, Config{Shards: 2})

	compact := "# comment\nr ecu0 a b 64 1000000\nr ecu0 b b 64 1000000\nw ecu0 a\n"
	resp, err := http.Post(srv.URL+"/v1/batch", OpsContentType, strings.NewReader(compact))
	if err != nil {
		t.Fatal(err)
	}
	var sum BatchSummary
	if err := json.NewDecoder(resp.Body).Decode(&sum); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || sum.Ops != 3 || sum.Admitted != 3 || sum.Decisions != nil {
		t.Fatalf("compact batch: %d %+v", resp.StatusCode, sum)
	}

	jsonBatch := `{"ops":[
		{"kind":"register","platform":"ecu1","app":"x","burst_bytes":64,"deadline_ns":1e6},
		{"kind":"withdraw","platform":"ecu1","app":"x"}]}`
	resp, body := postJSON(t, srv.URL+"/v1/batch", jsonBatch)
	if err := json.Unmarshal(body, &sum); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || sum.Ops != 2 || len(sum.Decisions) != 2 {
		t.Fatalf("json batch: %d %+v", resp.StatusCode, sum)
	}
}

func TestHTTPBadRequests(t *testing.T) {
	_, srv := testService(t, Config{Shards: 1, MaxBatch: 4})
	cases := []struct{ path, body string }{
		{"/v1/register", `{"app":"a"}`},                 // missing platform
		{"/v1/register", `not json`},                    //
		{"/v1/withdraw", `{"platform":"p"}`},            // missing app
		{"/v1/modechange", `{"platform":"p"}`},          // missing spec
		{"/v1/batch", `{"ops":[{"kind":"bogus"}]}`},     // unknown kind
		{"/v1/batch", `{"ops":[{},{},{},{},{},{},{}]}`}, // over MaxBatch
	}
	for _, c := range cases {
		resp, body := postJSON(t, srv.URL+c.path, c.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("POST %s %q: %d %s, want 400", c.path, c.body, resp.StatusCode, body)
		}
	}
}

// TestHTTPOverloadBackpressure drives the service past its queue
// capacity and asserts the full overload story: clients see 429 with
// Retry-After, the fleet counts throttles, the breaker opens under the
// sustained throttle ratio, and an open breaker rejects at the front
// door.
func TestHTTPOverloadBackpressure(t *testing.T) {
	f, srv := testService(t, Config{
		Shards:        1,
		QueueDepth:    1,
		DecisionDelay: 2 * time.Millisecond,
		Breaker: BreakerConfig{
			Window:         time.Second,
			MinRequests:    4,
			TripRatio:      0.25,
			Cooldown:       time.Minute, // keep it open for the assertions
			HalfOpenProbes: 2,
		},
	})

	// 8 concurrent clients × sequential batches of 8 slow ops against a
	// single shard with queue depth 1: at most two batches are ever in
	// the system, the rest must be shed.
	var (
		wg        sync.WaitGroup
		mu        sync.Mutex
		got429    int
		gotRetry  int
		totalReqs int
	)
	deadline := time.Now().Add(2 * time.Second)
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for time.Now().Before(deadline) {
				var sb strings.Builder
				for i := 0; i < 8; i++ {
					fmt.Fprintf(&sb, "r p0 c%dapp%d b 1 0\n", c, i)
				}
				resp, err := http.Post(srv.URL+"/v1/batch", OpsContentType, strings.NewReader(sb.String()))
				if err != nil {
					continue
				}
				resp.Body.Close()
				mu.Lock()
				totalReqs++
				if resp.StatusCode == http.StatusTooManyRequests {
					got429++
					if resp.Header.Get("Retry-After") != "" {
						gotRetry++
					}
				}
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()

	if got429 == 0 {
		t.Fatalf("no 429s across %d overload requests", totalReqs)
	}
	if gotRetry != got429 {
		t.Errorf("%d of %d 429s carried Retry-After", gotRetry, got429)
	}
	st := f.Snapshot()
	if st.Throttled == 0 {
		t.Error("fleet counted no throttled operations")
	}
	if st.BreakerOpens == 0 {
		t.Errorf("breaker never opened under sustained overload (state %s, %d reqs, %d 429s)",
			st.BreakerState, totalReqs, got429)
	}
	if st.BreakerState != "open" {
		t.Errorf("breaker state %q, want open (cooldown is one minute)", st.BreakerState)
	}

	// An open breaker rejects before the body is parsed: even a
	// malformed request gets 429, not 400.
	resp, _ := postJSON(t, srv.URL+"/v1/register", `garbage`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("open breaker returned %d, want 429 at the front door", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("front-door 429 missing Retry-After")
	}
}

// TestHTTPStats exercises /v1/stats end to end.
func TestHTTPStats(t *testing.T) {
	_, srv := testService(t, Config{Shards: 2})
	postJSON(t, srv.URL+"/v1/register", `{"platform":"p","app":"a","burst_bytes":1,"deadline_ns":1e6}`)
	resp, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Shards != 2 || st.Decisions != 1 || st.BreakerState != "closed" {
		t.Fatalf("stats %+v", st)
	}
}

// TestOpenMetricsStrict renders the fleet's exposition and checks the
// properties `omlint -strict` enforces: every family has # HELP and
// # TYPE, and the body ends with # EOF.
func TestOpenMetricsStrict(t *testing.T) {
	f, srv := testService(t, Config{Shards: 2})
	postJSON(t, srv.URL+"/v1/register", `{"platform":"p","app":"a","burst_bytes":1,"deadline_ns":1e6}`)

	var sb strings.Builder
	if err := f.Registry().WriteOpenMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	om := sb.String()
	if !strings.HasSuffix(om, "# EOF\n") {
		t.Fatal("exposition missing # EOF")
	}
	help := map[string]bool{}
	for _, line := range strings.Split(om, "\n") {
		if strings.HasPrefix(line, "# HELP ") {
			help[strings.Fields(line)[2]] = true
		}
	}
	for _, line := range strings.Split(om, "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			fam := strings.Fields(line)[2]
			if strings.HasPrefix(fam, "rmserver_") && !help[fam] {
				t.Errorf("family %s has no # HELP line", fam)
			}
		}
	}
}
