package sched

import (
	"testing"
	"testing/quick"

	"repro/internal/netcalc"
	"repro/internal/sim"
)

func ms(v float64) sim.Duration { return sim.US(v * 1000) }

func TestTaskValidation(t *testing.T) {
	bad := []Task{
		{Name: "", Period: ms(10), WCET: ms(1)},
		{Name: "a", Period: 0, WCET: ms(1)},
		{Name: "a", Period: ms(10), WCET: 0},
		{Name: "a", Period: ms(10), WCET: ms(11)},
		{Name: "a", Period: ms(10), WCET: ms(1), Deadline: ms(12)},
		{Name: "a", Period: ms(10), WCET: ms(1), Jitter: -1},
		{Name: "a", Period: ms(10), WCET: ms(1), Core: -1},
	}
	for i, task := range bad {
		if task.Validate() == nil {
			t.Errorf("bad task %d accepted", i)
		}
	}
	good := Task{Name: "a", Period: ms(10), WCET: ms(1)}
	if good.Validate() != nil {
		t.Error("good task rejected")
	}
	if good.EffectiveDeadline() != ms(10) {
		t.Error("implicit deadline != period")
	}
	if got := good.Utilization(); got != 0.1 {
		t.Errorf("utilization = %v", got)
	}
}

func TestServerAndTDMAValidation(t *testing.T) {
	if (Server{Name: "s", Budget: ms(2), Period: ms(10)}).Validate() != nil {
		t.Error("good server rejected")
	}
	if (Server{Name: "", Budget: ms(2), Period: ms(10)}).Validate() == nil {
		t.Error("unnamed server accepted")
	}
	if (Server{Name: "s", Budget: ms(12), Period: ms(10)}).Validate() == nil {
		t.Error("budget > period accepted")
	}
	tbl := TDMATable{Cycle: ms(10), Partitions: []TDMAPartition{
		{Name: "p1", Start: 0, Slot: ms(4)},
		{Name: "p2", Start: ms(4), Slot: ms(6)},
	}}
	if tbl.Validate() != nil {
		t.Error("good TDMA table rejected")
	}
	overlap := TDMATable{Cycle: ms(10), Partitions: []TDMAPartition{
		{Name: "p1", Start: 0, Slot: ms(6)},
		{Name: "p2", Start: ms(4), Slot: ms(4)},
	}}
	if overlap.Validate() == nil {
		t.Error("overlapping slots accepted")
	}
}

func TestTDMAActiveWindow(t *testing.T) {
	tbl := TDMATable{Cycle: ms(10), Partitions: []TDMAPartition{
		{Name: "p", Start: ms(2), Slot: ms(3)},
	}}
	if ok, b := tbl.activeWindow("p", 0); ok || b != sim.Time(ms(2)) {
		t.Errorf("before slot: %v %v", ok, b)
	}
	if ok, b := tbl.activeWindow("p", sim.Time(ms(3))); !ok || b != sim.Time(ms(5)) {
		t.Errorf("inside slot: %v %v", ok, b)
	}
	if ok, b := tbl.activeWindow("p", sim.Time(ms(7))); ok || b != sim.Time(ms(12)) {
		t.Errorf("after slot: %v %v", ok, b)
	}
	if ok, _ := tbl.activeWindow("ghost", 0); !ok {
		t.Error("unknown partition should be unrestricted")
	}
}

func TestSingleTaskRuns(t *testing.T) {
	eng := sim.NewEngine()
	s, err := NewSimulator(eng, Config{Cores: 1}, []Task{
		{Name: "a", Period: ms(10), WCET: ms(2), Priority: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run(ms(100))
	st := res["a"]
	if st.Released != 10 || st.Finished != 10 {
		t.Fatalf("released/finished = %d/%d, want 10/10", st.Released, st.Finished)
	}
	if st.DeadlineMisses != 0 {
		t.Errorf("misses = %d", st.DeadlineMisses)
	}
	// Alone on the core: response == WCET.
	if st.MaxResponse != ms(2) {
		t.Errorf("max response = %v, want %v", st.MaxResponse, ms(2))
	}
	if got := s.CoreBusy(0); got != ms(20) {
		t.Errorf("core busy = %v, want 20ms", got)
	}
}

func TestPreemptionByHigherPriority(t *testing.T) {
	eng := sim.NewEngine()
	s, err := NewSimulator(eng, Config{Cores: 1}, []Task{
		{Name: "hi", Period: ms(10), WCET: ms(2), Priority: 2},
		{Name: "lo", Period: ms(50), WCET: ms(10), Priority: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run(ms(100))
	// lo runs 10ms of work, preempted by hi every 10ms (2ms each):
	// response = 10 + ceil/interleave = 12-14ms region.
	lo := res["lo"]
	if lo.Finished == 0 {
		t.Fatal("lo never finished")
	}
	if lo.MaxResponse <= ms(10) {
		t.Errorf("lo max response %v shows no preemption", lo.MaxResponse)
	}
	hi := res["hi"]
	if hi.MaxResponse != ms(2) {
		t.Errorf("hi max response = %v, want 2ms (never preempted)", hi.MaxResponse)
	}
}

func TestPartitionedIsolatesCores(t *testing.T) {
	eng := sim.NewEngine()
	s, err := NewSimulator(eng, Config{Cores: 2, Policy: Partitioned}, []Task{
		{Name: "crit", Period: ms(10), WCET: ms(3), Priority: 1, Core: 0, Crit: ASILD},
		{Name: "noisy", Period: ms(5), WCET: ms(5), Priority: 9, Core: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run(ms(100))
	// noisy saturates core 1 but cannot touch crit on core 0.
	if got := res["crit"].MaxResponse; got != ms(3) {
		t.Errorf("partitioned crit response = %v, want 3ms", got)
	}
}

func TestGlobalUsesAllCores(t *testing.T) {
	eng := sim.NewEngine()
	s, err := NewSimulator(eng, Config{Cores: 2, Policy: Global}, []Task{
		{Name: "a", Period: ms(10), WCET: ms(6), Priority: 3},
		{Name: "b", Period: ms(10), WCET: ms(6), Priority: 2},
		{Name: "c", Period: ms(10), WCET: ms(6), Priority: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run(ms(100))
	// Total utilization 1.8 on 2 cores: a and b run immediately in
	// parallel; c waits for a slot.
	if res["a"].MaxResponse != ms(6) || res["b"].MaxResponse != ms(6) {
		t.Errorf("top-priority responses = %v/%v, want 6ms", res["a"].MaxResponse, res["b"].MaxResponse)
	}
	if res["c"].MaxResponse <= ms(6) {
		t.Errorf("c response = %v, should exceed 6ms (waits for a core)", res["c"].MaxResponse)
	}
	if res["c"].Finished == 0 {
		t.Error("c starved entirely")
	}
}

func TestDeadlineMissDetected(t *testing.T) {
	eng := sim.NewEngine()
	s, err := NewSimulator(eng, Config{Cores: 1}, []Task{
		{Name: "hog", Period: ms(10), WCET: ms(9), Priority: 9},
		{Name: "victim", Period: ms(10), WCET: ms(5), Priority: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run(ms(100))
	if res["victim"].DeadlineMisses == 0 {
		t.Error("overload produced no deadline misses")
	}
	if res["hog"].DeadlineMisses != 0 {
		t.Errorf("hog missed %d deadlines", res["hog"].DeadlineMisses)
	}
}

func TestReservationServerThrottles(t *testing.T) {
	// A QM hog inside a 2ms/10ms server cannot monopolize the core:
	// the critical task keeps meeting deadlines despite lower
	// priority... the hog has higher priority but only 20% budget.
	eng := sim.NewEngine()
	s, err := NewSimulator(eng, Config{
		Cores:   1,
		Servers: []Server{{Name: "qmbox", Budget: ms(2), Period: ms(10)}},
	}, []Task{
		{Name: "hog", Period: ms(10), WCET: ms(8), Priority: 9, Server: "qmbox"},
		{Name: "crit", Period: ms(10), WCET: ms(3), Priority: 1, Crit: ASILD},
	})
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run(ms(200))
	if res["crit"].DeadlineMisses != 0 {
		t.Errorf("crit missed %d deadlines despite server throttling the hog", res["crit"].DeadlineMisses)
	}
	// The hog is budget-starved: it cannot finish 8ms of work on 2ms
	// per period.
	if res["hog"].DeadlineMisses == 0 {
		t.Error("hog met deadlines despite 20%% budget")
	}
}

func TestUnthrottledHogBreaksCritical(t *testing.T) {
	// The counterfactual of TestReservationServerThrottles: without
	// the server, the same hog destroys the critical task.
	eng := sim.NewEngine()
	s, err := NewSimulator(eng, Config{Cores: 1}, []Task{
		{Name: "hog", Period: ms(10), WCET: ms(8), Priority: 9},
		{Name: "crit", Period: ms(10), WCET: ms(3), Priority: 1, Crit: ASILD},
	})
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run(ms(200))
	if res["crit"].DeadlineMisses == 0 {
		t.Error("expected misses without reservation; isolation claim would be vacuous")
	}
}

func TestTDMAPartitionIsolation(t *testing.T) {
	tbl := TDMATable{Cycle: ms(10), Partitions: []TDMAPartition{
		{Name: "safety", Start: 0, Slot: ms(4)},
		{Name: "infot", Start: ms(4), Slot: ms(6)},
	}}
	eng := sim.NewEngine()
	s, err := NewSimulator(eng, Config{
		Cores: 1,
		TDMA:  map[int]TDMATable{0: tbl},
	}, []Task{
		{Name: "safe", Period: ms(10), WCET: ms(3), Priority: 1, Partition: "safety"},
		{Name: "media", Period: ms(10), WCET: ms(6), Priority: 9, Partition: "infot"},
	})
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run(ms(200))
	if res["safe"].DeadlineMisses != 0 {
		t.Errorf("TDMA-protected task missed %d deadlines", res["safe"].DeadlineMisses)
	}
	if res["media"].Finished == 0 {
		t.Error("media partition starved")
	}
	// TDMA latency cost: safe's response can extend past its slot
	// start wait, but within its slot budget it finishes at 3ms.
	if res["safe"].MaxResponse > ms(10) {
		t.Errorf("safe response %v exceeds cycle", res["safe"].MaxResponse)
	}
}

func TestSimulatorValidation(t *testing.T) {
	eng := sim.NewEngine()
	if _, err := NewSimulator(eng, Config{Cores: 0}, nil); err == nil {
		t.Error("zero cores accepted")
	}
	if _, err := NewSimulator(eng, Config{Cores: 1}, []Task{
		{Name: "a", Period: ms(10), WCET: ms(1), Core: 3},
	}); err == nil {
		t.Error("out-of-range pinning accepted")
	}
	if _, err := NewSimulator(eng, Config{Cores: 1}, []Task{
		{Name: "a", Period: ms(10), WCET: ms(1)},
		{Name: "a", Period: ms(10), WCET: ms(1)},
	}); err == nil {
		t.Error("duplicate task accepted")
	}
	if _, err := NewSimulator(eng, Config{Cores: 1}, []Task{
		{Name: "a", Period: ms(10), WCET: ms(1), Server: "ghost"},
	}); err == nil {
		t.Error("unknown server accepted")
	}
	if _, err := NewSimulator(eng, Config{Cores: 1, TDMA: map[int]TDMATable{5: {}}}, nil); err == nil {
		t.Error("TDMA table on missing core accepted")
	}
}

func TestResponseTimeFPClassic(t *testing.T) {
	// Textbook example: T1(P=4ms,C=1ms,hi), T2(P=6ms,C=2ms,mid),
	// T3(P=12ms,C=3ms,lo): R1=1, R2=3, R3=4+... iterate: R3 = 3 +
	// ceil(R/4)*1 + ceil(R/6)*2 -> 3+1+2=6 -> 3+2+2=7 -> 3+2+4=9 ->
	// 3+3+4=10 -> 3+3+4=10. R3=10ms.
	rt, err := ResponseTimeFP(1, []Task{
		{Name: "t1", Period: ms(4), WCET: ms(1), Priority: 3},
		{Name: "t2", Period: ms(6), WCET: ms(2), Priority: 2},
		{Name: "t3", Period: ms(12), WCET: ms(3), Priority: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rt["t1"] != ms(1) || rt["t2"] != ms(3) || rt["t3"] != ms(10) {
		t.Errorf("RTA = %v/%v/%v, want 1/3/10 ms", rt["t1"], rt["t2"], rt["t3"])
	}
}

func TestResponseTimeFPUnschedulable(t *testing.T) {
	_, err := ResponseTimeFP(1, []Task{
		{Name: "t1", Period: ms(4), WCET: ms(3), Priority: 2},
		{Name: "t2", Period: ms(8), WCET: ms(4), Priority: 1},
	})
	if err == nil {
		t.Error("overloaded set declared schedulable")
	}
}

func TestRTABoundsSimulation(t *testing.T) {
	// Ex-ante analysis must upper-bound ex-post simulation.
	tasks := []Task{
		{Name: "t1", Period: ms(5), WCET: ms(1), Priority: 3},
		{Name: "t2", Period: ms(10), WCET: ms(3), Priority: 2},
		{Name: "t3", Period: ms(20), WCET: ms(5), Priority: 1},
	}
	rt, err := ResponseTimeFP(1, tasks)
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine()
	s, err := NewSimulator(eng, Config{Cores: 1}, tasks)
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run(ms(1000))
	for name, bound := range rt {
		if got := res[name].MaxResponse; got > bound {
			t.Errorf("%s: simulated response %v exceeds RTA bound %v", name, got, bound)
		}
	}
}

func TestUtilizationPerCore(t *testing.T) {
	u := UtilizationPerCore(2, []Task{
		{Name: "a", Period: ms(10), WCET: ms(2), Core: 0},
		{Name: "b", Period: ms(10), WCET: ms(5), Core: 1},
		{Name: "c", Period: ms(20), WCET: ms(2), Core: 1},
	})
	if u[0] != 0.2 {
		t.Errorf("core 0 = %v", u[0])
	}
	if u[1] != 0.6 {
		t.Errorf("core 1 = %v", u[1])
	}
}

func TestServiceCurveHelpers(t *testing.T) {
	srv := Server{Name: "s", Budget: ms(2), Period: ms(10)}
	c := ServerServiceCurve(srv)
	if c.IsZero() {
		t.Fatal("server curve zero")
	}
	tbl := TDMATable{Cycle: ms(10), Partitions: []TDMAPartition{{Name: "p", Start: 0, Slot: ms(2)}}}
	tc := TDMAServiceCurve(tbl, "p", 4)
	if tc.IsZero() {
		t.Fatal("TDMA curve zero")
	}
	if !TDMAServiceCurve(tbl, "ghost", 4).IsZero() {
		t.Error("unknown partition should give zero curve")
	}
	// A CBS delay bound for a periodic workload: 1ms of work per 10ms.
	d := ReservationDelayBound(srv, netcalc.TokenBucket(1e6, 0.1))
	if d <= 0 || d > 1e9 {
		t.Errorf("reservation delay bound = %v", d)
	}
}

func TestPolicyString(t *testing.T) {
	if Partitioned.String() != "partitioned" || Global.String() != "global" {
		t.Error("Policy.String")
	}
	if QM.String() != "QM" || ASILB.String() != "ASIL-B" || ASILD.String() != "ASIL-D" {
		t.Error("Criticality.String")
	}
}

func TestQuickNoMissesUnderLowUtilization(t *testing.T) {
	// Property: any implicit-deadline task set with total utilization
	// <= 0.5 under rate-monotonic priorities (shorter period = higher
	// priority) has zero misses in simulation: 0.5 is below the
	// Liu-Layland bound for every n.
	f := func(seed uint64, n8 uint8) bool {
		rnd := sim.NewRand(seed)
		n := int(n8%4) + 1
		var tasks []Task
		for i := 0; i < n; i++ {
			period := ms(float64(10 * (1 + rnd.Intn(4))))
			wcet := period / sim.Duration(2*n)
			if wcet <= 0 {
				wcet = 1
			}
			tasks = append(tasks, Task{
				Name:     "t" + string(rune('0'+i)),
				Period:   period,
				WCET:     wcet,
				Priority: int(sim.Second / period), // rate monotonic
			})
		}
		eng := sim.NewEngine()
		s, err := NewSimulator(eng, Config{Cores: 1}, tasks)
		if err != nil {
			return false
		}
		res := s.Run(ms(500))
		for _, st := range res {
			if st.DeadlineMisses > 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
