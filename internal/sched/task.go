// Package sched models the CPU-scheduling side of Section II of the
// paper: partitioned versus global fixed-priority scheduling,
// TDMA-based time partitioning, and reservation-based servers
// (budget/period throttling in the style of a constant-bandwidth /
// deferrable server). It provides both a deterministic preemptive
// multicore simulator and classical worst-case response-time analysis,
// so the same task set can be studied ex-ante (analysis) and ex-post
// (simulation) — the distinction Section IV draws.
package sched

import (
	"fmt"

	"repro/internal/sim"
)

// Criticality mirrors the automotive ASIL idea at the granularity this
// model needs.
type Criticality int

// Criticality levels.
const (
	QM Criticality = iota // quality managed (best effort)
	ASILB
	ASILD
)

// String implements fmt.Stringer.
func (c Criticality) String() string {
	switch c {
	case ASILB:
		return "ASIL-B"
	case ASILD:
		return "ASIL-D"
	}
	return "QM"
}

// Task is a periodic task.
type Task struct {
	Name     string
	Period   sim.Duration
	WCET     sim.Duration
	Deadline sim.Duration // 0 = implicit (== Period)
	// Priority: higher value = more important (fixed-priority
	// scheduling).
	Priority int
	Crit     Criticality
	// Core pins the task under partitioned scheduling; ignored under
	// global scheduling.
	Core int
	// Server optionally names the reservation server the task runs in.
	Server string
	// Partition optionally names the TDMA partition the task belongs
	// to.
	Partition string
	// Jitter models release jitter (uniform in [0, Jitter], seeded).
	Jitter sim.Duration
}

// EffectiveDeadline returns the deadline, defaulting to the period.
func (t Task) EffectiveDeadline() sim.Duration {
	if t.Deadline > 0 {
		return t.Deadline
	}
	return t.Period
}

// Validate checks the task parameters.
func (t Task) Validate() error {
	if t.Name == "" {
		return fmt.Errorf("sched: task needs a name")
	}
	if t.Period <= 0 {
		return fmt.Errorf("sched: task %s needs a positive period", t.Name)
	}
	if t.WCET <= 0 || t.WCET > t.Period {
		return fmt.Errorf("sched: task %s WCET %v outside (0, period %v]", t.Name, t.WCET, t.Period)
	}
	if t.Deadline < 0 || (t.Deadline > 0 && t.Deadline > t.Period) {
		return fmt.Errorf("sched: task %s constrained deadline %v outside (0, period]", t.Name, t.Deadline)
	}
	if t.Jitter < 0 {
		return fmt.Errorf("sched: task %s negative jitter", t.Name)
	}
	if t.Core < 0 {
		return fmt.Errorf("sched: task %s negative core", t.Name)
	}
	return nil
}

// Utilization returns WCET/Period.
func (t Task) Utilization() float64 {
	return float64(t.WCET) / float64(t.Period)
}

// Server is a reservation server: tasks assigned to it may consume at
// most Budget of CPU time per Period (replenished at period
// boundaries). This is the reservation-based scheduling Section II
// recommends for composable QoS.
type Server struct {
	Name   string
	Budget sim.Duration
	Period sim.Duration
	// Core pins the server under partitioned scheduling.
	Core int
}

// Validate checks the server parameters.
func (s Server) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("sched: server needs a name")
	}
	if s.Period <= 0 || s.Budget <= 0 || s.Budget > s.Period {
		return fmt.Errorf("sched: server %s needs 0 < budget <= period", s.Name)
	}
	return nil
}

// TDMAPartition is one slot owner in a TDMA schedule: its tasks may
// run only while the slot is active. Slots repeat every table cycle.
type TDMAPartition struct {
	Name  string
	Start sim.Duration // offset of the slot within the cycle
	Slot  sim.Duration // slot length
}

// TDMATable is a complete TDMA schedule for one core.
type TDMATable struct {
	Cycle      sim.Duration
	Partitions []TDMAPartition
}

// Validate checks slot layout: inside the cycle and non-overlapping.
func (t TDMATable) Validate() error {
	if t.Cycle <= 0 {
		return fmt.Errorf("sched: TDMA cycle must be positive")
	}
	for i, p := range t.Partitions {
		if p.Name == "" {
			return fmt.Errorf("sched: TDMA partition %d needs a name", i)
		}
		if p.Start < 0 || p.Slot <= 0 || p.Start+p.Slot > t.Cycle {
			return fmt.Errorf("sched: TDMA partition %s slot [%v,%v) outside cycle %v",
				p.Name, p.Start, p.Start+p.Slot, t.Cycle)
		}
		for _, q := range t.Partitions[:i] {
			if p.Start < q.Start+q.Slot && q.Start < p.Start+p.Slot {
				return fmt.Errorf("sched: TDMA partitions %s and %s overlap", p.Name, q.Name)
			}
		}
	}
	return nil
}

// activeWindow returns, for a partition, whether it is active at time
// t, and the time of the next boundary (end of the current slot if
// active, start of the next slot if not).
func (t TDMATable) activeWindow(name string, at sim.Time) (active bool, boundary sim.Time) {
	var p *TDMAPartition
	for i := range t.Partitions {
		if t.Partitions[i].Name == name {
			p = &t.Partitions[i]
			break
		}
	}
	if p == nil {
		return true, sim.Forever // unknown partition: unrestricted
	}
	cycleStart := at - at%t.Cycle
	off := at - cycleStart
	start, end := p.Start, p.Start+p.Slot
	switch {
	case off < start:
		return false, cycleStart + start
	case off < end:
		return true, cycleStart + end
	default:
		return false, cycleStart + t.Cycle + start
	}
}
