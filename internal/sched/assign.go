package sched

import (
	"fmt"
	"math"
	"sort"
)

// AssignRateMonotonic sets task priorities by period (shorter period =
// higher priority), the optimal fixed-priority assignment for
// implicit-deadline periodic tasks. It returns a new slice; the input
// is not modified. Ties break by name for determinism.
func AssignRateMonotonic(tasks []Task) []Task {
	out := append([]Task(nil), tasks...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Period != out[j].Period {
			return out[i].Period < out[j].Period
		}
		return out[i].Name < out[j].Name
	})
	for i := range out {
		out[i].Priority = len(out) - i
	}
	return out
}

// AssignDeadlineMonotonic sets priorities by constrained deadline
// (shorter deadline = higher priority), optimal for constrained-
// deadline task sets under fixed priorities.
func AssignDeadlineMonotonic(tasks []Task) []Task {
	out := append([]Task(nil), tasks...)
	sort.Slice(out, func(i, j int) bool {
		di, dj := out[i].EffectiveDeadline(), out[j].EffectiveDeadline()
		if di != dj {
			return di < dj
		}
		return out[i].Name < out[j].Name
	})
	for i := range out {
		out[i].Priority = len(out) - i
	}
	return out
}

// LiuLaylandBound returns the classic utilization bound
// n*(2^(1/n) - 1) under which any n implicit-deadline periodic tasks
// are RM-schedulable on one core.
func LiuLaylandBound(n int) float64 {
	if n <= 0 {
		return 0
	}
	return float64(n) * (math.Pow(2, 1/float64(n)) - 1)
}

// SchedulabilityVerdict summarizes a sufficient-test outcome.
type SchedulabilityVerdict struct {
	Utilization float64
	Bound       float64
	// ByUtilization: passed the Liu-Layland sufficient test.
	ByUtilization bool
	// ByResponseTime: passed the exact RTA (only evaluated when the
	// utilization test is inconclusive; RTA is necessary and
	// sufficient for this model).
	ByResponseTime bool
	Schedulable    bool
}

// CheckRateMonotonic runs the two-stage schedulability test the
// paper's design-time story needs: the cheap Liu-Layland sufficient
// condition first, the exact response-time analysis if inconclusive.
// Tasks are assumed to share one core (partitioned analysis applies it
// per core).
func CheckRateMonotonic(tasks []Task) (SchedulabilityVerdict, error) {
	if len(tasks) == 0 {
		return SchedulabilityVerdict{Schedulable: true}, nil
	}
	v := SchedulabilityVerdict{Bound: LiuLaylandBound(len(tasks))}
	rm := AssignRateMonotonic(tasks)
	for i := range rm {
		if err := rm[i].Validate(); err != nil {
			return SchedulabilityVerdict{}, err
		}
		rm[i].Core = 0
		v.Utilization += rm[i].Utilization()
	}
	if v.Utilization <= v.Bound {
		v.ByUtilization = true
		v.Schedulable = true
		return v, nil
	}
	if v.Utilization > 1 {
		return v, nil // trivially infeasible
	}
	if _, err := ResponseTimeFP(1, rm); err == nil {
		v.ByResponseTime = true
		v.Schedulable = true
	}
	return v, nil
}

// PartitionTasksWorstFit assigns unpinned tasks to cores by worst-fit
// decreasing utilization — the bin-packing step of partitioned
// scheduling the paper prefers for interference localization. It
// errors when some task fits on no core under the given per-core
// utilization cap.
func PartitionTasksWorstFit(tasks []Task, cores int, capacity float64) ([]Task, error) {
	if cores <= 0 {
		return nil, fmt.Errorf("sched: need at least one core")
	}
	if capacity <= 0 || capacity > 1 {
		return nil, fmt.Errorf("sched: per-core capacity must be in (0,1], got %g", capacity)
	}
	out := append([]Task(nil), tasks...)
	sort.Slice(out, func(i, j int) bool {
		ui, uj := out[i].Utilization(), out[j].Utilization()
		if ui != uj {
			return ui > uj
		}
		return out[i].Name < out[j].Name
	})
	load := make([]float64, cores)
	for i := range out {
		// Worst fit: the least-loaded core.
		best := 0
		for c := 1; c < cores; c++ {
			if load[c] < load[best] {
				best = c
			}
		}
		u := out[i].Utilization()
		if load[best]+u > capacity {
			return nil, fmt.Errorf("sched: task %s (u=%.3f) fits on no core (least-loaded at %.3f, cap %.3f)",
				out[i].Name, u, load[best], capacity)
		}
		out[i].Core = best
		load[best] += u
	}
	return out, nil
}
