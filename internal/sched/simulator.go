package sched

import (
	"fmt"
	"sort"

	"repro/internal/sim"
)

// Policy selects the multicore scheduling policy.
type Policy int

// Scheduling policies (Section II): partitioned pins tasks to cores
// and localizes interference; global lets the P highest-priority ready
// jobs run on any core.
const (
	Partitioned Policy = iota
	Global
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	if p == Global {
		return "global"
	}
	return "partitioned"
}

// Config parameterizes a scheduling simulation.
type Config struct {
	Cores  int
	Policy Policy
	// Servers defines reservation servers tasks may be assigned to.
	Servers []Server
	// TDMA optionally installs a TDMA table per core (partitioned
	// scheduling only).
	TDMA map[int]TDMATable
	// Seed drives release jitter.
	Seed uint64
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Cores <= 0 {
		return fmt.Errorf("sched: need at least one core")
	}
	for _, s := range c.Servers {
		if err := s.Validate(); err != nil {
			return err
		}
	}
	for core, tbl := range c.TDMA {
		if core < 0 || core >= c.Cores {
			return fmt.Errorf("sched: TDMA table for core %d outside 0..%d", core, c.Cores-1)
		}
		if err := tbl.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// job is one released instance of a task.
type job struct {
	task        *Task
	release     sim.Time
	absDeadline sim.Time
	remaining   sim.Duration
	finished    bool
	missed      bool
	core        int // running core, -1 if not running
	dispatched  sim.Time
}

// serverState tracks a reservation server's remaining budget.
type serverState struct {
	cfg    Server
	budget sim.Duration
}

// TaskStats aggregates per-task results.
type TaskStats struct {
	Released, Finished, DeadlineMisses uint64
	MaxResponse                        sim.Duration
	TotalResponse                      sim.Duration
}

// MeanResponse returns the mean response time of finished jobs.
func (s TaskStats) MeanResponse() sim.Duration {
	if s.Finished == 0 {
		return 0
	}
	return s.TotalResponse / sim.Duration(s.Finished)
}

// Simulator is a deterministic preemptive multicore fixed-priority
// scheduler in virtual time.
type Simulator struct {
	eng   *sim.Engine
	cfg   Config
	tasks []*Task
	rnd   *sim.Rand

	jobs    []*job
	servers map[string]*serverState
	running []*job // per core; nil = idle
	events  []sim.Handle

	stats    map[string]*TaskStats
	busy     []sim.Duration // per-core busy time
	lastSync sim.Time
	horizon  sim.Time
}

// NewSimulator builds a simulator for the task set.
func NewSimulator(eng *sim.Engine, cfg Config, tasks []Task) (*Simulator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Simulator{
		eng:     eng,
		cfg:     cfg,
		rnd:     sim.NewRand(cfg.Seed),
		servers: make(map[string]*serverState),
		running: make([]*job, cfg.Cores),
		stats:   make(map[string]*TaskStats),
		busy:    make([]sim.Duration, cfg.Cores),
	}
	for _, srv := range cfg.Servers {
		s.servers[srv.Name] = &serverState{cfg: srv, budget: srv.Budget}
	}
	seen := make(map[string]bool)
	for i := range tasks {
		t := tasks[i]
		if err := t.Validate(); err != nil {
			return nil, err
		}
		if seen[t.Name] {
			return nil, fmt.Errorf("sched: duplicate task %q", t.Name)
		}
		seen[t.Name] = true
		if cfg.Policy == Partitioned && t.Core >= cfg.Cores {
			return nil, fmt.Errorf("sched: task %s pinned to core %d of %d", t.Name, t.Core, cfg.Cores)
		}
		if t.Server != "" {
			if _, ok := s.servers[t.Server]; !ok {
				return nil, fmt.Errorf("sched: task %s references unknown server %q", t.Name, t.Server)
			}
		}
		s.tasks = append(s.tasks, &t)
		s.stats[t.Name] = &TaskStats{}
	}
	return s, nil
}

// Run simulates the task set up to the horizon and returns per-task
// statistics.
func (s *Simulator) Run(horizon sim.Duration) map[string]TaskStats {
	s.horizon = s.eng.Now() + horizon
	for _, t := range s.tasks {
		s.scheduleRelease(t, s.eng.Now())
	}
	for name, srv := range s.servers {
		name := name
		s.scheduleReplenish(name, s.eng.Now()+srv.cfg.Period)
	}
	s.eng.RunUntil(s.horizon)
	s.sync()

	out := make(map[string]TaskStats, len(s.stats))
	for k, v := range s.stats {
		out[k] = *v
	}
	return out
}

// CoreBusy returns the accumulated busy time of a core.
func (s *Simulator) CoreBusy(core int) sim.Duration { return s.busy[core] }

// scheduleRelease schedules one job release for t at (or jittered
// after) at, and starts the task's periodic release tick: an Every
// event that reuses a single kernel record for the whole run instead
// of chaining a fresh self-rescheduling closure every period. The
// tick cancels itself at the horizon.
func (s *Simulator) scheduleRelease(t *Task, at sim.Time) {
	if at >= s.horizon {
		return
	}
	s.releaseJob(t, at)
	// The tick lives outside s.events: that list holds scheduling
	// *decision* events that reschedule() cancels wholesale, while the
	// release tick must survive every rescheduling pass.
	var tick sim.Handle
	tick = s.eng.EveryAt(at+t.Period, t.Period, func() {
		if s.eng.Now() >= s.horizon {
			tick.Cancel()
			return
		}
		s.releaseJob(t, s.eng.Now())
	})
}

// releaseJob schedules a single (possibly jittered) job release.
func (s *Simulator) releaseJob(t *Task, at sim.Time) {
	if at >= s.horizon {
		return
	}
	release := at
	if t.Jitter > 0 {
		release += s.rnd.Duration(t.Jitter + 1)
	}
	s.eng.At(release, func() {
		j := &job{
			task:        t,
			release:     s.eng.Now(),
			absDeadline: s.eng.Now() + t.EffectiveDeadline(),
			remaining:   t.WCET,
			core:        -1,
		}
		s.jobs = append(s.jobs, j)
		s.stats[t.Name].Released++
		// Deadline-miss watchdog.
		s.eng.At(j.absDeadline, func() {
			if !j.finished && !j.missed {
				j.missed = true
				s.stats[t.Name].DeadlineMisses++
			}
		})
		s.reschedule()
	})
}

func (s *Simulator) scheduleReplenish(name string, at sim.Time) {
	if at >= s.horizon+s.servers[name].cfg.Period {
		return
	}
	s.eng.At(at, func() {
		srv := s.servers[name]
		srv.budget = srv.cfg.Budget
		s.scheduleReplenish(name, s.eng.Now()+srv.cfg.Period)
		s.reschedule()
	})
}

// sync charges elapsed execution to the running jobs and their
// servers.
func (s *Simulator) sync() {
	now := s.eng.Now()
	for core, j := range s.running {
		if j == nil {
			continue
		}
		delta := now - j.dispatched
		if delta <= 0 {
			continue
		}
		if delta > j.remaining {
			delta = j.remaining
		}
		j.remaining -= delta
		s.busy[core] += delta
		if j.task.Server != "" {
			srv := s.servers[j.task.Server]
			srv.budget -= delta
			if srv.budget < 0 {
				srv.budget = 0
			}
		}
		j.dispatched = now
		if j.remaining == 0 {
			s.finish(j)
		}
	}
	s.lastSync = now
}

func (s *Simulator) finish(j *job) {
	j.finished = true
	st := s.stats[j.task.Name]
	st.Finished++
	resp := s.eng.Now() - j.release
	st.TotalResponse += resp
	if resp > st.MaxResponse {
		st.MaxResponse = resp
	}
	if s.eng.Now() > j.absDeadline && !j.missed {
		j.missed = true
		st.DeadlineMisses++
	}
}

// eligible reports whether a job may execute now on the given core,
// and the earliest boundary at which its eligibility may change (slot
// end or budget exhaustion).
func (s *Simulator) eligible(j *job, core int, now sim.Time) (ok bool, boundary sim.Time) {
	boundary = sim.Forever
	if j.task.Server != "" {
		srv := s.servers[j.task.Server]
		if srv.budget <= 0 {
			return false, sim.Forever // replenish event will reschedule
		}
		boundary = now + srv.budget
	}
	if tbl, has := s.cfg.TDMA[core]; has && j.task.Partition != "" {
		active, b := tbl.activeWindow(j.task.Partition, now)
		if !active {
			if b < boundary {
				boundary = b
			}
			return false, boundary
		}
		if b < boundary {
			boundary = b
		}
	}
	return true, boundary
}

// reschedule is the core dispatcher: charge time, pick the highest
// priority eligible jobs, and arm the next decision events.
func (s *Simulator) reschedule() {
	s.sync()
	now := s.eng.Now()

	for _, h := range s.events {
		h.Cancel()
	}
	s.events = s.events[:0]

	// Compact finished jobs occasionally.
	live := s.jobs[:0]
	for _, j := range s.jobs {
		if !j.finished {
			live = append(live, j)
		}
	}
	s.jobs = live

	ready := make([]*job, 0, len(s.jobs))
	for _, j := range s.jobs {
		if j.release <= now && j.remaining > 0 {
			ready = append(ready, j)
		}
		j.core = -1
	}
	sort.Slice(ready, func(a, b int) bool {
		x, y := ready[a], ready[b]
		if x.task.Priority != y.task.Priority {
			return x.task.Priority > y.task.Priority
		}
		if x.release != y.release {
			return x.release < y.release
		}
		return x.task.Name < y.task.Name
	})

	for core := range s.running {
		s.running[core] = nil
	}
	var wakeups []sim.Time

	assign := func(j *job, core int) {
		ok, boundary := s.eligible(j, core, now)
		if !ok {
			if boundary != sim.Forever {
				wakeups = append(wakeups, boundary)
			}
			return
		}
		j.core = core
		j.dispatched = now
		s.running[core] = j
		end := now + j.remaining
		if boundary < end {
			end = boundary
		}
		s.events = append(s.events, s.eng.At(end, s.reschedule))
	}

	switch s.cfg.Policy {
	case Partitioned:
		for _, j := range ready {
			core := j.task.Core
			if s.running[core] == nil {
				assign(j, core)
			}
		}
	case Global:
		core := 0
		for _, j := range ready {
			for core < s.cfg.Cores && s.running[core] != nil {
				core++
			}
			if core >= s.cfg.Cores {
				break
			}
			assign(j, core)
		}
	}

	for _, w := range wakeups {
		if w > now && w < s.horizon+sim.Second {
			s.events = append(s.events, s.eng.At(w, s.reschedule))
		}
	}
}
