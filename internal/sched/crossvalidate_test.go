package sched

import (
	"testing"

	"repro/internal/netcalc"
	"repro/internal/sim"
)

// TestTDMACurveBoundsSimulation cross-validates the analytic TDMA
// service curve against the scheduler simulation: the Network Calculus
// delay bound for a periodic demand must upper-bound every simulated
// response time (Section IV's ex-ante vs ex-post distinction, on the
// CPU side).
func TestTDMACurveBoundsSimulation(t *testing.T) {
	tbl := TDMATable{Cycle: ms(10), Partitions: []TDMAPartition{
		{Name: "p", Start: ms(6), Slot: ms(4)},
	}}
	task := Task{Name: "work", Period: ms(20), WCET: ms(3), Priority: 1, Partition: "p"}

	eng := sim.NewEngine()
	s, err := NewSimulator(eng, Config{Cores: 1, TDMA: map[int]TDMATable{0: tbl}}, []Task{task})
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run(ms(500))
	if res["work"].Finished == 0 {
		t.Fatal("task never finished")
	}

	// Analytic: 3ms of work per 20ms through the TDMA curve.
	beta := TDMAServiceCurve(tbl, "p", 64)
	alpha := netcalc.TokenBucket(task.WCET.Nanoseconds(), task.WCET.Nanoseconds()/task.Period.Nanoseconds())
	bound := netcalc.DelayBound(alpha, beta)
	if got := res["work"].MaxResponse.Nanoseconds(); got > bound {
		t.Errorf("simulated response %.0f ns exceeds analytic TDMA bound %.0f ns", got, bound)
	}
	t.Logf("TDMA: simulated max %.2f ms vs bound %.2f ms", res["work"].MaxResponse.Microseconds()/1000, bound/1e6)
}

// TestServerCurveBoundsSimulation does the same for a reservation
// server: the CBS service curve's delay bound dominates the simulated
// worst response of the served task.
func TestServerCurveBoundsSimulation(t *testing.T) {
	srv := Server{Name: "box", Budget: ms(2), Period: ms(10)}
	task := Task{Name: "work", Period: ms(40), WCET: ms(4), Priority: 1, Server: "box"}

	eng := sim.NewEngine()
	s, err := NewSimulator(eng, Config{Cores: 1, Servers: []Server{srv}}, []Task{task})
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run(ms(800))
	if res["work"].Finished == 0 {
		t.Fatal("task never finished")
	}
	alpha := netcalc.TokenBucket(task.WCET.Nanoseconds(), task.WCET.Nanoseconds()/task.Period.Nanoseconds())
	bound := ReservationDelayBound(srv, alpha)
	if got := res["work"].MaxResponse.Nanoseconds(); got > bound {
		t.Errorf("simulated response %.0f ns exceeds CBS bound %.0f ns", got, bound)
	}
}

// TestRTAMatchesCPA cross-checks the two analysis engines on the same
// task set: the sched package's classical RTA and the cpa package's
// busy-window (via equivalent PJD models) must agree exactly for
// periodic zero-jitter tasks. The sched side is exercised here; the
// cpa side pins the same numbers in its own tests — both give R3=10ms
// on the textbook set, asserted in TestResponseTimeFPClassic and
// cpa.TestSPPInterferenceMatchesClassicRTA.
func TestRTAMatchesCPA(t *testing.T) {
	rt, err := ResponseTimeFP(1, []Task{
		{Name: "t1", Period: ms(4), WCET: ms(1), Priority: 3},
		{Name: "t2", Period: ms(6), WCET: ms(2), Priority: 2},
		{Name: "t3", Period: ms(12), WCET: ms(3), Priority: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]sim.Duration{"t1": ms(1), "t2": ms(3), "t3": ms(10)}
	for name, w := range want {
		if rt[name] != w {
			t.Errorf("%s: RTA %v, want %v (cpa agrees on these)", name, rt[name], w)
		}
	}
}
