package sched

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestAssignRateMonotonic(t *testing.T) {
	tasks := []Task{
		{Name: "slow", Period: ms(100), WCET: ms(1)},
		{Name: "fast", Period: ms(5), WCET: ms(1)},
		{Name: "mid", Period: ms(20), WCET: ms(1)},
	}
	rm := AssignRateMonotonic(tasks)
	if rm[0].Name != "fast" || rm[2].Name != "slow" {
		t.Fatalf("RM order = %v %v %v", rm[0].Name, rm[1].Name, rm[2].Name)
	}
	if !(rm[0].Priority > rm[1].Priority && rm[1].Priority > rm[2].Priority) {
		t.Error("priorities not strictly decreasing with period")
	}
	// Input untouched.
	if tasks[0].Priority != 0 {
		t.Error("input mutated")
	}
}

func TestAssignDeadlineMonotonic(t *testing.T) {
	tasks := []Task{
		{Name: "a", Period: ms(10), WCET: ms(1), Deadline: ms(9)},
		{Name: "b", Period: ms(10), WCET: ms(1), Deadline: ms(3)},
	}
	dm := AssignDeadlineMonotonic(tasks)
	if dm[0].Name != "b" {
		t.Error("shorter deadline not prioritized")
	}
}

func TestLiuLaylandBound(t *testing.T) {
	if got := LiuLaylandBound(1); got != 1 {
		t.Errorf("bound(1) = %v, want 1", got)
	}
	if got := LiuLaylandBound(2); math.Abs(got-0.8284) > 1e-3 {
		t.Errorf("bound(2) = %v, want ~0.828", got)
	}
	// Monotone decreasing toward ln 2.
	if LiuLaylandBound(100) > LiuLaylandBound(2) {
		t.Error("bound not decreasing")
	}
	if got := LiuLaylandBound(1000); math.Abs(got-math.Ln2) > 1e-3 {
		t.Errorf("bound(1000) = %v, want ~ln2", got)
	}
	if LiuLaylandBound(0) != 0 {
		t.Error("bound(0)")
	}
}

func TestCheckRateMonotonicStages(t *testing.T) {
	// Stage 1: low utilization passes by the bound alone.
	easy := []Task{
		{Name: "a", Period: ms(10), WCET: ms(1)},
		{Name: "b", Period: ms(20), WCET: ms(2)},
	}
	v, err := CheckRateMonotonic(easy)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Schedulable || !v.ByUtilization || v.ByResponseTime {
		t.Errorf("easy verdict = %+v", v)
	}
	// Stage 2: harmonic set above the LL bound but RTA-schedulable
	// (harmonic periods reach utilization 1).
	harmonic := []Task{
		{Name: "a", Period: ms(10), WCET: ms(5)},
		{Name: "b", Period: ms(20), WCET: ms(10)},
	}
	v, err = CheckRateMonotonic(harmonic)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Schedulable || v.ByUtilization || !v.ByResponseTime {
		t.Errorf("harmonic verdict = %+v (U=%.3f bound=%.3f)", v, v.Utilization, v.Bound)
	}
	// Infeasible: U > 1.
	over := []Task{
		{Name: "a", Period: ms(10), WCET: ms(8)},
		{Name: "b", Period: ms(10), WCET: ms(5)},
	}
	v, err = CheckRateMonotonic(over)
	if err != nil {
		t.Fatal(err)
	}
	if v.Schedulable {
		t.Errorf("overload declared schedulable: %+v", v)
	}
	// Empty set is trivially schedulable; invalid tasks error.
	if v, _ := CheckRateMonotonic(nil); !v.Schedulable {
		t.Error("empty set unschedulable")
	}
	if _, err := CheckRateMonotonic([]Task{{Name: "x", Period: 0, WCET: 1}}); err == nil {
		t.Error("invalid task accepted")
	}
}

func TestPartitionTasksWorstFit(t *testing.T) {
	tasks := []Task{
		{Name: "a", Period: ms(10), WCET: ms(4)}, // 0.4
		{Name: "b", Period: ms(10), WCET: ms(4)}, // 0.4
		{Name: "c", Period: ms(10), WCET: ms(3)}, // 0.3
		{Name: "d", Period: ms(10), WCET: ms(3)}, // 0.3
	}
	placed, err := PartitionTasksWorstFit(tasks, 2, 0.75)
	if err != nil {
		t.Fatal(err)
	}
	load := map[int]float64{}
	for _, tk := range placed {
		load[tk.Core] += tk.Utilization()
	}
	for c, u := range load {
		if u > 0.75 {
			t.Errorf("core %d overloaded: %.2f", c, u)
		}
	}
	// Infeasible packing.
	if _, err := PartitionTasksWorstFit(tasks, 1, 0.75); err == nil {
		t.Error("overloaded single core accepted")
	}
	if _, err := PartitionTasksWorstFit(tasks, 0, 0.75); err == nil {
		t.Error("zero cores accepted")
	}
	if _, err := PartitionTasksWorstFit(tasks, 2, 1.5); err == nil {
		t.Error("capacity > 1 accepted")
	}
}

func TestQuickVerdictConsistentWithSimulation(t *testing.T) {
	// Property: whenever CheckRateMonotonic declares a random set
	// schedulable, simulation observes zero deadline misses.
	f := func(seed uint64, n8 uint8) bool {
		rnd := sim.NewRand(seed)
		n := int(n8%4) + 1
		var tasks []Task
		for i := 0; i < n; i++ {
			period := ms(float64(5 * (1 + rnd.Intn(8))))
			wcet := sim.Duration(1 + rnd.Int63n(int64(period/3))) // U <= 1/3 each
			tasks = append(tasks, Task{
				Name:   "t" + string(rune('0'+i)),
				Period: period,
				WCET:   wcet,
			})
		}
		v, err := CheckRateMonotonic(tasks)
		if err != nil {
			return false
		}
		if !v.Schedulable {
			return true // only the positive direction is claimed
		}
		eng := sim.NewEngine()
		s, err := NewSimulator(eng, Config{Cores: 1}, AssignRateMonotonic(tasks))
		if err != nil {
			return false
		}
		res := s.Run(ms(400))
		for _, st := range res {
			if st.DeadlineMisses > 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
