package sched

import (
	"fmt"
	"sort"

	"repro/internal/netcalc"
	"repro/internal/sim"
)

// ResponseTimeFP computes the classic worst-case response time of each
// task under partitioned preemptive fixed-priority scheduling, using
// the iterative busy-window recurrence
//
//	R = C + sum_{j in hp} ceil((R + J_j) / T_j) * C_j
//
// per core. It returns an error when the recurrence diverges past the
// deadline for some task (the task set is unschedulable, ex ante — the
// paper's Section IV point about design-time guarantees).
func ResponseTimeFP(cores int, tasks []Task) (map[string]sim.Duration, error) {
	perCore := make(map[int][]Task)
	for _, t := range tasks {
		if err := t.Validate(); err != nil {
			return nil, err
		}
		if t.Core >= cores {
			return nil, fmt.Errorf("sched: task %s on core %d of %d", t.Name, t.Core, cores)
		}
		perCore[t.Core] = append(perCore[t.Core], t)
	}
	out := make(map[string]sim.Duration, len(tasks))
	for _, set := range perCore {
		sort.Slice(set, func(i, j int) bool { return set[i].Priority > set[j].Priority })
		for i, t := range set {
			hp := set[:i]
			r := t.WCET
			for iter := 0; iter < 10000; iter++ {
				interference := sim.Duration(0)
				for _, h := range hp {
					n := ceilDiv(r+h.Jitter, h.Period)
					interference += n * h.WCET
				}
				next := t.WCET + interference
				if next == r {
					break
				}
				r = next
				if r > t.EffectiveDeadline() {
					return nil, fmt.Errorf("sched: task %s unschedulable: response %v exceeds deadline %v",
						t.Name, r, t.EffectiveDeadline())
				}
			}
			out[t.Name] = r
		}
	}
	return out, nil
}

func ceilDiv(a, b sim.Duration) sim.Duration {
	if a <= 0 {
		return 0
	}
	return (a + b - 1) / b
}

// UtilizationPerCore sums task utilization per core (partitioned).
func UtilizationPerCore(cores int, tasks []Task) []float64 {
	u := make([]float64, cores)
	for _, t := range tasks {
		if t.Core < cores {
			u[t.Core] += t.Utilization()
		}
	}
	return u
}

// ServerServiceCurve returns the Network Calculus service curve of a
// reservation server on a unit-speed core: reservation-based
// scheduling composes (Section II), which is exactly this curve
// feeding DelayBound.
func ServerServiceCurve(s Server) netcalc.Curve {
	return netcalc.CBSService(1, s.Budget.Nanoseconds(), s.Period.Nanoseconds())
}

// TDMAServiceCurve returns the service curve of a TDMA partition on a
// unit-speed core.
func TDMAServiceCurve(t TDMATable, partition string, periods int) netcalc.Curve {
	for _, p := range t.Partitions {
		if p.Name == partition {
			return netcalc.TDMAService(1, p.Slot.Nanoseconds(), t.Cycle.Nanoseconds(), periods)
		}
	}
	return netcalc.Zero()
}

// ReservationDelayBound bounds the response time of a workload with
// arrival curve alpha (in ns of work) served by a reservation server:
// the composable guarantee reservation-based scheduling offers that
// priority-based scheduling does not.
func ReservationDelayBound(s Server, alpha netcalc.Curve) float64 {
	return netcalc.DelayBound(alpha, ServerServiceCurve(s))
}
