package obs

import (
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

const testExposition = `# HELP rmserver_decision_latency_ns Per-decision latency.
# TYPE rmserver_decision_latency_ns summary
rmserver_decision_latency_ns{quantile="0.5"} 180
rmserver_decision_latency_ns{quantile="0.95"} 400
rmserver_decision_latency_ns{quantile="0.99"} 900 # {trace_id="4bf92f3577b34da6a3ce929d0e0e4736"} 900 1700000000.123
rmserver_decision_latency_ns_sum 5400
rmserver_decision_latency_ns_count 30
# TYPE rmserver_shard_decisions counter
rmserver_shard_decisions_total 1000
rmserver_shard_decisions_total{shard="0"} 600
rmserver_shard_decisions_total{shard="1"} 400
# TYPE rmserver_breaker_state gauge
rmserver_breaker_state 0
# TYPE weird gauge
weird{msg="has space, and } brace"} 7
# EOF
`

func TestScraperIngestParsesExposition(t *testing.T) {
	sc := NewScraper("", 16)
	n := sc.Ingest([]byte(testExposition), 1000)
	if n != 10 {
		t.Fatalf("ingested %d samples, want 10 (names: %v)", n, sc.Names())
	}
	for name, want := range map[string]float64{
		`rmserver_decision_latency_ns{quantile="0.99"}`: 900, // exemplar clause stripped
		"rmserver_decision_latency_ns_count":            30,
		"rmserver_shard_decisions_total":                1000,
		`rmserver_shard_decisions_total{shard="1"}`:     400,
		"rmserver_breaker_state":                        0,
		`weird{msg="has space, and } brace"}`:           7,
	} {
		p, ok := sc.Latest(name)
		if !ok || p.Value != want || p.UnixMilli != 1000 {
			t.Errorf("Latest(%q) = %+v, %v; want value %v at 1000", name, p, ok, want)
		}
	}
	if _, ok := sc.Latest("nope"); ok {
		t.Error("Latest on unknown series reported ok")
	}
}

func TestScraperRingAndRate(t *testing.T) {
	sc := NewScraper("", 4)
	// 6 scrapes into a 4-point ring: counter grows 100/s, then resets.
	for i, v := range []float64{0, 100, 200, 300, 5, 105} {
		sc.Ingest([]byte(fmt.Sprintf("c_total %g\n# EOF\n", v)), int64(i+1)*1000)
	}
	pts := sc.Points("c_total")
	if len(pts) != 4 || pts[0].Value != 200 || pts[3].Value != 105 {
		t.Fatalf("ring points = %+v", pts)
	}
	// Deltas over the retained window: +100, reset (skipped), +100 over
	// 3s elapsed.
	rate, ok := sc.Rate("c_total")
	if !ok || math.Abs(rate-200.0/3) > 1e-9 {
		t.Fatalf("rate = %v, %v; want %v", rate, ok, 200.0/3)
	}
	if _, ok := sc.Rate("missing"); ok {
		t.Error("rate on unknown series reported ok")
	}
}

func TestScraperScrapeHTTP(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "g 42\n# EOF\n")
	}))
	defer srv.Close()
	sc := NewScraper(srv.URL, 8)
	if err := sc.Scrape(); err != nil {
		t.Fatal(err)
	}
	if p, ok := sc.Latest("g"); !ok || p.Value != 42 {
		t.Fatalf("Latest(g) = %+v, %v", p, ok)
	}
	okN, failN, lastErr := sc.Stats()
	if okN != 1 || failN != 0 || lastErr != nil {
		t.Fatalf("stats = %d ok, %d failed, %v", okN, failN, lastErr)
	}

	// A failing endpoint counts the failure but keeps existing series.
	srv.Close()
	if err := sc.Scrape(); err == nil {
		t.Fatal("scrape of closed server succeeded")
	}
	if p, ok := sc.Latest("g"); !ok || p.Value != 42 {
		t.Fatalf("series lost after failed scrape: %+v, %v", p, ok)
	}
	if _, failN, lastErr = sc.Stats(); failN != 1 || lastErr == nil {
		t.Fatalf("failure not recorded: %d, %v", failN, lastErr)
	}
}

func TestEvaluateLiveBurnRates(t *testing.T) {
	sc := NewScraper("", 16)
	// 5 points: p99 healthy in 4 of 5; counter advancing 2e5/s then
	// stalling (rate 0 on the last pair); breaker open once.
	for i, tc := range []struct {
		p99, ctr, brk float64
	}{
		{9e5, 0, 0}, {8e5, 2e5, 0}, {2e6, 4e5, 1}, {9e5, 6e5, 0}, {9e5, 6e5, 0},
	} {
		payload := fmt.Sprintf(
			"rmserver_decision_latency_ns{quantile=\"0.99\"} %g\n"+
				"rmserver_shard_decisions_total %g\n"+
				"rmserver_breaker_state %g\n# EOF\n", tc.p99, tc.ctr, tc.brk)
		sc.Ingest([]byte(payload), int64(i+1)*1000)
	}
	sts, err := sc.EvaluateLive(LiveServiceSLOs())
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]LiveStatus{}
	for _, st := range sts {
		byName[st.SLO.Name] = st
	}

	p99 := byName["live-decision-p99"]
	if p99.Points != 5 || p99.Good != 4 || p99.Met {
		t.Fatalf("p99 status = %+v", p99)
	}
	// Attainment 0.8 against target 0.95 burns 4x budget.
	if math.Abs(p99.BurnRate-0.2/0.05) > 1e-9 {
		t.Fatalf("p99 burn = %v, want 4", p99.BurnRate)
	}
	if p99.Current != 9e5 {
		t.Fatalf("p99 current = %v", p99.Current)
	}

	tp := byName["live-throughput"]
	// 4 pairs: rates 2e5, 2e5, 2e5, 0 → 3 good of 4, target 0.9 missed.
	if tp.Points != 4 || tp.Good != 3 || tp.Met {
		t.Fatalf("throughput status = %+v", tp)
	}
	if tp.Current != 0 {
		t.Fatalf("throughput current = %v, want stalled 0", tp.Current)
	}

	brk := byName["live-breaker-closed"]
	if brk.Points != 5 || brk.Good != 4 || brk.Met {
		t.Fatalf("breaker status = %+v", brk)
	}
	// Attainment 0.8 against a 1% budget burns 20x.
	if math.Abs(brk.BurnRate-0.2/0.01) > 1e-9 {
		t.Fatalf("breaker burn = %v, want 20", brk.BurnRate)
	}

	// Empty window: attainment 1, zero burn, met.
	empty, err := NewScraper("", 4).EvaluateLive(LiveServiceSLOs())
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range empty {
		if st.Points != 0 || st.Attainment != 1 || st.BurnRate != 0 || !st.Met {
			t.Fatalf("empty-window status = %+v", st)
		}
	}
}

func TestLiveSLOValidate(t *testing.T) {
	bad := []LiveSLO{
		{Sample: "x", Op: ">=", Target: 0.9},
		{Name: "n", Op: ">=", Target: 0.9},
		{Name: "n", Sample: "x", Op: "==", Target: 0.9},
		{Name: "n", Sample: "x", Op: ">=", Target: 0},
		{Name: "n", Sample: "x", Op: ">=", Target: 1.5},
	}
	for i, l := range bad {
		if err := l.Validate(); err == nil {
			t.Errorf("case %d validated: %+v", i, l)
		}
		if _, err := NewScraper("", 4).EvaluateLive([]LiveSLO{l}); err == nil {
			t.Errorf("case %d evaluated: %+v", i, l)
		}
	}
	ok := LiveSLO{Name: "n", Sample: "x", Op: "<=", Goal: 1, Target: 1}
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestParseSampleLineEdges(t *testing.T) {
	for _, line := range []string{
		"",
		"# TYPE x gauge",
		"name_only",
		"name notanumber",
		`unterminated{a="b 1`,
		" 5",
	} {
		if name, v, ok := parseSampleLine(line); ok {
			t.Errorf("parseSampleLine(%q) = %q, %v, true; want skip", line, name, v)
		}
	}
	name, v, ok := parseSampleLine(`m{a="x\"y"} 3 1700000000`)
	if !ok || name != `m{a="x\"y"}` || v != 3 {
		t.Fatalf("escaped-quote line = %q, %v, %v", name, v, ok)
	}
	if !strings.HasPrefix(name, "m{") {
		t.Fatal("label block lost")
	}
}
