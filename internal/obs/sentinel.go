package obs

import (
	"fmt"
	"sort"
	"strings"
)

// SentinelConfig parameterizes the perf-regression sentinel: the
// newest record of each (kind, label) group is judged against the
// median of the previous LastN records of the same group, metric by
// metric, with a relative Tolerance band. Median-of-last-N makes the
// baseline robust to one noisy historical run; the tolerance absorbs
// run-to-run jitter while still catching real cliffs.
type SentinelConfig struct {
	// LastN is the trajectory depth behind the judged record
	// (default 5).
	LastN int
	// Tolerance is the allowed relative degradation (default 0.25:
	// a higher-better metric may fall to 75% of the baseline, a
	// lower-better metric may rise to 125%).
	Tolerance float64
	// MinHistory is the minimum number of baseline records required
	// to judge a group at all (default 1 — a single prior run is a
	// baseline, just a weak one).
	MinHistory int
	// Only restricts judgment to metrics whose name contains one of
	// these substrings (empty = every metric with a known direction).
	Only []string
}

// withDefaults fills unset knobs.
func (c SentinelConfig) withDefaults() SentinelConfig {
	if c.LastN <= 0 {
		c.LastN = 5
	}
	if c.Tolerance <= 0 {
		c.Tolerance = 0.25
	}
	if c.MinHistory <= 0 {
		c.MinHistory = 1
	}
	return c
}

// judges reports whether the metric is in scope for this config.
func (c SentinelConfig) judges(metric string) bool {
	if len(c.Only) == 0 {
		return true
	}
	for _, s := range c.Only {
		if strings.Contains(metric, s) {
			return true
		}
	}
	return false
}

// Finding is one metric's verdict for one group's newest record.
// Regressed findings are the sentinel's output; healthy metrics are
// reported too (Regressed false) so a gate's log shows what was
// checked, not just what failed.
type Finding struct {
	Kind      string    `json:"kind"`
	Label     string    `json:"label"`
	Metric    string    `json:"metric"`
	Direction Direction `json:"-"`
	// DirectionName is Direction rendered for JSON.
	DirectionName string `json:"direction"`
	// Baseline is the median of the prior LastN values; Observed is
	// the newest record's value; Ratio is Observed/Baseline (0 when
	// Baseline is 0).
	Baseline float64 `json:"baseline"`
	Observed float64 `json:"observed"`
	Ratio    float64 `json:"ratio"`
	// History is the number of baseline records behind the median.
	History   int  `json:"history"`
	Regressed bool `json:"regressed"`
}

// String renders the finding for logs.
func (f Finding) String() string {
	verdict := "ok"
	if f.Regressed {
		verdict = "REGRESSED"
	}
	return fmt.Sprintf("%s %s/%s %s: observed %g vs median-of-%d baseline %g (ratio %.3f, %s)",
		verdict, f.Kind, f.Label, f.Metric, f.Observed, f.History, f.Baseline, f.Ratio, f.DirectionName)
}

// median of a non-empty slice (copy; input untouched).
func median(xs []float64) float64 {
	ys := append([]float64(nil), xs...)
	sort.Float64s(ys)
	n := len(ys)
	if n%2 == 1 {
		return ys[n/2]
	}
	return (ys[n/2-1] + ys[n/2]) / 2
}

// CheckRecord judges latest against its trajectory (history oldest
// first; failed records are skipped — a crashed run is not a perf
// baseline). Only metrics present in latest, carried by at least
// MinHistory baseline records, with a known direction, and matching
// Only are judged.
func (c SentinelConfig) CheckRecord(history []RunRecord, latest RunRecord) []Finding {
	c = c.withDefaults()
	// Trajectory per metric: the last LastN healthy values.
	base := make(map[string][]float64)
	healthy := 0
	for _, r := range history {
		if r.Failed() {
			continue
		}
		healthy++
	}
	skip := healthy - c.LastN // older runs beyond the window
	for _, r := range history {
		if r.Failed() {
			continue
		}
		if skip > 0 {
			skip--
			continue
		}
		for k, v := range r.Values {
			base[k] = append(base[k], v)
		}
	}

	metrics := make([]string, 0, len(latest.Values))
	for k := range latest.Values {
		metrics = append(metrics, k)
	}
	sort.Strings(metrics)

	var out []Finding
	for _, m := range metrics {
		dir := MetricDirection(m)
		if dir == Unknown || !c.judges(m) {
			continue
		}
		hist := base[m]
		if len(hist) < c.MinHistory {
			continue
		}
		b := median(hist)
		o := latest.Values[m]
		f := Finding{
			Kind: latest.Kind, Label: latest.Label, Metric: m,
			Direction: dir, DirectionName: dir.String(),
			Baseline: b, Observed: o, History: len(hist),
		}
		if b != 0 {
			f.Ratio = o / b
		}
		switch dir {
		case HigherBetter:
			f.Regressed = o < b*(1-c.Tolerance)
		case LowerBetter:
			f.Regressed = o > b*(1+c.Tolerance)
		}
		out = append(out, f)
	}
	return out
}

// CheckStore judges the newest record of every (kind, label) group in
// the store (restricted by filter) against that group's trajectory.
// Groups whose newest record is a failure yield one synthetic
// regressed finding — a run that cannot report numbers has, for
// gating purposes, regressed.
func (c SentinelConfig) CheckStore(s *Store, filter Filter) ([]Finding, error) {
	groups, err := s.Labels(filter)
	if err != nil {
		return nil, err
	}
	var out []Finding
	for _, g := range groups {
		gf := filter
		gf.Kind, gf.Label = g[0], g[1]
		recs, err := s.Query(gf)
		if err != nil {
			return nil, err
		}
		if len(recs) < 2 {
			continue // nothing to compare against
		}
		latest := recs[len(recs)-1]
		if latest.Failed() {
			out = append(out, Finding{
				Kind: latest.Kind, Label: latest.Label,
				Metric: "run", DirectionName: Unknown.String(),
				Regressed: true,
			})
			continue
		}
		out = append(out, c.CheckRecord(recs[:len(recs)-1], latest)...)
	}
	return out, nil
}

// Regressions filters the findings down to the failures.
func Regressions(fs []Finding) []Finding {
	var out []Finding
	for _, f := range fs {
		if f.Regressed {
			out = append(out, f)
		}
	}
	return out
}
