package obs

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// seedStore writes n records through the normal append path and
// closes the handle, returning the store dir.
func seedStore(t *testing.T, n int) string {
	t.Helper()
	dir := t.TempDir()
	s, err := Open(dir, WithClock(func() int64 { return 1000 }))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if _, err := s.Append(RunRecord{
			Kind: KindContention, Label: fmt.Sprintf("l%d", i),
			Values: map[string]float64{"m": float64(i)},
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	return dir
}

// truncateLog chops the store log to all but the last cut bytes,
// simulating a writer that crashed mid-Write.
func truncateLog(t *testing.T, dir string, cut int) {
	t.Helper()
	path := filepath.Join(dir, storeFile)
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-int64(cut)); err != nil {
		t.Fatal(err)
	}
}

func TestStoreRecoversTornFinalLine(t *testing.T) {
	dir := seedStore(t, 3)
	// Tear the final record: drop its trailing 10 bytes (newline
	// included), leaving an unparseable JSON prefix.
	truncateLog(t, dir, 10)

	s, err := Open(dir)
	if err != nil {
		t.Fatalf("torn final line bricked Open: %v", err)
	}
	defer s.Close()
	rec := s.Recovery()
	if rec.Recovered != 1 || rec.Dropped == 0 || !strings.Contains(rec.Message, "torn") {
		t.Fatalf("recovery not surfaced: %+v", rec)
	}
	recs, err := s.Query(Filter{})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].Label != "l0" || recs[1].Label != "l1" {
		t.Fatalf("history not intact after recovery: %+v", recs)
	}
	// The log is clean again: appends resume and a fresh Open sees no
	// damage.
	if _, err := s.Append(RunRecord{Kind: KindContention, Label: "after"}); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Recovery().Recovered != 0 {
		t.Fatalf("second Open still sees damage: %+v", s2.Recovery())
	}
	recs, err = s2.Query(Filter{})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 || recs[2].Label != "after" {
		t.Fatalf("post-recovery append lost: %+v", recs)
	}
}

func TestStoreRecoversMissingFinalNewline(t *testing.T) {
	dir := seedStore(t, 2)
	// Drop only the trailing newline: the final record's JSON is
	// whole, so it must be salvaged, not dropped.
	truncateLog(t, dir, 1)

	s, err := Open(dir)
	if err != nil {
		t.Fatalf("missing final newline bricked Open: %v", err)
	}
	defer s.Close()
	rec := s.Recovery()
	if rec.Recovered != 1 || rec.Dropped != 0 || !strings.Contains(rec.Message, "newline") {
		t.Fatalf("recovery not surfaced: %+v", rec)
	}
	recs, err := s.Query(Filter{})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[1].Label != "l1" {
		t.Fatalf("salvageable final record lost: %+v", recs)
	}
	// The repair restored the newline, so the next append starts on
	// its own line.
	if _, err := s.Append(RunRecord{Kind: KindContention, Label: "after"}); err != nil {
		t.Fatal(err)
	}
	recs, err = s.Query(Filter{})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 || recs[2].Label != "after" {
		t.Fatalf("append after newline repair corrupted the log: %+v", recs)
	}
}

func TestStoreInteriorCorruptionStillHardErrors(t *testing.T) {
	dir := seedStore(t, 3)
	path := filepath.Join(dir, storeFile)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the middle record in place: interior damage is not a
	// torn append and must not be silently skipped.
	lines := strings.SplitAfter(string(data), "\n")
	lines[1] = "GARBAGE" + lines[1]
	if err := os.WriteFile(path, []byte(strings.Join(lines, "")), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil || !strings.Contains(err.Error(), ":2:") {
		t.Fatalf("interior corruption did not hard-error: %v", err)
	}
}

func TestStoreQueryToleratesTornTailWithoutRepairing(t *testing.T) {
	dir := seedStore(t, 2)
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// Tear the tail *after* the handle is open — the shape of another
	// process's append in flight (or crash).
	truncateLog(t, dir, 5)
	recs, err := s.Query(Filter{})
	if err != nil {
		t.Fatalf("query errored on torn tail: %v", err)
	}
	if len(recs) != 1 || recs[0].Label != "l0" {
		t.Fatalf("query with torn tail = %+v, want the intact prefix", recs)
	}
	// Query must not have mutated the file: the torn bytes are still
	// there for the next Open to judge.
	fi, err := os.Stat(filepath.Join(dir, storeFile))
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() == 0 {
		t.Fatal("query truncated the log")
	}
}

func TestStoreConcurrentHandlesUniqueOrderedSeqs(t *testing.T) {
	dir := t.TempDir()
	const handles, each = 2, 25
	stores := make([]*Store, handles)
	for i := range stores {
		s, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		stores[i] = s
	}
	var wg sync.WaitGroup
	errs := make(chan error, handles*each)
	for h, s := range stores {
		wg.Add(1)
		go func(h int, s *Store) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if _, err := s.Append(RunRecord{
					Kind: KindService, Label: fmt.Sprintf("h%d", h),
					Values: map[string]float64{"i": float64(i)},
				}); err != nil {
					errs <- err
					return
				}
			}
		}(h, s)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	recs, err := stores[0].Query(Filter{})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != handles*each {
		t.Fatalf("%d records stored, want %d", len(recs), handles*each)
	}
	// Seq must be unique and strictly increasing in append order —
	// the property newest-run selection (sentinel, Series) depends on.
	seen := make(map[int64]bool, len(recs))
	prev := int64(0)
	for i, r := range recs {
		if seen[r.Seq] {
			t.Fatalf("duplicate seq %d at record %d", r.Seq, i)
		}
		seen[r.Seq] = true
		if r.Seq <= prev {
			t.Fatalf("seq went backwards at record %d: %d after %d", i, r.Seq, prev)
		}
		prev = r.Seq
	}
	// A fresh handle resumes numbering past everything written.
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	r, err := s.Append(RunRecord{Kind: KindService, Label: "tail"})
	if err != nil {
		t.Fatal(err)
	}
	if r.Seq <= prev {
		t.Fatalf("fresh handle reused seq %d (max was %d)", r.Seq, prev)
	}
}
