// Package obs is the cross-run observability plane: the persistent
// layer that turns each run's evaporating telemetry into longitudinal
// evidence. Where internal/telemetry and internal/audit observe one
// process while it runs, obs keeps a versioned record of every run —
// config fingerprint, seed, headline values, audit conformance, the
// full OpenMetrics snapshot — in an embedded, pure-Go store, and
// answers the questions only history can: is the platform still
// meeting its SLOs over the last N runs (slo.go), and did this run
// regress against the stored trajectory (sentinel.go)?
//
// The store is an append-only JSONL file, so records are durable the
// moment Append returns, diff cleanly under version control, and can
// be read by anything that can split lines and parse JSON. Everything
// a record carries except its wall-clock timestamp and sequence
// number is a pure function of the run, so two identical-seed runs
// store byte-identical metric payloads — the same determinism
// contract the rest of the repository is built on, now checkable
// across process lifetimes.
package obs

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
)

// SchemaVersion is stamped into every record so future readers can
// migrate old stores. Bump it when the record shape changes
// incompatibly.
const SchemaVersion = 1

// Record kinds. Kind is an open string — external tools may ingest
// their own — but the writers in this repository use these.
const (
	// KindContention is one contention experiment (socsim / sweep run).
	KindContention = "contention"
	// KindAdmission is one admission-overlay run.
	KindAdmission = "admission"
	// KindBench is one benchmark emission (BENCH_*.json trajectory).
	KindBench = "bench"
	// KindService is one admission-service session (rmd lifetime or
	// rmload profile run).
	KindService = "service"
)

// RunRecord is one run's persistent evidence. Values carries the
// headline numbers the SLO engine and the regression sentinel operate
// on; Metrics carries the full OpenMetrics snapshot for after-the-fact
// debugging. Seq and RecordedUnix are assigned by the store on append
// and are the only fields that differ between two identical runs.
type RunRecord struct {
	// Schema is the record schema version (SchemaVersion at write).
	Schema int `json:"schema"`
	// Seq is the store-assigned append ordinal (1-based).
	Seq int64 `json:"seq,omitempty"`
	// RecordedUnix is the wall-clock append time (Unix seconds). It is
	// deliberately outside the deterministic payload.
	RecordedUnix int64 `json:"recorded_unix,omitempty"`

	// Kind classifies the run (KindContention, KindAdmission,
	// KindBench, or an external tool's own kind).
	Kind string `json:"kind"`
	// Label is the human configuration label ("none/hogs=6/..." for
	// sweep cells, the benchmark name for bench records).
	Label string `json:"label"`
	// ConfigFP fingerprints the run's configuration: runs with equal
	// fingerprints are re-runs of the same configuration (seeds may
	// differ — the seed is a separate axis).
	ConfigFP string `json:"config_fp,omitempty"`
	// Seed is the run's RNG seed (0 when not seed-driven).
	Seed uint64 `json:"seed,omitempty"`

	// Values holds the run's headline numbers, keyed by metric name
	// (e.g. "crit.p95_ns", "audit.conformance", "new.events_per_sec").
	Values map[string]float64 `json:"values,omitempty"`
	// Metrics is the run's full OpenMetrics snapshot, verbatim.
	Metrics string `json:"metrics,omitempty"`
	// MetricsFP fingerprints Metrics (FNV-1a hex, empty when Metrics
	// is) so payload byte-identity is checkable without diffing bodies.
	MetricsFP string `json:"metrics_fp,omitempty"`

	// Err is the run's failure record; empty on success. Failed runs
	// keep their Values and Metrics — that evidence is exactly what a
	// failure diagnosis needs.
	Err string `json:"err,omitempty"`
}

// Failed reports whether the record is a failure record.
func (r RunRecord) Failed() bool { return r.Err != "" }

// Value returns the named headline value and whether it is present.
func (r RunRecord) Value(name string) (float64, bool) {
	v, ok := r.Values[name]
	return v, ok
}

// Fingerprint hashes bytes into the store's short hex fingerprint
// format (64-bit FNV-1a). It is not cryptographic — it detects drift,
// not adversaries.
func Fingerprint(b []byte) string {
	h := fnv.New64a()
	h.Write(b)
	return fmt.Sprintf("%016x", h.Sum64())
}

// FingerprintConfig canonicalizes a flat config map (sorted keys,
// "k=v" joined by ";") and fingerprints it. Writers build their
// ConfigFP from the configuration axes that define "the same
// experiment" — not from seeds, output paths, or observer options.
func FingerprintConfig(cfg map[string]string) string {
	keys := make([]string, 0, len(cfg))
	for k := range cfg {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, k+"="+cfg[k])
	}
	return Fingerprint([]byte(strings.Join(parts, ";")))
}

// Direction says which way a metric is allowed to move.
type Direction int

// Metric directions.
const (
	// Unknown metrics are never judged by the sentinel.
	Unknown Direction = iota
	// HigherBetter flags drops (throughput, conformance, hit rates).
	HigherBetter
	// LowerBetter flags rises (latencies, violations, allocations).
	LowerBetter
)

// String implements fmt.Stringer.
func (d Direction) String() string {
	switch d {
	case HigherBetter:
		return "higher_better"
	case LowerBetter:
		return "lower_better"
	}
	return "unknown"
}

// exactDirections pins metrics whose names don't carry a usable
// suffix.
var exactDirections = map[string]Direction{
	"row_hit_rate":      HigherBetter,
	"audit.conformance": HigherBetter,
	"rejection_rate":    Unknown, // policy outcome, not a health axis
	"admitted":          Unknown,
	"rejected":          Unknown,
	"mode_changes":      Unknown,
	"audit.observed":    Unknown,
	"audit.violations":  LowerBetter,
	"speedup":           HigherBetter,
	"crit.mean_ns":      LowerBetter,
	"crit.p95_ns":       LowerBetter,
	"crit.max_ns":       LowerBetter,
	"failures":          LowerBetter,
	"runs":              Unknown,
	"seed":              Unknown,
	"events":            Unknown,
	"churn_apps":        Unknown,
	// Service-plane headline metrics (rmd / rmload records).
	"availability":  HigherBetter,
	"throttled":     Unknown, // backpressure doing its job is not a regression
	"breaker_opens": Unknown,
	"decisions":     Unknown,
	"batches":       Unknown,
	"shards":        Unknown,
}

// MetricDirection classifies a metric name: the exact table first,
// then conservative suffix heuristics (throughput suffixes are
// higher-better; latency/alloc/violation suffixes are lower-better;
// anything else is Unknown and left unjudged).
func MetricDirection(name string) Direction {
	if d, ok := exactDirections[name]; ok {
		return d
	}
	// Nested bench keys ("admission_churn.speedup",
	// "new.events_per_sec") classify by their leaf.
	if i := strings.LastIndex(name, "."); i >= 0 {
		if d, ok := exactDirections[name[i+1:]]; ok {
			return d
		}
	}
	// Per-partition-count series points from the parallel-kernel bench
	// ("parallel.series.events_per_sec_p4") carry a _p<N> suffix; they
	// judge exactly like the base metric.
	if base, ok := stripPartitionSuffix(name); ok {
		return MetricDirection(base)
	}
	switch {
	case strings.HasSuffix(name, "_per_sec"),
		strings.HasSuffix(name, "_per_ns"),
		strings.HasSuffix(name, ".speedup"),
		strings.HasSuffix(name, "_rate") && strings.Contains(name, "hit"),
		strings.HasSuffix(name, ".conformance"):
		return HigherBetter
	case strings.HasSuffix(name, "_ns"),
		strings.HasSuffix(name, "_ps"),
		strings.HasSuffix(name, "_per_event"),
		strings.HasSuffix(name, "_per_op"),
		strings.HasSuffix(name, "_per_decision"),
		strings.HasSuffix(name, ".violations"),
		strings.HasSuffix(name, "_stall"),
		strings.HasSuffix(name, "_latency"):
		return LowerBetter
	}
	return Unknown
}

// stripPartitionSuffix removes a trailing _p<digits> partition-count
// marker ("events_per_sec_p4" → "events_per_sec"); ok reports whether
// one was present.
func stripPartitionSuffix(name string) (base string, ok bool) {
	i := strings.LastIndex(name, "_p")
	if i < 0 || i+2 >= len(name) {
		return name, false
	}
	for _, r := range name[i+2:] {
		if r < '0' || r > '9' {
			return name, false
		}
	}
	return name[:i], true
}
