//go:build !unix

package obs

import "sync"

// Platforms without flock fall back to a process-local lock: handles
// within one process still serialize correctly (the common case for
// tests and single-binary tools), but cross-process appends are not
// protected. The store's documentation flags this limitation.
var fallbackLocks sync.Map // dir -> *sync.Mutex

func lockDir(dir string) (unlock func(), err error) {
	mu, _ := fallbackLocks.LoadOrStore(dir, &sync.Mutex{})
	m := mu.(*sync.Mutex)
	m.Lock()
	return m.Unlock, nil
}
