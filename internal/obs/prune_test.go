package obs

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestStorePruneKeepsNewestAndSeq(t *testing.T) {
	s := testStore(t)
	for i := 0; i < 10; i++ {
		if _, err := s.Append(RunRecord{Kind: KindBench, Label: fmt.Sprintf("r%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	removed, err := s.Prune(3)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 7 {
		t.Fatalf("removed = %d, want 7", removed)
	}
	recs, err := s.Query(Filter{})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("kept %d records, want 3", len(recs))
	}
	// The survivors are the newest, Seq preserved and still increasing.
	for i, r := range recs {
		if want := fmt.Sprintf("r%d", 7+i); r.Label != want {
			t.Fatalf("kept[%d].Label = %q, want %q", i, r.Label, want)
		}
		if want := int64(8 + i); r.Seq != want {
			t.Fatalf("kept[%d].Seq = %d, want %d", i, r.Seq, want)
		}
	}

	// The same handle's next append continues the sequence past the
	// pruned records — the sidecar is untouched.
	r, err := s.Append(RunRecord{Kind: KindBench, Label: "after"})
	if err != nil {
		t.Fatal(err)
	}
	if r.Seq != 11 {
		t.Fatalf("post-prune Seq = %d, want 11", r.Seq)
	}

	// And the append landed in the surviving file (the handle was
	// reopened onto the new inode), visible to a fresh handle.
	s2, err := Open(s.Dir())
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	recs, err = s2.Query(Filter{})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 || recs[3].Label != "after" || recs[3].Seq != 11 {
		t.Fatalf("fresh handle sees %+v", recs)
	}
}

func TestStorePruneNoOpWhenUnderKeep(t *testing.T) {
	s := testStore(t)
	for i := 0; i < 3; i++ {
		if _, err := s.Append(RunRecord{Kind: KindBench}); err != nil {
			t.Fatal(err)
		}
	}
	before, err := os.ReadFile(filepath.Join(s.Dir(), storeFile))
	if err != nil {
		t.Fatal(err)
	}
	removed, err := s.Prune(5)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 0 {
		t.Fatalf("removed = %d, want 0", removed)
	}
	after, err := os.ReadFile(filepath.Join(s.Dir(), storeFile))
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(after) {
		t.Fatal("no-op prune rewrote the log")
	}
}

func TestStorePruneKeepZeroAndErrors(t *testing.T) {
	s := testStore(t)
	for i := 0; i < 4; i++ {
		if _, err := s.Append(RunRecord{Kind: KindBench}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Prune(-1); err == nil || !strings.Contains(err.Error(), "want >= 0") {
		t.Fatalf("Prune(-1) err = %v", err)
	}
	removed, err := s.Prune(0)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 4 {
		t.Fatalf("removed = %d, want 4", removed)
	}
	recs, err := s.Query(Filter{})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("records after Prune(0): %+v", recs)
	}
	// Sequence still continues from the sidecar — no reuse.
	r, err := s.Append(RunRecord{Kind: KindBench})
	if err != nil {
		t.Fatal(err)
	}
	if r.Seq != 5 {
		t.Fatalf("Seq after Prune(0) = %d, want 5", r.Seq)
	}

	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Prune(1); err == nil || !strings.Contains(err.Error(), "closed store") {
		t.Fatalf("Prune on closed store err = %v", err)
	}
}

func TestStorePruneScrubsTornTail(t *testing.T) {
	s := testStore(t)
	for i := 0; i < 3; i++ {
		if _, err := s.Append(RunRecord{Kind: KindBench, Label: fmt.Sprintf("r%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Simulate a crashed writer: unparseable, newline-less tail.
	f, err := os.OpenFile(filepath.Join(s.Dir(), storeFile), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"kind":"ben`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Even when keep covers every whole record, prune rewrites to scrub
	// the garbage tail.
	removed, err := s.Prune(10)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 0 {
		t.Fatalf("removed = %d, want 0 (torn bytes are not records)", removed)
	}
	data, err := os.ReadFile(filepath.Join(s.Dir(), storeFile))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), `{"kind":"ben`) || !strings.HasSuffix(string(data), "\n") {
		t.Fatalf("torn tail survived prune: %q", data)
	}
	recs, err := s.Query(Filter{})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("kept %d records, want 3", len(recs))
	}
}
