package obs

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/telemetry"
)

// contRec builds a healthy contention record with one metric.
func contRec(label string, metric string, v float64) RunRecord {
	return RunRecord{Kind: KindContention, Label: label, Values: map[string]float64{metric: v}}
}

func TestSLOEvaluateAttainmentAndBurnRate(t *testing.T) {
	// 10 runs, 9 conformant: attainment 0.9.
	var recs []RunRecord
	for i := 0; i < 10; i++ {
		v := 1.0
		if i == 3 {
			v = 0.98
		}
		recs = append(recs, contRec("a", "audit.conformance", v))
	}
	slo := SLO{Name: "conf", Metric: "audit.conformance", Op: ">=", Goal: 1.0, Target: 0.8}
	sts, err := Evaluate(recs, []SLO{slo})
	if err != nil {
		t.Fatal(err)
	}
	st := sts[0]
	if st.Runs != 10 || st.Good != 9 || st.Attainment != 0.9 {
		t.Fatalf("status = %+v", st)
	}
	if !st.Met {
		t.Fatal("attainment 0.9 must meet target 0.8")
	}
	// burn = (1-0.9)/(1-0.8) = 0.5.
	if st.BurnRate != 0.5 {
		t.Fatalf("burn rate = %v, want 0.5", st.BurnRate)
	}

	// Tighten the target: unmet, burning 2x budget (to float rounding).
	slo.Target = 0.95
	sts, _ = Evaluate(recs, []SLO{slo})
	if sts[0].Met || math.Abs(sts[0].BurnRate-2) > 1e-9 {
		t.Fatalf("tight status = %+v", sts[0])
	}
}

func TestSLOPerfectConformanceReportsOneHundredPercent(t *testing.T) {
	// The acceptance shape: audited runs with zero violations must
	// evaluate to 100% bound-conformance and zero burn.
	recs := []RunRecord{
		contRec("a", "audit.conformance", 1),
		contRec("a", "audit.conformance", 1),
	}
	sts, err := Evaluate(recs, DefaultSLOs())
	if err != nil {
		t.Fatal(err)
	}
	var found bool
	for _, st := range sts {
		if st.SLO.Name != "bound-conformance" {
			continue
		}
		found = true
		if st.Attainment != 1 || st.BurnRate != 0 || !st.Met || st.Runs != 2 {
			t.Fatalf("conformance status = %+v", st)
		}
	}
	if !found {
		t.Fatal("DefaultSLOs lost the bound-conformance objective")
	}
}

func TestSLOWindowAndFilters(t *testing.T) {
	// 5 old bad runs, then 5 new good ones; window 5 sees only the
	// good tail.
	var recs []RunRecord
	for i := 0; i < 5; i++ {
		recs = append(recs, contRec("a", "audit.conformance", 0))
	}
	for i := 0; i < 5; i++ {
		recs = append(recs, contRec("a", "audit.conformance", 1))
	}
	slo := SLO{Name: "conf", Metric: "audit.conformance", Op: ">=", Goal: 1, Target: 1, Window: 5}
	sts, _ := Evaluate(recs, []SLO{slo})
	if sts[0].Runs != 5 || sts[0].Attainment != 1 || !sts[0].Met {
		t.Fatalf("windowed status = %+v", sts[0])
	}

	// Kind/label filters exclude foreign records; records without the
	// metric are not counted.
	recs = append(recs, RunRecord{Kind: KindBench, Label: "kernel", Values: map[string]float64{"x": 1}})
	recs = append(recs, contRec("b", "other_metric", 1))
	slo.Kind, slo.Label = KindContention, "a"
	sts, _ = Evaluate(recs, []SLO{slo})
	if sts[0].Runs != 5 {
		t.Fatalf("filtered runs = %d, want 5", sts[0].Runs)
	}
}

func TestSLOFailedRunsBurnBudget(t *testing.T) {
	recs := []RunRecord{
		contRec("a", "audit.conformance", 1),
		{Kind: KindContention, Label: "a", Err: "panic: boom"},
	}
	slo := SLO{Name: "conf", Metric: "audit.conformance", Op: ">=", Goal: 1, Target: 1}
	sts, _ := Evaluate(recs, []SLO{slo})
	if sts[0].Runs != 2 || sts[0].Good != 1 || sts[0].Met {
		t.Fatalf("failure accounting = %+v", sts[0])
	}
	if sts[0].BurnRate != MaxBurnRate {
		t.Fatalf("zero-budget burn = %v, want cap %v", sts[0].BurnRate, MaxBurnRate)
	}
}

func TestSLOValidateRejectsBadSpecs(t *testing.T) {
	bad := []SLO{
		{Name: "", Metric: "m", Op: ">=", Goal: 1, Target: 1},
		{Name: "x", Metric: "m", Op: "==", Goal: 1, Target: 1},
		{Name: "x", Metric: "m", Op: ">=", Goal: 1, Target: 0},
		{Name: "x", Metric: "m", Op: ">=", Goal: 1, Target: 1.5},
		{Name: "x", Metric: "m", Op: ">=", Goal: 1, Target: 1, Window: -1},
	}
	for i, s := range bad {
		if _, err := Evaluate(nil, []SLO{s}); err == nil {
			t.Errorf("case %d: invalid spec %+v accepted", i, s)
		}
	}
}

func TestLoadSLOs(t *testing.T) {
	src := `[{"name":"conf","metric":"audit.conformance","op":">=","goal":1,"target":0.99,"window":10}]`
	slos, err := LoadSLOs(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(slos) != 1 || slos[0].Name != "conf" || slos[0].Window != 10 {
		t.Fatalf("loaded = %+v", slos)
	}
	if _, err := LoadSLOs(strings.NewReader(`[{"name":"x"}]`)); err == nil {
		t.Fatal("invalid spec loaded")
	}
	if _, err := LoadSLOs(strings.NewReader(`[{"nmae":"typo"}]`)); err == nil {
		t.Fatal("unknown field accepted")
	}
}

func TestPublishSLOMetrics(t *testing.T) {
	reg := telemetry.NewRegistry()
	PublishSLOMetrics(reg, []SLOStatus{{
		SLO: SLO{Name: "bound-conformance"}, Runs: 4,
		Attainment: 1, BurnRate: 0, Met: true,
	}})
	if v := reg.Gauge("slo.bound-conformance.attainment").Value(); v != 1 {
		t.Fatalf("attainment gauge = %v", v)
	}
	if v := reg.Gauge("slo.bound-conformance.met").Value(); v != 1 {
		t.Fatalf("met gauge = %v", v)
	}
	if v := reg.Gauge("slo.bound-conformance.runs").Value(); v != 4 {
		t.Fatalf("runs gauge = %v", v)
	}
	// The exposition must stay lintable OpenMetrics.
	var buf bytes.Buffer
	if err := reg.WriteOpenMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "slo_bound_conformance_attainment 1") {
		t.Fatalf("exposition missing slo gauge:\n%s", buf.String())
	}
	// Nil registry is a no-op.
	PublishSLOMetrics(nil, nil)
}
