//go:build unix

package obs

import (
	"fmt"
	"os"
	"path/filepath"
	"syscall"
)

// lockDir takes the store's cross-process writer lock: an exclusive
// flock on a dedicated lock file inside the store directory. The
// returned function releases it. flock is advisory, which is enough —
// every writer in this repository goes through Append/Open, and both
// take the lock.
func lockDir(dir string) (unlock func(), err error) {
	f, err := os.OpenFile(filepath.Join(dir, lockFile), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX); err != nil {
		f.Close()
		return nil, fmt.Errorf("flock: %w", err)
	}
	return func() {
		syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
		f.Close()
	}, nil
}
