package obs

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// testStore opens a store in a temp dir with a deterministic clock.
func testStore(t *testing.T) *Store {
	t.Helper()
	var tick int64
	s, err := Open(t.TempDir(), WithClock(func() int64 { tick++; return 1000 + tick }))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestStoreAppendStampsAndPersists(t *testing.T) {
	s := testStore(t)
	rec, err := s.Append(RunRecord{
		Kind: KindContention, Label: "none/hogs=2", Seed: 100,
		Values:  map[string]float64{"crit.p95_ns": 376.8},
		Metrics: "# TYPE x gauge\nx 1\n# EOF\n",
	})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Schema != SchemaVersion || rec.Seq != 1 || rec.RecordedUnix == 0 {
		t.Fatalf("stamp missing: %+v", rec)
	}
	if rec.MetricsFP != Fingerprint([]byte(rec.Metrics)) {
		t.Fatalf("metrics fingerprint %q not derived from payload", rec.MetricsFP)
	}

	// A fresh handle sees the record and continues the sequence.
	s2, err := Open(s.Dir())
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	recs, err := s2.Query(Filter{})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Label != "none/hogs=2" || recs[0].Values["crit.p95_ns"] != 376.8 {
		t.Fatalf("reloaded records = %+v", recs)
	}
	r2, err := s2.Append(RunRecord{Kind: KindContention, Label: "b"})
	if err != nil {
		t.Fatal(err)
	}
	if r2.Seq != 2 {
		t.Fatalf("sequence did not resume: %d", r2.Seq)
	}
}

func TestStoreQueryFilters(t *testing.T) {
	s := testStore(t)
	seed := func(v uint64) *uint64 { return &v }
	for _, r := range []RunRecord{
		{Kind: KindContention, Label: "a", Seed: 1, Values: map[string]float64{"m": 1}},
		{Kind: KindContention, Label: "a", Seed: 2, Values: map[string]float64{"m": 2}},
		{Kind: KindContention, Label: "b", Seed: 1, Err: "boom"},
		{Kind: KindBench, Label: "kernel", Values: map[string]float64{"m": 9}},
	} {
		if _, err := s.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	cases := []struct {
		name string
		f    Filter
		want int
	}{
		{"all", Filter{}, 4},
		{"kind", Filter{Kind: KindBench}, 1},
		{"label", Filter{Label: "a"}, 2},
		{"seed", Filter{Seed: seed(1)}, 2},
		{"failed", Filter{Failed: true}, 1},
		{"ok", Filter{OK: true}, 3},
		{"lastN", Filter{LastN: 2}, 2},
		{"since", Filter{Since: 1003}, 2},
		{"until", Filter{Until: 1002}, 2},
		{"combined", Filter{Kind: KindContention, OK: true, LastN: 1}, 1},
	}
	for _, c := range cases {
		recs, err := s.Query(c.f)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if len(recs) != c.want {
			t.Errorf("%s: %d records, want %d", c.name, len(recs), c.want)
		}
	}
	// LastN keeps the newest.
	recs, _ := s.Query(Filter{LastN: 1})
	if recs[0].Kind != KindBench {
		t.Fatalf("LastN kept %+v, want the bench record", recs[0])
	}
}

func TestStoreSeriesAndLabels(t *testing.T) {
	s := testStore(t)
	for i, v := range []float64{10, 20, 30} {
		if _, err := s.Append(RunRecord{
			Kind: KindContention, Label: "a", Seed: uint64(i),
			Values: map[string]float64{"crit.p95_ns": v},
		}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Append(RunRecord{Kind: KindBench, Label: "kernel"}); err != nil {
		t.Fatal(err)
	}
	series, err := s.Series("crit.p95_ns", Filter{Label: "a"})
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 3 || series[0] != 10 || series[2] != 30 {
		t.Fatalf("series = %v", series)
	}
	// The bench record has no such metric; the dense series skips it.
	all, _ := s.Series("crit.p95_ns", Filter{})
	if len(all) != 3 {
		t.Fatalf("dense series = %v", all)
	}
	labels, err := s.Labels(Filter{})
	if err != nil {
		t.Fatal(err)
	}
	if len(labels) != 2 || labels[0] != [2]string{KindContention, "a"} || labels[1] != [2]string{KindBench, "kernel"} {
		t.Fatalf("labels = %v", labels)
	}
}

func TestStoreIdenticalPayloadsFingerprintEqual(t *testing.T) {
	s := testStore(t)
	payload := "# TYPE dram_reads counter\ndram_reads_total 42\n# EOF\n"
	r1, err := s.Append(RunRecord{Kind: KindContention, Label: "a", Metrics: payload})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.Append(RunRecord{Kind: KindContention, Label: "a", Metrics: payload})
	if err != nil {
		t.Fatal(err)
	}
	if r1.MetricsFP != r2.MetricsFP || r1.Metrics != r2.Metrics {
		t.Fatal("identical payloads must store byte-identically")
	}
	if r1.Seq == r2.Seq || r1.RecordedUnix == r2.RecordedUnix {
		t.Fatal("store stamps must still distinguish the two appends")
	}
}

func TestStoreCorruptLineErrors(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, storeFile), []byte("{\"kind\":\"x\"}\nnot json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil || !strings.Contains(err.Error(), ":2:") {
		t.Fatalf("corrupt store opened without a line-numbered error: %v", err)
	}
}

func TestStoreClosedAppendFails(t *testing.T) {
	s := testStore(t)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append(RunRecord{Kind: "x"}); err == nil {
		t.Fatal("append on closed store succeeded")
	}
}

func TestFingerprintConfigOrderIndependent(t *testing.T) {
	a := FingerprintConfig(map[string]string{"hogs": "6", "mechs": "dsu", "workload": "infotainment"})
	b := FingerprintConfig(map[string]string{"workload": "infotainment", "mechs": "dsu", "hogs": "6"})
	if a != b {
		t.Fatal("fingerprint depends on map order")
	}
	c := FingerprintConfig(map[string]string{"hogs": "7", "mechs": "dsu", "workload": "infotainment"})
	if a == c {
		t.Fatal("fingerprint ignored a config change")
	}
}

func TestMetricDirection(t *testing.T) {
	cases := map[string]Direction{
		"crit.p95_ns":                   LowerBetter,
		"crit.mean_ns":                  LowerBetter,
		"row_hit_rate":                  HigherBetter,
		"audit.conformance":             HigherBetter,
		"audit.violations":              LowerBetter,
		"new.events_per_sec":            HigherBetter,
		"new.allocs_per_event":          LowerBetter,
		"admission_churn.speedup":       HigherBetter,
		"cached.decisions_per_sec":      HigherBetter,
		"uncached.ns_per_decision":      LowerBetter,
		"speedup":                       HigherBetter,
		"admitted":                      Unknown,
		"rejection_rate":                Unknown,
		"some.brand.new.metric":         Unknown,
		"convolve.cached.allocs_per_op": LowerBetter,
		// Parallel-kernel per-partition-count series: the _p<N> suffix
		// is a core-count marker, not part of the metric, so each point
		// judges like its base metric.
		"parallel.series.events_per_sec_p4":   HigherBetter,
		"parallel.series.events_per_sec_p8":   HigherBetter,
		"parallel.series.ns_per_event_p2":     LowerBetter,
		"parallel.series.allocs_per_event_p1": LowerBetter,
		"parallel.gomaxprocs":                 Unknown,
		// Not partition markers: no digits, or an unknown base.
		"throughput_p":      Unknown,
		"mystery_metric_p4": Unknown,
	}
	for name, want := range cases {
		if got := MetricDirection(name); got != want {
			t.Errorf("MetricDirection(%q) = %v, want %v", name, got, want)
		}
	}
}
