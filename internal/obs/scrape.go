package obs

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Scraper is the live half of the observability plane: where the Store
// tracks cross-run trajectories, the Scraper polls one process's
// /metrics endpoint and keeps a fixed-size ring of recent points per
// sample, so `obsq watch` can show burn rates while the service is
// still running instead of after the run lands in the store. It speaks
// the subset of OpenMetrics text exposition that
// telemetry.WriteOpenMetrics emits — labeled sample lines, summary
// quantiles, exemplar clauses — and keys series by the full sample
// name including its label block, so
// `rmserver_shard_queue_wait_ns{shard="3",quantile="0.99"}` is its own
// series.
type Scraper struct {
	url    string
	size   int
	client *http.Client
	// nowMilli stamps ingested points; tests pin it.
	nowMilli func() int64

	mu      sync.Mutex
	series  map[string]*scrapeSeries
	scrapes int
	fails   int
	lastErr error
}

// ScrapePoint is one observed sample value.
type ScrapePoint struct {
	UnixMilli int64   `json:"unix_milli"`
	Value     float64 `json:"value"`
}

// scrapeSeries is a fixed-size ring of points, oldest overwritten
// first — bounded memory no matter how long a watch runs.
type scrapeSeries struct {
	buf  []ScrapePoint
	next int
	n    int
}

func (r *scrapeSeries) push(p ScrapePoint) {
	r.buf[r.next] = p
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
}

// points returns the ring oldest-first.
func (r *scrapeSeries) points() []ScrapePoint {
	out := make([]ScrapePoint, 0, r.n)
	start := r.next - r.n
	if start < 0 {
		start += len(r.buf)
	}
	for i := 0; i < r.n; i++ {
		out = append(out, r.buf[(start+i)%len(r.buf)])
	}
	return out
}

// DefaultScrapeRing is the per-series ring size when NewScraper is
// given 0: at a 1s poll interval it holds ~8.5 minutes of history.
const DefaultScrapeRing = 512

// NewScraper builds a scraper polling url (an OpenMetrics endpoint,
// e.g. http://localhost:9090/metrics) with ringSize points retained
// per series (0 = DefaultScrapeRing).
func NewScraper(url string, ringSize int) *Scraper {
	if ringSize <= 0 {
		ringSize = DefaultScrapeRing
	}
	return &Scraper{
		url:      url,
		size:     ringSize,
		client:   &http.Client{Timeout: 10 * time.Second},
		nowMilli: func() int64 { return time.Now().UnixMilli() },
		series:   make(map[string]*scrapeSeries),
	}
}

// Scrape polls the endpoint once and ingests the exposition. Failures
// are counted and retained (LastError) but leave existing series
// intact — a watch rides out a restarting service.
func (s *Scraper) Scrape() error {
	resp, err := s.client.Get(s.url)
	if err == nil {
		var body []byte
		body, err = io.ReadAll(io.LimitReader(resp.Body, 16<<20))
		resp.Body.Close()
		if err == nil && resp.StatusCode != http.StatusOK {
			err = fmt.Errorf("obs: scrape %s: HTTP %d", s.url, resp.StatusCode)
		}
		if err == nil {
			s.Ingest(body, s.nowMilli())
			return nil
		}
	}
	s.mu.Lock()
	s.fails++
	s.lastErr = err
	s.mu.Unlock()
	return err
}

// Ingest parses one exposition payload and records every sample at the
// given timestamp. Returns the number of samples recorded. Comment,
// metadata, and unparsable lines are skipped — a scraper is a
// consumer, not a linter (cmd/omlint is the linter).
func (s *Scraper) Ingest(text []byte, atUnixMilli int64) int {
	recorded := 0
	s.mu.Lock()
	defer s.mu.Unlock()
	rest := string(text)
	for len(rest) > 0 {
		var line string
		if i := strings.IndexByte(rest, '\n'); i >= 0 {
			line, rest = rest[:i], rest[i+1:]
		} else {
			line, rest = rest, ""
		}
		name, v, ok := parseSampleLine(line)
		if !ok {
			continue
		}
		sr := s.series[name]
		if sr == nil {
			sr = &scrapeSeries{buf: make([]ScrapePoint, s.size)}
			s.series[name] = sr
		}
		sr.push(ScrapePoint{UnixMilli: atUnixMilli, Value: v})
		recorded++
	}
	s.scrapes++
	return recorded
}

// parseSampleLine extracts (sample name with label block, value) from
// one exposition line. The label block may contain spaces and '#'
// inside quoted values, and the value may be followed by a timestamp
// and/or an exemplar clause (` # {...} v ts`) — both ignored here.
func parseSampleLine(line string) (string, float64, bool) {
	if line == "" || line[0] == '#' {
		return "", 0, false
	}
	nameEnd := -1
	for i := 0; i < len(line); i++ {
		c := line[i]
		if c == ' ' {
			nameEnd = i
			break
		}
		if c != '{' {
			continue
		}
		// Scan the label block honoring quotes and escapes.
		j := i + 1
		inQuote := false
		for ; j < len(line); j++ {
			switch {
			case inQuote && line[j] == '\\':
				j++ // skip escaped char
			case line[j] == '"':
				inQuote = !inQuote
			case !inQuote && line[j] == '}':
				goto closed
			}
		}
		return "", 0, false // unterminated label block
	closed:
		nameEnd = j + 1
		break
	}
	if nameEnd <= 0 {
		return "", 0, false
	}
	name := line[:nameEnd]
	fields := strings.Fields(line[nameEnd:])
	if len(fields) == 0 {
		return "", 0, false
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return "", 0, false
	}
	return name, v, true
}

// Names returns every series name seen so far, sorted.
func (s *Scraper) Names() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.series))
	for k := range s.series {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Latest returns the most recent point of a series.
func (s *Scraper) Latest(name string) (ScrapePoint, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sr := s.series[name]
	if sr == nil || sr.n == 0 {
		return ScrapePoint{}, false
	}
	i := sr.next - 1
	if i < 0 {
		i += len(sr.buf)
	}
	return sr.buf[i], true
}

// Points returns a series' retained points oldest-first.
func (s *Scraper) Points(name string) []ScrapePoint {
	s.mu.Lock()
	defer s.mu.Unlock()
	sr := s.series[name]
	if sr == nil {
		return nil
	}
	return sr.points()
}

// Rate computes a counter series' per-second rate over the retained
// window: the sum of positive consecutive deltas divided by the
// elapsed time. A negative delta is a counter reset (process restart)
// and contributes nothing — the standard monotonic-counter treatment.
// Needs at least two points spanning nonzero time.
func (s *Scraper) Rate(name string) (float64, bool) {
	pts := s.Points(name)
	return ratePoints(pts)
}

func ratePoints(pts []ScrapePoint) (float64, bool) {
	if len(pts) < 2 {
		return 0, false
	}
	elapsed := pts[len(pts)-1].UnixMilli - pts[0].UnixMilli
	if elapsed <= 0 {
		return 0, false
	}
	var sum float64
	for i := 1; i < len(pts); i++ {
		if d := pts[i].Value - pts[i-1].Value; d > 0 {
			sum += d
		}
	}
	return sum / (float64(elapsed) / 1000), true
}

// Stats reports scrape attempts: successful ingests, failures, and the
// most recent failure (nil when the last scrape succeeded).
func (s *Scraper) Stats() (ok, failed int, lastErr error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.scrapes, s.fails, s.lastErr
}

// LiveSLO is an objective over a live series rather than stored runs:
// "of the retained points (or point-to-point rates), at least Target
// must be Op Goal". It reuses the store SLOs' burn-rate semantics so
// `obsq watch` and `obsq slo` read the same way.
type LiveSLO struct {
	Name string `json:"name"`
	// Sample is the series name, label block included (e.g.
	// `rmserver_decision_latency_ns{quantile="0.99"}`).
	Sample string `json:"sample"`
	// Rate evaluates the per-second rate between consecutive points
	// instead of the level — for counters.
	Rate   bool    `json:"rate,omitempty"`
	Op     string  `json:"op"`
	Goal   float64 `json:"goal"`
	Target float64 `json:"target"`
}

// Validate checks the spec.
func (l LiveSLO) Validate() error {
	if l.Name == "" || l.Sample == "" {
		return fmt.Errorf("obs: live SLO needs name and sample: %+v", l)
	}
	if l.Op != ">=" && l.Op != "<=" {
		return fmt.Errorf("obs: live SLO %s: op %q, want \">=\" or \"<=\"", l.Name, l.Op)
	}
	if l.Target <= 0 || l.Target > 1 {
		return fmt.Errorf("obs: live SLO %s: target %v, want (0, 1]", l.Name, l.Target)
	}
	return nil
}

// LiveStatus is one live objective's evaluation over the retained
// window.
type LiveStatus struct {
	SLO LiveSLO `json:"slo"`
	// Points counted (rates for Rate objectives); Good of them met the
	// goal.
	Points int `json:"points"`
	Good   int `json:"good"`
	// Current is the newest counted value (level or rate); NaN-free: 0
	// when no points counted.
	Current    float64 `json:"current"`
	Attainment float64 `json:"attainment"`
	BurnRate   float64 `json:"burn_rate"`
	Met        bool    `json:"met"`
}

// EvaluateLive runs each live objective over the scraper's retained
// points. Invalid specs error rather than silently skipping.
func (s *Scraper) EvaluateLive(slos []LiveSLO) ([]LiveStatus, error) {
	out := make([]LiveStatus, 0, len(slos))
	for _, l := range slos {
		if err := l.Validate(); err != nil {
			return nil, err
		}
		st := LiveStatus{SLO: l}
		vals := s.sloValues(l)
		for _, v := range vals {
			st.Points++
			good := v >= l.Goal
			if l.Op == "<=" {
				good = v <= l.Goal
			}
			if good {
				st.Good++
			}
		}
		if n := len(vals); n > 0 {
			st.Current = vals[n-1]
		}
		st.Attainment = 1
		if st.Points > 0 {
			st.Attainment = float64(st.Good) / float64(st.Points)
		}
		st.BurnRate = burnRate(st.Attainment, l.Target)
		st.Met = st.Attainment >= l.Target
		out = append(out, st)
	}
	return out, nil
}

// sloValues extracts the values an objective judges: point levels, or
// consecutive-pair rates for Rate objectives (reset pairs skipped).
func (s *Scraper) sloValues(l LiveSLO) []float64 {
	pts := s.Points(l.Sample)
	if !l.Rate {
		out := make([]float64, len(pts))
		for i, p := range pts {
			out[i] = p.Value
		}
		return out
	}
	var out []float64
	for i := 1; i < len(pts); i++ {
		dt := pts[i].UnixMilli - pts[i-1].UnixMilli
		dv := pts[i].Value - pts[i-1].Value
		if dt <= 0 || dv < 0 {
			continue
		}
		out = append(out, dv/(float64(dt)/1000))
	}
	return out
}

// LiveServiceSLOs mirrors ServiceSLOs onto the live exposition the
// rmd service publishes: decision tail latency from the summary's p99
// sample, throughput from the decisions counter's rate, and the
// breaker staying closed (state 0). The throughput target matches the
// stored objective's floor; the watch shows burn the moment the
// service dips, instead of after the next rmload run is recorded.
func LiveServiceSLOs() []LiveSLO {
	return []LiveSLO{
		{
			Name:   "live-decision-p99",
			Sample: `rmserver_decision_latency_ns{quantile="0.99"}`,
			Op:     "<=", Goal: 1e6,
			Target: 0.95,
		},
		{
			Name:   "live-throughput",
			Sample: "rmserver_shard_decisions_total",
			Rate:   true,
			Op:     ">=", Goal: 1e5,
			Target: 0.9,
		},
		{
			Name:   "live-breaker-closed",
			Sample: "rmserver_breaker_state",
			Op:     "<=", Goal: 0,
			Target: 0.99,
		},
	}
}
