package obs

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/telemetry"
)

// SLO is one declarative service-level objective evaluated over
// stored runs: "in the last Window runs (matching Filter), at least
// Target of them must have Metric Op Goal". The three defaults
// (DefaultSLOs) encode the predictability contract the paper's
// Resource Manager is supposed to uphold; tools may load their own
// specs from JSON.
type SLO struct {
	// Name identifies the objective in reports and metric keys.
	Name string `json:"name"`
	// Metric is the RunRecord value the objective constrains.
	Metric string `json:"metric"`
	// Op compares a run's value against Goal: ">=" or "<=".
	Op string `json:"op"`
	// Goal is the per-run threshold.
	Goal float64 `json:"goal"`
	// Target is the fraction of windowed runs that must meet Goal
	// (0 < Target <= 1).
	Target float64 `json:"target"`
	// Window is the rolling window in runs (last N with the metric
	// present; 0 = all stored runs).
	Window int `json:"window,omitempty"`
	// Kind/Label restrict which records the objective sees (empty =
	// any). Failed runs are always counted as bad when they match.
	Kind  string `json:"kind,omitempty"`
	Label string `json:"label,omitempty"`
}

// Validate checks the spec.
func (s SLO) Validate() error {
	if s.Name == "" || s.Metric == "" {
		return fmt.Errorf("obs: SLO needs name and metric: %+v", s)
	}
	if s.Op != ">=" && s.Op != "<=" {
		return fmt.Errorf("obs: SLO %s: op %q, want \">=\" or \"<=\"", s.Name, s.Op)
	}
	if s.Target <= 0 || s.Target > 1 {
		return fmt.Errorf("obs: SLO %s: target %v, want (0, 1]", s.Name, s.Target)
	}
	if s.Window < 0 {
		return fmt.Errorf("obs: SLO %s: window %d, want >= 0", s.Name, s.Window)
	}
	return nil
}

// good reports whether one run meets the per-run goal.
func (s SLO) good(r RunRecord) (good, counted bool) {
	if r.Failed() {
		// A failed run is a bad run for every objective that matches
		// its kind/label: it consumed error budget by not delivering.
		return false, true
	}
	v, ok := r.Value(s.Metric)
	if !ok {
		return false, false
	}
	if s.Op == ">=" {
		return v >= s.Goal, true
	}
	return v <= s.Goal, true
}

// MaxBurnRate caps reported burn rates so JSON stays finite when the
// error budget is zero (Target == 1) or fully torched.
const MaxBurnRate = 1000

// SLOStatus is one objective's evaluation over a window of records.
type SLOStatus struct {
	SLO SLO `json:"slo"`
	// Runs is the number of windowed runs that carried the metric (or
	// failed); Good of them met the goal.
	Runs int `json:"runs"`
	Good int `json:"good"`
	// Attainment is Good/Runs (1 when no runs counted — an empty
	// window has spent no budget).
	Attainment float64 `json:"attainment"`
	// BurnRate is the error-budget burn: (1-Attainment)/(1-Target),
	// the standard SRE multiple where 1.0 means "spending exactly the
	// budget". Capped at MaxBurnRate; 0 when nothing was bad.
	BurnRate float64 `json:"burn_rate"`
	// Met reports Attainment >= Target.
	Met bool `json:"met"`
}

// Evaluate runs each objective over the records (append order). Specs
// must validate; invalid specs error rather than silently skipping.
func Evaluate(recs []RunRecord, slos []SLO) ([]SLOStatus, error) {
	out := make([]SLOStatus, 0, len(slos))
	for _, s := range slos {
		if err := s.Validate(); err != nil {
			return nil, err
		}
		st := SLOStatus{SLO: s}
		// Collect the counted runs newest-last, then window the tail.
		var counted []bool // true = good
		for _, r := range recs {
			if s.Kind != "" && r.Kind != s.Kind {
				continue
			}
			if s.Label != "" && r.Label != s.Label {
				continue
			}
			good, ok := s.good(r)
			if !ok {
				continue
			}
			counted = append(counted, good)
		}
		if s.Window > 0 && len(counted) > s.Window {
			counted = counted[len(counted)-s.Window:]
		}
		for _, g := range counted {
			st.Runs++
			if g {
				st.Good++
			}
		}
		st.Attainment = 1
		if st.Runs > 0 {
			st.Attainment = float64(st.Good) / float64(st.Runs)
		}
		st.BurnRate = burnRate(st.Attainment, s.Target)
		st.Met = st.Attainment >= s.Target
		out = append(out, st)
	}
	return out, nil
}

// burnRate computes the capped error-budget burn multiple.
func burnRate(attainment, target float64) float64 {
	bad := 1 - attainment
	if bad <= 0 {
		return 0
	}
	budget := 1 - target
	if budget <= 0 {
		return MaxBurnRate
	}
	br := bad / budget
	if br > MaxBurnRate {
		return MaxBurnRate
	}
	return br
}

// EvaluateStore queries the store and evaluates the objectives over
// every matching record.
func EvaluateStore(s *Store, slos []SLO) ([]SLOStatus, error) {
	recs, err := s.Query(Filter{})
	if err != nil {
		return nil, err
	}
	return Evaluate(recs, slos)
}

// DefaultSLOs is the predictability contract the repository's own
// writers are held to: analytic-bound conformance on audited runs,
// a p99-class tail-latency ceiling on the critical app, and a
// throughput floor on the kernel bench trajectory.
func DefaultSLOs() []SLO {
	return []SLO{
		{
			Name:   "bound-conformance",
			Metric: "audit.conformance",
			Op:     ">=", Goal: 1.0,
			Target: 0.99, Window: 50,
			Kind: KindContention,
		},
		{
			Name:   "crit-p95-latency",
			Metric: "crit.p95_ns",
			Op:     "<=", Goal: 5000,
			Target: 0.95, Window: 50,
			Kind: KindContention,
		},
		{
			Name:   "kernel-events-per-sec",
			Metric: "new.events_per_sec",
			Op:     ">=", Goal: 5e6,
			Target: 0.9, Window: 20,
			Kind: KindBench,
		},
	}
}

// ServiceSLOs is the admission-service plane's contract, evaluated
// over KindService records written by the load harness (cmd/rmload)
// and served live on rmd's /slo endpoint: decisions stay fast at the
// tail, and the steady-state (soak) path stays available. Spike
// profiles deliberately drive the service into backpressure, so the
// availability objective is scoped to soak records — 429s under a
// spike are the design working, not an outage.
func ServiceSLOs() []SLO {
	return []SLO{
		{
			Name:   "service-decision-p99",
			Metric: "decision.p99_ns",
			Op:     "<=", Goal: 1e6, // 1 ms server-side p99 per decision
			Target: 0.95, Window: 50,
			Kind: KindService,
		},
		{
			Name:   "service-availability",
			Metric: "availability",
			Op:     ">=", Goal: 0.999,
			Target: 0.95, Window: 50,
			Kind: KindService, Label: "rmload/soak",
		},
		{
			Name:   "service-throughput",
			Metric: "decisions_per_sec",
			Op:     ">=", Goal: 1e5, // floor; the batched-path target is 1e6
			Target: 0.9, Window: 20,
			Kind: KindService,
		},
	}
}

// LoadSLOs decodes a JSON array of SLO specs.
func LoadSLOs(r io.Reader) ([]SLO, error) {
	var slos []SLO
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&slos); err != nil {
		return nil, fmt.Errorf("obs: decode SLO specs: %w", err)
	}
	for _, s := range slos {
		if err := s.Validate(); err != nil {
			return nil, err
		}
	}
	return slos, nil
}

// PublishSLOMetrics mirrors the statuses into a telemetry registry as
// slo.<name>.{attainment,burn_rate,met,runs} gauges — the hook that
// puts SLO state on the live /metrics endpoint next to the audit
// gauges it summarizes.
func PublishSLOMetrics(reg *telemetry.Registry, statuses []SLOStatus) {
	if reg == nil {
		return
	}
	for _, st := range statuses {
		prefix := "slo." + st.SLO.Name + "."
		reg.Gauge(prefix + "attainment").Set(st.Attainment)
		reg.Gauge(prefix + "burn_rate").Set(st.BurnRate)
		met := 0.0
		if st.Met {
			met = 1
		}
		reg.Gauge(prefix + "met").Set(met)
		reg.Gauge(prefix + "runs").Set(float64(st.Runs))
	}
}
