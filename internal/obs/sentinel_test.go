package obs

import (
	"strings"
	"testing"
)

// histRecs builds n healthy contention records with the given metric
// values (one value per record).
func histRecs(metric string, vals ...float64) []RunRecord {
	recs := make([]RunRecord, 0, len(vals))
	for _, v := range vals {
		recs = append(recs, RunRecord{
			Kind: KindContention, Label: "a",
			Values: map[string]float64{metric: v},
		})
	}
	return recs
}

func TestSentinelIdenticalRunsPass(t *testing.T) {
	hist := histRecs("crit.p95_ns", 400, 400, 400)
	latest := hist[0]
	fs := SentinelConfig{}.CheckRecord(hist, latest)
	if len(fs) != 1 {
		t.Fatalf("findings = %+v", fs)
	}
	f := fs[0]
	if f.Regressed || f.Ratio != 1 || f.Baseline != 400 || f.History != 3 {
		t.Fatalf("identical-run finding = %+v", f)
	}
	if !strings.HasPrefix(f.String(), "ok ") {
		t.Fatalf("finding renders as %q", f.String())
	}
}

func TestSentinelDirectionality(t *testing.T) {
	// Lower-better: a 10x latency rise regresses, a 10x drop does not.
	hist := histRecs("crit.p95_ns", 400, 410, 390)
	up := RunRecord{Kind: KindContention, Label: "a", Values: map[string]float64{"crit.p95_ns": 4000}}
	down := RunRecord{Kind: KindContention, Label: "a", Values: map[string]float64{"crit.p95_ns": 40}}
	if fs := (SentinelConfig{}).CheckRecord(hist, up); !fs[0].Regressed {
		t.Fatalf("10x latency rise not flagged: %+v", fs[0])
	}
	if fs := (SentinelConfig{}).CheckRecord(hist, down); fs[0].Regressed {
		t.Fatalf("latency improvement flagged: %+v", fs[0])
	}

	// Higher-better: the acceptance shape — events/sec degraded 10x.
	hist = histRecs("new.events_per_sec", 14.7e6, 14.8e6, 14.6e6)
	slow := RunRecord{Kind: KindContention, Label: "a", Values: map[string]float64{"new.events_per_sec": 1.47e6}}
	fs := SentinelConfig{}.CheckRecord(hist, slow)
	if !fs[0].Regressed {
		t.Fatalf("10x throughput drop not flagged: %+v", fs[0])
	}
	if !strings.Contains(fs[0].String(), "REGRESSED") {
		t.Fatalf("regressed finding renders as %q", fs[0].String())
	}
}

func TestSentinelToleranceBand(t *testing.T) {
	hist := histRecs("crit.p95_ns", 100, 100, 100)
	within := RunRecord{Kind: KindContention, Label: "a", Values: map[string]float64{"crit.p95_ns": 120}}
	beyond := RunRecord{Kind: KindContention, Label: "a", Values: map[string]float64{"crit.p95_ns": 130}}
	cfg := SentinelConfig{Tolerance: 0.25}
	if fs := cfg.CheckRecord(hist, within); fs[0].Regressed {
		t.Fatalf("within-tolerance rise flagged: %+v", fs[0])
	}
	if fs := cfg.CheckRecord(hist, beyond); !fs[0].Regressed {
		t.Fatalf("beyond-tolerance rise not flagged: %+v", fs[0])
	}
}

func TestSentinelMedianRobustToOutlier(t *testing.T) {
	// One historic spike must not drag the baseline: median of
	// {100, 100, 100, 100, 10000} is 100.
	hist := histRecs("crit.p95_ns", 100, 100, 100, 100, 10000)
	probe := RunRecord{Kind: KindContention, Label: "a", Values: map[string]float64{"crit.p95_ns": 140}}
	fs := SentinelConfig{LastN: 5}.CheckRecord(hist, probe)
	if fs[0].Baseline != 100 {
		t.Fatalf("baseline = %v, want outlier-robust 100", fs[0].Baseline)
	}
	if !fs[0].Regressed {
		t.Fatalf("40%% rise over robust baseline not flagged: %+v", fs[0])
	}
}

func TestSentinelWindowSkipsOldRuns(t *testing.T) {
	// Trajectory depth 2: only the newest two baseline runs count.
	hist := histRecs("crit.p95_ns", 1000, 1000, 100, 100)
	probe := RunRecord{Kind: KindContention, Label: "a", Values: map[string]float64{"crit.p95_ns": 150}}
	fs := SentinelConfig{LastN: 2}.CheckRecord(hist, probe)
	if fs[0].Baseline != 100 || fs[0].History != 2 {
		t.Fatalf("windowed baseline = %+v", fs[0])
	}
	if !fs[0].Regressed {
		t.Fatal("rise over windowed baseline not flagged")
	}
}

func TestSentinelSkipsUnknownFailedAndFiltered(t *testing.T) {
	hist := []RunRecord{
		{Kind: KindContention, Label: "a", Values: map[string]float64{"crit.p95_ns": 100, "admitted": 5}},
		{Kind: KindContention, Label: "a", Err: "panic", Values: map[string]float64{"crit.p95_ns": 9999}},
		{Kind: KindContention, Label: "a", Values: map[string]float64{"crit.p95_ns": 100, "admitted": 5}},
	}
	probe := RunRecord{Kind: KindContention, Label: "a",
		Values: map[string]float64{"crit.p95_ns": 100, "admitted": 50, "row_hit_rate": 0.5}}
	fs := SentinelConfig{}.CheckRecord(hist, probe)
	for _, f := range fs {
		if f.Metric == "admitted" {
			t.Fatalf("direction-less metric judged: %+v", f)
		}
		if f.Metric == "row_hit_rate" {
			t.Fatalf("metric without history judged: %+v", f)
		}
		if f.Baseline != 100 {
			t.Fatalf("failed run leaked into the baseline: %+v", f)
		}
	}
	if len(fs) != 1 {
		t.Fatalf("findings = %+v", fs)
	}

	// Only restricts scope.
	fs = SentinelConfig{Only: []string{"events_per_sec"}}.CheckRecord(hist, probe)
	if len(fs) != 0 {
		t.Fatalf("Only filter leaked: %+v", fs)
	}
}

func TestSentinelCheckStoreGroupsAndFailures(t *testing.T) {
	s := testStore(t)
	appendAll := func(recs ...RunRecord) {
		t.Helper()
		for _, r := range recs {
			if _, err := s.Append(r); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Group a: steady then regressed. Group b: steady. Group c: one
	// record only (unjudged). Group d: latest failed.
	appendAll(histRecs("crit.p95_ns", 100, 100, 1000)...)
	appendAll(
		RunRecord{Kind: KindBench, Label: "b", Values: map[string]float64{"new.events_per_sec": 1e6}},
		RunRecord{Kind: KindBench, Label: "b", Values: map[string]float64{"new.events_per_sec": 1.01e6}},
		RunRecord{Kind: KindContention, Label: "c", Values: map[string]float64{"crit.p95_ns": 5}},
		RunRecord{Kind: KindContention, Label: "d", Values: map[string]float64{"crit.p95_ns": 5}},
		RunRecord{Kind: KindContention, Label: "d", Err: "panic: boom"},
	)
	fs, err := SentinelConfig{}.CheckStore(s, Filter{})
	if err != nil {
		t.Fatal(err)
	}
	reg := Regressions(fs)
	var gotA, gotD bool
	for _, f := range reg {
		switch f.Label {
		case "a":
			gotA = true
		case "d":
			gotD = true
			if f.Metric != "run" {
				t.Fatalf("failed-latest finding = %+v", f)
			}
		default:
			t.Fatalf("unexpected regression %+v", f)
		}
	}
	if !gotA || !gotD {
		t.Fatalf("regressions = %+v", reg)
	}
	for _, f := range fs {
		if f.Label == "c" {
			t.Fatalf("single-record group judged: %+v", f)
		}
	}
}
