package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"time"
)

// Files inside a store directory.
const (
	// storeFile is the append-only record log.
	storeFile = "runs.jsonl"
	// seqFile holds the next sequence number to hand out. It is only
	// read and written under the store lock, and is written *before*
	// the record it numbers, so a crash between the two leaves a gap
	// in the sequence — never a duplicate.
	seqFile = "seq"
	// lockFile serializes writers (and Open-time repair) across
	// processes.
	lockFile = "lock"
)

// Store is the embedded results store: a directory holding an
// append-only JSONL log of RunRecords. It is pure Go (no cgo, no
// external database), safe for concurrent use within one process, and
// durable per append — each record is one fsync-free O_APPEND write
// of one line, so a crashed run loses at most the record being
// written, never the history. A torn final line left behind by such a
// crash is repaired on the next Open: a parseable tail missing only
// its newline is kept (the newline is restored), an unparseable tail
// is truncated away, and either outcome is reported via Recovery.
// Corruption anywhere *before* the final line is not crash damage and
// still fails Open hard. Query tolerates a torn final line without
// repairing it, because a tail mid-write by a live process looks the
// same as crash damage from the outside.
//
// Multiple processes may append to the same store: appends (and
// Open-time repair) are serialized by a lock file, and sequence
// numbers are reserved through a sidecar counter under that lock, so
// Seq is unique and strictly increasing across processes and equals
// append order. On platforms without file locking the fallback
// serializes writers within one process only — see flock_other.go.
type Store struct {
	dir  string
	path string

	mu       sync.Mutex
	f        *os.File
	next     int64
	now      func() int64
	recovery Recovery
}

// Recovery reports what Open had to repair to bring the log back to a
// clean state. Zero when the log was already clean.
type Recovery struct {
	// Recovered counts repaired tail incidents (0 or 1: only the
	// final line can legally be torn).
	Recovered int
	// Dropped counts torn-tail bytes truncated away because they did
	// not parse; 0 when the tail record was salvageable.
	Dropped int
	// Message is a human-readable description of the repair.
	Message string
}

// Option configures a Store.
type Option func(*Store)

// WithClock overrides the wall clock stamped into RecordedUnix —
// deterministic tests pin it.
func WithClock(now func() int64) Option {
	return func(s *Store) { s.now = now }
}

// Open opens (creating if needed) the store rooted at dir, repairing
// a torn final line (a crashed writer's remnant) if one is present.
func Open(dir string, opts ...Option) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("obs: empty store directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("obs: open store: %w", err)
	}
	s := &Store{
		dir:  dir,
		path: filepath.Join(dir, storeFile),
		now:  func() int64 { return time.Now().Unix() },
	}
	for _, o := range opts {
		o(s)
	}
	// Load and repair under the store lock: a tail that looks torn
	// while the lock is held cannot be a live writer mid-append
	// (writers hold the lock across the write), so it is safe to
	// truncate.
	unlock, err := lockDir(dir)
	if err != nil {
		return nil, fmt.Errorf("obs: lock store: %w", err)
	}
	recs, torn, err := s.load()
	if err != nil {
		unlock()
		return nil, err
	}
	if torn != nil {
		if err := s.repair(torn); err != nil {
			unlock()
			return nil, err
		}
		if torn.rec != nil {
			recs = append(recs, *torn.rec)
		}
	}
	unlock()
	for _, r := range recs {
		if r.Seq >= s.next {
			s.next = r.Seq
		}
	}
	s.next++
	f, err := os.OpenFile(s.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("obs: open store log: %w", err)
	}
	s.f = f
	return s, nil
}

// repair fixes a torn final line in place: a salvageable record gets
// its missing newline restored; an unparseable tail is truncated at
// the start of the torn line.
func (s *Store) repair(t *tornTail) error {
	if t.rec != nil {
		f, err := os.OpenFile(s.path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("obs: repair torn tail: %w", err)
		}
		_, werr := f.Write([]byte{'\n'})
		cerr := f.Close()
		if werr != nil {
			return fmt.Errorf("obs: repair torn tail: %w", werr)
		}
		if cerr != nil {
			return fmt.Errorf("obs: repair torn tail: %w", cerr)
		}
		s.recovery = Recovery{
			Recovered: 1,
			Message: fmt.Sprintf("%s:%d: restored missing newline on final record",
				s.path, t.line),
		}
		return nil
	}
	if err := os.Truncate(s.path, t.off); err != nil {
		return fmt.Errorf("obs: truncate torn tail: %w", err)
	}
	s.recovery = Recovery{
		Recovered: 1,
		Dropped:   t.size,
		Message: fmt.Sprintf("%s:%d: dropped torn final line (%d bytes, crashed writer): %v",
			s.path, t.line, t.size, t.err),
	}
	return nil
}

// Recovery reports what Open repaired (zero when the log was clean).
func (s *Store) Recovery() Recovery { return s.recovery }

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Close releases the append handle. Appends after Close fail.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	err := s.f.Close()
	s.f = nil
	return err
}

// Append stamps the record (schema version, sequence number, recorded
// time, metrics fingerprint) and persists it. The stamped record is
// returned. The sequence number is reserved through the store's
// on-disk counter under the cross-process lock, so concurrent handles
// — including handles in other processes — never stamp duplicates,
// and file order equals Seq order.
func (s *Store) Append(rec RunRecord) (RunRecord, error) {
	rec.Schema = SchemaVersion
	if rec.Metrics != "" && rec.MetricsFP == "" {
		rec.MetricsFP = Fingerprint([]byte(rec.Metrics))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return rec, fmt.Errorf("obs: append on closed store")
	}
	unlock, err := lockDir(s.dir)
	if err != nil {
		return rec, fmt.Errorf("obs: lock store: %w", err)
	}
	defer unlock()
	seq, err := s.reserveSeqLocked()
	if err != nil {
		return rec, err
	}
	rec.Seq = seq
	rec.RecordedUnix = s.now()
	line, err := json.Marshal(rec)
	if err != nil {
		return rec, fmt.Errorf("obs: encode record: %w", err)
	}
	line = append(line, '\n')
	if _, err := s.f.Write(line); err != nil {
		return rec, fmt.Errorf("obs: append record: %w", err)
	}
	s.next = seq + 1
	return rec, nil
}

// Prune drops everything but the newest keep records (by append
// order), rewriting the log atomically: the survivors are written to a
// temporary file in the store directory, fsynced, and renamed over
// runs.jsonl while both the handle mutex and the cross-process lock
// are held. The seq sidecar is untouched — surviving records keep
// their stamped Seq and the next Append continues from the counter, so
// Seq stays unique and strictly increasing across the prune. A
// salvageable torn tail counts as a record (and is kept or dropped by
// age like any other); an unparseable torn tail is rewritten away.
// Returns the number of records removed.
func (s *Store) Prune(keep int) (int, error) {
	if keep < 0 {
		return 0, fmt.Errorf("obs: prune keep %d, want >= 0", keep)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return 0, fmt.Errorf("obs: prune on closed store")
	}
	unlock, err := lockDir(s.dir)
	if err != nil {
		return 0, fmt.Errorf("obs: lock store: %w", err)
	}
	defer unlock()

	recs, torn, err := s.load()
	if err != nil {
		return 0, err
	}
	if torn != nil && torn.rec != nil {
		recs = append(recs, *torn.rec)
	}
	if len(recs) <= keep && (torn == nil || torn.rec != nil) {
		// Nothing to drop and no garbage tail to scrub: leave the file
		// byte-identical rather than rewriting it for nothing.
		return 0, nil
	}
	kept := recs
	if len(recs) > keep {
		kept = recs[len(recs)-keep:]
	}

	tmp, err := os.CreateTemp(s.dir, storeFile+".prune-*")
	if err != nil {
		return 0, fmt.Errorf("obs: prune: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op once renamed
	bw := bufio.NewWriterSize(tmp, 64*1024)
	for _, r := range kept {
		line, merr := json.Marshal(r)
		if merr != nil {
			tmp.Close()
			return 0, fmt.Errorf("obs: prune encode: %w", merr)
		}
		line = append(line, '\n')
		if _, werr := bw.Write(line); werr != nil {
			tmp.Close()
			return 0, fmt.Errorf("obs: prune write: %w", werr)
		}
	}
	if err := bw.Flush(); err != nil {
		tmp.Close()
		return 0, fmt.Errorf("obs: prune write: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return 0, fmt.Errorf("obs: prune sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return 0, fmt.Errorf("obs: prune close: %w", err)
	}
	if err := os.Rename(tmp.Name(), s.path); err != nil {
		return 0, fmt.Errorf("obs: prune rename: %w", err)
	}
	// The old O_APPEND handle now points at the unlinked pre-prune
	// inode; swap it for a handle on the new log so later Appends land
	// in the surviving file.
	s.f.Close()
	f, err := os.OpenFile(s.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		s.f = nil
		return 0, fmt.Errorf("obs: reopen pruned store: %w", err)
	}
	s.f = f
	return len(recs) - len(kept), nil
}

// reserveSeqLocked hands out the next sequence number. Caller holds
// both the handle mutex and the cross-process lock. The counter file
// is advanced *before* the record is written: a crash in between
// leaves an unused number (a gap), which is harmless, instead of a
// duplicate, which would corrupt newest-run selection.
func (s *Store) reserveSeqLocked() (int64, error) {
	next := s.next
	b, err := os.ReadFile(filepath.Join(s.dir, seqFile))
	switch {
	case err == nil:
		v, perr := strconv.ParseInt(string(bytes.TrimSpace(b)), 10, 64)
		if perr != nil {
			// Corrupt counter: rebuild it from the log (rare path).
			recs, _, lerr := s.load()
			if lerr != nil {
				return 0, fmt.Errorf("obs: rebuild seq counter: %w", lerr)
			}
			v = 0
			for _, r := range recs {
				if r.Seq > v {
					v = r.Seq
				}
			}
			v++
		}
		if v > next {
			next = v
		}
	case os.IsNotExist(err):
		// First writer since the counter existed: the handle's view
		// (derived from the log at Open) is authoritative.
	default:
		return 0, fmt.Errorf("obs: read seq counter: %w", err)
	}
	if err := os.WriteFile(filepath.Join(s.dir, seqFile),
		strconv.AppendInt(nil, next+1, 10), 0o644); err != nil {
		return 0, fmt.Errorf("obs: advance seq counter: %w", err)
	}
	return next, nil
}

// tornTail describes a final line that does not end in a clean,
// parseable record — the signature of a writer that crashed
// mid-append.
type tornTail struct {
	off  int64      // byte offset where the torn line starts
	size int        // torn line length in bytes
	line int        // 1-based line number
	err  error      // parse failure (nil when rec is salvageable)
	rec  *RunRecord // parsed record when only the newline is missing
}

// load reads every record in append order. An unparseable or
// newline-less *final* line is returned as a tornTail, not an error —
// that is exactly what a crash mid-Write leaves behind, and the
// documented durability contract is "a crashed run loses at most the
// record being written, never the history". Unparseable lines
// anywhere earlier are still a hard error: interior corruption cannot
// come from a torn append, and silent skips would hide it.
func (s *Store) load() ([]RunRecord, *tornTail, error) {
	f, err := os.Open(s.path)
	if os.IsNotExist(err) {
		return nil, nil, nil
	}
	if err != nil {
		return nil, nil, fmt.Errorf("obs: read store: %w", err)
	}
	defer f.Close()
	var recs []RunRecord
	br := bufio.NewReaderSize(f, 64*1024)
	var off int64
	n := 0
	for {
		line, rerr := br.ReadBytes('\n')
		if len(line) == 0 {
			if rerr == io.EOF {
				return recs, nil, nil
			}
			if rerr != nil {
				return nil, nil, fmt.Errorf("obs: %s: %w", s.path, rerr)
			}
		}
		n++
		complete := rerr == nil // line ended with '\n'
		body := line
		if complete {
			body = line[:len(line)-1]
		}
		if len(body) == 0 {
			off += int64(len(line))
			continue
		}
		var r RunRecord
		jerr := json.Unmarshal(body, &r)
		switch {
		case jerr == nil && complete:
			recs = append(recs, r)
		case jerr == nil && !complete:
			// Final line, parseable, newline missing: the record made
			// it out whole; only the terminator was lost.
			return recs, &tornTail{off: off, size: len(line), line: n, rec: &r}, nil
		case !complete:
			// Final line, unparseable: torn append.
			return recs, &tornTail{off: off, size: len(line), line: n, err: jerr}, nil
		default:
			// Unparseable but newline-terminated: a torn append never
			// writes its trailing newline (it is the line's last
			// byte), so this is real corruption wherever it sits —
			// hard error, even at the tail.
			return nil, nil, fmt.Errorf("obs: %s:%d: %w", s.path, n, jerr)
		}
		off += int64(len(line))
	}
}

// Filter selects records. The zero Filter matches everything.
type Filter struct {
	// Kind/Label/ConfigFP match exactly when non-empty.
	Kind     string
	Label    string
	ConfigFP string
	// Seed matches when non-nil.
	Seed *uint64
	// Since/Until bound RecordedUnix inclusively when non-zero.
	Since, Until int64
	// Failed selects only failure records; OK selects only successes.
	Failed, OK bool
	// LastN keeps only the newest N matches (0 = all).
	LastN int
}

// matches applies every non-zero predicate.
func (f Filter) matches(r RunRecord) bool {
	if f.Kind != "" && r.Kind != f.Kind {
		return false
	}
	if f.Label != "" && r.Label != f.Label {
		return false
	}
	if f.ConfigFP != "" && r.ConfigFP != f.ConfigFP {
		return false
	}
	if f.Seed != nil && r.Seed != *f.Seed {
		return false
	}
	if f.Since != 0 && r.RecordedUnix < f.Since {
		return false
	}
	if f.Until != 0 && r.RecordedUnix > f.Until {
		return false
	}
	if f.Failed && !r.Failed() {
		return false
	}
	if f.OK && r.Failed() {
		return false
	}
	return true
}

// Query returns the matching records in append order (oldest first),
// re-reading the log so appends from other handles — and other
// processes — are visible. Append order is the store's authoritative
// ordering axis (equal to Seq order; newest-run selection in the
// sentinel and Series rely on it). A torn final line is tolerated: a
// salvageable record is included, an unparseable tail is skipped —
// it is either a crash remnant (repaired by the next Open) or a live
// writer's append in flight.
func (s *Store) Query(f Filter) ([]RunRecord, error) {
	recs, torn, err := s.load()
	if err != nil {
		return nil, err
	}
	if torn != nil && torn.rec != nil {
		recs = append(recs, *torn.rec)
	}
	out := recs[:0]
	for _, r := range recs {
		if f.matches(r) {
			out = append(out, r)
		}
	}
	if f.LastN > 0 && len(out) > f.LastN {
		out = out[len(out)-f.LastN:]
	}
	return append([]RunRecord(nil), out...), nil
}

// Series extracts one metric's trajectory from the matching records in
// append order. Records without the metric are skipped, so the series
// is dense.
func (s *Store) Series(metric string, f Filter) ([]float64, error) {
	recs, err := s.Query(f)
	if err != nil {
		return nil, err
	}
	var out []float64
	for _, r := range recs {
		if v, ok := r.Value(metric); ok {
			out = append(out, v)
		}
	}
	return out, nil
}

// Labels returns the distinct (kind, label) pairs present in the
// matching records, in first-appearance order — the sentinel's
// grouping axis.
func (s *Store) Labels(f Filter) ([][2]string, error) {
	recs, err := s.Query(f)
	if err != nil {
		return nil, err
	}
	seen := make(map[[2]string]bool)
	var out [][2]string
	for _, r := range recs {
		k := [2]string{r.Kind, r.Label}
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	return out, nil
}
