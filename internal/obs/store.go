package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// storeFile is the append-only record log inside a store directory.
const storeFile = "runs.jsonl"

// Store is the embedded results store: a directory holding an
// append-only JSONL log of RunRecords. It is pure Go (no cgo, no
// external database), safe for concurrent use within one process, and
// durable per append — each record is one fsync-free O_APPEND write
// of one line, so a crashed run loses at most the record being
// written, never the history.
//
// Multiple processes may append to the same store; POSIX guarantees
// O_APPEND writes of one line land whole. Sequence numbers are only
// unique per process, so cross-process writers should rely on append
// order, which Query preserves.
type Store struct {
	dir  string
	path string

	mu   sync.Mutex
	f    *os.File
	next int64
	now  func() int64
}

// Option configures a Store.
type Option func(*Store)

// WithClock overrides the wall clock stamped into RecordedUnix —
// deterministic tests pin it.
func WithClock(now func() int64) Option {
	return func(s *Store) { s.now = now }
}

// Open opens (creating if needed) the store rooted at dir.
func Open(dir string, opts ...Option) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("obs: empty store directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("obs: open store: %w", err)
	}
	s := &Store{
		dir:  dir,
		path: filepath.Join(dir, storeFile),
		now:  func() int64 { return time.Now().Unix() },
	}
	for _, o := range opts {
		o(s)
	}
	recs, err := s.load()
	if err != nil {
		return nil, err
	}
	for _, r := range recs {
		if r.Seq >= s.next {
			s.next = r.Seq
		}
	}
	s.next++
	f, err := os.OpenFile(s.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("obs: open store log: %w", err)
	}
	s.f = f
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Close releases the append handle. Appends after Close fail.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	err := s.f.Close()
	s.f = nil
	return err
}

// Append stamps the record (schema version, sequence number, recorded
// time, metrics fingerprint) and persists it. The stamped record is
// returned.
func (s *Store) Append(rec RunRecord) (RunRecord, error) {
	rec.Schema = SchemaVersion
	if rec.Metrics != "" && rec.MetricsFP == "" {
		rec.MetricsFP = Fingerprint([]byte(rec.Metrics))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return rec, fmt.Errorf("obs: append on closed store")
	}
	rec.Seq = s.next
	rec.RecordedUnix = s.now()
	line, err := json.Marshal(rec)
	if err != nil {
		return rec, fmt.Errorf("obs: encode record: %w", err)
	}
	line = append(line, '\n')
	if _, err := s.f.Write(line); err != nil {
		return rec, fmt.Errorf("obs: append record: %w", err)
	}
	s.next++
	return rec, nil
}

// load reads every record in append order. Unparseable lines are an
// error — the store is ours; silent skips would hide corruption.
func (s *Store) load() ([]RunRecord, error) {
	f, err := os.Open(s.path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("obs: read store: %w", err)
	}
	defer f.Close()
	var recs []RunRecord
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 64<<20)
	n := 0
	for sc.Scan() {
		n++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var r RunRecord
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			return nil, fmt.Errorf("obs: %s:%d: %w", s.path, n, err)
		}
		recs = append(recs, r)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: %s: %w", s.path, err)
	}
	return recs, nil
}

// Filter selects records. The zero Filter matches everything.
type Filter struct {
	// Kind/Label/ConfigFP match exactly when non-empty.
	Kind     string
	Label    string
	ConfigFP string
	// Seed matches when non-nil.
	Seed *uint64
	// Since/Until bound RecordedUnix inclusively when non-zero.
	Since, Until int64
	// Failed selects only failure records; OK selects only successes.
	Failed, OK bool
	// LastN keeps only the newest N matches (0 = all).
	LastN int
}

// matches applies every non-zero predicate.
func (f Filter) matches(r RunRecord) bool {
	if f.Kind != "" && r.Kind != f.Kind {
		return false
	}
	if f.Label != "" && r.Label != f.Label {
		return false
	}
	if f.ConfigFP != "" && r.ConfigFP != f.ConfigFP {
		return false
	}
	if f.Seed != nil && r.Seed != *f.Seed {
		return false
	}
	if f.Since != 0 && r.RecordedUnix < f.Since {
		return false
	}
	if f.Until != 0 && r.RecordedUnix > f.Until {
		return false
	}
	if f.Failed && !r.Failed() {
		return false
	}
	if f.OK && r.Failed() {
		return false
	}
	return true
}

// Query returns the matching records in append order (oldest first),
// re-reading the log so appends from other handles are visible.
func (s *Store) Query(f Filter) ([]RunRecord, error) {
	recs, err := s.load()
	if err != nil {
		return nil, err
	}
	out := recs[:0]
	for _, r := range recs {
		if f.matches(r) {
			out = append(out, r)
		}
	}
	if f.LastN > 0 && len(out) > f.LastN {
		out = out[len(out)-f.LastN:]
	}
	return append([]RunRecord(nil), out...), nil
}

// Series extracts one metric's trajectory from the matching records in
// append order. Records without the metric are skipped, so the series
// is dense.
func (s *Store) Series(metric string, f Filter) ([]float64, error) {
	recs, err := s.Query(f)
	if err != nil {
		return nil, err
	}
	var out []float64
	for _, r := range recs {
		if v, ok := r.Value(metric); ok {
			out = append(out, v)
		}
	}
	return out, nil
}

// Labels returns the distinct (kind, label) pairs present in the
// matching records, in first-appearance order — the sentinel's
// grouping axis.
func (s *Store) Labels(f Filter) ([][2]string, error) {
	recs, err := s.Query(f)
	if err != nil {
		return nil, err
	}
	seen := make(map[[2]string]bool)
	var out [][2]string
	for _, r := range recs {
		k := [2]string{r.Kind, r.Label}
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	return out, nil
}
