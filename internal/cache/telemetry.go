package cache

import "repro/internal/telemetry"

// telemetryState holds the cache's optional shared-registry counters;
// nil disables them.
type telemetryState struct {
	cHits      *telemetry.Counter
	cMisses    *telemetry.Counter
	cCrossEvic *telemetry.Counter
}

// SetTelemetry mirrors aggregate access outcomes into a metrics
// registry under "<name>.hits", "<name>.misses" and
// "<name>.cross_evictions" (lines one owner evicted from another —
// the inter-partition interference signal). A nil registry disables
// mirroring; per-owner Stats are unaffected either way.
func (c *Cache) SetTelemetry(reg *telemetry.Registry, name string) {
	if reg == nil {
		c.tel = nil
		return
	}
	if name == "" {
		name = "cache"
	}
	c.tel = &telemetryState{
		cHits:      reg.Counter(name + ".hits"),
		cMisses:    reg.Counter(name + ".misses"),
		cCrossEvic: reg.Counter(name + ".cross_evictions"),
	}
}
