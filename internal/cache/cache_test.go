package cache

import (
	"testing"
	"testing/quick"
)

func mustCache(t *testing.T, cfg Config) *Cache {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func smallCfg() Config {
	return Config{Sets: 4, Ways: 4, LineSize: 64}
}

// addrFor builds an address hitting the given set with the given tag.
func addrFor(c *Cache, set int, tag uint64) uint64 {
	return (tag<<uint(log2(c.cfg.Sets)) | uint64(set)) << c.setShift
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Sets: 3, Ways: 4, LineSize: 64},
		{Sets: 0, Ways: 4, LineSize: 64},
		{Sets: 4, Ways: 0, LineSize: 64},
		{Sets: 4, Ways: 65, LineSize: 64},
		{Sets: 4, Ways: 4, LineSize: 48},
	}
	for i, cfg := range bad {
		if cfg.Validate() == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if smallCfg().Validate() != nil {
		t.Error("good config rejected")
	}
	if _, err := New(Config{Sets: 3}); err == nil {
		t.Error("New accepted invalid config")
	}
}

func TestHitMissBasics(t *testing.T) {
	c := mustCache(t, smallCfg())
	a := addrFor(c, 1, 7)
	if r := c.Access(0, a, false); r.Hit {
		t.Error("cold access hit")
	}
	if r := c.Access(0, a, false); !r.Hit {
		t.Error("second access missed")
	}
	// Same line, different byte offset: still a hit.
	if r := c.Access(0, a+63, false); !r.Hit {
		t.Error("same-line offset missed")
	}
	st := c.Stats(0)
	if st.Hits != 2 || st.Misses != 1 {
		t.Errorf("stats = %+v", st)
	}
	if c.Occupancy(0) != 1 {
		t.Errorf("occupancy = %d", c.Occupancy(0))
	}
}

func TestLRUReplacement(t *testing.T) {
	c := mustCache(t, smallCfg()) // 4 ways
	// Fill set 0 with tags 1..4, touch tag 1 again, insert tag 5:
	// the LRU victim must be tag 2.
	for tag := uint64(1); tag <= 4; tag++ {
		c.Access(0, addrFor(c, 0, tag), false)
	}
	c.Access(0, addrFor(c, 0, 1), false) // refresh tag 1
	c.Access(0, addrFor(c, 0, 5), false) // evicts tag 2
	if r := c.Access(0, addrFor(c, 0, 2), false); r.Hit {
		t.Error("LRU victim (tag 2) still resident")
	}
	if r := c.Access(0, addrFor(c, 0, 1), false); !r.Hit {
		t.Error("recently used tag 1 was evicted")
	}
}

func TestDirtyWritebackAccounting(t *testing.T) {
	c := mustCache(t, Config{Sets: 1, Ways: 1, LineSize: 64})
	c.Access(0, addrFor(c, 0, 1), true) // dirty
	r := c.Access(0, addrFor(c, 0, 2), false)
	if !r.Evicted || !r.EvictedDirty {
		t.Errorf("expected dirty eviction, got %+v", r)
	}
	if got := c.Stats(0).Writebacks; got != 1 {
		t.Errorf("writebacks = %d", got)
	}
}

func TestInterferenceCounters(t *testing.T) {
	c := mustCache(t, Config{Sets: 1, Ways: 2, LineSize: 64})
	c.Access(1, addrFor(c, 0, 1), false)
	c.Access(1, addrFor(c, 0, 2), false)
	// Owner 2 thrashes the set: evicts owner 1's lines.
	c.Access(2, addrFor(c, 0, 3), false)
	c.Access(2, addrFor(c, 0, 4), false)
	if got := c.Stats(2).EvictionsOfOthers; got != 2 {
		t.Errorf("owner 2 EvictionsOfOthers = %d, want 2", got)
	}
	if got := c.Stats(1).EvictedByOthers; got != 2 {
		t.Errorf("owner 1 EvictedByOthers = %d, want 2", got)
	}
	if c.Occupancy(1) != 0 || c.Occupancy(2) != 2 {
		t.Errorf("occupancy = %d/%d", c.Occupancy(1), c.Occupancy(2))
	}
}

func TestWayPartitionIsolation(t *testing.T) {
	// Owner 1 gets ways 0-1, owner 2 gets ways 2-3: thrashing by
	// owner 2 can no longer evict owner 1.
	pol := NewWayPartition(map[Owner]uint64{1: 0b0011, 2: 0b1100})
	cfg := smallCfg()
	cfg.Policy = pol
	c := mustCache(t, cfg)
	c.Access(1, addrFor(c, 0, 1), false)
	c.Access(1, addrFor(c, 0, 2), false)
	for tag := uint64(10); tag < 30; tag++ {
		c.Access(2, addrFor(c, 0, tag), false)
	}
	if r := c.Access(1, addrFor(c, 0, 1), false); !r.Hit {
		t.Error("partitioned line evicted by another owner")
	}
	if got := c.Stats(2).EvictionsOfOthers; got != 0 {
		t.Errorf("cross-owner evictions despite partitioning: %d", got)
	}
}

func TestWayPartitionLookupUnrestricted(t *testing.T) {
	// Partitioning restricts allocation, not visibility: owner 2 hits
	// on a line in owner 1's ways.
	pol := NewWayPartition(map[Owner]uint64{1: 0b0011, 2: 0b1100})
	cfg := smallCfg()
	cfg.Policy = pol
	c := mustCache(t, cfg)
	a := addrFor(c, 0, 1)
	c.Access(1, a, false)
	if r := c.Access(2, a, false); !r.Hit {
		t.Error("shared line not visible across partitions")
	}
}

func TestZeroMaskBypasses(t *testing.T) {
	pol := NewWayPartition(map[Owner]uint64{3: 0})
	cfg := smallCfg()
	cfg.Policy = pol
	c := mustCache(t, cfg)
	r := c.Access(3, addrFor(c, 0, 1), false)
	if r.Hit || r.Allocated {
		t.Errorf("zero-mask access should bypass, got %+v", r)
	}
	if c.Occupancy(3) != 0 {
		t.Error("bypassed access occupies the cache")
	}
}

func TestMaxCapacityPolicy(t *testing.T) {
	pol := &MaxCapacityPolicy{Limits: map[Owner]int{1: 2}}
	cfg := Config{Sets: 4, Ways: 4, LineSize: 64, Policy: pol}
	c := mustCache(t, cfg)
	pol.BindCache(c)
	// Owner 1 may hold at most 2 lines.
	for set := 0; set < 4; set++ {
		c.Access(1, addrFor(c, set, 1), false)
	}
	if got := c.Occupancy(1); got != 2 {
		t.Errorf("occupancy = %d, want capped at 2", got)
	}
	// Unlimited owner fills freely.
	for set := 0; set < 4; set++ {
		c.Access(2, addrFor(c, set, 2), false)
	}
	if got := c.Occupancy(2); got != 4 {
		t.Errorf("unlimited owner occupancy = %d, want 4", got)
	}
}

func TestFlush(t *testing.T) {
	c := mustCache(t, smallCfg())
	for set := 0; set < 4; set++ {
		c.Access(1, addrFor(c, set, 1), true)
		c.Access(2, addrFor(c, set, 2), false)
	}
	n := c.Flush(1)
	if n != 4 {
		t.Errorf("flushed %d lines, want 4", n)
	}
	if c.Occupancy(1) != 0 || c.Occupancy(2) != 4 {
		t.Errorf("occupancy after flush = %d/%d", c.Occupancy(1), c.Occupancy(2))
	}
	if got := c.Stats(1).Writebacks; got != 4 {
		t.Errorf("dirty flush writebacks = %d", got)
	}
}

func TestColoringPartitionsSets(t *testing.T) {
	// 64 sets x 64B lines = 4KB per way; 1KB pages -> 4 colors wait:
	// colors = sets*line/page = 64*64/1024 = 4.
	cfg := Config{Sets: 64, Ways: 2, LineSize: 64}
	col, err := NewColoring(cfg, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if col.NumColors() != 4 {
		t.Fatalf("NumColors = %d, want 4", col.NumColors())
	}
	if err := col.Assign(1, []int{0, 1}); err != nil {
		t.Fatal(err)
	}
	if err := col.Assign(2, []int{2, 3}); err != nil {
		t.Fatal(err)
	}
	c := mustCache(t, cfg)
	// Both owners touch many pages; their set footprints must be
	// disjoint.
	setsOf := func(owner Owner) map[int]bool {
		seen := make(map[int]bool)
		for p := uint64(0); p < 64; p++ {
			addr := col.Translate(owner, p*1024)
			seen[c.SetIndex(addr)] = true
		}
		return seen
	}
	s1, s2 := setsOf(1), setsOf(2)
	for s := range s1 {
		if s2[s] {
			t.Fatalf("set %d reachable by both colored owners", s)
		}
	}
	// Capacity cost: each owner reaches only half the sets.
	if len(s1) > 32 || len(s2) > 32 {
		t.Errorf("colored owners reach %d/%d sets, want <= 32", len(s1), len(s2))
	}
}

func TestColoringValidation(t *testing.T) {
	cfg := Config{Sets: 64, Ways: 2, LineSize: 64}
	col, err := NewColoring(cfg, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if err := col.Assign(1, nil); err == nil {
		t.Error("empty color list accepted")
	}
	if err := col.Assign(1, []int{99}); err == nil {
		t.Error("out-of-range color accepted")
	}
	if _, err := NewColoring(cfg, 48); err == nil {
		t.Error("non-power-of-two page size accepted")
	}
	if _, err := NewColoring(cfg, 64*64*4); err == nil {
		t.Error("page larger than way accepted")
	}
	// Unassigned owner: identity mapping.
	if got := col.Translate(9, 12345); got != 12345 {
		t.Errorf("unassigned owner translated: %d", got)
	}
}

func TestColoringNoCrossOwnerAliasing(t *testing.T) {
	cfg := Config{Sets: 64, Ways: 2, LineSize: 64}
	col, _ := NewColoring(cfg, 1024)
	_ = col.Assign(1, []int{0})
	_ = col.Assign(2, []int{0}) // same color, shared sets
	a1 := col.Translate(1, 0)
	a2 := col.Translate(2, 0)
	if a1 == a2 {
		t.Error("different owners alias to the same physical address")
	}
}

func TestQuickOccupancyConsistent(t *testing.T) {
	// Property: sum of per-owner occupancy equals the number of valid
	// lines, and never exceeds capacity.
	f := func(seed uint64, ops uint8) bool {
		c, err := New(Config{Sets: 8, Ways: 4, LineSize: 64})
		if err != nil {
			return false
		}
		rnd := newRand(seed)
		for i := 0; i < int(ops); i++ {
			owner := Owner(rnd() % 3)
			addr := (rnd() % 512) * 64
			c.Access(owner, addr, rnd()%2 == 0)
		}
		total := 0
		for o := Owner(0); o < 3; o++ {
			occ := c.Occupancy(o)
			if occ < 0 {
				return false
			}
			total += occ
		}
		return total <= c.TotalLines()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// newRand is a tiny deterministic generator for property tests.
func newRand(seed uint64) func() uint64 {
	state := seed
	return func() uint64 {
		state += 0x9E3779B97F4A7C15
		z := state
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		return z ^ (z >> 31)
	}
}

func TestQuickPartitionNeverCrossEvicts(t *testing.T) {
	// Property: with disjoint way masks, EvictionsOfOthers stays zero
	// for every owner.
	f := func(seed uint64, ops uint8) bool {
		pol := NewWayPartition(map[Owner]uint64{0: 0b0001, 1: 0b0110, 2: 0b1000})
		pol.Default = 0
		c, err := New(Config{Sets: 8, Ways: 4, LineSize: 64, Policy: pol})
		if err != nil {
			return false
		}
		rnd := newRand(seed)
		for i := 0; i < int(ops)+20; i++ {
			owner := Owner(rnd() % 3)
			addr := (rnd() % 256) * 64
			c.Access(owner, addr, false)
		}
		for o := Owner(0); o < 3; o++ {
			if c.Stats(o).EvictionsOfOthers != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
