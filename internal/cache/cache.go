// Package cache models a set-associative cache with pluggable
// partitioning policies, supporting the paper's Section II (software
// cache coloring) and Section III (DSU way-partitioning, MPAM portion
// partitioning) mechanisms on one substrate.
//
// The cache is a timing-free hit/miss and occupancy model: interference
// between owners manifests as evictions and miss-rate inflation, which
// the platform layer converts into memory traffic toward the DRAM
// model. Replacement is LRU within the ways the policy allows the
// requesting owner to allocate into; lookups always search all ways
// (partitioning restricts allocation, not visibility, matching the DSU
// and MPAM semantics).
package cache

import (
	"fmt"
)

// Owner identifies the agent an access is attributed to: a scheme ID
// (DSU), a PARTID (MPAM), or a process (coloring).
type Owner int

// AllocPolicy restricts which ways an owner may allocate into.
type AllocPolicy interface {
	// AllowedWays returns a bitmask of ways (bit i = way i) that owner
	// may victimize in the given set. A zero mask means the owner may
	// not allocate at all (accesses still hit on resident lines).
	AllowedWays(owner Owner, set int) uint64
}

// OpenPolicy allows every owner to allocate anywhere (an unmanaged
// COTS cache).
type OpenPolicy struct{}

// AllowedWays implements AllocPolicy.
func (OpenPolicy) AllowedWays(Owner, int) uint64 { return ^uint64(0) }

// Config sizes a cache.
type Config struct {
	Sets     int // number of sets, power of two
	Ways     int // associativity, <= 64
	LineSize int // bytes, power of two
	Policy   AllocPolicy
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Sets <= 0 || c.Sets&(c.Sets-1) != 0 {
		return fmt.Errorf("cache: Sets must be a positive power of two, got %d", c.Sets)
	}
	if c.Ways <= 0 || c.Ways > 64 {
		return fmt.Errorf("cache: Ways must be in 1..64, got %d", c.Ways)
	}
	if c.LineSize <= 0 || c.LineSize&(c.LineSize-1) != 0 {
		return fmt.Errorf("cache: LineSize must be a positive power of two, got %d", c.LineSize)
	}
	return nil
}

// line is one cache line's metadata.
type line struct {
	valid   bool
	tag     uint64
	owner   Owner
	dirty   bool
	lastUse uint64 // LRU stamp
}

// Result reports the outcome of one access.
type Result struct {
	Hit bool
	// Allocated reports whether the line was installed (misses only;
	// false when the policy denied allocation).
	Allocated bool
	// EvictedOwner/EvictedDirty describe the victim, when one existed.
	Evicted      bool
	EvictedOwner Owner
	EvictedDirty bool
}

// Stats accumulates per-owner counters.
type Stats struct {
	Hits, Misses uint64
	// EvictionsBy counts lines this owner evicted that belonged to
	// another owner — the direct interference metric of Section II.
	EvictionsOfOthers uint64
	// EvictedByOthers counts this owner's lines evicted by others.
	EvictedByOthers uint64
	Writebacks      uint64
}

// MissRate returns misses / (hits + misses), or 0 without accesses.
func (s Stats) MissRate() float64 {
	t := s.Hits + s.Misses
	if t == 0 {
		return 0
	}
	return float64(s.Misses) / float64(t)
}

// Cache is a set-associative cache with partitioned allocation.
// Not safe for concurrent use (single-threaded simulation kernel).
type Cache struct {
	cfg   Config
	sets  [][]line
	clock uint64

	stats map[Owner]*Stats
	// occupancy[owner] counts resident lines per owner.
	occupancy map[Owner]int

	setShift uint
	setMask  uint64

	tel *telemetryState
}

// New builds a cache.
func New(cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Policy == nil {
		cfg.Policy = OpenPolicy{}
	}
	c := &Cache{
		cfg:       cfg,
		sets:      make([][]line, cfg.Sets),
		stats:     make(map[Owner]*Stats),
		occupancy: make(map[Owner]int),
	}
	for i := range c.sets {
		c.sets[i] = make([]line, cfg.Ways)
	}
	for ls := cfg.LineSize; ls > 1; ls >>= 1 {
		c.setShift++
	}
	c.setMask = uint64(cfg.Sets - 1)
	return c, nil
}

// Config returns the cache configuration.
func (c *Cache) Config() Config { return c.cfg }

// SetIndex returns the set an address maps to.
func (c *Cache) SetIndex(addr uint64) int {
	return int((addr >> c.setShift) & c.setMask)
}

// tagOf returns the tag bits of an address.
func (c *Cache) tagOf(addr uint64) uint64 {
	return addr >> c.setShift >> uint(log2(c.cfg.Sets))
}

func log2(n int) int {
	k := 0
	for n > 1 {
		n >>= 1
		k++
	}
	return k
}

// Access performs one read or write by owner at addr. On a miss the
// line is installed into an allowed way (LRU victim among them); if
// the policy allows no ways, the access bypasses the cache.
func (c *Cache) Access(owner Owner, addr uint64, write bool) Result {
	c.clock++
	set := c.SetIndex(addr)
	tag := c.tagOf(addr)
	lines := c.sets[set]
	st := c.ownerStats(owner)

	for i := range lines {
		if lines[i].valid && lines[i].tag == tag {
			st.Hits++
			if c.tel != nil {
				c.tel.cHits.Inc()
			}
			lines[i].lastUse = c.clock
			if write {
				lines[i].dirty = true
			}
			return Result{Hit: true}
		}
	}
	st.Misses++
	if c.tel != nil {
		c.tel.cMisses.Inc()
	}

	allowed := c.cfg.Policy.AllowedWays(owner, set)
	victim := -1
	var victimUse uint64 = ^uint64(0)
	for i := range lines {
		if allowed&(1<<uint(i)) == 0 {
			continue
		}
		if !lines[i].valid {
			victim = i
			break
		}
		if lines[i].lastUse < victimUse {
			victim = i
			victimUse = lines[i].lastUse
		}
	}
	if victim < 0 {
		return Result{} // allocation denied: bypass
	}

	res := Result{Allocated: true}
	v := &lines[victim]
	if v.valid {
		res.Evicted = true
		res.EvictedOwner = v.owner
		res.EvictedDirty = v.dirty
		c.occupancy[v.owner]--
		if v.dirty {
			c.ownerStats(v.owner).Writebacks++
		}
		if v.owner != owner {
			st.EvictionsOfOthers++
			c.ownerStats(v.owner).EvictedByOthers++
			if c.tel != nil {
				c.tel.cCrossEvic.Inc()
			}
		}
	}
	*v = line{valid: true, tag: tag, owner: owner, dirty: write, lastUse: c.clock}
	c.occupancy[owner]++
	return res
}

// Occupancy returns the number of lines owner currently holds. This is
// the quantity an MPAM cache-storage usage monitor reports.
func (c *Cache) Occupancy(owner Owner) int { return c.occupancy[owner] }

// TotalLines returns the cache capacity in lines.
func (c *Cache) TotalLines() int { return c.cfg.Sets * c.cfg.Ways }

// Stats returns a copy of the owner's counters.
func (c *Cache) Stats(owner Owner) Stats {
	if s := c.stats[owner]; s != nil {
		return *s
	}
	return Stats{}
}

// Flush invalidates every line owned by owner (writebacks counted),
// modelling a partition teardown.
func (c *Cache) Flush(owner Owner) int {
	n := 0
	for si := range c.sets {
		for wi := range c.sets[si] {
			l := &c.sets[si][wi]
			if l.valid && l.owner == owner {
				if l.dirty {
					c.ownerStats(owner).Writebacks++
				}
				l.valid = false
				c.occupancy[owner]--
				n++
			}
		}
	}
	return n
}

func (c *Cache) ownerStats(o Owner) *Stats {
	s := c.stats[o]
	if s == nil {
		s = &Stats{}
		c.stats[o] = s
	}
	return s
}
