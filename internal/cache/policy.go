package cache

import (
	"fmt"
)

// WayPartition is an AllocPolicy that statically assigns way masks per
// owner — the shape of hardware partitioning in the DSU (per scheme
// ID) and in MPAM cache-portion control (per PARTID). Owners without
// an entry receive the Default mask.
type WayPartition struct {
	Masks   map[Owner]uint64
	Default uint64
}

// NewWayPartition builds a policy with the given per-owner masks and a
// default covering all ways.
func NewWayPartition(masks map[Owner]uint64) *WayPartition {
	m := make(map[Owner]uint64, len(masks))
	for k, v := range masks {
		m[k] = v
	}
	return &WayPartition{Masks: m, Default: ^uint64(0)}
}

// AllowedWays implements AllocPolicy.
func (w *WayPartition) AllowedWays(owner Owner, _ int) uint64 {
	if m, ok := w.Masks[owner]; ok {
		return m
	}
	return w.Default
}

// MaxCapacityPolicy wraps another policy and additionally denies
// allocation to an owner whose occupancy exceeds its configured line
// limit — MPAM's cache maximum-capacity partitioning. It needs the
// cache's occupancy, so it is attached via BindCache after New.
type MaxCapacityPolicy struct {
	Inner  AllocPolicy
	Limits map[Owner]int // max resident lines; absent = unlimited

	cache *Cache
}

// BindCache connects the policy to the cache whose occupancy it
// enforces. It must be called once before the first access.
func (p *MaxCapacityPolicy) BindCache(c *Cache) { p.cache = c }

// AllowedWays implements AllocPolicy.
func (p *MaxCapacityPolicy) AllowedWays(owner Owner, set int) uint64 {
	inner := uint64(^uint64(0))
	if p.Inner != nil {
		inner = p.Inner.AllowedWays(owner, set)
	}
	if p.cache == nil {
		return inner
	}
	if limit, ok := p.Limits[owner]; ok && p.cache.Occupancy(owner) >= limit {
		return 0
	}
	return inner
}

// Coloring models software page coloring (Section II of the paper):
// the OS constrains each owner's physical pages to a set of page
// colors, which partitions the cache sets. Translate rewrites an
// owner's addresses onto its assigned colors; feeding the translated
// addresses to an unpartitioned Cache reproduces both the isolation
// and the capacity cost ("a factual smaller cache for each partition").
type Coloring struct {
	pageSize  int
	numColors int
	assign    map[Owner][]int
}

// NewColoring builds a coloring for a cache with the given geometry.
// The number of available colors is sets*lineSize/pageSize.
func NewColoring(cfg Config, pageSize int) (*Coloring, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if pageSize <= 0 || pageSize&(pageSize-1) != 0 {
		return nil, fmt.Errorf("cache: page size must be a positive power of two, got %d", pageSize)
	}
	nc := cfg.Sets * cfg.LineSize / pageSize
	if nc < 1 {
		return nil, fmt.Errorf("cache: page size %d spans the whole cache way (%d bytes); no colors available",
			pageSize, cfg.Sets*cfg.LineSize)
	}
	return &Coloring{pageSize: pageSize, numColors: nc, assign: make(map[Owner][]int)}, nil
}

// NumColors returns how many page colors the geometry provides.
func (c *Coloring) NumColors() int { return c.numColors }

// Assign gives owner the listed colors. Colors may be shared between
// owners (shared pages) or disjoint (full isolation).
func (c *Coloring) Assign(owner Owner, colors []int) error {
	if len(colors) == 0 {
		return fmt.Errorf("cache: owner %d assigned no colors", owner)
	}
	for _, col := range colors {
		if col < 0 || col >= c.numColors {
			return fmt.Errorf("cache: color %d out of range [0,%d)", col, c.numColors)
		}
	}
	c.assign[owner] = append([]int(nil), colors...)
	return nil
}

// Translate maps an owner's (virtual) address onto a physical address
// whose page color is one of the owner's assigned colors. Owners
// without an assignment keep the identity mapping. Distinct owners
// never alias: the owner is folded into the high (frame) bits.
func (c *Coloring) Translate(owner Owner, addr uint64) uint64 {
	cols := c.assign[owner]
	if len(cols) == 0 {
		return addr
	}
	off := addr & uint64(c.pageSize-1)
	page := addr / uint64(c.pageSize)
	// Injective per-owner mapping: consecutive virtual pages
	// round-robin across the owner's colors, and each full sweep of
	// the colors advances the frame group. Distinct virtual pages land
	// on distinct physical pages, and every physical page's color is
	// one of the owner's (page color = physPage mod numColors).
	k := uint64(len(cols))
	color := uint64(cols[int(page%k)])
	group := page / k
	physPage := group*uint64(c.numColors) + color
	// Disambiguate owners in the tag bits (bit 40+) so shared frames
	// never false-hit across owners.
	physPage |= (uint64(owner) + 1) << 40
	return physPage*uint64(c.pageSize) + off
}
