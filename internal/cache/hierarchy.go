package cache

// Hierarchy chains an optional cluster-private L2 in front of a shared
// L3, the per-cluster cache arrangement of a clustered platform: hits
// at either level stay inside the cluster (and therefore inside one
// kernel partition), only misses travel to memory. The L2 warms on its
// own misses via the normal allocate-on-miss path, so the model stays
// a pure hit/miss and occupancy model like Cache itself.
//
// With a nil L2 the hierarchy degenerates to the bare L3 — the access
// stream the L3 sees is bit-identical to calling it directly, which is
// what keeps single-level (legacy) platforms on their goldens.
type Hierarchy struct {
	l2 *Cache
	l3 *Cache
}

// NewHierarchy builds a hierarchy; l2 may be nil, l3 must not be.
func NewHierarchy(l2, l3 *Cache) *Hierarchy {
	if l3 == nil {
		panic("cache: hierarchy needs an L3")
	}
	return &Hierarchy{l2: l2, l3: l3}
}

// L2 returns the private level, nil when absent.
func (h *Hierarchy) L2() *Cache { return h.l2 }

// L3 returns the shared level.
func (h *Hierarchy) L3() *Cache { return h.l3 }

// HierResult reports which level served an access.
type HierResult struct {
	// Level is 2 for an L2 hit, 3 for an L3 hit, and 0 when both
	// missed (the access goes to memory).
	Level int
	// L3 is the shared level's raw result whenever it was consulted
	// (i.e. Level != 2); zero-valued on an L2 hit.
	L3 Result
}

// Hit reports whether any level served the access.
func (r HierResult) Hit() bool { return r.Level != 0 }

// Access performs one access through the hierarchy. An L2 miss falls
// through to the L3 (installing into the L2 along the way via the
// allocate-on-miss path); an L3 miss is the caller's signal to issue a
// memory transaction.
func (h *Hierarchy) Access(owner Owner, addr uint64, write bool) HierResult {
	if h.l2 != nil {
		if r := h.l2.Access(owner, addr, write); r.Hit {
			return HierResult{Level: 2}
		}
	}
	r := h.l3.Access(owner, addr, write)
	if r.Hit {
		return HierResult{Level: 3, L3: r}
	}
	return HierResult{L3: r}
}
