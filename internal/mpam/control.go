package mpam

import (
	"fmt"

	"repro/internal/cache"
)

// MaxCachePortions and MaxBandwidthPortions are the architectural
// limits on portion counts (2^15 cache portions, 2^12 bandwidth
// quanta).
const (
	MaxCachePortions     = 1 << 15
	MaxBandwidthPortions = 1 << 12
)

// PortionBitmap is a bitmap over resource portions: bit n grants the
// holder the ability to allocate into (or use) portion n.
type PortionBitmap struct {
	bits []uint64
	n    int
}

// NewPortionBitmap returns an all-clear bitmap over n portions.
func NewPortionBitmap(n int) (*PortionBitmap, error) {
	if n <= 0 || n > MaxCachePortions {
		return nil, fmt.Errorf("mpam: portion count %d outside 1..%d", n, MaxCachePortions)
	}
	return &PortionBitmap{bits: make([]uint64, (n+63)/64), n: n}, nil
}

// Len returns the number of portions.
func (b *PortionBitmap) Len() int { return b.n }

// Set grants portion i.
func (b *PortionBitmap) Set(i int) error {
	if i < 0 || i >= b.n {
		return fmt.Errorf("mpam: portion %d outside 0..%d", i, b.n-1)
	}
	b.bits[i/64] |= 1 << uint(i%64)
	return nil
}

// Clear revokes portion i.
func (b *PortionBitmap) Clear(i int) error {
	if i < 0 || i >= b.n {
		return fmt.Errorf("mpam: portion %d outside 0..%d", i, b.n-1)
	}
	b.bits[i/64] &^= 1 << uint(i%64)
	return nil
}

// Has reports whether portion i is granted.
func (b *PortionBitmap) Has(i int) bool {
	if i < 0 || i >= b.n {
		return false
	}
	return b.bits[i/64]&(1<<uint(i%64)) != 0
}

// Count returns the number of granted portions.
func (b *PortionBitmap) Count() int {
	c := 0
	for i := 0; i < b.n; i++ {
		if b.Has(i) {
			c++
		}
	}
	return c
}

// CachePortionControl is MPAM's cache-portion partitioning for one
// cache resource: the cache is subdivided into equal fixed-size
// portions and each PARTID holds a bitmap of portions it may allocate
// into. Portions may be private, shared between PARTIDs, or left open
// (Fig. 3 of the paper shows 8 portions split two-private/one-shared
// between two PARTIDs).
type CachePortionControl struct {
	portions int
	grants   map[PARTID]*PortionBitmap
	// openToAll: PARTIDs without a bitmap may allocate anywhere
	// (unregulated default), matching "remain open for allocation by
	// any partition".
}

// NewCachePortionControl creates a control with the given portion
// count.
func NewCachePortionControl(portions int) (*CachePortionControl, error) {
	if portions <= 0 || portions > MaxCachePortions {
		return nil, fmt.Errorf("mpam: cache portion count %d outside 1..%d", portions, MaxCachePortions)
	}
	return &CachePortionControl{portions: portions, grants: make(map[PARTID]*PortionBitmap)}, nil
}

// Portions returns the portion count.
func (c *CachePortionControl) Portions() int { return c.portions }

// Grant sets the portion bitmap for a PARTID (replacing any previous
// grant).
func (c *CachePortionControl) Grant(id PARTID, portionIdx ...int) error {
	bm, err := NewPortionBitmap(c.portions)
	if err != nil {
		return err
	}
	for _, p := range portionIdx {
		if err := bm.Set(p); err != nil {
			return err
		}
	}
	c.grants[id] = bm
	return nil
}

// Bitmap returns the PARTID's bitmap, or nil if unregulated.
func (c *CachePortionControl) Bitmap(id PARTID) *PortionBitmap { return c.grants[id] }

// Allowed reports whether the PARTID may allocate into portion p.
func (c *CachePortionControl) Allowed(id PARTID, p int) bool {
	bm, ok := c.grants[id]
	if !ok {
		return true // unregulated PARTID
	}
	return bm.Has(p)
}

// WayPolicy adapts the portion control to a concrete cache whose ways
// are divided evenly among the portions (portion p covers ways
// [p*waysPerPortion, (p+1)*waysPerPortion)). The returned policy plugs
// into cache.Config. It requires ways to be divisible by the portion
// count.
func (c *CachePortionControl) WayPolicy(ways int) (cache.AllocPolicy, error) {
	if ways <= 0 || ways%c.portions != 0 {
		return nil, fmt.Errorf("mpam: %d ways not divisible into %d portions", ways, c.portions)
	}
	return &portionWayPolicy{ctrl: c, waysPerPortion: ways / c.portions, ways: ways}, nil
}

type portionWayPolicy struct {
	ctrl           *CachePortionControl
	waysPerPortion int
	ways           int
}

// AllowedWays implements cache.AllocPolicy; cache owners are PARTIDs.
func (p *portionWayPolicy) AllowedWays(owner cache.Owner, _ int) uint64 {
	id := PARTID(owner)
	bm := p.ctrl.grants[id]
	if bm == nil {
		if p.ways >= 64 {
			return ^uint64(0)
		}
		return (1 << uint(p.ways)) - 1
	}
	var mask uint64
	for portion := 0; portion < p.ctrl.portions; portion++ {
		if !bm.Has(portion) {
			continue
		}
		for w := 0; w < p.waysPerPortion; w++ {
			mask |= 1 << uint(portion*p.waysPerPortion+w)
		}
	}
	return mask
}

// MaxCapacityControl is MPAM's cache maximum-capacity partitioning: a
// PARTID may not occupy more than a configured fraction of the cache.
// It composes with portion partitioning (the paper's example: cap a
// partition inside portions shared with others).
type MaxCapacityControl struct {
	fractions map[PARTID]float64
}

// NewMaxCapacityControl returns an empty control.
func NewMaxCapacityControl() *MaxCapacityControl {
	return &MaxCapacityControl{fractions: make(map[PARTID]float64)}
}

// SetFraction limits the PARTID to the given fraction (0..1] of cache
// capacity.
func (m *MaxCapacityControl) SetFraction(id PARTID, f float64) error {
	if f <= 0 || f > 1 {
		return fmt.Errorf("mpam: capacity fraction %g outside (0,1]", f)
	}
	m.fractions[id] = f
	return nil
}

// Policy composes the capacity limits (over a cache of totalLines)
// with an inner allocation policy; pass nil for an open inner policy.
// BindCache must be called on the returned policy before use.
func (m *MaxCapacityControl) Policy(inner cache.AllocPolicy, totalLines int) *cache.MaxCapacityPolicy {
	limits := make(map[cache.Owner]int, len(m.fractions))
	for id, f := range m.fractions {
		limits[cache.Owner(id)] = int(f * float64(totalLines))
	}
	return &cache.MaxCapacityPolicy{Inner: inner, Limits: limits}
}
