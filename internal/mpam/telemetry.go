package mpam

import (
	"strconv"

	"repro/internal/sim"
	"repro/internal/telemetry"
)

// telemetryState is the arbiter's optional instrumentation; nil
// disables it.
type telemetryState struct {
	reg *telemetry.Registry
	tr  *telemetry.Tracer
	mon *telemetry.MonitorSet

	cDispatches *telemetry.Counter
	// partKeys caches "partid:N" strings so the dispatch path does not
	// format per transfer.
	partKeys map[PARTID]string
}

func (ts *telemetryState) partKey(id PARTID) string {
	k, ok := ts.partKeys[id]
	if !ok {
		k = "partid:" + strconv.Itoa(int(id))
		ts.partKeys[id] = k
	}
	return k
}

// SetTelemetry attaches a metrics registry, tracer, and PMU-style
// monitor set to the arbiter. Any argument may be nil; all nil
// disables instrumentation.
func (a *Arbiter) SetTelemetry(reg *telemetry.Registry, tr *telemetry.Tracer, mon *telemetry.MonitorSet) {
	if reg == nil && tr == nil && mon == nil {
		a.tel = nil
		return
	}
	ts := &telemetryState{reg: reg, tr: tr, mon: mon, partKeys: make(map[PARTID]string)}
	if reg != nil {
		ts.cDispatches = reg.Counter("mpam.dispatches")
	}
	a.tel = ts
}

// traceSubmit records a transfer entering a partition queue.
func (a *Arbiter) traceSubmit(r *BWRequest) {
	ts := a.tel
	if ts == nil {
		return
	}
	ts.mon.Monitor(ts.partKey(r.Label.PARTID)).TxnStart()
}

// traceServe records a completed transfer: a span from submission to
// completion on the "mpam" track plus window-bandwidth accounting.
func (a *Arbiter) traceServe(r *BWRequest, done sim.Time) {
	ts := a.tel
	if ts == nil {
		return
	}
	ts.cDispatches.Inc()
	key := ts.partKey(r.Label.PARTID)
	m := ts.mon.Monitor(key)
	m.AddBytes(done, r.Bytes)
	m.TxnEnd()
	if ts.tr != nil {
		ts.tr.Span("mpam", key, r.submitted, done, "bytes", strconv.Itoa(r.Bytes))
	}
}
