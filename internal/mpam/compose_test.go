package mpam

import (
	"testing"
	"testing/quick"

	"repro/internal/cache"
	"repro/internal/sim"
)

// TestPortionPlusMaxCapacityCompose reproduces the paper's composition
// example: cache-portion partitioning combined with maximum-capacity
// partitioning "to restrict the ability of a single partition to
// occupy all of the capacity of cache portions that have been made
// available to multiple partitions".
func TestPortionPlusMaxCapacityCompose(t *testing.T) {
	ctl, err := NewCachePortionControl(4)
	if err != nil {
		t.Fatal(err)
	}
	// PARTIDs 1 and 2 share portions 0-1 (half the cache).
	if err := ctl.Grant(1, 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := ctl.Grant(2, 0, 1); err != nil {
		t.Fatal(err)
	}
	inner, err := ctl.WayPolicy(16)
	if err != nil {
		t.Fatal(err)
	}
	// PARTID 1 additionally capped at 1/8 of total capacity.
	mc := NewMaxCapacityControl()
	if err := mc.SetFraction(1, 0.125); err != nil {
		t.Fatal(err)
	}
	pol := mc.Policy(inner, 16*16)
	c, err := cache.New(cache.Config{Sets: 16, Ways: 16, LineSize: 64, Policy: pol})
	if err != nil {
		t.Fatal(err)
	}
	pol.BindCache(c)

	// PARTID 1 floods: capped at 32 lines (1/8 of 256) even though its
	// portions cover 128.
	for a := uint64(0); a < 512; a++ {
		c.Access(cache.Owner(1), a*64, false)
	}
	if got := c.Occupancy(cache.Owner(1)); got > 32 {
		t.Errorf("capacity cap violated inside shared portions: %d lines", got)
	}
	// PARTID 2 fills the remaining shared-portion space freely.
	for a := uint64(1000); a < 1512; a++ {
		c.Access(cache.Owner(2), a*64, false)
	}
	if got := c.Occupancy(cache.Owner(2)); got < 64 {
		t.Errorf("uncapped sharer confined too far: %d lines", got)
	}
	// Neither ever allocates outside portions 0-1 (ways 0-7).
	if got := c.Occupancy(cache.Owner(1)) + c.Occupancy(cache.Owner(2)); got > 128 {
		t.Errorf("portion boundary violated: %d lines in an 8-way half", got)
	}
}

// TestPriorityBeatsStride pins the arbitration hierarchy: priority
// tiers dominate stride shares.
func TestPriorityBeatsStride(t *testing.T) {
	eng := sim.NewEngine()
	arb, err := NewArbiter(eng, BWConfig{CapacityBytesPerNS: 8}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// PARTID 1: low priority, tiny stride (would win stride-wise).
	if err := arb.Configure(1, PartitionBW{Priority: 0, Stride: 0.001}); err != nil {
		t.Fatal(err)
	}
	if err := arb.Configure(2, PartitionBW{Priority: 5, Stride: 100}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		_ = arb.Submit(&BWRequest{Label: Label{PARTID: 1}, Bytes: 64})
		_ = arb.Submit(&BWRequest{Label: Label{PARTID: 2}, Bytes: 64})
	}
	eng.RunUntil(sim.NS(64 * 200 / 8)) // time for exactly one partition's worth
	s1, _ := arb.Served(1)
	s2, _ := arb.Served(2)
	if s2 < 4*s1 {
		t.Errorf("priority did not dominate: high-prio %d vs low-prio %d bytes", s2, s1)
	}
}

// TestMinGuaranteeBeatsPriorityStarvation: a below-minimum partition
// is served ahead of same-priority competitors, preventing the
// starvation pattern pure priority would create.
func TestMinGuaranteeWithinPriorityTier(t *testing.T) {
	eng := sim.NewEngine()
	arb, err := NewArbiter(eng, BWConfig{CapacityBytesPerNS: 8}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := arb.Configure(1, PartitionBW{MinBytesPerNS: 2}); err != nil {
		t.Fatal(err)
	}
	if err := arb.Configure(2, PartitionBW{}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		_ = arb.Submit(&BWRequest{Label: Label{PARTID: 1}, Bytes: 64})
		_ = arb.Submit(&BWRequest{Label: Label{PARTID: 2}, Bytes: 64})
	}
	eng.RunUntil(10 * sim.Microsecond)
	s1, _ := arb.Served(1)
	// 2 B/ns over 10us = 20000 bytes minimum.
	if s1 < 18000 {
		t.Errorf("min guarantee missed: %d bytes over 10us, want >= ~20000", s1)
	}
}

// TestQuickArbiterConservation: the arbiter never serves more than the
// channel capacity allows over the run.
func TestQuickArbiterConservation(t *testing.T) {
	f := func(seed uint64, n8 uint8) bool {
		eng := sim.NewEngine()
		cap := 4.0
		arb, err := NewArbiter(eng, BWConfig{CapacityBytesPerNS: cap}, nil)
		if err != nil {
			return false
		}
		rnd := sim.NewRand(seed)
		for i := 0; i < int(n8%60)+5; i++ {
			id := PARTID(rnd.Intn(3))
			_ = arb.Submit(&BWRequest{Label: Label{PARTID: id}, Bytes: 32 + rnd.Intn(96)})
		}
		horizon := 5 * sim.Microsecond
		eng.RunUntil(horizon)
		var total uint64
		for id := PARTID(0); id < 3; id++ {
			b, _ := arb.Served(id)
			total += b
		}
		// Conservation with one in-flight transfer of slack.
		return float64(total) <= cap*horizon.Nanoseconds()+128
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
