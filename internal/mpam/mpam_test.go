package mpam

import (
	"testing"
	"testing/quick"

	"repro/internal/cache"
)

func TestSpaceProperties(t *testing.T) {
	cases := []struct {
		s       Space
		secure  bool
		virtual bool
	}{
		{PhysicalNonSecure, false, false},
		{VirtualNonSecure, false, true},
		{PhysicalSecure, true, false},
		{VirtualSecure, true, true},
	}
	for _, c := range cases {
		if c.s.Secure() != c.secure || c.s.Virtual() != c.virtual {
			t.Errorf("%v: secure=%v virtual=%v", c.s, c.s.Secure(), c.s.Virtual())
		}
		if c.s.String() == "" {
			t.Errorf("%v has empty String", c.s)
		}
	}
}

func TestVirtMapTranslate(t *testing.T) {
	m := NewVirtMap([]PARTID{10, 11, 12})
	if m.Size() != 3 {
		t.Errorf("Size = %d", m.Size())
	}
	p, err := m.Translate(1)
	if err != nil || p != 11 {
		t.Errorf("Translate(1) = %d, %v", p, err)
	}
	if _, err := m.Translate(3); err == nil {
		t.Error("out-of-range vPARTID accepted")
	}
}

func TestResolveVirtualLabels(t *testing.T) {
	m := NewVirtMap([]PARTID{10, 11})
	got, err := Resolve(Label{Space: VirtualNonSecure, PARTID: 1, PMG: 3}, m)
	if err != nil {
		t.Fatal(err)
	}
	want := Label{Space: PhysicalNonSecure, PARTID: 11, PMG: 3}
	if got != want {
		t.Errorf("Resolve = %+v, want %+v", got, want)
	}
	// Secure virtual resolves into the secure physical space: the
	// security worlds stay separated (side-channel mitigation).
	got, err = Resolve(Label{Space: VirtualSecure, PARTID: 0}, m)
	if err != nil {
		t.Fatal(err)
	}
	if got.Space != PhysicalSecure || got.PARTID != 10 {
		t.Errorf("secure Resolve = %+v", got)
	}
	// Physical labels pass through untouched.
	phys := Label{Space: PhysicalNonSecure, PARTID: 5}
	if got, _ := Resolve(phys, nil); got != phys {
		t.Errorf("physical Resolve changed label: %+v", got)
	}
	if _, err := Resolve(Label{Space: VirtualNonSecure, PARTID: 0}, nil); err == nil {
		t.Error("virtual label without map accepted")
	}
	if _, err := Resolve(Label{Space: VirtualNonSecure, PARTID: 9}, m); err == nil {
		t.Error("out-of-range virtual PARTID accepted")
	}
}

func TestPortionBitmap(t *testing.T) {
	bm, err := NewPortionBitmap(100)
	if err != nil {
		t.Fatal(err)
	}
	if err := bm.Set(99); err != nil {
		t.Fatal(err)
	}
	if !bm.Has(99) || bm.Has(98) {
		t.Error("Set/Has broken")
	}
	if bm.Count() != 1 {
		t.Errorf("Count = %d", bm.Count())
	}
	if err := bm.Clear(99); err != nil || bm.Has(99) {
		t.Error("Clear broken")
	}
	if err := bm.Set(100); err == nil {
		t.Error("out-of-range Set accepted")
	}
	if bm.Has(-1) || bm.Has(1000) {
		t.Error("out-of-range Has true")
	}
	if _, err := NewPortionBitmap(0); err == nil {
		t.Error("zero portions accepted")
	}
	if _, err := NewPortionBitmap(MaxCachePortions + 1); err == nil {
		t.Error("oversized bitmap accepted")
	}
}

func TestFig3PortionAssignment(t *testing.T) {
	// Fig. 3: 8 portions, two PARTIDs; each has a private region and
	// one portion is shared.
	ctl, err := NewCachePortionControl(8)
	if err != nil {
		t.Fatal(err)
	}
	if err := ctl.Grant(1, 0, 1, 2, 3); err != nil { // private 0-2, shared 3
		t.Fatal(err)
	}
	if err := ctl.Grant(2, 3, 4, 5, 6); err != nil { // shared 3, private 4-6
		t.Fatal(err)
	}
	// Private portions are exclusive.
	if ctl.Allowed(2, 0) || ctl.Allowed(1, 5) {
		t.Error("private portion reachable by the other PARTID")
	}
	// The shared portion is reachable by both.
	if !ctl.Allowed(1, 3) || !ctl.Allowed(2, 3) {
		t.Error("shared portion not reachable")
	}
	// Portion 7 belongs to nobody's bitmap: unreachable for granted
	// PARTIDs, open for unregulated ones.
	if ctl.Allowed(1, 7) || ctl.Allowed(2, 7) {
		t.Error("ungranted portion reachable by granted PARTID")
	}
	if !ctl.Allowed(99, 7) {
		t.Error("unregulated PARTID should be open")
	}
}

func TestCachePortionWayPolicy(t *testing.T) {
	ctl, _ := NewCachePortionControl(8)
	_ = ctl.Grant(1, 0, 1)
	pol, err := ctl.WayPolicy(16) // 2 ways per portion
	if err != nil {
		t.Fatal(err)
	}
	if got := pol.AllowedWays(cache.Owner(1), 0); got != 0b1111 {
		t.Errorf("PARTID 1 ways = %#b, want 0b1111", got)
	}
	if got := pol.AllowedWays(cache.Owner(7), 0); got != 0xFFFF {
		t.Errorf("unregulated ways = %#x, want 0xFFFF", got)
	}
	if _, err := ctl.WayPolicy(12); err == nil {
		t.Error("non-divisible way count accepted")
	}
	// End to end: PARTID 1 confined to 4 of 16 ways.
	c, err := cache.New(cache.Config{Sets: 4, Ways: 16, LineSize: 64, Policy: pol})
	if err != nil {
		t.Fatal(err)
	}
	for tag := uint64(0); tag < 32; tag++ {
		c.Access(cache.Owner(1), (tag*4)<<6<<2, false)
	}
	if got := c.Occupancy(cache.Owner(1)); got > 4*4 {
		t.Errorf("PARTID 1 occupies %d lines, cap is 16", got)
	}
}

func TestMaxCapacityControl(t *testing.T) {
	mc := NewMaxCapacityControl()
	if err := mc.SetFraction(1, 0.25); err != nil {
		t.Fatal(err)
	}
	if err := mc.SetFraction(1, 0); err == nil {
		t.Error("zero fraction accepted")
	}
	if err := mc.SetFraction(1, 1.5); err == nil {
		t.Error("fraction > 1 accepted")
	}
	pol := mc.Policy(nil, 64)
	c, err := cache.New(cache.Config{Sets: 16, Ways: 4, LineSize: 64, Policy: pol})
	if err != nil {
		t.Fatal(err)
	}
	pol.BindCache(c)
	for a := uint64(0); a < 64; a++ {
		c.Access(cache.Owner(1), a*64, false)
	}
	if got := c.Occupancy(cache.Owner(1)); got != 16 {
		t.Errorf("occupancy = %d, want capped at 25%% of 64 = 16", got)
	}
}

func TestFilterMatching(t *testing.T) {
	l := Label{PARTID: 3, PMG: 7}
	cases := []struct {
		f     Filter
		write bool
		want  bool
	}{
		{Filter{PARTID: 3}, false, true},
		{Filter{PARTID: 4}, false, false},
		{Filter{PARTID: 3, MatchPMG: true, PMG: 7}, false, true},
		{Filter{PARTID: 3, MatchPMG: true, PMG: 6}, false, false},
		{Filter{PARTID: 3, Type: MatchReads}, false, true},
		{Filter{PARTID: 3, Type: MatchReads}, true, false},
		{Filter{PARTID: 3, Type: MatchWrites}, true, true},
		{Filter{PARTID: 3, Type: MatchWrites}, false, false},
	}
	for i, c := range cases {
		if got := c.f.Matches(l, c.write); got != c.want {
			t.Errorf("case %d: Matches = %v, want %v", i, got, c.want)
		}
	}
}

func TestBandwidthMonitorAndCapture(t *testing.T) {
	m := &BandwidthMonitor{Filter: Filter{PARTID: 1, Type: MatchReads}}
	m.Record(Label{PARTID: 1}, 64, false)
	m.Record(Label{PARTID: 1}, 64, true) // write: filtered out
	m.Record(Label{PARTID: 2}, 64, false)
	if m.Value() != 64 {
		t.Errorf("Value = %d, want 64", m.Value())
	}
	if _, ok := m.ReadCapture(); ok {
		t.Error("capture set before Capture()")
	}
	m.Capture()
	m.Record(Label{PARTID: 1}, 64, false)
	got, ok := m.ReadCapture()
	if !ok || got != 64 {
		t.Errorf("ReadCapture = %d,%v, want 64,true", got, ok)
	}
	if m.Value() != 128 {
		t.Errorf("running value = %d, want 128", m.Value())
	}
	m.Reset()
	if m.Value() != 0 {
		t.Error("Reset failed")
	}
}

func TestCacheStorageMonitor(t *testing.T) {
	c, err := cache.New(cache.Config{Sets: 16, Ways: 4, LineSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	// Two PMGs of PARTID 1, one line each; PARTID 2 one line.
	c.Access(EncodeOwner(Label{PARTID: 1, PMG: 0}), 0, false)
	c.Access(EncodeOwner(Label{PARTID: 1, PMG: 1}), 1<<20, false)
	c.Access(EncodeOwner(Label{PARTID: 2, PMG: 0}), 2<<20, false)

	whole := NewCacheStorageMonitor(c, Filter{PARTID: 1})
	if got := whole.Value(); got != 128 {
		t.Errorf("PARTID-wide occupancy = %d, want 128", got)
	}
	pmg1 := NewCacheStorageMonitor(c, Filter{PARTID: 1, MatchPMG: true, PMG: 1})
	if got := pmg1.Value(); got != 64 {
		t.Errorf("PMG occupancy = %d, want 64", got)
	}
	pmg1.Capture()
	if got, ok := pmg1.ReadCapture(); !ok || got != 64 {
		t.Errorf("capture = %d,%v", got, ok)
	}
}

func TestEncodeDecodeOwner(t *testing.T) {
	l := Label{PARTID: 300, PMG: 17}
	if got := DecodeOwner(EncodeOwner(l)); got.PARTID != 300 || got.PMG != 17 {
		t.Errorf("roundtrip = %+v", got)
	}
}

func TestQuickOwnerRoundtrip(t *testing.T) {
	f := func(id uint16, pmg uint8) bool {
		l := Label{PARTID: PARTID(id), PMG: PMG(pmg)}
		d := DecodeOwner(EncodeOwner(l))
		return d.PARTID == l.PARTID && d.PMG == l.PMG
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMonitorSetLimitsAndCaptureAll(t *testing.T) {
	s := NewMonitorSet()
	m1, err := s.AddBandwidth(Filter{PARTID: 1})
	if err != nil {
		t.Fatal(err)
	}
	c, _ := cache.New(cache.Config{Sets: 4, Ways: 2, LineSize: 64})
	m2, err := s.AddCacheStorage(c, Filter{PARTID: 1})
	if err != nil {
		t.Fatal(err)
	}
	s.RecordBandwidth(Label{PARTID: 1}, 256, false)
	s.CaptureAll()
	if v, ok := m1.ReadCapture(); !ok || v != 256 {
		t.Errorf("bw capture = %d,%v", v, ok)
	}
	if _, ok := m2.ReadCapture(); !ok {
		t.Error("csu capture missing")
	}
}
