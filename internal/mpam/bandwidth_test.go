package mpam

import (
	"testing"

	"repro/internal/sim"
)

// bwRig drives an arbiter with per-partition generators.
type bwRig struct {
	eng *sim.Engine
	arb *Arbiter
}

func newBWRig(t *testing.T, cfg BWConfig) *bwRig {
	t.Helper()
	eng := sim.NewEngine()
	arb, err := NewArbiter(eng, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	return &bwRig{eng: eng, arb: arb}
}

// saturate submits back-to-back transfers for a PARTID for the whole
// horizon.
func (r *bwRig) saturate(id PARTID, bytes int, count int) {
	for i := 0; i < count; i++ {
		_ = r.arb.Submit(&BWRequest{Label: Label{PARTID: id}, Bytes: bytes})
	}
}

func TestBWConfigValidation(t *testing.T) {
	if (BWConfig{CapacityBytesPerNS: 0}).Validate() == nil {
		t.Error("zero capacity accepted")
	}
	if (BWConfig{CapacityBytesPerNS: 1, Portions: -1}).Validate() == nil {
		t.Error("negative portions accepted")
	}
	if (BWConfig{CapacityBytesPerNS: 1, Portions: MaxBandwidthPortions + 1}).Validate() == nil {
		t.Error("oversized portions accepted")
	}
	if (BWConfig{CapacityBytesPerNS: 1, Portions: 4}).Validate() == nil {
		t.Error("portions without quantum accepted")
	}
	if (BWConfig{CapacityBytesPerNS: 1, Portions: 4, QuantumDuration: sim.NS(100)}).Validate() != nil {
		t.Error("valid portioned config rejected")
	}
}

func TestPartitionBWValidation(t *testing.T) {
	r := newBWRig(t, BWConfig{CapacityBytesPerNS: 8})
	if r.arb.Configure(1, PartitionBW{MaxBytesPerNS: -1}) == nil {
		t.Error("negative max accepted")
	}
	if r.arb.Configure(1, PartitionBW{MinBytesPerNS: 2, MaxBytesPerNS: 1}) == nil {
		t.Error("min > max accepted")
	}
	if r.arb.Configure(1, PartitionBW{Quanta: []int{0}}) == nil {
		t.Error("quanta without portioning accepted")
	}
}

func TestMaxBandwidthLimiting(t *testing.T) {
	// Capacity 8 B/ns; PARTID 1 limited to 1 B/ns. Over 10us it must
	// get ~1 B/ns, not the full channel.
	r := newBWRig(t, BWConfig{CapacityBytesPerNS: 8})
	if err := r.arb.Configure(1, PartitionBW{MaxBytesPerNS: 1}); err != nil {
		t.Fatal(err)
	}
	r.saturate(1, 64, 400)
	r.eng.RunUntil(10 * sim.Microsecond)
	served, _ := r.arb.Served(1)
	// 10000ns at 1 B/ns plus the initial 100ns burst window.
	if served > 10200 {
		t.Errorf("max-limited partition served %d bytes over 10us, want <= ~10100", served)
	}
	if served < 9000 {
		t.Errorf("max-limited partition starved: %d bytes", served)
	}
}

func TestMinBandwidthGuarantee(t *testing.T) {
	// Capacity 8 B/ns. PARTID 1 guaranteed 6 B/ns, PARTID 2
	// unregulated. Both saturate: PARTID 1 must get ~6/8 of the
	// channel.
	r := newBWRig(t, BWConfig{CapacityBytesPerNS: 8})
	if err := r.arb.Configure(1, PartitionBW{MinBytesPerNS: 6}); err != nil {
		t.Fatal(err)
	}
	r.saturate(1, 64, 2000)
	r.saturate(2, 64, 2000)
	r.eng.RunUntil(10 * sim.Microsecond)
	s1, _ := r.arb.Served(1)
	s2, _ := r.arb.Served(2)
	if s1 < 55000 {
		t.Errorf("guaranteed partition got %d bytes, want >= ~60000", s1)
	}
	if s2 == 0 {
		t.Error("best-effort partition fully starved")
	}
}

func TestStrideProportionalSharing(t *testing.T) {
	// Strides 1 and 3: bandwidth shares should approach 3:1.
	r := newBWRig(t, BWConfig{CapacityBytesPerNS: 8})
	if err := r.arb.Configure(1, PartitionBW{Stride: 1}); err != nil {
		t.Fatal(err)
	}
	if err := r.arb.Configure(2, PartitionBW{Stride: 3}); err != nil {
		t.Fatal(err)
	}
	r.saturate(1, 64, 3000)
	r.saturate(2, 64, 3000)
	r.eng.RunUntil(10 * sim.Microsecond)
	s1, _ := r.arb.Served(1)
	s2, _ := r.arb.Served(2)
	ratio := float64(s1) / float64(s2)
	if ratio < 2.5 || ratio > 3.5 {
		t.Errorf("stride 1:3 share ratio = %.2f, want ~3", ratio)
	}
}

func TestPriorityPartitioning(t *testing.T) {
	// Higher priority drains first when both queues are full.
	r := newBWRig(t, BWConfig{CapacityBytesPerNS: 8})
	if err := r.arb.Configure(1, PartitionBW{Priority: 1}); err != nil {
		t.Fatal(err)
	}
	if err := r.arb.Configure(2, PartitionBW{Priority: 0}); err != nil {
		t.Fatal(err)
	}
	var doneHi, doneLo sim.Time
	for i := 0; i < 10; i++ {
		last := i == 9
		_ = r.arb.Submit(&BWRequest{Label: Label{PARTID: 1}, Bytes: 64, OnDone: func(at sim.Time) {
			if last {
				doneHi = at
			}
		}})
		_ = r.arb.Submit(&BWRequest{Label: Label{PARTID: 2}, Bytes: 64, OnDone: func(at sim.Time) {
			if last {
				doneLo = at
			}
		}})
	}
	r.eng.Run()
	if doneHi >= doneLo {
		t.Errorf("high-priority batch finished at %v, after low at %v", doneHi, doneLo)
	}
}

func TestBandwidthPortionQuanta(t *testing.T) {
	// Two quanta of 100ns; PARTID 1 owns quantum 0, PARTID 2 owns
	// quantum 1. Both saturate: each gets ~half the channel and is
	// served only inside its quanta.
	r := newBWRig(t, BWConfig{CapacityBytesPerNS: 8, Portions: 2, QuantumDuration: sim.NS(100)})
	if err := r.arb.Configure(1, PartitionBW{Quanta: []int{0}}); err != nil {
		t.Fatal(err)
	}
	if err := r.arb.Configure(2, PartitionBW{Quanta: []int{1}}); err != nil {
		t.Fatal(err)
	}
	r.saturate(1, 64, 1000)
	r.saturate(2, 64, 1000)
	r.eng.RunUntil(4 * sim.Microsecond)
	s1, _ := r.arb.Served(1)
	s2, _ := r.arb.Served(2)
	if s1 == 0 || s2 == 0 {
		t.Fatal("portioned partitions starved")
	}
	diff := float64(s1) - float64(s2)
	if diff < 0 {
		diff = -diff
	}
	if diff/float64(s1+s2) > 0.2 {
		t.Errorf("quantum split uneven: %d vs %d", s1, s2)
	}
}

func TestPortionWorkConservation(t *testing.T) {
	// Only PARTID 1 is active but owns only quantum 0 of 4: with no
	// holder of quanta 1-3 queued, it is served anyway.
	r := newBWRig(t, BWConfig{CapacityBytesPerNS: 8, Portions: 4, QuantumDuration: sim.NS(100)})
	if err := r.arb.Configure(1, PartitionBW{Quanta: []int{0}}); err != nil {
		t.Fatal(err)
	}
	r.saturate(1, 64, 500)
	r.eng.RunUntil(2 * sim.Microsecond)
	s1, _ := r.arb.Served(1)
	// Full channel for 2us = 16000 bytes >> quantum-restricted 4000.
	if s1 < 12000 {
		t.Errorf("work conservation failed: served %d bytes", s1)
	}
}

func TestArbiterMonitorsFed(t *testing.T) {
	eng := sim.NewEngine()
	mons := NewMonitorSet()
	bwm, _ := mons.AddBandwidth(Filter{PARTID: 1})
	arb, err := NewArbiter(eng, BWConfig{CapacityBytesPerNS: 8}, mons)
	if err != nil {
		t.Fatal(err)
	}
	_ = arb.Submit(&BWRequest{Label: Label{PARTID: 1}, Bytes: 128})
	eng.Run()
	if bwm.Value() != 128 {
		t.Errorf("monitor recorded %d bytes, want 128", bwm.Value())
	}
}

func TestArbiterRejectsBadRequests(t *testing.T) {
	r := newBWRig(t, BWConfig{CapacityBytesPerNS: 8})
	if r.arb.Submit(nil) == nil {
		t.Error("nil request accepted")
	}
	if r.arb.Submit(&BWRequest{Label: Label{PARTID: 1}, Bytes: 0}) == nil {
		t.Error("zero-byte request accepted")
	}
}

func TestUtilization(t *testing.T) {
	r := newBWRig(t, BWConfig{CapacityBytesPerNS: 8})
	if r.arb.Utilization() != 0 {
		t.Error("utilization before start should be 0")
	}
	r.saturate(1, 64, 100)
	r.eng.RunUntil(sim.Microsecond)
	u := r.arb.Utilization()
	if u <= 0 || u > 1 {
		t.Errorf("utilization = %v", u)
	}
}
