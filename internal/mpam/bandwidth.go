package mpam

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/sim"
)

// BWConfig sizes a bandwidth-regulated resource (a memory channel or
// an interconnect port).
type BWConfig struct {
	// CapacityBytesPerNS is the raw link/channel capacity.
	CapacityBytesPerNS float64
	// Portions enables memory-bandwidth portion partitioning with this
	// many time quanta (0 disables; max 2^12).
	Portions int
	// QuantumDuration is the length of one bandwidth quantum when
	// portions are enabled.
	QuantumDuration sim.Duration
}

// Validate checks the configuration.
func (c BWConfig) Validate() error {
	if c.CapacityBytesPerNS <= 0 {
		return fmt.Errorf("mpam: bandwidth capacity must be positive, got %g", c.CapacityBytesPerNS)
	}
	if c.Portions < 0 || c.Portions > MaxBandwidthPortions {
		return fmt.Errorf("mpam: bandwidth portions %d outside 0..%d", c.Portions, MaxBandwidthPortions)
	}
	if c.Portions > 0 && c.QuantumDuration <= 0 {
		return fmt.Errorf("mpam: portioned bandwidth needs a positive quantum duration")
	}
	return nil
}

// PartitionBW collects the per-PARTID bandwidth controls (Section
// III-B.4): maximum and minimum bandwidth, proportional stride, and
// priority, plus the bandwidth-portion quanta the partition may use.
type PartitionBW struct {
	// MaxBytesPerNS is the maximum permitted bandwidth under
	// contention; 0 means unlimited.
	MaxBytesPerNS float64
	// MinBytesPerNS is the minimum guaranteed bandwidth under
	// contention; partitions below their minimum are served first.
	MinBytesPerNS float64
	// Stride sets proportional-stride sharing: bandwidth is shared in
	// proportion to 1/Stride among competing partitions of the same
	// priority (classic stride scheduling). 0 defaults to 1.
	Stride float64
	// Priority orders strict arbitration tiers: higher values are
	// served first (priority partitioning).
	Priority int
	// Quanta lists the bandwidth portions (time quanta indices) the
	// partition may use when portioning is enabled. Empty = all.
	Quanta []int
}

func (p PartitionBW) validate(portions int) error {
	if p.MaxBytesPerNS < 0 || p.MinBytesPerNS < 0 || p.Stride < 0 {
		return fmt.Errorf("mpam: negative bandwidth parameter")
	}
	if p.MaxBytesPerNS > 0 && p.MinBytesPerNS > p.MaxBytesPerNS {
		return fmt.Errorf("mpam: min bandwidth %g exceeds max %g", p.MinBytesPerNS, p.MaxBytesPerNS)
	}
	for _, q := range p.Quanta {
		if q < 0 || q >= portions {
			return fmt.Errorf("mpam: quantum %d outside 0..%d", q, portions-1)
		}
	}
	return nil
}

// BWRequest is one transfer submitted to the arbiter.
type BWRequest struct {
	Label  Label
	Bytes  int
	Write  bool
	OnDone func(completed sim.Time)

	submitted sim.Time
}

// partitionState is the arbiter's runtime state for one PARTID.
type partitionState struct {
	cfg   PartitionBW
	queue []*BWRequest

	// maxTokens implements the maximum-bandwidth token bucket.
	maxTokens float64
	// minCredit > 0 means the partition is below its guaranteed
	// minimum and gets first-tier service.
	minCredit float64
	// pass is the stride-scheduling virtual time.
	pass float64

	lastUpdate sim.Time
	served     uint64 // bytes
	requests   uint64
	quanta     map[int]bool
}

// Arbiter multiplexes labelled transfers onto a shared channel,
// enforcing all MPAM bandwidth controls. Deterministic and
// single-threaded, like every simulator in this repository.
type Arbiter struct {
	eng  *sim.Engine
	cfg  BWConfig
	mons *MonitorSet

	parts map[PARTID]*partitionState
	busy  bool
	tel   *telemetryState
}

// NewArbiter builds a bandwidth arbiter. A MonitorSet may be attached
// so served traffic feeds memory-bandwidth usage monitors; pass nil
// for none.
func NewArbiter(eng *sim.Engine, cfg BWConfig, mons *MonitorSet) (*Arbiter, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Arbiter{eng: eng, cfg: cfg, mons: mons, parts: make(map[PARTID]*partitionState)}, nil
}

// Configure installs the bandwidth controls for a PARTID.
func (a *Arbiter) Configure(id PARTID, cfg PartitionBW) error {
	if err := cfg.validate(a.cfg.Portions); err != nil {
		return err
	}
	st := a.state(id)
	st.cfg = cfg
	st.quanta = nil
	if len(cfg.Quanta) > 0 {
		st.quanta = make(map[int]bool, len(cfg.Quanta))
		for _, q := range cfg.Quanta {
			st.quanta[q] = true
		}
	}
	// A fresh maximum starts with a full burst allowance of one
	// quantum's worth of bytes.
	st.maxTokens = cfg.MaxBytesPerNS * a.burstWindowNS()
	return nil
}

// burstWindowNS is the token-bucket depth for max-bandwidth
// enforcement, expressed in nanoseconds of credit.
func (a *Arbiter) burstWindowNS() float64 { return 100 }

func (a *Arbiter) state(id PARTID) *partitionState {
	st := a.parts[id]
	if st == nil {
		st = &partitionState{lastUpdate: a.eng.Now()}
		a.parts[id] = st
	}
	return st
}

// Submit enqueues a transfer.
func (a *Arbiter) Submit(r *BWRequest) error {
	if r == nil || r.Bytes <= 0 {
		return fmt.Errorf("mpam: bad bandwidth request")
	}
	r.submitted = a.eng.Now()
	if a.tel != nil {
		a.traceSubmit(r)
	}
	st := a.state(r.Label.PARTID)
	st.queue = append(st.queue, r)
	a.kick()
	return nil
}

// Served returns the bytes and request count delivered for a PARTID.
func (a *Arbiter) Served(id PARTID) (bytes, requests uint64) {
	st := a.parts[id]
	if st == nil {
		return 0, 0
	}
	return st.served, st.requests
}

func (a *Arbiter) kick() {
	if a.busy {
		return
	}
	a.busy = true
	a.eng.At(a.eng.Now(), a.dispatch)
}

// accrue updates a partition's token/credit meters to the current time.
func (a *Arbiter) accrue(st *partitionState) {
	now := a.eng.Now()
	dt := (now - st.lastUpdate).Nanoseconds()
	if dt <= 0 {
		return
	}
	if st.cfg.MaxBytesPerNS > 0 {
		st.maxTokens += st.cfg.MaxBytesPerNS * dt
		if cap := st.cfg.MaxBytesPerNS * a.burstWindowNS(); st.maxTokens > cap {
			st.maxTokens = cap
		}
	}
	if st.cfg.MinBytesPerNS > 0 {
		st.minCredit += st.cfg.MinBytesPerNS * dt
		if cap := st.cfg.MinBytesPerNS * a.burstWindowNS(); st.minCredit > cap {
			st.minCredit = cap
		}
	}
	st.lastUpdate = now
}

// quantumOf returns the current bandwidth quantum index.
func (a *Arbiter) quantumOf(t sim.Time) int {
	if a.cfg.Portions == 0 {
		return -1
	}
	return int((int64(t) / int64(a.cfg.QuantumDuration)) % int64(a.cfg.Portions))
}

// eligible reports whether the partition may be served right now, and
// if not, when it could be.
func (a *Arbiter) eligible(st *partitionState, now sim.Time) (bool, sim.Time) {
	head := st.queue[0]
	retry := sim.Forever

	// Maximum-bandwidth partitioning: the head transfer must conform.
	if st.cfg.MaxBytesPerNS > 0 && st.maxTokens < float64(head.Bytes) {
		needNS := (float64(head.Bytes) - st.maxTokens) / st.cfg.MaxBytesPerNS
		wait := sim.NS(needNS)
		if wait <= 0 {
			// Token accrual approaches the requirement from below in
			// floating-point steps, so the last shortfall can round to
			// a zero wait. The retry must still advance virtual time,
			// or the dispatcher re-arms at the same instant forever.
			wait = sim.Picosecond
		}
		return false, now + wait
	}

	// Bandwidth-portion partitioning: the current quantum must be one
	// of the partition's (work conservation handled by the caller when
	// no queued partition holds the quantum).
	if a.cfg.Portions > 0 && st.quanta != nil {
		q := a.quantumOf(now)
		if !st.quanta[q] {
			// Next quantum boundary; the dispatcher re-evaluates there.
			next := (int64(now)/int64(a.cfg.QuantumDuration) + 1) * int64(a.cfg.QuantumDuration)
			return false, sim.Time(next)
		}
	}
	return true, retry
}

// dispatch picks and serves the next transfer per the combined
// controls: strict priority first, then below-minimum partitions, then
// stride order.
func (a *Arbiter) dispatch() {
	now := a.eng.Now()
	type cand struct {
		id PARTID
		st *partitionState
	}
	var cands []cand
	var quantumHolders []cand
	earliestRetry := sim.Forever

	ids := make([]PARTID, 0, len(a.parts))
	for id := range a.parts {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	for _, id := range ids {
		st := a.parts[id]
		if len(st.queue) == 0 {
			continue
		}
		a.accrue(st)
		ok, retry := a.eligible(st, now)
		if !ok {
			if retry < earliestRetry {
				earliestRetry = retry
			}
			// Track quantum-blocked partitions separately: if nobody
			// holds the current quantum, serve them anyway (work
			// conserving), max-limit permitting.
			if a.cfg.Portions > 0 && st.quanta != nil &&
				(st.cfg.MaxBytesPerNS == 0 || st.maxTokens >= float64(st.queue[0].Bytes)) {
				quantumHolders = append(quantumHolders, cand{id, st})
			}
			continue
		}
		cands = append(cands, cand{id, st})
	}
	if len(cands) == 0 && len(quantumHolders) > 0 {
		cands = quantumHolders // work conservation across unheld quanta
	}
	if len(cands) == 0 {
		a.busy = false
		if earliestRetry != sim.Forever {
			a.eng.At(earliestRetry, func() {
				if !a.busy {
					a.busy = true
					a.dispatch()
				}
			})
		}
		return
	}

	best := cands[0]
	for _, c := range cands[1:] {
		if better(c.st, best.st) {
			best = c
		}
	}

	req := best.st.queue[0]
	best.st.queue = best.st.queue[1:]
	bytes := float64(req.Bytes)
	best.st.maxTokens -= bytes
	best.st.minCredit -= bytes
	if best.st.minCredit < -best.st.cfg.MinBytesPerNS*a.burstWindowNS() {
		best.st.minCredit = -best.st.cfg.MinBytesPerNS * a.burstWindowNS()
	}
	stride := best.st.cfg.Stride
	if stride <= 0 {
		stride = 1
	}
	best.st.pass += bytes * stride
	best.st.served += uint64(req.Bytes)
	best.st.requests++

	svc := sim.NS(bytes / a.cfg.CapacityBytesPerNS)
	a.eng.After(svc, func() {
		if a.mons != nil {
			a.mons.RecordBandwidth(req.Label, req.Bytes, req.Write)
		}
		if a.tel != nil {
			a.traceServe(req, a.eng.Now())
		}
		if req.OnDone != nil {
			req.OnDone(a.eng.Now())
		}
		a.dispatch()
	})
}

// better orders candidate partitions: higher priority, then
// below-minimum, then smaller stride pass.
func better(x, y *partitionState) bool {
	if x.cfg.Priority != y.cfg.Priority {
		return x.cfg.Priority > y.cfg.Priority
	}
	xUnder := x.cfg.MinBytesPerNS > 0 && x.minCredit > 0
	yUnder := y.cfg.MinBytesPerNS > 0 && y.minCredit > 0
	if xUnder != yUnder {
		return xUnder
	}
	if x.pass != y.pass {
		return x.pass < y.pass
	}
	return false
}

// Utilization returns total served bytes divided by capacity*elapsed.
func (a *Arbiter) Utilization() float64 {
	now := a.eng.Now().Nanoseconds()
	if now <= 0 {
		return 0
	}
	var total uint64
	for _, st := range a.parts {
		total += st.served
	}
	u := float64(total) / (a.cfg.CapacityBytesPerNS * now)
	return math.Min(u, 1)
}
