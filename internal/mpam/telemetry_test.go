package mpam

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/telemetry"
)

func TestArbiterTelemetry(t *testing.T) {
	eng := sim.NewEngine()
	a, err := NewArbiter(eng, BWConfig{CapacityBytesPerNS: 16}, nil)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	tr := telemetry.NewTracer()
	mon := telemetry.NewMonitorSet(sim.Microsecond)
	a.SetTelemetry(reg, tr, mon)

	done := 0
	for i := 0; i < 4; i++ {
		id := PARTID(i % 2)
		if err := a.Submit(&BWRequest{Label: Label{PARTID: id}, Bytes: 64,
			OnDone: func(sim.Time) { done++ }}); err != nil {
			t.Fatal(err)
		}
	}
	eng.Run()
	if done != 4 {
		t.Fatalf("completed %d, want 4", done)
	}
	if got := reg.Counter("mpam.dispatches").Value(); got != 4 {
		t.Errorf("dispatch counter = %d, want 4", got)
	}
	for _, key := range []string{"partid:0", "partid:1"} {
		m := mon.Monitor(key)
		if m.TotalBytes() != 128 || m.Outstanding() != 0 {
			t.Errorf("%s monitor: total=%d outstanding=%d", key, m.TotalBytes(), m.Outstanding())
		}
	}
	if tr.Events() != 4 {
		t.Errorf("tracer events = %d, want 4 spans", tr.Events())
	}
}

func TestBandwidthMonitorBindCounter(t *testing.T) {
	reg := telemetry.NewRegistry()
	m := &BandwidthMonitor{Filter: Filter{PARTID: 7}}
	m.BindCounter(reg.Counter("mpam.msmon.partid7"))
	m.Record(Label{PARTID: 7}, 100, false)
	m.Record(Label{PARTID: 3}, 50, false) // filtered out
	if m.Value() != 100 {
		t.Errorf("monitor value = %d, want 100", m.Value())
	}
	if got := reg.Counter("mpam.msmon.partid7").Value(); got != 100 {
		t.Errorf("bound counter = %d, want 100", got)
	}
	// Reset rewinds the monitor but not the cumulative shared counter.
	m.Reset()
	m.Record(Label{PARTID: 7}, 25, true)
	if m.Value() != 25 {
		t.Errorf("post-reset value = %d, want 25", m.Value())
	}
	if got := reg.Counter("mpam.msmon.partid7").Value(); got != 125 {
		t.Errorf("bound counter = %d, want cumulative 125", got)
	}
	// Unbound monitors keep working.
	m.BindCounter(nil)
	m.Record(Label{PARTID: 7}, 5, false)
	if m.Value() != 30 {
		t.Errorf("unbound value = %d, want 30", m.Value())
	}
}
