// Package mpam models the Armv8.4-A Memory System Resource Partitioning
// and Monitoring (MPAM) architecture extension as described in Section
// III-B of the paper: PARTID/PMG identification of memory traffic, the
// four PARTID spaces, hypervisor-controlled virtual-to-physical PARTID
// translation, the six standard control interfaces (cache portions,
// cache maximum capacity, bandwidth portions, bandwidth min/max,
// proportional stride, priority), and the two standard monitor types
// (cache-storage usage and memory-bandwidth usage) with capture
// registers.
//
// A memory system component (a cache or a memory channel) attaches
// these controls and monitors; requests carry a Label and the component
// consults the controls when arbitrating and the monitors when
// accounting.
package mpam

import (
	"fmt"
)

// PARTID is a partition identifier attached to memory requests for
// control and monitoring.
type PARTID uint16

// PMG is a performance monitoring group: a sub-label within a PARTID
// used only by monitors, letting policy apply to a whole workload while
// monitoring resolves individual processes or threads.
type PMG uint8

// Space is one of the four PARTID spaces. The security dimension is
// carried by the MPAM_NS bit; the virtual dimension by whether the
// request came from virtualised software whose PARTIDs the hypervisor
// translates.
type Space uint8

// The four PARTID spaces (Section III-B.2).
const (
	PhysicalNonSecure Space = iota
	VirtualNonSecure
	PhysicalSecure
	VirtualSecure
)

// String implements fmt.Stringer.
func (s Space) String() string {
	switch s {
	case PhysicalNonSecure:
		return "physical non-secure"
	case VirtualNonSecure:
		return "virtual non-secure"
	case PhysicalSecure:
		return "physical secure"
	case VirtualSecure:
		return "virtual secure"
	}
	return fmt.Sprintf("space(%d)", uint8(s))
}

// Secure reports whether the space is in the secure world (MPAM_NS=0).
func (s Space) Secure() bool { return s == PhysicalSecure || s == VirtualSecure }

// Virtual reports whether PARTIDs in this space require hypervisor
// translation.
func (s Space) Virtual() bool { return s == VirtualNonSecure || s == VirtualSecure }

// Label identifies the origin of a memory request.
type Label struct {
	Space  Space
	PARTID PARTID
	PMG    PMG
}

// String implements fmt.Stringer.
func (l Label) String() string {
	return fmt.Sprintf("%s PARTID %d PMG %d", l.Space, l.PARTID, l.PMG)
}

// VirtMap is the hypervisor-controlled mapping from a guest's virtual
// PARTIDs to physical PARTIDs (mapping system registers / translation
// tables in the architecture). Each guest owns a contiguous vPARTID
// space starting at zero.
type VirtMap struct {
	table []PARTID
}

// NewVirtMap builds a mapping: vPARTID i translates to table[i].
func NewVirtMap(table []PARTID) *VirtMap {
	return &VirtMap{table: append([]PARTID(nil), table...)}
}

// Size returns the number of virtual PARTIDs the guest may use.
func (m *VirtMap) Size() int { return len(m.table) }

// Translate maps a virtual PARTID to its physical PARTID. Out-of-range
// vPARTIDs are an error (the architecture raises an exception; callers
// typically fall back to the guest's default physical PARTID).
func (m *VirtMap) Translate(v PARTID) (PARTID, error) {
	if int(v) >= len(m.table) {
		return 0, fmt.Errorf("mpam: vPARTID %d outside the delegated space of %d entries", v, len(m.table))
	}
	return m.table[v], nil
}

// Resolve converts a request label to the physical label the memory
// system sees: virtual spaces translate the PARTID through the guest's
// map and collapse onto the physical space of the same security world.
func Resolve(l Label, m *VirtMap) (Label, error) {
	if !l.Space.Virtual() {
		return l, nil
	}
	if m == nil {
		return Label{}, fmt.Errorf("mpam: virtual label %v without a PARTID map", l)
	}
	p, err := m.Translate(l.PARTID)
	if err != nil {
		return Label{}, err
	}
	out := Label{PARTID: p, PMG: l.PMG, Space: PhysicalNonSecure}
	if l.Space.Secure() {
		out.Space = PhysicalSecure
	}
	return out, nil
}
